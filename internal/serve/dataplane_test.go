package serve

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/embedding"
	"recross/internal/trace"
)

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestParallelReduceBitIdentical proves the differential contract of the
// parallel data plane: vectors produced by the server — reductions fanned
// out across the persistent worker pool, with a row cache attached — are
// bit-identical to a fresh single-goroutine Layer.Reduce of the same ops.
// Each op's reduction is an independent task, so parallelism never
// reassociates a single op's accumulation order.
func TestParallelReduceBitIdentical(t *testing.T) {
	s := newTestServer(t, Options{
		Systems:       []arch.System{&fakeSys{}, &fakeSys{}},
		MaxBatch:      8,
		MaxDelay:      200 * time.Microsecond,
		ReduceWorkers: 4,
		RowCacheBytes: 1 << 20,
	})
	defer s.Close()
	ref := testLayer(t) // fresh uncached layer, sequential reference

	samples := testSamples(t, 64)
	var wg sync.WaitGroup
	errs := make(chan error, len(samples))
	results := make([]*Result, len(samples))
	for i, smp := range samples {
		wg.Add(1)
		go func(i int, smp trace.Sample) {
			defer wg.Done()
			res, err := s.Lookup(context.Background(), smp)
			if err != nil {
				errs <- err
				return
			}
			results[i] = res
		}(i, smp)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, smp := range samples {
		for oi, op := range smp {
			want, err := ref.Reduce(op)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(results[i].Vectors[oi], want) {
				t.Fatalf("sample %d op %d: parallel data plane diverges from sequential reference", i, oi)
			}
		}
	}
}

// TestRowCacheOption checks the RowCacheBytes wiring: the cache is built
// and attached, serves repeat traffic from residency, and a zero budget
// disables it entirely.
func TestRowCacheOption(t *testing.T) {
	s := newTestServer(t, Options{
		Systems:       []arch.System{&fakeSys{}},
		MaxBatch:      4,
		MaxDelay:      100 * time.Microsecond,
		RowCacheBytes: 1 << 20,
	})
	defer s.Close()
	if s.RowCache() == nil {
		t.Fatal("RowCacheBytes > 0 but no cache attached")
	}
	smp := testSamples(t, 1)[0]
	for i := 0; i < 3; i++ {
		if _, err := s.Lookup(context.Background(), smp); err != nil {
			t.Fatal(err)
		}
	}
	st := s.RowCache().Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("repeat traffic should mix misses then hits, got %+v", st)
	}

	off := newTestServer(t, Options{
		Systems:  []arch.System{&fakeSys{}},
		MaxBatch: 4,
	})
	defer off.Close()
	if off.RowCache() != nil {
		t.Fatal("RowCacheBytes 0 should disable the cache")
	}
	if _, err := off.Lookup(context.Background(), smp); err != nil {
		t.Fatal(err)
	}
}

// TestRowCacheRespectsPreattached checks that a caller-attached cache is
// kept (the adaptive path attaches before serve.New sees the layer).
func TestRowCacheRespectsPreattached(t *testing.T) {
	layer := testLayer(t)
	cache, err := embedding.NewRowCache(1<<20, testSpec().Tables[0].VecLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := layer.AttachRowCache(cache); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{
		Systems:       []arch.System{&fakeSys{}},
		Layer:         layer,
		MaxBatch:      4,
		RowCacheBytes: 1 << 30, // would build a different cache if not pre-attached
	})
	defer s.Close()
	if s.RowCache() != cache {
		t.Fatal("server replaced the caller's pre-attached cache")
	}
}

// TestHTTPDataplaneMetrics asserts the recross_dataplane_row_cache_*
// series ride /metrics and move with traffic.
func TestHTTPDataplaneMetrics(t *testing.T) {
	s := newTestServer(t, Options{
		Systems:       []arch.System{&fakeSys{}},
		MaxBatch:      4,
		MaxDelay:      100 * time.Microsecond,
		RowCacheBytes: 1 << 20,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	smp := testSamples(t, 1)[0]
	for i := 0; i < 2; i++ {
		if _, err := s.Lookup(context.Background(), smp); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, series := range []string{
		"recross_dataplane_row_cache_hits_total",
		"recross_dataplane_row_cache_misses_total",
		"recross_dataplane_row_cache_evictions_total",
		"recross_dataplane_row_cache_bytes",
		"recross_dataplane_row_cache_capacity_bytes",
		"recross_dataplane_row_cache_hit_rate",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Errorf("metrics missing %s:\n%s", series, body)
		}
	}
	st := s.RowCache().Stats()
	if st.Hits == 0 {
		t.Fatal("second lookup of the same sample should hit the cache")
	}
}

// TestDataplaneOptionValidation rejects negative budgets and pool sizes.
func TestDataplaneOptionValidation(t *testing.T) {
	layer := testLayer(t)
	if _, err := New(Options{Systems: []arch.System{&fakeSys{}}, Layer: layer, RowCacheBytes: -1}); err == nil {
		t.Fatal("negative RowCacheBytes accepted")
	}
	if _, err := New(Options{Systems: []arch.System{&fakeSys{}}, Layer: layer, ReduceWorkers: -1}); err == nil {
		t.Fatal("negative ReduceWorkers accepted")
	}
}
