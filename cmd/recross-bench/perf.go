package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/core"
	"recross/internal/dram"
	"recross/internal/memctrl"
	"recross/internal/sim"
	"recross/internal/trace"
)

// The -perf suite measures the scheduler hot path in isolation and end to
// end, on both the fast arbiter and the Reference scan scheduler, and
// writes the results as a JSON perf-trajectory file (BENCH_PR4.json in
// this PR) so future changes have a recorded baseline to regress against.

// perfEntry is one benchmark's record.
type perfEntry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SimCyclesPerSec is simulated DRAM cycles advanced per wall-clock
	// second — the simulator's throughput figure of merit.
	SimCyclesPerSec float64 `json:"sim_cycles_per_wall_second,omitempty"`
}

// perfDoc is the trajectory file.
type perfDoc struct {
	GoVersion string      `json:"go_version"`
	CPUs      int         `json:"cpus"`
	When      string      `json:"when"`
	Entries   []perfEntry `json:"entries"`
}

// perfDrainReqs is the 4k-request mixed row-hit workload shared by the
// drain benchmarks (mirrors internal/memctrl's BenchmarkDrain*4k).
func perfDrainReqs(geo dram.Geometry) []memctrl.Request {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]memctrl.Request, 4096)
	for i := range reqs {
		reqs[i] = memctrl.Request{
			Loc: dram.Loc{
				Rank: rng.Intn(geo.Ranks),
				BG:   rng.Intn(geo.BankGroups),
				Bank: rng.Intn(geo.Banks),
				Row:  rng.Intn(64),
			},
			Cols:     8,
			Consumer: dram.ToBankPE,
			Arrival:  sim.Cycle(i),
			Op:       int32(i / 16),
		}
	}
	return reqs
}

// perfDrain benchmarks a raw controller drain.
func perfDrain(reference bool) (perfEntry, error) {
	geo := dram.DDR5(2)
	reqs := perfDrainReqs(geo)
	s, err := arch.NewChannelSim(arch.ChannelSpec{
		Geo: geo, Tm: dram.DDR5Timing(), Mode: dram.NMPTwoStage,
		Policy: memctrl.LAS, OpWindow: arch.NMPOpWindow,
		Reference: reference,
	})
	if err != nil {
		return perfEntry{}, err
	}
	finish, _, _, err := s.Run(reqs, 0)
	if err != nil {
		return perfEntry{}, err
	}
	name := "drain_fast_4k"
	if reference {
		name = "drain_reference_4k"
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := s.Run(reqs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, int64(finish)), nil
}

// perfRecrossRun benchmarks one batch through the full ReCross model.
func perfRecrossRun(reference bool) (perfEntry, error) {
	spec := trace.CriteoKaggle(64, 80)
	cfg := core.DefaultConfig(spec)
	cfg.ProfileSamples = 500
	cfg.RefScheduler = reference
	sys, err := core.New(cfg)
	if err != nil {
		return perfEntry{}, err
	}
	gen, err := trace.NewGenerator(spec, 7)
	if err != nil {
		return perfEntry{}, err
	}
	batch := gen.Batch(32)
	rs, err := sys.Run(batch)
	if err != nil {
		return perfEntry{}, err
	}
	name := "recross_run_fast"
	if reference {
		name = "recross_run_reference"
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Run(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, int64(rs.Cycles)), nil
}

func mkEntry(name string, r testing.BenchmarkResult, cyclesPerOp int64) perfEntry {
	e := perfEntry{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if secs := r.T.Seconds(); secs > 0 {
		e.SimCyclesPerSec = float64(cyclesPerOp) * float64(r.N) / secs
	}
	return e
}

// runPerf executes the perf suite and writes the trajectory file.
func runPerf(path string) error {
	doc := perfDoc{
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		When:      time.Now().UTC().Format(time.RFC3339),
	}
	suite := []func() (perfEntry, error){
		func() (perfEntry, error) { return perfDrain(false) },
		func() (perfEntry, error) { return perfDrain(true) },
		func() (perfEntry, error) { return perfRecrossRun(false) },
		func() (perfEntry, error) { return perfRecrossRun(true) },
	}
	for _, f := range suite {
		e, err := f()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "perf: %-24s %12.0f ns/op %8d allocs/op %14.0f simcycles/s\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.SimCyclesPerSec)
		doc.Entries = append(doc.Entries, e)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
