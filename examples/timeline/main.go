// Timeline: reproduce the paper's Fig. 6 — the DRAM command schedule of
// four successive accesses to two banks under bank-group-level NMP,
// bank-level NMP, and subarray-parallel bank-level NMP, showing how SALP
// overlaps the activations that otherwise serialize at tRC.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"log"

	"recross/internal/experiments"
)

func main() {
	out, err := experiments.Fig6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
