package serve

import "time"

// dispatch is the dynamic batcher: it pulls admitted requests off the
// queue and coalesces them into batches, flushing when MaxBatch samples
// are collected or MaxDelay has elapsed since the batch opened. Requests
// whose context expired while queued are dropped here, at dequeue time,
// before they can open a batch or arm the MaxDelay timer — a dead
// request never triggers an (otherwise empty) flush. The loop exits when
// the admission channel is closed and fully drained, flushing any
// partial batch so graceful drain answers every admitted request.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)

	var batch []*request
	var opened time.Time // when the batch's first request was dequeued
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
		timerLive = false
	}
	flush := func() {
		stopTimer()
		if len(batch) == 0 {
			return
		}
		s.metrics.BatchForm.RecordSince(opened)
		s.route(batch)
		batch = nil
	}

	for {
		if len(batch) == 0 {
			// Nothing pending: block for the next request. A request
			// that is already dead at dequeue is dropped before it opens
			// a batch, and an instantly-full batch (MaxBatch 1) flushes
			// without the timer ever being armed.
			r, ok := <-s.in
			if !ok {
				return
			}
			if !s.admitAtDequeue(r) {
				continue
			}
			batch = append(batch, r)
			opened = time.Now()
			if len(batch) >= s.opts.MaxBatch {
				flush()
				continue
			}
			timer.Reset(s.opts.MaxDelay)
			timerLive = true
			continue
		}
		select {
		case r, ok := <-s.in:
			if !ok {
				flush()
				return
			}
			if !s.admitAtDequeue(r) {
				continue
			}
			batch = append(batch, r)
			if len(batch) >= s.opts.MaxBatch {
				flush()
			}
		case <-timer.C:
			timerLive = false
			flush()
		}
	}
}

// admitAtDequeue records the queue wait and drops requests whose context
// expired while queued. Returns false if the request was dropped.
func (s *Server) admitAtDequeue(r *request) bool {
	r.deq = time.Now()
	s.metrics.QueueWait.Record(r.deq.Sub(r.enq).Nanoseconds())
	if err := r.ctx.Err(); err != nil {
		if r.complete(outcome{err: err}) {
			s.metrics.Canceled.Add(1)
		}
		return false
	}
	return true
}

// route hands a formed batch to the replica with the least outstanding
// work (queued + running samples), the serving analogue of the paper's
// load-balance objective across memory nodes — restricted to available
// (healthy/suspect) replicas, the dispatcher's circuit breaker. When
// available replicas are below Quorum the server is in degraded mode and
// the whole batch is answered from the functional layer instead.
func (s *Server) route(batch []*request) {
	rep := s.pickReplica()
	if rep == nil {
		for _, r := range batch {
			s.serveDegraded(r)
		}
		return
	}
	rep.outstanding.Add(int64(len(batch)))
	if !s.sendWork(rep, batch, true) {
		// Work channels already closed (drain raced a late flush):
		// answer degraded rather than strand the batch.
		rep.outstanding.Add(-int64(len(batch)))
		for _, r := range batch {
			s.serveDegraded(r)
		}
	}
}

// pickReplica returns the least-loaded available replica, or nil when
// the available count is below the quorum (degraded mode).
func (s *Server) pickReplica() *replica {
	var best *replica
	var bestLoad int64
	avail := 0
	for _, rep := range s.replicas {
		if !rep.available() {
			continue
		}
		avail++
		if l := rep.outstanding.Load(); best == nil || l < bestLoad {
			best, bestLoad = rep, l
		}
	}
	if avail < s.opts.Quorum {
		return nil
	}
	return best
}
