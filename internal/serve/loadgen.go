package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"recross/internal/trace"
)

// LoadgenOptions configures Loadgen, the built-in closed-loop load
// generator: Clients goroutines each issue Lookup calls back-to-back
// (closed loop — a client's next request waits for its previous answer)
// for Duration.
type LoadgenOptions struct {
	// Spec is the workload the clients draw samples from (required; must
	// match the spec the server's systems were built for).
	Spec trace.ModelSpec
	// Clients is the number of concurrent closed-loop clients
	// (default 8).
	Clients int
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Seed seeds client i's generator with Seed+i (default 1).
	Seed int64
	// Timeout, when positive, bounds each request with a deadline.
	Timeout time.Duration
	// ShiftAt, when positive, permutes every client generator's hot set
	// (trace.Generator.ShiftHotSet with ShiftSalt) once that much of the
	// run has elapsed — the mid-run popularity churn the adaptive
	// repartitioner exists to absorb. Distribution shape is unchanged;
	// which rows are hot is not.
	ShiftAt time.Duration
	// ShiftSalt selects the post-shift permutation (default 1, so setting
	// only ShiftAt still changes the hot set).
	ShiftSalt int64
	// TailMass, in [0,1], redirects this fraction of every client's index
	// draws to a uniform pick from the cold half of the rank space
	// (trace.Generator.SetTailMass) — shifting load toward cold-tier rows.
	TailMass float64
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ShiftSalt == 0 {
		o.ShiftSalt = 1
	}
	return o
}

// Report summarizes one load-generation run. Unsuccessful requests are
// reported as separate counts — shed (admission rejected), canceled
// (deadline/cancellation), failed (replica or simulation failure) —
// rather than one error bucket. Degradation is split by cause: Degraded
// counts answers that completed from the functional fallback after a
// compute-quorum loss, ColdDegraded answers completed while the storage
// tier was degraded (cold rows through the slow direct path); a request
// may count in both.
type Report struct {
	Clients      int
	Wall         time.Duration
	Requests     int64 // completed successfully (including degraded)
	Degraded     int64 // completed via the functional fallback (compute)
	ColdDegraded int64 // completed while the cold tier was degraded (storage)
	Shed         int64
	Canceled     int64
	Failed       int64   // replica/simulation failures (ErrReplicaFailure etc.)
	Errors       int64   // any other failures
	Thru         float64 // completed requests per second
	P50          time.Duration
	P95          time.Duration
	P99          time.Duration
	Max          time.Duration
	MeanBatch    float64
	// ServiceP50/P99 are simulated DRAM-cycle batch latencies.
	ServiceP50, ServiceP99 float64
}

// String renders the human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d clients, %.2fs wall\n", r.Clients, r.Wall.Seconds())
	fmt.Fprintf(&b, "  completed  %d (%.0f req/s)\n", r.Requests, r.Thru)
	if r.Degraded > 0 {
		fmt.Fprintf(&b, "  degraded   %d (compute: functional fallback)\n", r.Degraded)
	}
	if r.ColdDegraded > 0 {
		fmt.Fprintf(&b, "  degraded   %d (storage: cold tier fallback)\n", r.ColdDegraded)
	}
	if r.Shed > 0 || r.Canceled > 0 || r.Failed > 0 || r.Errors > 0 {
		fmt.Fprintf(&b, "  shed %d, canceled %d, failed %d, errors %d\n",
			r.Shed, r.Canceled, r.Failed, r.Errors)
	}
	fmt.Fprintf(&b, "  latency    p50 %v  p95 %v  p99 %v  max %v\n", r.P50, r.P95, r.P99, r.Max)
	fmt.Fprintf(&b, "  batching   mean %.1f samples/batch\n", r.MeanBatch)
	fmt.Fprintf(&b, "  simulated  p50 %.0f  p99 %.0f DRAM cycles/batch\n", r.ServiceP50, r.ServiceP99)
	return b.String()
}

// Loadgen drives the server with closed-loop clients and reports
// throughput and latency percentiles. The percentiles are exact (every
// request's latency is kept), unlike the server's streaming histograms.
func Loadgen(s *Server, opts LoadgenOptions) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Clients < 1 {
		return nil, fmt.Errorf("serve: %d clients", opts.Clients)
	}

	type clientStats struct {
		lat                            []float64 // ns
		degraded, coldDegraded         int64
		shed, canceled, failed, errors int64
	}
	stats := make([]clientStats, opts.Clients)
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var shiftTime time.Time
	if opts.ShiftAt > 0 {
		shiftTime = start.Add(opts.ShiftAt)
	}

	var wg sync.WaitGroup
	errc := make(chan error, opts.Clients)
	for c := 0; c < opts.Clients; c++ {
		gen, err := trace.NewGenerator(opts.Spec, opts.Seed+int64(c))
		if err != nil {
			return nil, err
		}
		if opts.TailMass > 0 {
			if err := gen.SetTailMass(opts.TailMass); err != nil {
				return nil, err
			}
		}
		wg.Add(1)
		go func(c int, gen *trace.Generator) {
			defer wg.Done()
			st := &stats[c]
			shifted := false
			for time.Now().Before(deadline) {
				if !shifted && !shiftTime.IsZero() && !time.Now().Before(shiftTime) {
					// Each client owns its generator, so the shift is safe
					// here; all clients derive the identical permutation.
					if err := gen.ShiftHotSet(opts.ShiftSalt); err != nil {
						select {
						case errc <- err:
						default:
						}
						return
					}
					shifted = true
				}
				sample := gen.Sample()
				if len(sample) == 0 {
					continue // all-probabilistic spec rolled no tables
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if opts.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
				}
				t0 := time.Now()
				res, err := s.Lookup(ctx, sample)
				cancel()
				switch {
				case err == nil:
					st.lat = append(st.lat, float64(time.Since(t0).Nanoseconds()))
					if res.Degraded {
						st.degraded++
					}
					if res.ColdDegraded {
						st.coldDegraded++
					}
				case errors.Is(err, ErrOverloaded):
					st.shed++
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					st.canceled++
				case errors.Is(err, ErrClosed):
					return
				case errors.Is(err, ErrReplicaFailure):
					st.failed++
				default:
					st.errors++
					select {
					case errc <- err:
					default:
					}
				}
			}
		}(c, gen)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &Report{Clients: opts.Clients, Wall: wall}
	var all []float64
	for i := range stats {
		rep.Requests += int64(len(stats[i].lat))
		rep.Degraded += stats[i].degraded
		rep.ColdDegraded += stats[i].coldDegraded
		rep.Shed += stats[i].shed
		rep.Canceled += stats[i].canceled
		rep.Failed += stats[i].failed
		rep.Errors += stats[i].errors
		all = append(all, stats[i].lat...)
	}
	if wall > 0 {
		rep.Thru = float64(rep.Requests) / wall.Seconds()
	}
	rep.P50, rep.P95, rep.P99 = percentileDurations(all)
	for _, ns := range all {
		if d := time.Duration(ns); d > rep.Max {
			rep.Max = d
		}
	}
	snap := s.Metrics().Snapshot()
	rep.MeanBatch = snap.MeanBatch()
	rep.ServiceP50, rep.ServiceP99 = snap.ServiceCycles.P50, snap.ServiceCycles.P99
	if rep.Requests == 0 {
		select {
		case err := <-errc:
			return rep, fmt.Errorf("serve: loadgen completed no requests: %w", err)
		default:
			return rep, errors.New("serve: loadgen completed no requests")
		}
	}
	return rep, nil
}
