package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestConfigs(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Quick()
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch should fail validation")
	}
}

func TestArchSetBuildsAllSix(t *testing.T) {
	set, err := NewArchSet(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Systems) != 6 {
		t.Fatalf("built %d systems, want 6", len(set.Systems))
	}
	for _, name := range ArchNames {
		if set.Systems[name] == nil {
			t.Fatalf("missing %s", name)
		}
	}
	stats, err := set.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Speedups(stats, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if sp["cpu"] != 1 {
		t.Fatalf("cpu speedup over itself = %f", sp["cpu"])
	}
	if _, err := Speedups(stats, "nope"); err == nil {
		t.Fatal("unknown base should error")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Note: "n", Cols: []string{"a", "bbbb"}}
	tb.AddRow("1", "2")
	out := tb.String()
	for _, want := range []string{"== T ==", "n", "a", "bbbb", "1", "2", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig3CurvesAreSkewedAndMonotone(t *testing.T) {
	tb, err := Fig3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 26 {
		t.Fatalf("Fig3 rows = %d, want 26", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		prev := 0.0
		for _, cell := range r[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 || v < 0 || v > 1 {
				t.Fatalf("coverage not monotone in [0,1]: %v", r)
			}
			prev = v
		}
	}
}

func TestFig4ImbalanceGrowsWithGranularity(t *testing.T) {
	tb, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Fig4 rows = %d, want 3 rank configs", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		rank, _ := strconv.ParseFloat(r[1], 64)
		bg, _ := strconv.ParseFloat(r[2], 64)
		bank, _ := strconv.ParseFloat(r[3], 64)
		// The paper's Observation 1: finer granularity, worse imbalance.
		if !(rank <= bg && bg <= bank) {
			t.Fatalf("imbalance not increasing with granularity: %v", r)
		}
		if rank < 1 {
			t.Fatalf("imbalance below 1: %v", r)
		}
	}
}

func TestFig5BandwidthOutpacesSpeedup(t *testing.T) {
	tb, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("Fig5 rows = %d, want 9", len(tb.Rows))
	}
	// Paper's Observation 2: at fixed ranks, internal bandwidth scales far
	// faster than speedup from bank-group to bank level.
	var bgSp, bankSp, bgBW, bankBW float64
	for _, r := range tb.Rows {
		if r[0] != "2" {
			continue
		}
		sp, _ := strconv.ParseFloat(r[2], 64)
		bw, _ := strconv.ParseFloat(r[3], 64)
		switch r[1] {
		case "bankgroup":
			bgSp, bgBW = sp, bw
		case "bank":
			bankSp, bankBW = sp, bw
		}
	}
	if bankBW/bgBW < 3.9 {
		t.Fatalf("bank/bankgroup bandwidth ratio = %.1f, want 4", bankBW/bgBW)
	}
	if bankSp/bgSp > 2 {
		t.Fatalf("bank-level speedup %.2fx over bank-group exceeds plausible range", bankSp/bgSp)
	}
}

func TestFig6TimelineShowsSALPOverlap(t *testing.T) {
	out, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(a)", "(b)", "(c)", "ACT", "RD", "subarray"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q", want)
		}
	}
	// Extract the three finish cycles; SALP (c) must finish first.
	var finishes []int
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "finished at cycle "); i >= 0 {
			v, err := strconv.Atoi(strings.TrimSpace(line[i+len("finished at cycle "):]))
			if err != nil {
				t.Fatal(err)
			}
			finishes = append(finishes, v)
		}
	}
	if len(finishes) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(finishes))
	}
	if !(finishes[2] < finishes[1] && finishes[1] <= finishes[0]) {
		t.Fatalf("scenario finishes not improving: %v", finishes)
	}
}

func TestFig12AblationImproves(t *testing.T) {
	tb, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Fig12 rows = %d, want 4", len(tb.Rows))
	}
	base, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	full, _ := strconv.ParseFloat(tb.Rows[3][1], 64)
	if full <= base {
		t.Fatalf("full ReCross (%.2f) not faster than Base (%.2f)", full, base)
	}
}

func TestFig13IncludesNoBWP(t *testing.T) {
	tb, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("Fig13 rows = %d, want 6 archs + recross-noBWP", len(tb.Rows))
	}
	if tb.Rows[6][0] != "recross-noBWP" {
		t.Fatalf("last row = %v", tb.Rows[6])
	}
}

func TestFig15EnergyAndTable3(t *testing.T) {
	tb, err := Fig15(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig15 rows = %d, want 6", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		total, err := strconv.ParseFloat(r[7], 64)
		if err != nil || total <= 0 {
			t.Fatalf("bad energy total in %v", r)
		}
	}
	t3 := Table3()
	if len(t3.Rows) != 5 {
		t.Fatalf("Table3 rows = %d, want 5", len(t3.Rows))
	}
}

func TestSweepsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps in short mode")
	}
	cfg := Quick()
	t10, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 4 {
		t.Fatalf("quick Fig10 rows = %d, want 4", len(t10.Rows))
	}
	t11, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t11.Rows) != 3 {
		t.Fatalf("Fig11 rows = %d, want 3", len(t11.Rows))
	}
	// Every speedup cell parses and is positive; CPU column is 1.00.
	for _, r := range t11.Rows {
		for i, cell := range r[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Fatalf("bad speedup %q in %v", cell, r)
			}
			if ArchNames[i] == "cpu" && v != 1 {
				t.Fatalf("cpu speedup %v != 1", v)
			}
		}
	}
}

func TestFig14Configs(t *testing.T) {
	if testing.Short() {
		t.Skip("config exploration in short mode")
	}
	tb, err := Fig14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig14 rows = %d, want 6", len(tb.Rows))
	}
	// Area must increase from d to c5.
	first, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	last, _ := strconv.ParseFloat(tb.Rows[5][2], 64)
	if last <= first {
		t.Fatalf("c5 area (%.2f) not larger than d (%.2f)", last, first)
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedNames(m)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
}

func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension studies in short mode")
	}
	cfg := Quick()
	refresh, err := ExtRefresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(refresh.Rows) != 2 {
		t.Fatalf("ExtRefresh rows = %d", len(refresh.Rows))
	}
	for _, r := range refresh.Rows {
		plain, _ := strconv.ParseFloat(r[1], 64)
		refreshed, _ := strconv.ParseFloat(r[2], 64)
		if refreshed < plain {
			t.Fatalf("refresh made %s faster: %v", r[0], r)
		}
	}
	channels, err := ExtChannels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range channels.Rows {
		sp, _ := strconv.ParseFloat(r[4], 64)
		if sp < 1.5 {
			t.Fatalf("4-channel speedup for %s only %.2f", r[0], sp)
		}
	}
	subs, err := ExtSubarrays(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c16, _ := strconv.ParseFloat(subs.Rows[0][1], 64)
	c256, _ := strconv.ParseFloat(subs.Rows[2][1], 64)
	if c256 > c16 {
		t.Fatalf("more subarrays slower: 16->%v 256->%v", c16, c256)
	}
	training, err := ExtTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(training.Rows) != 2 {
		t.Fatal("ExtTraining shape wrong")
	}
	lat, err := ExtLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range lat.Rows {
		p50, _ := strconv.ParseFloat(r[1], 64)
		p99, _ := strconv.ParseFloat(r[2], 64)
		if p99 < p50 || p50 <= 0 {
			t.Fatalf("latency percentiles implausible: %v", r)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Cols: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `q"r`)
	got := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"r\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
