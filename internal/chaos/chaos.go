// Package chaos is the fault-injection harness for the serving layer: a
// FaultySystem wraps any arch.System and injects failures the way real
// replica fleets produce them — added latency (a slow device), goroutine
// panics (a crashed replica), wedged batches that never return (a hung
// device or deadlocked driver), and corrupted result payloads (bit flips,
// protocol bugs). Injection is deterministic: every wrapped system draws
// from its own seeded RNG, and a Schedule can script exact failures
// ("replica 2 panics on batch 5") so chaos tests are reproducible and
// never flaky.
//
// The serving layer under test must survive all of it; see
// internal/serve's supervisor and TestChaos* for the contract.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/arch"
	"recross/internal/trace"
)

// Kind enumerates the injectable fault kinds.
type Kind int

const (
	// Latency stalls the batch for Config.Stall before running it
	// normally — a slow replica, not a broken one.
	Latency Kind = iota
	// Panic panics the calling goroutine mid-batch, the way a bug in a
	// timing model would.
	Panic
	// Wedge blocks the batch forever (until Injector.ReleaseWedges): a
	// hung device. The caller's only recourse is a timeout.
	Wedge
	// Corrupt runs the batch but returns corrupted RunStats (negative
	// cycle count) — a damaged result payload the pool must detect and
	// discard rather than serve.
	Corrupt

	// Storage-tier kinds, injected by FaultyColdStore at the coldstore
	// Device seam rather than per replica batch.

	// ReadErr fails a device page read with an I/O error (a media read
	// error; the store retries, then trips its breaker).
	ReadErr
	// Stall sleeps a device page read for the configured stall — a
	// latency outlier the per-read deadline must bound.
	Stall
	// CorruptPage flips bits in a page read's payload — silent media
	// corruption the checksum must catch and repair.
	CorruptPage
	// TornWrite persists only a prefix of a page write and reports
	// success — a torn write the next verified read must detect.
	TornWrite

	// Cluster-tier kinds, injected by FaultyNode at the cluster.Node
	// seam rather than per replica batch or device page.

	// NodeKill fails every call fast (ErrNodeKilled) until Revive — a
	// crashed or drained node.
	NodeKill
	// NodePartition blocks calls until the caller's context expires —
	// a network partition: the node is fine, packets never arrive.
	NodePartition
	// NodeSlow stalls a call for the configured stall before
	// forwarding it — a node on a congested link.
	NodeSlow

	// Connection-tier kinds, injected by the cluster tier's FaultyConn
	// wrapper at the net.Conn seam under the binary wire protocol —
	// faults a per-call wrapper cannot express because they damage the
	// shared transport, not one request.

	// ConnTorn writes a prefix of a frame and severs the connection —
	// a peer dying mid-write; the reader sees a truncated frame.
	ConnTorn
	// ConnReset severs the connection before the write — an abrupt
	// RST; every in-flight request on that conn fails at once.
	ConnReset
	// ConnStall delays a write by the configured stall — a congested
	// or half-broken link backing up the writer loop.
	ConnStall

	numKinds
)

func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Panic:
		return "panic"
	case Wedge:
		return "wedge"
	case Corrupt:
		return "corrupt"
	case ReadErr:
		return "read-err"
	case Stall:
		return "stall"
	case CorruptPage:
		return "corrupt-page"
	case TornWrite:
		return "torn-write"
	case NodeKill:
		return "node-kill"
	case NodePartition:
		return "node-partition"
	case NodeSlow:
		return "node-slow"
	case ConnTorn:
		return "conn-torn"
	case ConnReset:
		return "conn-reset"
	case ConnStall:
		return "conn-stall"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Rates are per-batch injection probabilities in [0,1], checked in the
// order Panic, Wedge, Corrupt, Latency (at most one fault per batch).
type Rates struct {
	Latency, Panic, Wedge, Corrupt float64
}

// zero reports whether no probabilistic injection is configured.
func (r Rates) zero() bool {
	return r.Latency == 0 && r.Panic == 0 && r.Wedge == 0 && r.Corrupt == 0
}

// Rule scripts one exact fault: replica Replica (as passed to Wrap)
// injects Kind on its Batch'th Run call (1-based). Scheduled rules fire
// regardless of Rates and of the injector's enabled switch being flipped
// later — they are the deterministic backbone of a chaos test.
type Rule struct {
	Replica int
	Batch   int64
	Kind    Kind
}

// Config configures a fault injection campaign.
type Config struct {
	// Rates are the per-batch fault probabilities.
	Rates Rates
	// Stall is the injected latency duration (default 500µs).
	Stall time.Duration
	// Schedule scripts exact per-replica faults on top of Rates.
	Schedule []Rule
	// Seed seeds replica i's RNG with Seed+i (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Stall == 0 {
		c.Stall = 500 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Injector is the shared control plane of a fault campaign: an on/off
// switch for the probabilistic faults, per-kind injection counters, and
// the release valve for wedged batches. One Injector is shared by every
// FaultySystem of a fleet so a test (or soak run) can stop injection and
// watch the server heal.
type Injector struct {
	enabled atomic.Bool
	counts  [numKinds]atomic.Int64

	releaseOnce sync.Once
	release     chan struct{}
}

// NewInjector returns an enabled injector.
func NewInjector() *Injector {
	inj := &Injector{release: make(chan struct{})}
	inj.enabled.Store(true)
	return inj
}

// SetEnabled flips probabilistic injection on or off. Scheduled rules
// are unaffected: they fire exactly when scripted.
func (inj *Injector) SetEnabled(on bool) { inj.enabled.Store(on) }

// Enabled reports the switch.
func (inj *Injector) Enabled() bool { return inj.enabled.Load() }

// ReleaseWedges unblocks every wedged batch, past and future (wedges
// injected after the release return immediately). Call it at test
// teardown so abandoned goroutines exit instead of leaking.
func (inj *Injector) ReleaseWedges() {
	inj.releaseOnce.Do(func() { close(inj.release) })
}

// Count reports how many faults of kind k have been injected.
func (inj *Injector) Count(k Kind) int64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return inj.counts[k].Load()
}

// Total reports all injected faults.
func (inj *Injector) Total() int64 {
	var t int64
	for i := range inj.counts {
		t += inj.counts[i].Load()
	}
	return t
}

// ErrWedgeReleased is returned by a wedged Run after ReleaseWedges.
var ErrWedgeReleased = fmt.Errorf("chaos: wedged batch released")

// FaultySystem wraps an arch.System with fault injection. Like any
// System it is single-goroutine; a fleet of wrapped replicas shares one
// Injector but each has its own RNG and schedule slice, so a run is
// deterministic per (seed, replica, batch sequence).
type FaultySystem struct {
	inner   arch.System
	cfg     Config
	replica int
	inj     *Injector
	rng     *rand.Rand
	runs    int64
	rules   map[int64]Kind // batch number -> scripted fault
}

// Wrap builds a FaultySystem for replica id. Schedule rules whose
// Replica differs from id are ignored, so one Config describes a whole
// fleet. inj may be shared across replicas; if nil a fresh one is made.
func Wrap(inner arch.System, cfg Config, id int, inj *Injector) *FaultySystem {
	cfg = cfg.withDefaults()
	if inj == nil {
		inj = NewInjector()
	}
	rules := make(map[int64]Kind)
	for _, r := range cfg.Schedule {
		if r.Replica == id {
			rules[r.Batch] = r.Kind
		}
	}
	return &FaultySystem{
		inner:   inner,
		cfg:     cfg,
		replica: id,
		inj:     inj,
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(id))),
		rules:   rules,
	}
}

// WrapFleet wraps every system of a pool with one shared Injector,
// seeding replica i with cfg.Seed+i. Returns the wrapped systems (as
// arch.System, ready for serve.Options.Systems) and the injector.
func WrapFleet(systems []arch.System, cfg Config) ([]arch.System, *Injector) {
	inj := NewInjector()
	out := make([]arch.System, len(systems))
	for i, sys := range systems {
		out[i] = Wrap(sys, cfg, i, inj)
	}
	return out, inj
}

// Name identifies the wrapper and its inner architecture.
func (s *FaultySystem) Name() string { return "chaos(" + s.inner.Name() + ")" }

// Inner returns the wrapped system.
func (s *FaultySystem) Inner() arch.System { return s.inner }

// Runs reports how many Run calls this wrapper has seen.
func (s *FaultySystem) Runs() int64 { return s.runs }

// pick decides whether this Run call injects a fault, and which.
// Scheduled rules take precedence and fire even when the injector is
// disabled; probabilistic faults draw from the per-replica RNG only
// while enabled. The RNG is advanced exactly once per call regardless of
// the enabled switch, so a run's fault sequence depends only on the
// batch sequence, not on when the switch flips.
func (s *FaultySystem) pick() (Kind, bool) {
	var u float64
	if !s.cfg.Rates.zero() {
		u = s.rng.Float64()
	}
	if k, ok := s.rules[s.runs]; ok {
		return k, true
	}
	if !s.inj.Enabled() || s.cfg.Rates.zero() {
		return 0, false
	}
	r := s.cfg.Rates
	switch {
	case u < r.Panic:
		return Panic, true
	case u < r.Panic+r.Wedge:
		return Wedge, true
	case u < r.Panic+r.Wedge+r.Corrupt:
		return Corrupt, true
	case u < r.Panic+r.Wedge+r.Corrupt+r.Latency:
		return Latency, true
	default:
		return 0, false
	}
}

// Run executes the batch, possibly injecting one fault first.
func (s *FaultySystem) Run(b trace.Batch) (*arch.RunStats, error) {
	s.runs++
	k, inject := s.pick()
	if !inject {
		return s.inner.Run(b)
	}
	s.inj.counts[k].Add(1)
	switch k {
	case Panic:
		panic(fmt.Sprintf("chaos: injected panic (replica %d, batch %d)", s.replica, s.runs))
	case Wedge:
		<-s.inj.release
		return nil, ErrWedgeReleased
	case Corrupt:
		st, err := s.inner.Run(b)
		if err == nil && st != nil {
			st.Cycles = -st.Cycles - 1 // impossible latency: detectably corrupt
		}
		return st, err
	case Latency:
		time.Sleep(s.cfg.Stall)
	}
	return s.inner.Run(b)
}
