// Package cluster scales the single-process serving layer out to N
// nodes — the cluster-level analogue of the paper's cross-level
// placement idea. Embedding tables are partitioned across nodes by a
// placement layer (a consistent-hash ring with weighted virtual nodes,
// or an LP-priced cost mode reusing internal/partition's access-volume
// machinery), the hottest tables are replicated on R nodes (the
// cluster-scope version of RecNMP/TRiM-B hot-entry replication), and a
// stateless Router scatter-gathers each lookup batch across the owning
// nodes with per-node deadlines, hedged requests after a p99-derived
// delay, and least-outstanding-work dispatch among a hot table's
// replicas.
//
// Every table is procedurally defined by its global index, so holding a
// table costs a node nothing at rest — what the placement partitions is
// serving load: each node's batch stream, simulated memory-channel
// occupancy, and hot-row-cache working set cover only the tables routed
// to it. Nodes therefore stay full-spec and bit-identity holds on every
// path, including the router's functional fallback for tables whose
// owners are all down: node loss degrades (Result.Degraded), it never
// fails — PR 2's quorum semantics at cluster scope.
//
// Transport is a seam: cluster.Node is implemented by LocalNode (wraps
// a serve.Server in-process), by Fleet (N servers in one binary), and
// by HTTPNode (a real TCP peer speaking the /v1/lookup wire format), so
// the router — and everything above it — never knows which it holds.
package cluster

import (
	"context"
	"errors"
	"sync/atomic"

	"recross/internal/serve"
	"recross/internal/trace"
)

// ErrNodeDown reports a call on a node that is not serving (killed
// fleet member, refused connection). The router treats it like any
// other node failure: retry on a replica, then functional fallback.
var ErrNodeDown = errors.New("cluster: node down")

// NodeStats are cumulative per-node serving counters.
type NodeStats struct {
	// Lookups counts successfully served Lookup calls.
	Lookups int64
	// Failures counts Lookup calls that returned an error.
	Failures int64
	// Cycles is the sum of the simulated DRAM-cycle latencies of the
	// batches that served this node's lookups — the node's simulated
	// busy time, which the scale-out benchmark divides wall work by.
	Cycles int64
}

// Node is the transport driver interface: everything the router needs
// from a backend, regardless of where it runs. Implementations must be
// safe for concurrent use.
type Node interface {
	// ID names the node (stable across restarts).
	ID() string
	// Lookup serves one sample, honoring ctx.
	Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error)
	// Health probes the node's serving state.
	Health(ctx context.Context) (serve.HealthReport, error)
	// Stats reports cumulative serving counters.
	Stats() NodeStats
	// Close releases the node (draining if it owns a server).
	Close() error
}

// LocalNode is the in-process transport driver: it wraps a
// *serve.Server directly. The server pointer is swappable so a Fleet
// can kill and later restart the node while routers keep their handle.
type LocalNode struct {
	id  string
	srv atomic.Pointer[serve.Server]

	lookups  atomic.Int64
	failures atomic.Int64
	cycles   atomic.Int64
}

// NewLocalNode wraps srv as a node named id.
func NewLocalNode(id string, srv *serve.Server) *LocalNode {
	n := &LocalNode{id: id}
	n.srv.Store(srv)
	return n
}

// ID names the node.
func (n *LocalNode) ID() string { return n.id }

// Server returns the currently installed server (nil while killed).
func (n *LocalNode) Server() *serve.Server { return n.srv.Load() }

// Swap installs a new server (nil to take the node down) and returns
// the previous one. The caller owns closing the returned server.
func (n *LocalNode) Swap(srv *serve.Server) *serve.Server {
	return n.srv.Swap(srv)
}

// Lookup serves one sample on the wrapped server.
func (n *LocalNode) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	srv := n.srv.Load()
	if srv == nil {
		n.failures.Add(1)
		return nil, ErrNodeDown
	}
	res, err := srv.Lookup(ctx, sample)
	if err != nil {
		n.failures.Add(1)
		return nil, err
	}
	n.lookups.Add(1)
	n.cycles.Add(int64(res.ServiceCycles))
	return res, nil
}

// Health reports the wrapped server's health.
func (n *LocalNode) Health(ctx context.Context) (serve.HealthReport, error) {
	_ = ctx
	srv := n.srv.Load()
	if srv == nil {
		return serve.HealthReport{}, ErrNodeDown
	}
	return srv.Health(), nil
}

// Stats reports cumulative counters (they survive Swap).
func (n *LocalNode) Stats() NodeStats {
	return NodeStats{
		Lookups:  n.lookups.Load(),
		Failures: n.failures.Load(),
		Cycles:   n.cycles.Load(),
	}
}

// Close drains and closes the wrapped server, leaving the node down.
func (n *LocalNode) Close() error {
	if srv := n.srv.Swap(nil); srv != nil {
		return srv.Close()
	}
	return nil
}
