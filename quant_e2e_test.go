package recross

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestQuantizedServeE2E is the acceptance run for per-tier precision: an
// int8 DRAM tier over an int8 cold tier serves answers bit-identical to a
// standalone quantized reference layer (quantization error is
// representational, never path-dependent), stays within the codec's
// derived error bound of the fp32 reference, and reports the
// fp32-resident vs quantized-logical byte split on /metrics.
func TestQuantizedServeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second acceptance run")
	}
	spec := coldSpec()
	cold := coldTierConfig()
	cold.Precision = INT8
	cfg := Config{
		Spec: spec, ProfileSamples: 1500, Batch: 32,
		Precision: INT8, Cold: cold,
	}
	srv, err := NewServer(ReCross, cfg, 2, ServeOptions{
		MaxBatch:      32,
		MaxDelay:      50 * time.Millisecond,
		RowCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Quantized reference: a fresh layer at the same precision, no cold
	// route, no cache — the canonical decoded values.
	ref, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetPrecision(INT8); err != nil {
		t.Fatal(err)
	}
	fp32, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		sample := gen.Sample()
		res, err := srv.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ReduceSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := fp32.ReduceSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !AlmostEqual(res.Vectors[k], want[k], 0) {
				t.Fatalf("sample %d op %d: served vector differs from the quantized reference", i, k)
			}
			// Sanity-bound the codec error versus fp32: synthetic rows are
			// in [-1, 1), so per-row int8 error is under scale/2 + eps ~
			// 2/255/2, times the pooling factor for a weighted sum with
			// |w| <= 1.
			pool := float64(len(sample[k].Indices))
			bound := pool * (2.0/255.0/2.0 + 1e-3)
			for j := range exact[k] {
				if d := math.Abs(float64(res.Vectors[k][j] - exact[k][j])); d > bound {
					t.Fatalf("sample %d op %d lane %d: |served-fp32| = %g above %g", i, k, j, d, bound)
				}
			}
		}
	}

	// The data plane reports the precision split: resident fp32 bytes,
	// quantized logical bytes, and a compression ratio above 1.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"recross_dataplane_row_bytes_fp32",
		"recross_dataplane_row_bytes_quantized",
		"recross_dataplane_row_compression_ratio",
		"recross_coldstore_row_reads_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
	var ratio float64
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, "recross_dataplane_row_compression_ratio "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparsable ratio line %q: %v", line, err)
			}
			ratio = v
		}
	}
	if ratio <= 1 {
		t.Fatalf("compression ratio %v, want > 1 for int8 backing tables", ratio)
	}
}
