package main

import (
	"testing"

	"recross/internal/kernels"
)

// TestPerfWireSmoke exercises both wire benchmark rigs end to end at
// minimal scale, so the -perf cluster_wire series cannot rot between
// full runs: entries must produce positive latency and byte figures,
// and the binary wire must move fewer bytes per lookup than JSON.
func TestPerfWireSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up real TCP peers")
	}
	je, err := perfWireNode("json", kernels.FP32, "smoke_json")
	if err != nil {
		t.Fatal(err)
	}
	be, err := perfWireNode("binary", kernels.FP32, "smoke_binary")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []perfEntry{je, be} {
		if e.NsPerOp <= 0 || e.WireBytesPerLookup <= 0 {
			t.Fatalf("%s: degenerate entry %+v", e.Name, e)
		}
	}
	if be.WireBytesPerLookup >= je.WireBytesPerLookup {
		t.Errorf("binary wire moved %.0f B/lookup vs JSON %.0f — no byte win",
			be.WireBytesPerLookup, je.WireBytesPerLookup)
	}
}
