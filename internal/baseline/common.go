// Package baseline implements the five comparison architectures of the
// paper's evaluation (§5.1): a 16-core CPU with a 32 MB LLC, TensorDIMM
// (rank-level NMP, vertical partitioning), RecNMP (rank-level NMP,
// horizontal partitioning, 1 MB per-PE hot-entry cache), TRiM-G
// (bank-group-level NMP) and TRiM-B (bank-level NMP with 0.05 % hot-entry
// replication). All share the symmetric contiguous layout the paper
// describes in §3.1: tables allocated contiguously, the row index serving
// as the memory offset, interleaved across the memory nodes.
package baseline

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/dram"
	"recross/internal/energy"
	"recross/internal/memctrl"
	"recross/internal/sim"
	"recross/internal/trace"
)

// Config is shared by all baseline constructors.
type Config struct {
	Spec   trace.ModelSpec
	Ranks  int
	Tm     dram.Timing
	Energy energy.Params
	// Geo overrides the channel geometry (nil = dram.DDR5(Ranks)).
	Geo *dram.Geometry
}

// geometry resolves the channel geometry for the configured rank count.
func (c Config) geometry() dram.Geometry {
	if c.Geo != nil {
		g := *c.Geo
		g.Ranks = c.Ranks
		return g
	}
	return dram.DDR5(c.Ranks)
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.Tm == (dram.Timing{}) {
		c.Tm = dram.DDR5Timing()
	}
	if c.Energy == (energy.Params{}) {
		c.Energy = energy.Default()
	}
	return c
}

// layout is the contiguous symmetric data layout: a single vector-slot
// space striped over every bank of the channel.
type layout struct {
	geo    dram.Geometry
	spec   trace.ModelSpec
	vecLen int
	bursts int
	base   []int64 // per-table first slot
	total  int64
}

func newLayout(spec trace.ModelSpec, geo dram.Geometry) (*layout, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	vecLen := spec.Tables[0].VecLen
	for _, t := range spec.Tables {
		if t.VecLen != vecLen {
			return nil, fmt.Errorf("baseline: mixed vector lengths unsupported")
		}
	}
	l := &layout{geo: geo, spec: spec, vecLen: vecLen, bursts: arch.Bursts(geo, vecLen)}
	l.base = make([]int64, len(spec.Tables))
	for i, t := range spec.Tables {
		l.base[i] = l.total
		l.total += t.Rows
	}
	capSlots := int64(geo.TotalBanks()) * int64(geo.RowsPerBank()) * int64(geo.ColumnsPerRow()/l.bursts)
	if l.total > capSlots {
		return nil, fmt.Errorf("baseline: model needs %d vector slots, channel holds %d", l.total, capSlots)
	}
	return l, nil
}

// slot returns the global vector slot of (table, row).
func (l *layout) slot(table int, row int64) int64 { return l.base[table] + row }

// allBanks returns the flat indices of every bank in the channel.
func allBanks(geo dram.Geometry) []int {
	out := make([]int, geo.TotalBanks())
	for i := range out {
		out[i] = i
	}
	return out
}

// rankBanks returns the flat indices of every bank in one rank.
func rankBanks(geo dram.Geometry, rank int) []int {
	n := geo.BanksPerRank()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = rank*n + i
	}
	return out
}

// Cache access energies (nanojoules per vector hit): a 32 MB LLC read is
// roughly 1.2 nJ, RecNMP's small 1 MB PE cache about 0.15 nJ.
const (
	llcHitNano     = 1.2
	peCacheHitNano = 0.15
)

// finishRun assembles the common RunStats epilogue. cacheNano prices the
// architecture's cache hits (0 when there is no cache).
func finishRun(cfg Config, geo dram.Geometry, finish sim.Cycle, st dram.Stats,
	res memctrl.Result, lookups, cacheHits, psumFolds int64, vecLen int,
	nodeLoads []int64, cacheNano float64) *arch.RunStats {
	ops := arch.ReduceOps(lookups, psumFolds, vecLen)
	e := energy.Account(cfg.Energy, st, ops, finish, geo.Ranks, geo.BurstBytes)
	e.Cache = energy.CacheEnergy(cacheHits, cacheNano)
	p50, p99 := arch.OpPercentiles(res)
	return &arch.RunStats{
		OpP50: p50, OpP99: p99,
		Cycles:    finish,
		DRAM:      st,
		Ops:       ops,
		RowHits:   res.RowHits,
		RowMisses: res.RowMisses,
		Lookups:   lookups,
		CacheHits: cacheHits,
		NodeLoads: nodeLoads,
		Imbalance: arch.LoadsToImbalance(nodeLoads),
		Energy:    e,
	}
}
