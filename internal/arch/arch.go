// Package arch provides the machinery shared by every evaluated
// architecture (the CPU baseline, TensorDIMM, RecNMP, TRiM-G/B in
// internal/baseline, and ReCross in internal/core): the System interface
// the experiment harness drives, vector-slot-to-DRAM-location striping,
// channel construction and draining, NMP-instruction arrival modelling, and
// run statistics including per-PE-node loads, the load-imbalance metric of
// §3.1, and the energy account.
package arch

import (
	"fmt"

	"recross/internal/dram"
	"recross/internal/energy"
	"recross/internal/memctrl"
	"recross/internal/nmp"
	"recross/internal/sim"
	"recross/internal/stats"
	"recross/internal/trace"
)

// RunStats reports one batch execution.
type RunStats struct {
	// Cycles is the end-to-end batch latency in DRAM cycles, including
	// result transfer back to the host.
	Cycles sim.Cycle
	// DRAM is the channel's event counters.
	DRAM dram.Stats
	// Ops counts PE (or host ALU) arithmetic.
	Ops nmp.OpStats
	// RowHits/RowMisses count vector requests served with/without
	// activations.
	RowHits, RowMisses int64
	// Lookups is the number of gathered embedding vectors.
	Lookups int64
	// CacheHits counts lookups absorbed by a cache (LLC or RecNMP PE
	// cache) that never reached DRAM.
	CacheHits int64
	// NodeLoads is the per-PE-node busy-time proxy (cycles of data
	// cadence) used for the load-imbalance ratio.
	NodeLoads []int64
	// Imbalance is max(NodeLoads)/mean(NodeLoads), the paper's §3.1 ratio.
	Imbalance float64
	// OpP50 and OpP99 are the median and tail per-operation serving
	// latencies (first instruction arrival to last data delivery).
	OpP50, OpP99 sim.Cycle
	// Energy is the priced run.
	Energy energy.Breakdown
	// ColdLookups counts gathers served by the flash cold tier (zero on
	// systems without one); ColdPageReads/ColdPageHits are the tier's
	// device page-buffer counters and ColdCycles its batch latency
	// component (overlapped with the DRAM phase, so Cycles is the max of
	// the two, not the sum).
	ColdLookups, ColdPageReads, ColdPageHits int64
	ColdCycles                               sim.Cycle
}

// OpPercentiles extracts the P50/P99 op latencies from a drain result.
func OpPercentiles(res memctrl.Result) (p50, p99 sim.Cycle) {
	if len(res.OpLatency) == 0 {
		return 0, 0
	}
	xs := make([]float64, len(res.OpLatency))
	for i, v := range res.OpLatency {
		xs[i] = float64(v)
	}
	return sim.Cycle(stats.Percentile(xs, 50)), sim.Cycle(stats.Percentile(xs, 99))
}

// System is one architecture under evaluation.
type System interface {
	// Name identifies the architecture ("cpu", "tensordimm", ...).
	Name() string
	// Run executes one batch through the timing model.
	Run(b trace.Batch) (*RunStats, error)
}

// ChannelSpec configures one simulated memory channel.
type ChannelSpec struct {
	Geo    dram.Geometry
	Tm     dram.Timing
	Mode   dram.InstrMode
	Policy memctrl.Policy
	// SALPBanks lists flat bank indices to make subarray-parallel.
	SALPBanks []int
	// Window is the scheduler lookahead (0 => memctrl.DefaultWindow).
	Window int
	// OpWindow caps concurrently in-flight embedding ops (0 = unlimited).
	// NMP designs track in-flight ops with the 1-bit batchTag (§4.2), so
	// only a handful of ops overlap; the CPU baseline overlaps one op per
	// core.
	OpWindow int
	// Reference selects the O(banks)-scan memctrl.Reference scheduler
	// instead of the fast arbiter. The two are bit-identical (the memctrl
	// differential fuzzer enforces it); this knob exists for benchmarking
	// and for pinning down a divergence should one ever appear.
	Reference bool
}

// NMPOpWindow is the op concurrency the NMP dispatch pipeline sustains:
// the 1-bit batchTag allows two open ops per PE, and the dispatcher's
// queue lets a further pair stream in behind them.
const NMPOpWindow = 4

// CPUOpWindow is one in-flight embedding op per core (Table 2: 16 cores).
const CPUOpWindow = 16

// ChannelSim owns a reusable channel + controller pair for one ChannelSpec:
// Run resets the channel timing state in place and drains through the
// retained scheduler, so steady-state batch runs reuse every piece of
// scheduler scratch (bank queues, node pool, heaps, op maps) instead of
// rebuilding them. Like the channel it wraps, a ChannelSim is single-
// goroutine — the documented System contract.
type ChannelSim struct {
	ch  *dram.Channel
	ctl *memctrl.Controller
	ref *memctrl.Reference
}

// NewChannelSim builds the channel and scheduler for spec.
func NewChannelSim(spec ChannelSpec) (*ChannelSim, error) {
	ch, err := dram.NewChannel(spec.Geo, spec.Tm, spec.Mode)
	if err != nil {
		return nil, err
	}
	for _, fb := range spec.SALPBanks {
		if fb < 0 || fb >= spec.Geo.TotalBanks() {
			return nil, fmt.Errorf("arch: SALP bank %d out of range", fb)
		}
		ch.EnableSALP(fb)
	}
	w := spec.Window
	if w == 0 {
		w = memctrl.DefaultWindow
	}
	s := &ChannelSim{ch: ch}
	if spec.Reference {
		r, err := memctrl.NewReference(ch, spec.Policy, w)
		if err != nil {
			return nil, err
		}
		r.OpWindowLimit = spec.OpWindow
		s.ref = r
	} else {
		c, err := memctrl.New(ch, spec.Policy, w)
		if err != nil {
			return nil, err
		}
		c.OpWindowLimit = spec.OpWindow
		s.ctl = c
	}
	return s, nil
}

// Channel exposes the underlying channel (for stats inspection between
// runs; its counters are cleared by the next Run).
func (s *ChannelSim) Channel() *dram.Channel { return s.ch }

// Run resets the channel, drains reqs, and then streams resultBursts of
// reduced results back over the channel DQ. It returns the end-to-end
// finish time, a stats snapshot (safe to retain: it does not alias the
// channel's reused counters), and the drain result.
func (s *ChannelSim) Run(reqs []memctrl.Request, resultBursts int) (sim.Cycle, dram.Stats, memctrl.Result, error) {
	s.ch.Reset()
	var res memctrl.Result
	var err error
	if s.ref != nil {
		res, err = s.ref.Drain(reqs)
	} else {
		res, err = s.ctl.Drain(reqs)
	}
	if err != nil {
		return 0, dram.Stats{}, memctrl.Result{}, err
	}
	finish := res.Finish
	if resultBursts > 0 {
		finish = s.ch.StreamResults(resultBursts, finish)
	}
	return finish, snapshotStats(&s.ch.St), res, nil
}

// snapshotStats deep-copies the per-bank/BG/rank counter slices, which the
// channel zeroes in place on Reset.
func snapshotStats(st *dram.Stats) dram.Stats {
	out := *st
	out.PerBankRDs = append([]int64(nil), st.PerBankRDs...)
	out.PerBGRDs = append([]int64(nil), st.PerBGRDs...)
	out.PerRankRDs = append([]int64(nil), st.PerRankRDs...)
	out.PerBankACTs = append([]int64(nil), st.PerBankACTs...)
	return out
}

// RunChannel drains reqs through a fresh channel and then streams
// resultBursts of reduced results back over the channel DQ. It returns the
// end-to-end finish time, the channel stats, and the drain result. Callers
// on a hot path should hold a ChannelSim instead and amortize the setup.
func RunChannel(spec ChannelSpec, reqs []memctrl.Request, resultBursts int) (sim.Cycle, dram.Stats, memctrl.Result, error) {
	s, err := NewChannelSim(spec)
	if err != nil {
		return 0, dram.Stats{}, memctrl.Result{}, err
	}
	return s.Run(reqs, resultBursts)
}

// Bursts returns the RD bursts per vector of vecLen FP32 elements, at least
// one.
func Bursts(geo dram.Geometry, vecLen int) int {
	return BurstsBytes(geo, vecLen*4)
}

// BurstsBytes returns the RD bursts covering rowBytes bytes, at least one —
// the quantized-storage analogue of Bursts, for vectors stored in an
// encoded row format smaller than fp32.
func BurstsBytes(geo dram.Geometry, rowBytes int) int {
	b := (rowBytes + geo.BurstBytes - 1) / geo.BurstBytes
	if b < 1 {
		b = 1
	}
	return b
}

// Stripe maps a region-local vector slot onto the region's banks:
// consecutive slots round-robin across the banks (spreading load), then
// fill each bank row by row. bursts is the vector's burst count; vectors
// never straddle rows.
func Stripe(geo dram.Geometry, banks []int, slot int64, bursts int) (dram.Loc, error) {
	if len(banks) == 0 {
		return dram.Loc{}, fmt.Errorf("arch: empty bank set")
	}
	if bursts <= 0 || bursts > geo.ColumnsPerRow() {
		return dram.Loc{}, fmt.Errorf("arch: %d bursts per vector out of range", bursts)
	}
	vecPerRow := geo.ColumnsPerRow() / bursts
	n := int64(len(banks))
	bank := banks[slot%n]
	within := slot / n
	row := int(within / int64(vecPerRow))
	col := int(within%int64(vecPerRow)) * bursts
	if row >= geo.RowsPerBank() {
		return dram.Loc{}, fmt.Errorf("arch: slot %d exceeds capacity of %d banks", slot, len(banks))
	}
	// Interleave logical rows across subarrays so consecutive rows (the
	// hot head, placed densely) land in different subarrays — without
	// this, rows 0..RowsPerSubarray-1 would all share subarray 0 and
	// serialize at tRC even in a SALP bank.
	row = (row%geo.Subarrays)*geo.RowsPerSubarray + row/geo.Subarrays
	r, bg, bk := geo.BankLoc(bank)
	return dram.Loc{Rank: r, BG: bg, Bank: bk, Row: row, Col: col}, nil
}

// InstrCycles returns the instruction-feed cycles per vector lookup, used
// to stagger request arrivals — the §4.2 bottleneck. One 82-bit NMP
// instruction covers a whole vector (the vsize field drives the local
// command expansion): 1 cycle over the 94 two-stage pins, 6 cycles over the
// bare 14-pin C/A. For the conventional host, cores inject requests at
// roughly one every other cycle.
func InstrCycles(mode dram.InstrMode, bursts int) sim.Cycle {
	if mode == dram.Conventional {
		return 2
	}
	_ = bursts // the instruction is per-vector, independent of length
	return mode.InstrFeedCycles()
}

// ReduceOps estimates the PE arithmetic of a run: one FP32 multiply and add
// per element gathered (weighted sum), plus merge adds for partial-result
// folding.
func ReduceOps(lookups, psumFolds int64, vecLen int) nmp.OpStats {
	return nmp.OpStats{
		Adds:  (lookups + psumFolds) * int64(vecLen),
		Mults: lookups * int64(vecLen),
	}
}

// LoadsToImbalance converts per-node busy proxies into the paper's
// imbalance ratio.
func LoadsToImbalance(loads []int64) float64 {
	return stats.ImbalanceRatio(loads)
}

// PsumFloor extends a drain finish time with the occupancy floors of the
// partial-sum collection paths — the data movement §3.3 says cross-level
// NMP minimizes ("the accessed data must span bank, bank-group and rank to
// reach the memory controller ... exploiting three NMP levels minimizes
// the amount of data transferred as they are reduced promptly").
//
// Per-op psums from bank-level PEs cross their bank group's local I/O
// gating (tCCD_L per burst); psums from bank-group level cross the chip DQ
// (tCCD_S per burst). The collection is pipelined with ongoing gathers, so
// it costs nothing while the shared bus has slack — but the batch can
// never finish before any single bus has moved all its traffic. gatingBusy
// holds, per bank group, the gather + psum bursts crossing its gating;
// dqBusy per rank likewise for the chip DQ.
func PsumFloor(tm dram.Timing, finish sim.Cycle, gatingBusy, dqBusy []int64) sim.Cycle {
	for _, bursts := range gatingBusy {
		if f := sim.Cycle(bursts) * tm.TCCDL; f > finish {
			finish = f
		}
	}
	for _, bursts := range dqBusy {
		if f := sim.Cycle(bursts) * tm.TCCDS; f > finish {
			finish = f
		}
	}
	return finish
}

// DedupOp merges duplicate indices within one embedding operation, summing
// their weights — the encoder-side memoization rank-NMP designs apply:
// gathering row X twice with weights w1 and w2 equals gathering it once
// with w1+w2, so only one DRAM read is issued. Sharp production skews make
// this very effective on the head of the distribution. The result is used
// for request generation (timing); for Sum/Max ops the merged weights are
// ignored, and deduplication is exact for those operators too.
func DedupOp(op trace.Op) trace.Op {
	seen := make(map[int64]int, len(op.Indices))
	out := trace.Op{Table: op.Table}
	for k, idx := range op.Indices {
		if j, ok := seen[idx]; ok {
			out.Weights[j] += op.Weights[k]
			continue
		}
		seen[idx] = len(out.Indices)
		out.Indices = append(out.Indices, idx)
		out.Weights = append(out.Weights, op.Weights[k])
	}
	return out
}

// Deduper is the scratch-reusing form of DedupOp for hot paths: the
// returned op's Indices and Weights alias the Deduper's buffers and are
// valid only until the next Dedup call. Single-goroutine, like the Systems
// that embed one.
type Deduper struct {
	seen map[int64]int
	idx  []int64
	wts  []float32
}

// Dedup merges duplicate indices as DedupOp does, without allocating in
// steady state.
func (d *Deduper) Dedup(op trace.Op) trace.Op {
	if d.seen == nil {
		d.seen = make(map[int64]int, len(op.Indices))
	}
	clear(d.seen)
	d.idx = d.idx[:0]
	d.wts = d.wts[:0]
	for k, idx := range op.Indices {
		if j, ok := d.seen[idx]; ok {
			d.wts[j] += op.Weights[k]
			continue
		}
		d.seen[idx] = len(d.idx)
		d.idx = append(d.idx, idx)
		d.wts = append(d.wts, op.Weights[k])
	}
	return trace.Op{Table: op.Table, Indices: d.idx, Weights: d.wts}
}

// CountBatch returns the total lookups and ops in a batch.
func CountBatch(b trace.Batch) (lookups, ops int64) {
	for _, s := range b {
		for _, op := range s {
			ops++
			lookups += int64(len(op.Indices))
		}
	}
	return lookups, ops
}
