package coldstore

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// testSource is a deterministic RowSource: element (id, row, j) is a fixed
// function of its coordinates, so any two materializations of a row are
// bit-identical — the property the store must preserve through its file.
type testSource struct {
	id     uint64
	rows   int64
	vecLen int
}

func (t *testSource) Rows() int64 { return t.rows }

func (t *testSource) VecLen() int { return t.vecLen }

func (t *testSource) Row(i int64, dst []float32) []float32 {
	x := t.id*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	for j := range dst {
		x ^= x >> 29
		x *= 0x94D049BB133111EB
		dst[j] = float32(x>>40)/float32(1<<23) - 1
	}
	return dst
}

func newTestStore(t *testing.T, cfg Config, rows ...int64) (*Store, []RowSource) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srcs := make([]RowSource, len(rows))
	for i, n := range rows {
		srcs[i] = &testSource{id: uint64(i) + 1, rows: n, vecLen: 16}
	}
	s, err := Open(cfg, srcs)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, srcs
}

// TestReadRowBitIdentical checks every row of every table round-trips the
// file bit-for-bit, for both the pread and mmap backends.
func TestReadRowBitIdentical(t *testing.T) {
	for _, mmap := range []bool{false, true} {
		name := "pread"
		if mmap {
			name = "mmap"
		}
		t.Run(name, func(t *testing.T) {
			s, srcs := newTestStore(t, Config{PageBytes: 256, CacheBytes: 1024, Mmap: mmap}, 37, 101)
			got := make([]float32, 16)
			want := make([]float32, 16)
			for ti, src := range srcs {
				for i := int64(0); i < src.Rows(); i++ {
					if !s.ReadRow(ti, i, got) {
						t.Fatalf("table %d row %d not held", ti, i)
					}
					src.Row(i, want)
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("table %d row %d elem %d: %v != %v", ti, i, j, got[j], want[j])
						}
					}
				}
			}
			if s.Stats().RowReads == 0 {
				t.Fatal("no row reads counted")
			}
		})
	}
}

// TestReadRowOutOfRange checks bad coordinates report "not held" instead
// of serving wrong bits.
func TestReadRowOutOfRange(t *testing.T) {
	s, _ := newTestStore(t, Config{}, 10)
	dst := make([]float32, 16)
	for _, c := range []struct {
		ti  int
		idx int64
	}{{-1, 0}, {1, 0}, {0, -1}, {0, 10}} {
		if s.ReadRow(c.ti, c.idx, dst) {
			t.Fatalf("ReadRow(%d, %d) claimed success", c.ti, c.idx)
		}
	}
}

// TestTableMapBijection checks slotOf/rowOf are mutually inverse
// bijections under random count sets.
func TestTableMapBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := int64(rng.Intn(200) + 1)
		var counts []RowCount
		for r := int64(0); r < rows; r++ {
			if rng.Intn(3) == 0 {
				counts = append(counts, RowCount{Row: r, Count: int64(rng.Intn(100) + 1)})
			}
		}
		m := newTableMap(rows, counts)
		seen := map[int64]bool{}
		for r := int64(0); r < rows; r++ {
			slot := m.slotOf(r)
			if slot < 0 || slot >= rows {
				t.Fatalf("trial %d: row %d -> slot %d out of [0,%d)", trial, r, slot, rows)
			}
			if seen[slot] {
				t.Fatalf("trial %d: slot %d assigned twice", trial, slot)
			}
			seen[slot] = true
			if back := m.rowOf(slot); back != r {
				t.Fatalf("trial %d: rowOf(slotOf(%d)) = %d", trial, r, back)
			}
		}
	}
}

// TestFrequencyPacking checks Remap packs the counted rows into the head
// slots in descending count order, and reads remain bit-identical after
// the repack.
func TestFrequencyPacking(t *testing.T) {
	s, srcs := newTestStore(t, Config{PageBytes: 256}, 64)
	// Touch everything once under the identity mapping.
	buf := make([]float32, 16)
	for i := int64(0); i < 64; i++ {
		s.ReadRow(0, i, buf)
	}
	counts := []RowCount{{Row: 40, Count: 100}, {Row: 7, Count: 50}, {Row: 63, Count: 10}}
	if err := s.Remap([][]RowCount{counts}); err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if got := s.HotRows(0); got != 3 {
		t.Fatalf("HotRows = %d, want 3", got)
	}
	m := s.maps[0]
	for slot, want := range []int64{40, 7, 63} {
		if m.hotRows[slot] != want {
			t.Fatalf("slot %d holds row %d, want %d", slot, m.hotRows[slot], want)
		}
	}
	want := make([]float32, 16)
	for i := int64(0); i < 64; i++ {
		if !s.ReadRow(0, i, buf) {
			t.Fatalf("row %d lost after remap", i)
		}
		srcs[0].Row(i, want)
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("row %d elem %d after remap: %v != %v", i, j, buf[j], want[j])
			}
		}
	}
	if s.Stats().Remaps != 1 {
		t.Fatalf("Remaps = %d", s.Stats().Remaps)
	}
}

// TestPageCacheCounters checks hit/miss/eviction accounting through a
// cache sized to two pages.
func TestPageCacheCounters(t *testing.T) {
	// 4 rows per page (16 floats * 4 B = 64 B vectors, 256 B pages),
	// cache of exactly 2 pages.
	s, _ := newTestStore(t, Config{PageBytes: 256, CacheBytes: 512}, 64)
	buf := make([]float32, 16)
	s.ReadRow(0, 0, buf) // page 0 miss
	s.ReadRow(0, 1, buf) // page 0 hit
	s.ReadRow(0, 4, buf) // page 1 miss
	st := s.Stats()
	if st.PageMisses != 2 || st.PageHits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", st.PageHits, st.PageMisses)
	}
	// Stream the rest: must evict.
	for i := int64(8); i < 64; i += 4 {
		s.ReadRow(0, i, buf)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions after streaming %d pages through 2 frames", 64/4)
	}
}

// TestPrefetchWarmsCache checks an async prefetch turns the next read
// into a page hit.
func TestPrefetchWarmsCache(t *testing.T) {
	s, _ := newTestStore(t, Config{PageBytes: 256, Prefetch: 8}, 64)
	s.Prefetch(0, 12)
	// The prefetcher is async: wait for the page to land.
	deadline := time.Now().Add(5 * time.Second)
	for !s.cacheContains(0, 12) {
		if time.Now().After(deadline) {
			t.Fatalf("prefetched page never landed: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	buf := make([]float32, 16)
	s.ReadRow(0, 12, buf)
	if st := s.Stats(); st.PageHits == 0 {
		t.Fatalf("prefetched read missed: %+v", st)
	}
}

// cacheContains reports whether the page holding (table, idx) is cached.
func (s *Store) cacheContains(table int, idx int64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	page := s.pageBase[table] + s.maps[table].slotOf(idx)/int64(s.rpp)
	return s.cache.contains(page)
}

// TestReduceIntoMatchesHostOrder checks the in-storage reduction returns
// the same bits as an index-order host reduction over store reads.
func TestReduceIntoMatchesHostOrder(t *testing.T) {
	s, _ := newTestStore(t, Config{PageBytes: 256}, 128)
	indices := []int64{3, 77, 3, 120, 55}
	weights := []float32{0.5, 1.25, 2, 0.75, 1}
	got := make([]float32, 16)
	if err := s.ReduceInto(got, 0, indices, weights, 0); err != nil {
		t.Fatalf("ReduceInto: %v", err)
	}
	want := make([]float32, 16)
	row := make([]float32, 16)
	for k, idx := range indices {
		s.ReadRow(0, idx, row)
		for j := range want {
			want[j] += weights[k] * row[j]
		}
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("elem %d: %v != %v", j, got[j], want[j])
		}
	}
}

// TestConcurrentReadsAndRemap hammers concurrent readers, prefetchers and
// remaps; under -race this is the cold tier's thread-safety proof. Every
// read must return reference bits no matter which mapping generation
// serves it.
func TestConcurrentReadsAndRemap(t *testing.T) {
	s, srcs := newTestStore(t, Config{PageBytes: 256, CacheBytes: 1024, Prefetch: 16}, 256)
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			got := make([]float32, 16)
			want := make([]float32, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := int64(rng.Intn(256))
				if rng.Intn(4) == 0 {
					s.Prefetch(0, idx)
					continue
				}
				if !s.ReadRow(0, idx, got) {
					t.Errorf("row %d not held", idx)
					return
				}
				srcs[0].Row(idx, want)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("row %d elem %d: %v != %v", idx, j, got[j], want[j])
						return
					}
				}
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(99))
	for r := 0; r < 20; r++ {
		var counts []RowCount
		for n := 0; n < 32; n++ {
			counts = append(counts, RowCount{Row: int64(rng.Intn(256)), Count: int64(rng.Intn(50) + 1)})
		}
		if err := s.Remap([][]RowCount{counts}); err != nil {
			t.Fatalf("Remap: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSimDeterministicAndISR checks the replica timing model: identical
// slot streams price identically, repeated pages hit the device buffer,
// and in-storage reduction cuts the link transfer for pooled gathers.
func TestSimDeterministicAndISR(t *testing.T) {
	spec := TierSpec{PageBytes: 256}
	vecBytes := 64
	slots := make([]int64, 0, 128)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 128; i++ {
		slots = append(slots, int64(rng.Intn(1024)))
	}
	a, b := NewSim(spec, vecBytes), NewSim(spec, vecBytes)
	ca, ra, ha := a.Batch(slots, 4)
	cb, rb, hb := b.Batch(slots, 4)
	if ca != cb || ra != rb || ha != hb {
		t.Fatalf("same stream priced differently: (%d,%d,%d) vs (%d,%d,%d)", ca, ra, ha, cb, rb, hb)
	}
	if ra == 0 {
		t.Fatal("no page reads priced")
	}
	// Rerunning the same batch must mostly hit the device buffer.
	_, r2, h2 := a.Batch(slots, 4)
	if h2 <= ha || r2 >= ra {
		t.Fatalf("no buffer reuse on rerun: reads %d->%d hits %d->%d", ra, r2, ha, h2)
	}

	// A link-bound stream (every slot in one cached page) must get faster
	// with in-storage reduction: the link carries ops, not rows.
	isr := TierSpec{PageBytes: 256, InStorageReduce: true}
	hot := make([]int64, 512)
	host, dev := NewSim(spec, vecBytes), NewSim(isr, vecBytes)
	host.Batch(hot[:1], 1) // warm the single page in both buffers
	dev.Batch(hot[:1], 1)
	ch, _, _ := host.Batch(hot, 8)
	cd, _, _ := dev.Batch(hot, 8)
	if cd >= ch {
		t.Fatalf("in-storage reduce not faster on link-bound stream: %d >= %d", cd, ch)
	}
}

// TestEffectiveBWOrdersBelowDRAM pins the LP pricing property the fourth
// region depends on: cold bandwidth is far below any DRAM region's.
func TestEffectiveBWOrdersBelowDRAM(t *testing.T) {
	m := DefaultModel()
	bw := m.EffectiveBW(256, false)
	if bw <= 0 || bw > 1 {
		t.Fatalf("cold EffectiveBW = %v, want (0, 1] bytes/cycle", bw)
	}
	if isr := m.EffectiveBW(256, true); isr <= 0 {
		t.Fatalf("ISR EffectiveBW = %v", isr)
	}
}

// TestExpoSchema checks the metrics rendering carries the full
// recross_coldstore_* schema.
func TestExpoSchema(t *testing.T) {
	s, _ := newTestStore(t, Config{}, 8)
	buf := make([]float32, 16)
	s.ReadRow(0, 3, buf)
	expo := s.Expo()
	for _, name := range []string{
		"recross_coldstore_row_reads_total",
		"recross_coldstore_page_hits_total",
		"recross_coldstore_page_misses_total",
		"recross_coldstore_page_reads_total",
		"recross_coldstore_pages_populated_total",
		"recross_coldstore_evictions_total",
		"recross_coldstore_prefetches_total",
		"recross_coldstore_prefetch_drops_total",
		"recross_coldstore_reduces_total",
		"recross_coldstore_remaps_total",
		"recross_coldstore_checksum_failures_total",
		"recross_coldstore_repairs_total",
		"recross_coldstore_scrub_pages_total",
		"recross_coldstore_retries_total",
		"recross_coldstore_read_failures_total",
		"recross_coldstore_write_failures_total",
		"recross_coldstore_read_timeouts_total",
		"recross_coldstore_breaker_rejects_total",
		"recross_coldstore_breaker_opens_total",
		"recross_coldstore_breaker_half_opens_total",
		"recross_coldstore_breaker_closes_total",
		"recross_coldstore_breaker_state",
		"recross_coldstore_pages",
		"recross_coldstore_page_bytes",
		"recross_coldstore_cache_pages",
		"recross_coldstore_page_hit_rate",
	} {
		if !contains(expo, name) {
			t.Fatalf("expo missing %s:\n%s", name, expo)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
