package embedding

import (
	"math"
	"math/rand"
	"testing"

	"recross/internal/kernels"
	"recross/internal/stats"
	"recross/internal/trace"
)

// The differential-accuracy harness: the fp32 path stays bit-identical to
// the scalar reference (differential_test.go), while the quantized paths
// assert bounded error against the fp32 layer, with the bound derived
// from the codec parameters — never tuned to pass.
//
// Per-row reconstruction error (see internal/kernels):
//
//	int8: |scale|*(1/2 + 2^-13) + 2^-24*absMax
//	      grid rounding + grid shift from rounding scale + one float32
//	      rounding of the dequantized product
//	fp16: 2^-11*absMax + 2^-25
//	      half-ULP relative error of binary16 normals + subnormal floor
//
// Reduction error (sum / weighted-sum, P = pooling factor):
//
//	|quant - fp32| <= sum_r |w_r|*delta_r  +  P*2^-23 * sum_r |w_r|*absMax_r
//
// the first term propagating each row's codec error through the exact
// sum, the second bounding the difference of the two float32
// accumulations themselves (each of the two sums carries at most
// (P-1)*2^-24*sum|terms| of roundoff). Max pooling compares exactly, so
// its bound is just max_r delta_r.

// quantRowErr returns (delta, absMax) for encoding row at prec: the
// derived per-element reconstruction bound and the row's magnitude.
func quantRowErr(prec kernels.Precision, row []float32, q8 []uint8) (float64, float64) {
	absMax := 0.0
	for _, v := range row {
		if a := math.Abs(float64(v)); a > absMax {
			absMax = a
		}
	}
	switch prec {
	case kernels.INT8:
		scale, _ := kernels.QuantizeI8(q8, row)
		return math.Abs(float64(scale))*(0.5+math.Pow(2, -13)) + math.Pow(2, -24)*absMax, absMax
	case kernels.FP16:
		return math.Pow(2, -11)*absMax + math.Pow(2, -25), absMax
	default:
		return 0, absMax
	}
}

func TestReduceQuantizedBoundedError(t *testing.T) {
	kinds := []trace.ReduceKind{trace.Sum, trace.Max, trace.WeightedSum}
	for _, prec := range []kernels.Precision{kernels.INT8, kernels.FP16} {
		for _, vecLen := range diffVecLens {
			const rows = 911
			spec := trace.ModelSpec{Name: "acc", Tables: []trace.TableSpec{
				{Name: "t0", Rows: rows, VecLen: vecLen, Pooling: 8, Prob: 1, Skew: 1.1},
			}}
			ref, err := NewLayer(spec)
			if err != nil {
				t.Fatal(err)
			}
			ql, err := NewLayer(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := ql.SetPrecision(prec); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(vecLen)*31 + int64(prec)))
			row := make([]float32, vecLen)
			q8 := make([]uint8, vecLen)
			for _, pooling := range []int{1, 4, 80} {
				for _, kind := range kinds {
					for trial := 0; trial < 5; trial++ {
						op := trace.Op{Table: 0, Kind: kind, Indices: make([]int64, pooling)}
						for i := range op.Indices {
							op.Indices[i] = rng.Int63n(rows)
						}
						if kind == trace.WeightedSum {
							op.Weights = make([]float32, pooling)
							for i := range op.Weights {
								op.Weights[i] = rng.Float32()*4 - 2
							}
						}
						want, err := ref.Reduce(op)
						if err != nil {
							t.Fatal(err)
						}
						got, err := ql.Reduce(op)
						if err != nil {
							t.Fatal(err)
						}
						var bound float64
						if kind == trace.Max {
							for _, idx := range op.Indices {
								ref.Table(0).Row(idx, row)
								d, _ := quantRowErr(prec, row, q8)
								if d > bound {
									bound = d
								}
							}
						} else {
							var q, s float64
							for k, idx := range op.Indices {
								ref.Table(0).Row(idx, row)
								d, absMax := quantRowErr(prec, row, q8)
								w := 1.0
								if kind == trace.WeightedSum {
									w = math.Abs(float64(op.Weights[k]))
								}
								q += w * d
								s += w * absMax
							}
							bound = q + float64(pooling)*math.Pow(2, -23)*s
						}
						if e := stats.MaxAbsError(got, want); e > bound {
							t.Fatalf("%v vecLen=%d pooling=%d kind=%v trial=%d: err %g > derived bound %g",
								prec, vecLen, pooling, kind, trial, e, bound)
						}
					}
				}
			}
		}
	}
}

// TestReduceQuantizedPathsBitIdentical pins the precision-consistency
// invariant: within one quantized layer, the fused-from-codes path, the
// scalar decode-and-accumulate reference over the QuantTable, and the
// cold- and warm-cache passes all produce identical bits — quantization
// error is purely representational, never path-dependent.
func TestReduceQuantizedPathsBitIdentical(t *testing.T) {
	kinds := []trace.ReduceKind{trace.Sum, trace.Max, trace.WeightedSum}
	for _, prec := range []kernels.Precision{kernels.INT8, kernels.FP16} {
		for _, vecLen := range diffVecLens {
			const rows = 701
			spec := trace.ModelSpec{Name: "cons", Tables: []trace.TableSpec{
				{Name: "t0", Rows: rows, VecLen: vecLen, Pooling: 8, Prob: 1, Skew: 1.1},
			}}
			l, err := NewLayer(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.SetPrecision(prec); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(vecLen)*17 + int64(prec)))
			var ops []trace.Op
			for _, kind := range kinds {
				op := trace.Op{Table: 0, Kind: kind, Indices: make([]int64, 40)}
				for i := range op.Indices {
					op.Indices[i] = rng.Int63n(rows)
				}
				if kind == trace.WeightedSum {
					op.Weights = make([]float32, len(op.Indices))
					for i := range op.Weights {
						op.Weights[i] = rng.Float32()
					}
				}
				ops = append(ops, op)
			}
			var scr Scratch
			base := make([][]float32, len(ops))
			for i, op := range ops {
				// Scalar reference over the QuantTable: decode each row
				// (canonical bits) and accumulate with textbook loops.
				want := scalarReduceRef(l.Table(0), op)
				got := make([]float32, vecLen)
				if err := l.ReduceInto(got, op, &scr); err != nil {
					t.Fatal(err)
				}
				if !bitsEqual(got, want) {
					t.Fatalf("%v vecLen=%d op %d: fused path != scalar decode reference", prec, vecLen, i)
				}
				base[i] = got
			}
			cache, err := NewRowCache(1<<20, vecLen)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.AttachRowCache(cache); err != nil {
				t.Fatal(err)
			}
			for pass, name := range []string{"cold-cache", "warm-cache"} {
				for i, op := range ops {
					got := make([]float32, vecLen)
					if err := l.ReduceInto(got, op, &scr); err != nil {
						t.Fatal(err)
					}
					if stats.MaxULPDistance(got, base[i]) != 0 {
						t.Fatalf("%v vecLen=%d op %d: %s pass diverged from uncached", prec, vecLen, i, name)
					}
				}
				_ = pass
			}
		}
	}
}

// TestQuantTableRowCanonical checks that QuantTable.Row serves exactly
// Decode(Encode(src.Row)) — the canonical value the whole stack (cache
// fills, cold pages, fused kernels) agrees on.
func TestQuantTableRowCanonical(t *testing.T) {
	src, err := NewProcedural(7, 10000, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []kernels.Precision{kernels.INT8, kernels.FP16} {
		qt, err := NewQuantTable(src, prec)
		if err != nil {
			t.Fatal(err)
		}
		raw := make([]float32, 48)
		want := make([]float32, 48)
		got := make([]float32, 48)
		buf := make([]byte, prec.RowBytes(48))
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 200; trial++ {
			i := rng.Int63n(10000)
			src.Row(i, raw)
			kernels.EncodeRow(prec, buf, raw)
			kernels.DecodeRow(prec, want, buf)
			qt.Row(i, got)
			if !bitsEqual(got, want) {
				t.Fatalf("%v row %d: QuantTable.Row != Decode(Encode(src))", prec, i)
			}
		}
	}
	if _, err := NewQuantTable(src, kernels.FP32); err == nil {
		t.Fatal("NewQuantTable(FP32) should fail")
	}
}

// TestReduceSampleIntoZeroAlloc asserts the sample reduce path performs
// zero allocations in steady state: results are carved from the
// Scratch's reused arena, not freshly allocated per call.
func TestReduceSampleIntoZeroAlloc(t *testing.T) {
	spec := trace.ModelSpec{Name: "zeroalloc", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 5000, VecLen: 32, Pooling: 16, Prob: 1, Skew: 1.1},
		{Name: "t1", Rows: 5000, VecLen: 32, Pooling: 16, Prob: 1, Skew: 1.1},
	}}
	layer, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewRowCache(8<<20, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := layer.AttachRowCache(cache); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	sample := make(trace.Sample, 2)
	for ti := range sample {
		op := trace.Op{Table: ti, Kind: trace.WeightedSum,
			Indices: make([]int64, 64), Weights: make([]float32, 64)}
		for i := range op.Indices {
			op.Indices[i] = rng.Int63n(5000)
			op.Weights[i] = rng.Float32()
		}
		sample[ti] = op
	}
	var scr Scratch
	if _, err := layer.ReduceSampleInto(sample, &scr); err != nil { // warm cache+scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := layer.ReduceSampleInto(sample, &scr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReduceSampleInto allocates %v per op in steady state, want 0", allocs)
	}
}

// TestCloneVectors checks the escape hatch for results that must outlive
// the Scratch: equal values, fully independent storage.
func TestCloneVectors(t *testing.T) {
	v := [][]float32{{1, 2}, {3}, {}}
	c := CloneVectors(v)
	if len(c) != 3 || len(c[0]) != 2 || len(c[1]) != 1 || len(c[2]) != 0 {
		t.Fatalf("shape mismatch: %v", c)
	}
	v[0][0] = 99
	if c[0][0] != 1 {
		t.Fatal("clone aliases the source")
	}
}

func BenchmarkReduceSampleInto(b *testing.B) {
	spec := trace.ModelSpec{Name: "bench-sample", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 100000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := NewLayer(spec)
	if err != nil {
		b.Fatal(err)
	}
	cache, err := NewRowCache(8<<20, 64)
	if err != nil {
		b.Fatal(err)
	}
	if err := layer.AttachRowCache(cache); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.2, 8, 99999)
	sample := make(trace.Sample, 1)
	op := trace.Op{Table: 0, Kind: trace.WeightedSum,
		Indices: make([]int64, 80), Weights: make([]float32, 80)}
	for i := range op.Indices {
		op.Indices[i] = int64(z.Uint64())
		op.Weights[i] = rng.Float32()
	}
	sample[0] = op
	var scr Scratch
	if _, err := layer.ReduceSampleInto(sample, &scr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layer.ReduceSampleInto(sample, &scr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduceQuant compares fused quantized reduction against the
// fp32 dense baseline at equal vecLen: a 4096-gather weighted sum over a
// 200k x 64 table with no row cache, so every row comes from the backing
// store — the bandwidth contrast BENCH_PR9.json records.
func benchReduceQuant(b *testing.B, prec kernels.Precision) {
	spec := trace.ModelSpec{Name: "bench-quant", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 200000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := NewLayer(spec)
	if err != nil {
		b.Fatal(err)
	}
	if prec == kernels.FP32 {
		// Materialize the fp32 baseline densely so both sides read from
		// memory, not the procedural hash.
		src := layer.Table(0)
		dense, err := NewDense(src.Rows(), src.VecLen())
		if err != nil {
			b.Fatal(err)
		}
		row := make([]float32, src.VecLen())
		for i := int64(0); i < src.Rows(); i++ {
			src.Row(i, row)
			dense.SetRow(i, row)
		}
		layer, err = NewLayerFromTables([]Table{dense})
		if err != nil {
			b.Fatal(err)
		}
	} else if err := layer.SetPrecision(prec); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	idx := make([]int64, 4096)
	w := make([]float32, len(idx))
	for i := range idx {
		idx[i] = rng.Int63n(200000)
		w[i] = rng.Float32()
	}
	op := trace.Op{Table: 0, Kind: trace.WeightedSum, Indices: idx, Weights: w}
	dst := make([]float32, 64)
	var scr Scratch
	if err := layer.ReduceInto(dst, op, &scr); err != nil { // build slabs
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layer.ReduceInto(dst, op, &scr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduceQuantFP32(b *testing.B) { benchReduceQuant(b, kernels.FP32) }
func BenchmarkReduceQuantFP16(b *testing.B) { benchReduceQuant(b, kernels.FP16) }
func BenchmarkReduceQuantINT8(b *testing.B) { benchReduceQuant(b, kernels.INT8) }
