package serve

import (
	"recross/internal/arch"
)

// SystemUpdate transforms one replica's System in place or returns a
// replacement. It runs on the replica's worker goroutine between batches
// — the only moment the worker provably owns the System — so the
// single-goroutine arch.System contract holds without any locking on the
// serving path. Returning the received sys (after mutating it, e.g.
// core.ReCross.Adopt) and returning a brand-new System are both valid.
type SystemUpdate func(id int, sys arch.System) (arch.System, error)

// StageUpdate stages u on every replica and returns how many replicas it
// was staged on. Each worker applies it before its next batch; a replica
// that is restarting applies it when its rebuilt worker first runs (or
// never, if it dies — the supervisor's Rebuild factory is responsible for
// building replacement replicas already up to date). Staging again before
// a replica applied the previous update replaces it: updates are
// full-state swaps, not deltas, so the latest one wins.
func (s *Server) StageUpdate(u SystemUpdate) int {
	if u == nil {
		return 0
	}
	n := 0
	for _, rep := range s.replicas {
		rep.update.Store(&u)
		n++
	}
	s.metrics.UpdatesStaged.Add(int64(n))
	return n
}

// applyUpdate runs a staged update, if any, on the worker goroutine that
// owns rep.sys. A failed update leaves the old System serving: a stale
// placement is slow, a half-swapped one would be wrong.
func (rep *replica) applyUpdate(s *Server) {
	up := rep.update.Swap(nil)
	if up == nil {
		return
	}
	ns, err := (*up)(rep.id, rep.sys)
	if err != nil || ns == nil {
		s.metrics.UpdateFailures.Add(1)
		return
	}
	rep.sys = ns
	rep.sysname.Store(ns.Name())
	s.metrics.UpdatesApplied.Add(1)
}
