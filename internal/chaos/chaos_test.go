package chaos

import (
	"errors"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/sim"
	"recross/internal/trace"
)

// countSys is a minimal healthy System.
type countSys struct{ runs int }

func (c *countSys) Name() string { return "count" }
func (c *countSys) Run(b trace.Batch) (*arch.RunStats, error) {
	c.runs++
	return &arch.RunStats{Cycles: sim.Cycle(100), Imbalance: 1}, nil
}

func batch() trace.Batch {
	return trace.Batch{{{Table: 0, Kind: trace.Sum, Indices: []int64{1}, Weights: []float32{1}}}}
}

// outcomeOf classifies one Run call of a FaultySystem: "panic", "corrupt",
// "ok", or "err".
func outcomeOf(t *testing.T, fs *FaultySystem) (kind string) {
	t.Helper()
	defer func() {
		if recover() != nil {
			kind = "panic"
		}
	}()
	st, err := fs.Run(batch())
	switch {
	case err != nil:
		return "err"
	case st == nil || st.Cycles < 0:
		return "corrupt"
	default:
		return "ok"
	}
}

// TestDeterminism: two wrappers with the same seed, id and config must
// inject the identical fault sequence.
func TestDeterminism(t *testing.T) {
	cfg := Config{Rates: Rates{Panic: 0.2, Corrupt: 0.2, Latency: 0.1}, Seed: 7}
	a := Wrap(&countSys{}, cfg, 3, NewInjector())
	b := Wrap(&countSys{}, cfg, 3, NewInjector())
	var seqA, seqB []string
	for i := 0; i < 50; i++ {
		seqA = append(seqA, outcomeOf(t, a))
		seqB = append(seqB, outcomeOf(t, b))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("run %d: %q != %q — injection not deterministic", i, seqA[i], seqB[i])
		}
	}
	kinds := map[string]bool{}
	for _, k := range seqA {
		kinds[k] = true
	}
	if !kinds["panic"] || !kinds["corrupt"] || !kinds["ok"] {
		t.Errorf("50 runs at 20%%/20%% rates produced %v; want panics, corruptions and clean runs", kinds)
	}
}

// TestSchedule: "replica 2 panics on batch 5" fires exactly there, and
// rules for other replicas are ignored.
func TestSchedule(t *testing.T) {
	cfg := Config{Schedule: []Rule{
		{Replica: 2, Batch: 5, Kind: Panic},
		{Replica: 0, Batch: 1, Kind: Panic}, // not ours
	}}
	fs := Wrap(&countSys{}, cfg, 2, NewInjector())
	for i := 1; i <= 7; i++ {
		got := outcomeOf(t, fs)
		want := "ok"
		if i == 5 {
			want = "panic"
		}
		if got != want {
			t.Fatalf("batch %d: outcome %q, want %q", i, got, want)
		}
	}
}

// TestScheduleFiresWhileDisabled: scripted rules ignore the injector
// switch; probabilistic faults respect it.
func TestScheduleFiresWhileDisabled(t *testing.T) {
	inj := NewInjector()
	inj.SetEnabled(false)
	fs := Wrap(&countSys{}, Config{
		Rates:    Rates{Panic: 1.0},
		Schedule: []Rule{{Replica: 0, Batch: 3, Kind: Corrupt}},
	}, 0, inj)
	for i := 1; i <= 4; i++ {
		got := outcomeOf(t, fs)
		want := "ok" // Panic rate 1.0 is suppressed by the disabled switch
		if i == 3 {
			want = "corrupt"
		}
		if got != want {
			t.Fatalf("batch %d: outcome %q, want %q", i, got, want)
		}
	}
	if n := inj.Count(Corrupt); n != 1 {
		t.Errorf("corrupt count = %d, want 1", n)
	}
	if n := inj.Count(Panic); n != 0 {
		t.Errorf("panic count = %d while disabled", n)
	}
}

// TestCorrupt: corrupted stats carry a negative cycle count, the marker
// the pool validates for.
func TestCorrupt(t *testing.T) {
	fs := Wrap(&countSys{}, Config{Schedule: []Rule{{Replica: 0, Batch: 1, Kind: Corrupt}}}, 0, nil)
	st, err := fs.Run(batch())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles >= 0 {
		t.Fatalf("corrupt stats cycles = %d, want negative", st.Cycles)
	}
}

// TestWedgeRelease: a wedged Run blocks until ReleaseWedges, then
// returns ErrWedgeReleased.
func TestWedgeRelease(t *testing.T) {
	inj := NewInjector()
	fs := Wrap(&countSys{}, Config{Schedule: []Rule{{Replica: 0, Batch: 1, Kind: Wedge}}}, 0, inj)
	done := make(chan error, 1)
	go func() {
		_, err := fs.Run(batch())
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("wedged Run returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	inj.ReleaseWedges()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWedgeReleased) {
			t.Fatalf("released wedge err = %v, want ErrWedgeReleased", err)
		}
	case <-time.After(time.Second):
		t.Fatal("wedge did not release")
	}
	if n := inj.Count(Wedge); n != 1 {
		t.Errorf("wedge count = %d, want 1", n)
	}
}

// TestLatency: an injected stall delays the batch by at least Stall but
// still runs it.
func TestLatency(t *testing.T) {
	const stall = 10 * time.Millisecond
	inner := &countSys{}
	fs := Wrap(inner, Config{
		Stall:    stall,
		Schedule: []Rule{{Replica: 0, Batch: 1, Kind: Latency}},
	}, 0, nil)
	t0 := time.Now()
	if _, err := fs.Run(batch()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < stall {
		t.Errorf("stalled run took %v, want >= %v", d, stall)
	}
	if inner.runs != 1 {
		t.Errorf("inner runs = %d, want 1 (latency faults still execute)", inner.runs)
	}
}

// TestFleetCounters: WrapFleet shares one injector across replicas and
// Total sums the per-kind counts.
func TestFleetCounters(t *testing.T) {
	systems := []arch.System{&countSys{}, &countSys{}}
	cfg := Config{Schedule: []Rule{
		{Replica: 0, Batch: 1, Kind: Corrupt},
		{Replica: 1, Batch: 1, Kind: Latency},
	}, Stall: time.Microsecond}
	wrapped, inj := WrapFleet(systems, cfg)
	if len(wrapped) != 2 {
		t.Fatalf("wrapped %d systems", len(wrapped))
	}
	for _, w := range wrapped {
		if _, err := w.Run(batch()); err != nil {
			t.Fatal(err)
		}
	}
	if inj.Count(Corrupt) != 1 || inj.Count(Latency) != 1 || inj.Total() != 2 {
		t.Errorf("counts corrupt=%d latency=%d total=%d, want 1/1/2",
			inj.Count(Corrupt), inj.Count(Latency), inj.Total())
	}
	if name := wrapped[0].Name(); name != "chaos(count)" {
		t.Errorf("name = %q", name)
	}
}
