//go:build !amd64

package kernels

// Non-amd64 builds always take the portable Go kernels; the stubs below
// are unreachable (both flags are constant false).

const (
	useAVX2 = false
	useF16C = false
)

func decodeF16AVX(dst []float32, q []uint16)                           { panic("unreachable") }
func addF16AVX(dst []float32, q []uint16)                              { panic("unreachable") }
func axpyF16AVX(dst []float32, q []uint16, w float32)                  { panic("unreachable") }
func maxF16AVX(dst []float32, q []uint16)                              { panic("unreachable") }
func decodeI8AVX2(dst []float32, q []uint8, scale float32, zero int32) { panic("unreachable") }
func addI8AVX2(dst []float32, q []uint8, scale float32, zero int32)    { panic("unreachable") }
func axpyI8AVX2(dst []float32, q []uint8, w, scale float32, zero int32) {
	panic("unreachable")
}
func maxI8AVX2(dst []float32, q []uint8, scale float32, zero int32) { panic("unreachable") }
