//go:build amd64

package kernels

// CPU feature detection for the vectorized quantized kernels. Plain
// CPUID/XGETBV probing (quant_amd64.s) so the package stays free of
// external dependencies; the OS must have enabled YMM state saving
// (OSXSAVE + XCR0 bits 1-2) before any AVX path is taken.

var (
	useAVX2 bool // int8 family: AVX2 (VPMOVZXBD/VPBROADCASTD) + AVX
	useF16C bool // fp16 family: F16C (VCVTPH2PS) + AVX
)

func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
		f16c    = 1 << 29
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return
	}
	if xeax, _ := xgetbvAsm(); xeax&0x6 != 0x6 {
		return // OS does not save XMM+YMM state
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	useAVX2 = ebx7&(1<<5) != 0
	useF16C = ecx1&f16c != 0
}

//go:noescape
func decodeF16AVX(dst []float32, q []uint16)

//go:noescape
func addF16AVX(dst []float32, q []uint16)

//go:noescape
func axpyF16AVX(dst []float32, q []uint16, w float32)

//go:noescape
func maxF16AVX(dst []float32, q []uint16)

//go:noescape
func decodeI8AVX2(dst []float32, q []uint8, scale float32, zero int32)

//go:noescape
func addI8AVX2(dst []float32, q []uint8, scale float32, zero int32)

//go:noescape
func axpyI8AVX2(dst []float32, q []uint8, w, scale float32, zero int32)

//go:noescape
func maxI8AVX2(dst []float32, q []uint8, scale float32, zero int32)
