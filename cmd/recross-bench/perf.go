package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/chaos"
	"recross/internal/cluster"
	"recross/internal/coldstore"
	"recross/internal/core"
	"recross/internal/dram"
	"recross/internal/embedding"
	"recross/internal/kernels"
	"recross/internal/memctrl"
	"recross/internal/serve"
	"recross/internal/sim"
	"recross/internal/trace"
)

// The -perf suite measures the scheduler hot path in isolation and end to
// end, on both the fast arbiter and the Reference scan scheduler, and
// writes the results as a JSON perf-trajectory file (BENCH_PR<n>.json per
// PR; BENCH_PR9.json currently) so future changes have a recorded
// baseline to regress against.

// perfEntry is one benchmark's record.
type perfEntry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SimCyclesPerSec is simulated DRAM cycles advanced per wall-clock
	// second — the simulator's throughput figure of merit.
	SimCyclesPerSec float64 `json:"sim_cycles_per_wall_second,omitempty"`
	// LookupsPerMCycle is the cluster scale-out figure of merit: lookups
	// served per million simulated busy cycles on the busiest node
	// (total work over makespan, so per-node batch overhead and placement
	// skew both count against it).
	LookupsPerMCycle float64 `json:"lookups_per_mcycle,omitempty"`
	// SpeedupVs1Node is LookupsPerMCycle relative to the same run's
	// one-node entry.
	SpeedupVs1Node float64 `json:"speedup_vs_1node,omitempty"`
	// P99Ns is the serve-path tail latency from a closed-loop load run
	// (the serve_p99_* entries; NsPerOp holds the p50).
	P99Ns float64 `json:"p99_ns,omitempty"`
	// CyclesPerBatch is the raw simulated batch latency for the e2e
	// entries that compare placements rather than wall time.
	CyclesPerBatch int64 `json:"cycles_per_batch,omitempty"`
	// ThroughputRPS is completed requests per wall-clock second from a
	// closed-loop load run (the cluster_wire_4node_* entries).
	ThroughputRPS float64 `json:"throughput_rps,omitempty"`
	// WireBytesPerLookup is transport bytes (both directions, headers
	// included) per completed lookup — the JSON-vs-binary data-movement
	// contrast the PR10 wire entries record.
	WireBytesPerLookup float64 `json:"wire_bytes_per_lookup,omitempty"`
}

// perfDoc is the trajectory file.
type perfDoc struct {
	GoVersion string      `json:"go_version"`
	CPUs      int         `json:"cpus"`
	When      string      `json:"when"`
	Entries   []perfEntry `json:"entries"`
}

// perfDrainReqs is the 4k-request mixed row-hit workload shared by the
// drain benchmarks (mirrors internal/memctrl's BenchmarkDrain*4k).
func perfDrainReqs(geo dram.Geometry) []memctrl.Request {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]memctrl.Request, 4096)
	for i := range reqs {
		reqs[i] = memctrl.Request{
			Loc: dram.Loc{
				Rank: rng.Intn(geo.Ranks),
				BG:   rng.Intn(geo.BankGroups),
				Bank: rng.Intn(geo.Banks),
				Row:  rng.Intn(64),
			},
			Cols:     8,
			Consumer: dram.ToBankPE,
			Arrival:  sim.Cycle(i),
			Op:       int32(i / 16),
		}
	}
	return reqs
}

// perfDrain benchmarks a raw controller drain.
func perfDrain(reference bool) (perfEntry, error) {
	geo := dram.DDR5(2)
	reqs := perfDrainReqs(geo)
	s, err := arch.NewChannelSim(arch.ChannelSpec{
		Geo: geo, Tm: dram.DDR5Timing(), Mode: dram.NMPTwoStage,
		Policy: memctrl.LAS, OpWindow: arch.NMPOpWindow,
		Reference: reference,
	})
	if err != nil {
		return perfEntry{}, err
	}
	finish, _, _, err := s.Run(reqs, 0)
	if err != nil {
		return perfEntry{}, err
	}
	name := "drain_fast_4k"
	if reference {
		name = "drain_reference_4k"
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := s.Run(reqs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, int64(finish)), nil
}

// perfRecrossRun benchmarks one batch through the full ReCross model.
func perfRecrossRun(reference bool) (perfEntry, error) {
	spec := trace.CriteoKaggle(64, 80)
	cfg := core.DefaultConfig(spec)
	cfg.ProfileSamples = 500
	cfg.RefScheduler = reference
	sys, err := core.New(cfg)
	if err != nil {
		return perfEntry{}, err
	}
	gen, err := trace.NewGenerator(spec, 7)
	if err != nil {
		return perfEntry{}, err
	}
	batch := gen.Batch(32)
	rs, err := sys.Run(batch)
	if err != nil {
		return perfEntry{}, err
	}
	name := "recross_run_fast"
	if reference {
		name = "recross_run_reference"
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Run(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, int64(rs.Cycles)), nil
}

func mkEntry(name string, r testing.BenchmarkResult, cyclesPerOp int64) perfEntry {
	e := perfEntry{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if secs := r.T.Seconds(); secs > 0 {
		e.SimCyclesPerSec = float64(cyclesPerOp) * float64(r.N) / secs
	}
	return e
}

// runPerf executes the perf suite and writes the trajectory file.
func runPerf(path string) error {
	doc := perfDoc{
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		When:      time.Now().UTC().Format(time.RFC3339),
	}
	suite := []func() (perfEntry, error){
		func() (perfEntry, error) { return perfDrain(false) },
		func() (perfEntry, error) { return perfDrain(true) },
		func() (perfEntry, error) { return perfRecrossRun(false) },
		func() (perfEntry, error) { return perfRecrossRun(true) },
		func() (perfEntry, error) { return perfReduce(trace.Sum, "reduce_sum_4k") },
		func() (perfEntry, error) { return perfReduce(trace.Max, "reduce_max_4k") },
		func() (perfEntry, error) { return perfReduce(trace.WeightedSum, "reduce_weightedsum_4k") },
		perfReduceScalar,
		func() (perfEntry, error) { return perfServeDataplane(8<<20, "serve_dataplane") },
		func() (perfEntry, error) { return perfServeDataplane(0, "serve_dataplane_nocache") },
		func() (perfEntry, error) { return perfRecrossE2E(true) },
		func() (perfEntry, error) { return perfRecrossE2E(false) },
		func() (perfEntry, error) { return perfColdPageRead(true, true) },
		func() (perfEntry, error) { return perfColdPageRead(false, true) },
		func() (perfEntry, error) { return perfColdPageRead(false, false) },
		func() (perfEntry, error) { return perfColdReduce(true) },
		func() (perfEntry, error) { return perfColdReduce(false) },
		func() (perfEntry, error) { return perfColdE2E(false, "recross_e2e_nocold") },
		func() (perfEntry, error) { return perfColdE2E(true, "recross_e2e_cold") },
		func() (perfEntry, error) { return perfQuantReduce(kernels.FP32, "reduce_quant_fp32") },
		func() (perfEntry, error) { return perfQuantReduce(kernels.FP16, "reduce_quant_fp16") },
		func() (perfEntry, error) { return perfQuantReduce(kernels.INT8, "reduce_quant_int8") },
		func() (perfEntry, error) { return perfQuantColdScan(kernels.FP32, "coldstore_scan_fp32") },
		func() (perfEntry, error) { return perfQuantColdScan(kernels.FP16, "coldstore_scan_fp16") },
		func() (perfEntry, error) { return perfQuantColdScan(kernels.INT8, "coldstore_scan_int8") },
		func() (perfEntry, error) { return perfQuantServeP99(kernels.FP32, "serve_p99_fp32") },
		func() (perfEntry, error) { return perfQuantServeP99(kernels.FP16, "serve_p99_fp16") },
		func() (perfEntry, error) { return perfQuantServeP99(kernels.INT8, "serve_p99_int8") },
		func() (perfEntry, error) { return perfQuantE2E(kernels.FP32, "recross_e2e_oversub_fp32") },
		func() (perfEntry, error) { return perfQuantE2E(kernels.INT8, "recross_e2e_oversub_int8") },
	}
	for _, f := range suite {
		e, err := f()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "perf: %-24s %12.0f ns/op %8d allocs/op %14.0f simcycles/s\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.SimCyclesPerSec)
		doc.Entries = append(doc.Entries, e)
	}
	centries, err := perfClusterSuite()
	if err != nil {
		return err
	}
	for _, e := range centries {
		fmt.Fprintf(os.Stderr, "perf: %-24s %12.0f ns/op %10.1f lookups/Mcycle %8.2fx vs 1 node\n",
			e.Name, e.NsPerOp, e.LookupsPerMCycle, e.SpeedupVs1Node)
		doc.Entries = append(doc.Entries, e)
	}
	wentries, err := perfWireSuite()
	if err != nil {
		return err
	}
	for _, e := range wentries {
		fmt.Fprintf(os.Stderr, "perf: %-28s %12.0f ns p50 %10.0f B/lookup %10.0f req/s\n",
			e.Name, e.NsPerOp, e.WireBytesPerLookup, e.ThroughputRPS)
		doc.Entries = append(doc.Entries, e)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ---- PR5: embedding data-plane benchmarks ----

// perfReduceLayer builds a one-table functional layer (100k rows x 64
// FP32) plus a 4096-gather op of the given kind with Zipf-skewed indices
// and random weights — the data-plane microbenchmark workload.
func perfReduceLayer(kind trace.ReduceKind) (*embedding.Layer, trace.Op, error) {
	spec := trace.ModelSpec{Name: "perf-reduce", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 100000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return nil, trace.Op{}, err
	}
	rng := rand.New(rand.NewSource(9))
	z := rand.NewZipf(rng, 1.2, 8, 99999)
	idx := make([]int64, 4096)
	w := make([]float32, len(idx))
	for i := range idx {
		idx[i] = int64(z.Uint64())
		w[i] = rng.Float32()
	}
	return layer, trace.Op{Table: 0, Kind: kind, Indices: idx, Weights: w}, nil
}

// perfReduce benchmarks the kernelized zero-alloc reduce path — fused
// unrolled kernels, reused Scratch, 8 MiB hot-row cache — on one 4k op.
func perfReduce(kind trace.ReduceKind, name string) (perfEntry, error) {
	layer, op, err := perfReduceLayer(kind)
	if err != nil {
		return perfEntry{}, err
	}
	cache, err := embedding.NewRowCache(8<<20, 64)
	if err != nil {
		return perfEntry{}, err
	}
	if err := layer.AttachRowCache(cache); err != nil {
		return perfEntry{}, err
	}
	dst := make([]float32, 64)
	var scr embedding.Scratch
	if err := layer.ReduceInto(dst, op, &scr); err != nil { // warm the cache
		return perfEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := layer.ReduceInto(dst, op, &scr); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, 0), nil
}

// perfReduceScalar reproduces the pre-kernel data plane as the baseline:
// per-call result and gather-buffer allocation, every row regenerated
// through the procedural hash (no cache), scalar accumulation loops.
func perfReduceScalar() (perfEntry, error) {
	layer, op, err := perfReduceLayer(trace.WeightedSum)
	if err != nil {
		return perfEntry{}, err
	}
	t := layer.Table(0)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := make([]float32, t.VecLen())
			row := make([]float32, t.VecLen())
			for k, idx := range op.Indices {
				t.Row(idx, row)
				w := op.Weights[k]
				for j := range out {
					out[j] += w * row[j]
				}
			}
			perfSink = out[0]
		}
	})
	return mkEntry("reduce_weightedsum_4k_scalar", r, 0), nil
}

// perfSink defeats dead-code elimination of the scalar baseline.
var perfSink float32

// perfServeSystem is a no-op timing model so the serve_dataplane entries
// measure the serving layer's own work — batching, dispatch, and above
// all the functional reduction data plane — rather than a simulator.
type perfServeSystem struct{}

func (perfServeSystem) Name() string { return "perf-noop" }

func (perfServeSystem) Run(b trace.Batch) (*arch.RunStats, error) {
	lookups, _ := arch.CountBatch(b)
	return &arch.RunStats{Cycles: 1, Lookups: lookups, Imbalance: 1}, nil
}

// perfServeDataplane benchmarks one Lookup through a real serve.Server —
// admission, batcher, replica dispatch, worker-pool reduction — with the
// hot-row cache sized by cacheBytes (0 disables).
func perfServeDataplane(cacheBytes int64, name string) (perfEntry, error) {
	spec := trace.ModelSpec{Name: "perf-serve", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 100000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
		{Name: "t1", Rows: 100000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	srv, err := serve.New(serve.Options{
		Systems:       []arch.System{perfServeSystem{}},
		Layer:         layer,
		MaxBatch:      1,
		RowCacheBytes: cacheBytes,
	})
	if err != nil {
		return perfEntry{}, err
	}
	defer srv.Close()
	gen, err := trace.NewGenerator(spec, 11)
	if err != nil {
		return perfEntry{}, err
	}
	samples := make([]trace.Sample, 256)
	for i := range samples {
		samples[i] = gen.Sample()
	}
	ctx := context.Background()
	if _, err := srv.Lookup(ctx, samples[0]); err != nil { // warm
		return perfEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Lookup(ctx, samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, 0), nil
}

// ---- PR6: flash-backed cold tier benchmarks ----

// perfColdStore opens a cold store over a one-table functional layer
// (200k rows x 64 FP32, ~51 MB) in a temp dir. The caller must Close the
// store (which also removes the backing file); the temp dir is cleaned up
// by the returned func.
func perfColdStore(cacheBytes int64, disableChecksum bool) (*coldstore.Store, func(), error) {
	spec := trace.ModelSpec{Name: "perf-cold", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 200000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "recross-bench-cold")
	if err != nil {
		return nil, nil, err
	}
	store, err := coldstore.Open(coldstore.Config{Dir: dir, CacheBytes: cacheBytes, DisableChecksum: disableChecksum}, []coldstore.RowSource{layer.Table(0)})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		store.Close()
		os.RemoveAll(dir)
	}
	return store, cleanup, nil
}

// perfColdPageRead benchmarks the store's row-read path: cached walks a
// page-cache-resident stride (host-cache hit path), uncached walks the
// whole table with a minimal cache so nearly every read is a device page
// read of an already-populated file.
func perfColdPageRead(cached, checksum bool) (perfEntry, error) {
	cacheBytes := int64(1) // one page: force device reads
	name := "coldstore_page_read"
	if !checksum {
		// Verification-off baseline: the delta against coldstore_page_read
		// is the per-page CRC32C cost on the device-read path (PR7's <=5%
		// overhead budget; see BENCH_PR7.json).
		name = "coldstore_page_read_nochecksum"
	}
	if cached {
		cacheBytes = 64 << 20 // whole table cacheable: hit path
		name = "coldstore_read_cached"
	}
	store, cleanup, err := perfColdStore(cacheBytes, !checksum)
	if err != nil {
		return perfEntry{}, err
	}
	defer cleanup()
	dst := make([]float32, store.VecLen())
	rows := int64(200000)
	// Populate every page once so the benchmark measures reads, not the
	// one-time lazy generation.
	for i := int64(0); i < rows; i += int64(store.RowsPerPage()) {
		store.ReadRow(0, i, dst)
	}
	stride := int64(store.RowsPerPage()) // one read per page: no free hits
	if cached {
		stride = 7
	}
	var idx int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store.ReadRow(0, idx%rows, dst)
			idx += stride
		}
	})
	return mkEntry(name, r, 0), nil
}

// perfColdReduce compares the in-storage reduction entry point against the
// equivalent host-side loop over ReadRow for one 512-gather weighted-sum op
// (both functionally identical; this measures the data-plane cost of
// keeping the reduction next to the device buffer vs round-tripping rows).
func perfColdReduce(inStorage bool) (perfEntry, error) {
	store, cleanup, err := perfColdStore(16<<20, false)
	if err != nil {
		return perfEntry{}, err
	}
	defer cleanup()
	rng := rand.New(rand.NewSource(3))
	z := rand.NewZipf(rng, 1.2, 8, 199999)
	idx := make([]int64, 512)
	w := make([]float32, len(idx))
	for i := range idx {
		idx[i] = int64(z.Uint64())
		w[i] = rng.Float32()
	}
	dst := make([]float32, store.VecLen())
	row := make([]float32, store.VecLen())
	if err := store.ReduceInto(dst, 0, idx, w, 0); err != nil { // warm pages
		return perfEntry{}, err
	}
	name := "coldstore_reduce_host"
	if inStorage {
		name = "coldstore_reduce_isr"
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if inStorage {
				if err := store.ReduceInto(dst, 0, idx, w, 0); err != nil {
					b.Fatal(err)
				}
				continue
			}
			for j := range dst {
				dst[j] = 0
			}
			for k, ix := range idx {
				store.ReadRow(0, ix, row)
				wk := w[k]
				for j := range dst {
					dst[j] += wk * row[j]
				}
			}
			perfSink = dst[0]
		}
	})
	return mkEntry(name, r, 0), nil
}

// perfColdE2E benchmarks the ReCross timing Run with and without the cold
// tier on a table set 4x its DRAM residency budget; the cold entry's
// cycles include the flash page reads and link transfer the cold-placed
// gathers cost, so the pair records the simulated price of spilling.
func perfColdE2E(cold bool, name string) (perfEntry, error) {
	spec := trace.ModelSpec{Name: "perf-cold-e2e", Tables: []trace.TableSpec{
		{Name: "a", Rows: 60000, VecLen: 64, Pooling: 48, Prob: 1, Skew: 1.3},
		{Name: "b", Rows: 30000, VecLen: 64, Pooling: 32, Prob: 1, Skew: 1.2},
	}}
	cfg := core.DefaultConfig(spec)
	cfg.ProfileSamples = 500
	if cold {
		cfg.ColdTier = &coldstore.TierSpec{
			CapBytes:            64 << 20,
			ResidentBudgetBytes: 5 << 20,
			InStorageReduce:     true,
		}
	}
	sys, err := core.New(cfg)
	if err != nil {
		return perfEntry{}, err
	}
	gen, err := trace.NewGenerator(spec, 7)
	if err != nil {
		return perfEntry{}, err
	}
	batch := gen.Batch(32)
	rs, err := sys.Run(batch)
	if err != nil {
		return perfEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Run(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, int64(rs.Cycles)), nil
}

// perfRecrossE2E benchmarks the full end-to-end batch answer at sim
// fidelity: the ReCross timing Run plus the functional reduction of every
// sample — what serving one batch actually costs. cached selects the
// kernel + 64 MiB hot-row-cache data plane; otherwise the scalar
// pre-kernel baseline (per-op allocations, uncached regeneration) runs.
func perfRecrossE2E(cached bool) (perfEntry, error) {
	spec := trace.CriteoKaggle(64, 80)
	cfg := core.DefaultConfig(spec)
	cfg.ProfileSamples = 500
	sys, err := core.New(cfg)
	if err != nil {
		return perfEntry{}, err
	}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	name := "recross_e2e_scalar"
	if cached {
		name = "recross_e2e_fast"
		cache, err := embedding.NewRowCache(64<<20, 64)
		if err != nil {
			return perfEntry{}, err
		}
		if err := layer.AttachRowCache(cache); err != nil {
			return perfEntry{}, err
		}
	}
	gen, err := trace.NewGenerator(spec, 7)
	if err != nil {
		return perfEntry{}, err
	}
	batch := gen.Batch(32)
	rs, err := sys.Run(batch)
	if err != nil {
		return perfEntry{}, err
	}
	var scr embedding.Scratch
	reduceBatch := func() error {
		for _, s := range batch {
			if cached {
				if _, err := layer.ReduceSampleInto(s, &scr); err != nil {
					return err
				}
				continue
			}
			for _, op := range s {
				t := layer.Table(op.Table)
				out := make([]float32, t.VecLen())
				row := make([]float32, t.VecLen())
				for k, idx := range op.Indices {
					t.Row(idx, row)
					switch op.Kind {
					case trace.Sum:
						for j := range out {
							out[j] += row[j]
						}
					case trace.Max:
						if k == 0 {
							copy(out, row)
						} else {
							for j := range out {
								if row[j] > out[j] {
									out[j] = row[j]
								}
							}
						}
					default:
						w := op.Weights[k]
						for j := range out {
							out[j] += w * row[j]
						}
					}
				}
				perfSink = out[0]
			}
		}
		return nil
	}
	if err := reduceBatch(); err != nil { // warm the cache
		return perfEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Run(batch); err != nil {
				b.Fatal(err)
			}
			if err := reduceBatch(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, int64(rs.Cycles)), nil
}

// ---- PR8: cluster scale-out benchmarks ----

// perfClusterSpec is the scale-out workload: sixteen tables whose
// access volume is dominated by t0 (512 of 1472 gathers per sample,
// ~35%), so naive sharding bottlenecks on whichever node owns t0 and
// hot-table replication is what buys scale-out past ~3x. Samples are
// wide and ops deep enough that gather work, not per-sub-batch
// pipeline fill, dominates each node's cycles — the scale-out figure
// measures placement, not scatter overhead.
func perfClusterSpec() trace.ModelSpec {
	tabs := make([]trace.TableSpec, 16)
	for i := range tabs {
		pool := 64
		if i == 0 {
			pool = 512
		}
		tabs[i] = trace.TableSpec{
			Name: fmt.Sprintf("t%d", i), Rows: 20000, VecLen: 64,
			Pooling: pool, Prob: 1, Skew: 1.2,
		}
	}
	return trace.ModelSpec{Name: "perf-cluster", Tables: tabs}
}

// perfClusterNodes builds k full-spec ReCross serving nodes over a
// shared functional layer, MaxBatch 1 so every router sub-request is
// one simulated batch whose cycles land on exactly one node.
func perfClusterNodes(spec trace.ModelSpec, layer *embedding.Layer, k int) ([]cluster.Node, []string, error) {
	nodes := make([]cluster.Node, k)
	ids := make([]string, k)
	for i := 0; i < k; i++ {
		cfg := core.DefaultConfig(spec)
		cfg.ProfileSamples = 500
		cfg.Ranks = 1
		sys, err := core.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		srv, err := serve.New(serve.Options{Systems: []arch.System{sys}, Layer: layer, MaxBatch: 1})
		if err != nil {
			return nil, nil, err
		}
		ids[i] = fmt.Sprintf("n%d", i)
		nodes[i] = cluster.NewLocalNode(ids[i], srv)
	}
	return nodes, ids, nil
}

// perfClusterScaleOut measures one fleet size: wall ns per routed
// lookup plus the simulated-throughput figure — total lookups over the
// busiest node's accumulated batch cycles (the cluster's makespan).
// replicate toggles hot-table replication of t0 (R=2, R=4 at 8 nodes);
// without it the series records the dominant-table ceiling.
func perfClusterScaleOut(k int, replicate bool, name string) (perfEntry, float64, error) {
	spec := perfClusterSpec()
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, 0, err
	}
	nodes, ids, err := perfClusterNodes(spec, layer, k)
	if err != nil {
		return perfEntry{}, 0, err
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	vols := make([]float64, len(spec.Tables))
	for i, t := range spec.Tables {
		vols[i] = float64(t.Pooling)
	}
	popts := cluster.PlacementOptions{}
	if replicate {
		popts.Hot = cluster.HotTopK(vols, 1)
		popts.Replication = 2
		if k >= 8 {
			popts.Replication = 4
		}
	}
	pl, err := cluster.CostPlacement(vols, ids, popts)
	if err != nil {
		return perfEntry{}, 0, err
	}
	r, err := cluster.NewRouter(cluster.Options{
		Nodes: nodes, Placement: pl, Layer: layer,
		ProbeInterval: -1, HedgeDelay: -1,
	})
	if err != nil {
		return perfEntry{}, 0, err
	}
	defer r.Close()

	gen, err := trace.NewGenerator(spec, 13)
	if err != nil {
		return perfEntry{}, 0, err
	}
	samples := make([]trace.Sample, 128)
	for i := range samples {
		samples[i] = gen.Sample()
	}
	ctx := context.Background()
	if _, err := r.Lookup(ctx, samples[0]); err != nil { // warm
		return perfEntry{}, 0, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Lookup(ctx, samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	var makespan int64
	for _, n := range nodes {
		if c := n.Stats().Cycles; c > makespan {
			makespan = c
		}
	}
	e := mkEntry(name, res, 0)
	if makespan > 0 {
		e.LookupsPerMCycle = float64(r.Stats().Requests) / float64(makespan) * 1e6
	}
	return e, e.LookupsPerMCycle, nil
}

// perfClusterHedge measures tail tolerance: two nodes holding every
// table (R=2), one wrapped with chaos that stalls half its calls
// 20ms — a straggler, an order of magnitude over the lookup's compute
// time, which is the regime hedging targets (a stall comparable to
// compute just trades the wait for duplicate work). With hedging off
// the stall lands on half the lookups; with a 1ms hedge the healthy
// replica answers instead, so mean wall latency is the contrast this
// pair records.
func perfClusterHedge(hedgeOn bool, name string) (perfEntry, error) {
	spec := perfClusterSpec()
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	nodes, ids, err := perfClusterNodes(spec, layer, 2)
	if err != nil {
		return perfEntry{}, err
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	nodes[1] = cluster.WrapFaultyNode(nodes[1], chaos.NodeConfig{
		Rates: chaos.NodeRates{Slow: 0.5},
		Stall: 20 * time.Millisecond,
		Seed:  5,
	}, 1, nil)
	vols := make([]float64, len(spec.Tables))
	hot := make([]bool, len(spec.Tables))
	for i, t := range spec.Tables {
		vols[i] = float64(t.Pooling)
		hot[i] = true
	}
	pl, err := cluster.CostPlacement(vols, ids, cluster.PlacementOptions{Hot: hot, Replication: 2})
	if err != nil {
		return perfEntry{}, err
	}
	hedge := time.Duration(-1)
	if hedgeOn {
		hedge = time.Millisecond
	}
	r, err := cluster.NewRouter(cluster.Options{
		Nodes: nodes, Placement: pl, Layer: layer,
		ProbeInterval: -1, HedgeDelay: hedge,
	})
	if err != nil {
		return perfEntry{}, err
	}
	defer r.Close()

	gen, err := trace.NewGenerator(spec, 17)
	if err != nil {
		return perfEntry{}, err
	}
	samples := make([]trace.Sample, 128)
	for i := range samples {
		samples[i] = gen.Sample()
	}
	ctx := context.Background()
	if _, err := r.Lookup(ctx, samples[0]); err != nil { // warm
		return perfEntry{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Lookup(ctx, samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, res, 0), nil
}

// perfClusterSuite runs the k-node scale-out series (hot-table
// replication on), the 4-node no-replication contrast, and the hedging
// on/off pair, pricing every fleet against the same 1-node baseline.
func perfClusterSuite() ([]perfEntry, error) {
	var out []perfEntry
	var thru1 float64
	for _, c := range []struct {
		k         int
		replicate bool
		name      string
	}{
		{1, true, "cluster_scatter_1node"},
		{2, true, "cluster_scatter_2node"},
		{4, true, "cluster_scatter_4node"},
		{8, true, "cluster_scatter_8node"},
		{4, false, "cluster_scatter_4node_norep"},
	} {
		e, thru, err := perfClusterScaleOut(c.k, c.replicate, c.name)
		if err != nil {
			return nil, err
		}
		if c.k == 1 {
			thru1 = thru
		} else if thru1 > 0 {
			e.SpeedupVs1Node = thru / thru1
		}
		out = append(out, e)
	}
	for _, c := range []struct {
		on   bool
		name string
	}{
		{false, "cluster_hedge_off"},
		{true, "cluster_hedge_on"},
	} {
		e, err := perfClusterHedge(c.on, c.name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ---- PR9: quantized storage benchmarks ----

// perfQuantLayer builds a layer over spec at the given storage precision.
// The fp32 baseline is materialized into dense slabs so every precision
// reads rows from resident memory, not the procedural hash — the entries
// compare storage codecs, not row-generation cost.
func perfQuantLayer(spec trace.ModelSpec, prec kernels.Precision) (*embedding.Layer, error) {
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return nil, err
	}
	if prec != kernels.FP32 {
		if err := layer.SetPrecision(prec); err != nil {
			return nil, err
		}
		return layer, nil
	}
	tables := make([]embedding.Table, len(spec.Tables))
	for ti := range spec.Tables {
		src := layer.Table(ti)
		dense, err := embedding.NewDense(src.Rows(), src.VecLen())
		if err != nil {
			return nil, err
		}
		row := make([]float32, src.VecLen())
		for i := int64(0); i < src.Rows(); i++ {
			src.Row(i, row)
			if err := dense.SetRow(i, row); err != nil {
				return nil, err
			}
		}
		tables[ti] = dense
	}
	return embedding.NewLayerFromTables(tables)
}

// perfQuantReduce benchmarks the fused dequantize-accumulate reduce at
// each storage precision on one 4096-gather weighted sum over a 200k x 64
// table, uncached so every row goes through the storage format. The
// int8-over-fp32 ratio of these entries is the PR9 kernel-throughput
// acceptance figure.
func perfQuantReduce(prec kernels.Precision, name string) (perfEntry, error) {
	spec := trace.ModelSpec{Name: "perf-quant", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 200000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := perfQuantLayer(spec, prec)
	if err != nil {
		return perfEntry{}, err
	}
	rng := rand.New(rand.NewSource(11))
	idx := make([]int64, 4096)
	w := make([]float32, len(idx))
	for i := range idx {
		idx[i] = rng.Int63n(200000)
		w[i] = rng.Float32()
	}
	op := trace.Op{Table: 0, Kind: trace.WeightedSum, Indices: idx, Weights: w}
	dst := make([]float32, 64)
	var scr embedding.Scratch
	if err := layer.ReduceInto(dst, op, &scr); err != nil { // build slabs
		return perfEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := layer.ReduceInto(dst, op, &scr); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkEntry(name, r, 0), nil
}

// perfQuantColdScan benchmarks the cold tier's effective page-read
// bandwidth at each page precision: a sequential row scan over a one-frame
// page cache, so each device page is read (and checksummed, and decoded)
// once and then drained row by row. Quantized pages pack more rows each,
// so the per-logical-row cost — the inverse of effective bandwidth —
// drops with the codec ratio. The int8-over-fp32 ratio here is the PR9
// cold-bandwidth acceptance figure.
func perfQuantColdScan(prec kernels.Precision, name string) (perfEntry, error) {
	spec := trace.ModelSpec{Name: "perf-cold", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 200000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	dir, err := os.MkdirTemp("", "recross-bench-quant")
	if err != nil {
		return perfEntry{}, err
	}
	defer os.RemoveAll(dir)
	store, err := coldstore.Open(coldstore.Config{
		Dir: dir, CacheBytes: 1, Precision: prec,
	}, []coldstore.RowSource{layer.Table(0)})
	if err != nil {
		return perfEntry{}, err
	}
	defer store.Close()
	dst := make([]float32, store.VecLen())
	rows := int64(200000)
	// Populate every page once so the scan measures reads, not the
	// one-time lazy generation.
	for i := int64(0); i < rows; i += int64(store.RowsPerPage()) {
		store.ReadRow(0, i, dst)
	}
	var idx int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store.ReadRow(0, idx, dst)
			if idx++; idx == rows {
				idx = 0
			}
		}
	})
	return mkEntry(name, r, 0), nil
}

// perfQuantServeP99 measures the serve-path tail at a fixed DRAM budget —
// a 4 MiB hot-row cache over the two-table serve workload — with backing
// tables stored at prec. Each entry is the production configuration at
// that precision (hot rows cached fp32 everywhere, misses through the
// storage format), so the series records what quantized backing tables do
// to the serving tail, not an isolated codec cost (reduce_quant_* is
// that).
func perfQuantServeP99(prec kernels.Precision, name string) (perfEntry, error) {
	spec := trace.ModelSpec{Name: "perf-serve", Tables: []trace.TableSpec{
		{Name: "t0", Rows: 100000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
		{Name: "t1", Rows: 100000, VecLen: 64, Pooling: 80, Prob: 1, Skew: 1.2},
	}}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	if prec != kernels.FP32 {
		if err := layer.SetPrecision(prec); err != nil {
			return perfEntry{}, err
		}
	}
	srv, err := serve.New(serve.Options{
		Systems:       []arch.System{perfServeSystem{}},
		Layer:         layer,
		MaxBatch:      8,
		RowCacheBytes: 4 << 20,
	})
	if err != nil {
		return perfEntry{}, err
	}
	defer srv.Close()
	rep, err := serve.Loadgen(srv, serve.LoadgenOptions{
		Spec: spec, Clients: 4, Duration: 1500 * time.Millisecond,
	})
	if err != nil {
		return perfEntry{}, err
	}
	return perfEntry{
		Name:    name,
		N:       int(rep.Requests),
		NsPerOp: float64(rep.P50.Nanoseconds()),
		P99Ns:   float64(rep.P99.Nanoseconds()),
	}, nil
}

// perfQuantE2E runs the ReCross timing model on a table set that
// oversubscribes the DRAM resident budget at fp32 (the overflow spills to
// the flash tier) but fits back into DRAM at int8, where the partitioner
// sees every region hold 2x the logical bytes. The cycles_per_batch pair
// is the PR9 pulled-back-into-residency figure: the int8 entry pays
// neither flash page reads nor link transfer.
func perfQuantE2E(prec kernels.Precision, name string) (perfEntry, error) {
	spec := trace.ModelSpec{Name: "perf-quant-e2e", Tables: []trace.TableSpec{
		{Name: "a", Rows: 25000, VecLen: 64, Pooling: 48, Prob: 1, Skew: 1.3},
		{Name: "b", Rows: 12000, VecLen: 64, Pooling: 32, Prob: 1, Skew: 1.2},
	}}
	cfg := core.DefaultConfig(spec)
	cfg.ProfileSamples = 500
	cfg.Precision = prec
	cfg.ColdPrecision = prec
	cfg.ColdTier = &coldstore.TierSpec{
		CapBytes:            64 << 20,
		ResidentBudgetBytes: 5 << 20,
		InStorageReduce:     true,
	}
	sys, err := core.New(cfg)
	if err != nil {
		return perfEntry{}, err
	}
	gen, err := trace.NewGenerator(spec, 7)
	if err != nil {
		return perfEntry{}, err
	}
	batch := gen.Batch(32)
	rs, err := sys.Run(batch)
	if err != nil {
		return perfEntry{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Run(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	e := mkEntry(name, r, int64(rs.Cycles))
	e.CyclesPerBatch = int64(rs.Cycles)
	return e, nil
}
