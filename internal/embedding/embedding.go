// Package embedding provides the functional model of the DLRM embedding
// layer (paper §2.1): embedding tables, gather (table lookup) and pooling
// (weighted-sum reduction) operations. It is the ground truth the NMP
// architectures' reduced results are validated against bit-for-bit.
//
// Production tables reach billions of parameters, so the default Table is
// procedural: row values are derived deterministically from (table, row,
// element) with a splitmix-style hash, giving reproducible "stored" data
// with zero resident memory. Small materialized tables are also provided
// for training-style use (the DLRM example).
package embedding

import (
	"fmt"
	"math"
	"sync/atomic"

	"recross/internal/kernels"
	"recross/internal/trace"
)

// Table is a read-only embedding table.
type Table interface {
	// Rows returns the number of embedding rows.
	Rows() int64
	// VecLen returns the embedding dimension.
	VecLen() int
	// Row writes row i's vector into dst (len == VecLen) and returns dst.
	Row(i int64, dst []float32) []float32
}

// Procedural is a deterministic, zero-memory table: element (i, j) of table
// `id` is a pseudorandom value in [-1, 1) derived by hashing.
type Procedural struct {
	id     uint64
	rows   int64
	vecLen int
}

// NewProcedural builds a procedural table.
func NewProcedural(id uint64, rows int64, vecLen int) (*Procedural, error) {
	if rows <= 0 || vecLen <= 0 {
		return nil, fmt.Errorf("embedding: invalid table shape %dx%d", rows, vecLen)
	}
	return &Procedural{id: id, rows: rows, vecLen: vecLen}, nil
}

func (t *Procedural) Rows() int64 { return t.rows }

func (t *Procedural) VecLen() int { return t.vecLen }

func (t *Procedural) Row(i int64, dst []float32) []float32 {
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("embedding: row %d out of [0,%d)", i, t.rows))
	}
	if len(dst) != t.vecLen {
		panic(fmt.Sprintf("embedding: dst length %d != %d", len(dst), t.vecLen))
	}
	seed := splitmix(t.id*0x9E3779B97F4A7C15 + uint64(i) + 1)
	for j := range dst {
		seed = splitmix(seed)
		// Map the top 24 bits to [-1, 1).
		dst[j] = float32(seed>>40)/float32(1<<23) - 1
	}
	return dst
}

// splitmix is the SplitMix64 finalizer — a high-quality 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Dense is a materialized table backed by a flat float32 slice.
type Dense struct {
	data   []float32
	rows   int64
	vecLen int
}

// NewDense allocates a zeroed rows x vecLen table.
func NewDense(rows int64, vecLen int) (*Dense, error) {
	if rows <= 0 || vecLen <= 0 {
		return nil, fmt.Errorf("embedding: invalid table shape %dx%d", rows, vecLen)
	}
	return &Dense{data: make([]float32, rows*int64(vecLen)), rows: rows, vecLen: vecLen}, nil
}

func (t *Dense) Rows() int64 { return t.rows }

func (t *Dense) VecLen() int { return t.vecLen }

func (t *Dense) Row(i int64, dst []float32) []float32 {
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("embedding: row %d out of [0,%d)", i, t.rows))
	}
	copy(dst, t.data[i*int64(t.vecLen):(i+1)*int64(t.vecLen)])
	return dst
}

// SetRow overwrites row i.
func (t *Dense) SetRow(i int64, v []float32) error {
	if i < 0 || i >= t.rows {
		return fmt.Errorf("embedding: row %d out of [0,%d)", i, t.rows)
	}
	if len(v) != t.vecLen {
		return fmt.Errorf("embedding: vector length %d != %d", len(v), t.vecLen)
	}
	copy(t.data[i*int64(t.vecLen):], v)
	return nil
}

// ColdReader serves rows placed on the flash cold tier (implemented by
// coldstore.Store via a thin adapter in the facade). A reader must return
// bits identical to the table's own Row for every row it holds.
type ColdReader interface {
	// ReadColdRow fills dst with row idx of table ti, reporting whether
	// the cold tier holds (and served) the row.
	ReadColdRow(ti int, idx int64, dst []float32) bool
}

// coldRoute pairs a cold-placement predicate with the reader serving those
// rows. Swapped atomically when an adoption changes the placement.
type coldRoute struct {
	isCold func(ti int, idx int64) bool
	reader ColdReader
}

// Layer is the embedding layer of one model: one table per sparse feature.
type Layer struct {
	tables []Table
	// prec is the backing-store precision: FP32 serves tables as-is,
	// FP16/INT8 wrap them in QuantTables (SetPrecision). The RowCache
	// always holds dequantized fp32 rows regardless.
	prec kernels.Precision
	// cache, when attached, memoizes materialized rows of procedural
	// tables so hot rows are hashed once instead of per lookup.
	cache *RowCache
	// cached[ti] marks tables whose rows are worth caching (procedural
	// regeneration; a Dense table's Row is already just a copy).
	cached []bool
	// cold, when set, routes cold-placed rows through the flash store
	// (RowCache still probes first). Atomic: adoption swaps the route
	// while serving goroutines read it.
	cold atomic.Pointer[coldRoute]
	// coldFallbacks counts cold-placed rows the reader declined (device
	// degraded) that were materialized directly from the table instead —
	// the degraded-but-correct slow path.
	coldFallbacks atomic.Int64
}

// NewLayer builds a layer of procedural tables matching spec.
func NewLayer(spec trace.ModelSpec) (*Layer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	l := &Layer{tables: make([]Table, len(spec.Tables))}
	for i, ts := range spec.Tables {
		t, err := NewProcedural(uint64(i)+1, ts.Rows, ts.VecLen)
		if err != nil {
			return nil, err
		}
		l.tables[i] = t
	}
	return l, nil
}

// NewLayerFromTables wraps explicit tables (e.g. trained Dense ones).
func NewLayerFromTables(tables []Table) (*Layer, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("embedding: no tables")
	}
	return &Layer{tables: tables}, nil
}

// SetPrecision re-backs every table at prec: FP16/INT8 wrap the tables
// in quantized backing (QuantTable), FP32 unwraps back to the originals.
// After this, every read path serves the canonical quantize-dequantize
// value, and ReduceInto accumulates misses straight from the quantized
// codes (fused dequantize — no materialize-then-reduce round trip).
// Call before AttachRowCache and before serving begins; the admitted hot
// rows stay fp32 in the cache while the backing tables hold codes.
func (l *Layer) SetPrecision(prec kernels.Precision) error {
	if l.cache != nil {
		return fmt.Errorf("embedding: set precision before attaching a row cache")
	}
	if prec == l.prec {
		return nil
	}
	for i, t := range l.tables {
		if qt, ok := t.(*QuantTable); ok {
			t = qt.Source() // re-quantize from the full-precision source
		}
		if prec == kernels.FP32 {
			l.tables[i] = t
			continue
		}
		qt, err := NewQuantTable(t, prec)
		if err != nil {
			return err
		}
		l.tables[i] = qt
	}
	l.prec = prec
	return nil
}

// Precision returns the backing-store precision (FP32 by default).
func (l *Layer) Precision() kernels.Precision { return l.prec }

// Tables returns the number of tables.
func (l *Layer) Tables() int { return len(l.tables) }

// Table returns table ti.
func (l *Layer) Table(ti int) Table { return l.tables[ti] }

// SourceTable returns table ti's full-precision source: the table itself
// for fp32 layers, or the table a QuantTable encodes. The cold tier's
// backing store reads rows through this so its codec applies exactly once
// to fp32 data — encoding an already-decoded quantized row would re-derive
// the quantization grid from grid points and drift from the canonical
// value the warm path serves.
func (l *Layer) SourceTable(ti int) Table {
	if qt, ok := l.tables[ti].(*QuantTable); ok {
		return qt.Source()
	}
	return l.tables[ti]
}

// AttachRowCache memoizes materialized rows of the layer's procedural and
// quantized tables in c: hot rows are generated (or dequantized) once and
// then served by fp32 copy instead of being re-hashed or re-decoded on
// every lookup. Dense tables are left uncached (their Row is already a
// plain copy). c's vector length must match the layer's tables. Attach
// before serving begins; afterwards the layer (cache included) is safe
// for concurrent reads.
func (l *Layer) AttachRowCache(c *RowCache) error {
	if c == nil {
		l.cache, l.cached = nil, nil
		return nil
	}
	cached := make([]bool, len(l.tables))
	any := false
	for i, t := range l.tables {
		switch t.(type) {
		case *Procedural, *QuantTable:
		default:
			continue
		}
		if t.VecLen() != c.VecLen() {
			return fmt.Errorf("embedding: row cache vecLen %d != table %d vecLen %d",
				c.VecLen(), i, t.VecLen())
		}
		cached[i] = true
		any = true
	}
	if !any {
		return fmt.Errorf("embedding: no procedural tables to cache")
	}
	// Resident rows are always fp32; the logical (backing-precision) size
	// feeds the cache's compression accounting.
	c.SetLogicalRowBytes(int64(l.prec.RowBytes(c.VecLen())))
	l.cache, l.cached = c, cached
	return nil
}

// RowCache returns the attached cache, or nil.
func (l *Layer) RowCache() *RowCache { return l.cache }

// SetColdRoute installs (or, with nil arguments, removes) the cold-tier
// route: rows for which isCold reports true materialize through reader
// instead of the table. The reader must be bit-identical to the tables
// (coldstore.Store is, by construction — its file holds the exact bits the
// tables generate). Safe to call while serving; readers see either the
// old route or the new one.
func (l *Layer) SetColdRoute(isCold func(ti int, idx int64) bool, reader ColdReader) {
	if isCold == nil || reader == nil {
		l.cold.Store(nil)
		return
	}
	l.cold.Store(&coldRoute{isCold: isCold, reader: reader})
}

// MaterializeRow writes row idx of table ti into dst (len == the table's
// VecLen): hot-row cache first (a copy), then the cold tier for rows the
// placement put on flash, table regeneration otherwise — every path
// bit-identical. A cold or regenerated row fills the cache for the next
// lookup. Bounds are the caller's job — ReduceInto and the core
// functional path validate before gathering, and Table.Row panics on
// violation exactly like the uncached path.
func (l *Layer) MaterializeRow(ti int, idx int64, dst []float32) {
	cached := l.cache != nil && l.cached[ti]
	if cached && l.cache.Get(ti, idx, dst) {
		return
	}
	if cr := l.cold.Load(); cr != nil && cr.isCold(ti, idx) {
		if cr.reader.ReadColdRow(ti, idx, dst) {
			if cached {
				l.cache.Put(ti, idx, dst)
			}
			return
		}
		// The cold tier declined (breaker open, device failing): fall
		// through to direct materialization — slower, still bit-exact.
		l.coldFallbacks.Add(1)
	}
	l.tables[ti].Row(idx, dst)
	if cached {
		l.cache.Put(ti, idx, dst)
	}
}

// ColdFallbacks reports how many cold-placed rows were materialized
// directly from their table because the cold tier declined the read.
func (l *Layer) ColdFallbacks() int64 { return l.coldFallbacks.Load() }

// Scratch is a per-caller arena for the zero-allocation reduce path: the
// row gather buffer, a growable flat arena, and the sample-output arena
// that ReduceSampleInto carves per-op result vectors from. One Scratch
// serves one goroutine; its buffers are reused across calls, so
// steady-state serving performs zero data-plane allocations.
type Scratch struct {
	row   []float32
	arena []float32
	// sample/out back ReduceSampleInto's result vectors; they are
	// overwritten by the next ReduceSampleInto call on this Scratch.
	sample []float32
	out    [][]float32
}

// rowBuf returns the scratch gather buffer sized to n.
func (s *Scratch) rowBuf(n int) []float32 {
	if cap(s.row) < n {
		s.row = make([]float32, n)
	}
	return s.row[:n]
}

// Arena returns a zeroed float32 arena of length n, reusing the backing
// array across calls. The returned slice is only valid until the next
// Arena call.
func (s *Scratch) Arena(n int) []float32 {
	if cap(s.arena) < n {
		s.arena = make([]float32, n)
	}
	a := s.arena[:n]
	kernels.Zero(a)
	return a
}

// Reduce executes one embedding operation functionally: gather op.Indices
// from the table and pool them under op.Kind. This is the reference the
// NMP results must match. It allocates the result (and a gather buffer)
// per call; the serving hot path uses ReduceInto with a reused Scratch
// instead.
func (l *Layer) Reduce(op trace.Op) ([]float32, error) {
	if op.Table < 0 || op.Table >= len(l.tables) {
		return nil, fmt.Errorf("embedding: table %d out of range", op.Table)
	}
	out := make([]float32, l.tables[op.Table].VecLen())
	var s Scratch
	if err := l.ReduceInto(out, op, &s); err != nil {
		return nil, err
	}
	return out, nil
}

// ReduceInto executes one embedding operation into dst (len == the
// table's VecLen), using s for gather scratch — the zero-allocation
// variant of Reduce. dst is fully overwritten. The fused unrolled kernels
// preserve the scalar reference's per-lane operation order exactly, so
// the result is bit-identical to Reduce on the same op (the kernel
// differential tests enforce this).
func (l *Layer) ReduceInto(dst []float32, op trace.Op, s *Scratch) error {
	if op.Table < 0 || op.Table >= len(l.tables) {
		return fmt.Errorf("embedding: table %d out of range", op.Table)
	}
	if op.Kind == trace.WeightedSum && len(op.Indices) != len(op.Weights) {
		return fmt.Errorf("embedding: %d indices but %d weights", len(op.Indices), len(op.Weights))
	}
	t := l.tables[op.Table]
	if len(dst) != t.VecLen() {
		return fmt.Errorf("embedding: dst length %d != %d", len(dst), t.VecLen())
	}
	switch op.Kind {
	case trace.Sum, trace.Max, trace.WeightedSum:
	default:
		return fmt.Errorf("embedding: unknown reduce kind %d", op.Kind)
	}
	kernels.Zero(dst)
	rows := t.Rows()
	row := s.rowBuf(t.VecLen())
	qt, _ := t.(*QuantTable)
	for k, idx := range op.Indices {
		if idx < 0 || idx >= rows {
			return fmt.Errorf("embedding: index %d out of [0,%d)", idx, rows)
		}
		if qt != nil {
			l.reduceQuantRow(dst, op, k, idx, qt, row)
			continue
		}
		l.MaterializeRow(op.Table, idx, row)
		l.accumulate(dst, row, op, k)
	}
	return nil
}

// accumulate folds one materialized fp32 row into dst under op.Kind.
func (l *Layer) accumulate(dst, row []float32, op trace.Op, k int) {
	switch op.Kind {
	case trace.Sum:
		kernels.Add(dst, row)
	case trace.Max:
		if k == 0 {
			copy(dst, row)
		} else {
			kernels.Max(dst, row)
		}
	default: // trace.WeightedSum
		kernels.Axpy(dst, row, op.Weights[k])
	}
}

// reduceQuantRow folds row idx of quantized table qt into dst: RowCache
// hit serves the resident fp32 (dequantized) row, cold-placed rows read
// through the cold tier, and everything else accumulates straight from
// the quantized codes with the fused dequantize-scale-accumulate kernels.
// The fused lane expression is the one Row/DecodeI8/DecodeF16 use, so the
// hit, cold and fused paths agree bit-for-bit on healthy devices.
func (l *Layer) reduceQuantRow(dst []float32, op trace.Op, k int, idx int64, qt *QuantTable, row []float32) {
	ti := op.Table
	cached := l.cache != nil && l.cached[ti]
	if cached && l.cache.Get(ti, idx, row) {
		l.accumulate(dst, row, op, k)
		return
	}
	if cr := l.cold.Load(); cr != nil && cr.isCold(ti, idx) {
		if cr.reader.ReadColdRow(ti, idx, row) {
			if cached {
				l.cache.Put(ti, idx, row)
			}
			l.accumulate(dst, row, op, k)
			return
		}
		l.coldFallbacks.Add(1)
	}
	if qt.prec == kernels.INT8 {
		q, scale, zero := qt.rowI8(idx)
		switch op.Kind {
		case trace.Sum:
			kernels.AddI8(dst, q, scale, zero)
		case trace.Max:
			if k == 0 {
				kernels.DecodeI8(dst, q, scale, zero)
			} else {
				kernels.MaxI8(dst, q, scale, zero)
			}
		default: // trace.WeightedSum
			kernels.AxpyI8(dst, q, op.Weights[k], scale, zero)
		}
		if cached {
			kernels.DecodeI8(row, q, scale, zero)
			l.cache.Put(ti, idx, row)
		}
		return
	}
	q := qt.rowF16(idx)
	switch op.Kind {
	case trace.Sum:
		kernels.AddF16(dst, q)
	case trace.Max:
		if k == 0 {
			kernels.DecodeF16(dst, q)
		} else {
			kernels.MaxF16(dst, q)
		}
	default: // trace.WeightedSum
		kernels.AxpyF16(dst, q, op.Weights[k])
	}
	if cached {
		kernels.DecodeF16(row, q)
		l.cache.Put(ti, idx, row)
	}
}

// ReduceSample reduces every op of a sample, returning one vector per op.
// The result is carved from a sample-private arena, so the caller owns it.
func (l *Layer) ReduceSample(s trace.Sample) ([][]float32, error) {
	var scr Scratch
	return l.reduceSample(s, &scr)
}

// ReduceSampleInto reduces every op of a sample using s for scratch —
// zero allocations per call in steady state: the per-op result vectors
// are carved from s's own reused sample arena, so they stay valid only
// until the next ReduceSampleInto (or ReduceSample-via-this-Scratch)
// call. A caller that must keep the vectors beyond that — handing them to
// another goroutine, marshalling them later — copies them out first
// (CloneVectors).
func (l *Layer) ReduceSampleInto(smp trace.Sample, s *Scratch) ([][]float32, error) {
	return l.reduceSample(smp, s)
}

func (l *Layer) reduceSample(smp trace.Sample, s *Scratch) ([][]float32, error) {
	total := 0
	for _, op := range smp {
		if op.Table < 0 || op.Table >= len(l.tables) {
			return nil, fmt.Errorf("embedding: table %d out of range", op.Table)
		}
		total += l.tables[op.Table].VecLen()
	}
	if cap(s.sample) < total {
		s.sample = make([]float32, total)
	}
	if cap(s.out) < len(smp) {
		s.out = make([][]float32, len(smp))
	}
	arena := s.sample[:total]
	out := s.out[:len(smp)]
	off := 0
	for i, op := range smp {
		n := l.tables[op.Table].VecLen()
		dst := arena[off : off+n : off+n]
		if err := l.ReduceInto(dst, op, s); err != nil {
			return nil, err
		}
		out[i] = dst
		off += n
	}
	return out, nil
}

// CloneVectors deep-copies a ReduceSampleInto result into caller-owned
// memory (one header plus one flat arena allocation), for results that
// must outlive the Scratch's next call.
func CloneVectors(v [][]float32) [][]float32 {
	total := 0
	for _, x := range v {
		total += len(x)
	}
	arena := make([]float32, total)
	out := make([][]float32, len(v))
	off := 0
	for i, x := range v {
		dst := arena[off : off+len(x) : off+len(x)]
		copy(dst, x)
		out[i] = dst
		off += len(x)
	}
	return out
}

// AlmostEqual reports whether two vectors agree within tol elementwise —
// reductions may reassociate FP32 adds across PEs.
func AlmostEqual(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol {
			return false
		}
	}
	return true
}
