//go:build !unix

package coldstore

import "fmt"

// mapFile is unavailable off POSIX platforms; Config.Mmap there is an
// error rather than a silent pread fallback.
func (s *Store) mapFile() error {
	return fmt.Errorf("coldstore: mmap unsupported on this platform")
}

func (s *Store) unmapFile() error { return nil }
