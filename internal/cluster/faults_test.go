package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"recross/internal/chaos"
	"recross/internal/trace"
)

func faultSample() trace.Sample {
	return trace.Sample{{Table: 0, Kind: trace.Sum, Indices: []int64{1, 2}}}
}

// TestFaultyNodeScriptedKill: a scheduled NodeKill fires on the exact
// call, sticks until Revive, and is counted on the shared injector.
func TestFaultyNodeScriptedKill(t *testing.T) {
	inner := newFakeNode("n0", clusterLayer(t))
	cfg := chaos.NodeConfig{Schedule: []chaos.NodeRule{{Node: 0, Call: 2, Kind: chaos.NodeKill}}}
	fn := WrapFaultyNode(inner, cfg, 0, nil)
	ctx := context.Background()

	if _, err := fn.Lookup(ctx, faultSample()); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if _, err := fn.Lookup(ctx, faultSample()); !errors.Is(err, chaos.ErrNodeKilled) {
		t.Fatalf("call 2: %v, want ErrNodeKilled", err)
	}
	if _, err := fn.Lookup(ctx, faultSample()); !errors.Is(err, chaos.ErrNodeKilled) {
		t.Fatal("kill not sticky")
	}
	if _, err := fn.Health(ctx); !errors.Is(err, chaos.ErrNodeKilled) {
		t.Error("health not gated by the kill")
	}
	fn.Revive()
	if _, err := fn.Lookup(ctx, faultSample()); err != nil {
		t.Fatalf("after revive: %v", err)
	}
	if fn.Calls() != 4 {
		t.Errorf("calls %d, want 4", fn.Calls())
	}
}

// TestFaultyNodeDowntime: with Downtime set, a kill heals itself once
// the window elapses — no Revive needed — so probabilistic-kill soaks
// exercise the prober's re-admission path instead of decaying.
func TestFaultyNodeDowntime(t *testing.T) {
	inner := newFakeNode("n0", clusterLayer(t))
	cfg := chaos.NodeConfig{
		Downtime: 30 * time.Millisecond,
		Schedule: []chaos.NodeRule{{Node: 0, Call: 1, Kind: chaos.NodeKill}},
	}
	fn := WrapFaultyNode(inner, cfg, 0, nil)
	ctx := context.Background()
	if _, err := fn.Lookup(ctx, faultSample()); !errors.Is(err, chaos.ErrNodeKilled) {
		t.Fatalf("scripted kill: %v", err)
	}
	if _, err := fn.Health(ctx); !errors.Is(err, chaos.ErrNodeKilled) {
		t.Fatal("health up inside the downtime window")
	}
	time.Sleep(40 * time.Millisecond)
	if _, err := fn.Health(ctx); err != nil {
		t.Fatalf("health after downtime: %v", err)
	}
	if _, err := fn.Lookup(ctx, faultSample()); err != nil {
		t.Fatalf("lookup after downtime: %v", err)
	}
}

// TestFaultyNodePartition: a partitioned node swallows calls until the
// caller's deadline; healing restores service.
func TestFaultyNodePartition(t *testing.T) {
	inner := newFakeNode("n0", clusterLayer(t))
	fn := WrapFaultyNode(inner, chaos.NodeConfig{}, 0, nil)
	fn.Partition(true)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := fn.Lookup(ctx, faultSample())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partitioned lookup: %v, want deadline exceeded", err)
	}
	if took := time.Since(t0); took < 15*time.Millisecond {
		t.Errorf("partitioned call returned after %v, should block to the deadline", took)
	}
	fn.Partition(false)
	if _, err := fn.Lookup(context.Background(), faultSample()); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestFaultyNodeScriptedSlow: a scheduled NodeSlow stalls the call for
// the configured duration, then serves normally.
func TestFaultyNodeScriptedSlow(t *testing.T) {
	inner := newFakeNode("n0", clusterLayer(t))
	cfg := chaos.NodeConfig{
		Stall:    30 * time.Millisecond,
		Schedule: []chaos.NodeRule{{Node: 0, Call: 1, Kind: chaos.NodeSlow}},
	}
	fn := WrapFaultyNode(inner, cfg, 0, nil)
	t0 := time.Now()
	if _, err := fn.Lookup(context.Background(), faultSample()); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took < 25*time.Millisecond {
		t.Errorf("slow call took %v, want >= ~30ms", took)
	}
	t1 := time.Now()
	if _, err := fn.Lookup(context.Background(), faultSample()); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t1); took > 20*time.Millisecond {
		t.Errorf("unscripted call took %v, stall leaked", took)
	}
}

// TestFaultyNodeDeterminism: with the same seed, the call on which a
// probabilistic kill first fires is identical run to run.
func TestFaultyNodeDeterminism(t *testing.T) {
	firstKill := func() int {
		inner := newFakeNode("n0", clusterLayer(t))
		fn := WrapFaultyNode(inner, chaos.NodeConfig{Rates: chaos.NodeRates{Kill: 0.15}, Seed: 9}, 0, nil)
		for c := 1; c <= 200; c++ {
			if _, err := fn.Lookup(context.Background(), faultSample()); err != nil {
				return c
			}
		}
		return -1
	}
	a, b := firstKill(), firstKill()
	if a != b {
		t.Fatalf("same seed killed on call %d then %d", a, b)
	}
	if a < 0 {
		t.Fatal("kill rate 0.15 never fired in 200 calls")
	}
}

// TestFaultyNodeRates: the injector switch gates probabilistic faults
// without perturbing the RNG, and counters attribute by kind.
func TestFaultyNodeRates(t *testing.T) {
	layer := clusterLayer(t)
	nodes := []Node{newFakeNode("n0", layer), newFakeNode("n1", layer)}
	wrapped, inj := WrapFaultyNodes(nodes, chaos.NodeConfig{
		Rates: chaos.NodeRates{Slow: 0.5},
		Stall: time.Microsecond,
	})
	if len(wrapped) != 2 {
		t.Fatal("wrap count")
	}
	inj.SetEnabled(false)
	for i := 0; i < 50; i++ {
		if _, err := wrapped[0].Lookup(context.Background(), faultSample()); err != nil {
			t.Fatal(err)
		}
	}
	if got := inj.Count(chaos.NodeSlow); got != 0 {
		t.Fatalf("disabled injector recorded %d slows", got)
	}
	inj.SetEnabled(true)
	for i := 0; i < 50; i++ {
		if _, err := wrapped[0].Lookup(context.Background(), faultSample()); err != nil {
			t.Fatal(err)
		}
	}
	got := inj.Count(chaos.NodeSlow)
	if got < 10 || got > 40 {
		t.Errorf("slow rate 0.5 fired %d/50 times", got)
	}
	if inj.Count(chaos.NodeKill) != 0 || inj.Count(chaos.NodePartition) != 0 {
		t.Error("unconfigured kinds counted")
	}
}

// TestFaultyNodeUnderRouter: the router rides out a killed node — the
// chaos wrapper and the health/fallback machinery compose.
func TestFaultyNodeUnderRouter(t *testing.T) {
	layer := clusterLayer(t)
	owners := make([][]int, 8)
	for i := range owners {
		owners[i] = []int{0, 1}
	}
	inner := []Node{newFakeNode("node0", layer), newFakeNode("node1", layer)}
	cfg := chaos.NodeConfig{Schedule: []chaos.NodeRule{{Node: 0, Call: 1, Kind: chaos.NodeKill}}}
	wrapped, inj := WrapFaultyNodes(inner, cfg)
	r, err := NewRouter(Options{
		Nodes:         wrapped,
		Placement:     manualPlacement([]string{"node0", "node1"}, owners),
		Layer:         layer,
		ProbeInterval: -1,
		HedgeDelay:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for i := 0; i < 5; i++ {
		sample := wideSample()
		res, err := r.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if res.Degraded {
			t.Fatalf("lookup %d degraded despite a full replica", i)
		}
		checkIdentical(t, layer, sample, res.Vectors)
	}
	if inj.Count(chaos.NodeKill) != 1 {
		t.Errorf("injected kills %d, want 1", inj.Count(chaos.NodeKill))
	}
}
