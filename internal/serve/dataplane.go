package serve

import (
	"fmt"
	"runtime"
	"sync"

	"recross/internal/embedding"
	"recross/internal/trace"
)

// The functional data plane of the server: every answered request's
// result vectors come from embedding.Layer reductions. Two pieces keep
// it off the allocator and off a single core:
//
//   - a reducerPool of persistent worker goroutines, each owning one
//     embedding.Scratch, reducing independent samples of a batch
//     concurrently (ops are independent; per-op association order is
//     untouched, so results stay bit-identical to the scalar reference
//     — TestParallelReduceBitIdentical enforces it);
//   - the layer's optional sharded hot-row cache (Options.RowCacheBytes),
//     whose hit/miss/eviction/bytes counters ride /metrics as the
//     recross_dataplane_* series.
//
// The timing simulators keep their documented single-goroutine ownership:
// only the functional layer — immutable tables plus the internally locked
// row cache — is touched from multiple goroutines.

// reduceJob is one sample's reduction, fanned to the pool by a replica
// worker (per batch) or a degraded-path caller (single sample).
type reduceJob struct {
	sample trace.Sample
	out    *[][]float32
	err    *error
	wg     *sync.WaitGroup
}

// reducerPool is the small persistent pool of data-plane reduction
// workers. Workers never block on anything but their own reductions, so
// submissions cannot deadlock; the pool is shared by every replica
// worker and the degraded answer paths.
type reducerPool struct {
	layer *embedding.Layer
	jobs  chan reduceJob
	wg    sync.WaitGroup
}

// defaultReduceWorkers sizes the pool when Options.ReduceWorkers is 0:
// a few workers saturate the data plane long before they contend on the
// row-cache shards, and the timing simulators want the remaining cores.
func defaultReduceWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newReducerPool(layer *embedding.Layer, workers int) *reducerPool {
	p := &reducerPool{layer: layer, jobs: make(chan reduceJob, 2*workers)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// worker owns one Scratch for its lifetime. ReduceSampleInto's result
// vectors live in that Scratch (valid only until its next call), while a
// served Result's vectors escape indefinitely — to HTTP marshalling,
// caller futures — so each sample's answer is cloned into caller-owned
// memory before the job completes.
func (p *reducerPool) worker() {
	defer p.wg.Done()
	var scratch embedding.Scratch
	for j := range p.jobs {
		vecs, err := p.layer.ReduceSampleInto(j.sample, &scratch)
		if err == nil {
			vecs = embedding.CloneVectors(vecs)
		}
		*j.out, *j.err = vecs, err
		j.wg.Done()
	}
}

// reduceOne reduces a single sample through the pool — the degraded
// answer path, callable from any goroutine.
func (p *reducerPool) reduceOne(sample trace.Sample) ([][]float32, error) {
	var out [][]float32
	var err error
	var wg sync.WaitGroup
	wg.Add(1)
	p.jobs <- reduceJob{sample: sample, out: &out, err: &err, wg: &wg}
	wg.Wait()
	return out, err
}

// close drains the pool; no submissions may follow.
func (p *reducerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// initDataplane builds the server's reducer pool and, when configured,
// the layer's hot-row cache. Called once from New.
func (s *Server) initDataplane() error {
	if s.opts.RowCacheBytes > 0 && s.opts.Layer.RowCache() == nil {
		c, err := embedding.NewRowCache(s.opts.RowCacheBytes, s.opts.Layer.Table(0).VecLen())
		if err != nil {
			return err
		}
		if err := s.opts.Layer.AttachRowCache(c); err != nil {
			return err
		}
	}
	s.rowCache = s.opts.Layer.RowCache()
	workers := s.opts.ReduceWorkers
	if workers == 0 {
		workers = defaultReduceWorkers()
	}
	s.reducers = newReducerPool(s.opts.Layer, workers)
	return nil
}

// RowCache returns the layer's hot-row cache, or nil when disabled.
func (s *Server) RowCache() *embedding.RowCache { return s.rowCache }

// Layer returns the shared functional embedding layer the server answers
// from — the facade re-routes its cold tier through it on adoption.
func (s *Server) Layer() *embedding.Layer { return s.opts.Layer }

// dataplaneExpo renders the data-plane series in Prometheus text
// exposition format. The row-cache series are emitted even when the
// cache is disabled (as zeros) so scrapes see a stable schema.
func (s *Server) dataplaneExpo() string {
	var st embedding.RowCacheStats
	if s.rowCache != nil {
		st = s.rowCache.Stats()
	}
	var b []byte
	counter := func(name string, v int64) {
		b = append(b, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, v)...)
	}
	gauge := func(name string, v float64) {
		b = append(b, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", name, name, v)...)
	}
	counter("recross_dataplane_row_cache_hits_total", st.Hits)
	counter("recross_dataplane_row_cache_misses_total", st.Misses)
	counter("recross_dataplane_row_cache_evictions_total", st.Evictions)
	counter("recross_dataplane_cold_fallbacks_total", s.opts.Layer.ColdFallbacks())
	gauge("recross_dataplane_row_cache_bytes", float64(st.Bytes))
	gauge("recross_dataplane_row_cache_capacity_bytes", float64(st.CapBytes))
	gauge("recross_dataplane_row_cache_hit_rate", st.HitRate())
	// Precision accounting: resident rows are always fp32; the quantized
	// series is what the same rows occupy in the backing store, and the
	// ratio is the effective compression a quantized layer buys.
	gauge("recross_dataplane_row_bytes_fp32", float64(st.Bytes))
	gauge("recross_dataplane_row_bytes_quantized", float64(st.LogicalBytes))
	gauge("recross_dataplane_row_compression_ratio", st.CompressionRatio())
	return string(b)
}
