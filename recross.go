// Package recross is a simulation library for near-memory-processing (NMP)
// acceleration of the embedding layers of deep-learning recommendation
// models, reproducing "Accelerating Personalized Recommendation with
// Cross-level Near-Memory Processing" (Liu et al., ISCA 2023).
//
// The library models a DDR5 memory channel at DRAM-command granularity and
// provides six architectures over it:
//
//   - CPU        — the conventional 16-core + 32 MB LLC baseline
//   - TensorDIMM — rank-level NMP with vertical vector partitioning
//   - RecNMP     — rank-level NMP with per-PE hot-entry caches
//   - TRiMG      — bank-group-level NMP
//   - TRiMB      — bank-level NMP with hot-entry replication
//   - ReCross    — the paper's cross-level NMP: rank, bank-group and
//     subarray-parallel bank-level regions fed by an LP-based
//     bandwidth-aware partitioner
//
// Quick start:
//
//	spec := recross.CriteoKaggle(64, 80)
//	sys, err := recross.NewSystem(recross.ReCross, recross.Config{Spec: spec})
//	gen, err := recross.NewGenerator(spec, 1)
//	stats, err := sys.Run(gen.Batch(32))
//	fmt.Println(stats.Cycles, stats.Energy.Total())
//
// The experiment harness reproducing every figure and table of the paper's
// evaluation is exposed through the recross-bench command; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for paper-vs-measured
// results.
package recross

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/core"
	"recross/internal/dram"
	"recross/internal/embedding"
	"recross/internal/energy"
	"recross/internal/partition"
	"recross/internal/trace"
)

// Re-exported workload types.
type (
	// ModelSpec describes one recommendation model's embedding layer.
	ModelSpec = trace.ModelSpec
	// TableSpec describes one embedding table.
	TableSpec = trace.TableSpec
	// Batch is a batch of inference samples' embedding work.
	Batch = trace.Batch
	// Op is one embedding operation (gather + weighted-sum reduction).
	Op = trace.Op
	// Generator produces deterministic synthetic traces.
	Generator = trace.Generator
	// RunStats reports one simulated batch execution.
	RunStats = arch.RunStats
	// System is one simulated architecture.
	System = arch.System
	// EnergyBreakdown decomposes a run's energy.
	EnergyBreakdown = energy.Breakdown
	// Layer is the functional embedding layer (ground truth).
	Layer = embedding.Layer
	// ReCrossSystem is the paper's architecture with its partitioning
	// internals exposed (placement, decision, regions).
	ReCrossSystem = core.ReCross
	// ReCrossConfig is the full ReCross configuration (PE population and
	// optimization toggles).
	ReCrossConfig = core.Config
	// Profile carries the offline access statistics the partitioners use.
	Profile = partition.Profile
)

// CriteoKaggle returns the 26-table Criteo Kaggle workload spec.
func CriteoKaggle(vecLen, pooling int) ModelSpec {
	return trace.CriteoKaggle(vecLen, pooling)
}

// CriteoTerabyte returns the scaled-up Criteo Terabyte workload spec.
func CriteoTerabyte(vecLen, pooling int) ModelSpec {
	return trace.CriteoTerabyte(vecLen, pooling)
}

// NewGenerator builds a deterministic trace generator for spec.
func NewGenerator(spec ModelSpec, seed int64) (*Generator, error) {
	return trace.NewGenerator(spec, seed)
}

// NewLayer builds the functional embedding layer for spec (procedural,
// zero-memory tables).
func NewLayer(spec ModelSpec) (*Layer, error) {
	return embedding.NewLayer(spec)
}

// Arch selects an architecture.
type Arch string

// The evaluated architectures.
const (
	CPU        Arch = "cpu"
	TensorDIMM Arch = "tensordimm"
	RecNMP     Arch = "recnmp"
	TRiMG      Arch = "trim-g"
	TRiMB      Arch = "trim-b"
	ReCross    Arch = "recross"

	// Extras beyond the paper's comparison set.

	// RankNMP is cache-less rank-level NMP (the generic "rank level" of
	// Figs. 4-5).
	RankNMP Arch = "rank-nmp"
	// FAFNIR adds an in-buffer rank reduction tree (Asgari et al.,
	// HPCA'21; the paper's §6).
	FAFNIR Arch = "fafnir"
)

// Arches lists every architecture in the paper's comparison order.
func Arches() []Arch {
	return []Arch{CPU, TensorDIMM, RecNMP, TRiMG, TRiMB, ReCross}
}

// Config configures NewSystem. Zero values take the paper's defaults
// (2 ranks, batch 32 for the partitioner, 2000 profiling samples).
type Config struct {
	// Spec is the workload (required).
	Spec ModelSpec
	// Ranks per channel (default 2).
	Ranks int
	// Channels shards the model's tables round-robin across this many
	// independent memory channels, each with its own controller and PEs
	// (default 1). Profiling runs per channel when Channels > 1.
	Channels int
	// Batch is the batch size ReCross's partitioner optimizes for
	// (default 32).
	Batch int
	// ProfileSamples is the offline profiling length used by ReCross and
	// TRiM-B's hot-entry selection (default 2000).
	ProfileSamples int
	// ProfileSeed seeds the profiling pass (default 12345).
	ProfileSeed int64
	// Profile, when non-nil, is reused instead of profiling afresh.
	Profile *Profile
}

func (c Config) withDefaults() Config {
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.ProfileSamples == 0 {
		c.ProfileSamples = 2000
	}
	if c.ProfileSeed == 0 {
		c.ProfileSeed = 12345
	}
	return c
}

// NewSystem builds the requested architecture over the workload.
func NewSystem(a Arch, cfg Config) (System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Channels > 1 {
		spec := cfg.Spec
		n := cfg.Channels
		return arch.NewMultiChannel(spec, n, func(sub ModelSpec) (System, error) {
			sc := cfg
			sc.Spec = sub
			sc.Channels = 1
			sc.Profile = nil // the sub-model needs its own profile
			return NewSystem(a, sc)
		})
	}
	bcfg := baseline.Config{Spec: cfg.Spec, Ranks: cfg.Ranks}
	switch a {
	case CPU:
		return baseline.NewCPU(bcfg)
	case TensorDIMM:
		return baseline.NewTensorDIMM(bcfg)
	case RecNMP:
		return baseline.NewRecNMP(bcfg)
	case RankNMP:
		return baseline.NewRankNMP(bcfg)
	case FAFNIR:
		return baseline.NewFAFNIR(bcfg)
	case TRiMG:
		return baseline.NewTRiMG(bcfg)
	case TRiMB:
		prof, err := profileOf(cfg)
		if err != nil {
			return nil, err
		}
		return baseline.NewTRiMB(bcfg, prof.Hists)
	case ReCross:
		rcfg := core.DefaultConfig(cfg.Spec)
		rcfg.Ranks = cfg.Ranks
		rcfg.Batch = cfg.Batch
		rcfg.ProfileSamples = cfg.ProfileSamples
		rcfg.Seed = cfg.ProfileSeed
		rcfg.Profile = cfg.Profile
		return core.New(rcfg)
	default:
		return nil, fmt.Errorf("recross: unknown architecture %q", a)
	}
}

// NewReCross builds a fully customized ReCross instance (PE population,
// optimization toggles, region configuration).
func NewReCross(cfg ReCrossConfig) (*ReCrossSystem, error) {
	return core.New(cfg)
}

// DefaultReCrossConfig returns the paper's ReCross-d configuration.
func DefaultReCrossConfig(spec ModelSpec) ReCrossConfig {
	return core.DefaultConfig(spec)
}

// NewProfile runs an offline profiling pass over spec.
func NewProfile(spec ModelSpec, seed int64, samples int) (*Profile, error) {
	return partition.NewProfile(spec, seed, samples)
}

func profileOf(cfg Config) (*Profile, error) {
	if cfg.Profile != nil {
		return cfg.Profile, nil
	}
	return partition.NewProfile(cfg.Spec, cfg.ProfileSeed, cfg.ProfileSamples)
}

// ChannelBytes returns the capacity of a channel with the given rank count,
// for capacity planning.
func ChannelBytes(ranks int) int64 {
	return dram.DDR5(ranks).ChannelBytes()
}
