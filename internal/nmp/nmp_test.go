package nmp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInstrBitsIs82(t *testing.T) {
	if InstrBits != 82 {
		t.Fatalf("InstrBits = %d, want 82 (paper §4.2)", InstrBits)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Instr{
		Opcode:    OpWeightedSum,
		Cmd:       CmdRD,
		Addr:      0x3_DEAD_BEEF,
		VSizeLog2: 2,
		Weight:    1.25,
		BatchTag:  true,
		LastTag:   false,
		BGTag:     true,
		BankTag:   true,
	}
	p, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// Property: any valid instruction round-trips bit-exactly, including NaN
// weights (compared by bit pattern).
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op, cmd uint8, addr uint64, vs uint8, wbits uint32, batch, last, bg, bank bool) bool {
		in := Instr{
			Opcode:    Opcode(op % 8),
			Cmd:       DDRCmd(cmd % 8),
			Addr:      addr & ((1 << 34) - 1),
			VSizeLog2: vs % 8,
			Weight:    math.Float32frombits(wbits),
			BatchTag:  batch,
			LastTag:   last,
			BGTag:     bg || bank, // bankTag requires BGTag
			BankTag:   bank,
		}
		p, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(p)
		if err != nil {
			return false
		}
		return out.Opcode == in.Opcode && out.Cmd == in.Cmd &&
			out.Addr == in.Addr && out.VSizeLog2 == in.VSizeLog2 &&
			math.Float32bits(out.Weight) == math.Float32bits(in.Weight) &&
			out.BatchTag == in.BatchTag && out.LastTag == in.LastTag &&
			out.BGTag == in.BGTag && out.BankTag == in.BankTag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	cases := []Instr{
		{Addr: 1 << 34},
		{VSizeLog2: 8},
		{BankTag: true}, // bankTag without BGTag
	}
	for i, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("case %d: expected encode error", i)
		}
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	// Bits beyond the 82-bit width.
	if _, err := Decode(Packed{Hi: 1 << 30}); err == nil {
		t.Error("expected error for bits beyond width")
	}
	// Nonzero padding (bits 79..81).
	if _, err := Decode(Packed{Hi: 1 << (79 - 64)}); err == nil {
		t.Error("expected error for nonzero padding")
	}
}

func TestInstrLevelFromTags(t *testing.T) {
	cases := []struct {
		bg, bank bool
		want     Level
	}{
		{false, false, LevelRank},
		{true, false, LevelBankGroup},
		{true, true, LevelBank},
	}
	for _, c := range cases {
		in := Instr{BGTag: c.bg, BankTag: c.bank}
		if got := in.Level(); got != c.want {
			t.Errorf("tags (%v,%v): level = %v, want %v", c.bg, c.bank, got, c.want)
		}
	}
}

func TestInstrBursts(t *testing.T) {
	if (Instr{VSizeLog2: 0}).Bursts() != 1 || (Instr{VSizeLog2: 4}).Bursts() != 16 {
		t.Fatal("Bursts decoding wrong")
	}
}

func TestComputeUnitWeightedSum(t *testing.T) {
	u, err := NewComputeUnit(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Accumulate(OpWeightedSum, []float32{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	if err := u.Accumulate(OpWeightedSum, []float32{1, 1, 1, 1}, 0.5); err != nil {
		t.Fatal(err)
	}
	want := []float32{2.5, 4.5, 6.5, 8.5}
	got := u.Result()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result = %v, want %v", got, want)
		}
	}
	st := u.Stats()
	if st.Adds != 8 || st.Mults != 8 {
		t.Fatalf("stats = %+v, want 8 adds 8 mults", st)
	}
}

func TestComputeUnitSumIgnoresWeight(t *testing.T) {
	u, _ := NewComputeUnit(2)
	u.Accumulate(OpSum, []float32{1, 2}, 99)
	got := u.Result()
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("OpSum applied weight: %v", got)
	}
	if u.Stats().Mults != 0 {
		t.Fatal("OpSum should not count multiplies")
	}
}

func TestComputeUnitMax(t *testing.T) {
	u, _ := NewComputeUnit(3)
	u.Accumulate(OpMax, []float32{-5, 2, 1}, 1)
	u.Accumulate(OpMax, []float32{-7, 3, 0}, 1)
	got := u.Result()
	want := []float32{-5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("max result = %v, want %v", got, want)
		}
	}
}

func TestComputeUnitReset(t *testing.T) {
	u, _ := NewComputeUnit(2)
	u.Accumulate(OpWeightedSum, []float32{1, 1}, 1)
	u.Reset()
	got := u.Result()
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("reset accumulator = %v", got)
	}
	// Max after reset starts fresh.
	u.Accumulate(OpMax, []float32{-9, -9}, 1)
	if got := u.Result(); got[0] != -9 {
		t.Fatalf("max after reset = %v, want -9", got)
	}
}

func TestComputeUnitErrors(t *testing.T) {
	if _, err := NewComputeUnit(0); err == nil {
		t.Error("zero length should error")
	}
	u, _ := NewComputeUnit(2)
	if err := u.Accumulate(OpSum, []float32{1}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if err := u.Accumulate(Opcode(7), []float32{1, 1}, 1); err == nil {
		t.Error("unknown opcode should error")
	}
	if err := u.AccumulatePsum(OpSum, []float32{1}); err == nil {
		t.Error("psum length mismatch should error")
	}
}

// Property: splitting a weighted-sum reduction across two PEs and folding
// their psums at a higher level matches a single-PE reduction — the
// cross-level correctness invariant of §4.1.
func TestHierarchicalReductionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const vl = 8
		n := rng.Intn(20) + 2
		vecs := make([][]float32, n)
		ws := make([]float32, n)
		for i := range vecs {
			vecs[i] = make([]float32, vl)
			for j := range vecs[i] {
				vecs[i][j] = rng.Float32()*2 - 1
			}
			ws[i] = rng.Float32()
		}
		// Flat: one unit reduces everything.
		flat, _ := NewComputeUnit(vl)
		for i := range vecs {
			flat.Accumulate(OpWeightedSum, vecs[i], ws[i])
		}
		// Hierarchical: two lower PEs + a summarizer.
		lo1, _ := NewComputeUnit(vl)
		lo2, _ := NewComputeUnit(vl)
		for i := range vecs {
			u := lo1
			if i%2 == 1 {
				u = lo2
			}
			u.Accumulate(OpWeightedSum, vecs[i], ws[i])
		}
		sum, _ := NewRankSummarizer(vl)
		sum.Fold(OpWeightedSum, lo1.Result())
		sum.Fold(OpWeightedSum, lo2.Result())
		got := sum.Result()
		want := flat.Result()
		for j := range want {
			if math.Abs(float64(got[j]-want[j])) > 1e-4 {
				return false
			}
		}
		return sum.Psums() == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPEConstruction(t *testing.T) {
	p, err := NewPE(LevelBank, 17, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != LevelBank || p.Node != 17 || p.Unit().VecLen() != 64 {
		t.Fatalf("PE fields wrong: %+v", p)
	}
	if _, err := NewPE(LevelRank, 0, -1); err == nil {
		t.Error("negative veclen should error")
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{
		LevelRank: "rank", LevelBankGroup: "bank-group",
		LevelBank: "bank", LevelHost: "host",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}
