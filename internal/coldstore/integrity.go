package coldstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Device is the store's page I/O seam: everything the store reads from or
// writes to the backing medium goes through one Device, so fault-injection
// wrappers (internal/chaos.FaultyColdStore) and alternative media can
// interpose without the store knowing. Implementations must be safe for
// concurrent use; ReadPage/WritePage transfer exactly one page.
type Device interface {
	// ReadPage fills dst (one page) with page's current device bytes.
	ReadPage(page int64, dst []byte) error
	// WritePage persists src (one page) as page's new contents.
	WritePage(page int64, src []byte) error
}

// fileDevice is the pread/pwrite Device over the backing file.
type fileDevice struct {
	f         *os.File
	pageBytes int64
}

func (d *fileDevice) ReadPage(page int64, dst []byte) error {
	_, err := d.f.ReadAt(dst, page*d.pageBytes)
	return err
}

func (d *fileDevice) WritePage(page int64, src []byte) error {
	_, err := d.f.WriteAt(src, page*d.pageBytes)
	return err
}

// mmapDevice reads from the shared mapping; writes still go through pwrite
// (MAP_SHARED makes them visible to the mapping).
type mmapDevice struct {
	mm        []byte
	f         *os.File
	pageBytes int64
}

func (d *mmapDevice) ReadPage(page int64, dst []byte) error {
	copy(dst, d.mm[page*d.pageBytes:(page+1)*d.pageBytes])
	return nil
}

func (d *mmapDevice) WritePage(page int64, src []byte) error {
	_, err := d.f.WriteAt(src, page*d.pageBytes)
	return err
}

// castagnoli is the CRC32C polynomial table — the checksum storage systems
// standardize on (iSCSI, ext4, Btrfs) because hardware accelerates it.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockTargetBytes sizes a page's checksum blocks (~4 KiB of row bytes).
const blockTargetBytes = 4096

// blockSpan returns block b's byte range within a page buffer. Blocks are
// whole rows, so a served vector always lies inside exactly one block;
// page slack past the last row (when PageBytes is not a multiple of the
// vector size) is never served and carries no checksum.
func (s *Store) blockSpan(b int) (lo, hi int) {
	lo = b * s.blockRows * s.rowBytes
	hi = lo + s.blockRows*s.rowBytes
	if max := s.rpp * s.rowBytes; hi > max {
		hi = max
	}
	return lo, hi
}

// storeSums records every block checksum of a freshly generated page
// buffer (populate and repair, after a successful write-back).
func (s *Store) storeSums(page int64, buf []byte) {
	for b := 0; b < s.bpp; b++ {
		lo, hi := s.blockSpan(b)
		s.sums[page*int64(s.bpp)+int64(b)].Store(crc32.Checksum(buf[lo:hi], castagnoli))
	}
}

// verifyBuf checks device bytes against the stored block sums: one block,
// or the whole page when block is verifyAll. Caller holds s.mu shared and
// the page's state is ready.
func (s *Store) verifyBuf(page int64, buf []byte, block int) bool {
	if block != verifyAll {
		lo, hi := s.blockSpan(block)
		return crc32.Checksum(buf[lo:hi], castagnoli) == s.sums[page*int64(s.bpp)+int64(block)].Load()
	}
	for b := 0; b < s.bpp; b++ {
		lo, hi := s.blockSpan(b)
		if crc32.Checksum(buf[lo:hi], castagnoli) != s.sums[page*int64(s.bpp)+int64(b)].Load() {
			return false
		}
	}
	return true
}

// verifyCachedBlock is the page cache's first-serve integrity hook: it
// re-encodes a cached block's floats to their device byte image (fp32
// decode is bijective, so this is exact; the hook is disabled for
// quantized stores, whose pages verify whole at device-read time) and
// checks the block checksum. Runs under the cache mutex, which pins the
// frame for the duration.
func (s *Store) verifyCachedBlock(page int64, block int, blockVals []float32) bool {
	bp := s.bufs.Get().(*[]byte)
	buf := (*bp)[:len(blockVals)*4]
	for i, v := range blockVals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	ok := crc32.Checksum(buf, castagnoli) == s.sums[page*int64(s.bpp)+int64(block)].Load()
	s.bufs.Put(bp)
	return ok
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("coldstore: store closed")

// errReadTimeout marks a device read abandoned past Config.ReadDeadline.
var errReadTimeout = errors.New("coldstore: page read deadline exceeded")

// Breaker states, exported through Stats.BreakerState and the
// recross_coldstore_breaker_state gauge.
const (
	BreakerClosed   int32 = 0
	BreakerHalfOpen int32 = 1
	BreakerOpen     int32 = 2
)

// breaker is the cold tier's circuit breaker. Closed (healthy) reads flow
// to the device; BreakerThreshold consecutive failures open it, after which
// reads fail fast into the caller's RowSource fallback. After
// BreakerCooldown the next read probes the device (half-open);
// BreakerProbes consecutive probe successes close the circuit, one failure
// re-opens it. The scrubber's sweep reads feed the same breaker, so a
// device that heals is detected and the circuit closed even with no
// request traffic on the cold route.
type breaker struct {
	threshold int
	cooldown  time.Duration
	probes    int

	mu       sync.Mutex
	state    int32
	fails    int // consecutive failures while closed
	okProbes int // consecutive successes while half-open
	openedAt time.Time

	published                atomic.Int32 // state, lock-free for Degraded()
	opens, halfOpens, closes atomic.Int64
}

func newBreaker(threshold, probes int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, probes: probes}
}

// set transitions the state machine (mu held) and maintains the cumulative
// transition counters tests and dashboards watch.
func (b *breaker) set(state int32) {
	if b.state == state {
		return
	}
	b.state = state
	b.published.Store(state)
	b.fails, b.okProbes = 0, 0
	switch state {
	case BreakerOpen:
		b.openedAt = time.Now()
		b.opens.Add(1)
	case BreakerHalfOpen:
		b.halfOpens.Add(1)
	case BreakerClosed:
		b.closes.Add(1)
	}
}

// allow reports whether a device read may proceed. While open it flips to
// half-open once the cooldown has elapsed, admitting probe traffic.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.set(BreakerHalfOpen)
		return true
	default:
		return true
	}
}

// onSuccess records a successful device read. A success while open (only
// the scrubber reads without allow) short-circuits the cooldown: the
// device answered, so move to half-open and count the probe.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails = 0
	case BreakerOpen:
		b.set(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		b.okProbes++
		if b.okProbes >= b.probes {
			b.set(BreakerClosed)
		}
	}
}

// onFailure records a failed device read (retries already exhausted).
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.set(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.set(BreakerOpen)
	case BreakerOpen:
		// Still failing: restart the cooldown so half-open waits for a
		// quiet period, not just elapsed time since the first trip.
		b.openedAt = time.Now()
	}
}

// current returns the published state without taking the lock.
func (b *breaker) current() int32 { return b.published.Load() }

// scrubber is the background integrity sweep: every ScrubInterval it picks
// the next populated page, reads it from the device, verifies its checksum
// and repairs on mismatch. Its reads double as health probes for the
// breaker — a sticky-failed device that comes back is observed here first.
func (s *Store) scrubber() {
	defer close(s.scrubDone)
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	var next int64
	for {
		select {
		case <-s.scrubStop:
			return
		case <-t.C:
			s.scrubNext(&next)
		}
	}
}

// scrubNext scans forward from *next for a populated page and scrubs it.
func (s *Store) scrubNext(next *int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return
	}
	for n := int64(0); n < s.nPages; n++ {
		p := (*next + n) % s.nPages
		if s.state[p].Load() != pageReady {
			continue
		}
		*next = p + 1
		s.scrubPage(p)
		return
	}
}

// scrubPage verifies one resident page — every checksum block — against
// its stored sums, repairing on mismatch. Caller holds s.mu shared.
func (s *Store) scrubPage(page int64) {
	bp := s.bufs.Get().(*[]byte)
	buf := *bp
	err := s.devRead(page, buf)
	if err != nil {
		s.bufs.Put(bp)
		s.readFailures.Add(1)
		s.breaker.onFailure()
		return
	}
	s.scrubPages.Add(1)
	if !s.cfg.DisableChecksum && !s.verifyBuf(page, buf, verifyAll) {
		s.checksumFailures.Add(1)
		s.repair(page)
	}
	s.bufs.Put(bp)
	s.breaker.onSuccess()
}
