package memctrl

import (
	"math/rand"
	"reflect"
	"testing"

	"recross/internal/dram"
	"recross/internal/sim"
)

// The differential guard: the fast arbiter (Controller.Drain) must be
// bit-identical to the Reference scan scheduler — same Result (Done,
// Finish, RowHits, RowMisses, OpLatency) and same dram.Stats — across
// policies, SALP on/off, instruction modes, writes, op windows, inflight
// limits and write watermarks. Any divergence is a bug in the fast path by
// definition.

// diffScenario is one fuzzed configuration point.
type diffScenario struct {
	geo      dram.Geometry
	tm       dram.Timing
	mode     dram.InstrMode
	policy   Policy
	window   int
	inflight int
	opWindow int
	hiWM     int
	loWM     int
	salp     []int // flat banks to enable SALP on
	reqs     []Request
}

// genScenario draws a random scenario. Geometry is kept small so bank
// queues actually collide; rows are drawn from a hot set so row hits,
// conflicts and SALP lookaheads all occur.
func genScenario(rng *rand.Rand) diffScenario {
	geo := dram.Geometry{
		Ranks:           1 + rng.Intn(2),
		BankGroups:      1 + rng.Intn(3),
		Banks:           1 + rng.Intn(2),
		Subarrays:       4,
		RowsPerSubarray: 8,
		RowBytes:        512,
		BurstBytes:      64,
	}
	tm := dram.DDR5Timing()
	if rng.Intn(3) == 0 {
		tm = tm.WithRefresh()
	}
	modes := []dram.InstrMode{dram.Conventional, dram.NMPTwoStage, dram.NMPCAOnly}
	sc := diffScenario{
		geo:    geo,
		tm:     tm,
		mode:   modes[rng.Intn(len(modes))],
		policy: Policy(rng.Intn(2)),
		window: 1 + rng.Intn(8),
	}
	switch rng.Intn(3) {
	case 0:
		sc.inflight = 0 // default
	case 1:
		sc.inflight = 2 + rng.Intn(6)
	default:
		sc.inflight = 16 + rng.Intn(48)
	}
	if rng.Intn(2) == 0 {
		sc.opWindow = 1 + rng.Intn(3)
	}
	switch rng.Intn(3) {
	case 1:
		sc.hiWM, sc.loWM = 1, 0 // eager writes
	case 2:
		sc.hiWM, sc.loWM = 3+rng.Intn(6), 1
	}
	for fb := 0; fb < geo.TotalBanks(); fb++ {
		if rng.Intn(2) == 0 {
			sc.salp = append(sc.salp, fb)
		}
	}

	n := 1 + rng.Intn(150)
	cols := geo.ColumnsPerRow()
	hotRows := make([]int, 4)
	for i := range hotRows {
		hotRows[i] = rng.Intn(geo.RowsPerBank())
	}
	writeP := rng.Intn(3) // 0: none, 1: some, 2: write-heavy
	var arrival sim.Cycle
	var op int32
	for i := 0; i < n; i++ {
		row := hotRows[rng.Intn(len(hotRows))]
		if rng.Intn(4) == 0 {
			row = rng.Intn(geo.RowsPerBank())
		}
		col := rng.Intn(cols)
		c := 1 + rng.Intn(cols-col)
		if c > 6 {
			c = 6
		}
		r := Request{
			Loc: dram.Loc{
				Rank: rng.Intn(geo.Ranks),
				BG:   rng.Intn(geo.BankGroups),
				Bank: rng.Intn(geo.Banks),
				Row:  row,
				Col:  col,
			},
			Cols:     c,
			Consumer: dram.Consumer(rng.Intn(4)),
			Write:    writeP > 0 && rng.Intn(3) < writeP,
			Arrival:  arrival,
			Op:       op,
		}
		sc.reqs = append(sc.reqs, r)
		arrival += sim.Cycle(rng.Intn(8))
		if rng.Intn(3) == 0 {
			op += int32(1 + rng.Intn(3)) // op-tag gaps exercise watermark skips
		}
	}
	return sc
}

// runScenario drains sc's requests through a fresh channel with the given
// scheduler kind ("fast" or "ref") and returns the result, stats and error.
func runScenario(t testing.TB, sc *diffScenario, fast bool) (Result, dram.Stats, error) {
	t.Helper()
	ch, err := dram.NewChannel(sc.geo, sc.tm, sc.mode)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	for _, fb := range sc.salp {
		ch.EnableSALP(fb)
	}
	cfg := func(c *Controller) {
		c.InflightLimit = sc.inflight
		c.OpWindowLimit = sc.opWindow
		c.WriteHighWatermark = sc.hiWM
		c.WriteLowWatermark = sc.loWM
	}
	var res Result
	if fast {
		c, err := New(ch, sc.policy, sc.window)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cfg(c)
		res, err = c.Drain(sc.reqs)
		return res, ch.St, err
	}
	r, err := NewReference(ch, sc.policy, sc.window)
	if err != nil {
		t.Fatalf("NewReference: %v", err)
	}
	cfg(&r.Controller)
	res, err = r.Drain(sc.reqs)
	return res, ch.St, err
}

func checkIdentical(t *testing.T, sc *diffScenario, seed int64) {
	t.Helper()
	ref, refSt, refErr := runScenario(t, sc, false)
	got, gotSt, gotErr := runScenario(t, sc, true)
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("seed %d: error divergence: ref=%v fast=%v", seed, refErr, gotErr)
	}
	if refErr != nil {
		if refErr.Error() != gotErr.Error() {
			t.Fatalf("seed %d: error text divergence: ref=%q fast=%q", seed, refErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("seed %d: Result divergence:\nref:  %+v\nfast: %+v\n(policy=%v window=%d inflight=%d opwin=%d wm=%d/%d salp=%d reqs=%d)",
			seed, ref, got, sc.policy, sc.window, sc.inflight, sc.opWindow,
			sc.hiWM, sc.loWM, len(sc.salp), len(sc.reqs))
	}
	if !reflect.DeepEqual(refSt, gotSt) {
		t.Fatalf("seed %d: dram.Stats divergence:\nref:  %+v\nfast: %+v", seed, refSt, gotSt)
	}
}

// TestDifferentialFuzz is the bit-identity guard. 400 random scenarios
// cover both policies, the three instruction modes, SALP subsets, write
// mixes, op windows and watermark settings.
func TestDifferentialFuzz(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for seed := int64(0); seed < int64(iters); seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := genScenario(rng)
		checkIdentical(t, &sc, seed)
	}
}

// TestDifferentialScratchReuse drains several scenarios through ONE fast
// controller and channel (Reset between runs), verifying the reused
// scratch (bank queues, node pool, heaps, op maps) leaks no state across
// Drain calls.
func TestDifferentialScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	geo := dram.DDR5(1)
	base := genScenario(rng)
	ch, err := dram.NewChannel(geo, dram.DDR5Timing(), dram.NMPTwoStage)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ch, LAS, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	for trial := 0; trial < 20; trial++ {
		sc := genScenario(rng)
		sc.geo = geo
		sc.mode = dram.NMPTwoStage
		sc.tm = dram.DDR5Timing()
		sc.salp = nil
		// Regenerate request locations for the fixed geometry.
		for i := range sc.reqs {
			sc.reqs[i].Loc.Rank = rng.Intn(geo.Ranks)
			sc.reqs[i].Loc.BG = rng.Intn(geo.BankGroups)
			sc.reqs[i].Loc.Bank = rng.Intn(geo.Banks)
			sc.reqs[i].Loc.Row = rng.Intn(geo.RowsPerBank())
			sc.reqs[i].Loc.Col = 0
			if sc.reqs[i].Cols > geo.ColumnsPerRow() {
				sc.reqs[i].Cols = geo.ColumnsPerRow()
			}
		}
		ref, refSt, refErr := runScenario(t, &sc, false)

		ch.Reset()
		c.InflightLimit = sc.inflight
		c.OpWindowLimit = sc.opWindow
		c.WriteHighWatermark = sc.hiWM
		c.WriteLowWatermark = sc.loWM
		c.policy = sc.policy
		c.window = sc.window
		got, gotErr := c.Drain(sc.reqs)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error divergence: ref=%v fast=%v", trial, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: Result divergence with reused controller:\nref:  %+v\nfast: %+v", trial, ref, got)
		}
		if !reflect.DeepEqual(refSt, ch.St) {
			t.Fatalf("trial %d: dram.Stats divergence with reused controller", trial)
		}
	}
}

// --- Edge cases the fuzzer relies on, pinned as explicit regressions. ---

// TestOpWindowGapAtWatermark: op tags with gaps (0, 2, 5) force the
// watermark advance to skip op numbers that have zero requests. With
// OpWindowLimit=1 the drain serializes per op; the missing tags must not
// wedge admission.
func TestOpWindowGapAtWatermark(t *testing.T) {
	geo := dram.DDR5(1)
	sc := diffScenario{
		geo: geo, tm: dram.DDR5Timing(), mode: dram.NMPTwoStage,
		policy: LAS, window: DefaultWindow, opWindow: 1,
	}
	for i, op := range []int32{0, 0, 2, 2, 5} {
		sc.reqs = append(sc.reqs, Request{
			Loc:      dram.Loc{Bank: i % geo.Banks, Row: i},
			Cols:     2,
			Consumer: dram.ToBankPE,
			Op:       op,
		})
	}
	ref, _, refErr := runScenario(t, &sc, false)
	if refErr != nil {
		t.Fatalf("reference drain failed: %v", refErr)
	}
	if len(ref.OpLatency) != 3 {
		t.Fatalf("want 3 op latencies, got %d", len(ref.OpLatency))
	}
	checkIdentical(t, &sc, -1)
}

// TestWriteHysteresisBurstCrossing: a completion admits a burst of writes
// that crosses the high watermark in one admission loop, and the drain
// then crosses the low watermark while further completions re-admit more
// writes. hi=4, lo=1 with 12 writes behind 2 reads and InflightLimit=4
// walks the hysteresis both ways repeatedly.
func TestWriteHysteresisBurstCrossing(t *testing.T) {
	geo := dram.DDR5(1)
	sc := diffScenario{
		geo: geo, tm: dram.DDR5Timing(), mode: dram.Conventional,
		policy: FRFCFS, window: DefaultWindow,
		inflight: 4, hiWM: 4, loWM: 1,
	}
	for i := 0; i < 2; i++ {
		sc.reqs = append(sc.reqs, Request{
			Loc: dram.Loc{Bank: i, Row: 1}, Cols: 1, Consumer: dram.ToHost,
		})
	}
	for i := 0; i < 12; i++ {
		sc.reqs = append(sc.reqs, Request{
			Loc:   dram.Loc{BG: i % geo.BankGroups, Row: 2 + i},
			Cols:  1,
			Write: true,
		})
	}
	ref, _, refErr := runScenario(t, &sc, false)
	if refErr != nil {
		t.Fatalf("reference drain failed: %v", refErr)
	}
	if int(ref.RowHits+ref.RowMisses) != len(sc.reqs) {
		t.Fatalf("accounting: hits+misses=%d want %d", ref.RowHits+ref.RowMisses, len(sc.reqs))
	}
	checkIdentical(t, &sc, -2)
}

// TestSALPLookaheadInvalidatedByDeletion: a SALP bank where the lookahead
// ACT candidate sits behind a streaming row-hit; when the row-hit request
// completes and is deleted from the queue, the cached lookahead position
// must be invalidated, not reused against the shifted queue.
func TestSALPLookaheadInvalidatedByDeletion(t *testing.T) {
	geo := dram.DDR5(1)
	sc := diffScenario{
		geo: geo, tm: dram.DDR5Timing(), mode: dram.NMPTwoStage,
		policy: LAS, window: DefaultWindow,
		salp: []int{0},
	}
	rps := geo.RowsPerSubarray
	// Bank 0 (SALP): a long row-hit stream in subarray 0, then two
	// requests in other subarrays that become lookahead ACT candidates.
	sc.reqs = append(sc.reqs,
		Request{Loc: dram.Loc{Row: 0}, Cols: 6, Consumer: dram.ToBankPE},
		Request{Loc: dram.Loc{Row: rps}, Cols: 2, Consumer: dram.ToBankPE},
		Request{Loc: dram.Loc{Row: 2 * rps}, Cols: 2, Consumer: dram.ToBankPE},
	)
	ref, refSt, refErr := runScenario(t, &sc, false)
	if refErr != nil {
		t.Fatalf("reference drain failed: %v", refErr)
	}
	if refSt.SubarraySwitch == 0 {
		t.Fatalf("scenario does not exercise SALP (no subarray switches)")
	}
	_ = ref
	checkIdentical(t, &sc, -3)
}

// --- Benchmarks: fast arbiter vs reference scan on the same workload. ---

func benchReqs(n int) []Request {
	rng := rand.New(rand.NewSource(1))
	geo := dram.DDR5(2)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Loc: dram.Loc{
				Rank: rng.Intn(geo.Ranks),
				BG:   rng.Intn(geo.BankGroups),
				Bank: rng.Intn(geo.Banks),
				Row:  rng.Intn(64), // hot rows: realistic hit mix
			},
			Cols:     8,
			Consumer: dram.ToBankPE,
			Arrival:  sim.Cycle(i),
			Op:       int32(i / 16),
		}
	}
	return reqs
}

func BenchmarkDrainFast4k(b *testing.B) {
	geo := dram.DDR5(2)
	reqs := benchReqs(4096)
	ch, _ := dram.NewChannel(geo, dram.DDR5Timing(), dram.NMPTwoStage)
	c, _ := New(ch, LAS, DefaultWindow)
	c.OpWindowLimit = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Reset()
		if _, err := c.Drain(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDrainReference4k(b *testing.B) {
	geo := dram.DDR5(2)
	reqs := benchReqs(4096)
	ch, _ := dram.NewChannel(geo, dram.DDR5Timing(), dram.NMPTwoStage)
	r, _ := NewReference(ch, LAS, DefaultWindow)
	r.OpWindowLimit = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Reset()
		if _, err := r.Drain(reqs); err != nil {
			b.Fatal(err)
		}
	}
}
