// Package kernels holds the fused vector primitives of the functional
// embedding data plane: gather-scale-accumulate loops unrolled 8 wide with
// a scalar tail, written against reused destination buffers so the serving
// hot path performs zero data-plane allocations.
//
// Exact-FP equivalence guarantee: every kernel is elementwise — lane j of
// the destination sees exactly the same sequence of FP32 operations, in
// the same order, as the textbook scalar loop `for j { dst[j] op= src[j] }`.
// Unrolling spreads independent lanes across iterations of the loop body
// (instruction-level parallelism) but never reassociates or reorders the
// per-lane accumulation, so results are bit-identical to the scalar
// reference, not merely close. The kernel differential tests in
// internal/embedding enforce this for every reduce kind.
package kernels

// Zero clears dst.
func Zero(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
}

// Add accumulates src into dst elementwise: dst[i] += src[i].
// len(src) must be >= len(dst); extra src elements are ignored.
func Add(dst, src []float32) {
	n := len(dst)
	src = src[:n] // one bounds check; eliminates per-access checks below
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// Axpy accumulates a scaled vector into dst elementwise: dst[i] += w*src[i].
// The multiply-then-add per lane matches the scalar reference exactly (no
// FMA contraction: Go does not fuse float32 multiply-add).
func Axpy(dst, src []float32, w float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] += w * s[0]
		d[1] += w * s[1]
		d[2] += w * s[2]
		d[3] += w * s[3]
		d[4] += w * s[4]
		d[5] += w * s[5]
		d[6] += w * s[6]
		d[7] += w * s[7]
	}
	for ; i < n; i++ {
		dst[i] += w * src[i]
	}
}

// Max folds src into dst elementwise under max, with the exact comparison
// semantics of the scalar reference (`if src[i] > dst[i]`), so NaN and
// signed-zero handling are bit-identical.
func Max(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		if s[0] > d[0] {
			d[0] = s[0]
		}
		if s[1] > d[1] {
			d[1] = s[1]
		}
		if s[2] > d[2] {
			d[2] = s[2]
		}
		if s[3] > d[3] {
			d[3] = s[3]
		}
		if s[4] > d[4] {
			d[4] = s[4]
		}
		if s[5] > d[5] {
			d[5] = s[5]
		}
		if s[6] > d[6] {
			d[6] = s[6]
		}
		if s[7] > d[7] {
			d[7] = s[7]
		}
	}
	for ; i < n; i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}
