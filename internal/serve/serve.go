// Package serve turns the batch-oriented simulator into a long-running
// embedding-inference service, the deployment model RecNMP and RecSSD
// evaluate recommendation accelerators under: concurrent single-sample
// query streams, SLA tail latency, throughput under load.
//
// The layer has five parts:
//
//   - a dynamic batcher: incoming single-sample requests queue per model
//     and coalesce into batches, flushing when MaxBatch samples are
//     waiting or MaxDelay has elapsed since the batch opened — the
//     standard latency/throughput knob of inference serving;
//   - a sharded worker pool: N replicas of an arch.System (each its own
//     simulated memory channel/device), fed by least-outstanding-work
//     dispatch, with results demultiplexed back to per-request futures;
//   - admission control: a bounded queue with a configurable overload
//     policy (Block until space, or Shed with ErrOverloaded), and
//     per-request context deadlines honored at dequeue time;
//   - a self-healing supervisor: replica workers recover panics, detect
//     wedged (never-returning) batches and corrupted results, and fail
//     only the in-flight batch; the supervisor rebuilds the replica with
//     exponential backoff under a restart cap, failed batches retry on a
//     healthy replica under a bounded budget, and when available
//     replicas fall below Quorum the server answers from the shared
//     functional layer with Result.Degraded set — a replica fault never
//     becomes a caller-visible error;
//   - a metrics registry: lock-cheap counters and streaming histograms
//     (queue wait, batch formation, simulated service cycles, end-to-end
//     wall time) exposing p50/p95/p99 snapshots, plus per-replica health
//     states, fault/retry/restart counters and degraded-serve counts.
//
// An arch.System is single-goroutine (see the recross.System docs); the
// pool gives each replica exclusively to one worker goroutine, which is
// what makes the whole server safe for arbitrary concurrent Lookup calls.
// The functional embedding.Layer is shared: procedural tables are
// immutable and safe for concurrent reads.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/arch"
	"recross/internal/embedding"
	"recross/internal/sim"
	"recross/internal/trace"
)

// Overload errors returned by Lookup.
var (
	// ErrOverloaded reports that the admission queue was full under the
	// Shed policy.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrClosed reports that the server is draining or closed.
	ErrClosed = errors.New("serve: server closed")
	// ErrReplicaFailure is the sentinel every ReplicaError unwraps to:
	// errors.Is(err, ErrReplicaFailure) identifies replica-level faults.
	ErrReplicaFailure = errors.New("serve: replica failure")
)

// Failure classifies a replica-level fault.
type Failure int

const (
	// FailurePanic: the replica's Run panicked; the worker recovered it.
	FailurePanic Failure = iota
	// FailureWedge: a batch exceeded WedgeTimeout and the replica (plus
	// the goroutine stuck inside it) was abandoned.
	FailureWedge
	// FailureCorrupt: Run returned detectably corrupt stats (nil or a
	// negative cycle count).
	FailureCorrupt
	// FailureError: Run returned an ordinary error.
	FailureError
)

func (f Failure) String() string {
	switch f {
	case FailurePanic:
		return "panic"
	case FailureWedge:
		return "wedge"
	case FailureCorrupt:
		return "corrupt"
	case FailureError:
		return "error"
	default:
		return fmt.Sprintf("failure(%d)", int(f))
	}
}

// ReplicaError reports a replica-level fault that failed a batch. It
// unwraps to ErrReplicaFailure; callers normally never see one, because
// failed batches are retried and then served degraded.
type ReplicaError struct {
	// Replica is the failed pool worker.
	Replica int
	// Fault classifies the failure.
	Fault Failure
	// Cause is the recovered panic value, timeout description, or Run
	// error.
	Cause error
}

func (e *ReplicaError) Error() string {
	return fmt.Sprintf("serve: replica %d %s: %v", e.Replica, e.Fault, e.Cause)
}

// Unwrap makes errors.Is(err, ErrReplicaFailure) true.
func (e *ReplicaError) Unwrap() error { return ErrReplicaFailure }

// OverloadPolicy selects what admission does when the queue is full.
type OverloadPolicy int

const (
	// Block waits for queue space (or the request context's cancellation).
	Block OverloadPolicy = iota
	// Shed fails fast with ErrOverloaded.
	Shed
)

func (p OverloadPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses "block" or "shed".
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "shed":
		return Shed, nil
	default:
		return 0, fmt.Errorf("serve: unknown overload policy %q", s)
	}
}

// Options configures New.
type Options struct {
	// Systems are the replica timing models, one per pool worker
	// (required, at least one). Each must be used by no one else: the
	// worker owns it exclusively.
	Systems []arch.System
	// Layer is the shared functional embedding layer producing the actual
	// result vectors (required). It must be safe for concurrent reads
	// (procedural layers are).
	Layer *embedding.Layer
	// MaxBatch is the coalescing limit in samples (default 32).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch may wait for
	// co-riders before the batch flushes regardless (default 1ms).
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue in requests
	// (default 4*MaxBatch).
	QueueDepth int
	// Policy selects the overload behaviour (default Block).
	Policy OverloadPolicy

	// DefaultTimeout, when positive, is the server-side deadline applied
	// to requests whose context arrives without one, so Block-policy
	// admission cannot hold a caller forever (0 = no default).
	DefaultTimeout time.Duration

	// Rebuild, when non-nil, is the replica factory the supervisor uses
	// to rebuild a failed replica's System (typically from the shared
	// offline profile — see recross.Config.ReplicaSystems). When nil the
	// old System instance is reused as-is, which is only safe for
	// stateless fakes; real deployments should always set it.
	Rebuild func(id int) (arch.System, error)
	// MaxRetries is the per-request retry budget on replica failure:
	// a batch-failed request is resubmitted to a healthy replica up to
	// this many times before it is answered degraded (default 2).
	MaxRetries int
	// WedgeTimeout is how long one batch may run before its replica is
	// declared wedged and abandoned (default 5s).
	WedgeTimeout time.Duration
	// RestartBackoff is the supervisor's initial restart delay; it
	// doubles per consecutive attempt, capped at 100x (default 10ms).
	RestartBackoff time.Duration
	// RestartCap bounds consecutive restart attempts per replica before
	// it is declared dead (default 5). A served batch resets the count.
	RestartCap int
	// Quorum is the minimum available (healthy or suspect) replicas for
	// normal dispatch; below it the server enters degraded mode and
	// answers from the functional layer with Result.Degraded set
	// (default 1).
	Quorum int

	// Observer, when non-nil, is called with every admitted sample — the
	// adaptive repartitioner's tap into the live access stream. It runs on
	// the caller's goroutine inside Lookup, so it must be cheap and safe
	// for concurrent use (adapt.Tracker.Observe is both).
	Observer func(trace.Sample)

	// RowCacheBytes, when positive, attaches a sharded hot-row cache of
	// this budget to Layer (unless the caller already attached one), so
	// hot procedural rows are materialized once instead of re-hashed per
	// lookup. Its counters ride /metrics as recross_dataplane_row_cache_*
	// (0 = no cache). Requires at least one procedural table.
	RowCacheBytes int64
	// ReduceWorkers sizes the persistent data-plane reduction pool that
	// answers batches' functional results in parallel (default
	// min(4, GOMAXPROCS); 1 serializes reductions). Results are
	// bit-identical to the single-goroutine reference regardless: samples
	// are reduced independently and per-op association order is fixed.
	ReduceWorkers int

	// OnClose, when non-nil, runs at the end of Close after every worker
	// and answer path has finished — the hook that releases resources the
	// server serves from but does not own the lifecycle of otherwise
	// (e.g. the cold tier's backing store).
	OnClose func()

	// ColdDegraded, when non-nil, probes whether the storage tier is
	// serving degraded (the cold store's circuit breaker is not closed).
	// Answers completed while it reports true carry Result.ColdDegraded,
	// /healthz shows status "cold-degraded", and the
	// recross_requests_cold_degraded_total counter advances — storage
	// degradation stays distinguishable from compute-quorum degradation.
	ColdDegraded func() bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = time.Millisecond
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.WedgeTimeout == 0 {
		o.WedgeTimeout = 5 * time.Second
	}
	if o.RestartBackoff == 0 {
		o.RestartBackoff = 10 * time.Millisecond
	}
	if o.RestartCap == 0 {
		o.RestartCap = 5
	}
	if o.Quorum == 0 {
		o.Quorum = 1
	}
	return o
}

// Result is one answered request.
type Result struct {
	// Vectors holds the pooled embedding vector of each op of the sample,
	// bit-identical to embedding.Layer.Reduce on the same op.
	Vectors [][]float32
	// BatchSize is how many samples were coalesced into the simulated
	// batch that served this request (1 for degraded answers).
	BatchSize int
	// ServiceCycles is the simulated DRAM-cycle latency of that batch
	// (0 for degraded answers: no timing model ran).
	ServiceCycles sim.Cycle
	// Replica is the pool worker that served the batch (-1 for degraded
	// answers).
	Replica int
	// Retries is how many times the request was resubmitted after a
	// replica failure before being answered.
	Retries int
	// Degraded marks a request answered from the shared functional layer
	// — correct vectors, no timing model — because no healthy replica
	// could serve it (quorum loss, drain, or an exhausted retry budget).
	// It reports compute degradation; storage degradation is the separate
	// ColdDegraded flag, and a request may carry both.
	Degraded bool
	// ColdDegraded marks a request completed while the storage tier was
	// degraded (cold-store breaker not closed): cold-placed rows were
	// materialized through the slow direct-RowSource fallback, so the
	// vectors are still bit-exact but cold-path latency is not.
	ColdDegraded bool
	// QueueWait is the wall time spent waiting in the admission queue.
	QueueWait time.Duration
	// Total is the end-to-end wall time from admission to completion.
	Total time.Duration
}

// outcome resolves one request's future.
type outcome struct {
	res *Result
	err error
}

// request is one queued lookup.
type request struct {
	ctx     context.Context
	sample  trace.Sample
	enq     time.Time   // admission time
	deq     time.Time   // dequeue time, set by the batcher
	retries int         // resubmissions so far; owned by whoever holds the request
	settled atomic.Bool // guards complete against late double-resolution

	done chan outcome // buffered(1): workers never block completing it
}

// complete resolves the future exactly once; callers gate their metric
// updates on the return so a request is counted exactly once even if a
// failover path races a late completion.
func (r *request) complete(o outcome) bool {
	if !r.settled.CompareAndSwap(false, true) {
		return false
	}
	r.done <- o
	return true
}

// Server is the embedding-inference front-end. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	opts     Options
	metrics  *Metrics
	in       chan *request
	replicas []*replica

	mu     sync.RWMutex // guards closed against in-flight enqueues
	closed bool

	workMu     sync.RWMutex // guards workClosed against in-flight work sends
	workClosed bool

	failures       chan *replica // worker -> supervisor, cap len(replicas)
	supervisorStop chan struct{}
	supervisorDone chan struct{}

	dispatcherDone chan struct{}
	workers        sync.WaitGroup

	expoMu  sync.RWMutex
	expoFns []func() string // extra /metrics sections (RegisterExpo)

	// Functional data plane: the persistent reduction pool answering
	// result vectors, and the layer's hot-row cache when configured.
	reducers *reducerPool
	rowCache *embedding.RowCache
}

// New builds and starts a server: one dispatcher goroutine, one
// supervisor goroutine, plus one worker goroutine per replica system.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if len(opts.Systems) == 0 {
		return nil, errors.New("serve: at least one replica system required")
	}
	if opts.Layer == nil {
		return nil, errors.New("serve: functional layer required")
	}
	if opts.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: MaxBatch %d < 1", opts.MaxBatch)
	}
	if opts.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: QueueDepth %d < 1", opts.QueueDepth)
	}
	if opts.Policy != Block && opts.Policy != Shed {
		return nil, fmt.Errorf("serve: unknown overload policy %d", opts.Policy)
	}
	if opts.Quorum < 1 || opts.Quorum > len(opts.Systems) {
		return nil, fmt.Errorf("serve: quorum %d out of [1,%d]", opts.Quorum, len(opts.Systems))
	}
	if opts.MaxRetries < 0 {
		return nil, fmt.Errorf("serve: MaxRetries %d < 0", opts.MaxRetries)
	}
	if opts.RowCacheBytes < 0 {
		return nil, fmt.Errorf("serve: RowCacheBytes %d < 0", opts.RowCacheBytes)
	}
	if opts.ReduceWorkers < 0 {
		return nil, fmt.Errorf("serve: ReduceWorkers %d < 0", opts.ReduceWorkers)
	}
	s := &Server{
		opts:           opts,
		metrics:        NewMetrics(),
		in:             make(chan *request, opts.QueueDepth),
		failures:       make(chan *replica, len(opts.Systems)),
		supervisorStop: make(chan struct{}),
		supervisorDone: make(chan struct{}),
		dispatcherDone: make(chan struct{}),
	}
	if err := s.initDataplane(); err != nil {
		return nil, err
	}
	for i, sys := range opts.Systems {
		rep := newReplica(i, sys)
		s.replicas = append(s.replicas, rep)
		s.startWorker(rep)
	}
	go s.supervise()
	go s.dispatch()
	return s, nil
}

// startWorker spawns the goroutine that owns rep's System.
func (s *Server) startWorker(rep *replica) {
	rep.workerLive.Store(true)
	s.workers.Add(1)
	go func() {
		defer s.workers.Done()
		rep.run(s)
	}()
}

// Replicas returns the pool width.
func (s *Server) Replicas() int { return len(s.replicas) }

// RegisterExpo appends an extra section to the /metrics exposition —
// how subsystems composed around the server (the adaptive repartitioning
// controller, for one) publish their own series through the same
// endpoint. f must be safe for concurrent use.
func (s *Server) RegisterExpo(f func() string) {
	if f == nil {
		return
	}
	s.expoMu.Lock()
	s.expoFns = append(s.expoFns, f)
	s.expoMu.Unlock()
}

// Metrics returns the live registry (snapshot it for reporting).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Lookup serves one sample's embedding work: the sample is queued,
// coalesced into a batch, run through a replica's timing model, and its
// functional result vectors returned. ctx cancellation is honored while
// blocked at admission and while queued (at dequeue time); once the
// sample is in a running batch the result is computed but discarded if
// the caller has gone. Replica faults are invisible here: a failed batch
// is retried on a healthy replica (up to MaxRetries) and then answered
// from the functional layer with Result.Degraded set.
func (s *Server) Lookup(ctx context.Context, sample trace.Sample) (*Result, error) {
	if len(sample) == 0 {
		return nil, errors.New("serve: empty sample")
	}
	// Enforce the trace.Op shape contract before the sample can reach a
	// worker: Systems assume len(Weights) == len(Indices) (weights are
	// ignored for Sum/Max but must be present). A violation would panic
	// the replica goroutine — recoverable now, but it would still burn a
	// restart on caller input.
	for i, op := range sample {
		if len(op.Indices) == 0 {
			return nil, fmt.Errorf("serve: op %d has no indices", i)
		}
		if len(op.Weights) != len(op.Indices) {
			return nil, fmt.Errorf("serve: op %d has %d weights for %d indices",
				i, len(op.Weights), len(op.Indices))
		}
	}
	if s.opts.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.DefaultTimeout)
			defer cancel()
		}
	}
	r := &request{ctx: ctx, sample: sample, enq: time.Now(), done: make(chan outcome, 1)}

	// The read lock spans the enqueue so Close (write lock) cannot close
	// s.in while an admission send is in flight.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	switch s.opts.Policy {
	case Shed:
		select {
		case s.in <- r:
		default:
			s.mu.RUnlock()
			s.metrics.Shed.Add(1)
			return nil, ErrOverloaded
		}
	default: // Block
		select {
		case s.in <- r:
		case <-ctx.Done():
			s.mu.RUnlock()
			s.metrics.Canceled.Add(1)
			return nil, ctx.Err()
		}
	}
	s.mu.RUnlock()
	s.metrics.Admitted.Add(1)
	if s.opts.Observer != nil {
		s.opts.Observer(sample)
	}

	select {
	case o := <-r.done:
		return o.res, o.err
	case <-ctx.Done():
		// Still queued (will be dropped at dequeue) or already running
		// (result discarded; the buffered done channel frees the worker).
		return nil, ctx.Err()
	}
}

// Close gracefully drains the server: admission stops with ErrClosed,
// every already-admitted request is batched and answered (normally or
// degraded), and all tracked goroutines exit before Close returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.in)        // dispatcher drains the queue, flushes, exits
	<-s.dispatcherDone // all batches handed to workers (or served degraded)

	// Stop the supervisor before closing work channels so it never
	// spawns a worker concurrently with workers.Wait.
	close(s.supervisorStop)
	<-s.supervisorDone

	// Close every work channel under the write lock so no failover
	// resubmission can race a send onto a closed channel.
	s.workMu.Lock()
	s.workClosed = true
	for _, rep := range s.replicas {
		close(rep.work)
	}
	s.workMu.Unlock()
	s.workers.Wait()

	// Final sweep: replicas that lost their worker (failed while the
	// supervisor was already stopped, or mid-restart) may still hold
	// queued batches. The channels are closed and have no other reader
	// left, so draining here terminates; resubmission is impossible now,
	// so every swept request is answered degraded.
	for _, rep := range s.replicas {
		for batch := range rep.work {
			rep.outstanding.Add(-int64(len(batch)))
			s.failover(batch, rep.id, &ReplicaError{
				Replica: rep.id, Fault: FailureError,
				Cause: errors.New("replica lost during drain"),
			})
		}
	}

	// Every answer path (worker demux, degraded sweeps) has completed;
	// the data-plane reduction pool has no producers left.
	s.reducers.close()
	if s.opts.OnClose != nil {
		s.opts.OnClose()
	}
	return nil
}
