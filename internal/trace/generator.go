package trace

import (
	"fmt"
	"math/rand"

	"recross/internal/stats"
)

// ReduceKind selects an op's pooling operator (§4.1: ReCross supports
// summation, weighted summation "and any other quantized operation").
type ReduceKind uint8

const (
	// WeightedSum is the paper's default: sum of weight_k * row_k.
	WeightedSum ReduceKind = iota
	// Sum ignores the weights (plain element-wise summation).
	Sum
	// Max is element-wise max pooling.
	Max
)

func (k ReduceKind) String() string {
	switch k {
	case WeightedSum:
		return "weighted-sum"
	case Sum:
		return "sum"
	case Max:
		return "max"
	default:
		return "reduce(?)"
	}
}

// Op is one embedding operation: a gather of Indices from one table followed
// by a pooling reduction over them. len(Weights) == len(Indices); for Sum
// and Max the weights are ignored.
type Op struct {
	Table   int
	Kind    ReduceKind
	Indices []int64
	Weights []float32
}

// Sample is the embedding work of one inference sample: one Op per accessed
// table.
type Sample []Op

// Batch is a batch of samples processed together (paper default 32).
type Batch []Sample

// Lookups returns the total number of gathered vectors in the batch.
func (b Batch) Lookups() int {
	n := 0
	for _, s := range b {
		for _, op := range s {
			n += len(op.Indices)
		}
	}
	return n
}

// Generator produces deterministic synthetic traces for a model spec. The
// same (spec, seed) always yields the same stream of batches.
type Generator struct {
	spec  ModelSpec
	rng   *rand.Rand
	zipfs []*Zipf
	scats []*Scatter
	hists []*stats.Histogram // per-table access histograms, always maintained
	// tailMass, when positive, redirects this probability of every index
	// draw to a uniform pick from the cold half of the rank space —
	// flattening the trace toward rows the Zipf head never touches (the
	// cold tier's stress knob).
	tailMass float64
}

// NewGenerator builds a generator for spec, seeded with seed.
func NewGenerator(spec ModelSpec, seed int64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:  spec,
		rng:   rand.New(rand.NewSource(seed)),
		zipfs: make([]*Zipf, len(spec.Tables)),
		scats: make([]*Scatter, len(spec.Tables)),
		hists: make([]*stats.Histogram, len(spec.Tables)),
	}
	for i, t := range spec.Tables {
		z, err := NewZipf(t.Rows, t.Skew)
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", t.Name, err)
		}
		// The scatter permutation decides WHICH rows are popular — a
		// property of the dataset, not of the sampling — so it is seeded
		// from the table identity alone, never from the generator seed or
		// the surrounding model (tables keep their hot rows when sharded
		// across channels). A profiling pass and a measured run over the
		// same tables then agree on the hot rows while drawing
		// independent samples.
		s, err := NewScatter(t.Rows, scatterSeed(t.Name))
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", t.Name, err)
		}
		g.zipfs[i] = z
		g.scats[i] = s
		g.hists[i] = stats.NewHistogram()
	}
	return g, nil
}

// Spec returns the model spec this generator draws from.
func (g *Generator) Spec() ModelSpec { return g.spec }

// scatterSeed derives the dataset-identity seed of one table's popularity
// permutation (FNV-1a over the table name).
func scatterSeed(table string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(table); i++ {
		h ^= uint64(table[i])
		h *= 1099511628211
	}
	return int64(h & (1<<62 - 1))
}

// SetTailMass redirects fraction f of every index draw (0 <= f <= 1) to a
// uniform pick from the cold half of the rank space — ranks the Zipf head
// essentially never reaches — shifting trace mass toward cold-placed rows.
// f = 0 (the default) restores the pure Zipf draw. Deterministic: the
// redirect burns the same RNG stream the Zipf draw would have, so two
// generators with equal seeds and tail mass emit identical traces.
func (g *Generator) SetTailMass(f float64) error {
	if f < 0 || f > 1 {
		return fmt.Errorf("trace: tail mass %v out of [0,1]", f)
	}
	g.tailMass = f
	return nil
}

// Index draws one embedding row index for table ti: a Zipf rank scattered
// pseudorandomly through the index space, or — with probability tailMass —
// a uniform cold-half rank.
func (g *Generator) Index(ti int) int64 {
	var rank int64
	if g.tailMass > 0 && g.rng.Float64() < g.tailMass {
		n := g.spec.Tables[ti].Rows
		rank = n/2 + g.rng.Int63n(n-n/2)
	} else {
		rank = g.zipfs[ti].Rank(g.rng)
	}
	idx := g.scats[ti].Map(rank)
	g.hists[ti].Add(idx)
	return idx
}

// Sample generates the embedding work for one inference sample.
func (g *Generator) Sample() Sample {
	var s Sample
	for ti, t := range g.spec.Tables {
		if t.Prob < 1 && g.rng.Float64() >= t.Prob {
			continue
		}
		op := Op{
			Table:   ti,
			Kind:    t.Kind,
			Indices: make([]int64, t.Pooling),
			Weights: make([]float32, t.Pooling),
		}
		for k := 0; k < t.Pooling; k++ {
			op.Indices[k] = g.Index(ti)
			op.Weights[k] = 0.5 + g.rng.Float32() // weights in [0.5, 1.5)
		}
		s = append(s, op)
	}
	return s
}

// Batch generates a batch of n samples.
func (g *Generator) Batch(n int) Batch {
	b := make(Batch, n)
	for i := range b {
		b[i] = g.Sample()
	}
	return b
}

// ShiftHotSet re-derives every table's popularity permutation with the
// given salt, modelling the real-world drift the adaptive repartitioner
// exists for: item popularity churns (yesterday's viral items cool off,
// new ones heat up) while the *shape* of the distribution — the Zipf skew
// — stays put. Ranks keep their probabilities; which rows hold them
// changes. salt 0 restores the original hot set; the same (table, salt)
// always produces the same permutation, so independent generators shift
// identically. Not safe for concurrent use with Sample/Index (the
// generator is single-goroutine, like everything else seeded here).
func (g *Generator) ShiftHotSet(salt int64) error {
	for i, t := range g.spec.Tables {
		s, err := NewScatter(t.Rows, scatterSeed(t.Name)+salt)
		if err != nil {
			return fmt.Errorf("table %q: %w", t.Name, err)
		}
		g.scats[i] = s
	}
	return nil
}

// Histograms returns the per-table access histograms accumulated over
// everything generated so far. The returned slices alias internal state;
// callers must not modify them.
func (g *Generator) Histograms() []*stats.Histogram { return g.hists }

// Profile generates (and discards) nSamples samples to warm the per-table
// histograms, then returns the per-table cumulative-access curves. This is
// the offline "training-phase" profiling pass of the paper's §4.3.
func (g *Generator) Profile(nSamples int) ([]*stats.CDF, error) {
	for i := 0; i < nSamples; i++ {
		g.Sample()
	}
	cdfs := make([]*stats.CDF, len(g.spec.Tables))
	for i, t := range g.spec.Tables {
		c, err := stats.AccessCDF(g.hists[i], int(t.Rows))
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", t.Name, err)
		}
		cdfs[i] = c
	}
	return cdfs, nil
}
