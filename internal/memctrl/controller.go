// Package memctrl implements the host-side memory controller of the paper's
// Table 2: per-bank request queues drained by an FR-FCFS scheduler (Rixner
// et al., ISCA'00), plus the subarray-aware locality-aware scheduling (LAS)
// variant ReCross adds (§4.1): row-buffer hits first, then requests that
// activate an idle subarray, and only then requests that conflict with an
// open row.
//
// The controller is the single mutator of a dram.Channel: it picks, at every
// step, the highest-priority command that can issue at the earliest possible
// cycle, exactly emulating a per-cycle "issue the highest-priority ready
// command" loop but skipping idle cycles. Each bank's scheduling choice
// (which queue entry goes next, and whether it is a row-hit read or an
// activation) depends only on that bank's own state, so it is cached and
// recomputed only after the bank itself is touched; cross-bank timing
// effects (tRRD, tFAW, tCCD, bus occupancy) are re-evaluated every pick via
// the cheap Earliest* queries.
package memctrl

import (
	"fmt"

	"recross/internal/dram"
	"recross/internal/sim"
)

// Policy selects the scheduling algorithm.
type Policy int

const (
	// FRFCFS is first-ready, first-come-first-served: row hits first,
	// then oldest.
	FRFCFS Policy = iota
	// LAS is ReCross's locality-aware scheduling: row hits first, then
	// activations of idle subarrays (interleaving SALP accesses), then
	// row conflicts; oldest-first within a class.
	LAS
)

// Request asks for one embedding vector: Cols consecutive burst columns
// starting at Loc, delivered to Consumer. Vectors never straddle a DRAM row
// (the allocator aligns them, as production allocators do).
type Request struct {
	Loc      dram.Loc
	Cols     int
	Consumer dram.Consumer
	// Write marks a host-sourced embedding update (online training):
	// the columns are written rather than read.
	Write bool
	// Arrival is when the request (its NMP instruction or host command)
	// becomes visible to the controller.
	Arrival sim.Cycle
	// Op tags the embedding operation the vector belongs to, for stats.
	Op int32
}

// Result reports the outcome of draining a request list.
type Result struct {
	// Finish is the cycle the last data burst is fully delivered.
	Finish sim.Cycle
	// Done holds the per-request completion cycle, indexed as the input.
	Done []sim.Cycle
	// RowHits counts requests served entirely from open row buffers;
	// RowMisses counts requests that needed at least one activation.
	RowHits, RowMisses int64
	// OpLatency holds, per distinct Op tag in order of first appearance,
	// the span from the op's first request arrival to its last data
	// delivery — the per-operation serving latency.
	OpLatency []sim.Cycle
}

// Controller drains request lists through one DRAM channel.
type Controller struct {
	ch     *dram.Channel
	policy Policy
	window int

	// InflightLimit caps how many requests occupy the controller's
	// request queue simultaneously (Table 2: 64 entries). A slot frees
	// when its request's data is delivered; the next request is admitted
	// in arrival order. This is what couples load imbalance to latency:
	// a backlogged hot bank holds slots and starves the rest of the
	// channel — the §3.1 effect.
	InflightLimit int

	// OpWindowLimit caps how many embedding operations may be in flight
	// at once (0 = unlimited). The PEs track in-flight ops with the
	// 1-bit batchTag of the 82-bit instruction (§4.2), so only a couple
	// of ops can be open per PE; this window is what turns *per-op* load
	// imbalance (Fig. 4) into end-to-end slowdown — a hot node serving 5
	// of an op's lookups delays that op's completion and stalls the
	// window. Requests must be supplied in nondecreasing Op order.
	OpWindowLimit int

	// WriteHighWatermark controls write batching: writes are deferred
	// behind reads until this many are pending, then drained in a burst
	// down to WriteLowWatermark — the standard policy that amortizes the
	// tWTR read/write turnaround. Zero selects the defaults (16/2);
	// set WriteHighWatermark to 1 to interleave writes eagerly.
	WriteHighWatermark int
	WriteLowWatermark  int
}

// DefaultWindow is the per-bank lookahead of the request queue.
const DefaultWindow = 16

// DefaultInflight is the controller queue depth of the paper's Table 2.
const DefaultInflight = 64

// New builds a controller over ch. window limits how deep into each bank's
// queue the scheduler searches for row hits (FR part of FR-FCFS).
func New(ch *dram.Channel, policy Policy, window int) (*Controller, error) {
	if ch == nil {
		return nil, fmt.Errorf("memctrl: nil channel")
	}
	if window <= 0 {
		return nil, fmt.Errorf("memctrl: window must be positive, got %d", window)
	}
	return &Controller{ch: ch, policy: policy, window: window, InflightLimit: DefaultInflight}, nil
}

// Channel returns the controller's channel (for stats inspection).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// pending is the in-flight form of a Request.
type pending struct {
	req      *Request
	idx      int // index in the input slice
	nextCol  int // next column to read (0-based offset from Loc.Col)
	acted    bool
	admitted sim.Cycle // when the request got its controller queue slot
}

// bankQueue holds one bank's pending requests plus the cached scheduling
// choice. pos < 0 means the choice must be recomputed. For SALP banks a
// secondary lookahead-activation candidate (pos2) lets the controller
// activate an idle subarray for a younger request while an older one is
// still streaming — the overlap of the paper's Fig. 6(c).
type bankQueue struct {
	q     []*pending
	pos   int
	isRD  bool
	class int // 0 row-hit RD, 1 idle activation, 2 conflict activation
	pos2  int // lookahead ACT candidate, -1 if none
}

// Drain issues every request and returns completion statistics. The input
// slice is not modified. Requests must be valid for the channel's geometry.
func (c *Controller) Drain(reqs []Request) (Result, error) {
	geo := c.ch.Geo
	res := Result{Done: make([]sim.Cycle, len(reqs))}
	if len(reqs) == 0 {
		return res, nil
	}

	opOrder := []int32{}
	opStart := map[int32]sim.Cycle{}
	opEnd := map[int32]sim.Cycle{}
	for i := range reqs {
		r := &reqs[i]
		if err := geo.CheckLoc(r.Loc); err != nil {
			return res, fmt.Errorf("memctrl: request %d: %w", i, err)
		}
		if r.Cols <= 0 || r.Loc.Col+r.Cols > geo.ColumnsPerRow() {
			return res, fmt.Errorf("memctrl: request %d: %d columns at col %d exceed the row", i, r.Cols, r.Loc.Col)
		}
		if at, ok := opStart[r.Op]; !ok || r.Arrival < at {
			if !ok {
				opOrder = append(opOrder, r.Op)
			}
			opStart[r.Op] = r.Arrival
		}
	}
	queues := make([]bankQueue, geo.TotalBanks())
	limit := c.InflightLimit
	if limit <= 0 {
		limit = DefaultInflight
	}

	// Op-window bookkeeping: opLeft[k] counts incomplete requests of op k;
	// watermark is the lowest incomplete op.
	var opLeft map[int32]int
	var watermark int32
	if c.OpWindowLimit > 0 {
		opLeft = make(map[int32]int)
		for i := range reqs {
			if i > 0 && reqs[i].Op < reqs[i-1].Op {
				return res, fmt.Errorf("memctrl: requests not in op order with an op window")
			}
			opLeft[reqs[i].Op]++
		}
		if len(reqs) > 0 {
			watermark = reqs[0].Op
		}
	}
	opEligible := func(i int) bool {
		return c.OpWindowLimit <= 0 ||
			int(reqs[i].Op-watermark) < c.OpWindowLimit
	}

	// admit places request i into its bank queue, no earlier than `at`
	// (the time the queue slot freed).
	admit := func(i int, at sim.Cycle) {
		r := &reqs[i]
		fb := geo.FlatBank(r.Loc)
		p := &pending{req: r, idx: i, admitted: at}
		queues[fb].q = append(queues[fb].q, p)
		queues[fb].pos = -1
	}
	inflight := 0
	pendingWrites := 0
	next := 0 // next unadmitted request
	for ; next < len(reqs) && next < limit && opEligible(next); next++ {
		admit(next, 0)
		inflight++
		if reqs[next].Write {
			pendingWrites++
		}
	}

	// Write-drain watermarks.
	hi := c.WriteHighWatermark
	if hi <= 0 {
		hi = 16
	}
	lo := c.WriteLowWatermark
	if lo <= 0 {
		lo = 2
	}
	draining := false

	remaining := len(reqs)
	now := sim.Cycle(0)
	for remaining > 0 {
		if pendingWrites >= hi {
			draining = true
		} else if pendingWrites <= lo {
			draining = false
		}
		fb, pos, isRD, earliest, ok := c.pick(queues, now, draining)
		if !ok {
			return res, fmt.Errorf("memctrl: no candidate with %d requests remaining", remaining)
		}
		bq := &queues[fb]
		p := bq.q[pos]
		loc := p.req.Loc
		loc.Col += p.nextCol
		if isRD {
			var done sim.Cycle
			if p.req.Write {
				_, done = c.ch.IssueWR(loc, earliest)
			} else {
				_, done = c.ch.IssueRD(loc, p.req.Consumer, earliest)
			}
			p.nextCol++
			if p.nextCol == p.req.Cols {
				res.Done[p.idx] = done
				if done > res.Finish {
					res.Finish = done
				}
				if done > opEnd[p.req.Op] {
					opEnd[p.req.Op] = done
				}
				if p.acted {
					res.RowMisses++
				} else {
					res.RowHits++
				}
				bq.q = append(bq.q[:pos], bq.q[pos+1:]...)
				remaining--
				inflight--
				if p.req.Write {
					pendingWrites--
				}
				if opLeft != nil {
					opLeft[p.req.Op]--
					for opLeft[watermark] == 0 && int(watermark) < int(reqs[len(reqs)-1].Op)+1 {
						delete(opLeft, watermark)
						watermark++
					}
				}
				// Queue slots free when data is delivered; admit the
				// next requests (in arrival order) that fit both the
				// slot budget and the op window.
				for inflight < limit && next < len(reqs) && opEligible(next) {
					admit(next, done)
					if reqs[next].Write {
						pendingWrites++
					}
					next++
					inflight++
				}
			}
		} else {
			c.ch.IssueACT(loc, earliest)
			p.acted = true
		}
		bq.pos = -1 // this bank's state changed; rechoose next time
		if earliest > now {
			now = earliest
		}
	}
	for _, op := range opOrder {
		res.OpLatency = append(res.OpLatency, opEnd[op]-opStart[op])
	}
	return res, nil
}

// pick returns the command that can issue first across all banks (primary
// cached choices plus SALP lookahead activations), with priority classes
// breaking ties at equal cycles. Unless the write queue is draining, write
// commands are considered only when no read command is available.
func (c *Controller) pick(queues []bankQueue, now sim.Cycle, draining bool) (bank, pos int, isRD bool, earliest sim.Cycle, ok bool) {
	bestBank := -1
	bestPos := 0
	bestRD := false
	var bestTime sim.Cycle
	bestClass := 0
	var bestArrival sim.Cycle
	deferredWrites := false

	eval := func(fb, pos int, isRD bool, class int) {
		if !draining && queues[fb].q[pos].req.Write {
			deferredWrites = true
			return
		}
		p := queues[fb].q[pos]
		loc := p.req.Loc
		loc.Col += p.nextCol
		at := now
		if p.req.Arrival > at {
			at = p.req.Arrival
		}
		if p.admitted > at {
			at = p.admitted
		}
		var t sim.Cycle
		switch {
		case isRD && p.req.Write:
			t = c.ch.EarliestWR(loc, at)
		case isRD:
			t = c.ch.EarliestRD(loc, p.req.Consumer, at)
		default:
			t = c.ch.EarliestACT(loc, at)
		}
		if bestBank < 0 || t < bestTime ||
			(t == bestTime && (class < bestClass ||
				(class == bestClass && p.req.Arrival < bestArrival))) {
			bestBank, bestPos, bestRD = fb, pos, isRD
			bestTime, bestClass, bestArrival = t, class, p.req.Arrival
		}
	}

	for fb := range queues {
		bq := &queues[fb]
		if len(bq.q) == 0 {
			continue
		}
		if bq.pos < 0 {
			c.choose(bq)
		}
		eval(fb, bq.pos, bq.isRD, bq.class)
		if bq.pos2 >= 0 && bq.pos2 < len(bq.q) {
			eval(fb, bq.pos2, false, 1)
		}
	}
	if bestBank < 0 && deferredWrites {
		// No read can issue: let the writes through after all.
		return c.pick(queues, now, true)
	}
	if bestBank < 0 {
		return 0, 0, false, 0, false
	}
	return bestBank, bestPos, bestRD, bestTime, true
}

// choose recomputes the bank's scheduling choice: the oldest row-hit within
// the window if any (first-ready), otherwise the queue head's activation.
// For SALP banks it additionally records a lookahead activation: the oldest
// windowed request targeting an idle subarray, which can be activated
// underneath an ongoing row-hit stream (subarray activation overlap).
func (c *Controller) choose(bq *bankQueue) {
	bq.pos2 = -1
	limit := len(bq.q)
	if limit > c.window {
		limit = c.window
	}
	hit := -1
	fb := -1
	for pos := 0; pos < limit; pos++ {
		p := bq.q[pos]
		loc := p.req.Loc
		loc.Col += p.nextCol
		if fb < 0 {
			fb = c.ch.Geo.FlatBank(loc)
		}
		if c.ch.RowOpen(loc) {
			if hit < 0 {
				hit = pos
			}
			continue
		}
		if bq.pos2 < 0 && pos > 0 && !p.acted && c.ch.IsSALP(fb) {
			if _, open := c.ch.OpenRowAt(loc); !open {
				bq.pos2 = pos // idle-subarray lookahead activation
			}
		}
	}
	if hit >= 0 {
		bq.pos, bq.isRD, bq.class = hit, true, 0
		return
	}
	head := bq.q[0]
	loc := head.req.Loc
	loc.Col += head.nextCol
	class := 1
	if _, open := c.ch.OpenRowAt(loc); open {
		class = 2 // needs a (local) precharge first
	}
	if c.policy == FRFCFS {
		// Plain FR-FCFS does not distinguish idle activations from
		// conflicts: all non-hits are served oldest-first. The split is
		// exactly what LAS adds (paper §4.1).
		class = 1
	}
	bq.pos, bq.isRD, bq.class = 0, false, class
	if bq.pos2 == 0 {
		bq.pos2 = -1
	}
}
