package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// lens covers the unroll boundary (8), both sides of it, a pure tail, and
// larger mixed bodies.
var lens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 64, 127, 128}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestAddMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range lens {
		dst := randVec(rng, n)
		src := randVec(rng, n)
		want := make([]float32, n)
		copy(want, dst)
		for i := range want {
			want[i] += src[i]
		}
		Add(dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("Add len %d lane %d: got %v want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestAxpyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range lens {
		for _, w := range []float32{0, 1, -2.5, 0.3333} {
			dst := randVec(rng, n)
			src := randVec(rng, n)
			want := make([]float32, n)
			copy(want, dst)
			for i := range want {
				want[i] += w * src[i]
			}
			Axpy(dst, src, w)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("Axpy len %d w %v lane %d: got %v want %v", n, w, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestMaxMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range lens {
		dst := randVec(rng, n)
		src := randVec(rng, n)
		if n > 2 {
			// Exercise the exact NaN/zero semantics of the scalar compare.
			dst[0], src[0] = float32(math.NaN()), 1
			dst[1], src[1] = 1, float32(math.NaN())
			dst[2], src[2] = float32(math.Copysign(0, -1)), 0
		}
		want := make([]float32, n)
		copy(want, dst)
		for i := range want {
			if src[i] > want[i] {
				want[i] = src[i]
			}
		}
		Max(dst, src)
		for i := range want {
			if dst[i] != want[i] && !(math.IsNaN(float64(dst[i])) && math.IsNaN(float64(want[i]))) {
				t.Fatalf("Max len %d lane %d: got %v want %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range lens {
		v := randVec(rng, n)
		Zero(v)
		for i := range v {
			if v[i] != 0 {
				t.Fatalf("Zero len %d lane %d: got %v", n, i, v[i])
			}
		}
	}
}

func BenchmarkAxpy64(b *testing.B) {
	dst := make([]float32, 64)
	src := make([]float32, 64)
	for i := range src {
		src[i] = float32(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Axpy(dst, src, 0.5)
	}
}
