package stats

import (
	"math"
	"testing"
)

func TestMaxAbsError(t *testing.T) {
	if e := MaxAbsError([]float32{1, 2, 3}, []float32{1, 2.5, 3}); e != 0.5 {
		t.Errorf("MaxAbsError = %v, want 0.5", e)
	}
	if e := MaxAbsError(nil, nil); e != 0 {
		t.Errorf("empty MaxAbsError = %v", e)
	}
	if e := MaxAbsError([]float32{float32(math.NaN())}, []float32{1}); !math.IsInf(e, 1) {
		t.Errorf("NaN MaxAbsError = %v, want +Inf", e)
	}
	nan := float32(math.NaN())
	if e := MaxAbsError([]float32{nan}, []float32{nan}); !math.IsInf(e, 1) {
		t.Errorf("NaN==NaN MaxAbsError = %v, want +Inf", e)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MaxAbsError([]float32{1}, []float32{1, 2})
}

func TestMaxRelError(t *testing.T) {
	if e := MaxRelError([]float32{1.1, 4}, []float32{1, 4}); math.Abs(e-0.1) > 1e-6 {
		t.Errorf("MaxRelError = %v, want ~0.1", e)
	}
	if e := MaxRelError([]float32{0, 0}, []float32{0, 0}); e != 0 {
		t.Errorf("zero MaxRelError = %v", e)
	}
	if e := MaxRelError([]float32{1}, []float32{0}); !math.IsInf(e, 1) {
		t.Errorf("got!=0 want==0 MaxRelError = %v, want +Inf", e)
	}
}

func TestULPDistance(t *testing.T) {
	cases := []struct {
		a, b float32
		want int64
	}{
		{1, 1, 0},
		{0, float32(math.Copysign(0, -1)), 0},
		{1, math.Nextafter32(1, 2), 1},
		{1, math.Nextafter32(1, 0), 1},
		{-1, math.Nextafter32(-1, -2), 1},
		{0, math.SmallestNonzeroFloat32, 1},
		{0, -math.SmallestNonzeroFloat32, 1},
		{math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32, 2},
		{1, 2, 1 << 23}, // one binade apart
	}
	for _, c := range cases {
		if got := ULPDistance(c.a, c.b); got != c.want {
			t.Errorf("ULPDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ULPDistance(c.b, c.a); got != c.want {
			t.Errorf("ULPDistance(%v, %v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
	if got := ULPDistance(float32(math.NaN()), 1); got != math.MaxInt64 {
		t.Errorf("ULPDistance(NaN, 1) = %d", got)
	}
}

func TestMaxULPDistance(t *testing.T) {
	got := []float32{1, math.Nextafter32(2, 3)}
	want := []float32{1, 2}
	if d := MaxULPDistance(got, want); d != 1 {
		t.Errorf("MaxULPDistance = %d, want 1", d)
	}
	if d := MaxULPDistance(want, want); d != 0 {
		t.Errorf("identical MaxULPDistance = %d, want 0", d)
	}
}
