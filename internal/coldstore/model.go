package coldstore

import "recross/internal/sim"

// Model is the cold tier's latency/bandwidth timing model, in DRAM cycles
// (the simulator's single clock). Defaults approximate a modern NVMe flash
// device against a ~1.5 GHz DRAM command clock: a ~25 us page read is tens
// of thousands of DRAM cycles, so the LP prices the cold region two to
// three orders of magnitude below the DRAM regions and sends only
// essentially-unaccessed mass there.
type Model struct {
	// SeekCycles is the per-page-read command overhead (channel
	// arbitration, die addressing).
	SeekCycles float64
	// PageReadCycles is the cell-to-buffer sensing time per page.
	PageReadCycles float64
	// Channels is the number of independent flash channels reading pages
	// in parallel.
	Channels int
	// LinkBytesPerCycle is the host link bandwidth (bytes per DRAM cycle).
	LinkBytesPerCycle float64
	// ReduceCyclesPerRow is the in-storage accumulator's per-row cost when
	// in-storage reduction is on.
	ReduceCyclesPerRow float64
	// ISRTransferGain is the modeled link-transfer compression of
	// in-storage reduction: instead of every gathered row, one partial
	// sum per op crosses the link, so the effective link bandwidth for LP
	// pricing scales by the expected gather-to-transfer ratio.
	ISRTransferGain float64
	// CachePages is the per-replica device page-buffer capacity the
	// timing Sim models (a deterministic CLOCK set, independent of the
	// shared functional Store's host cache).
	CachePages int
}

// DefaultModel returns the reference cold-device model.
func DefaultModel() Model {
	return Model{
		SeekCycles:         4_000,
		PageReadCycles:     36_000,
		Channels:           8,
		LinkBytesPerCycle:  4,
		ReduceCyclesPerRow: 64,
		ISRTransferGain:    8,
		CachePages:         64,
	}
}

func (m Model) withDefaults() Model {
	d := DefaultModel()
	if m.SeekCycles == 0 {
		m.SeekCycles = d.SeekCycles
	}
	if m.PageReadCycles == 0 {
		m.PageReadCycles = d.PageReadCycles
	}
	if m.Channels == 0 {
		m.Channels = d.Channels
	}
	if m.LinkBytesPerCycle == 0 {
		m.LinkBytesPerCycle = d.LinkBytesPerCycle
	}
	if m.ReduceCyclesPerRow == 0 {
		m.ReduceCyclesPerRow = d.ReduceCyclesPerRow
	}
	if m.ISRTransferGain == 0 {
		m.ISRTransferGain = d.ISRTransferGain
	}
	if m.CachePages == 0 {
		m.CachePages = d.CachePages
	}
	return m
}

// EffectiveBW estimates the cold region's sustainable gather bandwidth in
// bytes per DRAM cycle for LP pricing: the worst-case (one wanted vector
// per page read) device rate across the parallel channels, capped by the
// host link. In-storage reduction adds the device accumulate cost but
// multiplies the effective link rate by the transfer gain.
func (m Model) EffectiveBW(vecBytes int, inStorageReduce bool) float64 {
	m = m.withDefaults()
	perRow := m.SeekCycles + m.PageReadCycles
	if inStorageReduce {
		perRow += m.ReduceCyclesPerRow
	}
	dev := float64(m.Channels) * float64(vecBytes) / perRow
	link := m.LinkBytesPerCycle
	if inStorageReduce {
		link *= m.ISRTransferGain
	}
	if dev < link {
		return dev
	}
	return link
}

// TierSpec configures a ReCross instance's cold tier (core.Config.ColdTier).
type TierSpec struct {
	// CapBytes is the cold region's capacity offered to the partitioner.
	CapBytes int64
	// ResidentBudgetBytes, when positive, clamps the summed DRAM region
	// capacity to this budget (regions shrink proportionally), forcing
	// the tail of an oversized table set onto the cold tier. Zero leaves
	// the DRAM regions at their geometric capacity.
	ResidentBudgetBytes int64
	// PageBytes is the device page size (default 16 KiB).
	PageBytes int
	// InStorageReduce enables RecSSD-style device-side pooling: the link
	// carries one partial sum per op instead of every gathered row.
	InStorageReduce bool
	// Model overrides the timing model (zero fields take defaults).
	Model Model
}

// WithDefaults resolves the spec's zero values.
func (t TierSpec) WithDefaults() TierSpec {
	if t.PageBytes == 0 {
		t.PageBytes = 16 << 10
	}
	t.Model = t.Model.withDefaults()
	return t
}

// Sim is the per-replica cold-tier timing model: a deterministic CLOCK
// page-buffer over placement slots plus the seek/read/link accounting.
// Like every timing simulator in the tree it is single-goroutine — one Sim
// per ReCross replica, owned by that replica's worker.
type Sim struct {
	m        Model
	vecBytes int
	rpp      int // rows (vector slots) per page
	isr      bool

	// CLOCK page buffer keyed by page id.
	frames []int64
	ref    []bool
	index  map[int64]int
	hand   int

	// batch scratch: distinct miss pages counted via the buffer probe.
	pageReads, pageHits int64
}

// NewSim builds a replica's cold timing model.
func NewSim(spec TierSpec, vecBytes int) *Sim {
	spec = spec.WithDefaults()
	rpp := spec.PageBytes / vecBytes
	if rpp < 1 {
		rpp = 1
	}
	n := spec.Model.CachePages
	s := &Sim{
		m:        spec.Model,
		vecBytes: vecBytes,
		rpp:      rpp,
		isr:      spec.InStorageReduce,
		frames:   make([]int64, n),
		ref:      make([]bool, n),
		index:    make(map[int64]int, n),
	}
	for i := range s.frames {
		s.frames[i] = -1
	}
	return s
}

// touch probes the page buffer, installing on miss; reports a hit.
func (s *Sim) touch(page int64) bool {
	if f, ok := s.index[page]; ok {
		s.ref[f] = true
		return true
	}
	var f int
	for {
		f = s.hand
		s.hand = (s.hand + 1) % len(s.frames)
		if s.frames[f] == -1 {
			break
		}
		if !s.ref[f] {
			delete(s.index, s.frames[f])
			break
		}
		s.ref[f] = false
	}
	s.frames[f] = page
	s.ref[f] = true
	s.index[page] = f
	return false
}

// Batch prices one batch's cold gathers: slots are the placement vector
// slots of every cold lookup, ops the number of embedding operations that
// touched the cold tier. The returned latency overlaps the DRAM phase
// (cold reads start with the batch); device time across the channels and
// link transfer overlap each other, so the bound is their max.
func (s *Sim) Batch(slots []int64, ops int) (cycles sim.Cycle, pageReads, pageHits int64) {
	if len(slots) == 0 {
		return 0, 0, 0
	}
	var misses int64
	for _, slot := range slots {
		if s.touch(slot / int64(s.rpp)) {
			pageHits++
		} else {
			misses++
		}
	}
	pageReads = misses
	s.pageReads += pageReads
	s.pageHits += pageHits

	device := float64(misses) * (s.m.SeekCycles + s.m.PageReadCycles)
	transferRows := len(slots)
	if s.isr {
		device += float64(len(slots)) * s.m.ReduceCyclesPerRow
		transferRows = ops
	}
	device /= float64(s.m.Channels)
	link := float64(transferRows*s.vecBytes) / s.m.LinkBytesPerCycle
	t := device
	if link > t {
		t = link
	}
	return sim.Cycle(t), pageReads, pageHits
}

// Totals returns the Sim's cumulative page-read/hit counters.
func (s *Sim) Totals() (pageReads, pageHits int64) {
	return s.pageReads, s.pageHits
}
