package experiments

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/core"
	"recross/internal/dram"
	"recross/internal/trace"
)

// The Ext* experiments go beyond the paper's evaluation: sensitivity and
// extension studies over the same infrastructure (refresh overhead,
// multi-channel scaling, subarray-count ablation, online-training
// write-back, and per-op serving latency).

// ExtRefresh measures the cost of DDR5 auto-refresh (tREFI/tRFC), which
// the paper's evaluation does not model, on the CPU baseline and ReCross.
func ExtRefresh(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	t := &Table{
		Title: "Ext: DDR5 auto-refresh overhead (tREFI=3.9us, tRFC=410ns)",
		Note:  "refresh steals the same ~10% from every architecture; orderings unchanged",
		Cols:  []string{"architecture", "no-refresh", "refresh", "overhead"},
	}
	run := func(name string, tm dram.Timing) (float64, error) {
		switch name {
		case "cpu":
			s, err := baseline.NewCPU(baseline.Config{Spec: spec, Ranks: cfg.Ranks, Tm: tm})
			if err != nil {
				return 0, err
			}
			rs, err := s.Run(b)
			if err != nil {
				return 0, err
			}
			return float64(rs.Cycles), nil
		default:
			rcfg := core.DefaultConfig(spec)
			rcfg.Ranks = cfg.Ranks
			rcfg.Batch = cfg.Batch
			rcfg.ProfileSamples = cfg.ProfileSamples
			rcfg.Tm = tm
			s, err := core.New(rcfg)
			if err != nil {
				return 0, err
			}
			rs, err := s.Run(b)
			if err != nil {
				return 0, err
			}
			return float64(rs.Cycles), nil
		}
	}
	for _, name := range []string{"cpu", "recross"} {
		plain, err := run(name, dram.DDR5Timing())
		if err != nil {
			return nil, fmt.Errorf("ext-refresh %s: %w", name, err)
		}
		refreshed, err := run(name, dram.DDR5Timing().WithRefresh())
		if err != nil {
			return nil, fmt.Errorf("ext-refresh %s: %w", name, err)
		}
		t.AddRow(name, fmt.Sprintf("%.0f", plain), fmt.Sprintf("%.0f", refreshed),
			fmt.Sprintf("%.1f%%", 100*(refreshed/plain-1)))
	}
	return t, nil
}

// ExtChannels measures multi-channel scaling: tables sharded round-robin
// over 1, 2 and 4 independent channels for the CPU baseline and ReCross.
func ExtChannels(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	t := &Table{
		Title: "Ext: multi-channel scaling (tables sharded round-robin)",
		Note:  "cycles per batch; each channel has its own controller and PEs",
		Cols:  []string{"architecture", "1ch", "2ch", "4ch", "4ch-speedup"},
	}
	build := func(name string) func(sub trace.ModelSpec) (arch.System, error) {
		return func(sub trace.ModelSpec) (arch.System, error) {
			switch name {
			case "cpu":
				return baseline.NewCPU(baseline.Config{Spec: sub, Ranks: cfg.Ranks})
			default:
				rcfg := core.DefaultConfig(sub)
				rcfg.Ranks = cfg.Ranks
				rcfg.Batch = cfg.Batch
				rcfg.ProfileSamples = cfg.ProfileSamples
				return core.New(rcfg)
			}
		}
	}
	for _, name := range []string{"cpu", "recross"} {
		var cells []string
		var first, last float64
		for _, ch := range []int{1, 2, 4} {
			sys, err := arch.NewMultiChannel(spec, ch, build(name))
			if err != nil {
				return nil, fmt.Errorf("ext-channels %s/%d: %w", name, ch, err)
			}
			rs, err := sys.Run(b)
			if err != nil {
				return nil, fmt.Errorf("ext-channels %s/%d: %w", name, ch, err)
			}
			if ch == 1 {
				first = float64(rs.Cycles)
			}
			last = float64(rs.Cycles)
			cells = append(cells, fmt.Sprintf("%.0f", float64(rs.Cycles)))
		}
		t.AddRow(append([]string{name}, append(cells, f2(first/last))...)...)
	}
	return t, nil
}

// ExtSubarrays ablates the subarray count of the B-region banks: SALP's
// benefit depends on how many rows a bank can hold open concurrently.
func ExtSubarrays(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	t := &Table{
		Title: "Ext: ReCross sensitivity to subarrays per bank",
		Note:  "paper uses 256 (Table 2); fewer subarrays means fewer concurrently open rows",
		Cols:  []string{"subarrays", "cycles", "row-hit-rate"},
	}
	for _, subs := range []int{16, 64, 256} {
		rcfg := core.DefaultConfig(spec)
		rcfg.Ranks = cfg.Ranks
		rcfg.Batch = cfg.Batch
		rcfg.ProfileSamples = cfg.ProfileSamples
		rcfg.Subarrays = subs
		s, err := core.New(rcfg)
		if err != nil {
			return nil, fmt.Errorf("ext-subarrays %d: %w", subs, err)
		}
		rs, err := s.Run(b)
		if err != nil {
			return nil, fmt.Errorf("ext-subarrays %d: %w", subs, err)
		}
		hit := float64(rs.RowHits) / float64(rs.RowHits+rs.RowMisses)
		t.AddRow(fmt.Sprintf("%d", subs), fmt.Sprintf("%d", rs.Cycles), f2(hit))
	}
	return t, nil
}

// ExtTraining measures the online-training step of §4.5: embedding gathers
// plus host write-back of every touched row, versus inference only.
func ExtTraining(cfg Config) (*Table, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	rcfg := core.DefaultConfig(spec)
	rcfg.Ranks = cfg.Ranks
	rcfg.Batch = cfg.Batch
	rcfg.ProfileSamples = cfg.ProfileSamples
	s, err := core.New(rcfg)
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	inf, err := s.Run(b)
	if err != nil {
		return nil, err
	}
	tr, err := s.RunTraining(b)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ext: online-training step (gathers + gradient write-back) on ReCross",
		Note:  "updates are host writes to the mapped rows (§4.5); one write per distinct touched row",
		Cols:  []string{"phase", "cycles", "DRAM-writes", "overhead"},
	}
	t.AddRow("inference", fmt.Sprintf("%d", inf.Cycles), "0", "-")
	t.AddRow("training", fmt.Sprintf("%d", tr.Cycles),
		fmt.Sprintf("%d", tr.DRAM.WRs),
		fmt.Sprintf("%.1f%%", 100*(float64(tr.Cycles)/float64(inf.Cycles)-1)))
	return t, nil
}

// ExtLatency reports per-operation serving latency percentiles (P50/P99)
// for every architecture — the tail-latency view recommendation serving
// cares about.
func ExtLatency(cfg Config) (*Table, error) {
	set, err := NewArchSet(cfg)
	if err != nil {
		return nil, err
	}
	stats, err := set.RunAll()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Ext: per-op serving latency (DRAM cycles, 2.4 per ns)",
		Note:  "first instruction arrival to last gather delivered, per embedding op",
		Cols:  []string{"architecture", "P50", "P99", "P99-us"},
	}
	for _, name := range ArchNames {
		rs := stats[name]
		t.AddRow(name, fmt.Sprintf("%d", rs.OpP50), fmt.Sprintf("%d", rs.OpP99),
			fmt.Sprintf("%.2f", float64(rs.OpP99)/2.4/1e3))
	}
	return t, nil
}

// ExtDDR4 compares ReCross on DDR4-3200 against DDR5-4800 (§2.2: DDR4 has
// half the bank groups, a slower clock, and half the per-channel capacity),
// reporting wall-clock time so the different command clocks compare fairly.
func ExtDDR4(cfg Config) (*Table, error) {
	// DDR4's 2-rank channel holds 16 GB; use vector length 32 so the
	// Kaggle model (3.8 GB) fits both generations comfortably.
	vecLen := cfg.VecLen
	if vecLen > 32 {
		vecLen = 32
	}
	spec := trace.CriteoKaggle(vecLen, cfg.Pooling)
	g, err := trace.NewGenerator(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	b := g.Batch(cfg.Batch)
	t := &Table{
		Title: "Ext: ReCross on DDR4-3200 vs DDR5-4800",
		Note:  fmt.Sprintf("veclen=%d; DDR4 has 4 bank groups/rank and a 1.6 GHz command clock", vecLen),
		Cols:  []string{"generation", "cycles", "us", "row-hit-rate"},
	}
	type gen struct {
		name        string
		geo         dram.Geometry
		tm          dram.Timing
		subChannels int
	}
	// A 64-bit DDR5 channel is two independent 32-bit sub-channels
	// (Fig. 2); the simulator models one sub-channel, so the fair
	// per-channel comparison runs DDR5 as two of them.
	for _, gn := range []gen{
		{"ddr4-3200 (1x64-bit)", dram.DDR4(cfg.Ranks), dram.DDR4Timing(), 1},
		{"ddr5-4800 (2x32-bit)", dram.DDR5(cfg.Ranks), dram.DDR5Timing(), 2},
	} {
		gn := gn
		build := func(sub trace.ModelSpec) (arch.System, error) {
			rcfg := core.DefaultConfig(sub)
			rcfg.Ranks = cfg.Ranks
			rcfg.Batch = cfg.Batch
			rcfg.ProfileSamples = cfg.ProfileSamples
			rcfg.Geo = &gn.geo
			rcfg.Tm = gn.tm
			return core.New(rcfg)
		}
		sys, err := arch.NewMultiChannel(spec, gn.subChannels, build)
		if err != nil {
			return nil, fmt.Errorf("ext-ddr4 %s: %w", gn.name, err)
		}
		rs, err := sys.Run(b)
		if err != nil {
			return nil, fmt.Errorf("ext-ddr4 %s: %w", gn.name, err)
		}
		us := float64(rs.Cycles) / gn.tm.ClockGHz() / 1e3
		hit := float64(rs.RowHits) / float64(rs.RowHits+rs.RowMisses)
		t.AddRow(gn.name, fmt.Sprintf("%d", rs.Cycles), fmt.Sprintf("%.2f", us), f2(hit))
	}
	return t, nil
}
