// End-to-end DLRM inference on ReCross: the bottom/top MLPs run on the
// host, the embedding layer's gather-and-reduce runs through ReCross's
// cross-level PE hierarchy (functionally) and through the timing simulator
// (for latency), and the NMP-reduced CTRs are validated against a pure-host
// reference computation.
//
//	go run ./examples/dlrm_inference
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"recross"
	"recross/internal/dlrm"
)

func main() {
	// A compact recommendation model: 8 sparse features with skewed
	// access, 16-dimensional embeddings, 13 dense features (as Criteo).
	spec := recross.ModelSpec{Name: "demo-dlrm"}
	for i := 0; i < 8; i++ {
		spec.Tables = append(spec.Tables, recross.TableSpec{
			Name: fmt.Sprintf("S%d", i), Rows: 100000, VecLen: 16,
			Pooling: 8, Prob: 1, Skew: 1.0 + 0.05*float64(i),
		})
	}
	model, err := dlrm.New(spec, 13, 42)
	if err != nil {
		log.Fatal(err)
	}

	rc, err := recross.NewReCross(recross.DefaultReCrossConfig(spec))
	if err != nil {
		log.Fatal(err)
	}
	gen, err := recross.NewGenerator(spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	const batchSize = 16
	batch := gen.Batch(batchSize)

	// Embedding reductions through the cross-level PE hierarchy.
	pooled, err := rc.ReduceBatch(model.Embedding, batch)
	if err != nil {
		log.Fatal(err)
	}
	// Timing of the same batch on the simulated memory system.
	stats, err := rc.Run(batch)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	fmt.Println("sample   CTR(NMP)   CTR(host)  |diff|")
	maxDiff := 0.0
	for i, s := range batch {
		dense := make([]float32, 13)
		for j := range dense {
			dense[j] = rng.Float32()
		}
		nmp, err := model.PredictPooled(dense, pooled[i], s)
		if err != nil {
			log.Fatal(err)
		}
		host, err := model.Predict(dense, s)
		if err != nil {
			log.Fatal(err)
		}
		d := math.Abs(nmp - host)
		if d > maxDiff {
			maxDiff = d
		}
		if i < 5 {
			fmt.Printf("%4d     %.6f   %.6f   %.2e\n", i, nmp, host, d)
		}
	}
	fmt.Printf("...\nmax |CTR difference| over %d samples: %.3e (FP32 reassociation only)\n",
		batchSize, maxDiff)
	if maxDiff > 1e-4 {
		log.Fatal("NMP reduction diverged from the host reference")
	}

	ns := float64(stats.Cycles) / 2.4 // DDR5-4800: 2.4 cycles per ns
	fmt.Printf("\nembedding latency on ReCross: %d DRAM cycles (%.2f us) for %d lookups\n",
		stats.Cycles, ns/1e3, stats.Lookups)
	fmt.Printf("row-buffer hits: %d / %d, energy %.4f mJ\n",
		stats.RowHits, stats.RowHits+stats.RowMisses, stats.Energy.Total()*1e3)
}
