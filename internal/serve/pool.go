package serve

import (
	"sync/atomic"
	"time"

	"recross/internal/arch"
	"recross/internal/trace"
)

// replicaWorkDepth is how many formed batches may queue at one replica
// beyond the one it is running; small so the least-outstanding dispatcher
// keeps the routing decision late.
const replicaWorkDepth = 2

// replica is one pool shard: a timing model owned exclusively by one
// worker goroutine (arch.System is single-goroutine by contract).
type replica struct {
	id          int
	sys         arch.System
	work        chan []*request
	outstanding atomic.Int64 // queued + running samples
	batches     atomic.Int64
	samples     atomic.Int64
}

func newReplica(id int, sys arch.System) *replica {
	return &replica{id: id, sys: sys, work: make(chan []*request, replicaWorkDepth)}
}

// run executes formed batches until the work channel closes.
func (rep *replica) run(s *Server) {
	for batch := range rep.work {
		rep.serve(s, batch)
	}
}

// serve runs one coalesced batch through the replica's timing model and
// demultiplexes the functional results back to each request's future.
func (rep *replica) serve(s *Server, batch []*request) {
	defer rep.outstanding.Add(-int64(len(batch)))

	b := make(trace.Batch, len(batch))
	for i, r := range batch {
		b[i] = r.sample
	}
	st, err := rep.sys.Run(b)
	if err != nil {
		for _, r := range batch {
			s.metrics.Failed.Add(1)
			r.complete(outcome{err: err})
		}
		return
	}
	rep.batches.Add(1)
	rep.samples.Add(int64(len(batch)))
	s.metrics.Batches.Add(1)
	s.metrics.BatchSamples.Add(int64(len(batch)))
	s.metrics.ServiceCycles.Record(int64(st.Cycles))

	for _, r := range batch {
		vecs, err := s.opts.Layer.ReduceSample(r.sample)
		if err != nil {
			s.metrics.Failed.Add(1)
			r.complete(outcome{err: err})
			continue
		}
		now := time.Now()
		res := &Result{
			Vectors:       vecs,
			BatchSize:     len(batch),
			ServiceCycles: st.Cycles,
			Replica:       rep.id,
			QueueWait:     r.deq.Sub(r.enq),
			Total:         now.Sub(r.enq),
		}
		s.metrics.E2E.Record(res.Total.Nanoseconds())
		s.metrics.Completed.Add(1)
		r.complete(outcome{res: res})
	}
}

// ReplicaLoad reports per-replica served batches and samples, for
// inspecting the least-outstanding balance.
func (s *Server) ReplicaLoad() (batches, samples []int64) {
	batches = make([]int64, len(s.replicas))
	samples = make([]int64, len(s.replicas))
	for i, rep := range s.replicas {
		batches[i] = rep.batches.Load()
		samples[i] = rep.samples.Load()
	}
	return batches, samples
}
