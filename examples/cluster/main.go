// The cluster example demonstrates multi-node sharded serving end to
// end: a 4-node goroutine fleet behind the scatter-gather router, with
// cost-mode placement and hot-table replication.
//
//  1. Healthy serving: every lookup scatters to the nodes owning its
//     tables and gathers a bit-identical answer; the hottest table's
//     load is spread across its replicas by least-outstanding dispatch.
//  2. Node loss: killing a node degrades only the tables uniquely on
//     it (the router answers those from its own functional layer, still
//     bit-exact) — lookups never fail. Restarting the node gets it
//     re-admitted by the background prober.
//  3. Traffic shift: when the workload's hot table changes, the live
//     frequency sketches see the new volume ranking and the rebalance
//     loop swaps a refreshed placement into the router — the hot-table
//     replicas follow the traffic.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"recross"
)

// demoSpec returns the 8-table workload with table hotIdx carrying 64
// gathers per sample and the rest 8 — one dominant table whose identity
// the traffic shift moves.
func demoSpec(hotIdx int) recross.ModelSpec {
	tabs := make([]recross.TableSpec, 8)
	for i := range tabs {
		pool := 8
		if i == hotIdx {
			pool = 64
		}
		tabs[i] = recross.TableSpec{
			Name: fmt.Sprintf("t%d", i), Rows: 8000, VecLen: 32,
			Pooling: pool, Prob: 1, Skew: 1.2,
		}
	}
	return recross.ModelSpec{Name: "cluster-demo", Tables: tabs}
}

// hotOwners returns the replica set of the (first) replicated table.
func hotOwners(pl *recross.ClusterPlacement) (int, []int) {
	for t := range pl.Replicas {
		if len(pl.Replicas[t]) > 1 {
			return t, pl.Replicas[t]
		}
	}
	return -1, nil
}

func main() {
	spec := demoSpec(0)
	fmt.Println("building a 4-node ReCross cluster (cost placement, hot table replicated on 2)...")
	cs, err := recross.NewClusterServer(recross.ReCross, recross.Config{
		Spec: spec, ProfileSamples: 500, Batch: 16,
	}, recross.ClusterConfig{
		Nodes:          4,
		Placement:      "cost",
		Replication:    2,
		HotTopK:        1,
		ProbeInterval:  50 * time.Millisecond,
		RebalanceEvery: 200 * time.Millisecond,
		Serve:          recross.ServeOptions{MaxBatch: 8},
	})
	check(err)
	defer cs.Close()

	layer, err := recross.NewLayer(spec)
	check(err)
	gen, err := recross.NewGenerator(spec, 42)
	check(err)

	pl := cs.Router.Placement()
	ht, owners := hotOwners(pl)
	fmt.Printf("  placement: %d tables, hot table t%d on nodes %v (makespan %.0f, LP bound %.0f)\n",
		pl.Tables(), ht, owners, pl.Makespan, pl.LPBound)

	// Phase 1: healthy scatter-gather, answers checked bit for bit.
	fmt.Println("\nphase 1: healthy serving (300 lookups)")
	drive(cs, layer, gen, 300)
	for i := 0; i < cs.Fleet.Len(); i++ {
		st := cs.Fleet.Node(i).Stats()
		fmt.Printf("  node%d served %d sub-requests\n", i, st.Lookups)
	}
	fmt.Println("  300/300 answers bit-identical to the functional layer")

	// Phase 2: kill a node that uniquely owns tables; serving degrades
	// for exactly those tables and never fails.
	victim := 0
	for i := 0; i < cs.Fleet.Len(); i++ {
		if len(pl.UniqueTables(i)) > 0 {
			victim = i
			break
		}
	}
	fmt.Printf("\nphase 2: killing node%d (uniquely owns tables %v)\n", victim, pl.UniqueTables(victim))
	check(cs.Fleet.Kill(victim))
	degraded := 0
	for i := 0; i < 100; i++ {
		sample := gen.Sample()
		res, err := cs.Lookup(context.Background(), sample)
		check(err)
		verify(layer, sample, res.Vectors)
		if res.Degraded {
			degraded++
		}
	}
	h := cs.Router.Health()
	fmt.Printf("  100 lookups: 0 errors, %d degraded (still bit-exact); health %q, %d/%d nodes\n",
		degraded, h.Status, h.Available, h.Nodes)

	fmt.Printf("  restarting node%d...\n", victim)
	check(cs.Fleet.Restart(victim))
	deadline := time.Now().Add(5 * time.Second)
	for cs.Router.Health().Available != cs.Fleet.Len() {
		if time.Now().After(deadline) {
			fmt.Println("  node never re-admitted")
			os.Exit(1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("  prober re-admitted node%d (%d revivals)\n", victim, cs.Router.Stats().Revivals)

	// Phase 3: the workload's hot table moves from t0 to t7. The
	// tracker's sketches accumulate the new volume ranking — once t7's
	// lifetime volume overtakes t0's, a rebalance tick swaps in a
	// placement replicating t7 instead. (Volumes are cumulative, so the
	// flip needs roughly as much shifted traffic as phases 1–2 drove.)
	fmt.Println("\nphase 3: traffic shift — the hot table moves to t7")
	shifted, err := recross.NewGenerator(demoSpec(7), 43)
	check(err)
	deadline = time.Now().Add(60 * time.Second)
	for {
		drive(cs, layer, shifted, 100)
		if ht, _ = hotOwners(cs.Router.Placement()); ht == 7 {
			break
		}
		if time.Now().After(deadline) {
			fmt.Printf("  hot table still t%d; expected the rebalance to move it to t7\n", ht)
			os.Exit(1)
		}
	}
	pl = cs.Router.Placement()
	ht, owners = hotOwners(pl)
	fmt.Printf("  rebalance adopted: hot table now t%d on nodes %v (makespan %.0f)\n", ht, owners, pl.Makespan)

	st := cs.Router.Stats()
	fmt.Printf("\nrouter stats: %d requests, %d sub-requests, %d degraded, %d rebalances, %d revivals\n",
		st.Requests, st.Subrequests, st.Degraded, st.Rebalances, st.Revivals)
}

// drive pushes n lookups through the cluster, verifying each answer
// against the functional layer.
func drive(cs *recross.ClusterServer, layer *recross.Layer, gen *recross.Generator, n int) {
	for i := 0; i < n; i++ {
		sample := gen.Sample()
		res, err := cs.Lookup(context.Background(), sample)
		check(err)
		verify(layer, sample, res.Vectors)
	}
}

func verify(layer *recross.Layer, sample recross.Sample, got [][]float32) {
	want, err := layer.ReduceSample(sample)
	check(err)
	for k := range want {
		if !recross.AlmostEqual(got[k], want[k], 0) {
			fmt.Println("MISMATCH against the functional layer")
			os.Exit(1)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}
