package adapt

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"recross/internal/partition"
	"recross/internal/stats"
	"recross/internal/trace"
)

// Tracker observes per-table, per-row access streams from the serving
// path with bounded memory: one Space-Saving top-k sketch per table plus
// an exact access total. Space-Saving (Metwally et al.) guarantees every
// key with true count > total/k is retained and overestimates a retained
// key's count by at most the smallest retained count — exactly the error
// profile the partitioner tolerates, since it places the head
// individually and hashes the tail anyway.
//
// Locking is striped per table: Observe takes one table's mutex at a time
// for a few O(log k) heap fixes, so concurrent Lookup goroutines touching
// different tables never contend and same-table contention is a short
// critical section. SampleEvery thins the stream (observe 1 in N samples)
// when even that is too hot.
type Tracker struct {
	spec   trace.ModelSpec
	tables []tableSketch
	every  int64
	seq    atomic.Int64 // sample sequence, for 1-in-N thinning
	// samples counts samples actually observed (post-thinning) since the
	// last Reset; totals are per-table accesses.
	samples atomic.Int64
}

// TrackerOptions configures NewTracker.
type TrackerOptions struct {
	// TopK is the per-table sketch capacity (default 512).
	TopK int
	// SampleEvery observes 1 in N samples (default 1 = every sample).
	// Frequencies are ratios, so thinning leaves the curves unbiased.
	SampleEvery int
}

func (o TrackerOptions) withDefaults() TrackerOptions {
	if o.TopK == 0 {
		o.TopK = 512
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 1
	}
	return o
}

// NewTracker builds a tracker for spec.
func NewTracker(spec trace.ModelSpec, opts TrackerOptions) (*Tracker, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.TopK < 1 {
		return nil, fmt.Errorf("adapt: TopK %d < 1", opts.TopK)
	}
	if opts.SampleEvery < 1 {
		return nil, fmt.Errorf("adapt: SampleEvery %d < 1", opts.SampleEvery)
	}
	t := &Tracker{spec: spec, tables: make([]tableSketch, len(spec.Tables)), every: int64(opts.SampleEvery)}
	for i := range t.tables {
		t.tables[i].init(opts.TopK)
	}
	return t, nil
}

// Observe feeds one served sample into the sketches. Safe for concurrent
// use; this is the serving hot path.
func (t *Tracker) Observe(s trace.Sample) {
	if t.every > 1 && t.seq.Add(1)%t.every != 0 {
		return
	}
	t.samples.Add(1)
	for _, op := range s {
		if op.Table < 0 || op.Table >= len(t.tables) {
			continue // malformed op; Lookup validates before us, but stay safe
		}
		t.tables[op.Table].observe(op.Indices)
	}
}

// Samples returns the samples observed (post-thinning) since construction
// or the last Reset.
func (t *Tracker) Samples() int64 { return t.samples.Load() }

// Decay halves every sketch count (dropping keys that reach zero) and the
// access totals. Called once per control window, it gives the sketch an
// exponential horizon of roughly two windows: after a hot-set shift the
// old head's counts are gone in a handful of halvings, so the detector
// sees the new regime instead of an ever-longer average over both.
func (t *Tracker) Decay() {
	for i := range t.tables {
		t.tables[i].decay()
	}
	// Halve the observed-sample counter too, keeping the "enough data to
	// replan" guard proportional to what the sketches actually hold.
	for {
		cur := t.samples.Load()
		if t.samples.CompareAndSwap(cur, cur/2) {
			return
		}
	}
}

// Reset empties every sketch and the sample counter. The controller
// calls it on adoption: the old counts were accumulated against the
// placement just replaced (often straddling the very drift that forced
// the change), so the next replan should price pure post-adoption
// traffic instead of a decaying mixture.
func (t *Tracker) Reset() {
	for i := range t.tables {
		t.tables[i].reset()
	}
	t.samples.Store(0)
}

// Hot reports whether row idx of table ti is currently frequency-hot:
// the Space-Saving sketch retains it with an estimated count of at least
// total/k — the guarantee threshold above which a true heavy hitter is
// never silently dropped. It is the admission signal for the hot-row
// cache (embedding.RowCache.SetAdmit): while a table's sketch is empty
// everything is admitted (cold start, no evidence either way); once
// traffic accumulates only rows the tracker ranks as heavy earn cache
// slots, so one-off scans cannot wash the working set out. Safe for
// concurrent use with Observe — one short per-table critical section on
// the same striped lock.
func (t *Tracker) Hot(ti int, idx int64) bool {
	if ti < 0 || ti >= len(t.tables) {
		return false
	}
	return t.tables[ti].hot(idx)
}

func (ts *tableSketch) hot(idx int64) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.total == 0 {
		return true
	}
	e, ok := ts.entries[idx]
	return ok && e.count*int64(ts.cap) >= ts.total
}

// TableSnapshot is one table's sketch content: keys with their estimated
// counts (descending), the exact access total, and the number of
// Space-Saving evictions (0 means every count is exact).
type TableSnapshot struct {
	Keys    []int64
	Counts  []int64
	Total   int64
	Evicted int64
}

// Snapshot copies every table's sketch state.
func (t *Tracker) Snapshot() []TableSnapshot {
	out := make([]TableSnapshot, len(t.tables))
	for i := range t.tables {
		out[i] = t.tables[i].snapshot()
	}
	return out
}

// Totals reports each table's exact observed access count (including
// evicted sketch mass) — the live table-level load signal the cluster
// rebalancer scales into per-table access volumes.
func (t *Tracker) Totals() []int64 {
	snaps := t.Snapshot()
	out := make([]int64, len(snaps))
	for i, s := range snaps {
		out[i] = s.Total
	}
	return out
}

// Profile rebuilds a partition.Profile from the sketches: per-table
// histograms holding the top-k keys (the rows the placement will map
// individually) and cumulative-access curves whose observed mass is the
// share of traffic the sketch retained, with the untracked remainder
// ramping over the tail. The result feeds partition.SolveLP and
// partition.Build exactly like an offline profile.
func (t *Tracker) Profile() (*partition.Profile, error) {
	snaps := t.Snapshot()
	hists := make([]*stats.Histogram, len(snaps))
	cdfs := make([]*stats.CDF, len(snaps))
	for i, sn := range snaps {
		h := stats.NewHistogram()
		for k, key := range sn.Keys {
			h.AddN(key, sn.Counts[k])
		}
		// Space-Saving counts sum to the stream total by construction (an
		// eviction moves the minimum count to the newcomer, it never drops
		// mass), so "retained/total" is uselessly 1.0. The real question is
		// how much of that mass belongs to the retained keys: each count
		// overestimates its key's true frequency by at most the minimum
		// retained count (Metwally et al.), so count − min is a guaranteed
		// lower bound per key and Σ(count − min) = total − k·min bounds the
		// attributable mass. The remainder is eviction churn owned by the
		// untracked tail. If nothing was ever evicted the counts are exact
		// and the sketch holds the whole stream.
		obsMass := 1.0
		if sn.Evicted > 0 && sn.Total > 0 && len(sn.Counts) > 0 {
			minCount := sn.Counts[len(sn.Counts)-1]
			attrib := sn.Total - int64(len(sn.Counts))*minCount
			if attrib < 0 {
				attrib = 0
			}
			obsMass = float64(attrib) / float64(sn.Total)
		}
		// The sketch truncates the stream at k ranks; under a skewed
		// workload the mass just past the truncation is still substantial,
		// so the unseen remainder follows a power-law tail fitted from the
		// retained counts rather than a uniform ramp (which would starve
		// the warm mid-ranks and misplace them into the slow region).
		c, err := stats.CDFFromCountsTail(sn.Counts, int(t.spec.Tables[i].Rows), obsMass, stats.FitZipf(sn.Counts))
		if err != nil {
			return nil, fmt.Errorf("adapt: table %q: %w", t.spec.Tables[i].Name, err)
		}
		hists[i] = h
		cdfs[i] = c
	}
	return &partition.Profile{Spec: t.spec, Hists: hists, CDFs: cdfs}, nil
}

// tableSketch is one table's Space-Saving summary: capacity-bounded
// entries in a min-heap by count, plus the exact access total.
type tableSketch struct {
	mu      sync.Mutex
	cap     int
	entries map[int64]*ssEntry
	heap    ssHeap
	total   int64
	evicted int64
}

type ssEntry struct {
	key   int64
	count int64
	pos   int // heap index
}

func (ts *tableSketch) init(capacity int) {
	ts.cap = capacity
	ts.entries = make(map[int64]*ssEntry, capacity)
	ts.heap = make(ssHeap, 0, capacity)
}

func (ts *tableSketch) observe(indices []int64) {
	ts.mu.Lock()
	for _, idx := range indices {
		ts.total++
		if e, ok := ts.entries[idx]; ok {
			e.count++
			heap.Fix(&ts.heap, e.pos)
			continue
		}
		if len(ts.heap) < ts.cap {
			e := &ssEntry{key: idx, count: 1}
			ts.entries[idx] = e
			heap.Push(&ts.heap, e)
			continue
		}
		// Space-Saving eviction: the newcomer takes over the minimum
		// entry, inheriting its count + 1 (the overestimate bound).
		ts.evicted++
		min := ts.heap[0]
		delete(ts.entries, min.key)
		min.key = idx
		min.count++
		ts.entries[idx] = min
		heap.Fix(&ts.heap, 0)
	}
	ts.mu.Unlock()
}

func (ts *tableSketch) decay() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	kept := ts.heap[:0]
	for _, e := range ts.heap {
		e.count /= 2
		if e.count > 0 {
			kept = append(kept, e)
		} else {
			delete(ts.entries, e.key)
		}
	}
	ts.heap = kept
	heap.Init(&ts.heap)
	for i, e := range ts.heap {
		e.pos = i
	}
	ts.total /= 2
}

func (ts *tableSketch) reset() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.entries = make(map[int64]*ssEntry, ts.cap)
	ts.heap = ts.heap[:0]
	ts.total = 0
	ts.evicted = 0
}

func (ts *tableSketch) snapshot() TableSnapshot {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	sn := TableSnapshot{
		Keys:    make([]int64, len(ts.heap)),
		Counts:  make([]int64, len(ts.heap)),
		Total:   ts.total,
		Evicted: ts.evicted,
	}
	// Copy then sort descending by count (ties by key, deterministic).
	ents := make([]*ssEntry, len(ts.heap))
	copy(ents, ts.heap)
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].count != ents[j].count {
			return ents[i].count > ents[j].count
		}
		return ents[i].key < ents[j].key
	})
	for i, e := range ents {
		sn.Keys[i] = e.key
		sn.Counts[i] = e.count
	}
	return sn
}

// ssHeap is a min-heap of entries by count.
type ssHeap []*ssEntry

func (h ssHeap) Len() int            { return len(h) }
func (h ssHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].pos = i; h[j].pos = j }
func (h *ssHeap) Push(x interface{}) { e := x.(*ssEntry); e.pos = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
