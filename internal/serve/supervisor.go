package serve

import (
	"errors"
	"sort"
	"time"
)

// supervise is the self-healing loop: it receives failed replicas from
// their exiting workers and rebuilds them — exponential backoff, restart
// cap, then the graveyard. It runs until Close stops it; a restart in
// progress is abandoned at stop (Close's final sweep answers anything
// still queued at a worker-less replica).
func (s *Server) supervise() {
	defer close(s.supervisorDone)
	for {
		select {
		case rep := <-s.failures:
			s.restartReplica(rep)
		case <-s.supervisorStop:
			return
		}
	}
}

// restartReplica rebuilds one failed replica: wait out the backoff,
// rebuild the System (via Options.Rebuild when set), and hand the same
// work channel to a fresh worker so batches queued across the failure
// are served by the successor. Consecutive attempts beyond RestartCap
// declare the replica dead.
func (s *Server) restartReplica(rep *replica) {
	rep.setState(Restarting)
	for {
		attempt := int(rep.attempts.Add(1))
		if attempt > s.opts.RestartCap {
			s.buryReplica(rep)
			return
		}
		// Exponential backoff: base << (attempt-1), capped at 100x base.
		d := s.opts.RestartBackoff << uint(attempt-1)
		if cap := 100 * s.opts.RestartBackoff; d > cap {
			d = cap
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-s.supervisorStop:
			t.Stop()
			return
		}
		sys := rep.sys
		if s.opts.Rebuild != nil {
			ns, err := s.opts.Rebuild(rep.id)
			if err != nil {
				continue // burns one attempt toward the cap
			}
			sys = ns
		}
		// No worker goroutine is running for rep here (its worker exited
		// before reporting the failure), so the System swap is safe.
		rep.sys = sys
		rep.sysname.Store(sys.Name())
		rep.restarts.Add(1)
		s.metrics.Restarts.Add(1)
		rep.setState(Suspect) // probation until it serves a batch
		s.startWorker(rep)
		return
	}
}

// buryReplica retires a replica permanently and installs a graveyard
// drainer: any batch routed to it before dispatch observed the Dead
// state is failed over instead of stranded in the channel buffer.
func (s *Server) buryReplica(rep *replica) {
	rep.setState(Dead)
	s.workers.Add(1)
	go func() {
		defer s.workers.Done()
		for batch := range rep.work {
			rep.outstanding.Add(-int64(len(batch)))
			s.failover(batch, rep.id, &ReplicaError{
				Replica: rep.id, Fault: FailureError,
				Cause: errors.New("replica dead (restart cap exhausted)"),
			})
		}
	}()
}

// failover resolves a batch whose replica failed: requests with retry
// budget left are resubmitted to another available replica; the rest
// are answered from the functional layer with Result.Degraded set. A
// replica fault therefore never surfaces as a caller-visible error —
// cause is carried only for requests whose functional fallback also
// fails (which procedural layers never do).
func (s *Server) failover(batch []*request, from int, cause *ReplicaError) {
	for _, r := range batch {
		if r.settled.Load() {
			continue // e.g. already answered before a late wedge fired
		}
		if r.retries < s.opts.MaxRetries && s.resubmit(r, from) {
			continue
		}
		s.serveDegraded(r)
	}
	_ = cause
}

// resubmit re-routes one failed request as a single-request batch to an
// available replica other than the one that failed it, least-loaded
// first. The sends are non-blocking: a worker must never wait on a
// sibling's full queue (under heavy faults that converges on deadlock);
// if nobody can take the request immediately it falls through to a
// degraded answer. r.retries is bumped before the send so the receiving
// worker observes it (channel-send happens-before).
func (s *Server) resubmit(r *request, exclude int) bool {
	cands := make([]*replica, 0, len(s.replicas))
	for _, rep := range s.replicas {
		if rep.id != exclude && rep.available() {
			cands = append(cands, rep)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].outstanding.Load() < cands[j].outstanding.Load()
	})
	r.retries++
	s.metrics.Retries.Add(1)
	for _, rep := range cands {
		rep.outstanding.Add(1)
		if s.sendWork(rep, []*request{r}, false) {
			return true
		}
		rep.outstanding.Add(-1)
	}
	r.retries--
	s.metrics.Retries.Add(-1)
	return false
}

// sendWork delivers a batch to rep's work channel. The read lock and
// workClosed flag make the send safe against Close closing the channel;
// block selects between a blocking send (dispatcher backpressure) and a
// non-blocking attempt (failover resubmission).
func (s *Server) sendWork(rep *replica, batch []*request, block bool) bool {
	s.workMu.RLock()
	defer s.workMu.RUnlock()
	if s.workClosed {
		return false
	}
	if block {
		rep.work <- batch
		return true
	}
	select {
	case rep.work <- batch:
		return true
	default:
		return false
	}
}

// serveDegraded answers one request from the shared functional layer:
// correct vectors, no timing model, Result.Degraded set. It is the
// last-resort path — quorum loss, exhausted retry budget, or drain.
func (s *Server) serveDegraded(r *request) {
	vecs, err := s.reducers.reduceOne(r.sample)
	if err != nil {
		if r.complete(outcome{err: err}) {
			s.metrics.Failed.Add(1)
		}
		return
	}
	if r.deq.IsZero() {
		r.deq = time.Now()
	}
	res := &Result{
		Vectors:      vecs,
		BatchSize:    1,
		Replica:      -1,
		Retries:      r.retries,
		Degraded:     true,
		ColdDegraded: s.coldDegraded(),
		QueueWait:    r.deq.Sub(r.enq),
		Total:        time.Since(r.enq),
	}
	if r.complete(outcome{res: res}) {
		s.metrics.Degraded.Add(1)
		s.metrics.Completed.Add(1)
		s.metrics.E2E.Record(res.Total.Nanoseconds())
		if res.ColdDegraded {
			s.metrics.DegradedCold.Add(1)
		}
	}
}

// coldDegraded probes the storage tier's health (false with no probe
// configured).
func (s *Server) coldDegraded() bool {
	return s.opts.ColdDegraded != nil && s.opts.ColdDegraded()
}

// AvailableReplicas counts replicas eligible for dispatch (healthy or
// suspect, with a live worker).
func (s *Server) AvailableReplicas() int {
	n := 0
	for _, rep := range s.replicas {
		if rep.available() {
			n++
		}
	}
	return n
}

// Degraded reports whether the server is below quorum and answering
// from the functional layer.
func (s *Server) Degraded() bool { return s.AvailableReplicas() < s.opts.Quorum }

// ReplicaHealth is one replica's health snapshot.
type ReplicaHealth struct {
	// ID is the replica index.
	ID int `json:"id"`
	// State is "healthy", "suspect", "restarting" or "dead".
	State string `json:"state"`
	// Failures counts replica-level faults (panics, wedges, corrupt
	// stats, run errors).
	Failures int64 `json:"failures"`
	// Restarts counts successful supervisor rebuilds.
	Restarts int64 `json:"restarts"`
	// System names the replica's architecture.
	System string `json:"system"`
}

// HealthReport is the server-wide health snapshot behind /healthz.
type HealthReport struct {
	// Status is "ok", "degraded" (below quorum, serving functionally),
	// "cold-degraded" (compute healthy but the storage tier's breaker is
	// not closed, so cold rows serve through the slow fallback) or
	// "draining".
	Status string `json:"status"`
	// Available counts dispatchable replicas; Quorum is the threshold.
	Available int `json:"available"`
	Quorum    int `json:"quorum"`
	// ColdDegraded reports the storage tier's health probe (always false
	// without a cold tier).
	ColdDegraded bool `json:"cold_degraded,omitempty"`
	// Replicas holds the per-replica states.
	Replicas []ReplicaHealth `json:"replicas"`
}

// Health snapshots per-replica states and the server-wide status.
func (s *Server) Health() HealthReport {
	h := HealthReport{
		Available:    s.AvailableReplicas(),
		Quorum:       s.opts.Quorum,
		ColdDegraded: s.coldDegraded(),
	}
	switch {
	case s.Draining():
		h.Status = "draining"
	case h.Available < h.Quorum:
		h.Status = "degraded"
	case h.ColdDegraded:
		h.Status = "cold-degraded"
	default:
		h.Status = "ok"
	}
	for _, rep := range s.replicas {
		h.Replicas = append(h.Replicas, ReplicaHealth{
			ID:       rep.id,
			State:    rep.State().String(),
			Failures: rep.failures.Load(),
			Restarts: rep.restarts.Load(),
			System:   rep.sysName(),
		})
	}
	return h
}
