package memctrl

import (
	"math/rand"
	"testing"

	"recross/internal/dram"
	"recross/internal/sim"
)

func newCtl(t *testing.T, ranks int, mode dram.InstrMode, pol Policy) *Controller {
	t.Helper()
	ch, err := dram.NewChannel(dram.DDR5(ranks), dram.DDR5Timing(), mode)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ch, pol, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDrainEmpty(t *testing.T) {
	c := newCtl(t, 2, dram.Conventional, FRFCFS)
	res, err := c.Drain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != 0 {
		t.Fatalf("finish = %d, want 0", res.Finish)
	}
}

func TestDrainSingleVector(t *testing.T) {
	c := newCtl(t, 2, dram.Conventional, FRFCFS)
	tm := c.Channel().Tm
	res, err := c.Drain([]Request{{
		Loc: dram.Loc{Row: 5}, Cols: 4, Consumer: dram.ToHost,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// ACT at ~0, RD0 at tRCD, RDs every tCCD_L, data tCL+tBL after last.
	want := tm.TRCD + 3*tm.TCCDL + tm.TCL + tm.TBL
	if res.Finish != want {
		t.Fatalf("finish = %d, want %d", res.Finish, want)
	}
	if res.RowMisses != 1 || res.RowHits != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/1", res.RowHits, res.RowMisses)
	}
	if res.Done[0] != want {
		t.Fatalf("Done[0] = %d, want %d", res.Done[0], want)
	}
}

func TestDrainRowHitReuse(t *testing.T) {
	c := newCtl(t, 2, dram.Conventional, FRFCFS)
	// Two vectors in the same row: second is a pure row hit.
	reqs := []Request{
		{Loc: dram.Loc{Row: 5, Col: 0}, Cols: 2, Consumer: dram.ToHost},
		{Loc: dram.Loc{Row: 5, Col: 2}, Cols: 2, Consumer: dram.ToHost},
	}
	res, err := c.Drain(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowHits != 1 || res.RowMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", res.RowHits, res.RowMisses)
	}
	if c.Channel().St.ACTs != 1 {
		t.Fatalf("ACTs = %d, want 1", c.Channel().St.ACTs)
	}
}

func TestFRFCFSPrefersRowHitOverOlderConflict(t *testing.T) {
	c := newCtl(t, 2, dram.Conventional, FRFCFS)
	// Request 0 (older) conflicts with the row request 1 (newer) hits.
	// Open row 7 first via a warmup request.
	warm, err := c.Drain([]Request{{Loc: dram.Loc{Row: 7}, Cols: 1, Consumer: dram.ToHost}})
	if err != nil {
		t.Fatal(err)
	}
	_ = warm
	reqs := []Request{
		{Loc: dram.Loc{Row: 9}, Cols: 1, Consumer: dram.ToHost, Arrival: 0},
		{Loc: dram.Loc{Row: 7}, Cols: 1, Consumer: dram.ToHost, Arrival: 1},
	}
	res, err := c.Drain(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done[1] >= res.Done[0] {
		t.Fatalf("row-hit request should finish first: done = %v", res.Done)
	}
}

func TestDrainParallelBanksOverlap(t *testing.T) {
	// 8 vectors in 8 different bank groups to bank PEs should drain in far
	// less than 8x the single-vector latency.
	single := func() sim.Cycle {
		c := newCtl(t, 2, dram.NMPTwoStage, FRFCFS)
		res, err := c.Drain([]Request{{Loc: dram.Loc{Row: 1}, Cols: 4, Consumer: dram.ToBankPE}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Finish
	}()
	c := newCtl(t, 2, dram.NMPTwoStage, FRFCFS)
	var reqs []Request
	for bg := 0; bg < 8; bg++ {
		reqs = append(reqs, Request{
			Loc: dram.Loc{BG: bg, Row: 1}, Cols: 4, Consumer: dram.ToBankPE,
		})
	}
	res, err := c.Drain(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish > single*2 {
		t.Fatalf("8 parallel vectors took %d, single took %d: not overlapping", res.Finish, single)
	}
}

func TestDrainSerialSameBankRows(t *testing.T) {
	// 4 vectors in different rows of one conventional bank serialize at
	// roughly tRC each.
	c := newCtl(t, 2, dram.NMPTwoStage, FRFCFS)
	var reqs []Request
	for r := 0; r < 4; r++ {
		reqs = append(reqs, Request{
			Loc: dram.Loc{Row: r * 300}, Cols: 1, Consumer: dram.ToBankPE,
		})
	}
	res, err := c.Drain(reqs)
	if err != nil {
		t.Fatal(err)
	}
	tm := c.Channel().Tm
	if res.Finish < 3*tm.TRC {
		t.Fatalf("4 conflicting rows drained in %d, violates tRC serialization (%d)", res.Finish, 3*tm.TRC)
	}
}

func TestSALPDrainBeatsSerialBank(t *testing.T) {
	run := func(salp bool, pol Policy) sim.Cycle {
		c := newCtl(t, 2, dram.NMPTwoStage, pol)
		if salp {
			c.Channel().EnableSALP(0)
		}
		rps := c.Channel().Geo.RowsPerSubarray
		var reqs []Request
		for i := 0; i < 64; i++ {
			// 64 vectors spread over 64 subarrays of bank 0.
			reqs = append(reqs, Request{
				Loc: dram.Loc{Row: i * rps}, Cols: 4, Consumer: dram.ToBankPE,
			})
		}
		res, err := c.Drain(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Finish
	}
	serial := run(false, FRFCFS)
	salp := run(true, LAS)
	speedup := float64(serial) / float64(salp)
	if speedup < 2 {
		t.Fatalf("SALP speedup on one hot bank = %.2f, want >= 2 (serial %d, salp %d)", speedup, serial, salp)
	}
}

func TestArrivalDelaysIssue(t *testing.T) {
	c := newCtl(t, 2, dram.Conventional, FRFCFS)
	res, err := c.Drain([]Request{{
		Loc: dram.Loc{Row: 1}, Cols: 1, Consumer: dram.ToHost, Arrival: 5000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish < 5000 {
		t.Fatalf("request finished at %d before its arrival 5000", res.Finish)
	}
}

func TestDrainRejectsBadRequests(t *testing.T) {
	c := newCtl(t, 2, dram.Conventional, FRFCFS)
	bad := [][]Request{
		{{Loc: dram.Loc{Rank: 9}, Cols: 1}},
		{{Loc: dram.Loc{}, Cols: 0}},
		{{Loc: dram.Loc{Col: 126}, Cols: 4}}, // crosses the row end
	}
	for i, reqs := range bad {
		if _, err := c.Drain(reqs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, FRFCFS, 4); err == nil {
		t.Error("nil channel should error")
	}
	ch, _ := dram.NewChannel(dram.DDR5(2), dram.DDR5Timing(), dram.Conventional)
	if _, err := New(ch, FRFCFS, 0); err == nil {
		t.Error("zero window should error")
	}
}

// Property: every drained request completes, completion times are
// consistent, and per-bank RD counts equal requested columns.
func TestDrainAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := newCtl(t, 2, dram.NMPTwoStage, FRFCFS)
		geo := c.Channel().Geo
		n := rng.Intn(60) + 1
		reqs := make([]Request, n)
		totalCols := int64(0)
		for i := range reqs {
			cols := rng.Intn(4) + 1
			reqs[i] = Request{
				Loc: dram.Loc{
					Rank: rng.Intn(geo.Ranks),
					BG:   rng.Intn(geo.BankGroups),
					Bank: rng.Intn(geo.Banks),
					Row:  rng.Intn(geo.RowsPerBank()),
					Col:  rng.Intn(geo.ColumnsPerRow() - cols),
				},
				Cols:     cols,
				Consumer: dram.Consumer(rng.Intn(4)),
				Arrival:  sim.Cycle(rng.Intn(100)),
			}
			totalCols += int64(cols)
		}
		res, err := c.Drain(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowHits+res.RowMisses != int64(n) {
			t.Fatalf("hits+misses = %d, want %d", res.RowHits+res.RowMisses, n)
		}
		if c.Channel().St.RDs != totalCols {
			t.Fatalf("RDs = %d, want %d", c.Channel().St.RDs, totalCols)
		}
		for i, d := range res.Done {
			if d <= 0 {
				t.Fatalf("request %d has no completion time", i)
			}
			if d > res.Finish {
				t.Fatalf("request %d done %d after finish %d", i, d, res.Finish)
			}
			if d < reqs[i].Arrival {
				t.Fatalf("request %d done %d before arrival %d", i, d, reqs[i].Arrival)
			}
		}
	}
}

func BenchmarkDrain1kVectors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	geo := dram.DDR5(2)
	reqs := make([]Request, 1000)
	for i := range reqs {
		reqs[i] = Request{
			Loc: dram.Loc{
				Rank: rng.Intn(geo.Ranks),
				BG:   rng.Intn(geo.BankGroups),
				Bank: rng.Intn(geo.Banks),
				Row:  rng.Intn(geo.RowsPerBank()),
			},
			Cols:     4,
			Consumer: dram.ToBankPE,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, _ := dram.NewChannel(geo, dram.DDR5Timing(), dram.NMPTwoStage)
		c, _ := New(ch, FRFCFS, DefaultWindow)
		if _, err := c.Drain(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteBatchingReducesTurnarounds(t *testing.T) {
	// Writes trickle in between reads (staggered arrivals): the eager
	// policy issues each on arrival, paying a read/write turnaround every
	// time; the watermark policy accumulates them into bursts. (When all
	// requests are available at once, the greedy earliest-first pick
	// clusters writes by itself and the policies converge.)
	build := func() []Request {
		var reqs []Request
		rng := rand.New(rand.NewSource(5))
		geo := dram.DDR5(2)
		for i := 0; i < 200; i++ {
			reqs = append(reqs, Request{
				Loc: dram.Loc{
					Rank: rng.Intn(geo.Ranks), BG: rng.Intn(geo.BankGroups),
					Bank: rng.Intn(geo.Banks), Row: rng.Intn(geo.RowsPerBank()),
				},
				Cols:     4,
				Consumer: dram.ToHost,
				Write:    i%3 == 0, // writes interleaved with reads
				Arrival:  sim.Cycle(i) * 30,
			})
		}
		return reqs
	}
	run := func(hi int) sim.Cycle {
		ch, _ := dram.NewChannel(dram.DDR5(2), dram.DDR5Timing(), dram.Conventional)
		c, _ := New(ch, FRFCFS, DefaultWindow)
		c.WriteHighWatermark = hi
		res, err := c.Drain(build())
		if err != nil {
			t.Fatal(err)
		}
		return res.Finish
	}
	eager := run(1)    // writes interleave whenever ready
	batched := run(16) // watermark draining
	if batched >= eager {
		t.Fatalf("write batching did not help: batched %d vs eager %d", batched, eager)
	}
}

func TestWriteOnlyWorkloadStillDrains(t *testing.T) {
	// With nothing but writes, the deferral must not deadlock.
	ch, _ := dram.NewChannel(dram.DDR5(2), dram.DDR5Timing(), dram.Conventional)
	c, _ := New(ch, FRFCFS, DefaultWindow)
	var reqs []Request
	for i := 0; i < 10; i++ {
		reqs = append(reqs, Request{
			Loc: dram.Loc{Bank: i % 4, Row: i}, Cols: 2, Write: true,
		})
	}
	res, err := c.Drain(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if ch.St.WRs != 20 {
		t.Fatalf("WR bursts = %d, want 20", ch.St.WRs)
	}
	if res.Finish <= 0 {
		t.Fatal("no finish time")
	}
}
