package energy

import (
	"math"
	"testing"

	"recross/internal/dram"
	"recross/internal/nmp"
)

func TestDefaultsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.AddPico = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative coefficient should fail validation")
	}
}

func TestAccountKnownCounts(t *testing.T) {
	p := Default()
	st := dram.Stats{
		ACTs:         10,
		BurstsToBank: 100,
		BurstsToHost: 50,
		HostResultTx: 5,
	}
	ops := nmp.OpStats{Adds: 1000, Mults: 500}
	b := Account(p, st, ops, 1000, 2, 64)

	if want := 10 * 2e-9; math.Abs(b.ACT-want) > 1e-15 {
		t.Fatalf("ACT = %g, want %g", b.ACT, want)
	}
	// RD: 150 bursts x 512 bits x 4.2 pJ.
	if want := 150 * 512 * 4.2e-12; math.Abs(b.RD-want) > 1e-15 {
		t.Fatalf("RD = %g, want %g", b.RD, want)
	}
	// IO: host bursts + result tx (rank bursts zero here) = 55 x 512 x 4 pJ.
	if want := 55 * 512 * 4e-12; math.Abs(b.IO-want) > 1e-15 {
		t.Fatalf("IO = %g, want %g", b.IO, want)
	}
	if want := (1000*0.9 + 500*2.4) * 1e-12; math.Abs(b.PE-want) > 1e-18 {
		t.Fatalf("PE = %g, want %g", b.PE, want)
	}
	if want := 1000 * 2 * 250e-12; math.Abs(b.Static-want) > 1e-15 {
		t.Fatalf("Static = %g, want %g", b.Static, want)
	}
	if math.Abs(b.Total()-(b.ACT+b.RD+b.IO+b.PE+b.Static)) > 1e-18 {
		t.Fatal("Total != sum of parts")
	}
}

func TestNMPSavesIOEnergy(t *testing.T) {
	p := Default()
	// Same data volume: host-consumed vs bank-PE-consumed.
	host := Account(p, dram.Stats{BurstsToHost: 1000}, nmp.OpStats{}, 0, 2, 64)
	bank := Account(p, dram.Stats{BurstsToBank: 1000}, nmp.OpStats{}, 0, 2, 64)
	if bank.IO >= host.IO {
		t.Fatalf("bank-PE IO energy %g not less than host %g", bank.IO, host.IO)
	}
	if bank.RD != host.RD {
		t.Fatal("RD energy should be identical for the same burst count")
	}
}

func TestTableAreasMatchPaper(t *testing.T) {
	rows := TableAreas()
	want := map[string][2]float64{
		"TensorDIMM": {0.28, 0},
		"RecNMP":     {0.54, 0},
		"TRiM-G":     {0.36, 2.03},
		"TRiM-B":     {0.36, 11.5},
		"ReCross":    {0.34, 2.35},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Arch]
		if !ok {
			t.Fatalf("unexpected arch %q", r.Arch)
		}
		if math.Abs(r.RankPEMM2-w[0]) > 0.01 {
			t.Errorf("%s rank PE area = %g, want %g", r.Arch, r.RankPEMM2, w[0])
		}
		if math.Abs(r.ChipPEMM2-w[1]) > 0.02 {
			t.Errorf("%s chip PE area = %g, want %g", r.Arch, r.ChipPEMM2, w[1])
		}
	}
}

func TestChipAreaScalesWithPEs(t *testing.T) {
	m := DefaultAreaModel()
	small := m.ChipArea(4, 4, 4)
	big := m.ChipArea(8, 32, 32)
	if big <= small {
		t.Fatal("more PEs should cost more area")
	}
	// The ReCross-c5 style config (all banks bank-level) should exceed the
	// TRiM-B row scale: the paper's Fig. 14 area-efficiency argument.
	if big < 10 {
		t.Fatalf("full bank-PE population area %g implausibly small", big)
	}
}
