package cluster

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/embedding"
	"recross/internal/kernels"
	"recross/internal/serve"
	"recross/internal/trace"
)

func isNodeDown(err error) bool { return errors.Is(err, ErrNodeDown) }

// withWeights fills nil weight slices with ones so encode/decode
// comparisons see the canonical form both wires produce.
func withWeights(s trace.Sample) trace.Sample {
	out := make(trace.Sample, len(s))
	for i, op := range s {
		if op.Weights == nil {
			op.Weights = make([]float32, len(op.Indices))
			for j := range op.Weights {
				op.Weights[j] = 1
			}
		}
		out[i] = op
	}
	return out
}

// TestWireReqRoundTrip: a lookup request survives encode → frame read →
// arena decode bit-identically, including the canonicalized weights.
func TestWireReqRoundTrip(t *testing.T) {
	layer := clusterLayer(t)
	for _, sample := range clusterSamples(t, 10) {
		frame := appendLookupReq(nil, 7, sample, kernels.FP16)
		br := bufio.NewReader(bytes.NewReader(frame))
		var hdr [frameHeaderSize]byte
		typ, corr, payload, _, err := readFrame(br, &hdr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if typ != frameLookupReq || corr != 7 {
			t.Fatalf("frame typ=%d corr=%d", typ, corr)
		}
		var a reqArena
		got, prec, err := decodeLookupReq(payload, &a, layer)
		if err != nil {
			t.Fatal(err)
		}
		if prec != kernels.FP16 {
			t.Fatalf("precision %d, want FP16", prec)
		}
		if !reflect.DeepEqual(got, withWeights(sample)) {
			t.Fatal("decoded sample differs")
		}
	}
}

// TestWireRespRoundTrip: fp32 responses round-trip bit-identically;
// fp16/int8 match a quantize-then-dequantize of the canonical answer
// exactly (same single rounding as the storage codecs).
func TestWireRespRoundTrip(t *testing.T) {
	res := &serve.Result{
		Vectors:       [][]float32{{1.5, -2.25, 0.000123}, {float32(math.Pi), -1e-7, 42}},
		BatchSize:     3,
		ServiceCycles: 12345,
		Replica:       -1,
		Retries:       2,
		Degraded:      true,
		ColdDegraded:  true,
		QueueWait:     1717 * time.Nanosecond,
		Total:         987654 * time.Nanosecond,
	}
	decode := func(t *testing.T, prec kernels.Precision) *serve.Result {
		t.Helper()
		frame := appendLookupResp(nil, 9, res, prec)
		br := bufio.NewReader(bytes.NewReader(frame))
		var hdr [frameHeaderSize]byte
		typ, corr, payload, _, err := readFrame(br, &hdr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if typ != frameLookupResp || corr != 9 {
			t.Fatalf("frame typ=%d corr=%d", typ, corr)
		}
		got, err := decodeLookupResp(payload)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	t.Run("fp32", func(t *testing.T) {
		got := decode(t, kernels.FP32)
		// The JSON path reconstructs wall-clock fields through µs-float64
		// arithmetic; the binary path must land on the same values.
		want := *res
		want.QueueWait = time.Duration(float64(res.QueueWait.Nanoseconds()) / 1e3 * 1e3)
		want.Total = time.Duration(float64(res.Total.Nanoseconds()) / 1e3 * 1e3)
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("fp32 round trip differs:\n got %+v\nwant %+v", got, &want)
		}
	})
	t.Run("fp16", func(t *testing.T) {
		got := decode(t, kernels.FP16)
		for i, vec := range res.Vectors {
			for j, v := range vec {
				if want := kernels.F16ToF32(kernels.F32ToF16(v)); got.Vectors[i][j] != want {
					t.Fatalf("vec[%d][%d] = %v, want %v", i, j, got.Vectors[i][j], want)
				}
			}
		}
	})
	t.Run("int8", func(t *testing.T) {
		got := decode(t, kernels.INT8)
		for i, vec := range res.Vectors {
			q := make([]uint8, len(vec))
			scale, zero := kernels.QuantizeI8(q, vec)
			want := make([]float32, len(vec))
			kernels.DecodeI8(want, q, scale, zero)
			if !reflect.DeepEqual(got.Vectors[i], want) {
				t.Fatalf("vec[%d] = %v, want %v", i, got.Vectors[i], want)
			}
		}
	})
}

// TestWireErrFrame: unavailable codes map back onto ErrNodeDown so the
// router's failover treats a draining binary peer like a dead one.
func TestWireErrFrame(t *testing.T) {
	frame := appendErrFrame(nil, 3, errCodeUnavailable, "draining")
	err := decodeErrFrame(frame[frameHeaderSize:], "n0")
	if err == nil || !isNodeDown(err) {
		t.Fatalf("unavailable err = %v, want ErrNodeDown wrap", err)
	}
	frame = appendErrFrame(nil, 3, errCodeInternal, "boom")
	err = decodeErrFrame(frame[frameHeaderSize:], "n0")
	if err == nil || isNodeDown(err) {
		t.Fatalf("internal err = %v, must not wrap ErrNodeDown", err)
	}
}

// TestReadFrameRejects: bad magic, version skew and oversized frames
// fail fast instead of desynchronizing the stream.
func TestReadFrameRejects(t *testing.T) {
	var hdr [frameHeaderSize]byte
	mk := func(mut func([]byte)) error {
		frame := appendErrFrame(nil, 1, errCodeInternal, "x")
		mut(frame)
		_, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(frame)), &hdr, nil)
		return err
	}
	if err := mk(func(b []byte) { b[0] = 'Z' }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := mk(func(b []byte) { b[2] = 99 }); err == nil {
		t.Error("version skew accepted")
	}
	if err := mk(func(b []byte) { b[8] = 0xff; b[9] = 0xff; b[10] = 0xff; b[11] = 0x7f }); err == nil {
		t.Error("oversized frame accepted")
	}
	if err := mk(func(b []byte) { b[8] = 200 }); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload err = %v, want unexpected EOF", err)
	}
}

// FuzzDecodeFrame feeds arbitrary bytes through the frame reader and
// every payload decoder: none may panic or over-allocate, whatever the
// corruption.
func FuzzDecodeFrame(f *testing.F) {
	sample := withWeights(wideSample())
	f.Add(appendLookupReq(nil, 1, sample, kernels.FP32))
	f.Add(appendLookupReq(nil, 2, sample, kernels.INT8))
	res := &serve.Result{Vectors: [][]float32{{1, 2, 3}}, BatchSize: 1, Replica: -1}
	f.Add(appendLookupResp(nil, 3, res, kernels.FP32))
	f.Add(appendLookupResp(nil, 4, res, kernels.FP16))
	f.Add(appendErrFrame(nil, 5, errCodeUnavailable, "gone"))
	f.Add([]byte{'r', 'X', 1, frameLookupReq, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("rX\x01\x01garbage"))

	layer, err := embedding.NewLayer(clusterSpec())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var hdr [frameHeaderSize]byte
		br := bufio.NewReader(bytes.NewReader(data))
		_, _, payload, _, err := readFrame(br, &hdr, nil)
		if err != nil {
			payload = data // decode the raw input instead
		}
		var a reqArena
		if s, _, err := decodeLookupReq(payload, &a, layer); err == nil {
			// A decodable request must be fully in-bounds for the layer.
			for _, op := range s {
				if op.Table < 0 || op.Table >= layer.Tables() {
					t.Fatalf("decoded op table %d out of range", op.Table)
				}
			}
		}
		if r, err := decodeLookupResp(payload); err == nil {
			for _, v := range r.Vectors {
				_ = v
			}
		}
		_ = decodeErrFrame(payload, "fuzz")
	})
}

// stubBinBackend answers from the functional layer with a controllable
// delay — the wire tests' equivalent of fakeNode, but behind a real
// BinServer listener.
type stubBinBackend struct {
	layer   *embedding.Layer
	delayNs int64

	mu    sync.Mutex
	delay time.Duration
}

func (b *stubBinBackend) setDelay(d time.Duration) {
	b.mu.Lock()
	b.delay = d
	b.mu.Unlock()
}

func (b *stubBinBackend) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	b.mu.Lock()
	d := b.delay
	b.mu.Unlock()
	if d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	vecs, err := b.layer.ReduceSample(sample)
	if err != nil {
		return nil, err
	}
	return &serve.Result{Vectors: vecs, BatchSize: 1, ServiceCycles: 100, QueueWait: time.Microsecond, Total: 2 * time.Microsecond}, nil
}

func (b *stubBinBackend) Health() serve.HealthReport {
	return serve.HealthReport{Status: "ok", Available: 1, Quorum: 1}
}

// newBinPeer stands up a BinServer over a real TCP listener and returns
// its address plus a shutdown func.
func newBinPeer(t *testing.T, backend BinBackend, layer *embedding.Layer) (string, *BinServer) {
	t.Helper()
	bs, err := NewBinServer(BinServerOptions{Backend: backend, Layer: layer})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go bs.Serve(lis)
	t.Cleanup(func() { bs.Close() })
	return lis.Addr().String(), bs
}

// TestBinNodeLookup: end-to-end over a real TCP conn, bit-identical to
// the functional layer, with stats and health accumulated.
func TestBinNodeLookup(t *testing.T) {
	layer := clusterLayer(t)
	addr, _ := newBinPeer(t, &stubBinBackend{layer: layer}, layer)
	n := NewBinNode("bin0", "bin://"+addr, BinNodeOptions{})
	defer n.Close()

	for _, sample := range clusterSamples(t, 20) {
		res, err := n.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, layer, sample, res.Vectors)
	}
	if st := n.Stats(); st.Lookups != 20 || st.Cycles != 20*100 {
		t.Errorf("stats = %+v", st)
	}
	h, err := n.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Errorf("health = %+v, %v", h, err)
	}
	m := n.WireMetrics()
	if m.FramesOut.Load() != 21 || m.FramesIn.Load() != 21 {
		t.Errorf("frames out=%d in=%d, want 21 each", m.FramesOut.Load(), m.FramesIn.Load())
	}
	if m.BytesOut.Load() == 0 || m.BytesIn.Load() == 0 || m.Dials.Load() == 0 {
		t.Errorf("wire metrics not accumulated: %+v", m.snapshot())
	}
}

// TestBinJSONDifferential: the same backend fronted by both transports
// answers bit-identically — vectors, flags and counters — across random
// batches, every wire precision at fp32, and degraded answers.
func TestBinJSONDifferential(t *testing.T) {
	layer := clusterLayer(t)
	srv, err := serve.New(serve.Options{Systems: []arch.System{fakeArch{}}, Layer: layer})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	jsonNode := NewHTTPNode("json", ts.URL, nil)

	addr, _ := newBinPeer(t, srv, layer)
	binNode := NewBinNode("bin", addr, BinNodeOptions{})
	defer binNode.Close()

	for i, sample := range clusterSamples(t, 30) {
		jres, err := jsonNode.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		bres, err := binNode.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(jres.Vectors, bres.Vectors) {
			t.Fatalf("sample %d: binary vectors differ from JSON", i)
		}
		if jres.Degraded != bres.Degraded || jres.ColdDegraded != bres.ColdDegraded {
			t.Fatalf("sample %d: flags differ: json %+v bin %+v", i, jres, bres)
		}
		checkIdentical(t, layer, sample, bres.Vectors)
	}
}

// TestBinJSONDifferentialDegraded: a router with its only node down
// serves degraded functional-layer answers; fronted by both wires, the
// responses stay field-identical (Replica -1, Degraded set, same
// vectors).
func TestBinJSONDifferentialDegraded(t *testing.T) {
	layer := clusterLayer(t)
	fake := newFakeNode("n0", layer)
	fake.down.Store(true)
	pl := manualPlacement([]string{"n0"}, [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	r, err := NewRouter(Options{Nodes: []Node{fake}, Placement: pl, Layer: layer, ProbeInterval: -1, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	jsonNode := NewHTTPNode("json", ts.URL, nil)

	addr, _ := newBinPeer(t, RouterBackend{R: r}, layer)
	binNode := NewBinNode("bin", addr, BinNodeOptions{})
	defer binNode.Close()

	for _, sample := range clusterSamples(t, 5) {
		jres, err := jsonNode.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		bres, err := binNode.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if !jres.Degraded || !bres.Degraded {
			t.Fatalf("expected degraded answers, got json %+v bin %+v", jres.Degraded, bres.Degraded)
		}
		if !reflect.DeepEqual(jres.Vectors, bres.Vectors) {
			t.Fatal("degraded vectors differ between wires")
		}
		if jres.Replica != -1 || bres.Replica != -1 {
			t.Fatalf("router replica = %d/%d, want -1", jres.Replica, bres.Replica)
		}
	}
}

// TestBinNodeWirePrecision: fp16/int8 wire responses equal a
// quantize-then-dequantize of the canonical answer — the same single
// rounding the storage codecs guarantee.
func TestBinNodeWirePrecision(t *testing.T) {
	layer := clusterLayer(t)
	addr, _ := newBinPeer(t, &stubBinBackend{layer: layer}, layer)
	sample := clusterSamples(t, 1)[0]
	want, err := layer.ReduceSample(sample)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		prec  kernels.Precision
		check func(got, want []float32) bool
	}{
		{kernels.FP16, func(got, want []float32) bool {
			for i := range want {
				if got[i] != kernels.F16ToF32(kernels.F32ToF16(want[i])) {
					return false
				}
			}
			return true
		}},
		{kernels.INT8, func(got, want []float32) bool {
			q := make([]uint8, len(want))
			scale, zero := kernels.QuantizeI8(q, want)
			dec := make([]float32, len(want))
			kernels.DecodeI8(dec, q, scale, zero)
			return reflect.DeepEqual(got, dec)
		}},
	} {
		n := NewBinNode("bin", addr, BinNodeOptions{Precision: tc.prec})
		res, err := n.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !tc.check(res.Vectors[i], want[i]) {
				t.Errorf("precision %v: vector %d does not match single-rounded quantization", tc.prec, i)
			}
		}
		n.Close()
	}
}

// TestBinNodeConnFailureIsolation: killing one pooled conn fails only
// its own in-flight calls. The other conn's correlation IDs survive and
// its lookups complete; the next call on the dead slot redials.
func TestBinNodeConnFailureIsolation(t *testing.T) {
	layer := clusterLayer(t)
	backend := &stubBinBackend{layer: layer}
	addr, _ := newBinPeer(t, backend, layer)
	n := NewBinNode("bin", addr, BinNodeOptions{Conns: 2})
	defer n.Close()

	// Establish both pooled conns (round-robin).
	sample := withWeights(wideSample())
	for i := 0; i < 2; i++ {
		if _, err := n.Lookup(context.Background(), sample); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range n.slots {
		s.mu.Lock()
		alive := s.conn != nil
		s.mu.Unlock()
		if !alive {
			t.Fatalf("slot %d not established", i)
		}
	}

	// Stall the backend, put one in-flight lookup on each conn.
	backend.setDelay(300 * time.Millisecond)
	type out struct {
		res *serve.Result
		err error
	}
	results := make([]chan out, 2)
	for i := range results {
		results[i] = make(chan out, 1)
		go func(ch chan out) {
			res, err := n.Lookup(context.Background(), sample)
			ch <- out{res, err}
		}(results[i])
	}
	time.Sleep(50 * time.Millisecond) // both requests in flight

	// Kill one conn's socket out from under it. pickConn round-robins
	// via next, so of the two in-flight calls one is on each slot.
	n.slots[0].mu.Lock()
	victim := n.slots[0].conn
	n.slots[0].mu.Unlock()
	victim.c.Close()

	var failed, succeeded int
	for i := range results {
		o := <-results[i]
		if o.err != nil {
			if !isNodeDown(o.err) {
				t.Errorf("killed-conn lookup err = %v, want ErrNodeDown wrap", o.err)
			}
			failed++
		} else {
			checkIdentical(t, layer, sample, o.res.Vectors)
			succeeded++
		}
	}
	if failed != 1 || succeeded != 1 {
		t.Fatalf("failed=%d succeeded=%d, want exactly one of each (blast radius leaked)", failed, succeeded)
	}

	// The dead slot redials immediately (backoff only gates failed dials).
	backend.setDelay(0)
	for i := 0; i < 2; i++ {
		if _, err := n.Lookup(context.Background(), sample); err != nil {
			t.Fatalf("post-kill lookup %d: %v", i, err)
		}
	}
	if n.WireMetrics().Redials.Load() == 0 {
		t.Error("redial not counted")
	}
}

// TestBinNodeProberReadmission: a router over a BinNode marks the peer
// down when its listener dies, serves degraded meanwhile, and the
// existing prober re-admits it after a restart on the same address — no
// transport-specific recovery machinery.
func TestBinNodeProberReadmission(t *testing.T) {
	layer := clusterLayer(t)
	backend := &stubBinBackend{layer: layer}
	bs, err := NewBinServer(BinServerOptions{Backend: backend, Layer: layer})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	go bs.Serve(lis)

	n := NewBinNode("bin0", addr, BinNodeOptions{MaxBackoff: 50 * time.Millisecond})
	pl := manualPlacement([]string{"bin0"}, [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	r, err := NewRouter(Options{
		Nodes: []Node{n}, Placement: pl, Layer: layer,
		ProbeInterval: 20 * time.Millisecond, FailThreshold: 1, HedgeDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sample := withWeights(wideSample())
	if res, err := r.Lookup(context.Background(), sample); err != nil || res.Degraded {
		t.Fatalf("healthy lookup = %+v, %v", res, err)
	}

	// Kill the peer. Lookups must degrade, not error.
	bs.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := r.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatalf("lookup during outage: %v", err)
		}
		if res.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the dead binary peer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart on the same address; the prober must re-admit.
	bs2, err := NewBinServer(BinServerOptions{Backend: backend, Layer: layer})
	if err != nil {
		t.Fatal(err)
	}
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	go bs2.Serve(lis2)
	defer bs2.Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		res, err := r.Lookup(context.Background(), sample)
		if err == nil && !res.Degraded {
			checkIdentical(t, layer, sample, res.Vectors)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never re-admitted the restarted binary peer")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBinServerRejectsBadRequests: out-of-bounds tables/indices and
// unknown frame types come back as typed error frames, and the conn
// stays usable for the next request.
func TestBinServerRejectsBadRequests(t *testing.T) {
	layer := clusterLayer(t)
	addr, _ := newBinPeer(t, &stubBinBackend{layer: layer}, layer)
	n := NewBinNode("bin", addr, BinNodeOptions{Conns: 1})
	defer n.Close()

	bad := trace.Sample{{Table: 999, Kind: trace.Sum, Indices: []int64{1}, Weights: []float32{1}}}
	if _, err := n.Lookup(context.Background(), bad); err == nil {
		t.Fatal("out-of-bounds table accepted")
	} else if isNodeDown(err) {
		t.Errorf("bad request err %v must not look like a down node", err)
	}
	badIdx := trace.Sample{{Table: 0, Kind: trace.Sum, Indices: []int64{1 << 40}, Weights: []float32{1}}}
	if _, err := n.Lookup(context.Background(), badIdx); err == nil {
		t.Fatal("out-of-bounds index accepted")
	}
	// Conn survives: a good lookup still works on the same conn.
	good := withWeights(wideSample())
	res, err := n.Lookup(context.Background(), good)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, layer, good, res.Vectors)
	if dials := n.WireMetrics().Dials.Load(); dials != 1 {
		t.Errorf("dials = %d, want 1 (error frames must not burn the conn)", dials)
	}
}

// rawWireClient is a hand-written zero-allocation client for the
// node-side allocation test: every buffer is reused, responses are read
// but not decoded, so testing.AllocsPerRun (which counts mallocs
// globally) isolates the server's per-request allocations.
type rawWireClient struct {
	c     net.Conn
	br    *bufio.Reader
	hdr   [frameHeaderSize]byte
	buf   []byte
	frame []byte
	corr  uint32
}

func (rc *rawWireClient) lookup(sample trace.Sample) error {
	rc.corr++
	rc.frame = appendLookupReq(rc.frame[:0], rc.corr, sample, kernels.FP32)
	if _, err := rc.c.Write(rc.frame); err != nil {
		return err
	}
	typ, corr, _, nbuf, err := readFrame(rc.br, &rc.hdr, rc.buf)
	rc.buf = nbuf
	if err != nil {
		return err
	}
	if typ != frameLookupResp || corr != rc.corr {
		return fmt.Errorf("unexpected frame typ=%d corr=%d", typ, corr)
	}
	return nil
}

// zeroAllocBackend returns one pre-built result, so the measured
// allocations are the transport's own.
type zeroAllocBackend struct{ res *serve.Result }

func (b *zeroAllocBackend) Lookup(context.Context, trace.Sample) (*serve.Result, error) {
	return b.res, nil
}
func (b *zeroAllocBackend) Health() serve.HealthReport { return serve.HealthReport{Status: "ok"} }

// newZeroAllocRig wires a raw client to a BinServer over TCP.
func newZeroAllocRig(t testing.TB) (*rawWireClient, trace.Sample) {
	t.Helper()
	layer, err := embedding.NewLayer(clusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	sample := withWeights(wideSample())
	vecs, err := layer.ReduceSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	backend := &zeroAllocBackend{res: &serve.Result{Vectors: vecs, BatchSize: 1, ServiceCycles: 100}}
	bs, err := NewBinServer(BinServerOptions{Backend: backend, Layer: layer, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go bs.Serve(lis)
	t.Cleanup(func() { bs.Close() })
	c, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawWireClient{c: c, br: bufio.NewReaderSize(c, 64<<10)}, sample
}

// TestBinServerZeroAllocSteadyState: the node-side request path —
// frame read, payload copy, arena decode, backend call, response
// encode, write — allocates nothing per round trip once warm.
func TestBinServerZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	rc, sample := newZeroAllocRig(t)
	// Warm every pool and grow every arena.
	for i := 0; i < 50; i++ {
		if err := rc.lookup(sample); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := rc.lookup(sample); err != nil {
			t.Fatal(err)
		}
	})
	// The client side is hand-rolled to zero allocations, so any
	// systematic server-side allocation shows up as avg >= 1. Allow a
	// fractional residue for GC-cleared sync.Pools mid-run.
	if avg >= 1 {
		t.Fatalf("steady-state round trip allocates %.2f allocs/op, want 0", avg)
	}
}

// BenchmarkWireRoundTrip measures one multiplexed round trip over
// loopback TCP through the full server path (report: allocs/op covers
// both the hand-rolled client at zero and the server).
func BenchmarkWireRoundTrip(b *testing.B) {
	rc, sample := newZeroAllocRig(b)
	for i := 0; i < 20; i++ {
		if err := rc.lookup(sample); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rc.lookup(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeLookupResp measures pure response encoding at each
// wire precision.
func BenchmarkWireEncodeLookupResp(b *testing.B) {
	vec := make([]float32, 64)
	for i := range vec {
		vec[i] = float32(i) * 0.37
	}
	res := &serve.Result{Vectors: [][]float32{vec, vec, vec, vec, vec, vec, vec, vec}, BatchSize: 1}
	for _, tc := range []struct {
		name string
		prec kernels.Precision
	}{{"fp32", kernels.FP32}, {"fp16", kernels.FP16}, {"int8", kernels.INT8}} {
		b.Run(tc.name, func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = appendLookupResp(buf[:0], uint32(i), res, tc.prec)
			}
		})
	}
}
