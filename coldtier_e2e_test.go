package recross

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"recross/internal/partition"
)

// coldSpec is ~23 MB of embedding tables; with the 5 MB DRAM residency
// budget below, the table set is ~4.4x larger than the memory it is
// allowed to occupy — the regime the flash-backed cold tier exists for.
func coldSpec() ModelSpec {
	return ModelSpec{Name: "coldtier-e2e", Tables: []TableSpec{
		{Name: "big-a", Rows: 60000, VecLen: 64, Pooling: 48, Prob: 1, Skew: 1.3},
		{Name: "big-b", Rows: 30000, VecLen: 64, Pooling: 32, Prob: 1, Skew: 1.2},
	}}
}

const coldBudgetBytes = 5 << 20

func coldTierConfig() *ColdTierConfig {
	return &ColdTierConfig{
		CapBytes:            64 << 20,
		ResidentBudgetBytes: coldBudgetBytes,
		InStorageReduce:     true,
	}
}

// TestColdTierE2E is the acceptance run for the flash-backed cold tier: a
// table set ~4.4x larger than the DRAM residency budget is served with
// bounded latency, answers stay bit-identical to an all-DRAM functional
// reference, and a mid-run hot-set shift drives at least one sketch-driven
// cold->DRAM promotion and one DRAM->cold demotion through the adaptive
// controller's hysteresis gate.
func TestColdTierE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second acceptance run")
	}
	spec := coldSpec()
	var totalBytes int64
	for _, tb := range spec.Tables {
		totalBytes += tb.Rows * int64(tb.VecLen) * 4
	}
	if totalBytes < 4*coldBudgetBytes {
		t.Fatalf("spec %d B is under 4x the %d B budget", totalBytes, int64(coldBudgetBytes))
	}

	cfg := Config{Spec: spec, ProfileSamples: 1500, Batch: 32, Cold: coldTierConfig()}
	cfg, err := cfg.profiled(ReCross)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: without the cold region, the budget-clamped DRAM regions
	// cannot hold the tables — both partitioners must fail to fit.
	sys, err := NewSystem(ReCross, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := sys.(*ReCrossSystem)
	regions := rc.Regions()
	if len(regions) != 4 {
		t.Fatalf("cold-tier ReCross has %d regions, want 4", len(regions))
	}
	dramOnly := regions[:3]
	if _, err := partition.SolveLP(rc.Profile(), dramOnly, cfg.Batch); err == nil {
		t.Fatal("LP placed the table set in DRAM alone despite the residency budget")
	}
	if _, err := partition.Greedy(rc.Profile(), dramOnly, cfg.Batch); err == nil {
		t.Fatal("greedy placed the table set in DRAM alone despite the residency budget")
	}

	// With the cold region the set places: DRAM stays within the budget and
	// the cold tier holds the displaced mass.
	used := rc.Placement().UsedSlots()
	vecBytes := rc.Placement().VecBytes()
	var dramUsed int64
	for j := 0; j < 3; j++ {
		dramUsed += used[j] * vecBytes
	}
	if dramUsed > coldBudgetBytes {
		t.Fatalf("DRAM regions hold %d B, budget %d B", dramUsed, int64(coldBudgetBytes))
	}
	if used[3] == 0 {
		t.Fatal("cold region holds no rows")
	}

	// A cold-placed batch must report cold-tier work in its run stats.
	gen0, err := NewGenerator(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Run(gen0.Batch(32))
	if err != nil {
		t.Fatal(err)
	}
	if st.ColdLookups == 0 || st.ColdPageReads == 0 {
		t.Fatalf("batch recorded no cold-tier work: %+v", st)
	}
	if st.ColdCycles == 0 {
		t.Fatal("cold gathers priced at zero cycles")
	}

	srv, ctrl, err := NewAdaptiveServer(ReCross, cfg, 2, ServeOptions{
		MaxBatch: 32,
		MaxDelay: 50 * time.Millisecond,
	}, AdaptOptions{
		Threshold:       0.12,
		Windows:         2,
		MinGain:         0.05,
		AmortizeBatches: 1_000_000,
		MinSamples:      400,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// All-DRAM functional reference: a fresh layer with no cold route.
	ref, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	const waves, batch = 14, 32

	// Phase 1: stationary traffic through the cold-backed data plane.
	for w := 0; w < 3; w++ {
		serveWindow(t, srv, gen, waves, batch)
		if res := ctrl.Step(); res.Adopted {
			t.Fatalf("window %d: adopted a repartition on stationary traffic", w)
		}
	}

	// Phase 2: permute the hot set. Yesterday's hot rows cool off (their
	// replacements sit on flash), so the adopted repartition must both
	// promote newly-hot cold rows into DRAM and demote cooled DRAM rows.
	if err := gen.ShiftHotSet(424242); err != nil {
		t.Fatal(err)
	}
	adoptedAt := -1
	for w := 0; w < 10; w++ {
		serveWindow(t, srv, gen, waves, batch)
		res := ctrl.Step()
		if res.Err != nil {
			t.Fatalf("window %d: %v", w, res.Err)
		}
		if res.Adopted {
			adoptedAt = w
			break
		}
	}
	if adoptedAt < 0 {
		t.Fatalf("no repartition adopted within 10 post-shift windows (metrics %+v)", ctrl.Metrics())
	}
	m := ctrl.Metrics()
	if m.ColdPromotedRows <= 0 {
		t.Fatalf("no cold->DRAM promotions through the gate: %+v", m)
	}
	if m.ColdDemotedRows <= 0 {
		t.Fatalf("no DRAM->cold demotions through the gate: %+v", m)
	}

	// Phase 3: post-adoption answers are bit-identical to the all-DRAM
	// reference (the cold store serves reference bits, the remap changed
	// only page layout).
	for i := 0; i < 30; i++ {
		sample := gen.Sample()
		res, err := srv.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ReduceSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !AlmostEqual(res.Vectors[k], want[k], 0) {
				t.Fatalf("sample %d op %d: served vector differs from all-DRAM reference", i, k)
			}
		}
	}

	// Phase 4: bounded tail latency under tail-heavy load (the -tail-mass
	// knob redirects a quarter of draws at the cold half of the rank space).
	rep, err := Loadgen(srv, LoadgenOptions{
		Spec:     spec,
		Clients:  4,
		Duration: 1200 * time.Millisecond,
		TailMass: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen completed no requests")
	}
	if rep.P99 <= 0 || rep.P99 > 2*time.Second {
		t.Fatalf("p99 %v not bounded", rep.P99)
	}

	// Phase 5: the coldstore and adapt cold series ride /metrics, with
	// real traffic behind them.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"recross_coldstore_row_reads_total",
		"recross_coldstore_page_hits_total",
		"recross_coldstore_page_misses_total",
		"recross_coldstore_page_reads_total",
		"recross_coldstore_pages_populated_total",
		"recross_coldstore_remaps_total",
		"recross_coldstore_page_hit_rate",
		"recross_adapt_cold_promoted_rows_total",
		"recross_adapt_cold_demoted_rows_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
	if strings.Contains(string(body), "recross_coldstore_row_reads_total 0\n") {
		t.Fatal("cold store served no row reads")
	}
	if strings.Contains(string(body), "recross_coldstore_remaps_total 0\n") {
		t.Fatal("adoption did not remap the cold store")
	}
}
