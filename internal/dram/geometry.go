// Package dram models a DDR5 main-memory channel at DRAM-command
// granularity: per-bank state machines enforcing the full timing-constraint
// set of the paper's Table 2 (tRCD, tCL, tRP, tRAS, tRC, tBL, tCCD_S/L,
// tFAW, tRRD_S/L), open-page row-buffer policy, the data-path occupancy
// rules that distinguish host-, rank-, bank-group- and bank-level consumers,
// and the subarray-level parallelism (SALP) extension ReCross adds to
// B-region banks (per-subarray local row buffers decoupled from the global
// bitlines, with the new tRA read-to-select constraint).
//
// This package is the substitution for the modified Ramulator the paper
// evaluates on (DESIGN.md §3): command-level rather than cycle-ticked, but
// enforcing the same constraints, with event-driven time skipping.
package dram

import "fmt"

// Geometry describes the organisation of one memory channel, following the
// paper's Table 2: DDR5 x8 devices, 1 DIMM per channel, 2 ranks per DIMM,
// 8 bank groups per rank, 4 banks per bank group, 256 subarrays per bank.
type Geometry struct {
	Ranks           int
	BankGroups      int // per rank
	Banks           int // per bank group
	Subarrays       int // per bank
	RowsPerSubarray int
	RowBytes        int // logical row size across the lock-stepped chips
	BurstBytes      int // bytes delivered per RD burst (DDR5 sub-channel: 64)
}

// DDR5 returns the paper's default geometry with the given rank count.
// Each bank is 512 MB (64 Ki rows x 8 KB), so a 2-rank channel holds 32 GB.
func DDR5(ranks int) Geometry {
	return Geometry{
		Ranks:           ranks,
		BankGroups:      8,
		Banks:           4,
		Subarrays:       256,
		RowsPerSubarray: 256,
		RowBytes:        8192,
		BurstBytes:      64,
	}
}

// DDR4 returns a DDR4 organisation (§2.2: half the bank groups of DDR5,
// same banks per group): 16 banks per rank, 512 MB each from 8 Gb x8
// devices, so a 2-rank channel holds 16 GB. Timings are in DDR4-3200
// cycles (1600 MHz clock); see DDR4Timing.
func DDR4(ranks int) Geometry {
	return Geometry{
		Ranks:           ranks,
		BankGroups:      4,
		Banks:           4,
		Subarrays:       256,
		RowsPerSubarray: 256,
		RowBytes:        8192,
		BurstBytes:      64,
	}
}

// Validate reports the first structural problem with the geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0:
		return fmt.Errorf("dram: ranks must be positive, got %d", g.Ranks)
	case g.BankGroups <= 0:
		return fmt.Errorf("dram: bank groups must be positive, got %d", g.BankGroups)
	case g.Banks <= 0:
		return fmt.Errorf("dram: banks per group must be positive, got %d", g.Banks)
	case g.Subarrays <= 0:
		return fmt.Errorf("dram: subarrays must be positive, got %d", g.Subarrays)
	case g.RowsPerSubarray <= 0:
		return fmt.Errorf("dram: rows per subarray must be positive, got %d", g.RowsPerSubarray)
	case g.RowBytes <= 0 || g.BurstBytes <= 0:
		return fmt.Errorf("dram: row/burst bytes must be positive")
	case g.RowBytes%g.BurstBytes != 0:
		return fmt.Errorf("dram: row size %d not a multiple of burst size %d", g.RowBytes, g.BurstBytes)
	}
	return nil
}

// TotalBanks returns the number of banks in the channel.
func (g Geometry) TotalBanks() int { return g.Ranks * g.BankGroups * g.Banks }

// BanksPerRank returns the number of banks in one rank.
func (g Geometry) BanksPerRank() int { return g.BankGroups * g.Banks }

// ColumnsPerRow returns the number of RD bursts needed to stream a full row.
func (g Geometry) ColumnsPerRow() int { return g.RowBytes / g.BurstBytes }

// RowsPerBank returns the number of rows in one bank.
func (g Geometry) RowsPerBank() int { return g.Subarrays * g.RowsPerSubarray }

// BankBytes returns the capacity of one bank.
func (g Geometry) BankBytes() int64 {
	return int64(g.RowsPerBank()) * int64(g.RowBytes)
}

// ChannelBytes returns the capacity of the whole channel.
func (g Geometry) ChannelBytes() int64 {
	return g.BankBytes() * int64(g.TotalBanks())
}

// Loc addresses one burst-aligned column within the channel.
type Loc struct {
	Rank int
	BG   int // bank group within rank
	Bank int // bank within bank group
	Row  int // row within bank (0 .. RowsPerBank)
	Col  int // burst column within row (0 .. ColumnsPerRow)
}

// Subarray returns the subarray index the row falls in.
func (g Geometry) Subarray(row int) int { return row / g.RowsPerSubarray }

// FlatBank returns the channel-wide dense index of the bank at l.
func (g Geometry) FlatBank(l Loc) int {
	return (l.Rank*g.BankGroups+l.BG)*g.Banks + l.Bank
}

// FlatBG returns the channel-wide dense index of the bank group at l.
func (g Geometry) FlatBG(l Loc) int { return l.Rank*g.BankGroups + l.BG }

// BankLoc returns the (rank, bg, bank) coordinates of a flat bank index.
func (g Geometry) BankLoc(flat int) (rank, bg, bank int) {
	bank = flat % g.Banks
	flat /= g.Banks
	bg = flat % g.BankGroups
	rank = flat / g.BankGroups
	return rank, bg, bank
}

// CheckLoc reports whether l is within the geometry.
func (g Geometry) CheckLoc(l Loc) error {
	switch {
	case l.Rank < 0 || l.Rank >= g.Ranks:
		return fmt.Errorf("dram: rank %d out of [0,%d)", l.Rank, g.Ranks)
	case l.BG < 0 || l.BG >= g.BankGroups:
		return fmt.Errorf("dram: bank group %d out of [0,%d)", l.BG, g.BankGroups)
	case l.Bank < 0 || l.Bank >= g.Banks:
		return fmt.Errorf("dram: bank %d out of [0,%d)", l.Bank, g.Banks)
	case l.Row < 0 || l.Row >= g.RowsPerBank():
		return fmt.Errorf("dram: row %d out of [0,%d)", l.Row, g.RowsPerBank())
	case l.Col < 0 || l.Col >= g.ColumnsPerRow():
		return fmt.Errorf("dram: column %d out of [0,%d)", l.Col, g.ColumnsPerRow())
	}
	return nil
}
