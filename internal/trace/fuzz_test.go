package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBatch throws arbitrary text at the trace parser: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadBatch(f *testing.F) {
	f.Add("recross-trace v1\nS\nO 0\n1 0.5\n")
	f.Add("recross-trace v1\n# comment\nS\nO 3\n9 1\n10 2\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ReadBatch(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBatch(&buf, b); err != nil {
			t.Fatalf("accepted batch does not serialize: %v", err)
		}
		b2, err := ReadBatch(&buf)
		if err != nil {
			t.Fatalf("serialized batch does not parse: %v", err)
		}
		if len(b2) != len(b) {
			t.Fatalf("round trip changed sample count: %d -> %d", len(b), len(b2))
		}
	})
}
