package embedding

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// RowCache is a sharded software cache of materialized embedding rows,
// keyed (table, index). It exists because the default tables are
// procedural: every lookup regenerates the whole row element-by-element
// through splitmix hashing, so under the power-law access streams of
// recommendation workloads the same hot head rows are re-hashed millions
// of times. RecNMP (Ke et al.) makes memory-side caching of hot embedding
// entries its highest-leverage optimization for exactly this reason; the
// RowCache is the software data plane's version of that cache.
//
// Design:
//
//   - Sharding: keys hash across a power-of-two shard set (default 16),
//     each shard with its own mutex, so concurrent serving goroutines
//     touching different rows rarely contend.
//   - Storage: each shard owns one flat float32 arena of slots*vecLen,
//     so a fill copies into place and the cache performs zero per-entry
//     allocations after construction.
//   - Eviction: CLOCK (second chance). A hit sets the slot's reference
//     bit; the shard's hand sweeps slots clearing reference bits until it
//     finds a cold one to replace. CLOCK approximates LRU at a fraction
//     of the bookkeeping and needs no per-access list surgery.
//   - Admission: an optional frequency hint (SetAdmit) gates fills, fed
//     from the adaptive layer's Space-Saving tracker when present, so a
//     cold scan cannot flush the resident hot set. Lookups always probe
//     regardless of the hint.
//
// Get copies the row out under the shard lock (a vecLen float32 copy is
// far cheaper than re-hashing the row and keeps readers safe against a
// concurrent eviction reusing the slot), so all methods are safe for
// concurrent use.
type RowCache struct {
	shards  []rowShard
	mask    uint64
	vecLen  int
	slots   int // per shard
	capMask uint64

	// admit is an optional frequency admission hint (atomic so the
	// adaptive controller can install it after serving has started).
	admit atomic.Pointer[func(table int, idx int64) bool]

	// logicalRowBytes is the serialized size one cached row occupies in
	// the backing store (quantized layers: the code size, not the resident
	// fp32 footprint). Drives the Stats compression accounting; defaults
	// to vecLen*4. Atomic so attaching a quantized layer after
	// construction is race-safe against Stats readers.
	logicalRowBytes atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
}

// rowShard is one lock domain: a power-of-two slot array with CLOCK state
// and an open-addressed index from key to slot.
type rowShard struct {
	mu   sync.Mutex
	keys []uint64 // slot -> key (0 = empty; keys are made non-zero)
	ref  []uint8  // slot -> CLOCK reference bit
	data []float32
	idx  map[uint64]int32 // key -> slot
	hand int
	used int
	_    [24]byte // soften false sharing between neighbouring shards
}

// rowCacheShards is the default shard count (power of two).
const rowCacheShards = 16

// NewRowCache builds a cache with a total budget of sizeBytes for rows of
// vecLen float32 elements. The per-shard slot count is rounded down to a
// power of two; sizeBytes must afford at least one slot per shard.
func NewRowCache(sizeBytes int64, vecLen int) (*RowCache, error) {
	if vecLen <= 0 {
		return nil, fmt.Errorf("embedding: row cache vecLen %d <= 0", vecLen)
	}
	rowBytes := int64(vecLen) * 4
	totalSlots := sizeBytes / rowBytes
	perShard := totalSlots / rowCacheShards
	// Round down to a power of two so CLOCK hands and future open-addressed
	// probing stay mask-based.
	slots := 1
	for slots*2 <= int(perShard) {
		slots *= 2
	}
	if perShard < 1 {
		return nil, fmt.Errorf("embedding: row cache budget %d B affords no slots (%d B/row x %d shards)",
			sizeBytes, rowBytes, rowCacheShards)
	}
	c := &RowCache{
		shards: make([]rowShard, rowCacheShards),
		mask:   rowCacheShards - 1,
		vecLen: vecLen,
		slots:  slots,
	}
	for i := range c.shards {
		c.shards[i] = rowShard{
			keys: make([]uint64, slots),
			ref:  make([]uint8, slots),
			data: make([]float32, slots*vecLen),
			idx:  make(map[uint64]int32, slots),
		}
	}
	c.logicalRowBytes.Store(rowBytes)
	return c, nil
}

// SetLogicalRowBytes records the backing-store (precision-aware) size of
// one row, for the Stats compression accounting. Resident rows are always
// fp32; this only changes what LogicalBytes reports. Safe while serving.
func (c *RowCache) SetLogicalRowBytes(n int64) {
	if n <= 0 {
		n = int64(c.vecLen) * 4
	}
	c.logicalRowBytes.Store(n)
}

// SetAdmit installs the frequency admission hint: fills for rows the hint
// rejects are skipped (lookups still probe). A nil hint admits everything.
// Safe to call while the cache is serving.
func (c *RowCache) SetAdmit(admit func(table int, idx int64) bool) {
	if admit == nil {
		c.admit.Store(nil)
		return
	}
	c.admit.Store(&admit)
}

// rowKey packs (table, idx) into one non-zero uint64: 23 bits of table,
// 40 bits of row index (production caps at 40M rows), and a forced top
// bit so 0 can mean "empty slot".
func rowKey(table int, idx int64) uint64 {
	return 1<<63 | uint64(table)<<40 | (uint64(idx) & (1<<40 - 1))
}

// shardOf mixes the key and selects a shard.
func (c *RowCache) shardOf(key uint64) *rowShard {
	return &c.shards[splitmix(key)&c.mask]
}

// Get probes for (table, idx) and on a hit copies the row into dst
// (len >= vecLen) and returns true. A hit sets the slot's CLOCK bit.
func (c *RowCache) Get(table int, idx int64, dst []float32) bool {
	key := rowKey(table, idx)
	sh := c.shardOf(key)
	sh.mu.Lock()
	slot, ok := sh.idx[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	sh.ref[slot] = 1
	copy(dst[:c.vecLen], sh.data[int(slot)*c.vecLen:])
	sh.mu.Unlock()
	c.hits.Add(1)
	return true
}

// Put fills (table, idx) with row (len >= vecLen), evicting via CLOCK if
// the shard is full. Fills the admission hint rejects are dropped.
func (c *RowCache) Put(table int, idx int64, row []float32) {
	if p := c.admit.Load(); p != nil && !(*p)(table, idx) {
		return
	}
	key := rowKey(table, idx)
	sh := c.shardOf(key)
	sh.mu.Lock()
	if slot, ok := sh.idx[key]; ok {
		// Already resident (another goroutine raced the same miss);
		// refresh the data and reference bit.
		copy(sh.data[int(slot)*c.vecLen:(int(slot)+1)*c.vecLen], row)
		sh.ref[slot] = 1
		sh.mu.Unlock()
		return
	}
	var slot int32
	if sh.used < len(sh.keys) {
		// Cold fill: take the next unused slot.
		slot = int32(sh.used)
		sh.used++
		c.entries.Add(1)
	} else {
		// CLOCK sweep: clear reference bits until a cold slot appears.
		// Bounded: after one full lap every bit is clear.
		for {
			if sh.ref[sh.hand] == 0 {
				break
			}
			sh.ref[sh.hand] = 0
			sh.hand = (sh.hand + 1) & (len(sh.keys) - 1)
		}
		slot = int32(sh.hand)
		sh.hand = (sh.hand + 1) & (len(sh.keys) - 1)
		delete(sh.idx, sh.keys[slot])
		c.evictions.Add(1)
	}
	sh.keys[slot] = key
	sh.ref[slot] = 1
	sh.idx[key] = slot
	copy(sh.data[int(slot)*c.vecLen:(int(slot)+1)*c.vecLen], row)
	sh.mu.Unlock()
}

// VecLen returns the row width the cache was built for.
func (c *RowCache) VecLen() int { return c.vecLen }

// RowCacheStats is a point-in-time counter snapshot.
type RowCacheStats struct {
	// Hits and Misses count Get probes.
	Hits, Misses int64
	// Evictions counts CLOCK replacements of resident rows.
	Evictions int64
	// Entries is the resident row count; Bytes its resident fp32
	// footprint (cached rows are always dequantized float32).
	Entries int64
	Bytes   int64
	// LogicalBytes is what the same rows occupy at the backing store's
	// precision (SetLogicalRowBytes); equal to Bytes for fp32 layers.
	LogicalBytes int64
	// CapBytes is the cache's row-data capacity.
	CapBytes int64
}

// CompressionRatio is Bytes/LogicalBytes — how much larger the resident
// fp32 rows are than their backing-store form (1 for fp32 layers, 0
// before any fill).
func (s RowCacheStats) CompressionRatio() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.LogicalBytes)
}

// HitRate returns Hits/(Hits+Misses), or 0 before any probe.
func (s RowCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters.
func (c *RowCache) Stats() RowCacheStats {
	entries := c.entries.Load()
	rowBytes := int64(c.vecLen) * 4
	return RowCacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Entries:      entries,
		Bytes:        entries * rowBytes,
		LogicalBytes: entries * c.logicalRowBytes.Load(),
		CapBytes:     int64(c.slots) * rowCacheShards * rowBytes,
	}
}
