package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/embedding"
	"recross/internal/kernels"
	"recross/internal/serve"
	"recross/internal/sim"
	"recross/internal/trace"
)

// The binary wire protocol. The cluster's hot path moves embedding
// vectors, and JSON moves them as decimal text — ~4-5x the bytes and
// an encode/decode CPU tax on every scatter-gather sub-request. This
// codec is the data-movement fix one level above the paper's: a
// length-prefixed frame whose sections are varint/fixed-width fields
// and whose result vectors are raw little-endian float32 bits
// (optionally fp16/int8 on the wire, re-using the storage codecs with
// the same single rounding so decoded responses stay canonical).
//
// Frame layout (12-byte header, all multi-byte fields little-endian):
//
//	[0:2]  magic "rX"
//	[2]    version (1)
//	[3]    frame type
//	[4:8]  correlation ID (echoed verbatim in the response frame)
//	[8:12] payload length (bounded by maxFramePayload)
//
// Lookup request payload:
//
//	[0]     requested response precision (0 fp32, 1 fp16, 2 int8)
//	uvarint op count, then per op:
//	  uvarint table · 1B reduce kind · uvarint index count ·
//	  count uvarint indices · count×4B raw float32 weights
//
// The kind byte's high bit (opFlagOnesWeights) marks an op whose
// weight block is omitted: the decoder materializes exact ones. The
// encoder sets it for nil weights (mirroring how the JSON wire omits
// the field and serve.ParseSample defaults it) and for sum/max ops,
// whose reductions ignore weights entirely — shipping ignored bytes
// would tax the dominant unweighted-pooling case 4 bytes per gather.
//
// Requests always carry exact fp32 weights when present: wire
// precision is an opt-in response-vector compression, never a request
// lossiness.
//
// Lookup response payload:
//
//	[0]     flags (bit0 degraded, bit1 cold-degraded)
//	[1]     vector precision actually used
//	uvarint batch size · uvarint service cycles · zigzag replica ·
//	uvarint retries · 8B float64-bits queue µs · 8B float64-bits
//	total µs · uvarint vector count, then per vector:
//	  uvarint element count ·
//	  fp32: count×4B raw bits | fp16: count×2B | int8: 4B scale +
//	  4B zero-point + count bytes
//
// Error payload: 1B code + uvarint-length message. Health responses
// carry the serve.HealthReport as JSON — the probe path is not hot.
const (
	wireMagic0 = 'r'
	wireMagic1 = 'X'
	// wireVersion is bumped on any incompatible layout change; peers
	// reject mismatches at the first frame.
	wireVersion = 1

	frameHeaderSize = 12
	// maxFramePayload bounds one frame (16 MiB: a 4k-op sample of 4k-dim
	// fp32 vectors fits with room to spare).
	maxFramePayload = 1 << 24
)

// Frame types.
const (
	frameLookupReq  = 1
	frameLookupResp = 2
	frameHealthReq  = 3
	frameHealthResp = 4
	frameErr        = 5
)

// Error frame codes.
const (
	errCodeBadRequest  = 1 // malformed or out-of-bounds request
	errCodeUnavailable = 2 // node not serving (draining, closed)
	errCodeInternal    = 3 // backend failure
)

// opFlagOnesWeights on the request kind byte marks an op with no
// explicit weight block: every weight is exactly 1.0.
const opFlagOnesWeights = 0x80

// Codec errors.
var (
	errBadMagic   = errors.New("cluster: wire: bad magic")
	errBadVersion = errors.New("cluster: wire: version mismatch")
	errFrameSize  = errors.New("cluster: wire: frame exceeds size bound")
	errTruncated  = errors.New("cluster: wire: truncated payload")
)

// wireBuf is a pooled frame buffer. Both transport ends encode into
// and copy payloads through these so the steady-state round trip
// allocates nothing: Get/Put recycle capacity grown on first use.
type wireBuf struct {
	b []byte
}

var wireBufPool = sync.Pool{New: func() any { return &wireBuf{} }}

func getWireBuf() *wireBuf  { return wireBufPool.Get().(*wireBuf) }
func putWireBuf(w *wireBuf) { w.b = w.b[:0]; wireBufPool.Put(w) }

// beginFrame appends a frame header with a zero payload length;
// endFrame patches the length once the payload is in place.
func beginFrame(dst []byte, typ byte, corr uint32) []byte {
	dst = append(dst, wireMagic0, wireMagic1, wireVersion, typ)
	dst = binary.LittleEndian.AppendUint32(dst, corr)
	return binary.LittleEndian.AppendUint32(dst, 0)
}

func endFrame(b []byte, start int) []byte {
	binary.LittleEndian.PutUint32(b[start+8:start+12], uint32(len(b)-start-frameHeaderSize))
	return b
}

// appendLookupReq encodes one sample as a lookup-request frame.
func appendLookupReq(dst []byte, corr uint32, sample trace.Sample, prec kernels.Precision) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameLookupReq, corr)
	dst = append(dst, byte(prec))
	dst = binary.AppendUvarint(dst, uint64(len(sample)))
	for _, op := range sample {
		dst = binary.AppendUvarint(dst, uint64(op.Table))
		// Nil weights are implicit exact ones (serve.ParseSample's
		// defaulting), and sum/max reductions ignore weights entirely:
		// either way the weight block stays off the wire, flagged on the
		// kind byte so the decoder materializes ones.
		elideWeights := op.Weights == nil || op.Kind != trace.WeightedSum
		if elideWeights {
			dst = append(dst, byte(op.Kind)|opFlagOnesWeights)
		} else {
			dst = append(dst, byte(op.Kind))
		}
		dst = binary.AppendUvarint(dst, uint64(len(op.Indices)))
		for _, ix := range op.Indices {
			dst = binary.AppendUvarint(dst, uint64(ix))
		}
		if !elideWeights {
			for _, w := range op.Weights {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(w))
			}
		}
	}
	return endFrame(dst, start)
}

// reqArena is the server-side decode arena: one per pooled request so
// a conn's steady state re-uses every slice. Ops alias the shared
// index/weight backing arrays, which are re-sliced after the single
// decode pass (appending as we go could move the backing array out
// from under earlier ops).
type reqArena struct {
	ops  []trace.Op
	offs []int // per-op offset into idx/w
	cnts []int // per-op index count
	idx  []int64
	w    []float32
}

// decodeLookupReq decodes a lookup-request payload into the arena and
// returns the sample (aliasing arena storage — valid until the next
// decode) plus the requested response precision. When layer is
// non-nil, tables, indices and kinds are bounds-checked against it,
// mirroring serve.ParseSample's validation.
func decodeLookupReq(payload []byte, a *reqArena, layer *embedding.Layer) (trace.Sample, kernels.Precision, error) {
	if len(payload) < 2 {
		return nil, 0, errTruncated
	}
	prec := kernels.Precision(payload[0])
	if prec > kernels.INT8 {
		return nil, 0, fmt.Errorf("cluster: wire: unknown precision %d", payload[0])
	}
	p := payload[1:]
	nOps, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, 0, errTruncated
	}
	p = p[n:]
	if nOps == 0 {
		return nil, 0, errors.New("cluster: wire: no ops in request")
	}
	// Each op costs >= 3 bytes (table, kind, count); a corrupt count
	// cannot force a huge allocation.
	if nOps > uint64(len(p))/3+1 {
		return nil, 0, errTruncated
	}
	a.ops = a.ops[:0]
	a.offs = a.offs[:0]
	a.cnts = a.cnts[:0]
	a.idx = a.idx[:0]
	a.w = a.w[:0]
	for i := uint64(0); i < nOps; i++ {
		table, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, 0, errTruncated
		}
		p = p[n:]
		if len(p) < 1 {
			return nil, 0, errTruncated
		}
		onesWeights := p[0]&opFlagOnesWeights != 0
		kind := trace.ReduceKind(p[0] &^ opFlagOnesWeights)
		p = p[1:]
		if kind > trace.Max {
			return nil, 0, fmt.Errorf("cluster: wire: op %d: unknown reduce kind %d", i, kind)
		}
		cnt, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, 0, errTruncated
		}
		p = p[n:]
		if cnt == 0 {
			return nil, 0, fmt.Errorf("cluster: wire: op %d: no indices", i)
		}
		// Indices are >= 1 byte each and weights exactly 4: bound before
		// allocating arena room.
		if cnt > uint64(len(p)) {
			return nil, 0, errTruncated
		}
		var rows int64 = math.MaxInt64
		if layer != nil {
			if int(table) >= layer.Tables() {
				return nil, 0, fmt.Errorf("cluster: wire: op %d: table %d out of [0,%d)", i, table, layer.Tables())
			}
			rows = layer.Table(int(table)).Rows()
		}
		off := len(a.idx)
		for j := uint64(0); j < cnt; j++ {
			ix, n := binary.Uvarint(p)
			if n <= 0 {
				return nil, 0, errTruncated
			}
			p = p[n:]
			if int64(ix) < 0 || int64(ix) >= rows {
				return nil, 0, fmt.Errorf("cluster: wire: op %d: index %d out of [0,%d)", i, ix, rows)
			}
			a.idx = append(a.idx, int64(ix))
		}
		if onesWeights {
			for j := uint64(0); j < cnt; j++ {
				a.w = append(a.w, 1)
			}
		} else {
			if uint64(len(p)) < 4*cnt {
				return nil, 0, errTruncated
			}
			for j := uint64(0); j < cnt; j++ {
				a.w = append(a.w, math.Float32frombits(binary.LittleEndian.Uint32(p)))
				p = p[4:]
			}
		}
		a.ops = append(a.ops, trace.Op{Table: int(table), Kind: kind})
		a.offs = append(a.offs, off)
		a.cnts = append(a.cnts, int(cnt))
	}
	// Arena backing arrays are final: alias the per-op windows.
	for i := range a.ops {
		a.ops[i].Indices = a.idx[a.offs[i] : a.offs[i]+a.cnts[i]]
		a.ops[i].Weights = a.w[a.offs[i] : a.offs[i]+a.cnts[i]]
	}
	return trace.Sample(a.ops), prec, nil
}

// Response flag bits.
const (
	respDegraded     = 1 << 0
	respColdDegraded = 1 << 1
)

// appendLookupResp encodes one serve.Result as a lookup-response
// frame, compressing vectors to the requested wire precision. fp32 is
// raw float bits (bit-identical); fp16/int8 re-use the storage codecs
// with the same single rounding (kernels.F32ToF16 / QuantizeI8), so a
// decoded response matches a quantize-then-dequantize of the
// canonical answer exactly.
func appendLookupResp(dst []byte, corr uint32, res *serve.Result, prec kernels.Precision) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameLookupResp, corr)
	var flags byte
	if res.Degraded {
		flags |= respDegraded
	}
	if res.ColdDegraded {
		flags |= respColdDegraded
	}
	dst = append(dst, flags, byte(prec))
	dst = binary.AppendUvarint(dst, uint64(res.BatchSize))
	dst = binary.AppendUvarint(dst, uint64(res.ServiceCycles))
	dst = binary.AppendVarint(dst, int64(res.Replica))
	dst = binary.AppendUvarint(dst, uint64(res.Retries))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(res.QueueWait.Nanoseconds())/1e3))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(res.Total.Nanoseconds())/1e3))
	dst = binary.AppendUvarint(dst, uint64(len(res.Vectors)))
	for _, vec := range res.Vectors {
		dst = binary.AppendUvarint(dst, uint64(len(vec)))
		switch prec {
		case kernels.FP16:
			for _, v := range vec {
				dst = binary.LittleEndian.AppendUint16(dst, kernels.F32ToF16(v))
			}
		case kernels.INT8:
			// Layout: scale + zero-point, then the quantized bytes.
			// Reserve the prefix, quantize straight into the frame, then
			// patch the prefix with the derived parameters.
			at := len(dst)
			dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
			for range vec {
				dst = append(dst, 0)
			}
			scale, zero := kernels.QuantizeI8(dst[at+8:], vec)
			binary.LittleEndian.PutUint32(dst[at:], math.Float32bits(scale))
			binary.LittleEndian.PutUint32(dst[at+4:], uint32(zero))
		default: // FP32: raw bits, bit-identical
			for _, v := range vec {
				dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
			}
		}
	}
	return endFrame(dst, start)
}

// decodeLookupResp decodes a lookup-response payload into a fresh
// serve.Result. Wall-clock fields round-trip through the same
// micros-float64 arithmetic as the JSON path (serve.LookupResponse),
// so both transports reconstruct identical Results.
func decodeLookupResp(payload []byte) (*serve.Result, error) {
	if len(payload) < 2 {
		return nil, errTruncated
	}
	flags := payload[0]
	prec := kernels.Precision(payload[1])
	if prec > kernels.INT8 {
		return nil, fmt.Errorf("cluster: wire: unknown precision %d", payload[1])
	}
	p := payload[2:]
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, false
		}
		p = p[n:]
		return v, true
	}
	batch, ok := uv()
	if !ok {
		return nil, errTruncated
	}
	cycles, ok := uv()
	if !ok {
		return nil, errTruncated
	}
	replica, n := binary.Varint(p)
	if n <= 0 {
		return nil, errTruncated
	}
	p = p[n:]
	retries, ok := uv()
	if !ok {
		return nil, errTruncated
	}
	if len(p) < 16 {
		return nil, errTruncated
	}
	queueUs := math.Float64frombits(binary.LittleEndian.Uint64(p))
	totalUs := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	p = p[16:]
	nVecs, ok := uv()
	if !ok {
		return nil, errTruncated
	}
	if nVecs > uint64(len(p))+1 {
		return nil, errTruncated
	}
	res := &serve.Result{
		BatchSize:     int(batch),
		ServiceCycles: sim.Cycle(cycles),
		Replica:       int(replica),
		Retries:       int(retries),
		Degraded:      flags&respDegraded != 0,
		ColdDegraded:  flags&respColdDegraded != 0,
		QueueWait:     time.Duration(queueUs * 1e3),
		Total:         time.Duration(totalUs * 1e3),
		Vectors:       make([][]float32, nVecs),
	}
	for i := range res.Vectors {
		cnt, ok := uv()
		if !ok {
			return nil, errTruncated
		}
		var need uint64
		switch prec {
		case kernels.FP16:
			need = 2 * cnt
		case kernels.INT8:
			need = 8 + cnt
		default:
			need = 4 * cnt
		}
		if uint64(len(p)) < need {
			return nil, errTruncated
		}
		vec := make([]float32, cnt)
		switch prec {
		case kernels.FP16:
			for j := range vec {
				vec[j] = kernels.F16ToF32(binary.LittleEndian.Uint16(p[2*j:]))
			}
		case kernels.INT8:
			scale := math.Float32frombits(binary.LittleEndian.Uint32(p))
			zero := int32(binary.LittleEndian.Uint32(p[4:]))
			kernels.DecodeI8(vec, p[8:8+cnt], scale, zero)
		default:
			for j := range vec {
				vec[j] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*j:]))
			}
		}
		p = p[need:]
		res.Vectors[i] = vec
	}
	return res, nil
}

// appendErrFrame encodes an error response.
func appendErrFrame(dst []byte, corr uint32, code byte, msg string) []byte {
	start := len(dst)
	dst = beginFrame(dst, frameErr, corr)
	dst = append(dst, code)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	dst = append(dst, msg...)
	return endFrame(dst, start)
}

// decodeErrFrame decodes an error payload into the matching Go error.
// Unavailable codes wrap ErrNodeDown so the router's failover and the
// prober treat a draining binary peer like a refused connection.
func decodeErrFrame(payload []byte, nodeID string) error {
	if len(payload) < 1 {
		return errTruncated
	}
	code := payload[0]
	p := payload[1:]
	ln, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p[n:])) < ln {
		return errTruncated
	}
	msg := string(p[n : n+int(ln)])
	if code == errCodeUnavailable {
		return fmt.Errorf("%w: node %s: %s", ErrNodeDown, nodeID, msg)
	}
	return fmt.Errorf("cluster: node %s: %s", nodeID, msg)
}

// readFrame reads one frame from br. The payload is read into buf
// (grown as needed) and aliases it — the caller owns copying before
// the next read. Returns the possibly-grown buffer for re-use.
func readFrame(br *bufio.Reader, hdr *[frameHeaderSize]byte, buf []byte) (typ byte, corr uint32, payload, newBuf []byte, err error) {
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, buf, err
	}
	if hdr[0] != wireMagic0 || hdr[1] != wireMagic1 {
		return 0, 0, nil, buf, errBadMagic
	}
	if hdr[2] != wireVersion {
		return 0, 0, nil, buf, fmt.Errorf("%w: got %d want %d", errBadVersion, hdr[2], wireVersion)
	}
	typ = hdr[3]
	corr = binary.LittleEndian.Uint32(hdr[4:8])
	ln := binary.LittleEndian.Uint32(hdr[8:12])
	if ln > maxFramePayload {
		return 0, 0, nil, buf, errFrameSize
	}
	if cap(buf) < int(ln) {
		buf = make([]byte, ln)
	} else {
		buf = buf[:ln]
	}
	if _, err = io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, buf, err
	}
	return typ, corr, buf, buf, nil
}

// WireMetrics are one transport endpoint's lock-cheap counters,
// rendered as recross_cluster_wire_* by the router (client side, one
// series per BinNode) or the binary listener (server side, via
// serve.Server.RegisterExpo).
type WireMetrics struct {
	BytesIn   atomic.Int64 // payload+header bytes read
	BytesOut  atomic.Int64 // payload+header bytes written
	FramesIn  atomic.Int64 // frames read
	FramesOut atomic.Int64 // frames written
	EncodeNs  atomic.Int64 // cumulative encode time
	DecodeNs  atomic.Int64 // cumulative decode time
	Dials     atomic.Int64 // connections established
	Redials   atomic.Int64 // re-establishments after a conn failure
	ConnFails atomic.Int64 // connections failed (read/write/dial error)
	ConnsOpen atomic.Int64 // currently open connections (gauge)
}

// wireMetricDefs orders the exposition; keep in sync with snapshot().
var wireMetricDefs = []struct {
	name, help, kind string
}{
	{"bytes_in_total", "Wire bytes read (frames incl. headers).", "counter"},
	{"bytes_out_total", "Wire bytes written (frames incl. headers).", "counter"},
	{"frames_in_total", "Frames read.", "counter"},
	{"frames_out_total", "Frames written.", "counter"},
	{"encode_ns_total", "Cumulative frame encode time, ns.", "counter"},
	{"decode_ns_total", "Cumulative frame decode time, ns.", "counter"},
	{"dials_total", "Connections established.", "counter"},
	{"redials_total", "Reconnects after a connection failure.", "counter"},
	{"conn_failures_total", "Connection failures.", "counter"},
	{"conns_open", "Open connections.", "gauge"},
}

func (m *WireMetrics) snapshot() [10]int64 {
	return [10]int64{
		m.BytesIn.Load(), m.BytesOut.Load(),
		m.FramesIn.Load(), m.FramesOut.Load(),
		m.EncodeNs.Load(), m.DecodeNs.Load(),
		m.Dials.Load(), m.Redials.Load(),
		m.ConnFails.Load(), m.ConnsOpen.Load(),
	}
}
