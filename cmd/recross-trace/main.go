// recross-trace generates synthetic embedding access traces and reports
// their statistical shape: per-table cumulative access curves, in-batch
// reuse, and per-op load-imbalance figures — the workload characterisation
// behind the paper's Figs. 3 and 4.
//
// Usage:
//
//	recross-trace [-samples 2000 -pooling 80 -veclen 64] [-dump N]
//	recross-trace -export trace.txt -batch 32     # write a batch to a file
//	recross-trace -replay trace.txt -arch recross # simulate a trace file
//
// With -dump N the first N raw lookups are printed (table, index, weight).
// The trace file format is line-oriented text (see internal/trace);
// externally produced traces in the same format replay identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"recross"
	"recross/internal/stats"
	"recross/internal/trace"
)

func main() {
	samples := flag.Int("samples", 2000, "samples to generate")
	pooling := flag.Int("pooling", 80, "gathers per embedding operation")
	veclen := flag.Int("veclen", 64, "embedding vector length")
	seed := flag.Int64("seed", 1, "generator seed")
	dump := flag.Int("dump", 0, "print the first N raw lookups")
	export := flag.String("export", "", "write a generated batch to this file")
	batch := flag.Int("batch", 32, "batch size for -export")
	replay := flag.String("replay", "", "simulate a previously exported trace file")
	archName := flag.String("arch", "recross", "architecture for -replay")
	flag.Parse()

	spec := recross.CriteoKaggle(*veclen, *pooling)
	gen, err := recross.NewGenerator(spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recross-trace:", err)
		os.Exit(1)
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail(err)
		}
		b := gen.Batch(*batch)
		if err := trace.WriteBatch(f, b); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d samples (%d lookups) to %s\n", len(b), b.Lookups(), *export)
		return
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fail(err)
		}
		b, err := trace.ReadBatch(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := trace.ValidateBatch(b, spec); err != nil {
			fail(err)
		}
		sys, err := recross.NewSystem(recross.Arch(*archName), recross.Config{Spec: spec})
		if err != nil {
			fail(err)
		}
		rs, err := sys.Run(b)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s replayed %d samples (%d lookups): %d cycles (%.2f us), %d row hits, %.4f mJ\n",
			sys.Name(), len(b), b.Lookups(), rs.Cycles,
			float64(rs.Cycles)/2.4/1e3, rs.RowHits, rs.Energy.Total()*1e3)
		return
	}

	if *dump > 0 {
		n := 0
		for n < *dump {
			for _, op := range gen.Sample() {
				for k, idx := range op.Indices {
					if n >= *dump {
						break
					}
					fmt.Printf("table=%-4s index=%-9d weight=%.4f\n",
						spec.Tables[op.Table].Name, idx, op.Weights[k])
					n++
				}
			}
		}
		return
	}

	for i := 0; i < *samples; i++ {
		gen.Sample()
	}
	hists := gen.Histograms()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "table\trows\tskew\taccesses\tdistinct\ttop-1%\ttop-20%")
	for i, t := range spec.Tables {
		cdf, err := stats.AccessCDF(hists[i], int(t.Rows))
		if err != nil {
			fmt.Fprintln(os.Stderr, "recross-trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%d\t%d\t%.2f\t%.2f\n",
			t.Name, t.Rows, t.Skew, hists[i].Total(), hists[i].Distinct(),
			cdf.At(0.01), cdf.At(0.20))
	}
	w.Flush()

	var totalAccesses, totalDistinct int64
	for _, h := range hists {
		totalAccesses += h.Total()
		totalDistinct += int64(h.Distinct())
	}
	fmt.Printf("\n%d samples -> %d lookups, %d distinct rows touched (reuse factor %.2f)\n",
		*samples, totalAccesses, totalDistinct,
		float64(totalAccesses)/float64(totalDistinct))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "recross-trace:", err)
	os.Exit(1)
}
