package dlrm

import (
	"fmt"
	"math"

	"recross/internal/embedding"
	"recross/internal/trace"
)

// Training support: full backpropagation through the top MLP, the pairwise
// feature interaction, the bottom MLP, and the embedding gathers. This
// powers the online-training path — the gradient write-back set of
// ReCross.RunTraining is exactly the rows TrainStep touches — and lets the
// examples train a small model for real.

// forwardTrace caches the activations a backward pass needs.
type forwardTrace struct {
	inputs [][]float32 // per layer, the input vector
	pre    [][]float32 // per layer, the pre-activation output
	out    []float32   // network output
}

// forwardT runs the MLP keeping activations.
func (m *MLP) forwardT(x []float32) (*forwardTrace, error) {
	if len(x) != m.sizes[0] {
		return nil, fmt.Errorf("dlrm: input width %d, want %d", len(x), m.sizes[0])
	}
	tr := &forwardTrace{}
	cur := x
	for l := range m.weights {
		in, out := m.sizes[l], m.sizes[l+1]
		tr.inputs = append(tr.inputs, cur)
		pre := make([]float32, out)
		w := m.weights[l]
		for o := 0; o < out; o++ {
			acc := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range cur {
				acc += row[i] * v
			}
			pre[o] = acc
		}
		tr.pre = append(tr.pre, pre)
		next := make([]float32, out)
		copy(next, pre)
		if l+1 < len(m.weights) {
			for i := range next {
				if next[i] < 0 {
					next[i] = 0
				}
			}
		}
		cur = next
	}
	tr.out = cur
	return tr, nil
}

// backward applies gradient dOut at the output, updates weights with
// learning rate lr, and returns the gradient w.r.t. the input.
func (m *MLP) backward(tr *forwardTrace, dOut []float32, lr float32) []float32 {
	grad := dOut
	for l := len(m.weights) - 1; l >= 0; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		// ReLU derivative on hidden layers.
		if l+1 < len(m.weights) {
			for o := 0; o < out; o++ {
				if tr.pre[l][o] <= 0 {
					grad[o] = 0
				}
			}
		}
		w := m.weights[l]
		dIn := make([]float32, in)
		x := tr.inputs[l]
		for o := 0; o < out; o++ {
			g := grad[o]
			if g == 0 {
				continue
			}
			row := w[o*in : (o+1)*in]
			for i := 0; i < in; i++ {
				dIn[i] += row[i] * g
				row[i] -= lr * g * x[i]
			}
			m.biases[l][o] -= lr * g
		}
		grad = dIn
	}
	return grad
}

// TrainStep runs one SGD step on a single labelled sample: forward through
// the full DLRM, binary-cross-entropy loss against label (0 or 1), backward
// through both MLPs and the interaction, and embedding-row updates applied
// to the Dense tables. It returns the pre-update loss and the set of
// embedding rows it updated — the write-back set an NMP memory system must
// persist (see core.ReCross.RunTraining).
//
// The embedding layer must be built from Dense tables (trainable); the
// procedural tables are read-only.
func (m *Model) TrainStep(dense []float32, s trace.Sample, label float64, lr float32) (loss float64, touched []trace.Op, err error) {
	if label != 0 && label != 1 {
		return 0, nil, fmt.Errorf("dlrm: label must be 0 or 1, got %g", label)
	}
	if len(s) != len(m.Spec.Tables) {
		return 0, nil, fmt.Errorf("dlrm: sample accesses %d tables, want %d", len(s), len(m.Spec.Tables))
	}
	// Forward: pooled embeddings, bottom MLP, interaction, top MLP.
	pooled, err := m.Embedding.ReduceSample(s)
	if err != nil {
		return 0, nil, err
	}
	botTr, err := m.Bottom.forwardT(dense)
	if err != nil {
		return 0, nil, err
	}
	bot := botTr.out
	vecs := append([][]float32{bot}, pooled...)
	feats := make([]float32, 0, m.Top.InputSize())
	feats = append(feats, bot...)
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			var dot float32
			for k := 0; k < m.vecLen; k++ {
				dot += vecs[i][k] * vecs[j][k]
			}
			feats = append(feats, dot)
			pairs = append(pairs, pair{i, j})
		}
	}
	topTr, err := m.Top.forwardT(feats)
	if err != nil {
		return 0, nil, err
	}
	p := sigmoid(float64(topTr.out[0]))
	// BCE loss and its gradient at the logit: p - label.
	const eps = 1e-7
	loss = -(label*math.Log(p+eps) + (1-label)*math.Log(1-p+eps))
	dLogit := float32(p - label)

	// Backward through the top MLP.
	dFeats := m.Top.backward(topTr, []float32{dLogit}, lr)

	// Split the feature gradient: bottom-output passthrough + interaction.
	dVecs := make([][]float32, len(vecs))
	for i := range dVecs {
		dVecs[i] = make([]float32, m.vecLen)
	}
	copy(dVecs[0], dFeats[:m.vecLen])
	for pi, pr := range pairs {
		g := dFeats[m.vecLen+pi]
		for k := 0; k < m.vecLen; k++ {
			dVecs[pr.i][k] += g * vecs[pr.j][k]
			dVecs[pr.j][k] += g * vecs[pr.i][k]
		}
	}

	// Bottom MLP update.
	m.Bottom.backward(botTr, dVecs[0], lr)

	// Embedding updates: each gathered row receives weight * dPooled.
	row := make([]float32, m.vecLen)
	for oi, op := range s {
		tab, ok := m.Embedding.Table(op.Table).(*embedding.Dense)
		if !ok {
			return 0, nil, fmt.Errorf("dlrm: table %d is not trainable (need Dense)", op.Table)
		}
		dPooled := dVecs[oi+1]
		for k, idx := range op.Indices {
			w := op.Weights[k]
			tab.Row(idx, row)
			for e := 0; e < m.vecLen; e++ {
				row[e] -= lr * w * dPooled[e]
			}
			if err := tab.SetRow(idx, row); err != nil {
				return 0, nil, err
			}
		}
		touched = append(touched, op)
	}
	return loss, touched, nil
}

// NewTrainable builds a DLRM over Dense (trainable) embedding tables with
// small random initial values.
func NewTrainable(spec trace.ModelSpec, denseFeatures int, seed int64) (*Model, error) {
	m, err := New(spec, denseFeatures, seed)
	if err != nil {
		return nil, err
	}
	// Replace the procedural layer with trainable Dense tables initialized
	// from the procedural values (deterministic).
	tables := make([]embedding.Table, len(spec.Tables))
	for i, ts := range spec.Tables {
		d, err := embedding.NewDense(ts.Rows, ts.VecLen)
		if err != nil {
			return nil, err
		}
		src := m.Embedding.Table(i)
		row := make([]float32, ts.VecLen)
		for r := int64(0); r < ts.Rows; r++ {
			src.Row(r, row)
			for j := range row {
				row[j] *= 0.1 // small init
			}
			if err := d.SetRow(r, row); err != nil {
				return nil, err
			}
		}
		tables[i] = d
	}
	layer, err := embedding.NewLayerFromTables(tables)
	if err != nil {
		return nil, err
	}
	m.Embedding = layer
	return m, nil
}
