package core

import (
	"testing"

	"recross/internal/partition"
	"recross/internal/trace"
)

// shiftSpec returns the mini spec under a different model name: same table
// shapes and skews, but an independent popularity permutation — i.e. the
// same service after its hot set drifted (§4.5's access-frequency change).
func shiftSpec() trace.ModelSpec {
	s := miniSpec()
	s.Name = "mini-core-after-drift"
	for i := range s.Tables {
		s.Tables[i].Name = s.Name + string(rune('a'+i))
	}
	return s
}

func TestRebalanceRecoversFromDrift(t *testing.T) {
	cfg := miniConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The live workload after the drift: different rows are hot now.
	drifted := shiftSpec()
	g, err := trace.NewGenerator(drifted, 777)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(8)
	// Retarget the ops at the original table indices (same shapes).
	for si := range b {
		for oi := range b[si] {
			b[si][oi].Table = b[si][oi].Table % len(cfg.Spec.Tables)
		}
	}

	stale, err := r.Run(b)
	if err != nil {
		t.Fatal(err)
	}

	// Re-profile on the drifted distribution and rebalance.
	prof, err := partition.NewProfile(drifted, 12345, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rebalance(prof); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stale placement: %d cycles (hits %d), rebalanced: %d cycles (hits %d)",
		stale.Cycles, stale.RowHits, fresh.Cycles, fresh.RowHits)
	if fresh.Cycles >= stale.Cycles {
		t.Fatalf("rebalancing did not help: %d -> %d cycles", stale.Cycles, fresh.Cycles)
	}
}

func TestRebalanceValidation(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rebalance(nil); err == nil {
		t.Fatal("nil profile should error")
	}
	other, err := partition.NewProfile(trace.Uniform(2, 100, 64, 2), 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rebalance(other); err == nil {
		t.Fatal("mismatched table count should error")
	}
	wrongShape := miniSpec()
	wrongShape.Tables[0].Rows = 12345
	p2, err := partition.NewProfile(wrongShape, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Rebalance(p2); err == nil {
		t.Fatal("mismatched table shape should error")
	}
}

func TestColdRowsRetireToCoarseRegions(t *testing.T) {
	// §4.5 embedding updates: rows never seen in profiling (new inserts)
	// are treated as cold data. With a model larger than the combined
	// B+G capacity (100M rows x 256 B = 25.6 GB vs 16 GB), the
	// never-observed tail must overflow into the capacity-optimized
	// R-region, so cold rows land predominantly outside B.
	spec := trace.ModelSpec{Name: "cold-tail", Tables: []trace.TableSpec{{
		Name: "big", Rows: 100_000_000, VecLen: 64, Pooling: 8, Prob: 1, Skew: 1.1,
	}}}
	cfg := DefaultConfig(spec)
	cfg.Batch = 4
	cfg.ProfileSamples = 300
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inB := 0
	const n = 2000
	for i := 0; i < n; i++ {
		// Sample the far tail, essentially never profiled.
		row := int64(50_000_000) + int64(i)*9973
		region, _ := r.pl.Locate(0, row)
		if region == RegionB {
			inB++
		}
	}
	if frac := float64(inB) / n; frac > 0.25 {
		t.Fatalf("%.0f%% of cold rows landed in the B-region, want mostly outside", 100*frac)
	}
}

func TestRunTrainingWritesBack(t *testing.T) {
	r, err := New(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(miniSpec(), 3)
	b := g.Batch(4)
	inference, err := r.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	training, err := r.RunTraining(b)
	if err != nil {
		t.Fatal(err)
	}
	if training.DRAM.WRs == 0 {
		t.Fatal("training step issued no writes")
	}
	// One write per distinct touched row, each of `bursts` columns.
	if training.DRAM.WRs%int64(4) != 0 {
		t.Fatalf("WR bursts (%d) not a multiple of the vector burst count", training.DRAM.WRs)
	}
	if training.Cycles <= inference.Cycles {
		t.Fatalf("training (%d) not slower than inference (%d) despite write-back",
			training.Cycles, inference.Cycles)
	}
	// The write-back volume roughly equals the gather volume but must
	// squeeze through the single channel DQ (~64 B per tBL), while the
	// gathers enjoyed cross-level parallelism — so an order of magnitude
	// of overhead is expected at small batches, but not more.
	if training.Cycles > inference.Cycles*12 {
		t.Fatalf("write-back overhead implausible: %d vs %d", training.Cycles, inference.Cycles)
	}
}
