package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/serve"
	"recross/internal/sim"
	"recross/internal/trace"
)

// fakeArch is a minimal timing model so tests can stand up real
// serve.Servers as HTTP peers.
type fakeArch struct{}

func (fakeArch) Name() string { return "fake" }

func (fakeArch) Run(b trace.Batch) (*arch.RunStats, error) {
	lookups, _ := arch.CountBatch(b)
	return &arch.RunStats{Cycles: sim.Cycle(100 + len(b)), Lookups: lookups, Imbalance: 1}, nil
}

// newHTTPPeer stands up a real single-node server behind httptest and
// returns it as an HTTPNode.
func newHTTPPeer(t *testing.T, id string) *HTTPNode {
	t.Helper()
	layer := clusterLayer(t)
	srv, err := serve.New(serve.Options{Systems: []arch.System{fakeArch{}}, Layer: layer})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return NewHTTPNode(id, ts.URL, nil)
}

// TestHTTPNodeBitIdentity: a router fronting real TCP peers speaking
// the /v1/lookup wire format answers bit-identically to the functional
// layer — JSON round-trips float32s exactly.
func TestHTTPNodeBitIdentity(t *testing.T) {
	nodes := []Node{newHTTPPeer(t, "node0"), newHTTPPeer(t, "node1")}
	layer := clusterLayer(t)
	pl, err := RingPlacement(8, []string{"node0", "node1"}, PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Options{Nodes: nodes, Placement: pl, Layer: layer, ProbeInterval: -1, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, sample := range clusterSamples(t, 20) {
		res, err := r.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatal("healthy HTTP cluster degraded")
		}
		checkIdentical(t, layer, sample, res.Vectors)
	}
	st := nodes[0].Stats()
	if st.Lookups == 0 || st.Cycles == 0 {
		t.Errorf("HTTP node stats not accumulated: %+v", st)
	}
	h, err := nodes[0].Health(context.Background())
	if err != nil || h.Status == "" {
		t.Errorf("HTTP health = %+v, %v", h, err)
	}
}

// TestHTTPNodeKeepAlive: sequential lookups and probes reuse one TCP
// connection — draining response bodies and the tuned idle-conn pool
// mean no per-request dial on the JSON wire.
func TestHTTPNodeKeepAlive(t *testing.T) {
	layer := clusterLayer(t)
	srv, err := serve.New(serve.Options{Systems: []arch.System{fakeArch{}}, Layer: layer})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var dials atomic.Int64
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
		MaxIdleConnsPerHost: 4,
	}
	n := NewHTTPNode("ka", ts.URL, &http.Client{Transport: tr})

	for _, sample := range clusterSamples(t, 20) {
		if _, err := n.Lookup(context.Background(), sample); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := n.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if d := dials.Load(); d != 1 {
		t.Errorf("25 sequential requests dialed %d times, want 1 (keep-alive broken)", d)
	}
}

// TestHTTPNodeDown: a refused connection surfaces as ErrNodeDown and
// the router degrades instead of failing.
func TestHTTPNodeDown(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // now refuses connections
	n := NewHTTPNode("gone", url, nil)
	if _, err := n.Lookup(context.Background(), wideSample()); err == nil {
		t.Fatal("lookup on a closed peer succeeded")
	} else if !strings.Contains(err.Error(), ErrNodeDown.Error()) {
		t.Errorf("error %v does not wrap ErrNodeDown", err)
	}
	if n.Stats().Failures == 0 {
		t.Error("failure not counted")
	}
}

// TestRouterHandler: the router's own HTTP front is wire-compatible
// with a single node's — same request, a LookupResponse with
// Replica=-1 — so routers can front routers.
func TestRouterHandler(t *testing.T) {
	layer := clusterLayer(t)
	node := newFakeNode("node0", layer)
	pl := manualPlacement([]string{"node0"}, [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	r, err := NewRouter(Options{Nodes: []Node{node}, Placement: pl, Layer: layer, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	sample := wideSample()
	body, _ := json.Marshal(serve.WireRequest(sample))
	resp, err := http.Post(ts.URL+"/v1/lookup", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d", resp.StatusCode)
	}
	var lr serve.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.Replica != -1 {
		t.Errorf("router response Replica = %d, want -1", lr.Replica)
	}
	want, err := layer.ReduceSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lr.Vectors, want) {
		t.Error("wire vectors differ from functional layer")
	}

	// Malformed body is a 400, not a 500.
	resp2, err := http.Post(ts.URL+"/v1/lookup", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed lookup status %d, want 400", resp2.StatusCode)
	}

	// Metrics carry the cluster series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	_, _ = mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{
		"recross_cluster_requests_total",
		"recross_cluster_subrequests_total",
		"recross_cluster_nodes_available",
		"recross_cluster_node_state{node=\"node0\"}",
		"recross_cluster_latency_seconds",
	} {
		if !strings.Contains(mb.String(), series) {
			t.Errorf("metrics missing %s", series)
		}
	}

	// Healthz: ok while serving, 503 draining once closed.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	_ = json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || h.Status != "ok" || h.Available != 1 {
		t.Errorf("healthz = %d %+v", hresp.StatusCode, h)
	}
	r.Close()
	hresp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(hresp2.Body).Decode(&h)
	hresp2.Body.Close()
	if hresp2.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Errorf("closed healthz = %d %q, want 503 draining", hresp2.StatusCode, h.Status)
	}
}

// TestRouterFederation: because the router speaks the node wire format,
// a router can itself be a node of an upstream router — two tiers of
// scatter-gather, still bit-identical.
func TestRouterFederation(t *testing.T) {
	layer := clusterLayer(t)
	leaf := newFakeNode("leaf", layer)
	leafPl := manualPlacement([]string{"leaf"}, [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	lower, err := NewRouter(Options{Nodes: []Node{leaf}, Placement: leafPl, Layer: layer, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer lower.Close()
	ts := httptest.NewServer(lower.Handler())
	defer ts.Close()

	mid := NewHTTPNode("lower-router", ts.URL, &http.Client{Timeout: 5 * time.Second})
	upPl := manualPlacement([]string{"lower-router"}, [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	upper, err := NewRouter(Options{Nodes: []Node{mid}, Placement: upPl, Layer: layer, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer upper.Close()

	sample := wideSample()
	res, err := upper.Lookup(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, layer, sample, res.Vectors)
	if leaf.lookups.Load() == 0 {
		t.Error("leaf never served through the federation")
	}
}
