package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/arch"
	"recross/internal/trace"
)

// replicaWorkDepth is how many formed batches may queue at one replica
// beyond the one it is running; small so the least-outstanding dispatcher
// keeps the routing decision late.
const replicaWorkDepth = 2

// ReplicaState is one pool shard's health.
type ReplicaState int32

const (
	// Healthy: serving normally.
	Healthy ReplicaState = iota
	// Suspect: serving, but on probation — it just restarted or returned
	// a Run error; the next successful batch promotes it to Healthy.
	Suspect
	// Restarting: failed and queued for (or undergoing) a supervisor
	// rebuild; not dispatched to.
	Restarting
	// Dead: exhausted the restart cap; never dispatched to again.
	Dead
)

func (st ReplicaState) String() string {
	switch st {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Restarting:
		return "restarting"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int32(st))
	}
}

// replica is one pool shard: a timing model owned exclusively by one
// worker goroutine (arch.System is single-goroutine by contract). After
// a failure the worker exits and the supervisor installs a rebuilt
// System plus a fresh worker on the same work channel, so queued batches
// are never stranded.
type replica struct {
	id          int
	sys         arch.System // owned by the live worker; replaced only while no worker runs
	work        chan []*request
	outstanding atomic.Int64 // queued + running samples
	batches     atomic.Int64
	samples     atomic.Int64

	state      atomic.Int32 // ReplicaState
	workerLive atomic.Bool  // a worker goroutine currently owns sys
	failures   atomic.Int64 // replica-level faults (panic/wedge/corrupt/error)
	restarts   atomic.Int64 // successful supervisor rebuilds
	attempts   atomic.Int32 // consecutive restart attempts; reset by a served batch
	sysname    atomic.Value // string; sys.Name() is not readable concurrently with a swap

	// update is a staged SystemUpdate (see StageUpdate); the worker swaps
	// it out and applies it between batches, when it owns sys.
	update atomic.Pointer[SystemUpdate]

	// Data-plane demux scratch, reused across batches (serve runs on the
	// single worker goroutine that owns this replica).
	redVecs [][][]float32
	redErrs []error
}

func newReplica(id int, sys arch.System) *replica {
	rep := &replica{id: id, sys: sys, work: make(chan []*request, replicaWorkDepth)}
	rep.sysname.Store(sys.Name())
	return rep
}

// sysName reports the current System's name without touching sys (which
// the supervisor may be swapping).
func (rep *replica) sysName() string {
	n, _ := rep.sysname.Load().(string)
	return n
}

func (rep *replica) setState(st ReplicaState) { rep.state.Store(int32(st)) }

// State reports the replica's health.
func (rep *replica) State() ReplicaState { return ReplicaState(rep.state.Load()) }

// available reports whether the dispatcher may route to this replica.
func (rep *replica) available() bool {
	st := rep.State()
	return (st == Healthy || st == Suspect) && rep.workerLive.Load()
}

// run executes formed batches until the work channel closes or the
// replica suffers a fault, in which case the worker reports to the
// supervisor and exits (the in-flight batch has already been failed
// over; queued batches wait for the restarted worker).
func (rep *replica) run(s *Server) {
	for batch := range rep.work {
		// Between batches the worker owns the System exclusively — the
		// one safe moment to apply a staged placement swap.
		rep.applyUpdate(s)
		if !rep.serve(s, batch) {
			rep.workerLive.Store(false)
			s.failures <- rep // buffered(len replicas): never blocks
			return
		}
	}
	rep.workerLive.Store(false)
}

// runResult carries the inner Run outcome across the wedge watchdog.
type runResult struct {
	st  *arch.RunStats
	err error
}

// serve runs one coalesced batch through the replica's timing model and
// demultiplexes the functional results back to each request's future.
// It returns false when the replica itself must be considered broken
// (panic, wedge, corrupt stats); the batch has then been failed over.
func (rep *replica) serve(s *Server, batch []*request) bool {
	defer rep.outstanding.Add(-int64(len(batch)))

	b := make(trace.Batch, len(batch))
	for i, r := range batch {
		b[i] = r.sample
	}

	// The timing model runs in an inner goroutine so a wedged batch can
	// be abandoned: on timeout the worker walks away from both the
	// goroutine and the System it owns (preserving the single-goroutine
	// contract — the abandoned goroutine keeps the old System, the
	// rebuilt replica gets a fresh one). A recovered panic travels back
	// as a typed ReplicaError instead of killing the process.
	sys := rep.sys
	resc := make(chan runResult, 1) // buffered: a late wedge return parks harmlessly
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resc <- runResult{err: &ReplicaError{
					Replica: rep.id, Fault: FailurePanic, Cause: fmt.Errorf("%v", p),
				}}
			}
		}()
		st, err := sys.Run(b)
		resc <- runResult{st, err}
	}()

	var rr runResult
	watchdog := time.NewTimer(s.opts.WedgeTimeout)
	select {
	case rr = <-resc:
		watchdog.Stop()
	case <-watchdog.C:
		rep.fail(s, batch, &ReplicaError{
			Replica: rep.id, Fault: FailureWedge,
			Cause: fmt.Errorf("batch of %d stuck > %v", len(batch), s.opts.WedgeTimeout),
		})
		return false
	}

	var rerr *ReplicaError
	switch {
	case rr.err != nil:
		var ok bool
		if rerr, ok = rr.err.(*ReplicaError); !ok {
			// An ordinary Run error: fail over the batch and mark the
			// replica suspect, but keep it serving — the model itself
			// did not break.
			rep.failures.Add(1)
			s.metrics.faultCounter(FailureError).Add(1)
			rep.setState(Suspect)
			s.failover(batch, rep.id, &ReplicaError{Replica: rep.id, Fault: FailureError, Cause: rr.err})
			return true
		}
	case rr.st == nil || rr.st.Cycles < 0:
		rerr = &ReplicaError{
			Replica: rep.id, Fault: FailureCorrupt,
			Cause: fmt.Errorf("corrupt run stats %+v", rr.st),
		}
	}
	if rerr != nil {
		rep.fail(s, batch, rerr)
		return false
	}

	rep.batches.Add(1)
	rep.samples.Add(int64(len(batch)))
	rep.attempts.Store(0) // a served batch ends the probation streak
	if rep.State() == Suspect {
		rep.setState(Healthy)
	}
	s.metrics.Batches.Add(1)
	s.metrics.BatchSamples.Add(int64(len(batch)))
	s.metrics.ServiceCycles.Record(int64(rr.st.Cycles))

	// Fan the batch's functional reductions across the persistent
	// data-plane pool: samples are independent, per-op association order
	// is unchanged, so the vectors are bit-identical to reducing them
	// here one by one.
	if cap(rep.redVecs) < len(batch) {
		rep.redVecs = make([][][]float32, len(batch))
		rep.redErrs = make([]error, len(batch))
	}
	vecs := rep.redVecs[:len(batch)]
	rerrs := rep.redErrs[:len(batch)]
	var rwg sync.WaitGroup
	rwg.Add(len(batch))
	for i, r := range batch {
		s.reducers.jobs <- reduceJob{sample: r.sample, out: &vecs[i], err: &rerrs[i], wg: &rwg}
	}
	rwg.Wait()

	for i, r := range batch {
		if err := rerrs[i]; err != nil {
			if r.complete(outcome{err: err}) {
				s.metrics.Failed.Add(1)
			}
			continue
		}
		now := time.Now()
		res := &Result{
			Vectors:       vecs[i],
			BatchSize:     len(batch),
			ServiceCycles: rr.st.Cycles,
			Replica:       rep.id,
			Retries:       r.retries,
			ColdDegraded:  s.coldDegraded(),
			QueueWait:     r.deq.Sub(r.enq),
			Total:         now.Sub(r.enq),
		}
		if r.complete(outcome{res: res}) {
			s.metrics.E2E.Record(res.Total.Nanoseconds())
			s.metrics.Completed.Add(1)
			if res.ColdDegraded {
				s.metrics.DegradedCold.Add(1)
			}
		}
	}
	return true
}

// fail records a replica-breaking fault, removes the replica from
// dispatch, and fails the batch over to the healthy part of the pool.
func (rep *replica) fail(s *Server, batch []*request, rerr *ReplicaError) {
	rep.failures.Add(1)
	s.metrics.faultCounter(rerr.Fault).Add(1)
	rep.setState(Restarting) // before failover, so retries avoid this replica
	s.failover(batch, rep.id, rerr)
}

// ReplicaLoad reports per-replica served batches and samples, for
// inspecting the least-outstanding balance.
func (s *Server) ReplicaLoad() (batches, samples []int64) {
	batches = make([]int64, len(s.replicas))
	samples = make([]int64, len(s.replicas))
	for i, rep := range s.replicas {
		batches[i] = rep.batches.Load()
		samples[i] = rep.samples.Load()
	}
	return batches, samples
}
