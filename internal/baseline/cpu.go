package baseline

import (
	"recross/internal/arch"
	"recross/internal/cache"
	"recross/internal/dram"
	"recross/internal/memctrl"
	"recross/internal/sim"
	"recross/internal/trace"
)

// CPU is the conventional baseline: a 16-core processor with a 32 MB LLC
// performing all embedding gathers and reductions itself (Table 2). Every
// gathered vector that misses the LLC crosses the channel DQ, which is what
// makes the embedding layer memory-bound (§2.1).
type CPU struct {
	cfg    Config
	geo    dram.Geometry
	lay    *layout
	llc    *cache.Cache
	alloc  []int
	salpNo []int
}

// LLCBytes is the baseline's last-level cache capacity (Table 2).
const LLCBytes = 32 << 20

// NewCPU builds the CPU baseline.
func NewCPU(cfg Config) (*CPU, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	// Tag the LLC at vector granularity: one line per embedding vector.
	// (The real 64 B-line LLC either hits or misses a whole streamed
	// vector in practice; vector-granularity tags model that cheaply.)
	llc, err := cache.New(LLCBytes, uint64(lay.bursts*geo.BurstBytes), 16)
	if err != nil {
		return nil, err
	}
	return &CPU{cfg: cfg, geo: geo, lay: lay, llc: llc, alloc: allBanks(geo)}, nil
}

// Name implements arch.System.
func (c *CPU) Name() string { return "cpu" }

// Run implements arch.System.
func (c *CPU) Run(b trace.Batch) (*arch.RunStats, error) {
	var reqs []memctrl.Request
	var lookups, hits int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.Conventional, c.lay.bursts)
	vecBytes := uint64(c.lay.bursts * c.geo.BurstBytes)
	for _, s := range b {
		for _, op := range s {
			op = arch.DedupOp(op)
			for _, idx := range op.Indices {
				lookups++
				slot := c.lay.slot(op.Table, idx)
				if c.llc.Access(uint64(slot) * vecBytes) {
					hits++
					continue
				}
				loc, err := arch.Stripe(c.geo, c.alloc, slot, c.lay.bursts)
				if err != nil {
					return nil, err
				}
				reqs = append(reqs, memctrl.Request{
					Loc:      loc,
					Cols:     c.lay.bursts,
					Consumer: dram.ToHost,
					Arrival:  sim.Cycle(seq) * instr,
					Op:       opID,
				})
				seq++
			}
			opID++
		}
	}
	spec := arch.ChannelSpec{Geo: c.geo, Tm: c.cfg.Tm, Mode: dram.Conventional, Policy: memctrl.FRFCFS, OpWindow: arch.CPUOpWindow}
	// No result transfer: the reduced outputs are produced on the CPU.
	finish, st, res, err := arch.RunChannel(spec, reqs, 0)
	if err != nil {
		return nil, err
	}
	return finishRun(c.cfg, c.geo, finish, st, res, lookups, hits, 0,
		c.lay.vecLen, append([]int64(nil), st.PerRankRDs...), llcHitNano), nil
}
