package embedding

import (
	"fmt"
	"sync/atomic"

	"recross/internal/kernels"
)

// quantSlabRows is the materialization granularity of a QuantTable: rows
// quantize lazily in slabs of this many rows, so only the touched part of
// a huge procedural table ever becomes resident (mirroring the cold
// store's lazy page population).
const quantSlabRows = 4096

// qslab is one materialized slab of quantized rows: int8 tables carry the
// per-row affine parameters beside the codes, fp16 tables a packed
// binary16 payload.
type qslab struct {
	q8    []uint8
	scale []float32
	zero  []int32
	q16   []uint16
}

// QuantTable wraps a source table with quantized backing storage: rows
// are encoded at construction precision (lazily, slab by slab) and every
// read serves the dequantized code — so the canonical value of row i is
// Decode(Encode(src.Row(i))), identical on every path that touches it.
// The fused reduce path in Layer.ReduceInto accumulates straight from the
// quantized codes; Row decodes with the same single-rounded per-lane
// expression, so the two agree bit-for-bit (see internal/kernels).
//
// Reads are safe for concurrent use: slabs publish by compare-and-swap
// and their content is deterministic, so racing builders agree.
type QuantTable struct {
	src    Table
	prec   kernels.Precision
	rows   int64
	vecLen int
	slabs  []atomic.Pointer[qslab]
}

// NewQuantTable builds quantized backing for src at prec (FP16 or INT8).
func NewQuantTable(src Table, prec kernels.Precision) (*QuantTable, error) {
	if prec != kernels.FP16 && prec != kernels.INT8 {
		return nil, fmt.Errorf("embedding: quantized table precision must be fp16 or int8, got %v", prec)
	}
	rows := src.Rows()
	nSlabs := (rows + quantSlabRows - 1) / quantSlabRows
	return &QuantTable{
		src:    src,
		prec:   prec,
		rows:   rows,
		vecLen: src.VecLen(),
		slabs:  make([]atomic.Pointer[qslab], nSlabs),
	}, nil
}

// Source returns the wrapped full-precision table.
func (t *QuantTable) Source() Table { return t.src }

// Precision returns the backing storage precision.
func (t *QuantTable) Precision() kernels.Precision { return t.prec }

func (t *QuantTable) Rows() int64 { return t.rows }

func (t *QuantTable) VecLen() int { return t.vecLen }

// Row writes the canonical (quantize-then-dequantize) value of row i into
// dst. Bounds panics match the source table's.
func (t *QuantTable) Row(i int64, dst []float32) []float32 {
	if i < 0 || i >= t.rows {
		panic(fmt.Sprintf("embedding: row %d out of [0,%d)", i, t.rows))
	}
	if len(dst) != t.vecLen {
		panic(fmt.Sprintf("embedding: dst length %d != %d", len(dst), t.vecLen))
	}
	if t.prec == kernels.INT8 {
		q, scale, zero := t.rowI8(i)
		kernels.DecodeI8(dst, q, scale, zero)
	} else {
		kernels.DecodeF16(dst, t.rowF16(i))
	}
	return dst
}

// rowI8 returns row i's int8 codes and affine parameters (INT8 tables).
func (t *QuantTable) rowI8(i int64) ([]uint8, float32, int32) {
	s := t.slab(i / quantSlabRows)
	r := int(i % quantSlabRows)
	off := r * t.vecLen
	return s.q8[off : off+t.vecLen : off+t.vecLen], s.scale[r], s.zero[r]
}

// rowF16 returns row i's packed binary16 payload (FP16 tables).
func (t *QuantTable) rowF16(i int64) []uint16 {
	s := t.slab(i / quantSlabRows)
	off := int(i%quantSlabRows) * t.vecLen
	return s.q16[off : off+t.vecLen : off+t.vecLen]
}

func (t *QuantTable) slab(si int64) *qslab {
	if s := t.slabs[si].Load(); s != nil {
		return s
	}
	return t.buildSlab(si)
}

func (t *QuantTable) buildSlab(si int64) *qslab {
	lo := si * quantSlabRows
	hi := lo + quantSlabRows
	if hi > t.rows {
		hi = t.rows
	}
	n := int(hi - lo)
	s := &qslab{}
	tmp := make([]float32, t.vecLen)
	if t.prec == kernels.INT8 {
		s.q8 = make([]uint8, n*t.vecLen)
		s.scale = make([]float32, n)
		s.zero = make([]int32, n)
		for r := 0; r < n; r++ {
			t.src.Row(lo+int64(r), tmp)
			off := r * t.vecLen
			s.scale[r], s.zero[r] = kernels.QuantizeI8(s.q8[off:off+t.vecLen], tmp)
		}
	} else {
		s.q16 = make([]uint16, n*t.vecLen)
		for r := 0; r < n; r++ {
			t.src.Row(lo+int64(r), tmp)
			off := r * t.vecLen
			kernels.QuantizeF16(s.q16[off:off+t.vecLen], tmp)
		}
	}
	// Deterministic content: the first publisher wins, racing builders
	// discard identical work.
	if t.slabs[si].CompareAndSwap(nil, s) {
		return s
	}
	return t.slabs[si].Load()
}
