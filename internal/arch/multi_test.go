package arch

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"recross/internal/dram"
	"recross/internal/embedding"
	"recross/internal/memctrl"
	"recross/internal/sim"
	"recross/internal/trace"
)

// fakeSystem records what it ran and returns canned stats.
type fakeSystem struct {
	spec trace.ModelSpec
	got  trace.Batch
	cyc  sim.Cycle
}

func (f *fakeSystem) Name() string { return "fake" }

func (f *fakeSystem) Run(b trace.Batch) (*RunStats, error) {
	f.got = b
	lookups, _ := CountBatch(b)
	return &RunStats{
		Cycles:    f.cyc,
		Lookups:   lookups,
		NodeLoads: []int64{lookups},
		Imbalance: 1,
	}, nil
}

func TestMultiChannelValidation(t *testing.T) {
	spec := trace.Uniform(4, 100, 16, 2)
	build := func(sub trace.ModelSpec) (System, error) { return &fakeSystem{spec: sub}, nil }
	if _, err := NewMultiChannel(spec, 0, build); err == nil {
		t.Error("zero channels should error")
	}
	if _, err := NewMultiChannel(spec, 5, build); err == nil {
		t.Error("more channels than tables should error")
	}
	if _, err := NewMultiChannel(trace.ModelSpec{}, 1, build); err == nil {
		t.Error("empty spec should error")
	}
}

func TestMultiChannelShardsRoundRobin(t *testing.T) {
	spec := trace.Uniform(5, 100, 16, 2)
	var fakes []*fakeSystem
	m, err := NewMultiChannel(spec, 2, func(sub trace.ModelSpec) (System, error) {
		f := &fakeSystem{spec: sub, cyc: sim.Cycle(100 * (len(fakes) + 1))}
		fakes = append(fakes, f)
		return f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Channels() != 2 {
		t.Fatalf("channels = %d", m.Channels())
	}
	// Tables 0,2,4 -> channel 0; tables 1,3 -> channel 1.
	if len(fakes[0].spec.Tables) != 3 || len(fakes[1].spec.Tables) != 2 {
		t.Fatalf("shard sizes %d/%d, want 3/2",
			len(fakes[0].spec.Tables), len(fakes[1].spec.Tables))
	}
	// Table names survive sharding (popularity permutations must match).
	if fakes[0].spec.Tables[1].Name != spec.Tables[2].Name {
		t.Fatalf("table identity lost: %q", fakes[0].spec.Tables[1].Name)
	}
	if !strings.Contains(m.Name(), "multichannel") {
		t.Fatalf("name = %q", m.Name())
	}

	// Run a batch: ops must be routed to the right shard with remapped
	// table indices, and the merged cycle count is the slowest channel's.
	g, err := trace.NewGenerator(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(2)
	rs, err := m.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles != 200 {
		t.Fatalf("merged cycles = %d, want the slowest channel's 200", rs.Cycles)
	}
	lookups, _ := CountBatch(b)
	if rs.Lookups != lookups {
		t.Fatalf("merged lookups = %d, want %d", rs.Lookups, lookups)
	}
	for c, f := range fakes {
		for _, s := range f.got {
			for _, op := range s {
				if op.Table < 0 || op.Table >= len(f.spec.Tables) {
					t.Fatalf("channel %d got unremapped table %d", c, op.Table)
				}
			}
		}
	}
}

// realMini is a minimal real system over a fresh channel: host reads only.
type realMini struct {
	sub trace.ModelSpec
}

func (r *realMini) Name() string { return "mini" }

func (r *realMini) Run(b trace.Batch) (*RunStats, error) {
	geo := dram.DDR5(2)
	base := make([]int64, len(r.sub.Tables))
	var total int64
	for i, t := range r.sub.Tables {
		base[i] = total
		total += t.Rows
	}
	banks := make([]int, geo.TotalBanks())
	for i := range banks {
		banks[i] = i
	}
	var reqs []memctrl.Request
	var lookups int64
	for _, s := range b {
		for _, op := range s {
			for _, idx := range op.Indices {
				lookups++
				loc, err := Stripe(geo, banks, base[op.Table]+idx, 4)
				if err != nil {
					return nil, err
				}
				reqs = append(reqs, memctrl.Request{Loc: loc, Cols: 4, Consumer: dram.ToHost})
			}
		}
	}
	spec := ChannelSpec{Geo: geo, Tm: dram.DDR5Timing(), Mode: dram.Conventional, Policy: memctrl.FRFCFS}
	finish, st, res, err := RunChannel(spec, reqs, 0)
	if err != nil {
		return nil, err
	}
	return &RunStats{
		Cycles: finish, DRAM: st, Lookups: lookups,
		RowHits: res.RowHits, RowMisses: res.RowMisses,
		NodeLoads: append([]int64(nil), st.PerRankRDs...), Imbalance: 1,
	}, nil
}

func TestMultiChannelScalesRealDrains(t *testing.T) {
	spec := trace.Uniform(4, 100000, 64, 8)
	g, err := trace.NewGenerator(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(8)

	single := &realMini{sub: spec}
	one, err := single.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiChannel(spec, 4, func(sub trace.ModelSpec) (System, error) {
		return &realMini{sub: sub}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	four, err := multi.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if four.Lookups != one.Lookups || four.DRAM.RDs != one.DRAM.RDs {
		t.Fatalf("multi-channel lost work: %d/%d lookups, %d/%d RDs",
			four.Lookups, one.Lookups, four.DRAM.RDs, one.DRAM.RDs)
	}
	speedup := float64(one.Cycles) / float64(four.Cycles)
	if speedup < 2.5 {
		t.Fatalf("4-channel speedup = %.2f, want >= 2.5 on a DQ-bound workload", speedup)
	}
}

// funcShard is a channel "system" that functionally reduces its shard's
// ops against the GLOBAL embedding layer (mapping its local table indices
// back through the global spec by table name), recording one output
// vector per (sample, global table). It turns MultiChannel.Run into a
// functional computation so routing and index remapping can be checked
// bit-for-bit.
type funcSink struct {
	mu      sync.Mutex
	outputs map[[2]int][]float32 // (sample, global table) -> vector
}

type funcShard struct {
	sub    trace.ModelSpec
	global map[string]int // table name -> global index
	layer  *embedding.Layer
	sink   *funcSink // shared across shards (channels run concurrently)
}

func (f *funcShard) Name() string { return "func" }

func (f *funcShard) Run(b trace.Batch) (*RunStats, error) {
	var lookups int64
	for si, s := range b {
		for _, op := range s {
			if op.Table < 0 || op.Table >= len(f.sub.Tables) {
				return nil, fmt.Errorf("local table %d out of shard range", op.Table)
			}
			gt, ok := f.global[f.sub.Tables[op.Table].Name]
			if !ok {
				return nil, fmt.Errorf("table %q not in global spec", f.sub.Tables[op.Table].Name)
			}
			gop := op
			gop.Table = gt
			v, err := f.layer.Reduce(gop)
			if err != nil {
				return nil, err
			}
			f.sink.mu.Lock()
			if _, dup := f.sink.outputs[[2]int{si, gt}]; dup {
				f.sink.mu.Unlock()
				return nil, fmt.Errorf("sample %d table %d reduced twice", si, gt)
			}
			f.sink.outputs[[2]int{si, gt}] = v
			f.sink.mu.Unlock()
			lookups += int64(len(op.Indices))
		}
	}
	return &RunStats{Cycles: 1, Lookups: lookups, Imbalance: 1}, nil
}

// TestMultiChannelUnevenTables shards 7 tables over 3 channels
// (7 % 3 != 0): every table must land on exactly one channel, and the
// routed-and-remapped ops must reproduce the functional embedding layer's
// outputs bit-for-bit.
func TestMultiChannelUnevenTables(t *testing.T) {
	spec := trace.Uniform(7, 500, 8, 3)
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	global := make(map[string]int, len(spec.Tables))
	for i, tb := range spec.Tables {
		global[tb.Name] = i
	}

	sink := &funcSink{outputs: make(map[[2]int][]float32)}
	seen := map[string]int{} // table name -> times assigned to a shard
	m, err := NewMultiChannel(spec, 3, func(sub trace.ModelSpec) (System, error) {
		for _, tb := range sub.Tables {
			seen[tb.Name]++
		}
		return &funcShard{sub: sub, global: global, layer: layer, sink: sink}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every table on exactly one channel.
	if len(seen) != len(spec.Tables) {
		t.Fatalf("%d of %d tables assigned", len(seen), len(spec.Tables))
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("table %q assigned to %d channels, want exactly 1", name, n)
		}
	}

	g, err := trace.NewGenerator(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(4)
	if _, err := m.Run(b); err != nil {
		t.Fatal(err)
	}

	// The sharded functional outputs must match the unsharded layer
	// bit-for-bit (same ops, same tables, same order within each op).
	var checked int
	for si, s := range b {
		for _, op := range s {
			want, err := layer.Reduce(op)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := sink.outputs[[2]int{si, op.Table}]
			if !ok {
				t.Fatalf("sample %d table %d never reached a channel", si, op.Table)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sample %d table %d: sharded result differs from functional layer", si, op.Table)
			}
			checked++
		}
	}
	if lookups, _ := CountBatch(b); checked == 0 || lookups == 0 {
		t.Fatal("empty batch checked nothing")
	}
}

// TestMultiChannelClose checks the persistent-worker lifecycle: Run after
// Close errors, Close is idempotent, and results before Close are sane.
func TestMultiChannelClose(t *testing.T) {
	spec := trace.Uniform(4, 100, 16, 2)
	m, err := NewMultiChannel(spec, 2, func(sub trace.ModelSpec) (System, error) {
		return &fakeSystem{spec: sub, cyc: 100}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(gen.Batch(4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close should be a no-op, got", err)
	}
	if _, err := m.Run(gen.Batch(1)); err == nil {
		t.Fatal("Run after Close should error")
	}
}

// spawnMulti mimics the pre-persistent-worker dispatch — one goroutine
// per channel per batch — as the benchmark baseline.
func spawnMulti(m *MultiChannel, shards []trace.Batch, results []*RunStats, errs []error) {
	var wg sync.WaitGroup
	for c := range m.systems {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = m.systems[c].Run(shards[c])
		}(c)
	}
	wg.Wait()
}

// benchMulti builds a 4-channel MultiChannel over fake Systems and runs
// one real batch through it so m.shards holds routed per-channel work.
func benchMulti(b *testing.B) *MultiChannel {
	b.Helper()
	spec := trace.Uniform(8, 1000, 16, 4)
	m, err := NewMultiChannel(spec, 4, func(sub trace.ModelSpec) (System, error) {
		return &fakeSystem{spec: sub}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := trace.NewGenerator(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(gen.Batch(32)); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMultiChannelDispatch measures fanning one pre-routed batch out
// to the persistent per-channel workers;
// BenchmarkMultiChannelSpawnPerBatch is the old dispatch — one goroutine
// spawned per channel per batch — over the exact same shards. The delta
// is pure per-batch goroutine-spawn overhead: allocs/op shows the stacks
// and closures the persistent workers no longer pay.
func BenchmarkMultiChannelDispatch(b *testing.B) {
	m := benchMulti(b)
	defer m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.dispatch(m.shards)
	}
}

func BenchmarkMultiChannelSpawnPerBatch(b *testing.B) {
	m := benchMulti(b)
	defer m.Close()
	results := make([]*RunStats, len(m.systems))
	errs := make([]error, len(m.systems))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawnMulti(m, m.shards, results, errs)
	}
}

// BenchmarkMultiChannelRun covers the full path — shard routing included
// — for the end-to-end cost picture.
func BenchmarkMultiChannelRun(b *testing.B) {
	spec := trace.Uniform(8, 1000, 16, 4)
	m, err := NewMultiChannel(spec, 4, func(sub trace.ModelSpec) (System, error) {
		return &fakeSystem{spec: sub}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	gen, err := trace.NewGenerator(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	batch := gen.Batch(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(batch); err != nil {
			b.Fatal(err)
		}
	}
}
