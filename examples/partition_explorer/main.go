// Partition explorer: profile the Criteo-Kaggle workload, solve the
// bandwidth-aware partitioning LP (paper §4.3), and show how each embedding
// table splits across ReCross's R-, G- and B-regions — with the greedy
// capacity-only partitioner alongside for contrast.
//
//	go run ./examples/partition_explorer
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"recross"
	"recross/internal/partition"
)

func main() {
	spec := recross.CriteoKaggle(64, 32)
	rc, err := recross.NewReCross(recross.DefaultReCrossConfig(spec))
	if err != nil {
		log.Fatal(err)
	}

	regions := rc.Regions()
	fmt.Println("ReCross memory regions (2-rank channel, 1/4/4 PEs, R:G:B = 16:12:4):")
	for _, r := range regions {
		fmt.Printf("  %s-region (%s level): %5.1f GB capacity, %5.1f B/cycle internal bandwidth\n",
			r.Name, r.Level, float64(r.CapBytes)/(1<<30), r.BW)
	}

	dec := rc.Decision()
	fmt.Printf("\nLP decision: estimated batch latency bound T = %.0f cycles\n", dec.T)
	fmt.Println("estimated per-region gathered bytes per batch:")
	for j, r := range regions {
		t := 0.0
		if r.BW > 0 {
			t = dec.Load[j] / r.BW
		}
		fmt.Printf("  %s: %10.0f bytes  ->  %8.0f cycles at its bandwidth\n", r.Name, dec.Load[j], t)
	}

	fmt.Println("\nper-table row placement (fraction of rows per region):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "table\trows\tskew\tR\tG\tB")
	for i, t := range spec.Tables {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.4f\t%.4f\t%.4f\n",
			t.Name, t.Rows, t.Skew,
			dec.RowFrac[i][0], dec.RowFrac[i][1], dec.RowFrac[i][2])
	}
	w.Flush()

	// Contrast with the crude greedy partitioner of the Fig. 12 ablation.
	greedy, err := partition.Greedy(rc.Profile(), regions, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrude greedy partitioning for contrast: estimated T = %.0f cycles (LP: %.0f)\n",
		greedy.T, dec.T)

	pl := rc.Placement()
	fmt.Printf("mapping-table overhead: %.1f MB (34 bits per row, %.2f%% of the model)\n",
		float64(pl.MappingBits())/8/(1<<20),
		100*float64(pl.MappingBits()/8)/float64(spec.TotalBytes()))
}
