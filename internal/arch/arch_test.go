package arch

import (
	"testing"

	"recross/internal/dram"
	"recross/internal/memctrl"
	"recross/internal/trace"
)

func TestBursts(t *testing.T) {
	geo := dram.DDR5(2)
	cases := map[int]int{16: 1, 32: 2, 64: 4, 128: 8, 256: 16, 1: 1}
	for vecLen, want := range cases {
		if got := Bursts(geo, vecLen); got != want {
			t.Errorf("Bursts(%d) = %d, want %d", vecLen, got, want)
		}
	}
}

func TestStripeRoundRobinAcrossBanks(t *testing.T) {
	geo := dram.DDR5(2)
	banks := []int{3, 7, 11}
	seen := map[int]int{}
	for slot := int64(0); slot < 9; slot++ {
		loc, err := Stripe(geo, banks, slot, 4)
		if err != nil {
			t.Fatal(err)
		}
		seen[geo.FlatBank(loc)]++
	}
	for _, fb := range banks {
		if seen[fb] != 3 {
			t.Fatalf("bank %d got %d of 9 slots, want 3", fb, seen[fb])
		}
	}
}

func TestStripeFillsRows(t *testing.T) {
	geo := dram.DDR5(2)
	banks := []int{0}
	vecPerRow := geo.ColumnsPerRow() / 4
	l0, _ := Stripe(geo, banks, 0, 4)
	l1, _ := Stripe(geo, banks, 1, 4)
	lr, _ := Stripe(geo, banks, int64(vecPerRow), 4)
	if l0.Row != 0 || l1.Row != 0 || l0.Col != 0 || l1.Col != 4 {
		t.Fatalf("first-row slots wrong: %+v %+v", l0, l1)
	}
	// Logical row 1 is interleaved into the next subarray.
	if lr.Row != geo.RowsPerSubarray || lr.Col != 0 {
		t.Fatalf("row rollover wrong: %+v, want row %d", lr, geo.RowsPerSubarray)
	}
}

func TestStripeRowsInterleaveSubarrays(t *testing.T) {
	geo := dram.DDR5(2)
	banks := []int{0}
	vecPerRow := int64(geo.ColumnsPerRow() / 4)
	// Consecutive logical rows must land in distinct subarrays so SALP
	// banks can overlap the hot head's activations.
	subs := map[int]bool{}
	for r := int64(0); r < 16; r++ {
		loc, err := Stripe(geo, banks, r*vecPerRow, 4)
		if err != nil {
			t.Fatal(err)
		}
		subs[geo.Subarray(loc.Row)] = true
	}
	if len(subs) != 16 {
		t.Fatalf("16 consecutive rows span %d subarrays, want 16", len(subs))
	}
	// The mapping remains a bijection over the bank's rows.
	seen := map[int]bool{}
	for r := 0; r < geo.RowsPerBank(); r += 317 {
		loc, err := Stripe(geo, banks, int64(r)*vecPerRow, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seen[loc.Row] {
			t.Fatalf("row collision at physical row %d", loc.Row)
		}
		seen[loc.Row] = true
	}
}

func TestStripeErrors(t *testing.T) {
	geo := dram.DDR5(2)
	if _, err := Stripe(geo, nil, 0, 4); err == nil {
		t.Error("empty bank set should error")
	}
	if _, err := Stripe(geo, []int{0}, 0, 0); err == nil {
		t.Error("zero bursts should error")
	}
	// Slot past bank capacity.
	vecPerBank := int64(geo.RowsPerBank()) * int64(geo.ColumnsPerRow()/4)
	if _, err := Stripe(geo, []int{0}, vecPerBank, 4); err == nil {
		t.Error("over-capacity slot should error")
	}
}

func TestInstrCycles(t *testing.T) {
	if got := InstrCycles(dram.NMPTwoStage, 4); got != 1 {
		t.Fatalf("two-stage lookup = %d instr cycles, want 1 (82 bits / 94 pins)", got)
	}
	if got := InstrCycles(dram.NMPCAOnly, 4); got != 6 {
		t.Fatalf("C/A-only lookup = %d, want 6 (82 bits / 14 pins)", got)
	}
	// The instruction is per-vector: length does not change the feed cost.
	if InstrCycles(dram.NMPTwoStage, 16) != InstrCycles(dram.NMPTwoStage, 1) {
		t.Fatal("feed cost should not depend on vector length")
	}
	if got := InstrCycles(dram.Conventional, 4); got != 2 {
		t.Fatalf("conventional = %d, want 2", got)
	}
}

func TestRunChannelWithResults(t *testing.T) {
	spec := ChannelSpec{
		Geo: dram.DDR5(2), Tm: dram.DDR5Timing(),
		Mode: dram.NMPTwoStage, Policy: memctrl.FRFCFS,
	}
	reqs := []memctrl.Request{
		{Loc: dram.Loc{Row: 1}, Cols: 4, Consumer: dram.ToBankPE},
	}
	finish, st, res, err := RunChannel(spec, reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Result traffic overlaps the drain; with this tiny drain it fits.
	if finish < res.Finish {
		t.Fatal("finish cannot precede the drain")
	}
	if st.HostResultTx != 4 {
		t.Fatalf("result bursts = %d, want 4", st.HostResultTx)
	}
	// A result stream longer than the drain extends the finish.
	finish2, _, res2, err := RunChannel(spec, reqs, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if finish2 <= res2.Finish {
		t.Fatal("oversized result stream should extend the finish time")
	}
	if st.RDs != 4 {
		t.Fatalf("RDs = %d, want 4", st.RDs)
	}
}

func TestRunChannelSALPValidation(t *testing.T) {
	spec := ChannelSpec{
		Geo: dram.DDR5(2), Tm: dram.DDR5Timing(),
		Mode: dram.NMPTwoStage, Policy: memctrl.FRFCFS,
		SALPBanks: []int{9999},
	}
	if _, _, _, err := RunChannel(spec, nil, 0); err == nil {
		t.Fatal("out-of-range SALP bank should error")
	}
}

func TestReduceOps(t *testing.T) {
	ops := ReduceOps(100, 10, 64)
	if ops.Adds != 110*64 || ops.Mults != 100*64 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestCountBatch(t *testing.T) {
	b := trace.Batch{
		{
			{Table: 0, Indices: []int64{1, 2}, Weights: []float32{1, 1}},
			{Table: 1, Indices: []int64{3}, Weights: []float32{1}},
		},
		{
			{Table: 0, Indices: []int64{4}, Weights: []float32{1}},
		},
	}
	lookups, ops := CountBatch(b)
	if lookups != 4 || ops != 3 {
		t.Fatalf("lookups=%d ops=%d, want 4 and 3", lookups, ops)
	}
}
