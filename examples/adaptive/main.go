// The adaptive example demonstrates the online workload profiler +
// adaptive repartitioner (internal/adapt) end to end, with the control
// loop stepped manually so every phase is visible:
//
//  1. Serve a stationary skewed workload — the drift score stays low.
//  2. Permute the Zipf hot set (same distribution shape, different hot
//     rows) — the detector sees live mass landing on rows the deployed
//     placement ranked cold, fires, and the replanner re-runs the
//     partitioner on the sketched profile.
//  3. The priced migration passes the hysteresis gate and is adopted:
//     every replica hot-swaps its placement at a batch boundary, with
//     no pause in serving.
//  4. Post-adoption answers are still bit-identical to the functional
//     embedding layer — repartitioning moves rows, never values.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"recross"
)

func main() {
	// A heavily skewed spec with enough gather volume that the per-batch
	// load dominates the regions' fixed psum-collection cost — the regime
	// where placement matters and a hot-set shift makes the deployed
	// placement wrong. (With a tiny workload the latency bound is pinned
	// at the fixed cost and no repartition can ever pay; the gate would
	// correctly reject everything.)
	spec := recross.ModelSpec{Name: "adaptive-demo", Tables: []recross.TableSpec{
		{Name: "hot-a", Rows: 60000, VecLen: 64, Pooling: 48, Prob: 1, Skew: 1.3},
		{Name: "hot-b", Rows: 30000, VecLen: 64, Pooling: 32, Prob: 1, Skew: 1.2},
	}}
	cfg := recross.Config{Spec: spec, ProfileSamples: 1500, Batch: 32}

	fmt.Println("building a 2-replica adaptive ReCross pool...")
	srv, ctrl, err := recross.NewAdaptiveServer(recross.ReCross, cfg, 2, recross.ServeOptions{
		MaxBatch: 32,
		MaxDelay: 200 * time.Microsecond,
	}, recross.AdaptOptions{
		Threshold:       0.12,
		Windows:         2,
		Cooldown:        time.Millisecond, // demo: adopt as soon as the gate clears
		MinGain:         0.02,
		AmortizeBatches: 1_000_000,
		MinSamples:      400,
	})
	check(err)
	defer srv.Close()

	layer, err := recross.NewLayer(spec)
	check(err)
	gen, err := recross.NewGenerator(spec, 42)
	check(err)

	// Phase 1: stationary traffic. The controller is stepped manually
	// (no Start) so the run is deterministic; production callers just
	// call ctrl.Start() and let the background loop tick.
	fmt.Println("\nphase 1: stationary traffic")
	for w := 0; w < 4; w++ {
		serveWindow(srv, gen, 400)
		res := ctrl.Step()
		fmt.Printf("  window %d: drift score %.3f (threshold 0.12)\n", w, res.Drift.Score)
		if res.Adopted {
			fmt.Println("  unexpected adoption on stationary traffic")
			os.Exit(1)
		}
	}

	// Phase 2: permute the hot set mid-run. The distribution's *shape* is
	// unchanged — only which rows are hot — so a histogram-only monitor
	// would see nothing. The detector compares row identities against the
	// deployed placement's own ranking and fires.
	fmt.Println("\nphase 2: hot-set permutation (same shape, new hot rows)")
	check(gen.ShiftHotSet(424242))
	adopted := false
	for w := 0; w < 10 && !adopted; w++ {
		serveWindow(srv, gen, 400)
		res := ctrl.Step()
		fmt.Printf("  window %d: drift score %.3f", w, res.Drift.Score)
		switch {
		case res.Adopted:
			fmt.Printf("  -> replanned, plan adopted (%.0f rows, %.2fx predicted speedup)\n",
				float64(res.Plan.RowsMoved), res.Plan.Speedup)
			adopted = true
		case res.Replanned && res.Plan != nil:
			fmt.Printf("  -> replanned, gate held (%.2fx)\n", res.Plan.Speedup)
		default:
			fmt.Println()
		}
	}
	if !adopted {
		fmt.Println("no adoption; try more windows or a lower -min-gain")
		os.Exit(1)
	}

	// Phase 3: the swap must be invisible to correctness — answers still
	// match the functional embedding layer bit for bit.
	fmt.Println("\nphase 3: verifying post-adoption answers against the functional layer")
	for i := 0; i < 50; i++ {
		sample := gen.Sample()
		res, err := srv.Lookup(context.Background(), sample)
		check(err)
		want, err := layer.ReduceSample(sample)
		check(err)
		for k := range want {
			if !recross.AlmostEqual(res.Vectors[k], want[k], 0) {
				fmt.Println("MISMATCH after repartition")
				os.Exit(1)
			}
		}
	}
	fmt.Println("  50/50 samples bit-identical")

	m := ctrl.Metrics()
	fmt.Printf("\nadapt metrics: %d windows, %d triggers, %d replans, %d repartitions, %d rows migrated\n",
		m.Windows, m.Triggers, m.Replans, m.Adoptions, m.RowsMigrated)
}

// serveWindow pushes n samples through the server; the admission path
// feeds the controller's frequency sketches via the Observer tap.
func serveWindow(srv *recross.Server, gen *recross.Generator, n int) {
	for i := 0; i < n; i++ {
		if _, err := srv.Lookup(context.Background(), gen.Sample()); err != nil {
			check(err)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}
