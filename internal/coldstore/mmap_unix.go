//go:build unix

package coldstore

import (
	"fmt"
	"syscall"
)

// mapFile maps the backing file read-only. Population writes go through
// the file descriptor (pwrite); MAP_SHARED keeps the mapping coherent with
// them on every POSIX system.
func (s *Store) mapFile() error {
	size := int(s.nPages * int64(s.cfg.PageBytes))
	mm, err := syscall.Mmap(int(s.file.Fd()), 0, size,
		syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("coldstore: mmap: %w", err)
	}
	s.mm = mm
	return nil
}

func (s *Store) unmapFile() error {
	return syscall.Munmap(s.mm)
}
