package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf samples ranks in [0, n) with P(rank k) roughly proportional to
// 1/(k+1)^alpha. Unlike math/rand.Zipf it supports any alpha >= 0
// (alpha == 0 is uniform, alpha <= ~1.3 covers realistic recommendation
// skews), using the continuous inverse-transform approximation of the
// generalized harmonic CDF, which is O(1) per sample and needs no
// per-element tables even for multi-million-row universes.
type Zipf struct {
	n     int64
	alpha float64
	total float64 // H(n+1), mass of the continuous approximation
}

// NewZipf returns a sampler over [0, n). alpha < 0 or n <= 0 is an error.
func NewZipf(n int64, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: zipf universe must be positive, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("trace: negative zipf exponent %g", alpha)
	}
	z := &Zipf{n: n, alpha: alpha}
	z.total = z.h(float64(n + 1))
	return z, nil
}

// h is the continuous generalized harmonic: integral of x^-alpha from 1 to x.
func (z *Zipf) h(x float64) float64 {
	if z.alpha == 1 {
		return math.Log(x)
	}
	return (math.Pow(x, 1-z.alpha) - 1) / (1 - z.alpha)
}

// hInv inverts h.
func (z *Zipf) hInv(y float64) float64 {
	if z.alpha == 1 {
		return math.Exp(y)
	}
	return math.Pow(y*(1-z.alpha)+1, 1/(1-z.alpha))
}

// Rank draws a rank in [0, n); rank 0 is the hottest.
func (z *Zipf) Rank(rng *rand.Rand) int64 {
	if z.alpha == 0 {
		return rng.Int63n(z.n)
	}
	u := rng.Float64()
	k := int64(z.hInv(u*z.total)) - 1
	if k < 0 {
		k = 0
	}
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// CDF returns the fraction of probability mass on ranks [0, k), useful for
// analytic expectations in tests.
func (z *Zipf) CDF(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if k >= z.n {
		return 1
	}
	if z.alpha == 0 {
		return float64(k) / float64(z.n)
	}
	return z.h(float64(k+1)) / z.total
}

// Scatter is a pseudorandom bijection on [0, n): an affine map modulo the
// smallest prime >= n, with rejection resampling back into [0, n). It
// scatters Zipf ranks across the index space so that hot rows are randomly
// distributed through the table — the paper's "low spatial locality"
// property (§3.1) — without storing an O(n) permutation for multi-million
// row tables.
type Scatter struct {
	n, p, a, b int64
}

// NewScatter builds a bijection on [0, n) seeded deterministically.
func NewScatter(n int64, seed int64) (*Scatter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: scatter domain must be positive, got %d", n)
	}
	p := nextPrime(n)
	rng := rand.New(rand.NewSource(seed))
	a := rng.Int63n(p-1) + 1 // in [1, p)
	b := rng.Int63n(p)       // in [0, p)
	return &Scatter{n: n, p: p, a: a, b: b}, nil
}

// Map applies the bijection.
func (s *Scatter) Map(i int64) int64 {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("trace: scatter input %d out of [0,%d)", i, s.n))
	}
	x := i
	for {
		x = (s.a*x + s.b) % s.p
		if x < s.n {
			return x
		}
	}
}

// nextPrime returns the smallest prime >= n (n >= 1). Trial division is fine
// for the table sizes we use (< 10^8).
func nextPrime(n int64) int64 {
	if n <= 2 {
		return 2
	}
	c := n
	if c%2 == 0 {
		c++
	}
	for ; ; c += 2 {
		if isPrime(c) {
			return c
		}
	}
}

func isPrime(n int64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := int64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
