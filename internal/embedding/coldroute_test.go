package embedding

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"recross/internal/coldstore"
	"recross/internal/trace"
)

func coldTestLayer(t *testing.T, rows int64, tables int) *Layer {
	t.Helper()
	spec := trace.ModelSpec{Name: "coldroute"}
	for i := 0; i < tables; i++ {
		spec.Tables = append(spec.Tables, trace.TableSpec{
			Name: fmt.Sprintf("t%d", i), Rows: rows, VecLen: 16, Pooling: 4, Prob: 1, Skew: 1.1,
		})
	}
	l, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// countingReader serves reference bits while counting backing-store reads,
// so the cache-in-front contract (miss -> fill -> hit) is observable.
type countingReader struct {
	l     *Layer
	reads atomic.Int64
}

func (r *countingReader) ReadColdRow(ti int, idx int64, dst []float32) bool {
	r.reads.Add(1)
	r.l.Table(ti).Row(idx, dst)
	return true
}

// TestColdRouteMissFillHit pins the MaterializeRow funnel with a backing
// store behind the row cache: the first read of a cold row misses the
// cache and hits the store, the second is served from the cache without
// touching the store, and both are bit-identical to the table.
func TestColdRouteMissFillHit(t *testing.T) {
	l := coldTestLayer(t, 1000, 1)
	cache, err := NewRowCache(64<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AttachRowCache(cache); err != nil {
		t.Fatal(err)
	}
	rd := &countingReader{l: l}
	const coldFrom = 500
	l.SetColdRoute(func(ti int, idx int64) bool { return idx >= coldFrom }, rd)

	want := make([]float32, 16)
	got := make([]float32, 16)
	l.Table(0).Row(700, want)

	l.MaterializeRow(0, 700, got)
	if !AlmostEqual(got, want, 0) {
		t.Fatal("cold read differs from table bits")
	}
	if n := rd.reads.Load(); n != 1 {
		t.Fatalf("first cold read hit the store %d times, want 1", n)
	}

	for i := range got {
		got[i] = 0
	}
	l.MaterializeRow(0, 700, got)
	if !AlmostEqual(got, want, 0) {
		t.Fatal("cached cold read differs from table bits")
	}
	if n := rd.reads.Load(); n != 1 {
		t.Fatalf("cached re-read hit the store (reads %d, want 1)", n)
	}

	// A DRAM-side row never consults the store.
	l.MaterializeRow(0, 10, got)
	l.Table(0).Row(10, want)
	if !AlmostEqual(got, want, 0) {
		t.Fatal("hot read differs from table bits")
	}
	if n := rd.reads.Load(); n != 1 {
		t.Fatalf("hot read hit the store (reads %d, want 1)", n)
	}

	// Removing the route restores plain materialization.
	l.SetColdRoute(nil, nil)
	l.MaterializeRow(0, 701, got)
	if n := rd.reads.Load(); n != 1 {
		t.Fatalf("removed route still hit the store (reads %d, want 1)", n)
	}
}

// TestColdRouteStoreBitIdentical drives the funnel against the real
// flash-backed store: every row, cold- or DRAM-routed, cached or not,
// returns the exact table bits.
func TestColdRouteStoreBitIdentical(t *testing.T) {
	l := coldTestLayer(t, 600, 2)
	srcs := make([]coldstore.RowSource, l.Tables())
	for i := range srcs {
		srcs[i] = l.Table(i)
	}
	store, err := coldstore.Open(coldstore.Config{Dir: t.TempDir(), PageBytes: 1 << 10}, srcs)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cache, err := NewRowCache(8<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AttachRowCache(cache); err != nil {
		t.Fatal(err)
	}
	l.SetColdRoute(func(ti int, idx int64) bool { return idx >= 200 },
		readerFunc(func(ti int, idx int64, dst []float32) bool { return store.ReadRow(ti, idx, dst) }))

	want := make([]float32, 16)
	got := make([]float32, 16)
	for ti := 0; ti < l.Tables(); ti++ {
		for idx := int64(0); idx < 600; idx += 7 {
			l.Table(ti).Row(idx, want)
			for pass := 0; pass < 2; pass++ { // cold/fill pass, then cache pass
				l.MaterializeRow(ti, idx, got)
				if !AlmostEqual(got, want, 0) {
					t.Fatalf("table %d row %d pass %d: bits differ", ti, idx, pass)
				}
			}
		}
	}
}

// readerFunc adapts a function to ColdReader.
type readerFunc func(ti int, idx int64, dst []float32) bool

func (f readerFunc) ReadColdRow(ti int, idx int64, dst []float32) bool { return f(ti, idx, dst) }

// TestColdRouteConcurrentHammer pounds MaterializeRow from many goroutines
// through a deliberately tiny cache (constant CLOCK eviction of concurrent
// fills) with the real store behind it, while the route is swapped
// mid-flight — the -race acceptance for the cold data plane. Every result
// must be bit-identical to the table.
func TestColdRouteConcurrentHammer(t *testing.T) {
	const rows, vecLen = 400, 16
	l := coldTestLayer(t, rows, 1)
	srcs := []coldstore.RowSource{l.Table(0)}
	store, err := coldstore.Open(coldstore.Config{Dir: t.TempDir(), PageBytes: 1 << 10}, srcs)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// ~24 rows of cache for 400 rows: fills race with evictions constantly.
	cache, err := NewRowCache(24*vecLen*4, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AttachRowCache(cache); err != nil {
		t.Fatal(err)
	}
	route := func(ti int, idx int64) bool { return idx >= 100 }
	l.SetColdRoute(route, readerFunc(func(ti int, idx int64, dst []float32) bool {
		return store.ReadRow(ti, idx, dst)
	}))

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			want := make([]float32, vecLen)
			got := make([]float32, vecLen)
			for i := 0; i < 4000; i++ {
				idx := int64((i*7 + w*13) % rows)
				l.MaterializeRow(0, idx, got)
				l.Table(0).Row(idx, want)
				if !AlmostEqual(got, want, 0) {
					select {
					case errs <- fmt.Errorf("worker %d row %d: bits differ", w, idx):
					default:
					}
					return
				}
			}
		}(w)
	}
	// Swap the route mid-flight: readers must see either route, never torn
	// state, and both return reference bits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			l.SetColdRoute(nil, nil)
			l.SetColdRoute(route, readerFunc(func(ti int, idx int64, dst []float32) bool {
				return store.ReadRow(ti, idx, dst)
			}))
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatal("hammer produced no CLOCK evictions; cache not under pressure")
	}
}
