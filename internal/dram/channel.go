package dram

import (
	"fmt"

	"recross/internal/sim"
)

// Consumer says where the data of an RD burst is consumed. The consumer
// determines which data-path resources the burst occupies — the further the
// data travels up the DRAM tree, the more serialisation it suffers, which is
// exactly why finer-grained NMP buys internal bandwidth (paper §2.3).
type Consumer int

const (
	// ToHost moves the burst all the way over the channel DQ bus.
	ToHost Consumer = iota
	// ToRankPE stops at the rank-level PE in the DIMM buffer
	// (TensorDIMM / RecNMP / ReCross R-region).
	ToRankPE
	// ToBankGroupPE stops at a bank-group-level PE inside the DRAM chip
	// (TRiM-G / ReCross G-region).
	ToBankGroupPE
	// ToBankPE stops at a bank-level PE (TRiM-B / ReCross B-region).
	ToBankPE
)

func (c Consumer) String() string {
	switch c {
	case ToHost:
		return "host"
	case ToRankPE:
		return "rank-pe"
	case ToBankGroupPE:
		return "bankgroup-pe"
	case ToBankPE:
		return "bank-pe"
	default:
		return fmt.Sprintf("consumer(%d)", int(c))
	}
}

// InstrMode selects how commands reach the devices (paper §4.2).
type InstrMode int

const (
	// Conventional DDR command encoding on the 14-bit C/A bus.
	Conventional InstrMode = iota
	// NMPTwoStage streams 82-bit NMP instructions over C/A + idle DQ pins
	// (94 pins => one instruction per cycle), the ReCross/TRiM scheme.
	NMPTwoStage
	// NMPCAOnly streams 82-bit NMP instructions over the 14 C/A pins alone
	// (six cycles per instruction) — the strawman the two-stage scheme
	// fixes; kept for the ablation.
	NMPCAOnly
)

const (
	// NMPInstrBits is the paper's compressed instruction width (§4.2).
	NMPInstrBits = 82
	// CAPins and DQPins are the DDR5 pin budgets used for instr transfer.
	CAPins = 14
	DQPins = 80
)

// instrSlots returns the host command-bus cycles one DRAM command occupies.
// In the NMP modes a single 82-bit instruction per *vector* crosses the
// host C/A (and, two-stage, the idle DQ pins); the PE's NMP-inst decoder
// expands it into ACT/RD/PRE locally (§4.2), so individual commands cost
// nothing on the host bus — the per-vector instruction feed is modelled as
// request arrival spacing (see arch.InstrCycles).
func (m InstrMode) instrSlots(tm *Timing, kind cmdKind) sim.Cycle {
	if m != Conventional {
		return 0
	}
	switch kind {
	case cmdACT:
		return tm.ActSlots
	case cmdPRE:
		return tm.PreSlots
	default:
		return tm.RdSlots
	}
}

// InstrFeedCycles returns the C/A-transfer cycles of one 82-bit NMP
// instruction in this mode: ceil(82/94) two-stage, ceil(82/14) C/A-only.
func (m InstrMode) InstrFeedCycles() sim.Cycle {
	switch m {
	case NMPTwoStage:
		return (NMPInstrBits + CAPins + DQPins - 1) / (CAPins + DQPins)
	case NMPCAOnly:
		return (NMPInstrBits + CAPins - 1) / CAPins
	default:
		return 0
	}
}

type cmdKind int

const (
	cmdACT cmdKind = iota
	cmdRD
	cmdPRE
	cmdWR
)

const noRow = -1

// bankState tracks one bank. For conventional banks only the global
// row-buffer fields are used; SALP banks additionally keep per-subarray
// local row buffers (Kim et al., ISCA'12) so that multiple rows can be
// activated concurrently, with the global bitlines handed from subarray to
// subarray under the tRA constraint.
type bankState struct {
	salp bool

	// Global row buffer (conventional banks): the single open row.
	openRow int

	lastACT sim.Cycle // most recent ACT in this bank (any subarray)
	lastRD  sim.Cycle // most recent RD in this bank

	// Write state: when the last write's data finished (tWR gates the
	// following precharge; tWTR gates same-rank reads).
	lastWREnd sim.Cycle

	// SALP state (allocated lazily).
	subOpenRow []int       // per-subarray open local row
	subLastACT []sim.Cycle // per-subarray ACT time (tRC within a subarray)
	subLastRD  []sim.Cycle
	lastRDSub  int // subarray of the most recent RD (tRA handover)
}

// Stats aggregates the event counts the energy model and the experiment
// harness consume.
type Stats struct {
	ACTs      int64
	PREs      int64
	RDs       int64
	WRs       int64
	RowHits   int64
	RowMisses int64

	// Bursts by consumer level; each burst is Geometry.BurstBytes.
	BurstsToHost   int64
	BurstsToRank   int64
	BurstsToBG     int64
	BurstsToBank   int64
	HostResultTx   int64 // result-vector bursts written back over channel DQ
	PerBankRDs     []int64
	PerBGRDs       []int64
	PerRankRDs     []int64
	PerBankACTs    []int64
	SubarraySwitch int64 // global-bitline handovers in SALP banks
}

// CmdEvent is one recorded DRAM command, for timeline visualisation
// (the Fig. 6 reproduction).
type CmdEvent struct {
	At   sim.Cycle
	Kind string // "ACT", "RD", "PRE"
	Loc  Loc
	// Done is the data-delivery completion for RD events (0 otherwise).
	Done sim.Cycle
}

// Channel is the timing state machine for one memory channel.
type Channel struct {
	Geo  Geometry
	Tm   Timing
	Mode InstrMode

	// Record enables command-event tracing into Trace.
	Record bool
	Trace  []CmdEvent

	banks []bankState

	bgLastACT []sim.Cycle // per flat bank group
	bgLastRD  []sim.Cycle

	rankLastACT []sim.Cycle
	rankLastRD  []sim.Cycle
	rankLastWR  []sim.Cycle    // end of last write data per rank (tWTR)
	rankACTHist [][4]sim.Cycle // ring of last four ACT times per rank (tFAW)
	rankACTPos  []int

	cmdBusFree sim.Cycle
	lastHostRD sim.Cycle

	salpBanks map[int]bool

	// Timing-edge epochs: revision counters bumped whenever the timing
	// state of the corresponding scope moves in a way that can push a
	// *future* command's earliest issue time. The memory controller's fast
	// arbiter caches Earliest* results and uses these to re-check
	// staleness in O(1) instead of recomputing every candidate on every
	// pick (see internal/memctrl).
	epCh   uint32
	epRank []uint32
	epBG   []uint32
	epBank []uint32

	St Stats
}

// EpochStamp captures the revision counters of every timing-state scope
// that can affect a command's earliest issue time at one location: the
// channel-global edges (command bus, host DQ), the rank edges (tRRD_S,
// tFAW, tCCD_S, tWTR), the bank-group edges (tRRD_L, tCCD_L) and the
// bank-local edges. If a stamp taken when an Earliest* query was computed
// still equals the current stamp, the cached answer is exact.
type EpochStamp struct {
	Ch, Rank, BG, Bank uint32
}

// EpochOf returns the current timing-edge stamp for l's scopes.
func (c *Channel) EpochOf(l Loc) EpochStamp {
	return EpochStamp{
		Ch:   c.epCh,
		Rank: c.epRank[l.Rank],
		BG:   c.epBG[c.Geo.FlatBG(l)],
		Bank: c.epBank[c.Geo.FlatBank(l)],
	}
}

// NewChannel builds a channel with every bank conventional. Use EnableSALP
// to mark B-region banks subarray-parallel.
func NewChannel(geo Geometry, tm Timing, mode InstrMode) (*Channel, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	nb := geo.TotalBanks()
	c := &Channel{
		Geo:         geo,
		Tm:          tm,
		Mode:        mode,
		banks:       make([]bankState, nb),
		bgLastACT:   make([]sim.Cycle, geo.Ranks*geo.BankGroups),
		bgLastRD:    make([]sim.Cycle, geo.Ranks*geo.BankGroups),
		rankLastACT: make([]sim.Cycle, geo.Ranks),
		rankLastRD:  make([]sim.Cycle, geo.Ranks),
		rankLastWR:  make([]sim.Cycle, geo.Ranks),
		rankACTHist: make([][4]sim.Cycle, geo.Ranks),
		rankACTPos:  make([]int, geo.Ranks),
		salpBanks:   make(map[int]bool),
		epRank:      make([]uint32, geo.Ranks),
		epBG:        make([]uint32, geo.Ranks*geo.BankGroups),
		epBank:      make([]uint32, nb),
	}
	c.St.PerBankRDs = make([]int64, nb)
	c.St.PerBankACTs = make([]int64, nb)
	c.St.PerBGRDs = make([]int64, geo.Ranks*geo.BankGroups)
	c.St.PerRankRDs = make([]int64, geo.Ranks)
	c.Reset()
	return c, nil
}

// Reset clears all timing and statistics state in place, reusing every
// allocation, so the channel can run another independent batch. The SALP
// configuration (EnableSALP) is retained; command recording stays enabled
// but the trace is truncated. A reset channel is indistinguishable (to
// callers) from a freshly built one with the same SALP set.
func (c *Channel) Reset() {
	neg := sim.Cycle(-1 << 40)
	for i := range c.banks {
		b := &c.banks[i]
		b.openRow = noRow
		b.lastACT = neg
		b.lastRD = neg
		b.lastWREnd = neg
		b.lastRDSub = -1
		for s := range b.subOpenRow {
			b.subOpenRow[s] = noRow
			b.subLastACT[s] = neg
			b.subLastRD[s] = neg
		}
	}
	for i := range c.bgLastACT {
		c.bgLastACT[i] = neg
		c.bgLastRD[i] = neg
	}
	for r := range c.rankLastACT {
		c.rankLastACT[r] = neg
		c.rankLastRD[r] = neg
		c.rankLastWR[r] = neg
		for k := 0; k < 4; k++ {
			c.rankACTHist[r][k] = neg
		}
		c.rankACTPos[r] = 0
	}
	c.cmdBusFree = 0
	c.lastHostRD = neg
	c.Trace = c.Trace[:0]
	c.epCh = 0
	for i := range c.epRank {
		c.epRank[i] = 0
	}
	for i := range c.epBG {
		c.epBG[i] = 0
	}
	for i := range c.epBank {
		c.epBank[i] = 0
	}
	st := &c.St
	*st = Stats{
		PerBankRDs:  st.PerBankRDs,
		PerBGRDs:    st.PerBGRDs,
		PerRankRDs:  st.PerRankRDs,
		PerBankACTs: st.PerBankACTs,
	}
	for i := range st.PerBankRDs {
		st.PerBankRDs[i] = 0
		st.PerBankACTs[i] = 0
	}
	for i := range st.PerBGRDs {
		st.PerBGRDs[i] = 0
	}
	for i := range st.PerRankRDs {
		st.PerRankRDs[i] = 0
	}
}

// EnableSALP marks the bank at flat index subarray-parallel.
func (c *Channel) EnableSALP(flatBank int) {
	b := &c.banks[flatBank]
	if b.salp {
		return
	}
	b.salp = true
	n := c.Geo.Subarrays
	b.subOpenRow = make([]int, n)
	b.subLastACT = make([]sim.Cycle, n)
	b.subLastRD = make([]sim.Cycle, n)
	neg := sim.Cycle(-1 << 40)
	for i := 0; i < n; i++ {
		b.subOpenRow[i] = noRow
		b.subLastACT[i] = neg
		b.subLastRD[i] = neg
	}
	c.salpBanks[flatBank] = true
	c.epBank[flatBank]++
}

// IsSALP reports whether the bank at flat index is subarray-parallel.
func (c *Channel) IsSALP(flatBank int) bool { return c.banks[flatBank].salp }

// RowOpen reports whether an RD to l would hit an open row buffer: the
// global row buffer for conventional banks, or the target subarray's local
// row buffer for SALP banks.
func (c *Channel) RowOpen(l Loc) bool {
	b := &c.banks[c.Geo.FlatBank(l)]
	if b.salp {
		return b.subOpenRow[c.Geo.Subarray(l.Row)] == l.Row
	}
	return b.openRow == l.Row
}

// OpenRowAt returns the row currently open for the subarray containing
// l.Row (SALP) or the bank's global row buffer, and whether any row is open.
func (c *Channel) OpenRowAt(l Loc) (int, bool) {
	b := &c.banks[c.Geo.FlatBank(l)]
	if b.salp {
		r := b.subOpenRow[c.Geo.Subarray(l.Row)]
		return r, r != noRow
	}
	return b.openRow, b.openRow != noRow
}

// afterRefresh pushes t past any all-bank refresh window of the rank:
// every tREFI cycles the rank is unavailable for tRFC (approximation: the
// issue point is gated; rows staying open across a refresh are tolerated).
func (c *Channel) afterRefresh(t sim.Cycle) sim.Cycle {
	if c.Tm.TREFI == 0 || t < 0 {
		return t
	}
	start := (t / c.Tm.TREFI) * c.Tm.TREFI
	if t < start+c.Tm.TRFC {
		return start + c.Tm.TRFC
	}
	return t
}

// fawReady returns the earliest time a new ACT satisfies tFAW in the rank.
func (c *Channel) fawReady(rank int) sim.Cycle {
	oldest := c.rankACTHist[rank][c.rankACTPos[rank]]
	return oldest + c.Tm.TFAW
}

func (c *Channel) noteACT(rank int, t sim.Cycle) {
	c.rankACTHist[rank][c.rankACTPos[rank]] = t
	c.rankACTPos[rank] = (c.rankACTPos[rank] + 1) % 4
	c.rankLastACT[rank] = t
}

// EarliestACT returns the earliest cycle >= now at which the row at l could
// be activated, including any precharge the open-page policy must issue
// first. It does not mutate state.
func (c *Channel) EarliestACT(l Loc, now sim.Cycle) sim.Cycle {
	fb := c.Geo.FlatBank(l)
	b := &c.banks[fb]
	tm := &c.Tm
	t := now

	// Row conflicts pay an implicit precharge. The PRE is modelled as
	// issued eagerly at its earliest legal time — as soon as the bank's
	// pending work makes the conflict known — rather than at the global
	// decision instant, so precharges on different banks overlap (as they
	// do in a per-cycle controller).
	if b.salp {
		s := c.Geo.Subarray(l.Row)
		if b.subOpenRow[s] != noRow && b.subOpenRow[s] != l.Row {
			pre := maxc(b.subLastACT[s]+tm.TRAS, b.subLastRD[s]+tm.TRTP, b.lastWREnd+tm.TWR)
			t = maxc(t, pre+tm.TRP)
		}
		t = maxc(t, b.subLastACT[s]+tm.TRC)
		// Inter-subarray ACTs in the same bank are spaced like sibling-bank
		// ACTs in the same group.
		t = maxc(t, b.lastACT+tm.TRRDL)
	} else {
		if b.openRow != noRow && b.openRow != l.Row {
			pre := maxc(b.lastACT+tm.TRAS, b.lastRD+tm.TRTP, b.lastWREnd+tm.TWR)
			t = maxc(t, pre+tm.TRP)
		}
		t = maxc(t, b.lastACT+tm.TRC)
	}

	t = maxc(t,
		c.bgLastACT[c.Geo.FlatBG(l)]+tm.TRRDL,
		c.rankLastACT[l.Rank]+tm.TRRDS,
		c.fawReady(l.Rank),
		c.cmdBusFree)
	return c.afterRefresh(t)
}

// IssueACT activates the row at l, issuing an implicit PRE first when the
// open-page policy requires one. It returns the ACT issue time (>= now).
func (c *Channel) IssueACT(l Loc, now sim.Cycle) sim.Cycle {
	t := c.EarliestACT(l, now)
	fb := c.Geo.FlatBank(l)
	b := &c.banks[fb]

	pred := false
	if b.salp {
		s := c.Geo.Subarray(l.Row)
		if b.subOpenRow[s] != noRow && b.subOpenRow[s] != l.Row {
			c.St.PREs++
			pred = true
		}
		b.subOpenRow[s] = l.Row
		b.subLastACT[s] = t
	} else {
		if b.openRow != noRow && b.openRow != l.Row {
			c.St.PREs++
			pred = true
		}
		b.openRow = l.Row
	}
	b.lastACT = t

	c.bgLastACT[c.Geo.FlatBG(l)] = t
	c.noteACT(l.Rank, t)
	c.cmdBusFree = t + c.Mode.instrSlots(&c.Tm, cmdACT)
	if pred {
		// The implicit PRE also consumed a command-bus slot.
		c.cmdBusFree += c.Mode.instrSlots(&c.Tm, cmdPRE)
	}
	// Timing edges moved: the bank's row/ACT state, the group's tRRD_L
	// window, the rank's tRRD_S/tFAW window, and (only when commands cost
	// host C/A slots) the shared command bus. With zero-slot NMP modes
	// cmdBusFree equals the issue time, which can never gate a later pick.
	c.epBank[fb]++
	c.epBG[c.Geo.FlatBG(l)]++
	c.epRank[l.Rank]++
	if c.cmdBusFree > t {
		c.epCh++
	}
	if c.Record {
		if pred {
			pre := t - c.Tm.TRP
			c.Trace = append(c.Trace, CmdEvent{At: pre, Kind: "PRE", Loc: l})
		}
		c.Trace = append(c.Trace, CmdEvent{At: t, Kind: "ACT", Loc: l})
	}
	c.St.ACTs++
	c.St.PerBankACTs[fb]++
	return t
}

// EarliestRD returns the earliest cycle >= now at which an RD for l could
// issue, assuming the target row is open (callers check RowOpen first).
// The consumer determines the data-path serialisation.
func (c *Channel) EarliestRD(l Loc, consumer Consumer, now sim.Cycle) sim.Cycle {
	fb := c.Geo.FlatBank(l)
	b := &c.banks[fb]
	tm := &c.Tm
	t := maxc(now, c.cmdBusFree)

	if b.salp {
		s := c.Geo.Subarray(l.Row)
		t = maxc(t, b.subLastACT[s]+tm.TRCD)
		if b.lastRDSub >= 0 && b.lastRDSub != s {
			// Global-bitline handover between subarrays: tRA.
			t = maxc(t, b.lastRD+tm.TRA)
		} else {
			t = maxc(t, b.lastRD+tm.TCCDL)
		}
	} else {
		t = maxc(t, b.lastACT+tm.TRCD, b.lastRD+tm.TCCDL)
	}

	// Write-to-read turnaround within the rank.
	t = maxc(t, c.rankLastWR[l.Rank]+tm.TWTR)

	switch consumer {
	case ToBankPE:
		// Data stays at the bank; no further serialisation.
	case ToBankGroupPE:
		t = maxc(t, c.bgLastRD[c.Geo.FlatBG(l)]+tm.TCCDL)
	case ToRankPE:
		t = maxc(t, c.bgLastRD[c.Geo.FlatBG(l)]+tm.TCCDL,
			c.rankLastRD[l.Rank]+tm.TCCDS)
	case ToHost:
		t = maxc(t, c.bgLastRD[c.Geo.FlatBG(l)]+tm.TCCDL,
			c.rankLastRD[l.Rank]+tm.TCCDS,
			c.lastHostRD+tm.TBL)
	}
	return c.afterRefresh(t)
}

// IssueRD issues an RD burst at l for the given consumer. It returns the
// command issue time and the cycle at which the burst's data is fully
// delivered (issue + tCL + tBL).
func (c *Channel) IssueRD(l Loc, consumer Consumer, now sim.Cycle) (issue, done sim.Cycle) {
	t := c.EarliestRD(l, consumer, now)
	fb := c.Geo.FlatBank(l)
	b := &c.banks[fb]

	if b.salp {
		s := c.Geo.Subarray(l.Row)
		if b.lastRDSub >= 0 && b.lastRDSub != s {
			c.St.SubarraySwitch++
		}
		b.subLastRD[s] = t
		b.lastRDSub = s
	}
	b.lastRD = t

	fbg := c.Geo.FlatBG(l)
	switch consumer {
	case ToBankPE:
		c.St.BurstsToBank++
	case ToBankGroupPE:
		c.bgLastRD[fbg] = t
		c.St.BurstsToBG++
	case ToRankPE:
		c.bgLastRD[fbg] = t
		c.rankLastRD[l.Rank] = t
		c.St.BurstsToRank++
	case ToHost:
		c.bgLastRD[fbg] = t
		c.rankLastRD[l.Rank] = t
		c.lastHostRD = t
		c.St.BurstsToHost++
	}

	c.cmdBusFree = t + c.Mode.instrSlots(&c.Tm, cmdRD)
	// Timing edges moved: the bank always; the group/rank/host paths only
	// when the burst traveled that far up the tree (the consumer switch
	// above mirrors exactly which last-RD trackers were written).
	c.epBank[fb]++
	switch consumer {
	case ToBankGroupPE:
		c.epBG[fbg]++
	case ToRankPE:
		c.epBG[fbg]++
		c.epRank[l.Rank]++
	case ToHost:
		c.epBG[fbg]++
		c.epRank[l.Rank]++
		c.epCh++
	}
	if c.cmdBusFree > t {
		c.epCh++
	}
	c.St.RDs++
	c.St.PerBankRDs[fb]++
	c.St.PerBGRDs[fbg]++
	c.St.PerRankRDs[l.Rank]++
	done = t + c.Tm.TCL + c.Tm.TBL
	if c.Record {
		c.Trace = append(c.Trace, CmdEvent{At: t, Kind: "RD", Loc: l, Done: done})
	}
	return t, done
}

// EarliestWR returns the earliest cycle >= now at which a WR burst for l
// could issue (host-sourced embedding updates; the row must be open).
func (c *Channel) EarliestWR(l Loc, now sim.Cycle) sim.Cycle {
	fb := c.Geo.FlatBank(l)
	b := &c.banks[fb]
	tm := &c.Tm
	t := maxc(now, c.cmdBusFree)
	if b.salp {
		s := c.Geo.Subarray(l.Row)
		t = maxc(t, b.subLastACT[s]+tm.TRCD)
	} else {
		t = maxc(t, b.lastACT+tm.TRCD)
	}
	// Column cadence with preceding reads/writes on the bank and the
	// shared paths; write data arrives over the channel DQ.
	t = maxc(t, b.lastRD+tm.TCCDL, b.lastWREnd-tm.TBL+tm.TCCDL,
		c.bgLastRD[c.Geo.FlatBG(l)]+tm.TCCDL,
		c.rankLastRD[l.Rank]+tm.TCCDS,
		c.lastHostRD+tm.TBL)
	return c.afterRefresh(t)
}

// IssueWR issues a write burst at l (embedding updates flow from the host;
// NMP PEs never write). It returns the command issue time and the cycle at
// which the write data has fully arrived.
func (c *Channel) IssueWR(l Loc, now sim.Cycle) (issue, done sim.Cycle) {
	t := c.EarliestWR(l, now)
	fb := c.Geo.FlatBank(l)
	b := &c.banks[fb]
	done = t + c.Tm.TCL + c.Tm.TBL
	b.lastWREnd = done
	c.rankLastWR[l.Rank] = done
	c.lastHostRD = t // occupies the channel DQ like a host burst
	c.cmdBusFree = t + c.Mode.instrSlots(&c.Tm, cmdWR)
	// Timing edges moved: bank write state, rank tWTR window, host DQ.
	c.epBank[fb]++
	c.epRank[l.Rank]++
	c.epCh++
	c.St.WRs++
	if c.Record {
		c.Trace = append(c.Trace, CmdEvent{At: t, Kind: "WR", Loc: l, Done: done})
	}
	return t, done
}

// ResultTransfer models streaming nBursts of reduced result data from the
// DIMM back to the host over the channel DQ, starting no earlier than `now`.
// It returns the completion time.
func (c *Channel) ResultTransfer(nBursts int, now sim.Cycle) sim.Cycle {
	t := maxc(now, c.lastHostRD+c.Tm.TBL)
	for i := 0; i < nBursts; i++ {
		c.lastHostRD = t
		t += c.Tm.TBL
		c.St.HostResultTx++
	}
	c.epCh++
	return t
}

// StreamResults models per-operation result write-backs that OVERLAP the
// NMP drain: PEs release each op's reduced vector as its lastTag arrives
// (§4.2), and the channel DQ is otherwise idle during NMP processing. The
// batch finishes when both the drain and the cumulative DQ result traffic
// are done.
func (c *Channel) StreamResults(nBursts int, drainFinish sim.Cycle) sim.Cycle {
	c.St.HostResultTx += int64(nBursts)
	txTime := sim.Cycle(nBursts) * c.Tm.TBL
	finish := drainFinish
	if txTime > finish {
		finish = txTime
	}
	// The final op's result can only leave after the drain completes.
	c.lastHostRD = finish
	c.epCh++
	return finish
}

// CmdBusFree returns when the command bus next frees up (for tests).
func (c *Channel) CmdBusFree() sim.Cycle { return c.cmdBusFree }

func maxc(xs ...sim.Cycle) sim.Cycle {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
