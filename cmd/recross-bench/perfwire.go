package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/cluster"
	"recross/internal/embedding"
	"recross/internal/kernels"
	"recross/internal/serve"
	"recross/internal/trace"
)

// ---- PR10: binary wire protocol benchmarks ----
//
// The cluster_wire_* series prices the two transports against each
// other over real loopback TCP with a no-op timing model behind them,
// so what's measured is the wire: encode/decode, framing, connection
// handling. Bytes are counted at the socket (headers included) on both
// wires — recross_cluster_wire_* counters for binary, a counting
// net.Conn under the HTTP client for JSON.

// perfWireSpec is the wire workload: a Criteo-style many-table
// multi-hot shape — 16 sum-pooled categorical tables, a few gathers
// each, 16-dim vectors — so a 4-node router scatters every lookup into
// four sub-requests whose payloads look like production scatter
// slices: small enough that HTTP/1's per-request envelope (headers,
// field names, per-sub-request JSON meta) is a real fraction of the
// JSON wire's cost, which is exactly the tax the multiplexed binary
// transport exists to remove.
func perfWireSpec() trace.ModelSpec {
	tabs := make([]trace.TableSpec, 16)
	for i := range tabs {
		tabs[i] = trace.TableSpec{
			Name: fmt.Sprintf("t%d", i), Rows: 200000, VecLen: 16,
			Pooling: 4, Prob: 1, Skew: 1.2, Kind: trace.Sum,
		}
	}
	return trace.ModelSpec{Name: "perf-wire", Tables: tabs}
}

// countingConn counts socket bytes both ways, so the JSON wire's cost
// includes HTTP headers — the same accounting the binary side's frame
// counters use.
type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

func countingHTTPClient(in, out *atomic.Int64) *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return &countingConn{Conn: c, in: in, out: out}, nil
		},
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// perfWirePeers stands up k serving peers over a shared layer, fronted
// by the requested wire, and returns the transport nodes plus a
// socket-byte reader covering every peer.
func perfWirePeers(spec trace.ModelSpec, layer *embedding.Layer, k int, wire string, prec kernels.Precision) (nodes []cluster.Node, ids []string, bytesFn func() int64, cleanup func(), err error) {
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	var in, out atomic.Int64
	httpClient := countingHTTPClient(&in, &out)
	var bins []*cluster.BinNode
	for i := 0; i < k; i++ {
		srv, serr := serve.New(serve.Options{
			Systems: []arch.System{perfServeSystem{}}, Layer: layer, MaxBatch: 1,
		})
		if serr != nil {
			cleanup()
			return nil, nil, nil, nil, serr
		}
		closers = append(closers, func() { srv.Close() })
		id := fmt.Sprintf("n%d", i)
		ids = append(ids, id)
		switch wire {
		case "json":
			ts := httptest.NewServer(srv.Handler())
			closers = append(closers, ts.Close)
			nodes = append(nodes, cluster.NewHTTPNode(id, ts.URL, httpClient))
		default: // binary
			bs, berr := cluster.NewBinServer(cluster.BinServerOptions{Backend: srv, Layer: layer})
			if berr != nil {
				cleanup()
				return nil, nil, nil, nil, berr
			}
			lis, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				cleanup()
				return nil, nil, nil, nil, lerr
			}
			go bs.Serve(lis)
			closers = append(closers, func() { bs.Close() })
			bn := cluster.NewBinNode(id, lis.Addr().String(), cluster.BinNodeOptions{Precision: prec})
			bins = append(bins, bn)
			nodes = append(nodes, bn)
		}
	}
	bytesFn = func() int64 {
		if wire == "json" {
			return in.Load() + out.Load()
		}
		var total int64
		for _, bn := range bins {
			m := bn.WireMetrics()
			total += m.BytesIn.Load() + m.BytesOut.Load()
		}
		return total
	}
	return nodes, ids, bytesFn, cleanup, nil
}

// perfWireNode measures one point-to-point transport: sequential
// lookups against a single peer, recording wall ns, client allocs and
// socket bytes per lookup.
func perfWireNode(wire string, prec kernels.Precision, name string) (perfEntry, error) {
	spec := perfWireSpec()
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	nodes, _, bytesFn, cleanup, err := perfWirePeers(spec, layer, 1, wire, prec)
	if err != nil {
		return perfEntry{}, err
	}
	defer cleanup()
	node := nodes[0]
	defer node.Close()

	gen, err := trace.NewGenerator(spec, 23)
	if err != nil {
		return perfEntry{}, err
	}
	samples := make([]trace.Sample, 64)
	for i := range samples {
		samples[i] = gen.Sample()
	}
	ctx := context.Background()
	if _, err := node.Lookup(ctx, samples[0]); err != nil { // warm conns + pools
		return perfEntry{}, err
	}
	var bytesPerLookup float64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		start := bytesFn()
		for i := 0; i < b.N; i++ {
			if _, err := node.Lookup(ctx, samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
		bytesPerLookup = float64(bytesFn()-start) / float64(b.N)
	})
	e := mkEntry(name, r, 0)
	e.WireBytesPerLookup = bytesPerLookup
	return e, nil
}

// perfWireCluster measures the 4-node scale-out contrast: a router
// scatter-gathering every lookup across four peers over the given wire,
// under a closed-loop load run. ThroughputRPS is the headline number;
// bytes/lookup divides every peer's socket traffic by completed
// lookups (scatter sub-requests included — that is the point).
func perfWireCluster(wire string, prec kernels.Precision, name string) (perfEntry, error) {
	spec := perfWireSpec()
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		return perfEntry{}, err
	}
	nodes, ids, bytesFn, cleanup, err := perfWirePeers(spec, layer, 4, wire, prec)
	if err != nil {
		return perfEntry{}, err
	}
	defer cleanup()
	pl, err := cluster.RingPlacement(len(spec.Tables), ids, cluster.PlacementOptions{})
	if err != nil {
		return perfEntry{}, err
	}
	r, err := cluster.NewRouter(cluster.Options{
		Nodes: nodes, Placement: pl, Layer: layer,
		ProbeInterval: -1, HedgeDelay: -1,
	})
	if err != nil {
		return perfEntry{}, err
	}
	defer r.Close()

	start := bytesFn()
	rep, err := cluster.Loadgen(r, serve.LoadgenOptions{
		Spec: spec, Clients: 16, Duration: 1500 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		return perfEntry{}, err
	}
	e := perfEntry{
		Name:          name,
		N:             int(rep.Requests),
		NsPerOp:       float64(rep.P50.Nanoseconds()),
		P99Ns:         float64(rep.P99.Nanoseconds()),
		ThroughputRPS: rep.Thru,
	}
	if rep.Requests > 0 {
		e.WireBytesPerLookup = float64(bytesFn()-start) / float64(rep.Requests)
	}
	return e, nil
}

// perfWireSuite runs the JSON-vs-binary series: point-to-point at fp32
// plus the fp16 wire-compression point, then the 4-node scale-out run
// on each transport.
func perfWireSuite() ([]perfEntry, error) {
	var out []perfEntry
	for _, c := range []struct {
		wire string
		prec kernels.Precision
		name string
	}{
		{"json", kernels.FP32, "cluster_wire_node_json"},
		{"binary", kernels.FP32, "cluster_wire_node_binary"},
		{"binary", kernels.FP16, "cluster_wire_node_binary_fp16"},
	} {
		e, err := perfWireNode(c.wire, c.prec, c.name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	for _, c := range []struct {
		wire string
		prec kernels.Precision
		name string
	}{
		{"json", kernels.FP32, "cluster_wire_4node_json"},
		{"binary", kernels.FP32, "cluster_wire_4node_binary"},
		{"binary", kernels.FP16, "cluster_wire_4node_binary_fp16"},
	} {
		e, err := perfWireCluster(c.wire, c.prec, c.name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
