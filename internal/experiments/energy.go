package experiments

import (
	"fmt"
	"io"

	"recross/internal/energy"
)

// Fig15 reproduces the energy comparison: per-architecture energy breakdown
// (ACT / RD / off-chip IO / PE / static) and the savings of ReCross over
// each baseline. Paper: ReCross saves 58.5 % vs CPU, 57.2 % vs TensorDIMM,
// 51.9 % vs RecNMP, 28.5 % vs TRiM-G, 23.7 % vs TRiM-B.
func Fig15(cfg Config) (*Table, error) {
	set, err := NewArchSet(cfg)
	if err != nil {
		return nil, err
	}
	stats, err := set.RunAll()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fig. 15 — energy breakdown (millijoules per batch) and ReCross savings",
		Note:  "paper savings vs: CPU 58.5%, TensorDIMM 57.2%, RecNMP 51.9%, TRiM-G 28.5%, TRiM-B 23.7%",
		Cols:  []string{"architecture", "ACT", "RD", "IO", "PE", "cache", "static", "total", "recross-saves"},
	}
	mJ := func(j float64) string { return fmt.Sprintf("%.4f", j*1e3) }
	rcTotal := stats["recross"].Energy.Total()
	for _, name := range ArchNames {
		e := stats[name].Energy
		saves := "-"
		if name != "recross" && e.Total() > 0 {
			saves = fmt.Sprintf("%.1f%%", 100*(1-rcTotal/e.Total()))
		}
		t.AddRow(name, mJ(e.ACT), mJ(e.RD), mJ(e.IO), mJ(e.PE), mJ(e.Cache), mJ(e.Static),
			mJ(e.Total()), saves)
	}
	return t, nil
}

// Table3 reproduces the area-overhead table.
func Table3() *Table {
	t := &Table{
		Title: "Table 3 — extra area overhead per architecture",
		Note:  "rank PE per DIMM buffer chip; BG/bank PEs per DRAM chip (40nm-calibrated model)",
		Cols:  []string{"architecture", "rank-PE-mm2", "chip-PE-mm2"},
	}
	for _, a := range energy.TableAreas() {
		t.AddRow(a.Arch, f2(a.RankPEMM2), f2(a.ChipPEMM2))
	}
	return t
}

// RunAll executes the complete evaluation suite in paper order, writing
// each table to w as it completes.
func RunAll(cfg Config, w io.Writer) error {
	steps := []struct {
		name string
		run  func() (fmt.Stringer, error)
	}{
		{"Fig3", func() (fmt.Stringer, error) { return Fig3(cfg) }},
		{"Fig4", func() (fmt.Stringer, error) { return Fig4(cfg) }},
		{"Fig5", func() (fmt.Stringer, error) { return Fig5(cfg) }},
		{"Fig6", func() (fmt.Stringer, error) {
			s, err := Fig6()
			return stringResult(s), err
		}},
		{"Fig9", func() (fmt.Stringer, error) { return Fig9(cfg) }},
		{"Fig10", func() (fmt.Stringer, error) { return Fig10(cfg) }},
		{"Fig11", func() (fmt.Stringer, error) { return Fig11(cfg) }},
		{"Fig12", func() (fmt.Stringer, error) { return Fig12(cfg) }},
		{"Fig13", func() (fmt.Stringer, error) { return Fig13(cfg) }},
		{"Fig14", func() (fmt.Stringer, error) { return Fig14(cfg) }},
		{"Fig15", func() (fmt.Stringer, error) { return Fig15(cfg) }},
		{"Table3", func() (fmt.Stringer, error) { return Table3(), nil }},
	}
	for _, s := range steps {
		res, err := s.run()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
		if _, err := fmt.Fprintf(w, "%s\n", res.String()); err != nil {
			return err
		}
	}
	return nil
}

type stringResult string

func (s stringResult) String() string { return string(s) }
