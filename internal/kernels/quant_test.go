package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// f16RefToF32 is the textbook branchy reference decode used to validate
// the bit-trick F16ToF32 over the whole 16-bit domain.
func f16RefToF32(h uint16) float32 {
	sign := float64(1)
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1f)
	man := int(h & 0x3ff)
	switch exp {
	case 0:
		return float32(sign * float64(man) * math.Pow(2, -24))
	case 31:
		if man != 0 {
			return float32(math.NaN())
		}
		return float32(sign * math.Inf(1))
	default:
		return float32(sign * (1 + float64(man)/1024) * math.Pow(2, float64(exp-15)))
	}
}

func TestF16ToF32Exhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		got := F16ToF32(uint16(h))
		want := f16RefToF32(uint16(h))
		if math.IsNaN(float64(want)) {
			if !math.IsNaN(float64(got)) {
				t.Fatalf("h=%#04x: got %v, want NaN", h, got)
			}
			continue
		}
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("h=%#04x: got %x (%v), want %x (%v)",
				h, math.Float32bits(got), got, math.Float32bits(want), want)
		}
	}
}

func TestF32ToF16RoundTrip(t *testing.T) {
	// Every binary16 value is exactly representable in binary32, so
	// encode(decode(h)) must reproduce h (modulo NaN payloads).
	for h := 0; h < 1<<16; h++ {
		f := F16ToF32(uint16(h))
		if math.IsNaN(float64(f)) {
			if back := F32ToF16(f); back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("h=%#04x: NaN did not round-trip to NaN (%#04x)", h, back)
			}
			continue
		}
		if back := F32ToF16(f); back != uint16(h) {
			t.Fatalf("h=%#04x -> %v -> %#04x", h, f, back)
		}
	}
}

func TestF32ToF16Rounding(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-2, 0xc000},
		{65504, 0x7bff},     // largest finite binary16
		{65520, 0x7c00},     // halfway to the next step: RNE carries to Inf
		{65519.996, 0x7bff}, // just below halfway
		{65536, 0x7c00},     // above the range
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{5.9604645e-8, 0x0001},  // smallest binary16 subnormal
		{2.9802322e-8, 0x0000},  // half of it: RNE ties to even (zero)
		{2.9802326e-8, 0x0001},  // just above the tie: rounds up
		{6.1035156e-5, 0x0400},  // smallest binary16 normal (2^-14)
		{6.0975552e-5, 0x03ff},  // largest binary16 subnormal
		{1.0009765625, 0x3c01},  // 1 + 2^-10
		{1.00048828125, 0x3c00}, // 1 + 2^-11: tie, rounds to even mantissa
		{1.0004884, 0x3c01},     // one float32 ULP above the tie
	}
	for _, c := range cases {
		if got := F32ToF16(c.in); got != c.want {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
	if got := F32ToF16(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("F32ToF16(NaN) = %#04x, not a NaN", got)
	}
}

func TestF32ToF16RelError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := (rng.Float32()*2 - 1) * float32(math.Pow(2, float64(rng.Intn(20)-10)))
		r := F16ToF32(F32ToF16(v))
		err := math.Abs(float64(r) - float64(v))
		bound := math.Pow(2, -11)*math.Abs(float64(v)) + math.Pow(2, -25)
		if err > bound {
			t.Fatalf("v=%v round-trips to %v, err %g > bound %g", v, r, err, bound)
		}
	}
}

func TestQuantizeI8Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := make([]uint8, 128)
	dec := make([]float32, 128)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(128)
		src := make([]float32, n)
		span := float32(math.Pow(2, float64(rng.Intn(16)-8)))
		for i := range src {
			src[i] = (rng.Float32()*2 - 1) * span
		}
		scale, zero := QuantizeI8(q, src)
		DecodeI8(dec[:n], q, scale, zero)
		absMax := 0.0
		for _, v := range src {
			if a := math.Abs(float64(v)); a > absMax {
				absMax = a
			}
		}
		// Derived bound: scale/2 from rounding to the grid, a 2^-13*scale
		// slack for the float32 rounding of scale itself shifting the grid,
		// and one float32 rounding of the dequantized product.
		bound := math.Abs(float64(scale))*(0.5+math.Pow(2, -13)) + math.Pow(2, -24)*absMax
		for i := 0; i < n; i++ {
			if err := math.Abs(float64(dec[i]) - float64(src[i])); err > bound {
				t.Fatalf("trial %d elem %d: src %v dec %v err %g > bound %g (scale %v zero %d)",
					trial, i, src[i], dec[i], err, bound, scale, zero)
			}
		}
	}
}

func TestQuantizeI8ConstantRowExact(t *testing.T) {
	for _, c := range []float32{0, 1, -1, 0.37, -123456, 1e-20} {
		src := []float32{c, c, c}
		q := make([]uint8, 3)
		scale, zero := QuantizeI8(q, src)
		dec := make([]float32, 3)
		DecodeI8(dec, q, scale, zero)
		for i, v := range dec {
			if math.Float32bits(v) != math.Float32bits(c) {
				t.Fatalf("constant %v decoded to %v at %d", c, v, i)
			}
		}
	}
}

// TestFusedBitIdenticalToDecode asserts the fused-kernel invariant: the
// fused accumulate from quantized storage must produce exactly the bits
// of decoding the row to float32 first and running the fp32 kernel.
func TestFusedBitIdenticalToDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 3, 7, 8, 9, 16, 17, 64, 127} {
		src := make([]float32, n)
		for i := range src {
			src[i] = rng.Float32()*2 - 1
		}
		q8 := make([]uint8, n)
		scale, zero := QuantizeI8(q8, src)
		q16 := make([]uint16, n)
		QuantizeF16(q16, src)
		dec8 := make([]float32, n)
		DecodeI8(dec8, q8, scale, zero)
		dec16 := make([]float32, n)
		DecodeF16(dec16, q16)
		w := rng.Float32()

		acc := func() []float32 {
			a := make([]float32, n)
			for i := range a {
				a[i] = rng.Float32()
			}
			return a
		}
		rng = rand.New(rand.NewSource(3 + int64(n))) // same accs per variant
		check := func(name string, fused func(dst []float32), ref func(dst []float32)) {
			t.Helper()
			seed := rng.Int63()
			rng = rand.New(rand.NewSource(seed))
			a := acc()
			rng = rand.New(rand.NewSource(seed))
			b := acc()
			fused(a)
			ref(b)
			for i := range a {
				if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
					t.Fatalf("n=%d %s: lane %d fused %x ref %x", n, name, i,
						math.Float32bits(a[i]), math.Float32bits(b[i]))
				}
			}
		}
		check("AddI8",
			func(d []float32) { AddI8(d, q8, scale, zero) },
			func(d []float32) { Add(d, dec8) })
		check("AxpyI8",
			func(d []float32) { AxpyI8(d, q8, w, scale, zero) },
			func(d []float32) { Axpy(d, dec8, w) })
		check("MaxI8",
			func(d []float32) { MaxI8(d, q8, scale, zero) },
			func(d []float32) { Max(d, dec8) })
		check("AddF16",
			func(d []float32) { AddF16(d, q16) },
			func(d []float32) { Add(d, dec16) })
		check("AxpyF16",
			func(d []float32) { AxpyF16(d, q16, w) },
			func(d []float32) { Axpy(d, dec16, w) })
		check("MaxF16",
			func(d []float32) { MaxF16(d, q16) },
			func(d []float32) { Max(d, dec16) })
	}
}

func TestEncodeDecodeRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range []Precision{FP32, FP16, INT8} {
		for _, n := range []int{1, 7, 64} {
			src := make([]float32, n)
			for i := range src {
				src[i] = rng.Float32()*2 - 1
			}
			buf := make([]byte, p.RowBytes(n))
			if w := EncodeRow(p, buf, src); w != len(buf) {
				t.Fatalf("%v n=%d: EncodeRow wrote %d, want %d", p, n, w, len(buf))
			}
			dec := make([]float32, n)
			DecodeRow(p, dec, buf)
			// Re-encoding the decoded row must be byte-identical for FP32
			// (raw bits) and idempotent for the quantized formats
			// (decode-encode of an on-grid row reproduces the code).
			buf2 := make([]byte, p.RowBytes(n))
			EncodeRow(p, buf2, dec)
			if p != INT8 { // int8 re-derives scale from the decoded span
				for i := range buf {
					if buf[i] != buf2[i] {
						t.Fatalf("%v n=%d: re-encode differs at byte %d", p, n, i)
					}
				}
			}
			if p == FP32 {
				for i := range src {
					if math.Float32bits(dec[i]) != math.Float32bits(src[i]) {
						t.Fatalf("fp32 n=%d: lane %d not bit-identical", n, i)
					}
				}
			}
		}
	}
}

func TestParsePrecision(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
	}{{"fp32", FP32}, {"", FP32}, {"fp16", FP16}, {"half", FP16}, {"int8", INT8}, {"i8", INT8}} {
		got, err := ParsePrecision(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Error("ParsePrecision(bf16) should fail")
	}
	if FP32.RowBytes(64) != 256 || FP16.RowBytes(64) != 128 || INT8.RowBytes(64) != 72 {
		t.Errorf("RowBytes: %d %d %d", FP32.RowBytes(64), FP16.RowBytes(64), INT8.RowBytes(64))
	}
	if r := INT8.Ratio(64); r < 3.5 || r > 3.6 {
		t.Errorf("INT8.Ratio(64) = %v", r)
	}
}

func BenchmarkAxpyI8_64(b *testing.B) {
	src := make([]float32, 64)
	for i := range src {
		src[i] = float32(i)/64 - 0.5
	}
	q := make([]uint8, 64)
	scale, zero := QuantizeI8(q, src)
	dst := make([]float32, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AxpyI8(dst, q, 0.5, scale, zero)
	}
}

func BenchmarkAxpyF16_64(b *testing.B) {
	src := make([]float32, 64)
	for i := range src {
		src[i] = float32(i)/64 - 0.5
	}
	q := make([]uint16, 64)
	QuantizeF16(q, src)
	dst := make([]float32, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AxpyF16(dst, q, 0.5)
	}
}
