package adapt

import (
	"fmt"

	"recross/internal/nmp"
	"recross/internal/partition"
)

// Plan prices a proposed repartitioning against the placement it would
// replace. All latency figures are DRAM cycles per batch under the LIVE
// profile: the old decision was optimal for traffic that no longer
// exists, so both sides are evaluated under what the traffic is now.
type Plan struct {
	// RowsMoved and BytesMoved are the row-range migration volume: rows
	// whose region assignment changes between the decisions. Computed
	// from the per-table row-fraction deltas — fraction moved is the sum
	// of positive per-region gains (what must be copied in; the matching
	// losses are frees, not copies).
	RowsMoved  int64
	BytesMoved int64
	// MigCycles is the estimated migration cost in bandwidth-cycles:
	// moved bytes pushed through the regions' combined internal
	// bandwidth. Migration rides the same buses as serving, so this is
	// the bandwidth-seconds (in cycle units) the move steals from
	// traffic. Bytes crossing the DRAM/cold boundary are priced at the
	// flash tier's (far lower) bandwidth in both directions — a demotion
	// writes flash pages, a promotion reads them — so cold churn weighs
	// on the hysteresis gate proportionally to how slow it really is.
	MigCycles float64
	// ColdPromotedRows and ColdDemotedRows count ranked rows crossing the
	// DRAM/cold boundary (cold->DRAM and DRAM->cold respectively), filled
	// by the controller from the placement diff on adoption. Zero without
	// a cold tier or when the plan was not adopted.
	ColdPromotedRows, ColdDemotedRows int64
	// OldT and NewT are the estimated per-batch latency bounds of the
	// incumbent and proposed decisions under the live profile.
	OldT, NewT float64
	// Speedup is OldT/NewT (1 = no change).
	Speedup float64
}

// PlanMigration prices replacing old with next under live profile p.
// oldShares, when non-nil, is the live per-segment access share under the
// incumbent's ranking (Detector.SegShares); it makes the incumbent's
// pricing identity-aware — a pure hot-set permutation leaves the CDF
// shape (and hence partition.Estimate) unchanged while gutting the actual
// placement. nil falls back to the shape-based estimate.
func PlanMigration(p *partition.Profile, old, next *partition.Decision, batch int, oldShares [][]float64) (*Plan, error) {
	if old == nil || next == nil {
		return nil, fmt.Errorf("adapt: nil decision")
	}
	if len(old.RowFrac) != len(next.RowFrac) || len(old.RowFrac) != len(p.Spec.Tables) {
		return nil, fmt.Errorf("adapt: decisions cover %d/%d tables, profile has %d",
			len(old.RowFrac), len(next.RowFrac), len(p.Spec.Tables))
	}
	pl := &Plan{}
	cold := make([]bool, len(next.Regions))
	for j, r := range next.Regions {
		cold[j] = r.Level == nmp.LevelCold
	}
	// Bytes copied in per destination region, plus bytes leaving cold
	// regions (a promotion reads flash before it writes DRAM).
	inBytes := make([]float64, len(next.Regions))
	var coldOutBytes float64
	for i, t := range p.Spec.Tables {
		if len(old.RowFrac[i]) != len(next.RowFrac[i]) {
			return nil, fmt.Errorf("adapt: table %d region counts differ (%d vs %d)",
				i, len(old.RowFrac[i]), len(next.RowFrac[i]))
		}
		var movedFrac float64
		tblBytes := float64(t.Rows) * float64(t.VecLen) * 4
		for j := range old.RowFrac[i] {
			d := next.RowFrac[i][j] - old.RowFrac[i][j]
			if d > 0 {
				movedFrac += d
				inBytes[j] += d * tblBytes
			} else if cold[j] {
				coldOutBytes += -d * tblBytes
			}
		}
		rows := int64(movedFrac * float64(t.Rows))
		pl.RowsMoved += rows
		pl.BytesMoved += rows * int64(t.VecLen) * 4
	}
	var dramBW, coldBW, dramBytes, coldBytes float64
	for j, r := range next.Regions {
		if cold[j] {
			coldBW += r.BW
			coldBytes += inBytes[j]
		} else {
			dramBW += r.BW
			dramBytes += inBytes[j]
		}
	}
	coldBytes += coldOutBytes
	if dramBW > 0 {
		pl.MigCycles += dramBytes / dramBW
	}
	if coldBW > 0 {
		pl.MigCycles += coldBytes / coldBW
	}
	var oldT float64
	var err error
	if oldShares != nil {
		_, oldT, err = partition.EstimateShares(old, partition.AccessVolumes(p.Spec, batch), oldShares)
	} else {
		_, oldT, err = partition.Estimate(p, old, batch)
	}
	if err != nil {
		return nil, fmt.Errorf("adapt: pricing incumbent: %w", err)
	}
	pl.OldT = oldT
	pl.NewT = next.T
	if pl.NewT > 0 {
		pl.Speedup = pl.OldT / pl.NewT
	}
	return pl, nil
}

// Worthwhile applies the hysteresis economics: the predicted speedup must
// clear minGain, and the per-batch cycle saving amortized over horizon
// batches must repay the migration's bandwidth-cycles. A plan that saves
// nothing or moves more than it saves is not adopted no matter how large
// the drift score — drift measures staleness, the plan measures whether
// fixing it pays.
func (pl *Plan) Worthwhile(minGain float64, horizon int64) bool {
	if pl.Speedup < 1+minGain {
		return false
	}
	return (pl.OldT-pl.NewT)*float64(horizon) > pl.MigCycles
}
