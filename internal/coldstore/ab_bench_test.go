package coldstore

import (
	"testing"
)

// benchPageRead measures the uncached row-read path — device page read,
// integrity verification (when enabled), decode and cache install — with a
// one-frame cache so every operation goes to the device. The checksum-on /
// checksum-off pair bounds the verification overhead the PR budgets at
// <5%: block-granular sums mean a fill checks ~4 KiB, not the whole page.
func benchPageRead(b *testing.B, checksum bool) {
	cfg := Config{Dir: b.TempDir(), PageBytes: 16 << 10, CacheBytes: 1, DisableChecksum: !checksum}
	src := &testSource{id: 1, rows: 200000, vecLen: 64}
	s, err := Open(cfg, []RowSource{src})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	dst := make([]float32, 64)
	rows := int64(200000)
	for i := int64(0); i < rows; i += int64(s.RowsPerPage()) {
		s.ReadRow(0, i, dst)
	}
	stride := int64(s.RowsPerPage())
	var idx int64
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ReadRow(0, idx%rows, dst)
		idx += stride
	}
}

func BenchmarkPageReadChecksum(b *testing.B)   { benchPageRead(b, true) }
func BenchmarkPageReadNoChecksum(b *testing.B) { benchPageRead(b, false) }
