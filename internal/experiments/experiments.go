// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): one runner per experiment, shared by the recross-bench
// command and the repository's benchmark suite. Each runner returns a
// plain-text Table whose rows mirror what the paper plots, so EXPERIMENTS.md
// can record paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"recross/internal/arch"
	"recross/internal/baseline"
	"recross/internal/core"
	"recross/internal/partition"
	"recross/internal/trace"
)

// Config scales the experiment suite. Paper() is full fidelity; Quick()
// shrinks the workload so the whole suite runs in seconds (used by unit
// tests and the Go benchmarks, where per-iteration cost matters).
type Config struct {
	VecLen         int
	Pooling        int
	Batch          int
	Ranks          int
	Seed           int64 // measured-trace seed
	ProfileSeed    int64 // offline profiling seed (training data)
	ProfileSamples int
	Parallel       bool // run sweep points concurrently
}

// Paper returns the evaluation defaults of §5.1: vector length 64, 80
// vectors per operation, batch 32, 2 ranks.
func Paper() Config {
	return Config{
		VecLen:         64,
		Pooling:        80,
		Batch:          32,
		Ranks:          2,
		Seed:           777,
		ProfileSeed:    12345,
		ProfileSamples: 2000,
		Parallel:       true,
	}
}

// Quick returns a scaled-down configuration for tests and benchmarks.
func Quick() Config {
	c := Paper()
	c.Pooling = 8
	c.Batch = 4
	c.ProfileSamples = 300
	c.Parallel = false
	return c
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.VecLen <= 0 || c.Pooling <= 0 || c.Batch <= 0 || c.Ranks <= 0:
		return fmt.Errorf("experiments: non-positive workload dimension")
	case c.ProfileSamples <= 0:
		return fmt.Errorf("experiments: non-positive profile samples")
	}
	return nil
}

// ArchNames lists the evaluated architectures in the paper's order.
var ArchNames = []string{"cpu", "tensordimm", "recnmp", "trim-g", "trim-b", "recross"}

// ArchSet holds the six evaluated systems over one workload spec, sharing a
// single offline profile.
type ArchSet struct {
	Cfg     Config
	Spec    trace.ModelSpec
	Profile *partition.Profile
	Systems map[string]arch.System
}

// NewArchSet builds all six architectures over the Criteo-Kaggle workload
// at cfg's vector length and pooling.
func NewArchSet(cfg Config) (*ArchSet, error) {
	spec := trace.CriteoKaggle(cfg.VecLen, cfg.Pooling)
	return NewArchSetFor(cfg, spec)
}

// NewArchSetFor builds the six architectures over an explicit spec.
func NewArchSetFor(cfg Config, spec trace.ModelSpec) (*ArchSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := partition.NewProfile(spec, cfg.ProfileSeed, cfg.ProfileSamples)
	if err != nil {
		return nil, err
	}
	s := &ArchSet{Cfg: cfg, Spec: spec, Profile: prof, Systems: map[string]arch.System{}}
	bcfg := baseline.Config{Spec: spec, Ranks: cfg.Ranks}

	if s.Systems["cpu"], err = baseline.NewCPU(bcfg); err != nil {
		return nil, err
	}
	if s.Systems["tensordimm"], err = baseline.NewTensorDIMM(bcfg); err != nil {
		return nil, err
	}
	if s.Systems["recnmp"], err = baseline.NewRecNMP(bcfg); err != nil {
		return nil, err
	}
	if s.Systems["trim-g"], err = baseline.NewTRiMG(bcfg); err != nil {
		return nil, err
	}
	if s.Systems["trim-b"], err = baseline.NewTRiMB(bcfg, prof.Hists); err != nil {
		return nil, err
	}
	rcfg := core.DefaultConfig(spec)
	rcfg.Ranks = cfg.Ranks
	rcfg.Batch = cfg.Batch
	rcfg.ProfileSamples = cfg.ProfileSamples
	rcfg.Seed = cfg.ProfileSeed
	rcfg.Profile = prof
	if s.Systems["recross"], err = core.New(rcfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Batch generates the measured batch for this workload.
func (s *ArchSet) Batch() (trace.Batch, error) {
	g, err := trace.NewGenerator(s.Spec, s.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	return g.Batch(s.Cfg.Batch), nil
}

// RunAll executes one batch on every architecture and returns the stats by
// name, optionally in parallel.
func (s *ArchSet) RunAll() (map[string]*arch.RunStats, error) {
	b, err := s.Batch()
	if err != nil {
		return nil, err
	}
	out := make(map[string]*arch.RunStats, len(s.Systems))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for name, sys := range s.Systems {
		run := func(name string, sys arch.System) {
			rs, err := sys.Run(b)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", name, err)
				return
			}
			out[name] = rs
		}
		if s.Cfg.Parallel {
			wg.Add(1)
			go func(name string, sys arch.System) {
				defer wg.Done()
				run(name, sys)
			}(name, sys)
		} else {
			run(name, sys)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Speedups normalizes each architecture's cycle count to the named base.
func Speedups(stats map[string]*arch.RunStats, base string) (map[string]float64, error) {
	b, ok := stats[base]
	if !ok {
		return nil, fmt.Errorf("experiments: no %q run to normalize against", base)
	}
	out := make(map[string]float64, len(stats))
	for name, rs := range stats {
		if rs.Cycles == 0 {
			return nil, fmt.Errorf("experiments: %s reported zero cycles", name)
		}
		out[name] = float64(b.Cycles) / float64(rs.Cycles)
	}
	return out, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// CSV renders the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Cols)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
