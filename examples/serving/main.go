// The serving example spins up the embedding-inference serving layer
// in-process — a 2-replica ReCross pool behind the dynamic batcher —
// fires concurrent request streams at it, and prints the percentile
// report plus the server's own metrics snapshot. It doubles as an
// integration smoke test for the serve subsystem.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"recross"
)

func main() {
	// A small spec keeps the example quick; swap in CriteoKaggle(64, 80)
	// for the paper-scale workload.
	spec := recross.CriteoKaggle(32, 16)
	cfg := recross.Config{Spec: spec, ProfileSamples: 500}

	fmt.Println("building 2 ReCross replicas (profiled once)...")
	t0 := time.Now()
	srv, err := recross.NewServer(recross.ReCross, cfg, 2, recross.ServeOptions{
		MaxBatch: 16,
		MaxDelay: 500 * time.Microsecond,
		Policy:   recross.BlockOnOverload,
	})
	check(err)
	fmt.Printf("pool ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	// Hand-rolled concurrent clients (the built-in closed-loop generator
	// is shown after): every result is checked against the functional
	// embedding layer.
	layer, err := recross.NewLayer(spec)
	check(err)
	const clients, perClient = 6, 10
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, err := recross.NewGenerator(spec, int64(100+c))
			check(err)
			for i := 0; i < perClient; i++ {
				sample := gen.Sample()
				res, err := srv.Lookup(context.Background(), sample)
				check(err)
				want, err := layer.ReduceSample(sample)
				check(err)
				for k := range want {
					if !recross.AlmostEqual(res.Vectors[k], want[k], 0) {
						fmt.Println("MISMATCH: served vector differs from functional layer")
						os.Exit(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("%d requests served, every vector bit-identical to the functional layer\n\n",
		clients*perClient)

	// The built-in closed-loop load generator.
	rep, err := recross.Loadgen(srv, recross.LoadgenOptions{
		Spec:     spec,
		Clients:  8,
		Duration: 2 * time.Second,
	})
	check(err)
	fmt.Print(rep.String())

	snap := srv.Metrics().Snapshot()
	fmt.Printf("\nserver metrics: %d admitted, %d completed, %d batches\n",
		snap.Admitted, snap.Completed, snap.Batches)
	fmt.Printf("  queue wait  p50 %s  p99 %s\n", us(snap.QueueWait.P50), us(snap.QueueWait.P99))
	fmt.Printf("  batch form  p50 %s  p99 %s\n", us(snap.BatchForm.P50), us(snap.BatchForm.P99))
	fmt.Printf("  end-to-end  p50 %s  p99 %s\n", us(snap.E2E.P50), us(snap.E2E.P99))
	fmt.Printf("  simulated   p50 %.0f  p99 %.0f DRAM cycles/batch\n",
		snap.ServiceCycles.P50, snap.ServiceCycles.P99)

	check(srv.Close())
	fmt.Println("\ndrained cleanly")
}

// us renders nanoseconds as microseconds.
func us(ns float64) string { return fmt.Sprintf("%.0fus", ns/1e3) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serving example:", err)
		os.Exit(1)
	}
}
