package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/kernels"
	"recross/internal/serve"
	"recross/internal/trace"
)

// BinDial dials one transport connection to a binary peer. Swappable
// for tests and for the chaos tier's faulty-conn wrapper.
type BinDial func(ctx context.Context, addr string) (net.Conn, error)

func defaultBinDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// errConnClosed marks a deliberately closed connection (node Close),
// as opposed to a transport failure.
var errConnClosed = errors.New("cluster: wire: connection closed")

// BinNodeOptions tunes a BinNode.
type BinNodeOptions struct {
	// Conns is the connection pool size (default 2). More conns shrink
	// head-of-line blocking on the shared writer at high concurrency and
	// bound a single conn failure's blast radius; the multiplexing means
	// even one conn carries many in-flight lookups.
	Conns int
	// Precision is the response-vector wire encoding requested from the
	// peer (default FP32: raw bits, bit-identical). FP16/INT8 shrink
	// response bytes further at the storage codecs' precision cost.
	Precision kernels.Precision
	// Dial opens transport connections (default TCP).
	Dial BinDial
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// MaxBackoff caps the exponential redial backoff (default 1s; the
	// router's prober retries Health each interval, so recovery after a
	// peer restart is bounded by MaxBackoff + ProbeInterval).
	MaxBackoff time.Duration
}

func (o BinNodeOptions) withDefaults() BinNodeOptions {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.Dial == nil {
		o.Dial = defaultBinDial
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = time.Second
	}
	return o
}

// BinNode is the binary-protocol transport driver: a cluster.Node
// backed by a pool of long-lived connections to a peer's binary
// listener, multiplexing concurrent lookups over each conn by
// correlation ID. Requests pipeline through a flush-coalescing writer
// loop; responses are matched back by a per-conn pending table, so one
// conn failure fails only its own in-flight calls — other conns'
// correlation IDs are untouched. Dial is lazy with exponential
// backoff, and because Health runs through the same path, the router's
// existing prober re-admits a restarted peer with no extra machinery.
type BinNode struct {
	id   string
	addr string
	opts BinNodeOptions
	m    WireMetrics

	slots []*connSlot
	next  atomic.Uint32

	closed   atomic.Bool
	lookups  atomic.Int64
	failures atomic.Int64
	cycles   atomic.Int64
}

// NewBinNode builds a node for the binary peer at addr ("host:port";
// a "bin://" scheme prefix is accepted and stripped).
func NewBinNode(id, addr string, opts BinNodeOptions) *BinNode {
	addr = strings.TrimPrefix(addr, "bin://")
	addr = strings.TrimSuffix(addr, "/")
	n := &BinNode{id: id, addr: addr, opts: opts.withDefaults()}
	for i := 0; i < n.opts.Conns; i++ {
		n.slots = append(n.slots, &connSlot{n: n})
	}
	return n
}

// ID names the node.
func (n *BinNode) ID() string { return n.id }

// Addr reports the peer address.
func (n *BinNode) Addr() string { return n.addr }

// WireMetrics exposes the transport counters (the router's exposition
// discovers them through this method).
func (n *BinNode) WireMetrics() *WireMetrics { return &n.m }

// connSlot is one pool position: the live conn, or the backoff state
// gating the next dial.
type connSlot struct {
	n *BinNode

	mu       sync.Mutex
	conn     *binConn
	nextDial time.Time
	backoff  time.Duration
	dialed   bool // a conn has existed before (Redials accounting)
}

// get returns the slot's live conn, dialing lazily. During dial
// backoff it fails fast with ErrNodeDown so the router's failover and
// hedging see a down peer immediately instead of a timeout.
func (s *connSlot) get(ctx context.Context) (*binConn, error) {
	s.mu.Lock()
	if bc := s.conn; bc != nil {
		s.mu.Unlock()
		return bc, nil
	}
	if !s.nextDial.IsZero() && time.Now().Before(s.nextDial) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (dial backoff)", ErrNodeDown, s.n.addr)
	}
	// Dial under the slot lock: concurrent callers coalesce onto one
	// attempt instead of racing N dials at the same peer.
	dctx, cancel := context.WithTimeout(ctx, s.n.opts.DialTimeout)
	c, err := s.n.opts.Dial(dctx, s.n.addr)
	cancel()
	if err != nil {
		if s.backoff == 0 {
			s.backoff = 50 * time.Millisecond
		} else if s.backoff *= 2; s.backoff > s.n.opts.MaxBackoff {
			s.backoff = s.n.opts.MaxBackoff
		}
		s.nextDial = time.Now().Add(s.backoff)
		s.mu.Unlock()
		s.n.m.ConnFails.Add(1)
		return nil, fmt.Errorf("%w: %s: %v", ErrNodeDown, s.n.addr, err)
	}
	s.backoff = 0
	s.nextDial = time.Time{}
	bc := newBinConn(s, c)
	s.conn = bc
	redial := s.dialed
	s.dialed = true
	s.mu.Unlock()
	s.n.m.Dials.Add(1)
	if redial {
		s.n.m.Redials.Add(1)
	}
	s.n.m.ConnsOpen.Add(1)
	return bc, nil
}

// detach clears the slot if it still points at bc, so the next call
// redials (immediately: backoff applies only to failed dials).
func (s *connSlot) detach(bc *binConn) {
	s.mu.Lock()
	if s.conn == bc {
		s.conn = nil
	}
	s.mu.Unlock()
}

// binCall is one in-flight request's rendezvous. Pooled: sig is a
// reusable one-shot (cap-1 send, receiver drains), and buf keeps its
// grown capacity across calls so steady-state delivery copies without
// allocating.
type binCall struct {
	sig chan struct{}
	typ byte
	buf []byte
	err error
}

var binCallPool = sync.Pool{New: func() any { return &binCall{sig: make(chan struct{}, 1)} }}

func getBinCall() *binCall { return binCallPool.Get().(*binCall) }
func putBinCall(c *binCall) {
	c.err = nil
	c.buf = c.buf[:0]
	binCallPool.Put(c)
}

// binConn is one multiplexed connection: a reader goroutine matching
// response frames to the pending table, and a writer goroutine
// draining writeq with flush coalescing (one Flush per burst, not per
// frame — pipelined requests share syscalls).
type binConn struct {
	slot *connSlot
	c    net.Conn

	corr atomic.Uint32

	mu      sync.Mutex
	pending map[uint32]*binCall // nil once failed

	writeq chan *wireBuf
	dead   chan struct{}

	failOnce sync.Once
}

func newBinConn(slot *connSlot, c net.Conn) *binConn {
	bc := &binConn{
		slot:    slot,
		c:       c,
		pending: make(map[uint32]*binCall),
		writeq:  make(chan *wireBuf, 64),
		dead:    make(chan struct{}),
	}
	go bc.readLoop()
	go bc.writeLoop()
	return bc
}

// fail tears the conn down once: closes the socket, wakes the loops,
// fails every pending call on THIS conn (others are untouched), and
// detaches from the slot so the next call redials.
func (bc *binConn) fail(err error, counted bool) {
	bc.failOnce.Do(func() {
		close(bc.dead)
		bc.c.Close()
		if counted {
			bc.slot.n.m.ConnFails.Add(1)
		}
		bc.slot.n.m.ConnsOpen.Add(-1)
		bc.mu.Lock()
		pend := bc.pending
		bc.pending = nil
		bc.mu.Unlock()
		for _, call := range pend {
			call.err = fmt.Errorf("%w: %v", ErrNodeDown, err)
			call.sig <- struct{}{}
		}
		bc.slot.detach(bc)
	})
}

func (bc *binConn) readLoop() {
	m := &bc.slot.n.m
	br := bufio.NewReaderSize(bc.c, 64<<10)
	var hdr [frameHeaderSize]byte
	var buf []byte
	for {
		typ, corr, payload, nbuf, err := readFrame(br, &hdr, buf)
		buf = nbuf
		if err != nil {
			bc.fail(err, true)
			return
		}
		m.BytesIn.Add(int64(frameHeaderSize + len(payload)))
		m.FramesIn.Add(1)
		bc.mu.Lock()
		call, ok := bc.pending[corr]
		if ok {
			delete(bc.pending, corr)
		}
		bc.mu.Unlock()
		if !ok {
			continue // call abandoned (ctx expired) before the reply landed
		}
		// Copy out of the read buffer before the next frame overwrites
		// it; the call's buf keeps its capacity, so this is a memcpy in
		// steady state.
		call.typ = typ
		call.buf = append(call.buf[:0], payload...)
		call.err = nil
		call.sig <- struct{}{}
	}
}

func (bc *binConn) writeLoop() {
	m := &bc.slot.n.m
	bw := bufio.NewWriterSize(bc.c, 64<<10)
	writeOne := func(wb *wireBuf) bool {
		_, err := bw.Write(wb.b)
		m.BytesOut.Add(int64(len(wb.b)))
		m.FramesOut.Add(1)
		putWireBuf(wb)
		if err != nil {
			bc.fail(err, true)
			return false
		}
		return true
	}
	for {
		var wb *wireBuf
		select {
		case <-bc.dead:
			return
		case wb = <-bc.writeq:
		}
		if !writeOne(wb) {
			return
		}
		// Flush coalescing: drain whatever pipelined behind us before
		// paying the flush syscall once for the whole burst.
	coalesce:
		for {
			select {
			case wb = <-bc.writeq:
				if !writeOne(wb) {
					return
				}
			default:
				break coalesce
			}
		}
		if err := bw.Flush(); err != nil {
			bc.fail(err, true)
			return
		}
	}
}

// roundTrip registers a call, enqueues the encoded frame, and waits
// for its response payload (delivered into call.buf). The correlation
// ID must already be encoded in wb. On ctx expiry the call is
// abandoned: if the reader has not claimed it, deregistering
// guarantees it never will; if it has, the delivery is imminent and is
// drained so the pooled call is never left with a pending signal.
func (bc *binConn) roundTrip(ctx context.Context, corr uint32, call *binCall, wb *wireBuf) (byte, []byte, error) {
	bc.mu.Lock()
	if bc.pending == nil {
		bc.mu.Unlock()
		putWireBuf(wb)
		return 0, nil, fmt.Errorf("%w: connection failed", ErrNodeDown)
	}
	bc.pending[corr] = call
	bc.mu.Unlock()

	abandon := func() (drained bool) {
		bc.mu.Lock()
		_, mine := bc.pending[corr]
		if mine {
			delete(bc.pending, corr)
		}
		bc.mu.Unlock()
		if !mine {
			<-call.sig // reader (or fail) claimed it: delivery is imminent
			return true
		}
		return false
	}

	select {
	case bc.writeq <- wb:
	case <-bc.dead:
		putWireBuf(wb)
		if !abandon() {
			return 0, nil, fmt.Errorf("%w: connection failed", ErrNodeDown)
		}
		return 0, nil, call.err
	case <-ctx.Done():
		putWireBuf(wb)
		abandon()
		return 0, nil, ctx.Err()
	}

	select {
	case <-call.sig:
		return call.typ, call.buf, call.err
	case <-ctx.Done():
		abandon()
		return 0, nil, ctx.Err()
	}
}

// pickConn round-robins the pool, dialing lazily.
func (n *BinNode) pickConn(ctx context.Context) (*binConn, error) {
	if n.closed.Load() {
		return nil, fmt.Errorf("%w: node closed", ErrNodeDown)
	}
	i := int(n.next.Add(1)) % len(n.slots)
	return n.slots[i].get(ctx)
}

// Lookup serves one sample over the binary wire.
func (n *BinNode) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	res, err := n.lookup(ctx, sample)
	if err != nil {
		n.failures.Add(1)
		return nil, err
	}
	n.lookups.Add(1)
	n.cycles.Add(int64(res.ServiceCycles))
	return res, nil
}

func (n *BinNode) lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	bc, err := n.pickConn(ctx)
	if err != nil {
		return nil, err
	}
	corr := bc.corr.Add(1)
	wb := getWireBuf()
	t0 := time.Now()
	wb.b = appendLookupReq(wb.b, corr, sample, n.opts.Precision)
	n.m.EncodeNs.Add(time.Since(t0).Nanoseconds())
	call := getBinCall()
	typ, payload, err := bc.roundTrip(ctx, corr, call, wb)
	if err != nil {
		putBinCall(call)
		return nil, err
	}
	var res *serve.Result
	switch typ {
	case frameLookupResp:
		t1 := time.Now()
		res, err = decodeLookupResp(payload)
		n.m.DecodeNs.Add(time.Since(t1).Nanoseconds())
	case frameErr:
		err = decodeErrFrame(payload, n.id)
	default:
		err = fmt.Errorf("cluster: node %s: unexpected frame type %d", n.id, typ)
	}
	putBinCall(call)
	return res, err
}

// Health round-trips a health frame on the same pooled conns, so a
// probe exercises the real transport: a restarted peer is re-dialed
// here, which is exactly what lets the router's prober re-admit it.
func (n *BinNode) Health(ctx context.Context) (serve.HealthReport, error) {
	bc, err := n.pickConn(ctx)
	if err != nil {
		return serve.HealthReport{}, err
	}
	corr := bc.corr.Add(1)
	wb := getWireBuf()
	start := len(wb.b)
	wb.b = beginFrame(wb.b, frameHealthReq, corr)
	wb.b = endFrame(wb.b, start)
	call := getBinCall()
	typ, payload, err := bc.roundTrip(ctx, corr, call, wb)
	if err != nil {
		putBinCall(call)
		return serve.HealthReport{}, err
	}
	var h serve.HealthReport
	switch typ {
	case frameHealthResp:
		err = json.Unmarshal(payload, &h)
	case frameErr:
		err = decodeErrFrame(payload, n.id)
	default:
		err = fmt.Errorf("cluster: node %s: unexpected frame type %d", n.id, typ)
	}
	putBinCall(call)
	if err != nil {
		return serve.HealthReport{}, err
	}
	return h, nil
}

// Stats reports cumulative client-side counters.
func (n *BinNode) Stats() NodeStats {
	return NodeStats{
		Lookups:  n.lookups.Load(),
		Failures: n.failures.Load(),
		Cycles:   n.cycles.Load(),
	}
}

// Close tears down the conn pool. The peer's lifecycle is not ours.
func (n *BinNode) Close() error {
	n.closed.Store(true)
	for _, s := range n.slots {
		s.mu.Lock()
		bc := s.conn
		s.mu.Unlock()
		if bc != nil {
			bc.fail(errConnClosed, false)
		}
	}
	return nil
}
