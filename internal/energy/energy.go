// Package energy prices simulation event counts into energy and area
// figures using the paper's published parameters (Table 2 energy rows,
// Table 3 areas): DRAM ACT 2 nJ, DRAM RD 4.2 pJ/bit, off-chip I/O 4 pJ/bit,
// FP32 add 0.9 pJ, FP32 mult 2.4 pJ, plus a static background term. This is
// the substitution for the Synopsys DC + Micron power-calculator flow
// (DESIGN.md §3) — identical accounting, published coefficients.
package energy

import (
	"fmt"

	"recross/internal/dram"
	"recross/internal/nmp"
	"recross/internal/sim"
)

// Params holds the per-event energy coefficients.
type Params struct {
	ACTNanojoule              float64 // per activation
	RDPicoPerBit              float64 // DRAM read/write, per bit
	IOPicoPerBit              float64 // off-chip I/O, per bit
	AddPico                   float64 // FP32 add, per op
	MultPico                  float64 // FP32 multiply, per op
	StaticPicoPerCyclePerRank float64 // background power per rank
}

// Default returns the paper's Table 2 coefficients. The static term models
// ~0.6 W of background power per rank (eight x8 devices in active standby,
// Micron power-calculator territory) at the 2400 MHz DRAM clock.
func Default() Params {
	return Params{
		ACTNanojoule:              2,
		RDPicoPerBit:              4.2,
		IOPicoPerBit:              4,
		AddPico:                   0.9,
		MultPico:                  2.4,
		StaticPicoPerCyclePerRank: 250,
	}
}

// Breakdown is an energy decomposition in joules (Fig. 15's categories).
type Breakdown struct {
	ACT    float64
	RD     float64
	IO     float64
	PE     float64
	Static float64
	// Cache is SRAM access energy for architectures with a cache in the
	// path (the CPU's LLC, RecNMP's PE caches).
	Cache float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 {
	return b.ACT + b.RD + b.IO + b.PE + b.Static + b.Cache
}

// CacheEnergy prices n cache hits at nanojoulesPerHit (vector-granularity
// SRAM reads: ~1.2 nJ for a 32 MB LLC line set, ~0.15 nJ for a 1 MB cache).
func CacheEnergy(n int64, nanojoulesPerHit float64) float64 {
	return float64(n) * nanojoulesPerHit * 1e-9
}

// Account prices one run: DRAM stats, PE arithmetic, elapsed cycles and the
// rank count. burstBytes is the data burst size (64 B).
func Account(p Params, st dram.Stats, ops nmp.OpStats, cycles sim.Cycle, ranks, burstBytes int) Breakdown {
	const pJ = 1e-12
	burstBits := float64(burstBytes * 8)
	var b Breakdown
	b.ACT = float64(st.ACTs) * p.ACTNanojoule * 1e-9
	totalBursts := st.BurstsToHost + st.BurstsToRank + st.BurstsToBG + st.BurstsToBank
	b.RD = float64(totalBursts) * burstBits * p.RDPicoPerBit * pJ
	// Off-chip I/O: whatever crosses the channel DQ — host-consumed bursts
	// plus result write-backs. Rank-PE data crosses the chip I/O to the
	// DIMM buffer, which we also price as off-chip (conservative, as the
	// paper does for rank-level NMP).
	ioBursts := st.BurstsToHost + st.HostResultTx + st.BurstsToRank
	b.IO = float64(ioBursts) * burstBits * p.IOPicoPerBit * pJ
	b.PE = (float64(ops.Adds)*p.AddPico + float64(ops.Mults)*p.MultPico) * pJ
	b.Static = float64(cycles) * float64(ranks) * p.StaticPicoPerCyclePerRank * pJ
	return b
}

// AreaModel produces the Table 3 per-architecture area figures from PE
// counts. Per-PE constants are calibrated so the published rows reproduce
// exactly (see the table in TableAreas).
type AreaModel struct {
	// RankPE is the buffer-chip PE area in mm^2 (architecture-specific:
	// RecNMP's PE carries a 1 MB cache and is larger).
	RankPE float64
	// BGPE and BankPE are per-PE areas inside the DRAM chip.
	BGPE   float64
	BankPE float64
	// SALPCtrl is the per-bank subarray access controller overhead.
	SALPCtrl float64
}

// DefaultAreaModel returns per-PE areas calibrated against Table 3:
// TRiM-G = 8 BG PEs = 2.03 mm^2 => 0.2537 per BG PE;
// TRiM-B = 32 bank PEs = 11.5 mm^2 => 0.3594 per TRiM bank PE;
// ReCross = 4 BG + 4 bank + 4 SALP controllers = 2.35 mm^2 with a leaner
// 0.28 mm^2 bank PE plus 0.055 mm^2 controller.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		RankPE:   0.34,
		BGPE:     2.03 / 8,
		BankPE:   0.28,
		SALPCtrl: 0.055,
	}
}

// Area is one architecture's overhead row of Table 3.
type Area struct {
	Arch      string
	RankPEMM2 float64 // per buffer chip
	ChipPEMM2 float64 // per DRAM chip
}

// ChipArea computes the in-DRAM-chip PE area for a PE population.
func (m AreaModel) ChipArea(nBGPE, nBankPE, nSALPBanks int) float64 {
	return float64(nBGPE)*m.BGPE + float64(nBankPE)*m.BankPE + float64(nSALPBanks)*m.SALPCtrl
}

// TableAreas reproduces Table 3 for the five architectures.
func TableAreas() []Area {
	m := DefaultAreaModel()
	return []Area{
		{Arch: "TensorDIMM", RankPEMM2: 0.28, ChipPEMM2: 0},
		{Arch: "RecNMP", RankPEMM2: 0.54, ChipPEMM2: 0},
		{Arch: "TRiM-G", RankPEMM2: 0.36, ChipPEMM2: m.ChipArea(8, 0, 0)},
		{Arch: "TRiM-B", RankPEMM2: 0.36, ChipPEMM2: float64(32) * (11.5 / 32)},
		{Arch: "ReCross", RankPEMM2: 0.34, ChipPEMM2: m.ChipArea(4, 4, 4)},
	}
}

// Validate reports nonsensical parameters.
func (p Params) Validate() error {
	for _, v := range []float64{p.ACTNanojoule, p.RDPicoPerBit, p.IOPicoPerBit, p.AddPico, p.MultPico, p.StaticPicoPerCyclePerRank} {
		if v < 0 {
			return fmt.Errorf("energy: negative coefficient %g", v)
		}
	}
	return nil
}
