package memctrl

import (
	"math/rand"
	"testing"

	"recross/internal/dram"
	"recross/internal/sim"
)

// TestTimingConstraintAudit drains random workloads with command recording
// enabled and then verifies, post hoc, that the issued command stream never
// violated the DRAM timing constraints — the safety net under every
// scheduler change.
func TestTimingConstraintAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		geo := dram.DDR5(2)
		tm := dram.DDR5Timing()
		ch, err := dram.NewChannel(geo, tm, dram.NMPTwoStage)
		if err != nil {
			t.Fatal(err)
		}
		ch.Record = true
		salp := trial%2 == 1
		if salp {
			for fb := 0; fb < 8; fb++ {
				ch.EnableSALP(fb)
			}
		}
		pol := FRFCFS
		if trial%3 == 0 {
			pol = LAS
		}
		ctl, err := New(ch, pol, DefaultWindow)
		if err != nil {
			t.Fatal(err)
		}
		ctl.OpWindowLimit = 4

		n := rng.Intn(300) + 50
		reqs := make([]Request, n)
		for i := range reqs {
			cols := 1 << rng.Intn(3)
			reqs[i] = Request{
				Loc: dram.Loc{
					Rank: rng.Intn(geo.Ranks),
					BG:   rng.Intn(geo.BankGroups),
					Bank: rng.Intn(geo.Banks),
					Row:  rng.Intn(geo.RowsPerBank()),
					Col:  rng.Intn(geo.ColumnsPerRow()-cols) / cols * cols,
				},
				Cols:     cols,
				Consumer: dram.Consumer(rng.Intn(4)),
				Arrival:  sim.Cycle(i),
				Op:       int32(i / 10),
			}
		}
		if _, err := ctl.Drain(reqs); err != nil {
			t.Fatal(err)
		}
		audit(t, ch, salp)
	}
}

// audit replays the recorded command trace against the constraint set.
func audit(t *testing.T, ch *dram.Channel, salp bool) {
	t.Helper()
	geo, tm := ch.Geo, ch.Tm
	type cmd = dram.CmdEvent
	var (
		lastACTBank = map[int]sim.Cycle{} // flat bank -> last ACT
		lastACTSub  = map[[2]int]sim.Cycle{}
		lastACTBG   = map[int]sim.Cycle{}
		lastACTRank = map[int]sim.Cycle{}
		lastRDBank  = map[int]sim.Cycle{}
		actHist     = map[int][]sim.Cycle{} // rank -> ACT times (tFAW)
	)
	neg := sim.Cycle(-1 << 40)
	at := func(m map[int]sim.Cycle, k int) sim.Cycle {
		if v, ok := m[k]; ok {
			return v
		}
		return neg
	}
	check := func(ev cmd, got, earliest sim.Cycle, what string) {
		if got < earliest {
			t.Fatalf("%s violated: %s at %d, earliest legal %d (loc %+v)",
				what, ev.Kind, got, earliest, ev.Loc)
		}
	}
	for _, ev := range ch.Trace {
		fb := geo.FlatBank(ev.Loc)
		fbg := geo.FlatBG(ev.Loc)
		sub := geo.Subarray(ev.Loc.Row)
		switch ev.Kind {
		case "ACT":
			if salp && ch.IsSALP(fb) {
				if v, ok := lastACTSub[[2]int{fb, sub}]; ok {
					check(ev, ev.At, v+tm.TRC, "same-subarray tRC")
				}
				check(ev, ev.At, at(lastACTBank, fb)+tm.TRRDL, "SALP inter-subarray tRRD_L")
			} else {
				check(ev, ev.At, at(lastACTBank, fb)+tm.TRC, "same-bank tRC")
			}
			check(ev, ev.At, at(lastACTBG, fbg)+tm.TRRDL, "same-BG tRRD_L")
			check(ev, ev.At, at(lastACTRank, ev.Loc.Rank)+tm.TRRDS, "same-rank tRRD_S")
			hist := actHist[ev.Loc.Rank]
			if len(hist) >= 4 {
				check(ev, ev.At, hist[len(hist)-4]+tm.TFAW, "tFAW")
			}
			actHist[ev.Loc.Rank] = append(hist, ev.At)
			lastACTBank[fb] = ev.At
			lastACTSub[[2]int{fb, sub}] = ev.At
			lastACTBG[fbg] = ev.At
			lastACTRank[ev.Loc.Rank] = ev.At
		case "RD":
			// The row must have been activated at least tRCD earlier.
			var act sim.Cycle
			var ok bool
			if salp && ch.IsSALP(fb) {
				act, ok = lastACTSub[[2]int{fb, sub}]
			} else {
				act, ok = lastACTBank[fb], lastACTBank[fb] != 0
				_, ok = lastACTBank[fb]
			}
			if !ok {
				t.Fatalf("RD at %d with no prior ACT (loc %+v)", ev.At, ev.Loc)
			}
			check(ev, ev.At, act+tm.TRCD, "tRCD")
			// Same-bank RD cadence (tCCD_L floor holds in all modes; the
			// SALP tRA handover is >= tCCD_L in the default timing).
			check(ev, ev.At, at(lastRDBank, fb)+tm.TCCDL, "same-bank tCCD_L")
			if ev.Done != ev.At+tm.TCL+tm.TBL {
				t.Fatalf("RD data time wrong: %d vs %d", ev.Done, ev.At+tm.TCL+tm.TBL)
			}
			lastRDBank[fb] = ev.At
		}
	}
	if len(ch.Trace) == 0 {
		t.Fatal("no commands recorded")
	}
}
