package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"recross/internal/serve"
)

// routerMetrics are the router's lock-cheap counters; Router.Expo
// renders them (plus per-node series) in Prometheus text form as
// recross_cluster_*.
type routerMetrics struct {
	Requests    atomic.Int64 // lookups accepted
	Failed      atomic.Int64 // lookups failed (caller error, cancellation)
	Degraded    atomic.Int64 // lookups with >=1 fallback op
	FallbackOps atomic.Int64 // ops answered by the functional fallback
	Subrequests atomic.Int64 // node sub-requests dispatched
	SubFailures atomic.Int64 // node sub-requests failed
	Retries     atomic.Int64 // failovers after a primary failure
	HedgesFired atomic.Int64 // hedge requests launched
	HedgesWon   atomic.Int64 // hedges that answered first
	Rebalances  atomic.Int64 // SetPlacement swaps
	Probes      atomic.Int64 // dead-node health probes
	Revivals    atomic.Int64 // dead nodes re-admitted

	E2E *serve.Hist // end-to-end router latency, ns
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{E2E: serve.NewHist()}
}

// Stats is a point-in-time copy of the router counters.
type Stats struct {
	Requests, Failed, Degraded, FallbackOps int64
	Subrequests, SubFailures, Retries       int64
	HedgesFired, HedgesWon                  int64
	Rebalances, Probes, Revivals            int64
}

// Stats snapshots the router counters.
func (r *Router) Stats() Stats {
	m := r.metrics
	return Stats{
		Requests:    m.Requests.Load(),
		Failed:      m.Failed.Load(),
		Degraded:    m.Degraded.Load(),
		FallbackOps: m.FallbackOps.Load(),
		Subrequests: m.Subrequests.Load(),
		SubFailures: m.SubFailures.Load(),
		Retries:     m.Retries.Load(),
		HedgesFired: m.HedgesFired.Load(),
		HedgesWon:   m.HedgesWon.Load(),
		Rebalances:  m.Rebalances.Load(),
		Probes:      m.Probes.Load(),
		Revivals:    m.Revivals.Load(),
	}
}

// NodeHealth is one node's entry in the aggregated health report.
type NodeHealth struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Outstanding int64         `json:"outstanding"`
	Lookups     int64         `json:"lookups"`
	Failures    int64         `json:"failures"`
	HedgeDelay  time.Duration `json:"hedge_delay_ns"`
}

// Health is the aggregated cluster health report served on /healthz.
// Status is "ok" when every node is available, "degraded" while any is
// dead (the router still answers everything — orphaned tables via the
// fallback), and "draining" once the router is closed.
type Health struct {
	Status     string       `json:"status"`
	Nodes      int          `json:"nodes"`
	Available  int          `json:"available"`
	Replicated int          `json:"replicated_tables"`
	NodeHealth []NodeHealth `json:"node_health"`
}

// Health aggregates the router's view of the cluster.
func (r *Router) Health() Health {
	h := Health{Nodes: len(r.nodes), Replicated: r.pl.Load().Replicated()}
	for _, ns := range r.nodes {
		st := NodeState(ns.state.Load())
		if st != NodeDead {
			h.Available++
		}
		h.NodeHealth = append(h.NodeHealth, NodeHealth{
			ID:          ns.node.ID(),
			State:       st.String(),
			Outstanding: ns.outstanding.Load(),
			Lookups:     ns.lookups.Load(),
			Failures:    ns.failures.Load(),
			HedgeDelay:  time.Duration(ns.hedgeNs.Load()),
		})
	}
	switch {
	case r.closed.Load():
		h.Status = "draining"
	case h.Available < h.Nodes:
		h.Status = "degraded"
	default:
		h.Status = "ok"
	}
	return h
}

// Expo renders the recross_cluster_* Prometheus text exposition:
// router totals, hedge and rebalance counters, per-node states and
// outstanding-work gauges, and the end-to-end latency summary.
func (r *Router) Expo() string {
	var b strings.Builder
	s := r.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP recross_cluster_%s %s\n# TYPE recross_cluster_%s counter\nrecross_cluster_%s %d\n",
			name, help, name, name, v)
	}
	counter("requests_total", "Lookups accepted by the router.", s.Requests)
	counter("requests_degraded_total", "Lookups with at least one functional-fallback op.", s.Degraded)
	counter("fallback_ops_total", "Ops answered by the router's functional fallback.", s.FallbackOps)
	counter("subrequests_total", "Per-node sub-requests dispatched.", s.Subrequests)
	counter("subrequest_failures_total", "Per-node sub-requests failed.", s.SubFailures)
	counter("retries_total", "Sub-request failovers onto a replica.", s.Retries)
	counter("hedges_fired_total", "Hedge requests launched.", s.HedgesFired)
	counter("hedges_won_total", "Hedge requests that answered first.", s.HedgesWon)
	counter("rebalances_total", "Placement swaps applied.", s.Rebalances)
	counter("probes_total", "Dead-node health probes sent.", s.Probes)
	counter("revivals_total", "Dead nodes re-admitted after a probe.", s.Revivals)

	h := r.Health()
	fmt.Fprintf(&b, "# HELP recross_cluster_nodes Cluster size.\n# TYPE recross_cluster_nodes gauge\nrecross_cluster_nodes %d\n", h.Nodes)
	fmt.Fprintf(&b, "# HELP recross_cluster_nodes_available Nodes not marked dead.\n# TYPE recross_cluster_nodes_available gauge\nrecross_cluster_nodes_available %d\n", h.Available)
	fmt.Fprintf(&b, "# HELP recross_cluster_replicated_tables Tables with more than one owner.\n# TYPE recross_cluster_replicated_tables gauge\nrecross_cluster_replicated_tables %d\n", h.Replicated)

	fmt.Fprintf(&b, "# HELP recross_cluster_node_state Node state (0 healthy, 1 suspect, 2 dead).\n# TYPE recross_cluster_node_state gauge\n")
	for i, ns := range r.nodes {
		fmt.Fprintf(&b, "recross_cluster_node_state{node=%q} %d\n", r.nodes[i].node.ID(), ns.state.Load())
	}
	fmt.Fprintf(&b, "# HELP recross_cluster_node_outstanding In-flight sub-requests per node.\n# TYPE recross_cluster_node_outstanding gauge\n")
	for _, ns := range r.nodes {
		fmt.Fprintf(&b, "recross_cluster_node_outstanding{node=%q} %d\n", ns.node.ID(), ns.outstanding.Load())
	}
	fmt.Fprintf(&b, "# HELP recross_cluster_node_lookups_total Sub-requests served per node.\n# TYPE recross_cluster_node_lookups_total counter\n")
	for _, ns := range r.nodes {
		fmt.Fprintf(&b, "recross_cluster_node_lookups_total{node=%q} %d\n", ns.node.ID(), ns.lookups.Load())
	}
	fmt.Fprintf(&b, "# HELP recross_cluster_node_failures_total Sub-request failures per node.\n# TYPE recross_cluster_node_failures_total counter\n")
	for _, ns := range r.nodes {
		fmt.Fprintf(&b, "recross_cluster_node_failures_total{node=%q} %d\n", ns.node.ID(), ns.failures.Load())
	}
	fmt.Fprintf(&b, "# HELP recross_cluster_node_hedge_delay_seconds Current per-node hedge delay.\n# TYPE recross_cluster_node_hedge_delay_seconds gauge\n")
	for _, ns := range r.nodes {
		fmt.Fprintf(&b, "recross_cluster_node_hedge_delay_seconds{node=%q} %g\n", ns.node.ID(), float64(ns.hedgeNs.Load())/1e9)
	}

	e2e := r.metrics.E2E.Snapshot()
	fmt.Fprintf(&b, "# HELP recross_cluster_latency_seconds Router end-to-end latency.\n# TYPE recross_cluster_latency_seconds summary\n")
	fmt.Fprintf(&b, "recross_cluster_latency_seconds{quantile=\"0.5\"} %g\n", e2e.P50/1e9)
	fmt.Fprintf(&b, "recross_cluster_latency_seconds{quantile=\"0.95\"} %g\n", e2e.P95/1e9)
	fmt.Fprintf(&b, "recross_cluster_latency_seconds{quantile=\"0.99\"} %g\n", e2e.P99/1e9)
	fmt.Fprintf(&b, "recross_cluster_latency_seconds_count %d\n", e2e.Count)

	// Transport drivers owning wire counters (BinNode) contribute a
	// recross_cluster_wire_* series per node.
	var wires []wireExpoEntry
	for _, ns := range r.nodes {
		if src, ok := ns.node.(interface{ WireMetrics() *WireMetrics }); ok {
			wires = append(wires, wireExpoEntry{
				labels: fmt.Sprintf("node=%q,role=\"client\"", ns.node.ID()),
				m:      src.WireMetrics(),
			})
		}
	}
	b.WriteString(wireExpo(wires))
	return b.String()
}

// wireExpoEntry labels one endpoint's wire counters for exposition.
type wireExpoEntry struct {
	labels string
	m      *WireMetrics
}

// wireExpo renders recross_cluster_wire_* for a set of endpoints —
// HELP/TYPE once per metric, one labeled sample per endpoint.
func wireExpo(entries []wireExpoEntry) string {
	if len(entries) == 0 {
		return ""
	}
	snaps := make([][10]int64, len(entries))
	for i, e := range entries {
		snaps[i] = e.m.snapshot()
	}
	var b strings.Builder
	for mi, def := range wireMetricDefs {
		fmt.Fprintf(&b, "# HELP recross_cluster_wire_%s %s\n# TYPE recross_cluster_wire_%s %s\n",
			def.name, def.help, def.name, def.kind)
		for i, e := range entries {
			fmt.Fprintf(&b, "recross_cluster_wire_%s{%s} %d\n", def.name, e.labels, snaps[i][mi])
		}
	}
	return b.String()
}
