package dram

import (
	"fmt"

	"recross/internal/sim"
)

// Timing holds the DRAM timing constraints in I/O clock cycles
// (DDR5-4800 => 2400 MHz, one cycle = 1/2.4 ns). The named values match the
// paper's Table 2; tRRD_S/L, tRTP and the command slot widths use standard
// DDR5 values, and tRA is the new read-to-select constraint ReCross
// introduces for subarray-parallel banks (§4.1, Fig. 6).
type Timing struct {
	TRCD  sim.Cycle // ACT -> RD, same bank
	TCL   sim.Cycle // RD -> first data
	TRP   sim.Cycle // PRE -> ACT, same bank
	TRAS  sim.Cycle // ACT -> PRE, same bank
	TRC   sim.Cycle // ACT -> ACT, same bank (tRAS + tRP)
	TBL   sim.Cycle // burst duration on a data bus
	TCCDS sim.Cycle // RD -> RD, same rank, different bank group
	TCCDL sim.Cycle // RD -> RD, same bank group
	TFAW  sim.Cycle // window for any four ACTs within a rank
	TRRDS sim.Cycle // ACT -> ACT, same rank, different bank group
	TRRDL sim.Cycle // ACT -> ACT, same bank group
	TRTP  sim.Cycle // RD -> PRE, same bank
	TRA   sim.Cycle // read-to-select: gap between global-bitline handovers
	//               across subarrays of one SALP bank
	TWR  sim.Cycle // write recovery: last write data -> PRE, same bank
	TWTR sim.Cycle // write-to-read turnaround, same rank

	// Refresh: every TREFI cycles each rank performs an all-bank refresh
	// blocking it for TRFC cycles. Zero disables refresh (the paper's
	// evaluation does not study it; enable for full-fidelity runs).
	TREFI sim.Cycle
	TRFC  sim.Cycle

	// Command-bus slot widths, in cycles, for conventional DDR commands.
	ActSlots sim.Cycle
	RdSlots  sim.Cycle
	PreSlots sim.Cycle
}

// DDR5Timing returns the paper's Table 2 DDR5-4800 parameters.
func DDR5Timing() Timing {
	return Timing{
		TRCD:  40,
		TCL:   40,
		TRP:   40,
		TRAS:  76,
		TRC:   116,
		TBL:   8,
		TCCDS: 8,
		TCCDL: 12,
		TFAW:  32,
		TRRDS: 4,
		TRRDL: 8,
		TRTP:  12,
		TRA:   12,
		TWR:   36,
		TWTR:  12,

		ActSlots: 2,
		RdSlots:  1,
		PreSlots: 1,
	}
}

// DDR4Timing returns DDR4-3200 parameters in its own 1600 MHz clock cycles
// (one cycle = 0.625 ns — twice the DDR5-4800 cycle). Cross-generation
// comparisons must convert cycles to time; see ClockGHz.
func DDR4Timing() Timing {
	return Timing{
		TRCD:  22,
		TCL:   22,
		TRP:   22,
		TRAS:  52,
		TRC:   74,
		TBL:   4,
		TCCDS: 4,
		TCCDL: 8,
		TFAW:  26,
		TRRDS: 4,
		TRRDL: 6,
		TRTP:  8,
		TRA:   8,
		TWR:   24,
		TWTR:  8,

		ActSlots: 2,
		RdSlots:  1,
		PreSlots: 1,
	}
}

// ClockGHz returns the command-clock frequency a timing set's cycles are
// expressed in, inferred from the burst length (DDR5 sub-channel BL16 at
// 2.4 GHz transfers 64 B in 8 cycles; DDR4 BL8 at 1.6 GHz in 4).
func (t Timing) ClockGHz() float64 {
	if t.TBL == 4 {
		return 1.6
	}
	return 2.4
}

// WithRefresh returns the timing with DDR5 auto-refresh enabled:
// tREFI = 3.9 us and tRFC = 410 ns (16 Gb device) at the 2400 MHz clock.
func (t Timing) WithRefresh() Timing {
	t.TREFI = 9360
	t.TRFC = 984
	return t
}

// Validate reports the first inconsistency in the timing parameters.
func (t Timing) Validate() error {
	pos := []struct {
		name string
		v    sim.Cycle
	}{
		{"tRCD", t.TRCD}, {"tCL", t.TCL}, {"tRP", t.TRP}, {"tRAS", t.TRAS},
		{"tRC", t.TRC}, {"tBL", t.TBL}, {"tCCD_S", t.TCCDS}, {"tCCD_L", t.TCCDL},
		{"tFAW", t.TFAW}, {"tRRD_S", t.TRRDS}, {"tRRD_L", t.TRRDL},
		{"tRTP", t.TRTP}, {"tRA", t.TRA}, {"tWR", t.TWR}, {"tWTR", t.TWTR},
		{"ACT slots", t.ActSlots}, {"RD slots", t.RdSlots}, {"PRE slots", t.PreSlots},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", p.name, p.v)
		}
	}
	if (t.TREFI == 0) != (t.TRFC == 0) {
		return fmt.Errorf("dram: tREFI and tRFC must be enabled together")
	}
	if t.TREFI < 0 || t.TRFC < 0 || (t.TREFI > 0 && t.TRFC >= t.TREFI) {
		return fmt.Errorf("dram: invalid refresh window tREFI=%d tRFC=%d", t.TREFI, t.TRFC)
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("dram: tRC (%d) < tRAS + tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	if t.TCCDL < t.TCCDS {
		return fmt.Errorf("dram: tCCD_L (%d) < tCCD_S (%d)", t.TCCDL, t.TCCDS)
	}
	if t.TRRDL < t.TRRDS {
		return fmt.Errorf("dram: tRRD_L (%d) < tRRD_S (%d)", t.TRRDL, t.TRRDS)
	}
	return nil
}
