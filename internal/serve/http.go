package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"recross/internal/embedding"
	"recross/internal/trace"
)

// maxLookupBody bounds a POST /v1/lookup body (1 MiB is thousands of
// lookup indices — far beyond any real sample).
const maxLookupBody = 1 << 20

// OpRequest is the wire form of one embedding operation.
type OpRequest struct {
	// Table is the embedding table index.
	Table int `json:"table"`
	// Kind is "weighted-sum" (default), "sum" or "max".
	Kind string `json:"kind,omitempty"`
	// Indices are the rows to gather.
	Indices []int64 `json:"indices"`
	// Weights are the pooling weights (defaults to all-ones when
	// omitted; present but ignored for "sum" and "max").
	Weights []float32 `json:"weights,omitempty"`
}

// LookupRequest is the POST /v1/lookup body: one inference sample.
type LookupRequest struct {
	Ops []OpRequest `json:"ops"`
}

// LookupResponse is the POST /v1/lookup answer.
type LookupResponse struct {
	// Vectors is one pooled embedding vector per op.
	Vectors [][]float32 `json:"vectors"`
	// BatchSize is the coalesced batch the sample rode in.
	BatchSize int `json:"batch_size"`
	// ServiceCycles is the simulated DRAM-cycle latency of that batch.
	ServiceCycles int64 `json:"service_cycles"`
	// Replica is the pool worker that served it (-1 when degraded).
	Replica int `json:"replica"`
	// Retries is how many replica-failure resubmissions the request
	// survived (omitted when zero).
	Retries int `json:"retries,omitempty"`
	// Degraded marks an answer from the functional layer (correct
	// vectors, no timing model) because no healthy replica could serve
	// it (omitted when false).
	Degraded bool `json:"degraded,omitempty"`
	// ColdDegraded marks an answer completed while the storage tier was
	// degraded — cold rows through the slow direct-materialization
	// fallback (omitted when false).
	ColdDegraded bool `json:"cold_degraded,omitempty"`
	// QueueMicros and TotalMicros are wall-clock microseconds.
	QueueMicros float64 `json:"queue_us"`
	TotalMicros float64 `json:"total_us"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// parseKind maps the wire kind to a trace.ReduceKind.
func parseKind(s string) (trace.ReduceKind, error) {
	switch s {
	case "", "weighted-sum":
		return trace.WeightedSum, nil
	case "sum":
		return trace.Sum, nil
	case "max":
		return trace.Max, nil
	default:
		return 0, fmt.Errorf("unknown reduce kind %q", s)
	}
}

// SampleOf converts a wire request into a trace.Sample, validating shape
// against the server's embedding layer.
func (s *Server) SampleOf(lr LookupRequest) (trace.Sample, error) {
	return ParseSample(s.opts.Layer, lr)
}

// ParseSample converts a wire request into a trace.Sample, validating
// shape against an embedding layer. It is the single decoder for the
// /v1/lookup wire format, shared by this server's HTTP front-end and
// the cluster router's.
func ParseSample(layer *embedding.Layer, lr LookupRequest) (trace.Sample, error) {
	if len(lr.Ops) == 0 {
		return nil, errors.New("no ops in request")
	}
	sample := make(trace.Sample, 0, len(lr.Ops))
	for i, o := range lr.Ops {
		if o.Table < 0 || o.Table >= layer.Tables() {
			return nil, fmt.Errorf("op %d: table %d out of [0,%d)", i, o.Table, layer.Tables())
		}
		if len(o.Indices) == 0 {
			return nil, fmt.Errorf("op %d: no indices", i)
		}
		rows := layer.Table(o.Table).Rows()
		for _, idx := range o.Indices {
			if idx < 0 || idx >= rows {
				return nil, fmt.Errorf("op %d: index %d out of [0,%d)", i, idx, rows)
			}
		}
		kind, err := parseKind(o.Kind)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		// trace.Op requires len(Weights) == len(Indices) for every kind
		// (Sum/Max ignore the values but Systems index them), so absent
		// weights are filled with 1s regardless of kind.
		w := o.Weights
		if w == nil {
			w = make([]float32, len(o.Indices))
			for k := range w {
				w[k] = 1
			}
		} else if len(w) != len(o.Indices) {
			return nil, fmt.Errorf("op %d: %d weights for %d indices", i, len(w), len(o.Indices))
		}
		sample = append(sample, trace.Op{Table: o.Table, Kind: kind, Indices: o.Indices, Weights: w})
	}
	return sample, nil
}

// WireRequest encodes a sample as the /v1/lookup wire form —
// ParseSample's inverse, used by HTTP clients (the cluster's HTTPNode
// transport driver). Weighted-sum weights ride verbatim so a round
// trip through JSON float32 encoding stays bit-identical; sum and max
// ops drop theirs (the reduction ignores weights, ParseSample
// re-defaults the omitted field) so neither wire ships ignored bytes.
func WireRequest(sample trace.Sample) LookupRequest {
	lr := LookupRequest{Ops: make([]OpRequest, len(sample))}
	for i, op := range sample {
		w := op.Weights
		if op.Kind != trace.WeightedSum {
			w = nil
		}
		lr.Ops[i] = OpRequest{
			Table:   op.Table,
			Kind:    op.Kind.String(),
			Indices: op.Indices,
			Weights: w,
		}
	}
	return lr
}

// Handler returns the HTTP front-end:
//
//	POST /v1/lookup  — serve one sample (JSON in/out)
//	GET  /metrics    — Prometheus text exposition, including per-replica
//	                   states, fault/retry/restart counters and the
//	                   degraded-mode gauge
//	GET  /healthz    — JSON health report (per-replica states); 200 while
//	                   serving ("ok" or "degraded"), 503 once draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lookup", s.handleLookup)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	var lr LookupRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLookupBody))
	if err := dec.Decode(&lr); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sample, err := s.SampleOf(lr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Lookup(r.Context(), sample)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	WriteJSON(w, 0, LookupResponse{
		Vectors:       res.Vectors,
		BatchSize:     res.BatchSize,
		ServiceCycles: int64(res.ServiceCycles),
		Replica:       res.Replica,
		Retries:       res.Retries,
		Degraded:      res.Degraded,
		ColdDegraded:  res.ColdDegraded,
		QueueMicros:   float64(res.QueueWait.Nanoseconds()) / 1e3,
		TotalMicros:   float64(res.Total.Nanoseconds()) / 1e3,
	})
}

// jsonBufPool pools the lookup handler's encode buffers. Response
// bodies are dominated by vector text (tens of KiB per lookup), so
// encoding straight into the ResponseWriter re-grows that buffer in
// net/http on every request; pooling it makes the handler's encode
// path allocation-flat in steady state. Buffers that ballooned past
// maxPooledJSONBuf are dropped rather than pinned.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledJSONBuf = 1 << 20

// WriteJSON encodes v into a pooled buffer and writes it as a JSON
// response with an explicit Content-Length (no chunked framing — the
// body length is known, and keep-alive clients reuse the conn without
// trailer handling). code 0 means 200. Shared with the cluster
// router's HTTP front-end, which serves the same wire format.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encode of our own response types cannot fail; keep the
		// fallback honest anyway.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		jsonBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if code != 0 {
		w.WriteHeader(code)
	}
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufPool.Put(buf)
	}
}

// statusOf maps serving errors to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.Snapshot().Expo())
	fmt.Fprint(w, s.Health().Expo())
	fmt.Fprint(w, s.dataplaneExpo())
	s.expoMu.RLock()
	fns := s.expoFns
	s.expoMu.RUnlock()
	for _, f := range fns {
		fmt.Fprint(w, f())
	}
}

// handleHealthz reports the self-healing pool's state as JSON. Status
// codes: 200 while serving — including degraded mode, where answers are
// still functionally correct — and 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	w.Header().Set("Content-Type", "application/json")
	if h.Status == "draining" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, errorResponse{Error: err.Error()})
}
