package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"recross/internal/chaos"
	"recross/internal/serve"
	"recross/internal/trace"
)

// FaultyNode wraps a Node with deterministic fault injection at the
// transport seam — the cluster-tier sibling of chaos.FaultySystem
// (replica batches) and chaos.FaultyColdStore (device pages); its
// kinds, rates and scripted rules live in internal/chaos beside
// theirs. Faults model how real fleets lose nodes: a kill fails calls
// fast and stays down until Revive, a partition swallows calls until
// the caller's deadline, and a slow node stalls before forwarding. A
// fleet of wrapped nodes shares one chaos.Injector; each node draws
// from its own seeded RNG, and only Lookup advances it, so a run is
// deterministic per (seed, node, call sequence). Unlike arch.Systems,
// cluster nodes serve concurrent calls; the RNG and call counter are
// mutex-guarded.
type FaultyNode struct {
	inner Node
	cfg   chaos.NodeConfig
	id    int
	inj   *chaos.Injector

	mu    sync.Mutex // guards rng, calls
	rng   *rand.Rand
	calls int64
	rules map[int64]chaos.Kind

	stateMu     sync.Mutex
	killed      bool
	killedAt    time.Time
	partitioned bool
}

// WrapFaultyNode builds a FaultyNode for node id. Schedule rules for
// other nodes are ignored, so one NodeConfig describes a whole
// cluster. inj may be shared; if nil a fresh one is made.
func WrapFaultyNode(inner Node, cfg chaos.NodeConfig, id int, inj *chaos.Injector) *FaultyNode {
	cfg = cfg.WithDefaults()
	if inj == nil {
		inj = chaos.NewInjector()
	}
	rules := make(map[int64]chaos.Kind)
	for _, r := range cfg.Schedule {
		if r.Node == id {
			rules[r.Call] = r.Kind
		}
	}
	return &FaultyNode{
		inner: inner,
		cfg:   cfg,
		id:    id,
		inj:   inj,
		rng:   rand.New(rand.NewSource(cfg.Seed + int64(id))),
		rules: rules,
	}
}

// WrapFaultyNodes wraps every node of a cluster with one shared
// injector, seeding node i with cfg.Seed+i.
func WrapFaultyNodes(nodes []Node, cfg chaos.NodeConfig) ([]Node, *chaos.Injector) {
	inj := chaos.NewInjector()
	out := make([]Node, len(nodes))
	for i, n := range nodes {
		out[i] = WrapFaultyNode(n, cfg, i, inj)
	}
	return out, inj
}

// Inner returns the wrapped node.
func (n *FaultyNode) Inner() Node { return n.inner }

// Kill takes the node down until Revive (the manual form of NodeKill)
// or, with cfg.Downtime set, until the downtime elapses.
func (n *FaultyNode) Kill() {
	n.stateMu.Lock()
	n.killed = true
	n.killedAt = time.Now()
	n.stateMu.Unlock()
}

// Revive brings a killed node back.
func (n *FaultyNode) Revive() {
	n.stateMu.Lock()
	n.killed = false
	n.stateMu.Unlock()
}

// Killed reports the kill switch.
func (n *FaultyNode) Killed() bool {
	n.stateMu.Lock()
	defer n.stateMu.Unlock()
	return n.killed
}

// Partition isolates the node: calls block until the caller's context
// expires. Heal with Partition(false).
func (n *FaultyNode) Partition(on bool) {
	n.stateMu.Lock()
	n.partitioned = on
	n.stateMu.Unlock()
}

// Partitioned reports the partition switch.
func (n *FaultyNode) Partitioned() bool {
	n.stateMu.Lock()
	defer n.stateMu.Unlock()
	return n.partitioned
}

// Calls reports how many Lookup calls this wrapper has seen.
func (n *FaultyNode) Calls() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls
}

// pick decides whether this Lookup injects a fault, mirroring
// chaos.FaultySystem: scheduled rules fire even while the injector is
// disabled, the RNG advances exactly once per call regardless of the
// switch, and rates are checked Kill, Partition, Slow.
func (n *FaultyNode) pick() (chaos.Kind, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.calls++
	var u float64
	if !n.cfg.Rates.Zero() {
		u = n.rng.Float64()
	}
	if k, ok := n.rules[n.calls]; ok {
		return k, true
	}
	if !n.inj.Enabled() || n.cfg.Rates.Zero() {
		return 0, false
	}
	r := n.cfg.Rates
	switch {
	case u < r.Kill:
		return chaos.NodeKill, true
	case u < r.Kill+r.Partition:
		return chaos.NodePartition, true
	case u < r.Kill+r.Partition+r.Slow:
		return chaos.NodeSlow, true
	default:
		return 0, false
	}
}

// gate applies the sticky kill and partition switches to any call,
// auto-reviving an expired kill when cfg.Downtime is set.
func (n *FaultyNode) gate(ctx context.Context) error {
	n.stateMu.Lock()
	if n.killed && n.cfg.Downtime > 0 && time.Since(n.killedAt) >= n.cfg.Downtime {
		n.killed = false
	}
	killed, partitioned := n.killed, n.partitioned
	n.stateMu.Unlock()
	if killed {
		return chaos.ErrNodeKilled
	}
	if partitioned {
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// ID names the wrapped node.
func (n *FaultyNode) ID() string { return n.inner.ID() }

// Lookup forwards the call, possibly injecting one fault first.
func (n *FaultyNode) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	k, inject := n.pick()
	if inject {
		n.inj.Record(k)
		switch k {
		case chaos.NodeKill:
			n.Kill()
		case chaos.NodePartition:
			<-ctx.Done()
			return nil, ctx.Err()
		case chaos.NodeSlow:
			select {
			case <-time.After(n.cfg.Stall):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if err := n.gate(ctx); err != nil {
		return nil, err
	}
	return n.inner.Lookup(ctx, sample)
}

// Health forwards the probe through the same kill/partition gates
// (without advancing the fault RNG, so probes never perturb a
// scripted Lookup sequence).
func (n *FaultyNode) Health(ctx context.Context) (serve.HealthReport, error) {
	if err := n.gate(ctx); err != nil {
		return serve.HealthReport{}, err
	}
	return n.inner.Health(ctx)
}

// Stats forwards to the wrapped node.
func (n *FaultyNode) Stats() NodeStats { return n.inner.Stats() }

// Close forwards to the wrapped node.
func (n *FaultyNode) Close() error { return n.inner.Close() }
