package cluster

import (
	"fmt"
	"sort"

	"recross/internal/lp"
	"recross/internal/partition"
	"recross/internal/trace"
)

// Placement maps every embedding table to the nodes that serve it.
// Replicas[t] lists the node indexes holding table t, primary first;
// hot tables carry Replication entries, the rest exactly one. A
// Placement is immutable once built — rebalancing constructs a new one
// and swaps it into the router atomically.
type Placement struct {
	// Nodes names the cluster members, indexed by the values in
	// Replicas.
	Nodes []string
	// Replicas maps table index -> owning node indexes, primary first.
	Replicas [][]int
	// Hot marks the tables that were replicated (nil if none were).
	Hot []bool
	// Mode records how the placement was built: "ring" or "cost".
	Mode string
	// Makespan is the predicted bottleneck-node load of this placement
	// (cost mode only; normalized access bytes per sample on the most
	// loaded node, replicas assumed to split a table's load evenly).
	Makespan float64
	// LPBound is the fractional LP optimum of the same balancing
	// problem (cost mode only) — the floor Makespan is priced against.
	LPBound float64

	holds [][]bool // node -> table -> held
}

// PlacementOptions configures RingPlacement and CostPlacement.
type PlacementOptions struct {
	// Replication is the replica count for hot tables (default 2,
	// clamped to the node count). Non-hot tables always get 1.
	Replication int
	// Hot marks the tables to replicate (nil = replicate none).
	Hot []bool
	// VNodes is the ring's virtual nodes per unit weight (ring mode
	// only; default 64).
	VNodes int
	// Weights scales node capacity (default all 1).
	Weights []float64
	// Seed perturbs ring hashes (ring mode only).
	Seed uint64
}

func (o PlacementOptions) replication(nodes int) int {
	r := o.Replication
	if r == 0 {
		r = 2
	}
	if r > nodes {
		r = nodes
	}
	if r < 1 {
		r = 1
	}
	return r
}

// RingPlacement partitions tables across nodes by consistent hashing:
// table t's owners are the first replicas(t) distinct nodes clockwise
// of hash("t<t>") on a weighted-vnode ring. Stable under node loss —
// only the lost node's arcs move.
func RingPlacement(tables int, nodes []string, opts PlacementOptions) (*Placement, error) {
	if err := validateNodes(tables, nodes, opts.Hot); err != nil {
		return nil, err
	}
	ring, err := NewRing(len(nodes), RingOptions{
		VNodes:  opts.VNodes,
		Weights: opts.Weights,
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep := opts.replication(len(nodes))
	p := &Placement{Nodes: nodes, Replicas: make([][]int, tables), Hot: opts.Hot, Mode: "ring"}
	for t := 0; t < tables; t++ {
		r := 1
		if opts.Hot != nil && opts.Hot[t] {
			r = rep
		}
		p.Replicas[t] = ring.Successors(fmt.Sprintf("t%d", t), r)
	}
	p.finalize()
	return p, nil
}

// CostPlacement partitions tables by expected serving load: vols[t] is
// table t's per-sample access volume (partition.AccessVolumes, or live
// sketch totals scaled by row bytes), tables descend onto the
// least-loaded node LPT-style, and a hot table's volume is split
// evenly across its Replication owners. The result is priced against
// the fractional LP optimum of the same problem (internal/lp), so
// Makespan/LPBound reports how far the integral placement is from the
// balancing floor.
func CostPlacement(vols []float64, nodes []string, opts PlacementOptions) (*Placement, error) {
	if err := validateNodes(len(vols), nodes, opts.Hot); err != nil {
		return nil, err
	}
	n := len(nodes)
	if opts.Weights != nil && len(opts.Weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d nodes", len(opts.Weights), n)
	}
	weight := func(i int) float64 {
		if opts.Weights == nil {
			return 1
		}
		return opts.Weights[i]
	}
	for i := 0; i < n; i++ {
		if weight(i) <= 0 {
			return nil, fmt.Errorf("cluster: node %d weight %v", i, weight(i))
		}
	}
	rep := opts.replication(n)

	// LPT descent: largest volume first, each table's share(s) onto the
	// least normalized-loaded node(s).
	order := make([]int, len(vols))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vols[order[a]] > vols[order[b]] })
	loads := make([]float64, n)
	p := &Placement{Nodes: nodes, Replicas: make([][]int, len(vols)), Hot: opts.Hot, Mode: "cost"}
	for _, t := range order {
		r := 1
		if opts.Hot != nil && opts.Hot[t] {
			r = rep
		}
		share := vols[t] / float64(r)
		chosen := make([]int, 0, r)
		taken := make([]bool, n)
		for j := 0; j < r; j++ {
			best := -1
			for i := 0; i < n; i++ {
				if taken[i] {
					continue
				}
				if best < 0 || loads[i]/weight(i) < loads[best]/weight(best) {
					best = i
				}
			}
			taken[best] = true
			chosen = append(chosen, best)
			loads[best] += share
		}
		p.Replicas[t] = chosen
	}
	for i := 0; i < n; i++ {
		if l := loads[i] / weight(i); l > p.Makespan {
			p.Makespan = l
		}
	}
	p.LPBound = lpBound(vols, n, weight)
	p.finalize()
	return p, nil
}

// CostPlacementFor is CostPlacement priced from an offline profile:
// per-table volumes come from partition.AccessVolumes at the given
// batch size, the same cost machinery the intra-node partitioner uses.
func CostPlacementFor(prof *partition.Profile, batch int, nodes []string, opts PlacementOptions) (*Placement, error) {
	if prof == nil {
		return nil, fmt.Errorf("cluster: nil profile")
	}
	if batch < 1 {
		batch = 1
	}
	return CostPlacement(partition.AccessVolumes(prof.Spec, batch), nodes, opts)
}

// lpBound solves the fractional relaxation — min T subject to each
// table fully assigned and each node's weighted load at most T — and
// returns the optimum (0 if the solve fails, which only a degenerate
// input produces).
func lpBound(vols []float64, n int, weight func(int) float64) float64 {
	tables := len(vols)
	// Variables: x[t*n+i] = fraction of table t on node i, then T last.
	nv := tables*n + 1
	prob, err := lp.NewProblem(nv)
	if err != nil {
		return 0
	}
	obj := make([]float64, nv)
	obj[nv-1] = 1
	if err := prob.SetObjective(obj); err != nil {
		return 0
	}
	for t := 0; t < tables; t++ {
		row := make([]float64, nv)
		for i := 0; i < n; i++ {
			row[t*n+i] = 1
		}
		if err := prob.AddConstraint(row, lp.EQ, 1); err != nil {
			return 0
		}
	}
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		for t := 0; t < tables; t++ {
			row[t*n+i] = vols[t]
		}
		row[nv-1] = -weight(i)
		if err := prob.AddConstraint(row, lp.LE, 0); err != nil {
			return 0
		}
	}
	sol := lp.Solve(prob)
	if sol.Status != lp.Optimal {
		return 0
	}
	return sol.Objective
}

// HotTopK marks the k largest-volume tables hot (deterministic: ties
// break toward the lower table index). k <= 0 marks none.
func HotTopK(vols []float64, k int) []bool {
	if k <= 0 || len(vols) == 0 {
		return nil
	}
	if k > len(vols) {
		k = len(vols)
	}
	order := make([]int, len(vols))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vols[order[a]] > vols[order[b]] })
	hot := make([]bool, len(vols))
	for _, t := range order[:k] {
		hot[t] = true
	}
	return hot
}

func validateNodes(tables int, nodes []string, hot []bool) error {
	if tables < 1 {
		return fmt.Errorf("cluster: %d tables", tables)
	}
	if len(nodes) < 1 {
		return fmt.Errorf("cluster: placement needs at least 1 node")
	}
	seen := make(map[string]bool, len(nodes))
	for _, id := range nodes {
		if id == "" {
			return fmt.Errorf("cluster: empty node id")
		}
		if seen[id] {
			return fmt.Errorf("cluster: duplicate node id %q", id)
		}
		seen[id] = true
	}
	if hot != nil && len(hot) != tables {
		return fmt.Errorf("cluster: %d hot flags for %d tables", len(hot), tables)
	}
	return nil
}

// finalize builds the holds index.
func (p *Placement) finalize() {
	p.holds = make([][]bool, len(p.Nodes))
	for i := range p.holds {
		p.holds[i] = make([]bool, len(p.Replicas))
	}
	for t, reps := range p.Replicas {
		for _, i := range reps {
			// Out-of-range owners (a hand-built placement) are left for
			// checkPlacement to reject rather than panicking here.
			if i >= 0 && i < len(p.holds) {
				p.holds[i][t] = true
			}
		}
	}
}

// Tables reports how many tables the placement covers.
func (p *Placement) Tables() int { return len(p.Replicas) }

// Holds reports whether node i serves table t.
func (p *Placement) Holds(i, t int) bool {
	if i < 0 || i >= len(p.holds) || t < 0 || t >= len(p.holds[i]) {
		return false
	}
	return p.holds[i][t]
}

// Replicated reports how many tables have more than one owner.
func (p *Placement) Replicated() int {
	c := 0
	for _, reps := range p.Replicas {
		if len(reps) > 1 {
			c++
		}
	}
	return c
}

// UniqueTables returns the tables node i is the sole owner of — the
// tables whose answers degrade to the functional fallback when node i
// is lost.
func (p *Placement) UniqueTables(i int) []int {
	var out []int
	for t, reps := range p.Replicas {
		if len(reps) == 1 && reps[0] == i {
			out = append(out, t)
		}
	}
	return out
}

// NodeTableBytes sums the spec bytes of the tables each node holds
// (replicated tables count fully on every owner) — the balance measure
// the ring-skew test bounds.
func (p *Placement) NodeTableBytes(spec trace.ModelSpec) []int64 {
	out := make([]int64, len(p.Nodes))
	for t, reps := range p.Replicas {
		if t >= len(spec.Tables) {
			break
		}
		b := spec.Tables[t].Bytes()
		for _, i := range reps {
			out[i] += b
		}
	}
	return out
}

// BytesSkew is max/mean of NodeTableBytes — 1.0 is perfect balance.
func (p *Placement) BytesSkew(spec trace.ModelSpec) float64 {
	bytes := p.NodeTableBytes(spec)
	var sum, max int64
	for _, b := range bytes {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(bytes))
	return float64(max) / mean
}

// Equal reports whether two placements route identically.
func (p *Placement) Equal(q *Placement) bool {
	if q == nil || len(p.Replicas) != len(q.Replicas) || len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	for t := range p.Replicas {
		if len(p.Replicas[t]) != len(q.Replicas[t]) {
			return false
		}
		for j := range p.Replicas[t] {
			if p.Replicas[t][j] != q.Replicas[t][j] {
				return false
			}
		}
	}
	return true
}
