module recross

go 1.22
