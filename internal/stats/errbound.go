package stats

import "math"

// Error-bound helpers for the differential-accuracy suites: the quantized
// (int8/fp16) data-plane paths are not bit-identical to the fp32
// reference, so their tests assert bounded error instead. These helpers
// give the two standard distances — worst-case absolute/relative error in
// float64, and ULP distance for "how many representable float32 values
// apart" (0 meaning bit-identical up to signed zero).

// MaxAbsError returns the largest |got[i]-want[i]| over both slices,
// computed in float64. Panics if the lengths differ. NaN in either input
// yields +Inf for that element (NaN==NaN included: a NaN result never
// silently passes an error bound).
func MaxAbsError(got, want []float32) float64 {
	if len(got) != len(want) {
		panic("stats: MaxAbsError length mismatch")
	}
	m := 0.0
	for i := range got {
		g, w := float64(got[i]), float64(want[i])
		d := math.Abs(g - w)
		if math.IsNaN(d) {
			return math.Inf(1)
		}
		if d > m {
			m = d
		}
	}
	return m
}

// MaxRelError returns the largest |got[i]-want[i]| / |want[i]| over both
// slices. Elements with want[i] == 0 contribute 0 when got[i] is also 0
// and +Inf otherwise. Panics if the lengths differ; NaN anywhere yields
// +Inf.
func MaxRelError(got, want []float32) float64 {
	if len(got) != len(want) {
		panic("stats: MaxRelError length mismatch")
	}
	m := 0.0
	for i := range got {
		g, w := float64(got[i]), float64(want[i])
		d := math.Abs(g - w)
		if math.IsNaN(d) {
			return math.Inf(1)
		}
		if d == 0 {
			continue
		}
		if w == 0 {
			return math.Inf(1)
		}
		d /= math.Abs(w)
		if d > m {
			m = d
		}
	}
	return m
}

// ULPDistance returns how many representable float32 values apart a and b
// are: 0 for bit-identical values and for +0 vs -0, 1 for adjacent
// floats, and so on. Values of opposite sign are the sum of each one's
// distance to zero. Either input NaN returns math.MaxInt64.
func ULPDistance(a, b float32) int64 {
	if a != a || b != b { // NaN
		return math.MaxInt64
	}
	return absI64(ulpIndex(a) - ulpIndex(b))
}

// MaxULPDistance returns the largest ULPDistance over both slices.
// Panics if the lengths differ.
func MaxULPDistance(got, want []float32) int64 {
	if len(got) != len(want) {
		panic("stats: MaxULPDistance length mismatch")
	}
	var m int64
	for i := range got {
		if d := ULPDistance(got[i], want[i]); d > m {
			m = d
		}
	}
	return m
}

// ulpIndex maps a float32 onto a signed integer line where consecutive
// representable values (including across zero) differ by exactly 1:
// non-negative floats map to their bit pattern, negative floats to the
// negated magnitude pattern.
func ulpIndex(f float32) int64 {
	b := math.Float32bits(f)
	if b&0x80000000 != 0 {
		return -int64(b & 0x7fffffff)
	}
	return int64(b)
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
