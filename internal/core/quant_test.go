package core

import (
	"testing"

	"recross/internal/coldstore"
	"recross/internal/kernels"
	"recross/internal/trace"
)

// TestQuantizedBurstsOnBus checks the timing model charges encoded row
// bytes per gather: at vecLen 64 an fp32 vector is 4 DDR5 bursts, fp16 is
// 2 and int8 (64 codes + 8-byte header) is 2, while partial-sum traffic
// stays at the fp32 burst count.
func TestQuantizedBurstsOnBus(t *testing.T) {
	for _, tc := range []struct {
		prec   kernels.Precision
		bursts int
	}{
		{kernels.FP32, 4}, {kernels.FP16, 2}, {kernels.INT8, 2},
	} {
		cfg := miniConfig()
		cfg.Precision = tc.prec
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.bursts != tc.bursts {
			t.Fatalf("%v: gather bursts %d, want %d", tc.prec, r.bursts, tc.bursts)
		}
		if r.psumBursts != 4 {
			t.Fatalf("%v: psum bursts %d, want fp32's 4", tc.prec, r.psumBursts)
		}
	}
}

// TestQuantizedRunFasterAndCheaper checks the end-to-end effect: the same
// batch at int8 storage moves fewer DRAM bursts and finishes in no more
// cycles than fp32 (the partitioner additionally sees compressed regions,
// so the placement can only improve).
func TestQuantizedRunFasterAndCheaper(t *testing.T) {
	run := func(prec kernels.Precision) *struct {
		cycles int64
		bursts int64
	} {
		cfg := miniConfig()
		cfg.Precision = prec
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := trace.NewGenerator(cfg.Spec, 3)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := r.Run(g.Batch(8))
		if err != nil {
			t.Fatal(err)
		}
		d := rs.DRAM
		return &struct {
			cycles int64
			bursts int64
		}{int64(rs.Cycles), d.BurstsToRank + d.BurstsToBG + d.BurstsToBank}
	}
	fp32 := run(kernels.FP32)
	i8 := run(kernels.INT8)
	if i8.bursts >= fp32.bursts {
		t.Fatalf("int8 moved %d bursts, fp32 %d — quantization saved nothing", i8.bursts, fp32.bursts)
	}
	if i8.cycles > fp32.cycles {
		t.Fatalf("int8 batch took %d cycles, fp32 %d", i8.cycles, fp32.cycles)
	}
}

// TestQuantizedRegionsCompression checks the regions advertise the burst
// ratio to the partitioner, and the cold tier the exact codec ratio.
func TestQuantizedRegionsCompression(t *testing.T) {
	cfg := miniConfig()
	cfg.Precision = kernels.INT8
	cfg.ColdPrecision = kernels.INT8
	cfg.ColdTier = &coldstore.TierSpec{CapBytes: 64 << 20}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regs := r.Regions()
	if len(regs) != 4 {
		t.Fatalf("got %d regions, want 4", len(regs))
	}
	for _, reg := range regs[:3] {
		if reg.Compression != 2 { // 4 fp32 bursts / 2 int8 bursts at vecLen 64
			t.Fatalf("region %s compression %.2f, want 2", reg.Name, reg.Compression)
		}
	}
	if want := kernels.INT8.Ratio(64); regs[3].Compression != want {
		t.Fatalf("cold compression %.3f, want codec ratio %.3f", regs[3].Compression, want)
	}
}
