package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, at := range []Cycle{30, 10, 20} {
		at := at
		e.At(at, func(now Cycle) { got = append(got, now) })
	}
	e.Run()
	want := []Cycle{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameCycle(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Cycle) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events ran out of order: %v", got)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var fired Cycle
	e.At(100, func(now Cycle) {
		e.After(7, func(now Cycle) { fired = now })
	})
	e.Run()
	if fired != 107 {
		t.Fatalf("After fired at %d, want 107", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(50, func(Cycle) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(10, func(Cycle) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func(Cycle) { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, at := range []Cycle{5, 10, 15, 20} {
		e.At(at, func(now Cycle) { got = append(got, now) })
	}
	e.RunUntil(12)
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("RunUntil(12) ran %v, want [5 10]", got)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events did not run: %v", got)
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the engine ends at the max time.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		var max Cycle
		for _, u := range times {
			at := Cycle(u)
			if at > max {
				max = at
			}
			e.At(at, func(now Cycle) { fired = append(fired, now) })
		}
		end := e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		if len(times) > 0 && end != max {
			return false
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStressInterleavedScheduling(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	count := 0
	var spawn func(now Cycle)
	spawn = func(now Cycle) {
		count++
		if count < 5000 {
			e.After(Cycle(rng.Intn(20)+1), spawn)
		}
	}
	e.At(0, spawn)
	e.Run()
	if count != 5000 {
		t.Fatalf("count = %d, want 5000", count)
	}
}

func BenchmarkEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		n := 0
		var tick func(now Cycle)
		tick = func(now Cycle) {
			n++
			if n < 1000 {
				e.After(3, tick)
			}
		}
		e.At(0, tick)
		e.Run()
	}
}
