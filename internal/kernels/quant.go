// Quantized row codecs and fused dequantize-scale-accumulate kernels.
//
// Two reduced-precision row formats exist so cold storage tiers can trade
// accuracy headroom for bandwidth and capacity:
//
//   - fp16: IEEE 754 binary16, round-to-nearest-even. Conversion back to
//     float32 is exact (every binary16 value is a binary32 value), so the
//     fp16 path's error is purely representational: per element
//     |v16 - v| <= 2^-11 * |v| for normals, with a 2^-25 absolute floor in
//     the subnormal range.
//   - int8: per-row asymmetric affine code. Each row stores a float32
//     scale, an int32 zero-point and one uint8 per element;
//     dequantization is v = float32(int32(q)-zero) * scale. With
//     scale = (max-min)/255 the per-element error is bounded by scale/2
//     (plus one float32 rounding of the product). Constant rows are
//     represented exactly (scale = c, q = 1, zero = 0).
//
// The fused kernels below follow the same discipline as the fp32 kernels
// in this package: 8-wide unrolled with a scalar tail, and lane j of the
// destination sees exactly the FP32 operation sequence of the scalar
// reference. Dequantization is a single-rounded per-lane expression — the
// same expression DecodeI8/DecodeF16 use — so accumulating from a
// quantized row directly (AddI8 et al.) is bit-identical to first
// decoding the row to float32 and then running the fp32 kernel on it.
// That invariant is what lets a hot-row cache hold dequantized fp32 rows
// while misses reduce straight from quantized storage without the two
// paths ever disagreeing.
package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Precision selects a row storage format.
type Precision uint8

const (
	// FP32 is the native float32 row format (no codec).
	FP32 Precision = iota
	// FP16 stores rows as IEEE binary16 (2 bytes/element).
	FP16
	// INT8 stores rows as per-row affine-quantized uint8 (1 byte/element
	// plus an 8-byte scale/zero-point header).
	INT8
)

// I8RowOverhead is the per-row header of the INT8 format: a float32 scale
// followed by an int32 zero-point, both little-endian.
const I8RowOverhead = 8

func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision parses "fp32", "fp16" or "int8".
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp32", "float32", "f32", "":
		return FP32, nil
	case "fp16", "float16", "f16", "half":
		return FP16, nil
	case "int8", "i8", "q8":
		return INT8, nil
	default:
		return FP32, fmt.Errorf("kernels: unknown precision %q (want fp32, fp16 or int8)", s)
	}
}

// RowBytes is the serialized size of one vecLen-element row.
func (p Precision) RowBytes(vecLen int) int {
	switch p {
	case FP16:
		return 2 * vecLen
	case INT8:
		return vecLen + I8RowOverhead
	default:
		return 4 * vecLen
	}
}

// Ratio is the compression ratio versus fp32 rows of the same vecLen
// (>= 1; exactly 1 for FP32).
func (p Precision) Ratio(vecLen int) float64 {
	return float64(4*vecLen) / float64(p.RowBytes(vecLen))
}

// ---- fp16 codec ----

// F32ToF16 converts f to IEEE binary16 with round-to-nearest-even.
// Values above the binary16 range round to +/-Inf; NaN stays NaN.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b >> 16 & 0x8000)
	exp := int32(b>>23&0xff) - 127 + 15
	man := b & 0x7fffff
	switch {
	case exp >= 31:
		if int32(b>>23&0xff) == 0xff && man != 0 {
			return sign | 0x7e00 // NaN (quiet, payload dropped)
		}
		return sign | 0x7c00 // Inf / overflow
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to signed zero
		}
		// Subnormal: shift the implicit-1 mantissa into place, RNE.
		man |= 0x800000
		shift := uint32(14 - exp) // exp in [-10,0] -> shift in [14,24]
		q := man >> shift
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		return sign | uint16(q)
	default:
		// Normal: 23 -> 10 mantissa bits, RNE; a mantissa carry bumps the
		// exponent (and can round the largest finites up to Inf).
		q := man >> 13
		rem := man & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && q&1 == 1) {
			q++
		}
		r := uint32(exp)<<10 + q
		if r >= 0x7c00 {
			return sign | 0x7c00
		}
		return sign | uint16(r)
	}
}

// f16Magic rescales the subnormal-half path of F16ToF32 (2^-112 bias
// correction done in float arithmetic, which renormalizes for free).
var f16Magic = math.Float32frombits(113 << 23)

// F16ToF32 converts an IEEE binary16 value to float32 (exact for every
// non-NaN value; signaling NaNs are quieted, matching the hardware
// conversion the vector path uses).
func F16ToF32(h uint16) float32 {
	const shiftedExp = 0x7c00 << 13
	o := uint32(h&0x7fff) << 13
	exp := o & shiftedExp
	o += (127 - 15) << 23
	switch exp {
	case shiftedExp: // Inf/NaN: adjust the exponent the rest of the way
		o += (128 - 16) << 23
		if o&0x7fffff != 0 {
			o |= 1 << 22 // quiet signaling NaNs, as VCVTPH2PS does
		}
	case 0: // zero/subnormal: renormalize via float subtraction
		o += 1 << 23
		o = math.Float32bits(math.Float32frombits(o) - f16Magic)
	}
	return math.Float32frombits(o | uint32(h&0x8000)<<16)
}

// QuantizeF16 encodes src elementwise into q (len(q) >= len(src)).
func QuantizeF16(q []uint16, src []float32) {
	q = q[:len(src)]
	for i, v := range src {
		q[i] = F32ToF16(v)
	}
}

// decodeF16Generic decodes q elementwise into dst (len(q) >= len(dst)).
func decodeF16Generic(dst []float32, q []uint16) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		d[0] = F16ToF32(s[0])
		d[1] = F16ToF32(s[1])
		d[2] = F16ToF32(s[2])
		d[3] = F16ToF32(s[3])
		d[4] = F16ToF32(s[4])
		d[5] = F16ToF32(s[5])
		d[6] = F16ToF32(s[6])
		d[7] = F16ToF32(s[7])
	}
	for ; i < n; i++ {
		dst[i] = F16ToF32(q[i])
	}
}

// addF16Generic accumulates a binary16 row into dst: dst[i] += decode(q[i]).
// Bit-identical to DecodeF16 followed by Add.
func addF16Generic(dst []float32, q []uint16) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		d[0] += F16ToF32(s[0])
		d[1] += F16ToF32(s[1])
		d[2] += F16ToF32(s[2])
		d[3] += F16ToF32(s[3])
		d[4] += F16ToF32(s[4])
		d[5] += F16ToF32(s[5])
		d[6] += F16ToF32(s[6])
		d[7] += F16ToF32(s[7])
	}
	for ; i < n; i++ {
		dst[i] += F16ToF32(q[i])
	}
}

// axpyF16Generic accumulates a scaled binary16 row: dst[i] += w*decode(q[i]).
// The decode result is a float32 value, so multiply-then-add matches
// Axpy on the decoded row exactly.
func axpyF16Generic(dst []float32, q []uint16, w float32) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		d[0] += w * F16ToF32(s[0])
		d[1] += w * F16ToF32(s[1])
		d[2] += w * F16ToF32(s[2])
		d[3] += w * F16ToF32(s[3])
		d[4] += w * F16ToF32(s[4])
		d[5] += w * F16ToF32(s[5])
		d[6] += w * F16ToF32(s[6])
		d[7] += w * F16ToF32(s[7])
	}
	for ; i < n; i++ {
		dst[i] += w * F16ToF32(q[i])
	}
}

// maxF16Generic folds a binary16 row into dst under max, with the scalar
// reference's comparison semantics on the decoded values.
func maxF16Generic(dst []float32, q []uint16) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		if v := F16ToF32(s[0]); v > d[0] {
			d[0] = v
		}
		if v := F16ToF32(s[1]); v > d[1] {
			d[1] = v
		}
		if v := F16ToF32(s[2]); v > d[2] {
			d[2] = v
		}
		if v := F16ToF32(s[3]); v > d[3] {
			d[3] = v
		}
		if v := F16ToF32(s[4]); v > d[4] {
			d[4] = v
		}
		if v := F16ToF32(s[5]); v > d[5] {
			d[5] = v
		}
		if v := F16ToF32(s[6]); v > d[6] {
			d[6] = v
		}
		if v := F16ToF32(s[7]); v > d[7] {
			d[7] = v
		}
	}
	for ; i < n; i++ {
		if v := F16ToF32(q[i]); v > dst[i] {
			dst[i] = v
		}
	}
}

// ---- int8 codec ----

// QuantizeI8 encodes src into q (len(q) >= len(src)) with a per-row
// asymmetric affine code: the row range is widened to include zero (so
// the zero-point is always an exact code in [0,255] and |q-zero| <= 255
// keeps the dequantizing int-to-float conversion exact), then
// scale = (max-min)/255, zero-point = round(-min/scale),
// q[i] = clamp(round(src[i]/scale)+zero, 0, 255).
// Quantization runs in float64 so the per-element reconstruction error is
// bounded by scale/2 (plus a 2^-13*scale grid-shift slack from rounding
// scale itself, plus one float32 rounding of the dequantized product).
// Constant rows (max == min) are represented exactly with scale = c,
// zero = 0, q = 1 (q = 0 for all-zero rows).
func QuantizeI8(q []uint8, src []float32) (scale float32, zero int32) {
	if len(src) == 0 {
		return 1, 0
	}
	q = q[:len(src)]
	lo, hi := src[0], src[0]
	for _, v := range src[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		if lo == 0 {
			for i := range q {
				q[i] = 0
			}
			return 1, 0
		}
		for i := range q {
			q[i] = 1
		}
		return lo, 0 // dequant: (1-0)*lo == lo exactly
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	scale = (hi - lo) / 255
	if scale == 0 {
		// Subnormal-tiny span: (hi-lo)/255 underflowed. Encode as the
		// constant lo (error < hi-lo < 2^-141).
		for i := range q {
			q[i] = 1
		}
		return lo, 0
	}
	zero = int32(math.RoundToEven(float64(-lo) / float64(scale)))
	if zero < 0 {
		zero = 0
	} else if zero > 255 {
		zero = 255
	}
	inv := 1 / float64(scale)
	for i, v := range src {
		t := int32(math.RoundToEven(float64(v)*inv)) + zero
		if t < 0 {
			t = 0
		} else if t > 255 {
			t = 255
		}
		q[i] = uint8(t)
	}
	return scale, zero
}

// decodeI8Generic dequantizes q into dst (len(q) >= len(dst)):
// dst[i] = float32(int32(q[i])-zero) * scale. The int-to-float conversion
// is exact (|q-zero| <= 510 < 2^24), so the only rounding is the final
// product — the same single-rounded expression every fused kernel uses.
func decodeI8Generic(dst []float32, q []uint8, scale float32, zero int32) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		d[0] = float32(int32(s[0])-zero) * scale
		d[1] = float32(int32(s[1])-zero) * scale
		d[2] = float32(int32(s[2])-zero) * scale
		d[3] = float32(int32(s[3])-zero) * scale
		d[4] = float32(int32(s[4])-zero) * scale
		d[5] = float32(int32(s[5])-zero) * scale
		d[6] = float32(int32(s[6])-zero) * scale
		d[7] = float32(int32(s[7])-zero) * scale
	}
	for ; i < n; i++ {
		dst[i] = float32(int32(q[i])-zero) * scale
	}
}

// addI8Generic accumulates a quantized row into dst: dst[i] += dequant(q[i]).
// Bit-identical to DecodeI8 followed by Add.
func addI8Generic(dst []float32, q []uint8, scale float32, zero int32) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		d[0] += float32(int32(s[0])-zero) * scale
		d[1] += float32(int32(s[1])-zero) * scale
		d[2] += float32(int32(s[2])-zero) * scale
		d[3] += float32(int32(s[3])-zero) * scale
		d[4] += float32(int32(s[4])-zero) * scale
		d[5] += float32(int32(s[5])-zero) * scale
		d[6] += float32(int32(s[6])-zero) * scale
		d[7] += float32(int32(s[7])-zero) * scale
	}
	for ; i < n; i++ {
		dst[i] += float32(int32(q[i])-zero) * scale
	}
}

// axpyI8Generic accumulates a scaled quantized row: dst[i] += w*dequant(q[i]).
// The dequantized lane is rounded to float32 before the weight multiply
// (v := dequant; dst += w*v), matching Axpy on the decoded row exactly —
// w is never folded into scale.
func axpyI8Generic(dst []float32, q []uint8, w, scale float32, zero int32) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		d[0] += w * (float32(int32(s[0])-zero) * scale)
		d[1] += w * (float32(int32(s[1])-zero) * scale)
		d[2] += w * (float32(int32(s[2])-zero) * scale)
		d[3] += w * (float32(int32(s[3])-zero) * scale)
		d[4] += w * (float32(int32(s[4])-zero) * scale)
		d[5] += w * (float32(int32(s[5])-zero) * scale)
		d[6] += w * (float32(int32(s[6])-zero) * scale)
		d[7] += w * (float32(int32(s[7])-zero) * scale)
	}
	for ; i < n; i++ {
		dst[i] += w * (float32(int32(q[i])-zero) * scale)
	}
}

// maxI8Generic folds a quantized row into dst under max on the dequantized
// values, with the scalar reference's comparison semantics.
func maxI8Generic(dst []float32, q []uint8, scale float32, zero int32) {
	n := len(dst)
	q = q[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := q[i : i+8 : i+8]
		if v := float32(int32(s[0])-zero) * scale; v > d[0] {
			d[0] = v
		}
		if v := float32(int32(s[1])-zero) * scale; v > d[1] {
			d[1] = v
		}
		if v := float32(int32(s[2])-zero) * scale; v > d[2] {
			d[2] = v
		}
		if v := float32(int32(s[3])-zero) * scale; v > d[3] {
			d[3] = v
		}
		if v := float32(int32(s[4])-zero) * scale; v > d[4] {
			d[4] = v
		}
		if v := float32(int32(s[5])-zero) * scale; v > d[5] {
			d[5] = v
		}
		if v := float32(int32(s[6])-zero) * scale; v > d[6] {
			d[6] = v
		}
		if v := float32(int32(s[7])-zero) * scale; v > d[7] {
			d[7] = v
		}
	}
	for ; i < n; i++ {
		if v := float32(int32(q[i])-zero) * scale; v > dst[i] {
			dst[i] = v
		}
	}
}

// ---- serialized row forms (the cold-tier page layout) ----

// EncodeRow serializes src into dst (len(dst) >= p.RowBytes(len(src)))
// in p's little-endian row format and returns the bytes written. FP32 is
// the raw float32 bit pattern; FP16 is packed binary16; INT8 is the
// 8-byte scale/zero header followed by one byte per element.
func EncodeRow(p Precision, dst []byte, src []float32) int {
	switch p {
	case FP16:
		for i, v := range src {
			binary.LittleEndian.PutUint16(dst[2*i:], F32ToF16(v))
		}
		return 2 * len(src)
	case INT8:
		scale, zero := QuantizeI8(dst[I8RowOverhead:I8RowOverhead+len(src)], src)
		binary.LittleEndian.PutUint32(dst[0:], math.Float32bits(scale))
		binary.LittleEndian.PutUint32(dst[4:], uint32(zero))
		return I8RowOverhead + len(src)
	default:
		for i, v := range src {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
		}
		return 4 * len(src)
	}
}

// DecodeRow deserializes one row encoded by EncodeRow into dst.
func DecodeRow(p Precision, dst []float32, row []byte) {
	switch p {
	case FP16:
		for i := range dst {
			dst[i] = F16ToF32(binary.LittleEndian.Uint16(row[2*i:]))
		}
	case INT8:
		scale := math.Float32frombits(binary.LittleEndian.Uint32(row[0:]))
		zero := int32(binary.LittleEndian.Uint32(row[4:]))
		DecodeI8(dst, row[I8RowOverhead:I8RowOverhead+len(dst)], scale, zero)
	default:
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(row[4*i:]))
		}
	}
}
