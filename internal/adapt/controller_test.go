package adapt

import (
	"fmt"
	"testing"
	"time"

	"recross/internal/partition"
	"recross/internal/trace"
)

func testController(t *testing.T, mutate func(*Options)) (*Controller, *trace.Generator, *int) {
	t.Helper()
	spec := testSpec()
	baseline, err := partition.NewProfile(spec, 7, 2500)
	if err != nil {
		t.Fatal(err)
	}
	regions := testRegions(spec.TotalBytes())
	dec, err := partition.SolveLP(baseline, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	adoptions := new(int)
	opts := Options{
		Spec:       spec,
		Baseline:   baseline,
		Decision:   dec,
		Batch:      32,
		MinSamples: 50,
		Adopt: func(prof *partition.Profile, d *partition.Decision) error {
			*adoptions++
			return nil
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := NewController(opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 991)
	if err != nil {
		t.Fatal(err)
	}
	return c, g, adoptions
}

func stepWindow(c *Controller, g *trace.Generator, samples int) StepResult {
	for i := 0; i < samples; i++ {
		c.Observe(g.Sample())
	}
	return c.Step()
}

// TestControllerAdoptsExactlyOnceOnShift is the control loop end to end in
// manual (Step-driven) mode: quiet under stationary traffic, one adoption
// after a hot-set permutation, quiet again afterwards because the adopted
// profile becomes the drift baseline.
func TestControllerAdoptsExactlyOnceOnShift(t *testing.T) {
	c, g, adoptions := testController(t, nil)

	for w := 0; w < 5; w++ {
		res := stepWindow(c, g, 400)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Adopted {
			t.Fatalf("adopted under stationary traffic at window %d (drift %.4f)", w, res.Drift.Score)
		}
	}
	if m := c.Metrics(); m.Triggers != 0 {
		t.Fatalf("%d triggers under stationary traffic", m.Triggers)
	}

	if err := g.ShiftHotSet(424242); err != nil {
		t.Fatal(err)
	}
	adoptedAt := -1
	for w := 0; w < 8; w++ {
		res := stepWindow(c, g, 400)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Adopted {
			adoptedAt = w
			if res.Plan == nil {
				t.Fatal("adoption without a plan")
			}
			t.Logf("adopted at post-shift window %d: speedup %.2f, %d rows / %d bytes to move",
				w, res.Plan.Speedup, res.Plan.RowsMoved, res.Plan.BytesMoved)
			if res.Plan.Speedup < 1.05 {
				t.Fatalf("adopted plan speedup %.3f below the MinGain gate", res.Plan.Speedup)
			}
			if res.Plan.RowsMoved <= 0 {
				t.Fatal("adopted plan moves no rows")
			}
			break
		}
	}
	if adoptedAt < 0 {
		t.Fatal("controller never adopted after hot-set shift")
	}

	// Post-adoption: live traffic now matches the adopted baseline; the
	// loop must settle (cooldown would block a re-fire anyway, but the
	// drift score itself should fall back under threshold).
	for w := 0; w < 4; w++ {
		res := stepWindow(c, g, 400)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Adopted {
			t.Fatalf("second adoption at settle window %d", w)
		}
	}
	if *adoptions != 1 {
		t.Fatalf("adopt callback ran %d times, want exactly 1", *adoptions)
	}
	m := c.Metrics()
	if m.Adoptions != 1 || m.RowsMigrated <= 0 || m.BytesMigrated <= 0 {
		t.Fatalf("metrics inconsistent after adoption: %+v", m)
	}
	if m.EstimatedGain < 1.05 {
		t.Fatalf("estimated gain %.3f not recorded", m.EstimatedGain)
	}
	// The adopted state is queryable for replica rebuilds.
	prof, dec := c.Current()
	if prof == c.opts.Baseline {
		t.Fatal("Current still returns the pre-adoption baseline")
	}
	if dec == c.opts.Decision {
		t.Fatal("Current still returns the pre-adoption decision")
	}
}

func TestControllerMinSamplesGuard(t *testing.T) {
	c, g, adoptions := testController(t, func(o *Options) { o.MinSamples = 1 << 40 })
	if err := g.ShiftHotSet(7); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 6; w++ {
		if res := stepWindow(c, g, 300); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	m := c.Metrics()
	if m.Triggers == 0 {
		t.Fatal("drift never triggered")
	}
	if m.Skipped == 0 || m.Replans != 0 || *adoptions != 0 {
		t.Fatalf("MinSamples guard did not hold: %+v", m)
	}
}

func TestControllerObserveOnlyMode(t *testing.T) {
	c, g, _ := testController(t, func(o *Options) { o.Adopt = nil })
	if err := g.ShiftHotSet(7); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 6; w++ {
		res := stepWindow(c, g, 400)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Adopted {
			t.Fatal("observe-only controller adopted")
		}
	}
	m := c.Metrics()
	if m.Replans == 0 || m.Rejected == 0 {
		t.Fatalf("observe-only mode should replan and reject: %+v", m)
	}
}

func TestControllerCooldownBlocksRefire(t *testing.T) {
	c, g, adoptions := testController(t, func(o *Options) { o.Cooldown = time.Hour })
	if err := g.ShiftHotSet(1); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 6 && *adoptions == 0; w++ {
		if res := stepWindow(c, g, 400); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if *adoptions != 1 {
		t.Fatalf("first adoption did not happen (%d)", *adoptions)
	}
	// Shift again: drift will fire, but the hour-long cooldown must hold.
	if err := g.ShiftHotSet(2); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		if res := stepWindow(c, g, 400); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if *adoptions != 1 {
		t.Fatalf("cooldown violated: %d adoptions", *adoptions)
	}
	if m := c.Metrics(); m.Rejected == 0 {
		t.Fatalf("second drift should have been rejected by cooldown: %+v", m)
	}
}

func TestControllerRealizedGain(t *testing.T) {
	var count int64
	var sum float64
	c, g, _ := testController(t, func(o *Options) {
		o.ServiceCycles = func() (int64, float64) { return count, sum }
	})
	// Window 1: mean 100 cycles.
	count, sum = 10, 1000
	if res := stepWindow(c, g, 200); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Force an adoption path synthetically: shift and run to adoption.
	if err := g.ShiftHotSet(5); err != nil {
		t.Fatal(err)
	}
	adopted := false
	for w := 0; w < 6 && !adopted; w++ {
		count += 10
		sum += 2000 // degraded: 200 cycles/batch while stale
		res := stepWindow(c, g, 400)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		adopted = adopted || res.Adopted
	}
	if !adopted {
		t.Fatal("no adoption")
	}
	// Post-adoption window: recovered to 100 cycles/batch.
	count += 10
	sum += 1000
	if res := stepWindow(c, g, 400); res.Err != nil {
		t.Fatal(res.Err)
	}
	m := c.Metrics()
	if m.RealizedGain < 1.5 || m.RealizedGain > 2.5 {
		t.Fatalf("realized gain %.3f, want ~2 (200 -> 100 cycles/batch)", m.RealizedGain)
	}
}

func TestControllerStartStop(t *testing.T) {
	c, g, _ := testController(t, func(o *Options) { o.Interval = 5 * time.Millisecond })
	c.Start()
	c.Start() // idempotent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			c.Observe(g.Sample())
		}
	}()
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for c.Metrics().Windows == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never stepped")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	after := c.Metrics().Windows
	time.Sleep(20 * time.Millisecond)
	if got := c.Metrics().Windows; got != after {
		t.Fatalf("loop still stepping after Stop: %d -> %d", after, got)
	}
}

func TestControllerExpoSeries(t *testing.T) {
	c, g, _ := testController(t, nil)
	stepWindow(c, g, 100)
	expo := c.Expo()
	for _, series := range []string{
		"recross_adapt_windows_total",
		"recross_adapt_triggers_total",
		"recross_adapt_repartitions_total",
		"recross_adapt_rejected_total",
		"recross_adapt_rows_migrated_total",
		"recross_adapt_bytes_migrated_total",
		"recross_adapt_drift_score",
		"recross_adapt_estimated_gain",
		"recross_adapt_realized_gain",
		"recross_adapt_samples_observed",
	} {
		if !contains(expo, series) {
			t.Errorf("Expo missing series %s", series)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestControllerValidation(t *testing.T) {
	spec := testSpec()
	baseline, _ := partition.NewProfile(spec, 7, 500)
	regions := testRegions(spec.TotalBytes())
	dec, _ := partition.SolveLP(baseline, regions, 32)
	cases := []struct {
		name string
		opts Options
	}{
		{"nil baseline", Options{Spec: spec, Decision: dec, Batch: 32}},
		{"nil decision", Options{Spec: spec, Baseline: baseline, Batch: 32}},
		{"bad batch", Options{Spec: spec, Baseline: baseline, Decision: dec, Batch: -1}},
		{"bad spec", Options{Baseline: baseline, Decision: dec, Batch: 32}},
	}
	for _, tc := range cases {
		if _, err := NewController(tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPlanWorthwhile(t *testing.T) {
	cases := []struct {
		plan    Plan
		minGain float64
		horizon int64
		want    bool
	}{
		// Clear win: 20% faster, migration repaid quickly.
		{Plan{OldT: 120, NewT: 100, Speedup: 1.2, MigCycles: 1000}, 0.05, 1000, true},
		// Below the gain floor.
		{Plan{OldT: 103, NewT: 100, Speedup: 1.03, MigCycles: 0}, 0.05, 1000, false},
		// Gain fine, but migration never amortizes over the horizon.
		{Plan{OldT: 120, NewT: 100, Speedup: 1.2, MigCycles: 1e9}, 0.05, 10, false},
		// Regression is never worthwhile.
		{Plan{OldT: 90, NewT: 100, Speedup: 0.9, MigCycles: 0}, 0.05, 1000, false},
	}
	for i, tc := range cases {
		if got := tc.plan.Worthwhile(tc.minGain, tc.horizon); got != tc.want {
			t.Errorf("case %d: Worthwhile = %v, want %v (%+v)", i, got, tc.want, tc.plan)
		}
	}
}

func TestPlanMigrationPricesPermutation(t *testing.T) {
	spec := testSpec()
	baseline, err := partition.NewProfile(spec, 7, 2500)
	if err != nil {
		t.Fatal(err)
	}
	regions := testRegions(spec.TotalBytes())
	old, err := partition.SolveLP(baseline, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(baseline, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Live = permuted traffic.
	g, _ := trace.NewGenerator(spec, 44)
	if err := g.ShiftHotSet(321); err != nil {
		t.Fatal(err)
	}
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 512})
	feed(tr, g, 1500)
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	next, err := partition.SolveLP(prof, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := det.SegShares(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	aware, err := PlanMigration(prof, old, next, 32, shares)
	if err != nil {
		t.Fatal(err)
	}
	blind, err := PlanMigration(prof, old, next, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("identity-aware speedup %.2f vs shape-blind %.2f", aware.Speedup, blind.Speedup)
	// The shape-blind estimate cannot see the permutation: it prices the
	// stale placement as nearly optimal. The identity-aware one must see a
	// large win — that asymmetry is the whole reason SegShares exists.
	if aware.Speedup < blind.Speedup+0.5 {
		t.Fatalf("identity-aware pricing (%.2f) not clearly above shape-blind (%.2f)", aware.Speedup, blind.Speedup)
	}
	if !aware.Worthwhile(0.05, 10000) {
		t.Fatalf("permutation recovery not worthwhile: %+v", aware)
	}
}

func TestPlanMigrationValidation(t *testing.T) {
	spec := testSpec()
	baseline, _ := partition.NewProfile(spec, 7, 500)
	regions := testRegions(spec.TotalBytes())
	dec, _ := partition.SolveLP(baseline, regions, 32)
	if _, err := PlanMigration(baseline, nil, dec, 32, nil); err == nil {
		t.Error("nil old decision should error")
	}
	if _, err := PlanMigration(baseline, dec, nil, 32, nil); err == nil {
		t.Error("nil next decision should error")
	}
	other, _ := partition.NewProfile(trace.Uniform(1, 1000, 16, 2), 1, 100)
	odec, err := partition.SolveLP(other, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanMigration(baseline, odec, dec, 32, nil); err == nil {
		t.Error("table-count mismatch should error")
	}
}

func TestEstimateSharesValidation(t *testing.T) {
	spec := testSpec()
	baseline, _ := partition.NewProfile(spec, 7, 500)
	regions := testRegions(spec.TotalBytes())
	dec, _ := partition.SolveLP(baseline, regions, 32)
	vols := partition.AccessVolumes(spec, 32)
	if _, _, err := partition.EstimateShares(dec, vols[:1], nil); err == nil {
		t.Error("vol/table mismatch should error")
	}
	bad := make([][]float64, len(spec.Tables))
	for i := range bad {
		bad[i] = []float64{1} // wrong segment count
	}
	if _, _, err := partition.EstimateShares(dec, vols, bad); err == nil {
		t.Error("share/segment mismatch should error")
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	spec := testSpec()
	tr, err := NewTracker(spec, TrackerOptions{TopK: 512})
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate samples so the generator cost stays out of the loop.
	samples := make([]trace.Sample, 256)
	for i := range samples {
		samples[i] = g.Sample()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(samples[i%len(samples)])
	}
}

func ExampleController() {
	spec := trace.Uniform(2, 5000, 16, 4)
	baseline, _ := partition.NewProfile(spec, 7, 500)
	regions := []partition.Region{
		{Name: "R", CapBytes: spec.TotalBytes(), BW: 8},
		{Name: "B", CapBytes: spec.TotalBytes() / 4, BW: 120},
	}
	dec, _ := partition.SolveLP(baseline, regions, 16)
	ctrl, _ := NewController(Options{
		Spec: spec, Baseline: baseline, Decision: dec, Batch: 16,
		Adopt: func(prof *partition.Profile, d *partition.Decision) error { return nil },
	})
	g, _ := trace.NewGenerator(spec, 1)
	for i := 0; i < 100; i++ {
		ctrl.Observe(g.Sample())
	}
	res := ctrl.Step()
	fmt.Println("fired:", res.Drift.Fired)
	// Output: fired: false
}
