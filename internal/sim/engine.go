// Package sim provides a small discrete-event simulation kernel used by the
// DRAM timing model. Time is measured in integer clock cycles of the DRAM
// I/O clock (DDR5-4800 => 2400 MHz, i.e. one cycle = 1/2.4 ns).
//
// The engine is deliberately minimal: an event is a (time, sequence,
// callback) triple kept in a binary heap. Components schedule callbacks and
// the engine runs them in time order, skipping over idle cycles entirely, so
// simulated time can advance by thousands of cycles in one step.
package sim

import "container/heap"

// Cycle is a point in simulated time, in DRAM I/O clock cycles.
type Cycle int64

// Event is a callback scheduled to run at a particular cycle.
type Event struct {
	At  Cycle
	Fn  func(now Cycle)
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	idx int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Cycle
	events eventHeap
	seq    uint64
}

// NewEngine returns an engine whose clock starts at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycle { return e.now }

// At schedules fn to run at cycle t. Scheduling in the past (t < Now) is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Cycle, fn func(now Cycle)) *Event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Cycle, fn func(now Cycle)) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.events) || e.events[ev.idx] != ev {
		return
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the single earliest event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	ev.idx = -1
	e.now = ev.At
	ev.Fn(e.now)
	return true
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= limit. Events scheduled beyond the
// limit remain queued; the clock is left at the last executed event (or
// unchanged if none ran).
func (e *Engine) RunUntil(limit Cycle) {
	for len(e.events) > 0 && e.events[0].At <= limit {
		e.Step()
	}
}
