// Package dlrm is a functional implementation of Facebook's deep-learning
// recommendation model (Naumov et al., the paper's Fig. 1): a bottom MLP
// over dense features, an embedding layer over sparse categorical features,
// pairwise dot-product feature interaction, and a top MLP producing the
// click-through-rate. The embedding layer is the memory-bound part the NMP
// architectures accelerate; this package supplies the full model around it
// for the end-to-end inference example.
package dlrm

import (
	"fmt"
	"math"
	"math/rand"

	"recross/internal/embedding"
	"recross/internal/trace"
)

// MLP is a fully connected network with ReLU activations on hidden layers.
type MLP struct {
	weights [][]float32 // [layer][out*in]
	biases  [][]float32
	sizes   []int
}

// NewMLP builds an MLP with the given layer sizes (input first), weights
// initialized deterministically from seed with Xavier-style scaling.
func NewMLP(sizes []int, seed int64) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("dlrm: MLP needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("dlrm: non-positive layer size %d", s)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: sizes}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := float32(math.Sqrt(2 / float64(in)))
		w := make([]float32, in*out)
		for i := range w {
			w[i] = (rng.Float32()*2 - 1) * scale
		}
		b := make([]float32, out)
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, b)
	}
	return m, nil
}

// InputSize returns the expected input width.
func (m *MLP) InputSize() int { return m.sizes[0] }

// OutputSize returns the output width.
func (m *MLP) OutputSize() int { return m.sizes[len(m.sizes)-1] }

// Forward runs the network. ReLU is applied to every layer except the last.
func (m *MLP) Forward(x []float32) ([]float32, error) {
	if len(x) != m.sizes[0] {
		return nil, fmt.Errorf("dlrm: input width %d, want %d", len(x), m.sizes[0])
	}
	cur := x
	for l := range m.weights {
		in, out := m.sizes[l], m.sizes[l+1]
		next := make([]float32, out)
		w := m.weights[l]
		for o := 0; o < out; o++ {
			acc := m.biases[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range cur {
				acc += row[i] * v
			}
			if l+1 < len(m.weights) && acc < 0 {
				acc = 0 // ReLU on hidden layers
			}
			next[o] = acc
		}
		cur = next
	}
	return cur, nil
}

// Model is the full DLRM.
type Model struct {
	Spec      trace.ModelSpec
	Bottom    *MLP
	Top       *MLP
	Embedding *embedding.Layer
	denseIn   int
	vecLen    int
}

// New builds a DLRM over the spec's embedding layer: a bottom MLP from
// denseFeatures to the embedding dimension, and a top MLP over the
// interaction features.
func New(spec trace.ModelSpec, denseFeatures int, seed int64) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if denseFeatures <= 0 {
		return nil, fmt.Errorf("dlrm: need at least one dense feature")
	}
	vecLen := spec.Tables[0].VecLen
	for _, t := range spec.Tables {
		if t.VecLen != vecLen {
			return nil, fmt.Errorf("dlrm: mixed embedding dimensions unsupported")
		}
	}
	emb, err := embedding.NewLayer(spec)
	if err != nil {
		return nil, err
	}
	bottom, err := NewMLP([]int{denseFeatures, 2 * vecLen, vecLen}, seed)
	if err != nil {
		return nil, err
	}
	// Interaction features: pairwise dots among (bottom output + one
	// pooled vector per table), concatenated with the bottom output.
	n := len(spec.Tables) + 1
	interactions := n * (n - 1) / 2
	top, err := NewMLP([]int{vecLen + interactions, 2 * vecLen, 1}, seed+1)
	if err != nil {
		return nil, err
	}
	return &Model{
		Spec: spec, Bottom: bottom, Top: top, Embedding: emb,
		denseIn: denseFeatures, vecLen: vecLen,
	}, nil
}

// DenseFeatures returns the expected dense input width.
func (m *Model) DenseFeatures() int { return m.denseIn }

// Predict produces the CTR for one sample: dense features plus the sparse
// embedding work. The sample must access every table exactly once.
func (m *Model) Predict(dense []float32, s trace.Sample) (float64, error) {
	pooled, err := m.Embedding.ReduceSample(s)
	if err != nil {
		return 0, err
	}
	return m.PredictPooled(dense, pooled, s)
}

// PredictPooled produces the CTR from already-reduced embedding vectors —
// the path used when an NMP system performed the reduction. The pooled
// vectors must be ordered as the sample's ops.
func (m *Model) PredictPooled(dense []float32, pooled [][]float32, s trace.Sample) (float64, error) {
	if len(pooled) != len(s) {
		return 0, fmt.Errorf("dlrm: %d pooled vectors for %d ops", len(pooled), len(s))
	}
	if len(s) != len(m.Spec.Tables) {
		return 0, fmt.Errorf("dlrm: sample accesses %d tables, want %d", len(s), len(m.Spec.Tables))
	}
	bot, err := m.Bottom.Forward(dense)
	if err != nil {
		return 0, err
	}
	// Feature interaction: pairwise dot products among [bot, pooled...].
	vecs := append([][]float32{bot}, pooled...)
	var feats []float32
	feats = append(feats, bot...)
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			if len(vecs[i]) != m.vecLen || len(vecs[j]) != m.vecLen {
				return 0, fmt.Errorf("dlrm: interaction vector width mismatch")
			}
			var dot float32
			for k := 0; k < m.vecLen; k++ {
				dot += vecs[i][k] * vecs[j][k]
			}
			feats = append(feats, dot)
		}
	}
	out, err := m.Top.Forward(feats)
	if err != nil {
		return 0, err
	}
	return sigmoid(float64(out[0])), nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
