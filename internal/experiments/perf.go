package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// sweep runs one full ArchSet per point and collects speedups over the CPU
// baseline of the same point. Points run concurrently when cfg.Parallel.
func sweep[T any](cfg Config, points []T, configure func(Config, T) Config,
	label func(T) string) (*Table, error) {
	type row struct {
		label    string
		speedups map[string]float64
	}
	rows := make([]row, len(points))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	runPoint := func(i int, p T) {
		pc := configure(cfg, p)
		set, err := NewArchSet(pc)
		if err == nil {
			var st map[string]*archStats
			_ = st
			stats, err2 := set.RunAll()
			if err2 != nil {
				err = err2
			} else {
				var sp map[string]float64
				sp, err = Speedups(stats, "cpu")
				if err == nil {
					mu.Lock()
					rows[i] = row{label: label(p), speedups: sp}
					mu.Unlock()
					return
				}
			}
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("point %s: %w", label(p), err)
		}
		mu.Unlock()
	}

	for i, p := range points {
		if cfg.Parallel {
			wg.Add(1)
			go func(i int, p T) {
				defer wg.Done()
				runPoint(i, p)
			}(i, p)
		} else {
			runPoint(i, p)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	t := &Table{Cols: append([]string{"point"}, ArchNames...)}
	for _, r := range rows {
		cells := []string{r.label}
		for _, a := range ArchNames {
			cells = append(cells, f2(r.speedups[a]))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

type archStats = struct{}

// Fig9 sweeps the embedding vector length (paper: 16..256 elements, batch
// 32) and reports each architecture's speedup over the CPU baseline at the
// same vector length.
func Fig9(cfg Config) (*Table, error) {
	vecLens := []int{16, 32, 64, 128, 256}
	t, err := sweep(cfg, vecLens,
		func(c Config, v int) Config { c.VecLen = v; return c },
		func(v int) string { return fmt.Sprintf("veclen=%d", v) })
	if err != nil {
		return nil, err
	}
	t.Title = "Fig. 9 — speedup over CPU vs embedding vector length"
	t.Note = fmt.Sprintf("batch=%d pooling=%d ranks=%d; paper geomeans: ReCross 15.5x CPU, 2.5x TRiM-G, 1.8x TRiM-B",
		cfg.Batch, cfg.Pooling, cfg.Ranks)
	return t, nil
}

// Fig10 sweeps the batch size (paper: 1..128, vector length 64).
func Fig10(cfg Config) (*Table, error) {
	batches := []int{1, 4, 16, 32, 64, 128}
	if cfg.Batch <= 8 { // quick mode: stay small
		batches = []int{1, 2, 4, 8}
	}
	t, err := sweep(cfg, batches,
		func(c Config, b int) Config { c.Batch = b; return c },
		func(b int) string { return fmt.Sprintf("batch=%d", b) })
	if err != nil {
		return nil, err
	}
	t.Title = "Fig. 10 — speedup over CPU vs batch size"
	t.Note = fmt.Sprintf("veclen=%d pooling=%d ranks=%d; paper: speedups grow slightly with batch size",
		cfg.VecLen, cfg.Pooling, cfg.Ranks)
	return t, nil
}

// Fig11 sweeps the rank count (paper: 2, 4, 8).
func Fig11(cfg Config) (*Table, error) {
	ranks := []int{2, 4, 8}
	t, err := sweep(cfg, ranks,
		func(c Config, r int) Config { c.Ranks = r; return c },
		func(r int) string { return fmt.Sprintf("ranks=%d", r) })
	if err != nil {
		return nil, err
	}
	t.Title = "Fig. 11 — speedup over CPU vs rank count"
	t.Note = "paper: ReCross scales well with ranks (designed inside the rank)"
	return t, nil
}

// SortedNames returns map keys sorted, for deterministic rendering.
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
