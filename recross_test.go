package recross

import (
	"context"
	"errors"
	"testing"
	"time"
)

func miniSpec() ModelSpec {
	spec := ModelSpec{Name: "facade-mini"}
	for i := 0; i < 3; i++ {
		spec.Tables = append(spec.Tables, TableSpec{
			Name: spec.Name + string(rune('a'+i)), Rows: 50000, VecLen: 64,
			Pooling: 4, Prob: 1, Skew: 1.1,
		})
	}
	return spec
}

func TestNewSystemAllArches(t *testing.T) {
	profile, err := NewProfile(miniSpec(), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: miniSpec(), Profile: profile, ProfileSamples: 100}
	gen, err := NewGenerator(miniSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b := gen.Batch(2)
	for _, a := range Arches() {
		sys, err := NewSystem(a, cfg)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if sys.Name() != string(a) {
			t.Fatalf("name %q != arch %q", sys.Name(), a)
		}
		stats, err := sys.Run(b)
		if err != nil {
			t.Fatalf("%s run: %v", a, err)
		}
		if stats.Cycles <= 0 {
			t.Fatalf("%s: no cycles", a)
		}
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem("bogus", Config{Spec: miniSpec()}); err == nil {
		t.Fatal("unknown arch should error")
	}
	if _, err := NewSystem(CPU, Config{}); err == nil {
		t.Fatal("empty spec should error")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	k := CriteoKaggle(64, 80)
	if len(k.Tables) != 26 {
		t.Fatalf("kaggle tables = %d", len(k.Tables))
	}
	tb := CriteoTerabyte(64, 80)
	if tb.TotalBytes() <= k.TotalBytes() {
		t.Fatal("terabyte not larger than kaggle")
	}
	if ChannelBytes(2) != 32<<30 {
		t.Fatalf("2-rank channel = %d bytes, want 32 GiB", ChannelBytes(2))
	}
}

func TestFacadeReCrossInternals(t *testing.T) {
	rc, err := NewReCross(DefaultReCrossConfig(miniSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Regions()) != 3 {
		t.Fatal("want three regions")
	}
	layer, err := NewLayer(miniSpec())
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(miniSpec(), 5)
	out, err := rc.ReduceBatch(layer, gen.Batch(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 3 {
		t.Fatalf("reduce shape wrong: %d samples", len(out))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Spec: miniSpec()}.withDefaults()
	if c.Ranks != 2 || c.Batch != 32 || c.ProfileSamples != 2000 || c.ProfileSeed != 12345 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestNewSystemMultiChannel(t *testing.T) {
	cfg := Config{Spec: miniSpec(), Channels: 3, ProfileSamples: 100}
	sys, err := NewSystem(ReCross, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(miniSpec(), 2)
	b := gen.Batch(2)
	multi, err := sys.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSystem(ReCross, Config{Spec: miniSpec(), ProfileSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	one, err := single.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cycles >= one.Cycles {
		t.Fatalf("3 channels (%d cycles) not faster than 1 (%d)", multi.Cycles, one.Cycles)
	}
}

func TestConfigProfileSeed(t *testing.T) {
	// Unset seed takes the documented default.
	c := Config{Spec: miniSpec()}.withDefaults()
	if c.ProfileSeed != 12345 {
		t.Fatalf("unset seed = %d, want default 12345", c.ProfileSeed)
	}
	// An explicit non-zero seed is preserved.
	c = Config{Spec: miniSpec(), ProfileSeed: 7}.withDefaults()
	if c.ProfileSeed != 7 {
		t.Fatalf("seed 7 coerced to %d", c.ProfileSeed)
	}
	// Seed 0 used to be unreachable (silently became 12345);
	// ProfileSeedSet makes it expressible.
	c = Config{Spec: miniSpec(), ProfileSeed: 0, ProfileSeedSet: true}.withDefaults()
	if c.ProfileSeed != 0 {
		t.Fatalf("explicit seed 0 coerced to %d", c.ProfileSeed)
	}
	// And it must produce a system that actually profiled with seed 0:
	// identical to passing a seed-0 profile explicitly.
	prof0, err := NewProfile(miniSpec(), 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSystem(ReCross, Config{Spec: miniSpec(), Profile: prof0, ProfileSamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewSystem(ReCross, Config{Spec: miniSpec(), ProfileSeedSet: true, ProfileSamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(miniSpec(), 3)
	b := gen.Batch(2)
	w, err := want.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	g, err := got.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cycles != g.Cycles {
		t.Fatalf("seed-0 system diverges: %d vs %d cycles", g.Cycles, w.Cycles)
	}
}

// TestParallelReplicaIsolation is the concurrency audit of the serving
// layer's hot path: two independent System instances over the SAME
// ModelSpec and the SAME shared *Profile must be drivable from parallel
// goroutines with identical results — i.e. construction only reads the
// profile and Run touches no shared state. Run under -race (the CI
// matrix does), this proves replica isolation; a single System instance
// remains single-goroutine by contract.
func TestParallelReplicaIsolation(t *testing.T) {
	spec := miniSpec()
	prof, err := NewProfile(spec, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: spec, Profile: prof, ProfileSamples: 200}
	for _, a := range []Arch{ReCross, TRiMB} {
		replicas, err := cfg.ReplicaSystems(a, 2)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		gen, _ := NewGenerator(spec, 11)
		batches := []Batch{gen.Batch(4), gen.Batch(4)}

		type res struct {
			st  *RunStats
			err error
		}
		out := make([][]res, 2)
		done := make(chan struct{})
		for r := 0; r < 2; r++ {
			out[r] = make([]res, len(batches))
			go func(r int) {
				defer func() { done <- struct{}{} }()
				for i, b := range batches {
					st, err := replicas[r].Run(b)
					out[r][i] = res{st, err}
				}
			}(r)
		}
		<-done
		<-done
		for i := range batches {
			for r := 0; r < 2; r++ {
				if out[r][i].err != nil {
					t.Fatalf("%s replica %d batch %d: %v", a, r, i, out[r][i].err)
				}
			}
			if a, b := out[0][i].st.Cycles, out[1][i].st.Cycles; a != b {
				t.Errorf("replicas diverged on batch %d: %d vs %d cycles (shared state?)", i, a, b)
			}
		}
	}
}

func TestFacadeServer(t *testing.T) {
	cfg := Config{Spec: miniSpec(), ProfileSamples: 100}
	s, err := NewServer(ReCross, cfg, 2, ServeOptions{
		MaxBatch: 4,
		MaxDelay: time.Millisecond,
		Policy:   ShedOnOverload,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Loadgen(s, LoadgenOptions{
		Spec:     miniSpec(),
		Clients:  4,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen completed no requests")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(miniSpec(), 1)
	if _, err := s.Lookup(context.Background(), gen.Sample()); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("lookup after close = %v, want ErrServerClosed", err)
	}
}
