package adapt

import (
	"fmt"
	"testing"

	"recross/internal/partition"
	"recross/internal/trace"
)

func skewSpec(skew float64) trace.ModelSpec {
	return trace.ModelSpec{Name: fmt.Sprintf("drift-%.1f", skew), Tables: []trace.TableSpec{
		{Name: fmt.Sprintf("drift-a-%.1f", skew), Rows: 50000, VecLen: 16, Pooling: 8, Prob: 1, Skew: skew},
		{Name: fmt.Sprintf("drift-b-%.1f", skew), Rows: 20000, VecLen: 16, Pooling: 8, Prob: 1, Skew: skew * 0.75},
	}}
}

// window feeds one control window of traffic and advances the detector.
func window(tr *Tracker, det *Detector, g *trace.Generator, samples int) (Drift, error) {
	feed(tr, g, samples)
	dr, err := det.Observe(tr.Snapshot())
	tr.Decay()
	return dr, err
}

// TestDriftStationaryNoFalsePositive is the false-positive-rate guarantee:
// under stationary traffic — same distribution the placement was solved
// for, fresh random draws — the detector must never fire, across three
// skew regimes and a long run of windows. This is what makes the adaptive
// loop safe to leave on: migrations cost bandwidth, and a detector that
// fires on sampling noise converts noise into migrations.
func TestDriftStationaryNoFalsePositive(t *testing.T) {
	for _, skew := range []float64{0.6, 0.9, 1.2} {
		skew := skew
		t.Run(fmt.Sprintf("skew=%.1f", skew), func(t *testing.T) {
			spec := skewSpec(skew)
			baseline, err := partition.NewProfile(spec, 7, 2500)
			if err != nil {
				t.Fatal(err)
			}
			det, err := NewDetector(baseline, 0.12, 2)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := NewTracker(spec, TrackerOptions{TopK: 512})
			if err != nil {
				t.Fatal(err)
			}
			// Live traffic: same spec, independent seed — stationary.
			g, err := trace.NewGenerator(spec, 991)
			if err != nil {
				t.Fatal(err)
			}
			var worst float64
			for w := 0; w < 25; w++ {
				dr, err := window(tr, det, g, 400)
				if err != nil {
					t.Fatal(err)
				}
				if dr.Score > worst {
					worst = dr.Score
				}
				if dr.Fired {
					t.Fatalf("window %d: false positive, score %.4f (threshold %.2f)", w, dr.Score, det.Threshold())
				}
			}
			t.Logf("skew %.1f: worst stationary score %.4f vs threshold %.2f", skew, worst, det.Threshold())
			// Guard the margin too, not just the binary outcome: a worst
			// score grazing the threshold means the test passes on luck.
			if worst > det.Threshold()*0.75 {
				t.Fatalf("stationary score %.4f too close to threshold %.2f", worst, det.Threshold())
			}
		})
	}
}

// TestDriftFiresOnHotSetShift is the detection guarantee: permute which
// rows are popular (shape unchanged — the exact churn a CDF-vs-CDF
// comparison cannot see) and the detector must fire within a bounded
// number of windows.
func TestDriftFiresOnHotSetShift(t *testing.T) {
	spec := skewSpec(1.1)
	baseline, err := partition.NewProfile(spec, 7, 2500)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(baseline, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(spec, TrackerOptions{TopK: 512})
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 991)
	if err != nil {
		t.Fatal(err)
	}
	// Stationary warmup: must stay quiet.
	for w := 0; w < 4; w++ {
		dr, err := window(tr, det, g, 400)
		if err != nil {
			t.Fatal(err)
		}
		if dr.Fired {
			t.Fatalf("fired during stationary warmup window %d (score %.4f)", w, dr.Score)
		}
	}
	// The shift: same ranks, different rows.
	if err := g.ShiftHotSet(424242); err != nil {
		t.Fatal(err)
	}
	// Hysteresis needs 2 consecutive drifted windows; the sketch needs a
	// decay or two to forget the old head. Allow 5 windows total.
	fired := -1
	for w := 0; w < 5; w++ {
		dr, err := window(tr, det, g, 400)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("post-shift window %d: score %.4f fired=%v", w, dr.Score, dr.Fired)
		if dr.Fired {
			fired = w
			break
		}
	}
	if fired < 0 {
		t.Fatal("detector never fired after hot-set permutation")
	}
	if fired < 1 {
		t.Fatalf("fired after %d windows, hysteresis requires >= 2", fired+1)
	}
}

// TestDriftScoreSeparation pins the signal-to-noise margin the threshold
// default rests on: the post-shift score must dominate the stationary
// score by a wide factor.
func TestDriftScoreSeparation(t *testing.T) {
	spec := skewSpec(1.1)
	baseline, err := partition.NewProfile(spec, 7, 2500)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(baseline, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 512})
	g, _ := trace.NewGenerator(spec, 123)
	feed(tr, g, 1000)
	stationary, err := det.Score(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Fresh tracker under fully shifted traffic.
	tr2, _ := NewTracker(spec, TrackerOptions{TopK: 512})
	if err := g.ShiftHotSet(99); err != nil {
		t.Fatal(err)
	}
	feed(tr2, g, 1000)
	shifted, err := det.Score(tr2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stationary score %.4f, shifted score %.4f", stationary.Score, shifted.Score)
	if shifted.Score < 3*stationary.Score {
		t.Fatalf("separation too small: shifted %.4f < 3x stationary %.4f", shifted.Score, stationary.Score)
	}
	if shifted.KS <= stationary.KS {
		t.Fatalf("KS did not grow under shift: %.4f <= %.4f", shifted.KS, stationary.KS)
	}
}

func TestDriftEmptySnapshotIsQuiet(t *testing.T) {
	spec := skewSpec(1.0)
	baseline, err := partition.NewProfile(spec, 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(baseline, 0.12, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 64})
	dr, err := det.Observe(tr.Snapshot()) // nothing observed yet
	if err != nil {
		t.Fatal(err)
	}
	if dr.Score != 0 || dr.Fired {
		t.Fatalf("no live data must mean no drift, got score %.4f fired=%v", dr.Score, dr.Fired)
	}
}

func TestDetectorValidation(t *testing.T) {
	spec := skewSpec(1.0)
	baseline, _ := partition.NewProfile(spec, 7, 500)
	if _, err := NewDetector(nil, 0.1, 2); err == nil {
		t.Error("nil baseline should error")
	}
	if _, err := NewDetector(baseline, 0, 2); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := NewDetector(baseline, 0.1, 0); err == nil {
		t.Error("zero windows should error")
	}
	det, err := NewDetector(baseline, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Score(nil); err == nil {
		t.Error("snapshot table-count mismatch should error")
	}
	if _, err := det.SegShares(nil); err == nil {
		t.Error("SegShares table-count mismatch should error")
	}
}

// TestSegSharesSumToOne checks the incumbent-pricing shares are a proper
// distribution per table, stationary or shifted.
func TestSegSharesSumToOne(t *testing.T) {
	spec := skewSpec(1.1)
	baseline, _ := partition.NewProfile(spec, 7, 2000)
	det, err := NewDetector(baseline, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 512})
	g, _ := trace.NewGenerator(spec, 55)
	feed(tr, g, 800)
	check := func(label string) {
		shares, err := det.SegShares(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		for i := range shares {
			var sum float64
			for _, s := range shares[i] {
				if s < -1e-9 {
					t.Fatalf("%s: table %d negative share %g", label, i, s)
				}
				sum += s
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("%s: table %d shares sum to %g", label, i, sum)
			}
		}
	}
	check("stationary")
	if err := g.ShiftHotSet(7); err != nil {
		t.Fatal(err)
	}
	tr2, _ := NewTracker(spec, TrackerOptions{TopK: 512})
	tr = tr2
	feed(tr, g, 800)
	check("shifted")
}

// TestSegSharesSeeThroughPermutation: after a hot-set shift the head
// segments of the *old* ranking lose their live mass — that drained head
// share is exactly what makes the stale placement expensive, and what the
// shape-based estimate cannot represent.
func TestSegSharesSeeThroughPermutation(t *testing.T) {
	spec := skewSpec(1.2)
	baseline, _ := partition.NewProfile(spec, 7, 2500)
	det, err := NewDetector(baseline, 0.12, 2)
	if err != nil {
		t.Fatal(err)
	}
	headShare := func(g *trace.Generator) float64 {
		tr, _ := NewTracker(spec, TrackerOptions{TopK: 512})
		feed(tr, g, 1000)
		shares, err := det.SegShares(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		// Head = segments up to the 1% boundary of table 0.
		var head float64
		for s := 0; s < 4; s++ { // bounds 0..0.01 span the first 4 segments
			head += shares[0][s]
		}
		return head
	}
	g, _ := trace.NewGenerator(spec, 31)
	stationaryHead := headShare(g)
	if err := g.ShiftHotSet(1234); err != nil {
		t.Fatal(err)
	}
	shiftedHead := headShare(g)
	t.Logf("old-ranking head share: stationary %.3f, shifted %.3f", stationaryHead, shiftedHead)
	if stationaryHead < 0.2 {
		t.Fatalf("stationary head share %.3f implausibly low for skew 1.2", stationaryHead)
	}
	if shiftedHead > stationaryHead/2 {
		t.Fatalf("shifted head share %.3f did not collapse (stationary %.3f)", shiftedHead, stationaryHead)
	}
}
