package dram

import (
	"testing"

	"recross/internal/sim"
)

func TestWriteReadTurnaround(t *testing.T) {
	c := newTestChannel(t, 2, Conventional)
	l := Loc{Row: 3}
	c.IssueACT(l, 0)
	_, wrDone := c.IssueWR(l, 0)
	rd, _ := c.IssueRD(l, ToHost, 0)
	if rd < wrDone+c.Tm.TWTR {
		t.Fatalf("RD at %d violates tWTR after write data at %d", rd, wrDone)
	}
	if c.St.WRs != 1 {
		t.Fatalf("WRs = %d, want 1", c.St.WRs)
	}
}

func TestWriteRecoveryGatesPrecharge(t *testing.T) {
	c := newTestChannel(t, 2, Conventional)
	c.IssueACT(Loc{Row: 3}, 0)
	_, wrDone := c.IssueWR(Loc{Row: 3}, 0)
	// Conflicting activation must wait tWR (recovery) + tRP after the
	// write data landed.
	act := c.EarliestACT(Loc{Row: 9}, wrDone)
	if act < wrDone+c.Tm.TWR+c.Tm.TRP {
		t.Fatalf("conflict ACT at %d, want >= %d (write recovery + precharge)",
			act, wrDone+c.Tm.TWR+c.Tm.TRP)
	}
}

func TestWritesOccupyChannelDQ(t *testing.T) {
	c := newTestChannel(t, 2, Conventional)
	c.IssueACT(Loc{Bank: 0, Row: 1}, 0)
	c.IssueACT(Loc{Bank: 1, Row: 1}, 0)
	w1, _ := c.IssueWR(Loc{Bank: 0, Row: 1}, 500)
	w2, _ := c.IssueWR(Loc{Bank: 1, Row: 1}, 500)
	if w2-w1 < c.Tm.TBL {
		t.Fatalf("writes to different banks overlapped on the DQ: gap %d", w2-w1)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	tm := DDR5Timing()
	if tm.TREFI != 0 || tm.TRFC != 0 {
		t.Fatal("refresh should be opt-in")
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tm
	bad.TREFI = 100 // tRFC missing
	if err := bad.Validate(); err == nil {
		t.Fatal("tREFI without tRFC should fail validation")
	}
	bad = tm
	bad.TREFI, bad.TRFC = 100, 100
	if err := bad.Validate(); err == nil {
		t.Fatal("tRFC >= tREFI should fail validation")
	}
}

func TestRefreshBlocksWindow(t *testing.T) {
	tm := DDR5Timing().WithRefresh()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := NewChannel(DDR5(2), tm, Conventional)
	if err != nil {
		t.Fatal(err)
	}
	// A command landing inside a refresh window is pushed past it.
	inWindow := tm.TREFI + tm.TRFC/2
	act := c.EarliestACT(Loc{Row: 1}, inWindow)
	if act < tm.TREFI+tm.TRFC {
		t.Fatalf("ACT at %d inside refresh window [%d,%d)", act, tm.TREFI, tm.TREFI+tm.TRFC)
	}
	// A command just after the window is not delayed further.
	after := tm.TREFI + tm.TRFC + 1
	act2 := c.EarliestACT(Loc{Row: 1}, after)
	if act2 != after {
		t.Fatalf("ACT after refresh delayed: %d, want %d", act2, after)
	}
}

func TestRefreshStealsBandwidth(t *testing.T) {
	// The same long stream of row-hit reads must take ~tRFC/tREFI longer
	// with refresh enabled.
	run := func(tm Timing) sim.Cycle {
		c, err := NewChannel(DDR5(2), tm, NMPTwoStage)
		if err != nil {
			t.Fatal(err)
		}
		l := Loc{Row: 0}
		c.IssueACT(l, 0)
		var last sim.Cycle
		for i := 0; i < 4000; i++ {
			_, last = c.IssueRD(l, ToBankPE, 0)
		}
		return last
	}
	plain := run(DDR5Timing())
	refreshed := run(DDR5Timing().WithRefresh())
	if refreshed <= plain {
		t.Fatalf("refresh did not cost anything: %d vs %d", refreshed, plain)
	}
	overhead := float64(refreshed-plain) / float64(plain)
	if overhead > 0.25 {
		t.Fatalf("refresh overhead %.2f implausibly high", overhead)
	}
}
