// Package core implements ReCross, the paper's primary contribution (§4): a
// cross-level NMP architecture offering rank-, bank-group- and
// subarray-parallel bank-level processing in one DIMM-based memory system,
// fed by the bandwidth-aware partitioner of internal/partition. The memory
// space is split into the R-, G- and B-regions of §4.1; each embedding
// table is spread across them according to its profiled access
// distribution, so the small hot head enjoys subarray-level parallelism
// while the cold tail rests in capacity-optimized rank-level memory.
package core

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/coldstore"
	"recross/internal/dram"
	"recross/internal/energy"
	"recross/internal/kernels"
	"recross/internal/memctrl"
	"recross/internal/nmp"
	"recross/internal/partition"
	"recross/internal/sim"
	"recross/internal/trace"
)

// Config describes a ReCross instance. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	Spec   trace.ModelSpec
	Ranks  int
	Tm     dram.Timing
	Energy energy.Params

	// NMPBankGroups is the number of bank groups per rank with a
	// bank-group-level PE (default 4 of 8; §5.4's first config knob).
	NMPBankGroups int
	// BankPEs is the number of banks per rank with a bank-level PE,
	// distributed one-per-NMP-bank-group first (default 4, i.e. one per
	// NMP bank group).
	BankPEs int

	// Optimization toggles — the Fig. 12 ablation switches.
	SAP bool // subarray-level parallelism in B-region banks
	BWP bool // LP bandwidth-aware partitioning (false => crude greedy)
	LAS bool // locality-aware scheduling (false => plain FR-FCFS)

	// Batch is the batch size the partitioner optimizes for.
	Batch int
	// ProfileSamples is the length of the offline profiling pass.
	ProfileSamples int
	// Seed seeds the profiling generator.
	Seed int64
	// Profile, when non-nil, supplies a precomputed profile for Spec and
	// skips the internal profiling pass — the experiment harness shares
	// one profile across many configurations.
	Profile *partition.Profile
	// Subarrays overrides the per-bank subarray count (0 = the geometry
	// default of 256); bank capacity is preserved. Used by the SALP
	// sensitivity study.
	Subarrays int
	// Geo overrides the channel geometry (nil = dram.DDR5(Ranks)); pair a
	// DDR4 geometry with dram.DDR4Timing() in Tm.
	Geo *dram.Geometry
	// RefScheduler selects the O(banks)-scan memctrl.Reference scheduler
	// over a fresh channel per run — the pre-fast-path behavior, kept for
	// benchmarking the arbiter end to end. Results are bit-identical (the
	// memctrl differential fuzzer enforces it).
	RefScheduler bool
	// ColdTier, when non-nil, adds a fourth flash-backed placement region
	// behind the DRAM tree (RegionCold). The partitioner prices it with
	// the tier's timing model, and when ResidentBudgetBytes is set the
	// DRAM regions' capacities are clamped to the budget so the table
	// tail overflows onto flash instead of failing to fit.
	ColdTier *coldstore.TierSpec
	// Precision is the DRAM regions' row storage format. Quantized rows
	// shrink each gather's bus occupancy to the encoded burst count and
	// multiply region capacity by the same ratio; partial sums climbing
	// the PE tree and results returned to the host stay fp32. The zero
	// value is FP32 (the pre-quantization model, bit-identical).
	Precision kernels.Precision
	// ColdPrecision is the flash tier's page row format: it packs more
	// rows per device page (raising effective gather bandwidth) and
	// multiplies the tier's capacity by the codec ratio.
	ColdPrecision kernels.Precision
}

// DefaultConfig returns the paper's ReCross-d: 1 rank PE, 4 bank-group PEs
// and 4 bank PEs per rank (R:G:B capacity 16:12:4), all optimizations on.
func DefaultConfig(spec trace.ModelSpec) Config {
	return Config{
		Spec:           spec,
		Ranks:          2,
		Tm:             dram.DDR5Timing(),
		Energy:         energy.Default(),
		NMPBankGroups:  4,
		BankPEs:        4,
		SAP:            true,
		BWP:            true,
		LAS:            true,
		Batch:          32,
		ProfileSamples: 2000,
		Seed:           12345,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	geo := dram.DDR5(c.Ranks)
	if c.Geo != nil {
		geo = *c.Geo
		geo.Ranks = c.Ranks
		if err := geo.Validate(); err != nil {
			return err
		}
	}
	switch {
	case c.Ranks <= 0:
		return fmt.Errorf("core: ranks must be positive, got %d", c.Ranks)
	case c.NMPBankGroups < 0 || c.NMPBankGroups > geo.BankGroups:
		return fmt.Errorf("core: NMP bank groups %d out of [0,%d]", c.NMPBankGroups, geo.BankGroups)
	case c.BankPEs < 0 || c.BankPEs > c.NMPBankGroups*geo.Banks:
		return fmt.Errorf("core: %d bank PEs exceed the %d banks of the NMP bank groups",
			c.BankPEs, c.NMPBankGroups*geo.Banks)
	case c.NMPBankGroups == 0 && c.BankPEs > 0:
		return fmt.Errorf("core: bank PEs require NMP bank groups")
	case c.Batch <= 0:
		return fmt.Errorf("core: batch must be positive, got %d", c.Batch)
	case c.ProfileSamples <= 0:
		return fmt.Errorf("core: profile samples must be positive, got %d", c.ProfileSamples)
	case c.Subarrays < 0 || (c.Subarrays > 0 && geo.RowsPerBank()%c.Subarrays != 0):
		return fmt.Errorf("core: subarray count %d must divide the %d rows per bank",
			c.Subarrays, geo.RowsPerBank())
	case c.ColdTier != nil && c.ColdTier.CapBytes <= 0:
		return fmt.Errorf("core: cold tier needs positive capacity, got %d", c.ColdTier.CapBytes)
	case c.ColdTier != nil && c.ColdTier.ResidentBudgetBytes < 0:
		return fmt.Errorf("core: negative resident budget %d", c.ColdTier.ResidentBudgetBytes)
	case c.Precision > kernels.INT8:
		return fmt.Errorf("core: unknown precision %v", c.Precision)
	case c.ColdPrecision > kernels.INT8:
		return fmt.Errorf("core: unknown cold precision %v", c.ColdPrecision)
	}
	return c.Spec.Validate()
}

// Region indices within a ReCross placement, ordered coarse to fine.
// RegionCold exists only when Config.ColdTier is set; it has no banks in
// the DRAM tree — its gathers route to the flash timing model instead.
const (
	RegionR    = 0
	RegionG    = 1
	RegionB    = 2
	RegionCold = 3
)

// ReCross is a configured instance: profile, partitioning decision,
// placement and region bank sets, ready to run batches.
type ReCross struct {
	cfg  Config
	geo  dram.Geometry
	prof *partition.Profile
	dec  *partition.Decision
	pl   *partition.Placement
	// regionBanks[j] lists the flat banks of region j.
	regionBanks [3][]int
	// bursts is a gather's bus occupancy: the encoded row's burst count
	// under cfg.Precision. psumBursts is an fp32 vector's burst count —
	// partial sums and host results are always full precision.
	bursts     int
	psumBursts int
	vecLen     int
	consumers  [3]dram.Consumer
	// coldSim is the flash tier's per-replica timing model (nil without a
	// cold tier); like the channel sim it is owned by the Run goroutine.
	coldSim *coldstore.Sim

	// Run scratch, reused across batches under the single-goroutine
	// System contract: the channel+scheduler pair (reset in place per
	// run), the op deduplicator, and the request/accumulator buffers.
	// Steady-state Run allocates only the returned RunStats.
	chsim *arch.ChannelSim
	dedup arch.Deduper
	scr   runScratch
}

// runScratch holds Run's and RunTraining's reusable buffers.
type runScratch struct {
	reqs           []memctrl.Request
	coldSlots      []int64
	rankLoad       []int64
	bgLoad         []int64
	bankLoad       []int64
	touchedBank    []bool
	touchedBG      []bool
	bankPsumBursts []int64
	bgPsumBursts   []int64
	gatingBusy     []int64
	dqBusy         []int64
	touchedRows    map[trainKey]bool
}

// trainKey identifies one touched embedding row in RunTraining.
type trainKey struct {
	table int
	row   int64
}

// resetI64 returns s resized to n and zeroed, growing its backing array
// only when needed.
func resetI64(s *[]int64, n int) []int64 {
	if cap(*s) < n {
		*s = make([]int64, n)
	}
	v := (*s)[:n]
	for i := range v {
		v[i] = 0
	}
	return v
}

func resetBool(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	}
	v := (*s)[:n]
	for i := range v {
		v[i] = false
	}
	return v
}

// New profiles the workload, solves the partitioning, and builds the
// placement.
func New(cfg Config) (*ReCross, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := dram.DDR5(cfg.Ranks)
	if cfg.Geo != nil {
		geo = *cfg.Geo
		geo.Ranks = cfg.Ranks
	}
	if cfg.Subarrays > 0 {
		geo.RowsPerSubarray = geo.RowsPerBank() / cfg.Subarrays
		geo.Subarrays = cfg.Subarrays
	}
	vecLen := cfg.Spec.Tables[0].VecLen
	r := &ReCross{
		cfg:        cfg,
		geo:        geo,
		vecLen:     vecLen,
		bursts:     arch.BurstsBytes(geo, cfg.Precision.RowBytes(vecLen)),
		psumBursts: arch.Bursts(geo, vecLen),
		consumers:  [3]dram.Consumer{dram.ToRankPE, dram.ToBankGroupPE, dram.ToBankPE},
	}
	r.assignBanks()
	if cfg.ColdTier != nil {
		r.coldSim = coldstore.NewSim(*cfg.ColdTier, cfg.ColdPrecision.RowBytes(vecLen))
	}

	prof := cfg.Profile
	if prof == nil {
		var err error
		prof, err = partition.NewProfile(cfg.Spec, cfg.Seed, cfg.ProfileSamples)
		if err != nil {
			return nil, err
		}
	}
	r.prof = prof
	var err error

	regions := r.Regions()
	if cfg.BWP {
		r.dec, err = partition.SolveLP(prof, regions, cfg.Batch)
	} else {
		r.dec, err = partition.Greedy(prof, regions, cfg.Batch)
	}
	if err != nil {
		return nil, err
	}
	r.pl, err = partition.Build(prof, r.dec)
	if err != nil {
		return nil, err
	}
	// The channel spec is fixed for the instance's lifetime (Adopt swaps
	// the placement, not the bank regions), so one reusable channel+
	// scheduler pair serves every run.
	r.chsim, err = arch.NewChannelSim(r.chanSpec())
	if err != nil {
		return nil, err
	}
	return r, nil
}

// chanSpec builds the instance's channel configuration.
func (r *ReCross) chanSpec() arch.ChannelSpec {
	policy := memctrl.FRFCFS
	if r.cfg.LAS {
		policy = memctrl.LAS
	}
	var salpBanks []int
	if r.cfg.SAP {
		salpBanks = r.regionBanks[RegionB]
	}
	return arch.ChannelSpec{
		Geo: r.geo, Tm: r.cfg.Tm, Mode: dram.NMPTwoStage,
		Policy: policy, SALPBanks: salpBanks,
		OpWindow:  arch.NMPOpWindow,
		Reference: r.cfg.RefScheduler,
	}
}

// runChannel drains one run's requests: through the retained ChannelSim
// normally, or through a fresh channel + Reference scheduler when the
// RefScheduler benchmark knob is set (the pre-fast-path cost model).
func (r *ReCross) runChannel(reqs []memctrl.Request, resultBursts int) (sim.Cycle, dram.Stats, memctrl.Result, error) {
	if r.cfg.RefScheduler {
		return arch.RunChannel(r.chanSpec(), reqs, resultBursts)
	}
	return r.chsim.Run(reqs, resultBursts)
}

// assignBanks carves the channel into the R-, G- and B-region bank sets:
// within each rank, bank groups [0, NMPBankGroups) are NMP-featured; bank
// PEs are spread round-robin across the NMP groups' banks.
func (r *ReCross) assignBanks() {
	geo := r.geo
	bankPEPerBG := make([]int, r.cfg.NMPBankGroups)
	for i := 0; i < r.cfg.BankPEs; i++ {
		bankPEPerBG[i%r.cfg.NMPBankGroups]++
	}
	for rank := 0; rank < geo.Ranks; rank++ {
		for bg := 0; bg < geo.BankGroups; bg++ {
			for bank := 0; bank < geo.Banks; bank++ {
				fb := geo.FlatBank(dram.Loc{Rank: rank, BG: bg, Bank: bank})
				switch {
				case bg >= r.cfg.NMPBankGroups:
					r.regionBanks[RegionR] = append(r.regionBanks[RegionR], fb)
				case bank < bankPEPerBG[bg]:
					r.regionBanks[RegionB] = append(r.regionBanks[RegionB], fb)
				default:
					r.regionBanks[RegionG] = append(r.regionBanks[RegionG], fb)
				}
			}
		}
	}
}

// Regions returns the three partition regions with capacity and estimated
// internal bandwidth (bytes per cycle), ordered R, G, B.
func (r *ReCross) Regions() []partition.Region {
	geo, tm := r.geo, r.cfg.Tm
	bb := float64(geo.BurstBytes)
	B := float64(r.bursts)
	vecBytes := B * bb

	// Effective per-node vector cadence, assuming mostly row misses for R
	// and G (cold/warm data) and row-buffer reuse with subarray handover
	// for the SALP B-region (hot data).
	missVec := float64(tm.TRC) // one tRC per vector on a conventional bank
	if t := B * float64(tm.TCCDL); t > missVec {
		missVec = t
	}
	salpVec := (B-1)*float64(tm.TCCDL) + float64(tm.TRA)
	if !r.cfg.SAP {
		salpVec = missVec
	}

	mk := func(banks []int, perNodeBW float64, nodes int) float64 {
		if len(banks) == 0 || nodes == 0 {
			return 0
		}
		bankBound := float64(len(banks)) * vecBytes / missVec
		nodeBound := perNodeBW * float64(nodes)
		if bankBound < nodeBound {
			return bankBound
		}
		return nodeBound
	}

	// R: one PE per rank, serialized on the chip DQ at tCCD_S.
	rBW := mk(r.regionBanks[RegionR], bb/float64(tm.TCCDS), geo.Ranks)
	// G: one PE per NMP bank group, local gating at tCCD_L.
	gBW := mk(r.regionBanks[RegionG], bb/float64(tm.TCCDL), r.cfg.NMPBankGroups*geo.Ranks)
	// B: one PE per SALP bank at the subarray-parallel vector cadence.
	var bBW float64
	if n := len(r.regionBanks[RegionB]); n > 0 {
		bBW = float64(n) * vecBytes / salpVec
	}

	// Fixed per-batch psum-collection time on each region's shared bus
	// (§3.3): every op flushes one partial sum from each touched
	// lower-level PE. Bank-group psums cross the chip DQ (the R-region's
	// resource), bank psums cross their group's gating (the G-region's).
	var fixedR, fixedG float64
	for _, t := range r.cfg.Spec.Tables {
		opsPerBatch := t.Prob * float64(r.cfg.Batch)
		bgPsums := float64(minInt(r.cfg.NMPBankGroups*geo.Ranks, t.Pooling))
		bankPsums := float64(minInt(r.cfg.BankPEs*geo.Ranks, t.Pooling))
		fixedR += opsPerBatch * bgPsums * B * float64(tm.TCCDS) / float64(geo.Ranks)
		if r.cfg.NMPBankGroups > 0 {
			fixedG += opsPerBatch * bankPsums * B * float64(tm.TCCDL) /
				float64(r.cfg.NMPBankGroups*geo.Ranks)
		}
	}

	capOf := func(banks []int) int64 { return int64(len(banks)) * geo.BankBytes() }
	// Quantized DRAM rows shrink each gather to the encoded burst count:
	// the regions hold proportionally more vectors and move proportionally
	// fewer bytes per access. The ratio is in burst counts (what the bus
	// actually issues), so fp32 stays exactly 1.
	comp := float64(r.psumBursts) / float64(r.bursts)
	regions := []partition.Region{
		{Name: "R", Level: nmp.LevelRank, CapBytes: capOf(r.regionBanks[RegionR]), BW: rBW, FixedCycles: fixedR, Compression: comp},
		{Name: "G", Level: nmp.LevelBankGroup, CapBytes: capOf(r.regionBanks[RegionG]), BW: gBW, FixedCycles: fixedG, Compression: comp},
		{Name: "B", Level: nmp.LevelBank, CapBytes: capOf(r.regionBanks[RegionB]), BW: bBW, Compression: comp},
	}
	if r.cfg.ColdTier == nil {
		return regions
	}
	// Fourth tier: clamp DRAM to the resident budget (proportionally, so
	// the R:G:B shape survives), then append the flash region priced by
	// the cold timing model. It is last on purpose — the placement's fill
	// order sends only a segment's coldest slice there.
	spec := r.cfg.ColdTier.WithDefaults()
	if budget := spec.ResidentBudgetBytes; budget > 0 {
		var total int64
		for _, reg := range regions {
			total += reg.CapBytes
		}
		if total > budget {
			f := float64(budget) / float64(total)
			for j := range regions {
				regions[j].CapBytes = int64(f * float64(regions[j].CapBytes))
			}
		}
	}
	// The cold tier packs encoded rows into device pages with no burst
	// rounding, so its ratio is the codec's exact byte ratio.
	coldRowBytes := r.cfg.ColdPrecision.RowBytes(r.vecLen)
	return append(regions, partition.Region{
		Name:        "C",
		Level:       nmp.LevelCold,
		CapBytes:    spec.CapBytes,
		BW:          spec.Model.EffectiveBW(coldRowBytes, spec.InStorageReduce),
		Compression: r.cfg.ColdPrecision.Ratio(r.vecLen),
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Decision exposes the partitioning decision (for the experiment harness).
func (r *ReCross) Decision() *partition.Decision { return r.dec }

// Placement exposes the row placement.
func (r *ReCross) Placement() *partition.Placement { return r.pl }

// Profile exposes the offline profile.
func (r *ReCross) Profile() *partition.Profile { return r.prof }

// Geometry returns the channel geometry.
func (r *ReCross) Geometry() dram.Geometry { return r.geo }

// Name implements arch.System.
func (r *ReCross) Name() string { return "recross" }

// PEBreakdown returns (rank PEs, bank-group PEs, bank PEs, SALP banks) for
// the area model.
func (r *ReCross) PEBreakdown() (rank, bg, bank, salp int) {
	salpBanks := 0
	if r.cfg.SAP {
		salpBanks = r.cfg.BankPEs
	}
	return 1, r.cfg.NMPBankGroups, r.cfg.BankPEs, salpBanks
}

// Run implements arch.System: one batch through the timing model.
func (r *ReCross) Run(b trace.Batch) (*arch.RunStats, error) {
	geo := r.geo
	scr := &r.scr
	reqs := scr.reqs[:0]
	var lookups, ops, dramOps int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.NMPTwoStage, r.bursts)

	// Per-PE-node load accumulators for the imbalance metric: rank PEs,
	// then BG PEs, then bank PEs.
	rankLoad := resetI64(&scr.rankLoad, geo.Ranks)
	bgLoad := resetI64(&scr.bgLoad, geo.Ranks*geo.BankGroups)
	bankLoad := resetI64(&scr.bankLoad, geo.TotalBanks())

	// Per-op touched PEs, for the partial-sum collection cost (§3.3).
	var bankPsums, bgPsums int64
	touchedBank := resetBool(&scr.touchedBank, geo.TotalBanks())
	touchedBG := resetBool(&scr.touchedBG, geo.Ranks*geo.BankGroups)
	bankPsumBursts := resetI64(&scr.bankPsumBursts, geo.Ranks*geo.BankGroups) // per gating
	bgPsumBursts := resetI64(&scr.bgPsumBursts, geo.Ranks)                    // per chip DQ

	// Cold-tier gathers bypass the DRAM channel entirely: their placement
	// slots collect here and are priced by the flash Sim after the drain.
	coldSlots := scr.coldSlots[:0]
	var coldOps int64

	for _, s := range b {
		for _, op := range s {
			op = r.dedup.Dedup(op)
			for i := range touchedBank {
				touchedBank[i] = false
			}
			for i := range touchedBG {
				touchedBG[i] = false
			}
			opCold, opDRAM := false, false
			for _, idx := range op.Indices {
				lookups++
				region, slot := r.pl.Locate(op.Table, idx)
				if region == RegionCold {
					if r.coldSim == nil {
						return nil, fmt.Errorf("core: cold placement without a cold tier")
					}
					coldSlots = append(coldSlots, slot)
					opCold = true
					continue
				}
				opDRAM = true
				loc, err := arch.Stripe(geo, r.regionBanks[region], slot, r.bursts)
				if err != nil {
					return nil, fmt.Errorf("core: region %d: %w", region, err)
				}
				switch region {
				case RegionR:
					rankLoad[loc.Rank] += int64(r.bursts)
				case RegionG:
					bgLoad[geo.FlatBG(loc)] += int64(r.bursts)
					touchedBG[geo.FlatBG(loc)] = true
				default:
					bankLoad[geo.FlatBank(loc)] += int64(r.bursts)
					touchedBank[geo.FlatBank(loc)] = true
					touchedBG[geo.FlatBG(loc)] = true
				}
				reqs = append(reqs, memctrl.Request{
					Loc: loc, Cols: r.bursts,
					Consumer: r.consumers[region],
					Arrival:  sim.Cycle(seq) * instr, Op: opID,
				})
				seq++
			}
			for fb, v := range touchedBank {
				if v {
					bankPsums++
					// Partial sums are fp32 regardless of storage precision.
					bankPsumBursts[fb/geo.Banks] += int64(r.psumBursts)
				}
			}
			for fbg, v := range touchedBG {
				if v {
					bgPsums++
					bgPsumBursts[fbg/geo.BankGroups] += int64(r.psumBursts)
				}
			}
			if opCold {
				coldOps++
			}
			if opDRAM {
				dramOps++
			}
			ops++
			opID++
		}
	}
	scr.reqs = reqs
	scr.coldSlots = coldSlots

	// The rank summarizer returns one vector per op to the host — only for
	// ops that touched DRAM at all; fully-cold ops return over the flash
	// link, which the cold Sim prices.
	finish, st, res, err := r.runChannel(reqs, int(dramOps)*r.psumBursts)
	if err != nil {
		return nil, err
	}
	// Partial sums climb the tree: B-region bank PEs through their bank
	// group's gating (shared with G-region gathers), NMP bank-group PEs
	// over the chip DQ (shared with R-region gathers) to the rank PE.
	// With only 1+4+4 PEs per rank this traffic is small — the §3.3
	// advantage of reducing data promptly at every level.
	gatingBusy := resetI64(&scr.gatingBusy, geo.Ranks*geo.BankGroups)
	for fbg := range gatingBusy {
		gatingBusy[fbg] = bgLoad[fbg] + bankPsumBursts[fbg]
	}
	dqBusy := resetI64(&scr.dqBusy, geo.Ranks)
	for rank := range dqBusy {
		dqBusy[rank] = rankLoad[rank] + bgPsumBursts[rank]
	}
	finish = arch.PsumFloor(r.cfg.Tm, finish, gatingBusy, dqBusy)

	// The flash phase overlaps the DRAM phase (cold reads issue with the
	// batch and partial sums merge host-side), so the batch finishes at
	// the slower of the two.
	var coldCycles sim.Cycle
	var coldReads, coldHits int64
	if len(coldSlots) > 0 {
		coldCycles, coldReads, coldHits = r.coldSim.Batch(coldSlots, int(coldOps))
		if coldCycles > finish {
			finish = coldCycles
		}
	}

	// Imbalance across all PEs, each node's load expressed as busy cycles
	// at its own data cadence.
	var nodeLoads []int64
	tm := r.cfg.Tm
	for _, l := range rankLoad {
		nodeLoads = append(nodeLoads, l*int64(tm.TCCDS))
	}
	for bgi, l := range bgLoad {
		if l > 0 || r.isNMPBG(bgi) {
			nodeLoads = append(nodeLoads, l*int64(tm.TCCDL))
		}
	}
	for _, fb := range r.regionBanks[RegionB] {
		nodeLoads = append(nodeLoads, bankLoad[fb]*int64(tm.TCCDL))
	}

	psums := ops * int64(geo.Ranks*(1+r.cfg.NMPBankGroups+r.cfg.BankPEs))
	ops2 := arch.ReduceOps(lookups, psums, r.vecLen)
	p50, p99 := arch.OpPercentiles(res)
	return &arch.RunStats{
		OpP50:         p50,
		OpP99:         p99,
		Cycles:        finish,
		DRAM:          st,
		Ops:           ops2,
		RowHits:       res.RowHits,
		RowMisses:     res.RowMisses,
		Lookups:       lookups,
		NodeLoads:     nodeLoads,
		Imbalance:     arch.LoadsToImbalance(nodeLoads),
		Energy:        energy.Account(r.cfg.Energy, st, ops2, finish, geo.Ranks, geo.BurstBytes),
		ColdLookups:   int64(len(coldSlots)),
		ColdPageReads: coldReads,
		ColdPageHits:  coldHits,
		ColdCycles:    coldCycles,
	}, nil
}

func (r *ReCross) isNMPBG(flatBG int) bool {
	return flatBG%r.geo.BankGroups < r.cfg.NMPBankGroups
}
