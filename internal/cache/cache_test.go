package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 64, 8); err == nil {
		t.Error("zero size should error")
	}
	if _, err := New(1<<20, 64, 0); err == nil {
		t.Error("zero ways should error")
	}
	if _, err := New(1000, 64, 8); err == nil {
		t.Error("non-divisible size should error")
	}
	if _, err := New(3*64*8, 64, 8); err == nil {
		t.Error("non-power-of-two sets should error")
	}
}

func TestHitAfterMiss(t *testing.T) {
	c, err := New(1<<12, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1010) {
		t.Fatal("same line different offset should hit")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", c.Hits(), c.Misses())
	}
	if r := c.HitRate(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit rate = %g, want 2/3", r)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with 1 set: capacity 2 lines.
	c, err := New(2*64, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(0 * 64) // touch line 0: line 1 is now LRU
	c.Access(2 * 64) // evicts line 1
	if !c.Contains(0 * 64) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(1 * 64) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(2 * 64) {
		t.Fatal("new line not resident")
	}
}

func TestContainsDoesNotTouch(t *testing.T) {
	c, _ := New(2*64, 64, 2)
	c.Access(0)
	c.Access(64)
	c.Contains(0) // must NOT refresh line 0
	hitsBefore := c.Hits()
	c.Access(128) // evict true LRU (line 0)
	if c.Contains(0) {
		t.Fatal("Contains refreshed LRU state")
	}
	if c.Hits() != hitsBefore {
		t.Fatal("Contains counted a hit")
	}
}

func TestWarmDoesNotCount(t *testing.T) {
	c, _ := New(1<<12, 64, 4)
	c.Warm(0x40)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("warm counted: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if !c.Access(0x40) {
		t.Fatal("warmed line should hit")
	}
	c.Warm(0x40) // warming a resident line is a no-op
	if c.Misses() != 0 {
		t.Fatal("re-warm counted a miss")
	}
}

func TestReset(t *testing.T) {
	c, _ := New(1<<12, 64, 4)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.Contains(0) {
		t.Fatal("reset did not clear state")
	}
	if c.HitRate() != 0 {
		t.Fatal("hit rate after reset should be 0")
	}
}

// Property: a working set that fits within one set's ways never misses
// after the first pass, regardless of access order.
func TestNoCapacityMissWithinWays(t *testing.T) {
	f := func(seed int64) bool {
		c, err := New(1<<14, 64, 8) // 32 sets, 8 ways
		if err != nil {
			return false
		}
		// 8 lines, all mapping to set 0 (stride = sets*line = 32*64).
		var lines [8]uint64
		for i := range lines {
			lines[i] = uint64(i) * 32 * 64
			c.Access(lines[i])
		}
		rng := rand.New(rand.NewSource(seed))
		missesBefore := c.Misses()
		for i := 0; i < 200; i++ {
			if !c.Access(lines[rng.Intn(8)]) {
				return false
			}
		}
		return c.Misses() == missesBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedWorkloadHitsHot(t *testing.T) {
	// A 64 KB cache over a 64 MB footprint with 90% of accesses to 100 hot
	// lines should show a high hit rate — the RecNMP hot-entry cache premise.
	c, _ := New(1<<16, 64, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		var addr uint64
		if rng.Float64() < 0.9 {
			addr = uint64(rng.Intn(100)) * 64
		} else {
			addr = uint64(rng.Intn(1<<20)) * 64
		}
		c.Access(addr)
	}
	if c.HitRate() < 0.8 {
		t.Fatalf("hit rate = %.3f, want > 0.8 on skewed workload", c.HitRate())
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, _ := New(32<<20, 64, 16)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63n(1 << 34))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}
