package adapt

import (
	"fmt"

	"recross/internal/partition"
)

// Detector compares the live access stream against the partition.Profile
// the current placement was solved for.
//
// The comparison is identity-aware: for each table it asks "how much of
// the live traffic still lands on rows the baseline ranked within the
// hottest fraction b?", for every segment boundary b the LP linearised
// over. Under stationary traffic this live coverage tracks the baseline's
// own CDF (up to sketch noise); after a hot-set permutation the live head
// is made of rows the baseline ranked cold, the coverage at small b
// collapses toward b itself, and the distance jumps. A plain CDF-vs-CDF
// comparison would miss that entirely — the cumulative curve is invariant
// under relabeling rows, but the placement is not.
//
// Per-table distance is the mean absolute gap (L1) over the interior
// boundaries; the aggregate score weights tables by their share of
// gathered traffic volume (Prob x Pooling), because drift on a table the
// batch barely touches cannot unbalance a region. KS (the max gap) is
// reported alongside for observability.
type Detector struct {
	threshold float64
	windows   int
	streak    int
	bounds    []float64 // interior segment boundaries
	all       []float64 // full boundaries, for SegShares
	tables    []tableBaseline
}

type tableBaseline struct {
	rows      int64
	weight    float64         // normalized traffic-volume share
	rank      map[int64]int64 // baseline frequency rank of observed keys
	cov       []float64       // baseline coverage at bounds
	baseShare []float64       // baseline access share per segment
}

// Drift is one window's comparison.
type Drift struct {
	// Score is the volume-weighted mean per-table L1 distance.
	Score float64
	// KS is the largest single-boundary gap across all tables.
	KS float64
	// PerTable holds each table's L1 distance.
	PerTable []float64
	// Fired reports whether this window completed the consecutive-window
	// requirement (set by Observe).
	Fired bool
}

// NewDetector builds a detector against baseline. threshold is the score
// that counts a window as drifted; windows is how many consecutive
// drifted windows fire the replanner (hysteresis against single-window
// noise).
func NewDetector(baseline *partition.Profile, threshold float64, windows int) (*Detector, error) {
	if baseline == nil || len(baseline.Spec.Tables) == 0 {
		return nil, fmt.Errorf("adapt: empty baseline profile")
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("adapt: threshold %g <= 0", threshold)
	}
	if windows < 1 {
		return nil, fmt.Errorf("adapt: windows %d < 1", windows)
	}
	all := partition.SegBounds()
	bounds := all[1 : len(all)-1] // 0 and 1 are trivially equal on both curves
	d := &Detector{
		threshold: threshold,
		windows:   windows,
		bounds:    bounds,
		all:       all,
		tables:    make([]tableBaseline, len(baseline.Spec.Tables)),
	}
	var volSum float64
	for i, t := range baseline.Spec.Tables {
		vol := t.Prob * float64(t.Pooling)
		volSum += vol
		tb := tableBaseline{
			rows:      t.Rows,
			weight:    vol,
			cov:       make([]float64, len(bounds)),
			baseShare: make([]float64, len(all)-1),
		}
		for b, p := range bounds {
			tb.cov[b] = baseline.CDFs[i].At(p)
		}
		for s := 0; s < len(all)-1; s++ {
			tb.baseShare[s] = baseline.CDFs[i].At(all[s+1]) - baseline.CDFs[i].At(all[s])
		}
		hot := baseline.Hists[i].HotKeys(baseline.Hists[i].Distinct())
		tb.rank = make(map[int64]int64, len(hot))
		for r, key := range hot {
			tb.rank[key] = int64(r)
		}
		d.tables[i] = tb
	}
	for i := range d.tables {
		if volSum > 0 {
			d.tables[i].weight /= volSum
		}
	}
	return d, nil
}

// Score computes one window's drift from a tracker snapshot (one entry
// per table, in spec order). It does not advance the hysteresis streak;
// use Observe for the full step.
func (d *Detector) Score(snaps []TableSnapshot) (Drift, error) {
	if len(snaps) != len(d.tables) {
		return Drift{}, fmt.Errorf("adapt: snapshot covers %d tables, baseline has %d", len(snaps), len(d.tables))
	}
	dr := Drift{PerTable: make([]float64, len(d.tables))}
	for i, tb := range d.tables {
		sn := snaps[i]
		if sn.Total == 0 {
			continue // no live data on this table: no evidence of drift
		}
		// Mass of tracked live keys within each baseline-top fraction.
		tracked := int64(0)
		within := make([]float64, len(d.bounds))
		for k, key := range sn.Keys {
			tracked += sn.Counts[k]
			r, ok := tb.rank[key]
			if !ok {
				continue // baseline never saw it: outside every head fraction
			}
			for b, p := range d.bounds {
				if float64(r) < p*float64(tb.rows) {
					within[b] += float64(sn.Counts[k])
				}
			}
		}
		untracked := 1 - float64(tracked)/float64(sn.Total)
		var l1 float64
		for b, p := range d.bounds {
			// Untracked live mass is tail mass; credit it with the uniform
			// coverage p it would have under any ranking, which is exact
			// for a permutation-free tail and conservative otherwise.
			liveCov := within[b]/float64(sn.Total) + untracked*p
			gap := liveCov - tb.cov[b]
			if gap < 0 {
				gap = -gap
			}
			l1 += gap
			if gap > dr.KS {
				dr.KS = gap
			}
		}
		l1 /= float64(len(d.bounds))
		dr.PerTable[i] = l1
		dr.Score += tb.weight * l1
	}
	return dr, nil
}

// Observe scores one window and advances the hysteresis streak. Fired is
// set on the returned Drift when the score has exceeded the threshold for
// the configured number of consecutive windows; the streak then resets,
// so a persisting drift fires again only after another full run of
// windows (the replanner's own cooldown gates faster re-fires anyway).
func (d *Detector) Observe(snaps []TableSnapshot) (Drift, error) {
	dr, err := d.Score(snaps)
	if err != nil {
		return dr, err
	}
	if dr.Score > d.threshold {
		d.streak++
	} else {
		d.streak = 0
	}
	if d.streak >= d.windows {
		dr.Fired = true
		d.streak = 0
	}
	return dr, nil
}

// Threshold returns the configured per-window trigger score.
func (d *Detector) Threshold() float64 { return d.threshold }

// SegShares measures, per table, the fraction of live accesses landing in
// each of the baseline ranking's LP segments — the shares input of
// partition.EstimateShares, used to price the incumbent decision under
// live traffic. A tracked live key with baseline rank r contributes its
// count to the segment whose rank range contains r. Live mass with no
// baseline rank (untracked tail, or keys the baseline never observed) is
// cold under the incumbent placement; it is spread across the segments
// covering the baseline-unobserved rank range, proportional to row count.
func (d *Detector) SegShares(snaps []TableSnapshot) ([][]float64, error) {
	if len(snaps) != len(d.tables) {
		return nil, fmt.Errorf("adapt: snapshot covers %d tables, baseline has %d", len(snaps), len(d.tables))
	}
	nseg := len(d.all) - 1
	out := make([][]float64, len(d.tables))
	for i, tb := range d.tables {
		sn := snaps[i]
		shares := make([]float64, nseg)
		out[i] = shares
		if sn.Total == 0 {
			// No live data: the baseline's own shares are the best guess.
			copy(shares, tb.baseShare)
			continue
		}
		rows := float64(tb.rows)
		var ranked int64
		for k, key := range sn.Keys {
			r, ok := tb.rank[key]
			if !ok {
				continue
			}
			ranked += sn.Counts[k]
			for s := 0; s < nseg; s++ {
				if float64(r) < d.all[s+1]*rows || s == nseg-1 {
					shares[s] += float64(sn.Counts[k])
					break
				}
			}
		}
		// Cold mass spreads over the rank range the baseline never observed.
		cold := float64(sn.Total - ranked)
		if cold > 0 {
			lo := float64(len(tb.rank)) // first baseline-unobserved rank
			span := rows - lo
			for s := 0; s < nseg; s++ {
				sLo, sHi := d.all[s]*rows, d.all[s+1]*rows
				var overlap float64
				if span > 0 {
					if sLo < lo {
						sLo = lo
					}
					if sHi > sLo {
						overlap = (sHi - sLo) / span
					}
				} else {
					overlap = (d.all[s+1] - d.all[s]) // fully observed: uniform
				}
				shares[s] += cold * overlap
			}
		}
		for s := range shares {
			shares[s] /= float64(sn.Total)
		}
	}
	return out, nil
}
