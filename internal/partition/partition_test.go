package partition

import (
	"math"
	"testing"

	"recross/internal/nmp"
	"recross/internal/trace"
)

// testRegions returns an R/G/B region triple sized to hold spec with the
// paper's default 16:12:4 capacity ratio and bandwidths growing toward B.
func testRegions(total int64) []Region {
	scaled := total * 3 / 2 // headroom
	return []Region{
		{Name: "R", Level: nmp.LevelRank, CapBytes: scaled * 16 / 32, BW: 8},
		{Name: "G", Level: nmp.LevelBankGroup, CapBytes: scaled * 12 / 32, BW: 40},
		{Name: "B", Level: nmp.LevelBank, CapBytes: scaled * 4 / 32, BW: 120},
	}
}

func smallProfile(t *testing.T) *Profile {
	t.Helper()
	spec := trace.ModelSpec{Name: "t", Tables: []trace.TableSpec{
		{Name: "hot", Rows: 50000, VecLen: 16, Pooling: 8, Prob: 1, Skew: 1.2},
		{Name: "mild", Rows: 20000, VecLen: 16, Pooling: 8, Prob: 1, Skew: 0.6},
		{Name: "flat", Rows: 10000, VecLen: 16, Pooling: 8, Prob: 1, Skew: 0},
	}}
	p, err := NewProfile(spec, 7, 800)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileCapturesSkew(t *testing.T) {
	p := smallProfile(t)
	hotCov := p.CDFs[0].At(0.01)
	flatCov := p.CDFs[2].At(0.01)
	if hotCov <= flatCov {
		t.Fatalf("skewed table head coverage %.3f <= flat %.3f", hotCov, flatCov)
	}
	if hotCov < 0.3 {
		t.Fatalf("skew-1.2 head coverage %.3f, want > 0.3", hotCov)
	}
}

func TestSegmentsCoverTableExactly(t *testing.T) {
	p := smallProfile(t)
	for i, tab := range p.Spec.Tables {
		segs := p.segmentsOf(i)
		var rows, share float64
		for _, s := range segs {
			rows += s.rows
			share += s.accessShare
		}
		if math.Abs(rows-float64(tab.Rows)) > 1 {
			t.Fatalf("table %d: segment rows %.1f != %d", i, rows, tab.Rows)
		}
		if math.Abs(share-1) > 1e-6 {
			t.Fatalf("table %d: access shares sum to %g", i, share)
		}
	}
}

func TestSolveLPProducesValidDecision(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, err := SolveLP(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, p, d)
	if d.T <= 0 {
		t.Fatal("LP estimate T should be positive")
	}
}

func TestLPBeatsGreedyOnEstimate(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	lpDec, err := SolveLP(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	if lpDec.T > gr.T+1e-9 {
		t.Fatalf("LP estimate %.2f worse than greedy %.2f", lpDec.T, gr.T)
	}
}

// TestParitySweepLPvsGreedy sweeps profiling seeds × batch sizes ×
// workload skews and asserts, at every point, that (a) both partitioners
// produce valid placements — segment and row fractions sum to 1,
// capacities respected — and (b) the crude partitioner never beats the
// LP on its own objective, the estimated latency bound T. The LP's
// optimality must not depend on a particular profile draw.
func TestParitySweepLPvsGreedy(t *testing.T) {
	seeds := []int64{1, 7, 29, 101}
	batches := []int{8, 32, 128}
	skews := [][2]float64{{1.2, 0.6}, {0.9, 0.9}, {1.4, 0.2}}
	for _, seed := range seeds {
		for _, sk := range skews {
			spec := trace.ModelSpec{Name: "parity", Tables: []trace.TableSpec{
				{Name: "a", Rows: 40000, VecLen: 16, Pooling: 8, Prob: 1, Skew: sk[0]},
				{Name: "b", Rows: 15000, VecLen: 16, Pooling: 4, Prob: 1, Skew: sk[1]},
			}}
			p, err := NewProfile(spec, seed, 600)
			if err != nil {
				t.Fatal(err)
			}
			regions := testRegions(spec.TotalBytes())
			for _, batch := range batches {
				lpDec, err := SolveLP(p, regions, batch)
				if err != nil {
					t.Fatalf("seed %d skew %v batch %d: LP: %v", seed, sk, batch, err)
				}
				gr, err := Greedy(p, regions, batch)
				if err != nil {
					t.Fatalf("seed %d skew %v batch %d: greedy: %v", seed, sk, batch, err)
				}
				checkDecision(t, p, lpDec)
				checkDecision(t, p, gr)
				if lpDec.T > gr.T*(1+1e-9) {
					t.Fatalf("seed %d skew %v batch %d: LP T %.2f beaten by greedy %.2f",
						seed, sk, batch, lpDec.T, gr.T)
				}
			}
		}
	}
}

func TestLPBalancesLoadAcrossRegions(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, err := SolveLP(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	// With ample capacity, at least two regions should carry meaningful
	// load (the whole point of cross-level NMP), and per-region times
	// should be within a modest factor of each other.
	times := make([]float64, 0, 3)
	for j, l := range d.Load {
		if regions[j].BW > 0 && l > 0 {
			times = append(times, l/regions[j].BW)
		}
	}
	if len(times) < 2 {
		t.Fatalf("LP used %d regions, want >= 2 (loads %v)", len(times), d.Load)
	}
}

func TestGreedyFillsHotRegionFirst(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, err := Greedy(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, p, d)
	// Greedy pours into B until full: B should be at (near) capacity.
	var bBytes float64
	for i := range p.Spec.Tables {
		for s, sg := range p.segmentsOf(i) {
			bBytes += sg.bytes * d.SegFrac[i][s][2]
		}
	}
	if bBytes < float64(regions[2].CapBytes)*0.95 {
		t.Fatalf("greedy left B-region underfilled: %.0f of %d", bBytes, regions[2].CapBytes)
	}
}

func TestSingleRegion(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes() * 4)
	d, err := SingleRegion(p, regions, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, p, d)
	if d.Load[1] != 0 || d.Load[2] != 0 {
		t.Fatalf("single-region decision leaked load: %v", d.Load)
	}
	if _, err := SingleRegion(p, regions, 9, 32); err == nil {
		t.Fatal("out-of-range region should error")
	}
}

func TestCapacityInfeasibility(t *testing.T) {
	p := smallProfile(t)
	tiny := []Region{{Name: "R", CapBytes: 100, BW: 1}}
	if _, err := SolveLP(p, tiny, 32); err == nil {
		t.Fatal("undersized regions should error")
	}
	if _, err := Greedy(p, tiny, 32); err == nil {
		t.Fatal("greedy with undersized regions should error")
	}
}

func TestValidateInputs(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	if _, err := SolveLP(nil, regions, 32); err == nil {
		t.Error("nil profile should error")
	}
	if _, err := SolveLP(p, nil, 32); err == nil {
		t.Error("no regions should error")
	}
	if _, err := SolveLP(p, regions, 0); err == nil {
		t.Error("zero batch should error")
	}
	bad := testRegions(p.Spec.TotalBytes())
	bad[0].BW = -1
	if _, err := SolveLP(p, bad, 32); err == nil {
		t.Error("negative bandwidth should error")
	}
}

// checkDecision verifies the structural invariants of any decision:
// segment fractions sum to 1, row fractions sum to 1 per table, and
// capacity constraints hold.
func checkDecision(t *testing.T, p *Profile, d *Decision) {
	t.Helper()
	capUsed := make([]float64, len(d.Regions))
	for i := range p.Spec.Tables {
		rowSum := 0.0
		for j := range d.Regions {
			rowSum += d.RowFrac[i][j]
		}
		if math.Abs(rowSum-1) > 1e-6 {
			t.Fatalf("table %d row fractions sum to %g", i, rowSum)
		}
		for s, sg := range p.segmentsOf(i) {
			sum := 0.0
			for j := range d.Regions {
				f := d.SegFrac[i][s][j]
				if f < -1e-9 || f > 1+1e-9 {
					t.Fatalf("table %d seg %d region %d fraction %g out of [0,1]", i, s, j, f)
				}
				sum += f
				capUsed[j] += f * sg.bytes
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("table %d seg %d fractions sum to %g", i, s, sum)
			}
		}
	}
	for j, r := range d.Regions {
		if capUsed[j] > float64(r.CapBytes)*(1+1e-6) {
			t.Fatalf("region %s over capacity: %.0f > %d", r.Name, capUsed[j], r.CapBytes)
		}
	}
}

func TestPlacementLocateConsistency(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, err := SolveLP(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(p, d)
	if err != nil {
		t.Fatal(err)
	}
	// Locate is deterministic and in-range for every row (hot and cold).
	for ti, tab := range p.Spec.Tables {
		step := tab.Rows / 997
		if step == 0 {
			step = 1
		}
		for row := int64(0); row < tab.Rows; row += step {
			r1, s1 := pl.Locate(ti, row)
			r2, s2 := pl.Locate(ti, row)
			if r1 != r2 || s1 != s2 {
				t.Fatalf("Locate(%d,%d) nondeterministic", ti, row)
			}
			if r1 < 0 || r1 >= len(regions) {
				t.Fatalf("region %d out of range", r1)
			}
			if s1 < 0 || s1 >= regions[r1].CapBytes/pl.VecBytes() {
				t.Fatalf("slot %d exceeds region %d capacity", s1, r1)
			}
		}
	}
}

func TestPlacementHotRowsGoLow(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, err := SolveLP(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(p, d)
	if err != nil {
		t.Fatal(err)
	}
	// Weighted by access frequency, the average region level of the skewed
	// table's accesses should lean lower (toward B = index 2) than its
	// uniform share of rows would suggest.
	hist := p.Hists[0]
	var accWeighted, rowFracB float64
	var total int64
	for _, row := range hist.HotKeys(hist.Distinct()) {
		r, _ := pl.Locate(0, row)
		c := hist.Count(row)
		if r == 2 {
			accWeighted += float64(c)
		}
		total += c
	}
	accB := accWeighted / float64(total)
	rowFracB = d.RowFrac[0][2]
	if accB < rowFracB {
		t.Fatalf("B-region access share %.3f < row share %.3f: hot rows not prioritized", accB, rowFracB)
	}
}

func TestPlacementUniqueHotSlots(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, err := Greedy(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(p, d)
	if err != nil {
		t.Fatal(err)
	}
	// No two observed (hot) rows may share a physical slot.
	seen := map[[2]int64]bool{}
	for ti := range p.Spec.Tables {
		h := p.Hists[ti]
		for _, row := range h.HotKeys(h.Distinct()) {
			r, s := pl.Locate(ti, row)
			key := [2]int64{int64(r), s}
			if seen[key] {
				t.Fatalf("slot collision at region %d slot %d", r, s)
			}
			seen[key] = true
		}
	}
}

func TestPlacementMixedVecLenRejected(t *testing.T) {
	spec := trace.ModelSpec{Name: "m", Tables: []trace.TableSpec{
		{Name: "a", Rows: 100, VecLen: 16, Pooling: 2, Prob: 1, Skew: 1},
		{Name: "b", Rows: 100, VecLen: 32, Pooling: 2, Prob: 1, Skew: 1},
	}}
	p, err := NewProfile(spec, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	regions := testRegions(p.Spec.TotalBytes())
	d, err := Greedy(p, regions, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, d); err == nil {
		t.Fatal("mixed vector lengths should be rejected")
	}
}

func TestMappingBits(t *testing.T) {
	p := smallProfile(t)
	regions := testRegions(p.Spec.TotalBytes())
	d, _ := Greedy(p, regions, 32)
	pl, err := Build(p, d)
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, tab := range p.Spec.Tables {
		rows += tab.Rows
	}
	if pl.MappingBits() != rows*34 {
		t.Fatalf("mapping bits = %d, want %d", pl.MappingBits(), rows*34)
	}
	// The paper claims < 4% of model size; with 16-element (64 B) vectors
	// 34 bits is ~6.6%, with 128 B vectors it is under 4%. Sanity: ratio
	// is below 10% here.
	ratio := float64(pl.MappingBits()/8) / float64(p.Spec.TotalBytes())
	if ratio > 0.10 {
		t.Fatalf("mapping overhead ratio %.3f implausibly high", ratio)
	}
}

func TestCriteoScaleLPSolvable(t *testing.T) {
	if testing.Short() {
		t.Skip("criteo-scale LP in short mode")
	}
	spec := trace.CriteoKaggle(64, 80)
	p, err := NewProfile(spec, 3, 300)
	if err != nil {
		t.Fatal(err)
	}
	regions := testRegions(spec.TotalBytes())
	d, err := SolveLP(p, regions, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, p, d)
}

// TestCompressionCapacityMultiplier checks a compressed region admits a
// model that would not fit uncompressed, in both partitioners.
func TestCompressionCapacityMultiplier(t *testing.T) {
	p := smallProfile(t)
	total := p.Spec.TotalBytes()
	// One region at 40% of the model's fp32 bytes: infeasible at fp32,
	// feasible once 4x compression multiplies its capacity.
	tight := []Region{{Name: "R", Level: nmp.LevelRank, CapBytes: total * 2 / 5, BW: 8}}
	if _, err := SolveLP(p, tight, 256); err == nil {
		t.Fatal("fp32 solve fit a region holding 40% of the model")
	}
	tight[0].Compression = 4
	if _, err := SolveLP(p, tight, 256); err != nil {
		t.Fatalf("compressed solve: %v", err)
	}
	if _, err := Greedy(p, tight, 256); err != nil {
		t.Fatalf("compressed greedy: %v", err)
	}
	if _, err := SingleRegion(p, tight, 0, 256); err != nil {
		t.Fatalf("compressed single-region: %v", err)
	}
	pl, err := Build(p, mustSolve(t, p, tight, 256))
	if err != nil {
		t.Fatalf("compressed placement: %v", err)
	}
	if slots, want := pl.capSlots[0], tight[0].CapBytes*4/64; slots != want {
		t.Fatalf("compressed capSlots %d, want %d (4x the fp32 slot count)", slots, want)
	}
}

func mustSolve(t *testing.T, p *Profile, regions []Region, batch int) *Decision {
	t.Helper()
	d, err := SolveLP(p, regions, batch)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCompressionBandwidthDivisor checks gathered load is priced in
// encoded bytes: compressing a region divides its load and hence the
// latency bound.
func TestCompressionBandwidthDivisor(t *testing.T) {
	p := smallProfile(t)
	one := []Region{{Name: "R", Level: nmp.LevelRank, CapBytes: p.Spec.TotalBytes() * 2, BW: 8}}
	base, err := SolveLP(p, one, 256)
	if err != nil {
		t.Fatal(err)
	}
	one[0].Compression = 2
	half, err := SolveLP(p, one, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.T-base.T/2) > 1e-6*base.T {
		t.Fatalf("2x compression: T %.3f, want half of %.3f", half.T, base.T)
	}
	if math.Abs(half.Load[0]-base.Load[0]/2) > 1e-6*base.Load[0] {
		t.Fatalf("2x compression: load %.1f, want half of %.1f", half.Load[0], base.Load[0])
	}
	// Estimate and EstimateShares must price the same decision identically.
	loads, tt, err := Estimate(p, half, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loads[0]-half.Load[0]) > 1e-6*half.Load[0] || math.Abs(tt-half.T) > 1e-6*half.T {
		t.Fatalf("Estimate disagrees with solve: load %.1f vs %.1f, t %.3f vs %.3f",
			loads[0], half.Load[0], tt, half.T)
	}
}
