// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (DESIGN.md §2 maps each to its experiment). Benchmarks
// run the scaled-down Quick workload so `go test -bench=.` completes in
// minutes; the recross-bench command runs the same experiments at full
// paper fidelity.
package recross

import (
	"io"
	"testing"

	"recross/internal/core"
	"recross/internal/experiments"
)

func benchRecrossRun(b *testing.B, ref bool) {
	b.Helper()
	spec := CriteoKaggle(64, 80)
	cfg := core.DefaultConfig(spec)
	cfg.ProfileSamples = 500
	cfg.RefScheduler = ref
	sys, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewGenerator(spec, 7)
	if err != nil {
		b.Fatal(err)
	}
	batch := gen.Batch(32)
	var cycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := sys.Run(batch)
		if err != nil {
			b.Fatal(err)
		}
		cycles += int64(rs.Cycles)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "simcycles/s")
	}
}

// BenchmarkRecrossRun measures one batch through the full ReCross timing
// model on the fast arbiter — the serving layer's per-batch cost.
func BenchmarkRecrossRun(b *testing.B) { benchRecrossRun(b, false) }

// BenchmarkRecrossRunReference is the same batch on the pre-fast-path
// configuration (Reference scan scheduler, fresh channel per run); the
// ratio to BenchmarkRecrossRun is the arbiter's end-to-end speedup.
func BenchmarkRecrossRunReference(b *testing.B) { benchRecrossRun(b, true) }

func benchTable(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	cfg := experiments.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig03AccessCDF regenerates the cumulative access-frequency
// curves of the Criteo Kaggle tables (paper Fig. 3).
func BenchmarkFig03AccessCDF(b *testing.B) { benchTable(b, experiments.Fig3) }

// BenchmarkFig04LoadImbalance regenerates the per-op load-imbalance ratios
// by NMP level for 2/4/8 ranks (paper Fig. 4).
func BenchmarkFig04LoadImbalance(b *testing.B) { benchTable(b, experiments.Fig4) }

// BenchmarkFig05LevelScaling regenerates the NMP-level speedup vs internal
// bandwidth comparison (paper Fig. 5).
func BenchmarkFig05LevelScaling(b *testing.B) { benchTable(b, experiments.Fig5) }

// BenchmarkFig06Timeline regenerates the SALP command timeline (paper
// Fig. 6).
func BenchmarkFig06Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty timeline")
		}
	}
}

// BenchmarkFig09VectorLength regenerates the speedup sweep over embedding
// vector lengths (paper Fig. 9).
func BenchmarkFig09VectorLength(b *testing.B) { benchTable(b, experiments.Fig9) }

// BenchmarkFig10BatchSize regenerates the speedup sweep over batch sizes
// (paper Fig. 10).
func BenchmarkFig10BatchSize(b *testing.B) { benchTable(b, experiments.Fig10) }

// BenchmarkFig11RankCount regenerates the speedup sweep over rank counts
// (paper Fig. 11).
func BenchmarkFig11RankCount(b *testing.B) { benchTable(b, experiments.Fig11) }

// BenchmarkFig12Ablation regenerates the SAP/BWP/LAS optimization
// breakdown (paper Fig. 12).
func BenchmarkFig12Ablation(b *testing.B) { benchTable(b, experiments.Fig12) }

// BenchmarkFig13Imbalance regenerates the load-imbalance comparison of
// ReCross against the baselines (paper Fig. 13).
func BenchmarkFig13Imbalance(b *testing.B) { benchTable(b, experiments.Fig13) }

// BenchmarkFig14Configs regenerates the ReCross configuration exploration
// (paper Fig. 14).
func BenchmarkFig14Configs(b *testing.B) { benchTable(b, experiments.Fig14) }

// BenchmarkFig15Energy regenerates the energy breakdown and savings
// comparison (paper Fig. 15).
func BenchmarkFig15Energy(b *testing.B) { benchTable(b, experiments.Fig15) }

// BenchmarkTab03Area regenerates the per-architecture area-overhead table
// (paper Table 3).
func BenchmarkTab03Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tb := experiments.Table3(); len(tb.Rows) != 5 {
			b.Fatal("table 3 wrong shape")
		}
	}
}

// BenchmarkSuite runs the complete evaluation end to end (quick scale) —
// the one-shot "reproduce the paper" measurement.
func BenchmarkSuite(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensions runs the beyond-paper extension studies (refresh,
// channels, subarrays, training, latency, DDR4) at quick scale.
func BenchmarkExtensions(b *testing.B) {
	cfg := experiments.Quick()
	runs := []func(experiments.Config) (*experiments.Table, error){
		experiments.ExtRefresh,
		experiments.ExtChannels,
		experiments.ExtSubarrays,
		experiments.ExtTraining,
		experiments.ExtLatency,
		experiments.ExtDDR4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range runs {
			if _, err := run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
