package serve

import "time"

// dispatch is the dynamic batcher: it pulls admitted requests off the
// queue and coalesces them into batches, flushing when MaxBatch samples
// are collected or MaxDelay has elapsed since the batch opened. Requests
// whose context expired while queued are dropped here, at dequeue time,
// before they consume a batch slot. The loop exits when the admission
// channel is closed and fully drained, flushing any partial batch so
// graceful drain answers every admitted request.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)

	var batch []*request
	var opened time.Time // when the batch's first request was dequeued
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
		timerLive = false
	}
	flush := func() {
		stopTimer()
		if len(batch) == 0 {
			return
		}
		s.metrics.BatchForm.RecordSince(opened)
		s.route(batch)
		batch = nil
	}

	for {
		if len(batch) == 0 {
			// Nothing pending: block for the next request.
			r, ok := <-s.in
			if !ok {
				return
			}
			if !s.admitAtDequeue(r) {
				continue
			}
			batch = append(batch, r)
			opened = time.Now()
			timer.Reset(s.opts.MaxDelay)
			timerLive = true
			if len(batch) >= s.opts.MaxBatch {
				flush()
			}
			continue
		}
		select {
		case r, ok := <-s.in:
			if !ok {
				flush()
				return
			}
			if !s.admitAtDequeue(r) {
				continue
			}
			batch = append(batch, r)
			if len(batch) >= s.opts.MaxBatch {
				flush()
			}
		case <-timer.C:
			timerLive = false
			flush()
		}
	}
}

// admitAtDequeue records the queue wait and drops requests whose context
// expired while queued. Returns false if the request was dropped.
func (s *Server) admitAtDequeue(r *request) bool {
	r.deq = time.Now()
	s.metrics.QueueWait.Record(r.deq.Sub(r.enq).Nanoseconds())
	if err := r.ctx.Err(); err != nil {
		s.metrics.Canceled.Add(1)
		r.complete(outcome{err: err})
		return false
	}
	return true
}

// route hands a formed batch to the replica with the least outstanding
// work (queued + running samples), the serving analogue of the paper's
// load-balance objective across memory nodes.
func (s *Server) route(batch []*request) {
	best := 0
	bestLoad := s.replicas[0].outstanding.Load()
	for i := 1; i < len(s.replicas); i++ {
		if l := s.replicas[i].outstanding.Load(); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	rep := s.replicas[best]
	rep.outstanding.Add(int64(len(batch)))
	rep.work <- batch
}
