package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/chaos"
)

// Conn-level chaos for the binary wire. FaultyNode injects at the
// cluster.Node seam — one call at a time — but the binary transport's
// failure modes damage the shared connection: a torn frame desyncs the
// stream for every multiplexed call behind it, a reset fails a whole
// pending table at once, a stalled writer backs up the coalescing
// loop. faultyConn injects those at the net.Conn seam, under the
// protocol, where a per-call wrapper cannot reach; WrapFaultyDial
// threads it into a BinNode's dialer so -chaos-node-* campaigns cover
// both wires.

// errConnInjected is the write error surfaced by injected conn faults.
var errConnInjected = fmt.Errorf("chaos: injected conn fault")

// faultyConn wraps a net.Conn with write-side fault injection per
// chaos.ConnRates: Torn (write a prefix, sever), Reset (sever before
// writing), Stall (delay the write). Severing closes the underlying
// conn, so the peer and this side's reader observe it too — exactly a
// real dying-mid-write connection. One RNG draw per Write, guarded:
// deterministic per (seed, node, conn sequence).
type faultyConn struct {
	net.Conn
	cfg  chaos.NodeConfig
	inj  *chaos.Injector
	mu   sync.Mutex
	rng  *rand.Rand
	dead bool
}

func (fc *faultyConn) Write(p []byte) (int, error) {
	fc.mu.Lock()
	if fc.dead {
		fc.mu.Unlock()
		return 0, errConnInjected
	}
	var k chaos.Kind
	inject := false
	if fc.inj.Enabled() && !fc.cfg.Conn.Zero() {
		u := fc.rng.Float64()
		r := fc.cfg.Conn
		switch {
		case u < r.Torn:
			k, inject = chaos.ConnTorn, true
		case u < r.Torn+r.Reset:
			k, inject = chaos.ConnReset, true
		case u < r.Torn+r.Reset+r.Stall:
			k, inject = chaos.ConnStall, true
		}
	}
	if inject && k != chaos.ConnStall {
		fc.dead = true
	}
	fc.mu.Unlock()
	if !inject {
		return fc.Conn.Write(p)
	}
	fc.inj.Record(k)
	switch k {
	case chaos.ConnTorn:
		// Half the frame reaches the peer, then the conn dies — the
		// peer's reader must fail the stream, never mis-frame.
		n, _ := fc.Conn.Write(p[:len(p)/2])
		fc.Conn.Close()
		return n, errConnInjected
	case chaos.ConnReset:
		fc.Conn.Close()
		return 0, errConnInjected
	default: // ConnStall: the write lands, late
		time.Sleep(fc.cfg.WriteStall)
		return fc.Conn.Write(p)
	}
}

// WrapFaultyDial wraps dial so every connection it opens injects
// conn-level faults per cfg.Conn. Connection i (1-based, per node) is
// seeded with cfg.Seed + node*1009 + i, so campaigns are deterministic
// per (seed, node, conn sequence) regardless of dial interleaving
// across nodes. inj may be shared with node- and replica-tier
// injection; if nil a fresh one is made.
func WrapFaultyDial(dial BinDial, cfg chaos.NodeConfig, node int, inj *chaos.Injector) BinDial {
	cfg = cfg.WithDefaults()
	if inj == nil {
		inj = chaos.NewInjector()
	}
	if dial == nil {
		dial = defaultBinDial
	}
	var seq atomic.Int64
	return func(ctx context.Context, addr string) (net.Conn, error) {
		c, err := dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		s := seq.Add(1)
		return &faultyConn{
			Conn: c,
			cfg:  cfg,
			inj:  inj,
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(node)*1009 + s)),
		}, nil
	}
}
