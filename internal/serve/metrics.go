package serve

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Hist is a lock-free streaming histogram of non-negative int64 samples
// (latencies in nanoseconds, simulated cycles, batch sizes). Samples are
// bucketed log-linearly — 16 sub-buckets per power of two — so percentile
// estimates carry at most ~6% relative error while Record is a single
// atomic add on the hot path. The zero value is NOT ready; use NewHist.
type Hist struct {
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// histSubBits is the log2 of the sub-buckets per octave.
const histSubBits = 4

// NewHist returns an empty histogram.
func NewHist() *Hist {
	// 64 octaves x 16 sub-buckets covers the whole non-negative int64 range.
	return &Hist{buckets: make([]atomic.Int64, 64<<histSubBits)}
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v < 1<<histSubBits {
		return int(v) // exact buckets for tiny values
	}
	// Position of the leading bit selects the octave; the next histSubBits
	// bits select the sub-bucket.
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := (v >> (uint(exp) - histSubBits)) & (1<<histSubBits - 1)
	return (exp << histSubBits) + int(sub)
}

// bucketMid returns a representative value for bucket i (its midpoint).
func bucketMid(i int) float64 {
	if i < 1<<histSubBits {
		return float64(i)
	}
	exp := i >> histSubBits
	sub := i & (1<<histSubBits - 1)
	lo := float64(int64(1)<<uint(exp)) * (1 + float64(sub)/(1<<histSubBits))
	width := float64(int64(1)<<uint(exp)) / (1 << histSubBits)
	return lo + width/2
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordSince records the elapsed nanoseconds since t.
func (h *Hist) RecordSince(t time.Time) { h.Record(time.Since(t).Nanoseconds()) }

// HistSnapshot is a point-in-time percentile summary of a Hist.
type HistSnapshot struct {
	Count         int64
	Mean          float64
	P50, P95, P99 float64
	Max           int64
}

// Snapshot summarizes the histogram. Concurrent Records may or may not be
// included; the snapshot is internally consistent enough for reporting.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Max: h.max.Load()}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(h.sum.Load()) / float64(s.Count)
	ranks := []float64{0.50, 0.95, 0.99}
	out := make([]float64, len(ranks))
	var seen int64
	ri := 0
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		for ri < len(ranks) && float64(seen) >= ranks[ri]*float64(s.Count) {
			out[ri] = bucketMid(i)
			ri++
		}
		if ri == len(ranks) {
			break
		}
	}
	for ; ri < len(ranks); ri++ {
		out[ri] = float64(s.Max)
	}
	s.P50, s.P95, s.P99 = out[0], out[1], out[2]
	return s
}

// Metrics is the serving layer's registry: lock-cheap counters plus
// streaming latency histograms. All fields are safe for concurrent use.
type Metrics struct {
	// Admitted counts requests accepted into the queue.
	Admitted atomic.Int64
	// Completed counts requests answered successfully.
	Completed atomic.Int64
	// Failed counts requests answered with a simulation/functional error.
	Failed atomic.Int64
	// Shed counts requests rejected with ErrOverloaded at admission.
	Shed atomic.Int64
	// Canceled counts requests whose context expired while queued (dropped
	// at dequeue time) or while blocked at admission.
	Canceled atomic.Int64
	// Batches counts simulated batches executed.
	Batches atomic.Int64
	// BatchSamples sums the samples over all executed batches
	// (BatchSamples/Batches is the mean coalescing factor).
	BatchSamples atomic.Int64

	// Degraded counts requests answered from the functional layer with
	// Result.Degraded set (also included in Completed).
	Degraded atomic.Int64
	// DegradedCold counts requests completed while the storage tier was
	// degraded (Result.ColdDegraded; also included in Completed) —
	// storage-path degradation, disjoint from quorum-loss Degraded.
	DegradedCold atomic.Int64
	// Retries counts failed-batch resubmissions to another replica.
	Retries atomic.Int64
	// Restarts counts successful supervisor replica rebuilds.
	Restarts atomic.Int64
	// FaultPanics/FaultWedges/FaultCorrupt/FaultErrors count replica
	// faults by kind (recovered panics, abandoned wedged batches,
	// corrupt run stats, ordinary Run errors).
	FaultPanics  atomic.Int64
	FaultWedges  atomic.Int64
	FaultCorrupt atomic.Int64
	FaultErrors  atomic.Int64

	// UpdatesStaged/UpdatesApplied/UpdateFailures count staged System
	// updates (see Server.StageUpdate): replica-stagings requested,
	// batch-boundary applications, and failed applications (the replica
	// keeps serving its old System).
	UpdatesStaged  atomic.Int64
	UpdatesApplied atomic.Int64
	UpdateFailures atomic.Int64

	// QueueWait is the admission-to-dequeue wait, nanoseconds.
	QueueWait *Hist
	// BatchForm is the batch formation delay (first dequeue to flush),
	// nanoseconds.
	BatchForm *Hist
	// ServiceCycles is the simulated DRAM-cycle latency per batch.
	ServiceCycles *Hist
	// E2E is the end-to-end wall latency per completed request, nanoseconds.
	E2E *Hist
}

// NewMetrics returns a ready registry.
func NewMetrics() *Metrics {
	return &Metrics{
		QueueWait:     NewHist(),
		BatchForm:     NewHist(),
		ServiceCycles: NewHist(),
		E2E:           NewHist(),
	}
}

// faultCounter maps a failure kind to its counter.
func (m *Metrics) faultCounter(f Failure) *atomic.Int64 {
	switch f {
	case FailurePanic:
		return &m.FaultPanics
	case FailureWedge:
		return &m.FaultWedges
	case FailureCorrupt:
		return &m.FaultCorrupt
	default:
		return &m.FaultErrors
	}
}

// Snapshot is a point-in-time copy of every metric.
type Snapshot struct {
	Admitted, Completed, Failed, Shed, Canceled int64
	Batches, BatchSamples                       int64

	Degraded, DegradedCold, Retries, Restarts           int64
	FaultPanics, FaultWedges, FaultCorrupt, FaultErrors int64
	UpdatesStaged, UpdatesApplied, UpdateFailures       int64

	QueueWait, BatchForm, ServiceCycles, E2E HistSnapshot
}

// Snapshot captures the registry.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Admitted:       m.Admitted.Load(),
		Completed:      m.Completed.Load(),
		Failed:         m.Failed.Load(),
		Shed:           m.Shed.Load(),
		Canceled:       m.Canceled.Load(),
		Batches:        m.Batches.Load(),
		BatchSamples:   m.BatchSamples.Load(),
		Degraded:       m.Degraded.Load(),
		DegradedCold:   m.DegradedCold.Load(),
		Retries:        m.Retries.Load(),
		Restarts:       m.Restarts.Load(),
		FaultPanics:    m.FaultPanics.Load(),
		FaultWedges:    m.FaultWedges.Load(),
		FaultCorrupt:   m.FaultCorrupt.Load(),
		FaultErrors:    m.FaultErrors.Load(),
		UpdatesStaged:  m.UpdatesStaged.Load(),
		UpdatesApplied: m.UpdatesApplied.Load(),
		UpdateFailures: m.UpdateFailures.Load(),
		QueueWait:      m.QueueWait.Snapshot(),
		BatchForm:      m.BatchForm.Snapshot(),
		ServiceCycles:  m.ServiceCycles.Snapshot(),
		E2E:            m.E2E.Snapshot(),
	}
}

// MeanBatch returns the mean samples per executed batch (0 if none ran).
func (s Snapshot) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchSamples) / float64(s.Batches)
}

// Expo renders the snapshot in Prometheus text exposition format.
func (s Snapshot) Expo() string {
	var b []byte
	counter := func(name string, v int64) {
		b = append(b, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, v)...)
	}
	gauge := func(name string, v float64) {
		if math.IsNaN(v) {
			v = 0
		}
		b = append(b, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", name, name, v)...)
	}
	counter("recross_requests_admitted_total", s.Admitted)
	counter("recross_requests_completed_total", s.Completed)
	counter("recross_requests_failed_total", s.Failed)
	counter("recross_requests_shed_total", s.Shed)
	counter("recross_requests_canceled_total", s.Canceled)
	counter("recross_requests_degraded_total", s.Degraded)
	counter("recross_requests_cold_degraded_total", s.DegradedCold)
	counter("recross_retries_total", s.Retries)
	counter("recross_replica_restarts_total", s.Restarts)
	counter("recross_replica_faults_panic_total", s.FaultPanics)
	counter("recross_replica_faults_wedge_total", s.FaultWedges)
	counter("recross_replica_faults_corrupt_total", s.FaultCorrupt)
	counter("recross_replica_faults_error_total", s.FaultErrors)
	counter("recross_updates_staged_total", s.UpdatesStaged)
	counter("recross_updates_applied_total", s.UpdatesApplied)
	counter("recross_update_failures_total", s.UpdateFailures)
	counter("recross_batches_total", s.Batches)
	gauge("recross_batch_mean_samples", s.MeanBatch())
	hist := func(prefix string, h HistSnapshot, scale float64) {
		gauge(prefix+"_p50", h.P50*scale)
		gauge(prefix+"_p95", h.P95*scale)
		gauge(prefix+"_p99", h.P99*scale)
		gauge(prefix+"_mean", h.Mean*scale)
	}
	const toSeconds = 1e-9
	hist("recross_queue_wait_seconds", s.QueueWait, toSeconds)
	hist("recross_batch_form_seconds", s.BatchForm, toSeconds)
	hist("recross_e2e_seconds", s.E2E, toSeconds)
	hist("recross_service_cycles", s.ServiceCycles, 1)
	return string(b)
}

// Expo renders the health report in Prometheus text exposition format:
// per-replica state (0 healthy, 1 suspect, 2 restarting, 3 dead),
// failure and restart counters, and the degraded-mode gauge. Appended to
// Snapshot.Expo by the /metrics handler.
func (h HealthReport) Expo() string {
	var b strings.Builder
	b.WriteString("# TYPE recross_replica_state gauge\n")
	for _, r := range h.Replicas {
		code := 0
		switch r.State {
		case "suspect":
			code = 1
		case "restarting":
			code = 2
		case "dead":
			code = 3
		}
		fmt.Fprintf(&b, "recross_replica_state{replica=%q} %d\n", strconv.Itoa(r.ID), code)
	}
	b.WriteString("# TYPE recross_replica_failures gauge\n")
	for _, r := range h.Replicas {
		fmt.Fprintf(&b, "recross_replica_failures{replica=%q} %d\n", strconv.Itoa(r.ID), r.Failures)
	}
	b.WriteString("# TYPE recross_replica_restarts gauge\n")
	for _, r := range h.Replicas {
		fmt.Fprintf(&b, "recross_replica_restarts{replica=%q} %d\n", strconv.Itoa(r.ID), r.Restarts)
	}
	degraded := 0
	if h.Available < h.Quorum {
		degraded = 1
	}
	coldDegraded := 0
	if h.ColdDegraded {
		coldDegraded = 1
	}
	fmt.Fprintf(&b, "# TYPE recross_replicas_available gauge\nrecross_replicas_available %d\n", h.Available)
	fmt.Fprintf(&b, "# TYPE recross_degraded_mode gauge\nrecross_degraded_mode %d\n", degraded)
	fmt.Fprintf(&b, "# TYPE recross_cold_degraded_mode gauge\nrecross_cold_degraded_mode %d\n", coldDegraded)
	return b.String()
}

// PercentileDurations converts a nanosecond slice into p50/p95/p99
// durations — the exact (fully-sorted) percentiles the load
// generators' reports use, here and in the cluster layer.
func PercentileDurations(ns []float64) (p50, p95, p99 time.Duration) {
	return percentileDurations(ns)
}

// percentileDurations converts a nanosecond slice into p50/p95/p99
// durations (used by the load generator's exact report).
func percentileDurations(ns []float64) (p50, p95, p99 time.Duration) {
	if len(ns) == 0 {
		return 0, 0, 0
	}
	s := make([]float64, len(ns))
	copy(s, ns)
	sort.Float64s(s)
	at := func(p float64) time.Duration {
		r := p / 100 * float64(len(s)-1)
		i := int(r)
		if i+1 >= len(s) {
			return time.Duration(s[len(s)-1])
		}
		frac := r - float64(i)
		return time.Duration(s[i] + frac*(s[i+1]-s[i]))
	}
	return at(50), at(95), at(99)
}
