package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/embedding"
	"recross/internal/serve"
	"recross/internal/trace"
)

// fakeNode is a controllable in-memory transport driver: it answers
// from a functional layer (so bit-identity is checkable), can be taken
// down (fail fast with ErrNodeDown) and slowed (stall before
// answering), honoring ctx while stalled.
type fakeNode struct {
	id    string
	layer *embedding.Layer

	delayNs atomic.Int64
	down    atomic.Bool

	lookups  atomic.Int64
	failures atomic.Int64
}

func newFakeNode(id string, layer *embedding.Layer) *fakeNode {
	return &fakeNode{id: id, layer: layer}
}

func (n *fakeNode) ID() string { return n.id }

func (n *fakeNode) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	if n.down.Load() {
		n.failures.Add(1)
		return nil, ErrNodeDown
	}
	if d := time.Duration(n.delayNs.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			n.failures.Add(1)
			return nil, ctx.Err()
		}
	}
	vecs, err := n.layer.ReduceSample(sample)
	if err != nil {
		n.failures.Add(1)
		return nil, err
	}
	n.lookups.Add(1)
	return &serve.Result{Vectors: vecs, BatchSize: 1, ServiceCycles: 100}, nil
}

func (n *fakeNode) Health(ctx context.Context) (serve.HealthReport, error) {
	if n.down.Load() {
		return serve.HealthReport{}, ErrNodeDown
	}
	return serve.HealthReport{Status: "ok"}, nil
}

func (n *fakeNode) Stats() NodeStats {
	return NodeStats{Lookups: n.lookups.Load(), Failures: n.failures.Load()}
}

func (n *fakeNode) Close() error { return nil }

func clusterSpec() trace.ModelSpec { return trace.Uniform(8, 2000, 8, 2) }

func clusterLayer(t *testing.T) *embedding.Layer {
	t.Helper()
	l, err := embedding.NewLayer(clusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// manualPlacement hand-routes tables for tests that need to know
// exactly which node owns what.
func manualPlacement(nodes []string, owners [][]int) *Placement {
	p := &Placement{Nodes: nodes, Replicas: owners, Mode: "manual"}
	p.finalize()
	return p
}

// newTestCluster builds n fakeNodes over one shared layer plus a router
// on the given placement. mod may tweak the options before NewRouter.
func newTestCluster(t *testing.T, n int, pl *Placement, mod func(*Options)) (*Router, []*fakeNode) {
	t.Helper()
	layer := clusterLayer(t)
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = newFakeNode(fmt.Sprintf("node%d", i), layer)
		nodes[i] = fakes[i]
	}
	opts := Options{
		Nodes:         nodes,
		Placement:     pl,
		Layer:         layer,
		ProbeInterval: -1, // no background prober unless a test wants it
		HedgeDelay:    -1, // no hedging unless a test wants it
	}
	if mod != nil {
		mod(&opts)
	}
	r, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, fakes
}

func clusterSamples(t *testing.T, n int) []trace.Sample {
	t.Helper()
	g, err := trace.NewGenerator(clusterSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Sample, n)
	for i := range out {
		out[i] = g.Sample()
	}
	return out
}

// wideSample touches every table once — it must scatter.
func wideSample() trace.Sample {
	s := make(trace.Sample, 8)
	for i := range s {
		s[i] = trace.Op{Table: i, Kind: trace.Sum, Indices: []int64{1, 2, 3}}
	}
	return s
}

func checkIdentical(t *testing.T, layer *embedding.Layer, sample trace.Sample, got [][]float32) {
	t.Helper()
	want, err := layer.ReduceSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cluster vectors differ from functional layer")
	}
}

func TestRouterValidation(t *testing.T) {
	layer := clusterLayer(t)
	node := newFakeNode("n0", layer)
	pl := manualPlacement([]string{"n0"}, [][]int{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	if _, err := NewRouter(Options{Placement: pl, Layer: layer}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := NewRouter(Options{Nodes: []Node{node}, Placement: pl}); err == nil {
		t.Error("no layer accepted")
	}
	if _, err := NewRouter(Options{Nodes: []Node{node}, Layer: layer}); err == nil {
		t.Error("no placement accepted")
	}
	short := manualPlacement([]string{"n0"}, [][]int{{0}})
	if _, err := NewRouter(Options{Nodes: []Node{node}, Placement: short, Layer: layer}); err == nil {
		t.Error("table-count mismatch accepted")
	}
	bad := manualPlacement([]string{"n0"}, [][]int{{3}, {0}, {0}, {0}, {0}, {0}, {0}, {0}})
	if _, err := NewRouter(Options{Nodes: []Node{node}, Placement: bad, Layer: layer}); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestRouterLookupErrors(t *testing.T) {
	pl, err := RingPlacement(8, []string{"node0", "node1"}, PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := newTestCluster(t, 2, pl, nil)
	ctx := context.Background()
	if _, err := r.Lookup(ctx, nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := r.Lookup(ctx, trace.Sample{{Table: 99, Kind: trace.Sum, Indices: []int64{1}}}); err == nil {
		t.Error("out-of-range table accepted")
	}
	r.Close()
	if _, err := r.Lookup(ctx, wideSample()); err != ErrRouterClosed {
		t.Errorf("closed router returned %v, want ErrRouterClosed", err)
	}
}

// TestRouterBitIdentity: scatter-gathered vectors are bit-identical to
// a single functional layer's, in request order, across many samples.
func TestRouterBitIdentity(t *testing.T) {
	pl, err := RingPlacement(8, []string{"node0", "node1", "node2", "node3"}, PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, fakes := newTestCluster(t, 4, pl, nil)
	layer := fakes[0].layer
	for _, sample := range clusterSamples(t, 50) {
		res, err := r.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatal("healthy cluster answered degraded")
		}
		checkIdentical(t, layer, sample, res.Vectors)
	}

	// A sample touching every table scatters across nodes.
	res, err := r.Lookup(context.Background(), wideSample())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 2 {
		t.Errorf("wide sample used %d nodes, want >=2", res.Nodes)
	}
	checkIdentical(t, layer, wideSample(), res.Vectors)
}

// TestRouterFallbackDegraded: losing the sole owner of a table degrades
// those ops to the router's functional fallback — same bits, no error —
// while replicated tables fail over to the surviving owner.
func TestRouterFallbackDegraded(t *testing.T) {
	// Table 0 only on node0; the rest replicated on both.
	owners := [][]int{{0}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, nil)
	fakes[0].down.Store(true)

	sample := wideSample()
	res, err := r.Lookup(context.Background(), sample)
	if err != nil {
		t.Fatalf("node loss surfaced as an error: %v", err)
	}
	if !res.Degraded || res.DegradedOps != 1 {
		t.Errorf("Degraded=%v DegradedOps=%d, want true/1 (only table 0 is orphaned)", res.Degraded, res.DegradedOps)
	}
	checkIdentical(t, fakes[0].layer, sample, res.Vectors)
	if fakes[1].lookups.Load() == 0 {
		t.Error("surviving replica served nothing")
	}
	s := r.Stats()
	if s.Degraded != 1 || s.FallbackOps != 1 {
		t.Errorf("stats Degraded=%d FallbackOps=%d, want 1/1", s.Degraded, s.FallbackOps)
	}
}

// TestRouterDeadExclusion: once failures cross the threshold the node
// is excluded from planning — later lookups go straight to fallback or
// replicas without burning sub-requests on it.
func TestRouterDeadExclusion(t *testing.T) {
	owners := [][]int{{0}, {1}, {1}, {1}, {1}, {1}, {1}, {1}}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, func(o *Options) { o.FailThreshold = 1 })
	fakes[0].down.Store(true)

	if _, err := r.Lookup(context.Background(), wideSample()); err != nil {
		t.Fatal(err)
	}
	if got := r.NodeState(0); got != NodeDead {
		t.Fatalf("after threshold failures node0 is %v, want dead", got)
	}
	subFails := r.Stats().SubFailures
	res, err := r.Lookup(context.Background(), wideSample())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("orphaned table not degraded")
	}
	if got := r.Stats().SubFailures; got != subFails {
		t.Errorf("dead node still dispatched to: sub-failures %d -> %d", subFails, got)
	}
	if r.Health().Status != "degraded" {
		t.Errorf("health %q, want degraded", r.Health().Status)
	}
}

// TestRouterRetryFailover: a failed primary sub-request is retried on a
// replica within the same lookup — no degradation, same bits.
func TestRouterRetryFailover(t *testing.T) {
	owners := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, nil)
	fakes[0].down.Store(true)

	sample := wideSample()
	res, err := r.Lookup(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("failover degraded despite a live replica")
	}
	if res.Retries == 0 {
		t.Error("no retries recorded for a failed primary")
	}
	checkIdentical(t, fakes[0].layer, sample, res.Vectors)
	if r.Stats().Retries == 0 {
		t.Error("router retry counter still zero")
	}
}

// TestRouterHedge: a slow primary is hedged on a replica after the
// fixed delay; the fast hedge wins and the caller never waits out the
// stall.
func TestRouterHedge(t *testing.T) {
	owners := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, func(o *Options) { o.HedgeDelay = time.Millisecond })
	fakes[0].delayNs.Store(int64(300 * time.Millisecond))

	sample := trace.Sample{{Table: 0, Kind: trace.Sum, Indices: []int64{4, 5}}}
	// The first dispatch tie-breaks to node0 (the slow one); hedge onto
	// node1 must answer long before the stall expires.
	t0 := time.Now()
	res, err := r.Lookup(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took > 150*time.Millisecond {
		t.Errorf("hedged lookup took %v, should beat the 300ms stall", took)
	}
	if !res.Hedged {
		t.Error("result not marked hedged")
	}
	s := r.Stats()
	if s.HedgesFired == 0 || s.HedgesWon == 0 {
		t.Errorf("hedge counters fired=%d won=%d, want both > 0", s.HedgesFired, s.HedgesWon)
	}
	checkIdentical(t, fakes[0].layer, sample, res.Vectors)
}

// TestRouterHedgeDisabled: HedgeDelay < 0 never hedges, however slow
// the primary.
func TestRouterHedgeDisabled(t *testing.T) {
	owners := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, nil) // HedgeDelay -1 by default here
	fakes[0].delayNs.Store(int64(5 * time.Millisecond))

	res, err := r.Lookup(context.Background(), trace.Sample{{Table: 0, Kind: trace.Sum, Indices: []int64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hedged || r.Stats().HedgesFired != 0 {
		t.Error("hedge fired despite HedgeDelay=-1")
	}
}

// TestRouterHedgeRace hammers the hedge path concurrently under -race:
// slow primaries, aggressive hedging, canceled losers — every answer
// must still be bit-identical and error-free.
func TestRouterHedgeRace(t *testing.T) {
	owners := make([][]int, 8)
	for i := range owners {
		owners[i] = []int{0, 1}
	}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, func(o *Options) { o.HedgeDelay = 200 * time.Microsecond })
	fakes[0].delayNs.Store(int64(2 * time.Millisecond))

	samples := clusterSamples(t, 16)
	want := make([][][]float32, len(samples))
	for i, s := range samples {
		w, err := fakes[0].layer.ReduceSample(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	var wg sync.WaitGroup
	var mismatches, errs atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				i := it % len(samples)
				res, err := r.Lookup(context.Background(), samples[i])
				if err != nil {
					errs.Add(1)
					continue
				}
				if !reflect.DeepEqual(res.Vectors, want[i]) {
					mismatches.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if errs.Load() > 0 || mismatches.Load() > 0 {
		t.Fatalf("%d errors, %d mismatched answers under hedge pressure", errs.Load(), mismatches.Load())
	}
	if r.Stats().HedgesFired == 0 {
		t.Error("hammer never hedged; the race path went untested")
	}
}

// TestRouterProbeReadmission: a dead node whose health probe succeeds
// again is re-admitted and serves traffic.
func TestRouterProbeReadmission(t *testing.T) {
	owners := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	pl := manualPlacement([]string{"node0", "node1"}, owners)
	r, fakes := newTestCluster(t, 2, pl, func(o *Options) {
		o.FailThreshold = 1
		o.ProbeInterval = 5 * time.Millisecond
	})
	fakes[0].down.Store(true)
	if _, err := r.Lookup(context.Background(), wideSample()); err != nil {
		t.Fatal(err)
	}
	if r.NodeState(0) != NodeDead {
		t.Fatal("node0 not dead after threshold failure")
	}

	fakes[0].down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for r.NodeState(0) == NodeDead {
		if time.Now().After(deadline) {
			t.Fatal("node0 never re-admitted by the prober")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := r.Stats()
	if s.Probes == 0 || s.Revivals == 0 {
		t.Errorf("probes=%d revivals=%d, want both > 0", s.Probes, s.Revivals)
	}
	before := fakes[0].lookups.Load()
	for i := 0; i < 8; i++ {
		if _, err := r.Lookup(context.Background(), wideSample()); err != nil {
			t.Fatal(err)
		}
	}
	if fakes[0].lookups.Load() == before {
		t.Error("re-admitted node served nothing")
	}
}

// TestSetPlacement: a live swap reroutes traffic and counts as a
// rebalance; an incompatible placement is rejected.
func TestSetPlacement(t *testing.T) {
	all0 := make([][]int, 8)
	all1 := make([][]int, 8)
	for i := range all0 {
		all0[i] = []int{0}
		all1[i] = []int{1}
	}
	r, fakes := newTestCluster(t, 2, manualPlacement([]string{"node0", "node1"}, all0), nil)
	if _, err := r.Lookup(context.Background(), wideSample()); err != nil {
		t.Fatal(err)
	}
	if fakes[1].lookups.Load() != 0 {
		t.Fatal("placement all-on-0 routed to node1")
	}
	if err := r.SetPlacement(manualPlacement([]string{"node0", "node1"}, all1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup(context.Background(), wideSample()); err != nil {
		t.Fatal(err)
	}
	if fakes[1].lookups.Load() == 0 {
		t.Error("swapped placement did not reroute to node1")
	}
	if r.Stats().Rebalances != 1 {
		t.Errorf("rebalances %d, want 1", r.Stats().Rebalances)
	}
	if err := r.SetPlacement(manualPlacement([]string{"x"}, [][]int{{0}})); err == nil {
		t.Error("incompatible placement accepted")
	}
}

// TestRouterSpreadsReplicas: a burst of ops on one hot table spreads
// across its replicas even from a single caller (the per-plan pending
// counts at work).
func TestRouterSpreadsReplicas(t *testing.T) {
	owners := make([][]int, 8)
	for i := range owners {
		owners[i] = []int{0, 1}
	}
	r, fakes := newTestCluster(t, 2, manualPlacement([]string{"node0", "node1"}, owners), nil)
	sample := make(trace.Sample, 10)
	for i := range sample {
		sample[i] = trace.Op{Table: 0, Kind: trace.Sum, Indices: []int64{int64(i + 1)}}
	}
	res, err := r.Lookup(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 2 {
		t.Errorf("hot-table burst used %d nodes, want 2", res.Nodes)
	}
	if fakes[0].lookups.Load() == 0 || fakes[1].lookups.Load() == 0 {
		t.Errorf("burst not spread: node0=%d node1=%d", fakes[0].lookups.Load(), fakes[1].lookups.Load())
	}
	checkIdentical(t, fakes[0].layer, sample, res.Vectors)
}

// BenchmarkClusterLookup measures one scatter-gathered lookup across a
// 4-node fleet of in-process fakes on a ring placement — the router's
// own planning/dispatch/reassembly overhead, since the fakes answer
// straight from the functional layer. CI runs it at -benchtime=1x as a
// smoke so the harness cannot rot.
func BenchmarkClusterLookup(b *testing.B) {
	layer, err := embedding.NewLayer(clusterSpec())
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]Node, 4)
	ids := make([]string, 4)
	for i := range nodes {
		ids[i] = fmt.Sprintf("node%d", i)
		nodes[i] = newFakeNode(ids[i], layer)
	}
	pl, err := RingPlacement(8, ids, PlacementOptions{
		Hot: HotTopK([]float64{8, 7, 6, 5, 4, 3, 2, 1}, 2),
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRouter(Options{Nodes: nodes, Placement: pl, Layer: layer, ProbeInterval: -1, HedgeDelay: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	g, err := trace.NewGenerator(clusterSpec(), 42)
	if err != nil {
		b.Fatal(err)
	}
	samples := make([]trace.Sample, 64)
	for i := range samples {
		samples[i] = g.Sample()
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Lookup(ctx, samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
}
