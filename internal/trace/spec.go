// Package trace models embedding-layer workloads: table specifications,
// lookup traces with skewed (long-tail) access distributions, and
// deterministic synthetic generators calibrated to the Criteo datasets the
// paper evaluates on.
//
// Substitution note (DESIGN.md §3): the raw Criteo click logs are not
// available offline, so we synthesise per-table Zipfian index streams over
// the published cardinalities of the 26 Criteo Kaggle categorical features.
// The paper's evaluation depends only on the access-frequency skew and the
// table-size spectrum, both of which are preserved.
package trace

import "fmt"

// TableSpec describes one embedding table.
type TableSpec struct {
	// Name identifies the table (e.g. "C3").
	Name string
	// Rows is the number of embedding rows (the feature cardinality).
	Rows int64
	// VecLen is the embedding vector length in FP32 elements (32..256 in
	// production per the paper; default 64).
	VecLen int
	// Pooling is the average number of vectors gathered per embedding
	// operation (paper default 80).
	Pooling int
	// Prob is the probability that a sample accesses this table.
	Prob float64
	// Skew is the Zipf exponent of the access distribution. Larger means
	// more skewed; 0 means uniform.
	Skew float64
	// Kind selects the pooling reduction generated for this table's ops.
	// The zero value is WeightedSum (the historical default); Sum models
	// the common unweighted multi-hot pooling case.
	Kind ReduceKind
}

// Bytes returns the table's memory footprint in bytes (FP32 elements).
func (t TableSpec) Bytes() int64 { return t.Rows * int64(t.VecLen) * 4 }

// Validate reports the first structural problem with the spec.
func (t TableSpec) Validate() error {
	switch {
	case t.Rows <= 0:
		return fmt.Errorf("table %q: rows must be positive, got %d", t.Name, t.Rows)
	case t.VecLen <= 0:
		return fmt.Errorf("table %q: vector length must be positive, got %d", t.Name, t.VecLen)
	case t.Pooling <= 0:
		return fmt.Errorf("table %q: pooling must be positive, got %d", t.Name, t.Pooling)
	case t.Prob < 0 || t.Prob > 1:
		return fmt.Errorf("table %q: probability out of [0,1]: %g", t.Name, t.Prob)
	case t.Skew < 0:
		return fmt.Errorf("table %q: negative skew %g", t.Name, t.Skew)
	case t.Kind > Max:
		return fmt.Errorf("table %q: unknown reduce kind %d", t.Name, t.Kind)
	}
	return nil
}

// ModelSpec is the embedding layer of one recommendation model.
type ModelSpec struct {
	Name   string
	Tables []TableSpec
}

// Validate checks every table spec.
func (m ModelSpec) Validate() error {
	if len(m.Tables) == 0 {
		return fmt.Errorf("model %q: no tables", m.Name)
	}
	for _, t := range m.Tables {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
	}
	return nil
}

// TotalBytes returns the summed footprint of all embedding tables.
func (m ModelSpec) TotalBytes() int64 {
	var s int64
	for _, t := range m.Tables {
		s += t.Bytes()
	}
	return s
}

// criteoKaggleCardinalities are the cardinalities of the 26 categorical
// features (C1..C26) of the public Criteo Kaggle Display Advertising
// Challenge dataset, the workload of the paper's Fig. 3. The three
// largest features are capped at 8M rows (the standard hashing-trick cap),
// which also keeps the model within a 2-rank channel at vector length 256.
var criteoKaggleCardinalities = []int64{
	1460, 583, 8000000, 2202608, 305, 24, 12517, 633, 3, 93145,
	5683, 8000000, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4,
	7046547, 18, 15, 286181, 105, 142572,
}

// multiHotMinRows is the table size above which the synthetic multi-hot
// pooling factor applies. Small categorical features are one-hot in DLRM
// (one lookup per sample); the 20-80-vector pooling of the paper's §2.1
// describes the large multi-hot features (click/post histories).
const multiHotMinRows = 10000

// CriteoKaggle returns the 26-table Criteo Kaggle model with the given
// vector length and pooling factor. Per-table Zipf skew is derived
// deterministically from the table position so the tables exhibit the
// "varying spectrum of access distributions" the paper describes (§3.3):
// exponents cycle through [1.00, 1.40], calibrated so that under 20% of
// rows absorb the vast majority of accesses, matching Fig. 3's curves.
func CriteoKaggle(vecLen, pooling int) ModelSpec {
	tables := make([]TableSpec, len(criteoKaggleCardinalities))
	for i, rows := range criteoKaggleCardinalities {
		p := pooling
		if rows < multiHotMinRows {
			p = 1
		}
		tables[i] = TableSpec{
			Name:    fmt.Sprintf("C%d", i+1),
			Rows:    rows,
			VecLen:  vecLen,
			Pooling: p,
			Prob:    1.0,
			Skew:    1.00 + 0.08*float64(i%6),
		}
	}
	return ModelSpec{Name: "criteo-kaggle", Tables: tables}
}

// CriteoTerabyte returns a Criteo-Terabyte-like model: the same 26 features
// with cardinalities scaled up roughly 4x and capped at 40M rows (the common
// hashing cap used when training on the Terabyte logs).
func CriteoTerabyte(vecLen, pooling int) ModelSpec {
	tables := make([]TableSpec, len(criteoKaggleCardinalities))
	for i, rows := range criteoKaggleCardinalities {
		r := rows * 4
		if r > 40_000_000 {
			r = 40_000_000
		}
		p := pooling
		if r < multiHotMinRows {
			p = 1
		}
		tables[i] = TableSpec{
			Name:    fmt.Sprintf("C%d", i+1),
			Rows:    r,
			VecLen:  vecLen,
			Pooling: p,
			Prob:    1.0,
			Skew:    1.00 + 0.08*float64(i%6),
		}
	}
	return ModelSpec{Name: "criteo-terabyte", Tables: tables}
}

// Uniform returns a model of n identical tables with uniform (unskewed)
// access, useful for isolating architecture effects in tests.
func Uniform(n int, rows int64, vecLen, pooling int) ModelSpec {
	tables := make([]TableSpec, n)
	for i := range tables {
		tables[i] = TableSpec{
			Name:    fmt.Sprintf("U%d", i),
			Rows:    rows,
			VecLen:  vecLen,
			Pooling: pooling,
			Prob:    1.0,
			Skew:    0,
		}
	}
	return ModelSpec{Name: "uniform", Tables: tables}
}
