package cluster

import (
	"bufio"
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"recross/internal/chaos"
)

// TestFaultyConnTornFrame: a torn write delivers a prefix then severs.
// The peer's frame reader must surface an error — never mis-frame or
// hang — and the writer side sees errConnInjected.
func TestFaultyConnTornFrame(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := &faultyConn{
		Conn: client,
		cfg:  chaos.NodeConfig{Conn: chaos.ConnRates{Torn: 1}}.WithDefaults(),
		inj:  chaos.NewInjector(),
		rng:  rand.New(rand.NewSource(1)),
	}
	frame := appendErrFrame(nil, 1, errCodeInternal, "payload-long-enough-to-tear")

	readErr := make(chan error, 1)
	go func() {
		var hdr [frameHeaderSize]byte
		_, _, _, _, err := readFrame(bufio.NewReader(server), &hdr, nil)
		readErr <- err
	}()
	if _, err := fc.Write(frame); err == nil {
		t.Fatal("torn write reported success")
	}
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("peer decoded a torn frame as valid")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer reader hung on a torn frame")
	}
	if fc.inj.Count(chaos.ConnTorn) != 1 {
		t.Errorf("torn count = %d, want 1", fc.inj.Count(chaos.ConnTorn))
	}
	// The conn is dead: further writes fail fast.
	if _, err := fc.Write(frame); err == nil {
		t.Error("write on a torn conn succeeded")
	}
}

// TestWrapFaultyDialDeterministic: same (seed, node) → same fault
// sequence, independent of wall clock.
func TestWrapFaultyDialDeterministic(t *testing.T) {
	run := func() []bool {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer lis.Close()
		go func() {
			for {
				c, err := lis.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					buf := make([]byte, 1<<16)
					for {
						if _, err := c.Read(buf); err != nil {
							c.Close()
							return
						}
					}
				}(c)
			}
		}()
		cfg := chaos.NodeConfig{Seed: 42, Conn: chaos.ConnRates{Reset: 0.5}}
		dial := WrapFaultyDial(nil, cfg, 3, chaos.NewInjector())
		var outcomes []bool
		for i := 0; i < 20; i++ {
			c, err := dial(context.Background(), lis.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			_, werr := c.Write([]byte("ping"))
			outcomes = append(outcomes, werr == nil)
			c.Close()
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at conn %d: %v vs %v", i, a, b)
		}
	}
	var faults int
	for _, ok := range a {
		if !ok {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Errorf("reset rate 0.5 injected %d/%d faults", faults, len(a))
	}
}

// TestBinNodeChaosConnCampaign: a router over binary peers whose conns
// tear, reset and stall keeps answering — degraded at worst, never a
// hard error — and heals to clean answers once injection stops. This is
// the binary-wire equivalent of the FaultyNode campaign.
func TestBinNodeChaosConnCampaign(t *testing.T) {
	layer := clusterLayer(t)
	backend := &stubBinBackend{layer: layer}
	inj := chaos.NewInjector()
	cfg := chaos.NodeConfig{
		Seed:       7,
		Conn:       chaos.ConnRates{Torn: 0.05, Reset: 0.05, Stall: 0.1},
		WriteStall: 100 * time.Microsecond,
	}

	nodes := make([]Node, 2)
	for i := range nodes {
		addr, _ := newBinPeer(t, backend, layer)
		bn := NewBinNode(
			nodes2ID(i), addr,
			BinNodeOptions{Conns: 2, MaxBackoff: 20 * time.Millisecond,
				Dial: WrapFaultyDial(nil, cfg, i, inj)},
		)
		nodes[i] = bn
	}
	pl, err := RingPlacement(8, []string{"node0", "node1"}, PlacementOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Options{
		Nodes: nodes, Placement: pl, Layer: layer,
		ProbeInterval: 20 * time.Millisecond, FailThreshold: 2, HedgeDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	samples := clusterSamples(t, 10)
	for i := 0; i < 200; i++ {
		sample := samples[i%len(samples)]
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := r.Lookup(ctx, sample)
		cancel()
		if err != nil {
			t.Fatalf("lookup %d under conn chaos: %v", i, err)
		}
		checkIdentical(t, layer, sample, res.Vectors)
	}
	if inj.Count(chaos.ConnTorn)+inj.Count(chaos.ConnReset) == 0 {
		t.Fatal("campaign never injected a severing conn fault")
	}

	// Stop injecting: the pool must heal back to clean, non-degraded
	// answers (redial replaces every dead faulty conn).
	inj.SetEnabled(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := r.Lookup(context.Background(), samples[0])
		if err == nil && !res.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never healed after injection stopped")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func nodes2ID(i int) string {
	return [2]string{"node0", "node1"}[i]
}
