package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/embedding"
	"recross/internal/serve"
	"recross/internal/trace"
)

// BinBackend is what the binary listener serves from. *serve.Server
// satisfies it directly; a Router fronts it through RouterBackend —
// the same two roles the JSON/HTTP front-ends cover, so both wires
// stay available on every tier.
type BinBackend interface {
	Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error)
	Health() serve.HealthReport
}

// RouterBackend adapts a Router to BinBackend, mirroring the HTTP
// front-end's response mapping (Replica -1, ServiceCycles = cluster
// critical path) so binary and JSON answers from a router are
// field-identical.
type RouterBackend struct {
	R *Router
}

// Lookup scatter-gathers the sample through the router.
func (rb RouterBackend) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	res, err := rb.R.Lookup(ctx, sample)
	if err != nil {
		return nil, err
	}
	return &serve.Result{
		Vectors:       res.Vectors,
		BatchSize:     len(sample),
		ServiceCycles: res.ServiceCycles,
		Replica:       -1,
		Retries:       res.Retries,
		Degraded:      res.Degraded,
		Total:         res.Total,
	}, nil
}

// Health maps the router's aggregate health onto the probe report.
func (rb RouterBackend) Health() serve.HealthReport {
	h := rb.R.Health()
	return serve.HealthReport{Status: h.Status, Available: h.Available, Quorum: h.Nodes}
}

// BinServerOptions configures a binary listener.
type BinServerOptions struct {
	// Backend serves the decoded samples (required).
	Backend BinBackend
	// Layer bounds-checks request tables and indices (required), exactly
	// as serve.ParseSample does for the JSON wire.
	Layer *embedding.Layer
	// Workers is the per-connection decode/serve pool size (default 4).
	// The multiplexed wire delivers many concurrent lookups per conn;
	// workers decouple decode+serve from the reader so a slow lookup
	// does not head-of-line block frame intake.
	Workers int
}

func (o BinServerOptions) withDefaults() BinServerOptions {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// binReq is one pooled inbound frame: the payload copy (so the conn
// reader can keep streaming) plus the decode arena that turns it into
// a sample without allocating in steady state.
type binReq struct {
	typ     byte
	corr    uint32
	payload []byte
	arena   reqArena
}

var binReqPool = sync.Pool{New: func() any { return &binReq{} }}

// BinServer is the binary-protocol listener: the server half of
// BinNode. Each accepted conn runs a reader (frame intake), a small
// worker pool (arena decode, backend lookup, response encode into
// pooled buffers), and a flush-coalescing writer — the steady-state
// request path allocates nothing on this side, which is where a
// cluster's aggregate decode work lands.
type BinServer struct {
	opts BinServerOptions
	m    WireMetrics

	mu     sync.Mutex
	lis    []net.Listener
	conns  map[net.Conn]context.CancelFunc
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewBinServer builds a listener-less server; call Serve with one or
// more listeners.
func NewBinServer(opts BinServerOptions) (*BinServer, error) {
	if opts.Backend == nil {
		return nil, errors.New("cluster: bin server needs a backend")
	}
	if opts.Layer == nil {
		return nil, errors.New("cluster: bin server needs a layer")
	}
	return &BinServer{opts: opts.withDefaults(), conns: make(map[net.Conn]context.CancelFunc)}, nil
}

// Metrics exposes the transport counters.
func (s *BinServer) Metrics() *WireMetrics { return &s.m }

// Expo renders the server-side recross_cluster_wire_* exposition —
// made for serve.Server.RegisterExpo.
func (s *BinServer) Expo() string {
	return wireExpo([]wireExpoEntry{{labels: `role="server"`, m: &s.m}})
}

// Serve accepts connections until the listener closes. Returns nil
// after Close; a Serve error otherwise.
func (s *BinServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		lis.Close()
		return errors.New("cluster: bin server closed")
	}
	s.lis = append(s.lis, lis)
	s.mu.Unlock()
	for {
		c, err := lis.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// Close stops accepting, tears down every conn, and waits for the
// per-conn goroutines to drain.
func (s *BinServer) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	for _, l := range s.lis {
		l.Close()
	}
	for c, cancel := range s.conns {
		cancel()
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *BinServer) track(c net.Conn, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[c] = cancel
	return true
}

func (s *BinServer) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *BinServer) handleConn(c net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !s.track(c, cancel) {
		c.Close()
		return
	}
	defer s.untrack(c)
	s.m.Dials.Add(1)
	s.m.ConnsOpen.Add(1)
	defer s.m.ConnsOpen.Add(-1)

	reqq := make(chan *binReq, 64)
	writeq := make(chan *wireBuf, 64)
	var workers sync.WaitGroup
	for i := 0; i < s.opts.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			s.worker(ctx, reqq, writeq)
		}()
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.connWriter(c, writeq)
	}()

	// Reader: frame intake. Payloads are copied into pooled requests so
	// the read buffer can take the next frame while workers decode.
	br := bufio.NewReaderSize(c, 64<<10)
	var hdr [frameHeaderSize]byte
	var buf []byte
	for {
		typ, corr, payload, nbuf, err := readFrame(br, &hdr, buf)
		buf = nbuf
		if err != nil {
			break // EOF, torn frame, bad magic: either way the conn is done
		}
		s.m.BytesIn.Add(int64(frameHeaderSize + len(payload)))
		s.m.FramesIn.Add(1)
		req := binReqPool.Get().(*binReq)
		req.typ = typ
		req.corr = corr
		req.payload = append(req.payload[:0], payload...)
		reqq <- req
	}
	// Teardown in dependency order: no more requests, drain workers,
	// then no more responses, drain writer.
	close(reqq)
	workers.Wait()
	close(writeq)
	<-writerDone
	c.Close()
}

// worker decodes, serves, and encodes requests for one conn.
func (s *BinServer) worker(ctx context.Context, reqq chan *binReq, writeq chan *wireBuf) {
	for req := range reqq {
		wb := getWireBuf()
		switch req.typ {
		case frameLookupReq:
			t0 := time.Now()
			sample, prec, err := decodeLookupReq(req.payload, &req.arena, s.opts.Layer)
			s.m.DecodeNs.Add(time.Since(t0).Nanoseconds())
			if err != nil {
				wb.b = appendErrFrame(wb.b, req.corr, errCodeBadRequest, err.Error())
				break
			}
			res, err := s.opts.Backend.Lookup(ctx, sample)
			if err != nil {
				wb.b = appendErrFrame(wb.b, req.corr, errCodeOf(err), err.Error())
				break
			}
			t1 := time.Now()
			wb.b = appendLookupResp(wb.b, req.corr, res, prec)
			s.m.EncodeNs.Add(time.Since(t1).Nanoseconds())
		case frameHealthReq:
			data, err := json.Marshal(s.opts.Backend.Health())
			if err != nil {
				wb.b = appendErrFrame(wb.b, req.corr, errCodeInternal, err.Error())
				break
			}
			start := len(wb.b)
			wb.b = beginFrame(wb.b, frameHealthResp, req.corr)
			wb.b = append(wb.b, data...)
			wb.b = endFrame(wb.b, start)
		default:
			wb.b = appendErrFrame(wb.b, req.corr, errCodeBadRequest,
				fmt.Sprintf("unexpected frame type %d", req.typ))
		}
		req.payload = req.payload[:0]
		binReqPool.Put(req)
		writeq <- wb
	}
}

// errCodeOf maps backend errors onto wire error codes. Unavailability
// (draining, closed, router closed) becomes errCodeUnavailable, which
// the client maps back onto ErrNodeDown for the router's failover.
func errCodeOf(err error) byte {
	switch {
	case errors.Is(err, serve.ErrClosed), errors.Is(err, ErrRouterClosed), errors.Is(err, ErrNodeDown):
		return errCodeUnavailable
	case errors.Is(err, serve.ErrOverloaded):
		return errCodeUnavailable
	default:
		return errCodeInternal
	}
}

// connWriter drains writeq with flush coalescing. On a write error it
// closes the conn (unblocking the reader) and keeps draining so
// workers never block on a dead writer.
func (s *BinServer) connWriter(c net.Conn, writeq chan *wireBuf) {
	bw := bufio.NewWriterSize(c, 64<<10)
	failed := false
	writeOne := func(wb *wireBuf) {
		if !failed {
			_, err := bw.Write(wb.b)
			s.m.BytesOut.Add(int64(len(wb.b)))
			s.m.FramesOut.Add(1)
			if err != nil {
				failed = true
				s.m.ConnFails.Add(1)
				c.Close()
			}
		}
		putWireBuf(wb)
	}
	for wb := range writeq {
		writeOne(wb)
	coalesce:
		for {
			select {
			case wb, ok := <-writeq:
				if !ok {
					break coalesce
				}
				writeOne(wb)
			default:
				break coalesce
			}
		}
		if !failed {
			if err := bw.Flush(); err != nil {
				failed = true
				s.m.ConnFails.Add(1)
				c.Close()
			}
		}
	}
	if !failed {
		bw.Flush()
	}
}
