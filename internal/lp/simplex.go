// Package lp is a small, dependency-free linear-programming solver: a dense
// two-phase primal simplex with a Dantzig pivot rule and a Bland fallback
// against cycling. It substitutes for the Gurobi solver the paper uses for
// the bandwidth-aware partitioning LP of §4.3 (DESIGN.md §3); the
// partitioning problems have at most a few thousand variables, well within
// dense-simplex territory.
package lp

import (
	"fmt"
	"math"
)

// Relation is the sense of a constraint.
type Relation int

const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // ==
)

// Status is the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a minimization LP over n nonnegative variables:
//
//	minimize c.x  subject to  A_i.x (<=|>=|==) b_i,  x >= 0.
type Problem struct {
	n    int
	c    []float64
	rows [][]float64
	rel  []Relation
	rhs  []float64
}

// NewProblem creates a problem with n variables and a zero objective.
func NewProblem(n int) (*Problem, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lp: need at least one variable, got %d", n)
	}
	return &Problem{n: n, c: make([]float64, n)}, nil
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the minimization coefficients (copied).
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.n {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), p.n)
	}
	copy(p.c, c)
	return nil
}

// AddConstraint appends coef.x rel rhs (coef copied).
func (p *Problem) AddConstraint(coef []float64, rel Relation, rhs float64) error {
	if len(coef) != p.n {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coef), p.n)
	}
	row := make([]float64, p.n)
	copy(row, coef)
	p.rows = append(p.rows, row)
	p.rel = append(p.rel, rel)
	p.rhs = append(p.rhs, rhs)
	return nil
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve runs the two-phase simplex and returns the solution.
func Solve(p *Problem) Solution {
	m := len(p.rows)
	if m == 0 {
		// Unconstrained: x = 0 is optimal for c >= 0, otherwise unbounded.
		for _, ci := range p.c {
			if ci < -eps {
				return Solution{Status: Unbounded}
			}
		}
		return Solution{Status: Optimal, X: make([]float64, p.n)}
	}

	// Build the standard-form tableau: variables, then one slack/surplus
	// per inequality, then artificials where needed.
	nSlack := 0
	for _, r := range p.rel {
		if r != EQ {
			nSlack++
		}
	}
	// Count artificials: GE and EQ rows always need one; LE rows with a
	// negative rhs flip into GE and need one too. Normalize first.
	rows := make([][]float64, m)
	rel := make([]Relation, m)
	rhs := make([]float64, m)
	for i := range p.rows {
		rows[i] = append([]float64(nil), p.rows[i]...)
		rel[i] = p.rel[i]
		rhs[i] = p.rhs[i]
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
			switch rel[i] {
			case LE:
				rel[i] = GE
			case GE:
				rel[i] = LE
			}
		}
	}
	nArt := 0
	for _, r := range rel {
		if r != LE {
			nArt++
		}
	}

	total := p.n + nSlack + nArt
	t := newTableau(m, total)
	basis := make([]int, m)
	slackCol := p.n
	artCol := p.n + nSlack
	for i := 0; i < m; i++ {
		copy(t.a[i], rows[i])
		t.b[i] = rhs[i]
		switch rel[i] {
		case LE:
			t.a[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, total)
		for j := p.n + nSlack; j < total; j++ {
			phase1[j] = 1
		}
		status := t.optimize(phase1, basis)
		if status != Optimal {
			return Solution{Status: status}
		}
		if t.objective(phase1, basis) > 1e-6 {
			return Solution{Status: Infeasible}
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if basis[i] >= p.n+nSlack {
				pivoted := false
				for j := 0; j < p.n+nSlack; j++ {
					if math.Abs(t.a[i][j]) > eps {
						t.pivot(i, j, basis)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row: the artificial stays at zero;
					// harmless as long as it never re-enters, which
					// the phase-2 objective guarantees below.
					continue
				}
			}
		}
	}

	// Phase 2: original objective, artificials forbidden from entering.
	phase2 := make([]float64, total)
	copy(phase2, p.c)
	for j := p.n + nSlack; j < total; j++ {
		phase2[j] = math.Inf(1) // sentinel: optimize() skips these columns
	}
	status := t.optimize(phase2, basis)
	if status != Optimal {
		return Solution{Status: status}
	}

	x := make([]float64, p.n)
	for i, bj := range basis {
		if bj < p.n {
			x[bj] = t.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.c[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}
}

// tableau is the dense simplex working state.
type tableau struct {
	m, n int
	a    [][]float64
	b    []float64
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n, a: make([][]float64, m), b: make([]float64, m)}
	for i := range t.a {
		t.a[i] = make([]float64, n)
	}
	return t
}

// objective evaluates c over the current basic solution.
func (t *tableau) objective(c []float64, basis []int) float64 {
	v := 0.0
	for i, bj := range basis {
		if !math.IsInf(c[bj], 1) {
			v += c[bj] * t.b[i]
		}
	}
	return v
}

// optimize runs primal simplex iterations for objective c (minimize) from
// the current basis. Columns with +Inf cost never enter.
func (t *tableau) optimize(c []float64, basis []int) Status {
	maxIter := 50 * (t.m + t.n)
	blandAfter := 10 * (t.m + t.n)

	// reduced[j] = c_j - c_B . B^-1 A_j, computed incrementally would be
	// faster; recomputed per iteration for clarity and robustness.
	y := make([]float64, t.m) // c_B in row order
	for iter := 0; iter < maxIter; iter++ {
		for i, bj := range basis {
			if math.IsInf(c[bj], 1) {
				y[i] = 0 // artificial stuck at zero in a redundant row
			} else {
				y[i] = c[bj]
			}
		}
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < t.n; j++ {
			if math.IsInf(c[j], 1) {
				continue
			}
			red := c[j]
			for i := 0; i < t.m; i++ {
				if y[i] != 0 {
					red -= y[i] * t.a[i][j]
				}
			}
			if iter >= blandAfter {
				// Bland: first improving column.
				if red < -eps {
					enter = j
					break
				}
			} else if red < best {
				best = red
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Leaving row: min ratio test (Bland ties by smallest basis index).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && leave >= 0 && basis[i] < basis[leave]) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter, basis)
	}
	return IterationLimit
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int, basis []int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	for j := 0; j < t.n; j++ {
		t.a[leave][j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[leave][j]
		}
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -1e-12 {
			t.b[i] = 0
		}
	}
	basis[leave] = enter
}
