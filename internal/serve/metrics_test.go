package serve

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistPercentiles(t *testing.T) {
	h := NewHist()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1000 {
		t.Errorf("max = %d", s.Max)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s = %.1f, want within 10%% of %.0f", name, got, want)
		}
	}
	check("p50", s.P50, 500)
	check("p95", s.P95, 950)
	check("p99", s.P99, 990)
	check("mean", s.Mean, 500.5)
}

func TestHistEdgeCases(t *testing.T) {
	h := NewHist()
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	h.Record(-5) // clamps to zero
	h.Record(0)
	h.Record(math.MaxInt64)
	s := h.Snapshot()
	if s.Count != 3 || s.Max != math.MaxInt64 {
		t.Errorf("snapshot: %+v", s)
	}
}

func TestHistConcurrent(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 100, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b <= prev {
			t.Fatalf("bucketOf(%d) = %d, not increasing past %d", v, b, prev)
		}
		if mid := bucketMid(b); v >= 16 && math.Abs(mid-float64(v))/float64(v) > 0.07 {
			t.Errorf("bucketMid(%d) = %.0f for value %d: error > 7%%", b, mid, v)
		}
		prev = b
	}
}

func TestExpoFormat(t *testing.T) {
	m := NewMetrics()
	m.Admitted.Add(3)
	m.E2E.Record(1e6)
	out := m.Snapshot().Expo()
	for _, want := range []string{
		"recross_requests_admitted_total 3",
		"recross_e2e_seconds_p50",
		"recross_service_cycles_p99",
		"# TYPE recross_batches_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]OverloadPolicy{"block": Block, "shed": Shed} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParsePolicy("drop"); err == nil {
		t.Error("bogus policy parsed")
	}
}
