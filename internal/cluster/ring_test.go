package cluster

import (
	"fmt"
	"testing"

	"recross/internal/trace"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0, RingOptions{}); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewRing(2, RingOptions{Weights: []float64{1}}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := NewRing(2, RingOptions{Weights: []float64{1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewRing(2, RingOptions{VNodes: -1}); err == nil {
		t.Error("negative vnodes accepted")
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r, err := NewRing(5, RingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		succ := r.Successors(fmt.Sprintf("t%d", k), 3)
		if len(succ) != 3 {
			t.Fatalf("key %d: %d successors, want 3", k, len(succ))
		}
		seen := map[int]bool{}
		for _, n := range succ {
			if n < 0 || n >= 5 {
				t.Fatalf("key %d: node %d out of range", k, n)
			}
			if seen[n] {
				t.Fatalf("key %d: duplicate node %d in %v", k, n, succ)
			}
			seen[n] = true
		}
	}
	// k clamps to the node count and to at least 1.
	if got := r.Successors("x", 99); len(got) != 5 {
		t.Errorf("k=99 gave %d successors, want 5", len(got))
	}
	if got := r.Successors("x", 0); len(got) != 1 {
		t.Errorf("k=0 gave %d successors, want 1", len(got))
	}
}

func TestRingDeterminism(t *testing.T) {
	a, _ := NewRing(4, RingOptions{Seed: 7})
	b, _ := NewRing(4, RingOptions{Seed: 7})
	c, _ := NewRing(4, RingOptions{Seed: 8})
	differs := false
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("t%d", k)
		sa, sb, sc := a.Successors(key, 2), b.Successors(key, 2), c.Successors(key, 2)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %s: same seed disagrees: %v vs %v", key, sa, sb)
			}
			if sa[i] != sc[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical placements for 50 keys")
	}
}

// TestRingWeighted: a node with triple weight owns roughly triple the
// arc, so it is the primary for roughly 3/5 of keys.
func TestRingWeighted(t *testing.T) {
	r, err := NewRing(3, RingOptions{Weights: []float64{1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const keys = 3000
	for k := 0; k < keys; k++ {
		counts[r.Successors(fmt.Sprintf("t%d", k), 1)[0]]++
	}
	share := float64(counts[2]) / keys
	if share < 0.45 || share > 0.75 {
		t.Errorf("weight-3 node owns %.2f of keys, want ~0.60 (counts %v)", share, counts)
	}
	if counts[2] <= counts[0] || counts[2] <= counts[1] {
		t.Errorf("weight-3 node not the biggest owner: %v", counts)
	}
}

// TestRingPlacementBalance bounds the table-bytes skew (max/mean node
// bytes) of ring placements across 100 independent seeds: no seed may
// be pathological, and the average ring must be reasonably flat. Bounds
// are calibrated against the observed distribution with headroom.
func TestRingPlacementBalance(t *testing.T) {
	spec := trace.Uniform(64, 2000, 8, 2)
	nodes := []string{"a", "b", "c", "d"}
	var sum, worst float64
	const seeds = 100
	for seed := 0; seed < seeds; seed++ {
		p, err := RingPlacement(len(spec.Tables), nodes, PlacementOptions{Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		skew := p.BytesSkew(spec)
		if skew > worst {
			worst = skew
		}
		sum += skew
		if skew > 1.8 {
			t.Errorf("seed %d: skew %.3f > 1.8", seed, skew)
		}
		// Every node must own at least one table: a 64-table ring over 4
		// nodes leaving a node empty would be a hashing bug.
		for i := range nodes {
			owns := 0
			for tb := range p.Replicas {
				if p.Holds(i, tb) {
					owns++
				}
			}
			if owns == 0 {
				t.Errorf("seed %d: node %d owns no tables", seed, i)
			}
		}
	}
	mean := sum / seeds
	t.Logf("ring skew over %d seeds: mean %.3f, worst %.3f", seeds, mean, worst)
	if mean > 1.4 {
		t.Errorf("mean skew %.3f > 1.4", mean)
	}
}
