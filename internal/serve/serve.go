// Package serve turns the batch-oriented simulator into a long-running
// embedding-inference service, the deployment model RecNMP and RecSSD
// evaluate recommendation accelerators under: concurrent single-sample
// query streams, SLA tail latency, throughput under load.
//
// The layer has four parts:
//
//   - a dynamic batcher: incoming single-sample requests queue per model
//     and coalesce into batches, flushing when MaxBatch samples are
//     waiting or MaxDelay has elapsed since the batch opened — the
//     standard latency/throughput knob of inference serving;
//   - a sharded worker pool: N replicas of an arch.System (each its own
//     simulated memory channel/device), fed by least-outstanding-work
//     dispatch, with results demultiplexed back to per-request futures;
//   - admission control: a bounded queue with a configurable overload
//     policy (Block until space, or Shed with ErrOverloaded), and
//     per-request context deadlines honored at dequeue time;
//   - a metrics registry: lock-cheap counters and streaming histograms
//     (queue wait, batch formation, simulated service cycles, end-to-end
//     wall time) exposing p50/p95/p99 snapshots.
//
// An arch.System is single-goroutine (see the recross.System docs); the
// pool gives each replica exclusively to one worker goroutine, which is
// what makes the whole server safe for arbitrary concurrent Lookup calls.
// The functional embedding.Layer is shared: procedural tables are
// immutable and safe for concurrent reads.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"recross/internal/arch"
	"recross/internal/embedding"
	"recross/internal/sim"
	"recross/internal/trace"
)

// Overload errors returned by Lookup.
var (
	// ErrOverloaded reports that the admission queue was full under the
	// Shed policy.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrClosed reports that the server is draining or closed.
	ErrClosed = errors.New("serve: server closed")
)

// OverloadPolicy selects what admission does when the queue is full.
type OverloadPolicy int

const (
	// Block waits for queue space (or the request context's cancellation).
	Block OverloadPolicy = iota
	// Shed fails fast with ErrOverloaded.
	Shed
)

func (p OverloadPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses "block" or "shed".
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "shed":
		return Shed, nil
	default:
		return 0, fmt.Errorf("serve: unknown overload policy %q", s)
	}
}

// Options configures New.
type Options struct {
	// Systems are the replica timing models, one per pool worker
	// (required, at least one). Each must be used by no one else: the
	// worker owns it exclusively.
	Systems []arch.System
	// Layer is the shared functional embedding layer producing the actual
	// result vectors (required). It must be safe for concurrent reads
	// (procedural layers are).
	Layer *embedding.Layer
	// MaxBatch is the coalescing limit in samples (default 32).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch may wait for
	// co-riders before the batch flushes regardless (default 1ms).
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue in requests
	// (default 4*MaxBatch).
	QueueDepth int
	// Policy selects the overload behaviour (default Block).
	Policy OverloadPolicy
}

func (o Options) withDefaults() Options {
	if o.MaxBatch == 0 {
		o.MaxBatch = 32
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = time.Millisecond
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	return o
}

// Result is one answered request.
type Result struct {
	// Vectors holds the pooled embedding vector of each op of the sample,
	// bit-identical to embedding.Layer.Reduce on the same op.
	Vectors [][]float32
	// BatchSize is how many samples were coalesced into the simulated
	// batch that served this request.
	BatchSize int
	// ServiceCycles is the simulated DRAM-cycle latency of that batch.
	ServiceCycles sim.Cycle
	// Replica is the pool worker that served the batch.
	Replica int
	// QueueWait is the wall time spent waiting in the admission queue.
	QueueWait time.Duration
	// Total is the end-to-end wall time from admission to completion.
	Total time.Duration
}

// outcome resolves one request's future.
type outcome struct {
	res *Result
	err error
}

// request is one queued lookup.
type request struct {
	ctx    context.Context
	sample trace.Sample
	enq    time.Time    // admission time
	deq    time.Time    // dequeue time, set by the batcher
	done   chan outcome // buffered(1): workers never block completing it
}

func (r *request) complete(o outcome) { r.done <- o }

// Server is the embedding-inference front-end. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	opts     Options
	metrics  *Metrics
	in       chan *request
	replicas []*replica

	mu     sync.RWMutex // guards closed against in-flight enqueues
	closed bool

	dispatcherDone chan struct{}
	workers        sync.WaitGroup
}

// New builds and starts a server: one dispatcher goroutine plus one
// worker goroutine per replica system.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if len(opts.Systems) == 0 {
		return nil, errors.New("serve: at least one replica system required")
	}
	if opts.Layer == nil {
		return nil, errors.New("serve: functional layer required")
	}
	if opts.MaxBatch < 1 {
		return nil, fmt.Errorf("serve: MaxBatch %d < 1", opts.MaxBatch)
	}
	if opts.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: QueueDepth %d < 1", opts.QueueDepth)
	}
	if opts.Policy != Block && opts.Policy != Shed {
		return nil, fmt.Errorf("serve: unknown overload policy %d", opts.Policy)
	}
	s := &Server{
		opts:           opts,
		metrics:        NewMetrics(),
		in:             make(chan *request, opts.QueueDepth),
		dispatcherDone: make(chan struct{}),
	}
	for i, sys := range opts.Systems {
		rep := newReplica(i, sys)
		s.replicas = append(s.replicas, rep)
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			rep.run(s)
		}()
	}
	go s.dispatch()
	return s, nil
}

// Replicas returns the pool width.
func (s *Server) Replicas() int { return len(s.replicas) }

// Metrics returns the live registry (snapshot it for reporting).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Lookup serves one sample's embedding work: the sample is queued,
// coalesced into a batch, run through a replica's timing model, and its
// functional result vectors returned. ctx cancellation is honored while
// blocked at admission and while queued (at dequeue time); once the
// sample is in a running batch the result is computed but discarded if
// the caller has gone.
func (s *Server) Lookup(ctx context.Context, sample trace.Sample) (*Result, error) {
	if len(sample) == 0 {
		return nil, errors.New("serve: empty sample")
	}
	// Enforce the trace.Op shape contract before the sample can reach a
	// worker: Systems assume len(Weights) == len(Indices) (weights are
	// ignored for Sum/Max but must be present), and a violation would
	// panic a replica goroutine and take the whole server down.
	for i, op := range sample {
		if len(op.Indices) == 0 {
			return nil, fmt.Errorf("serve: op %d has no indices", i)
		}
		if len(op.Weights) != len(op.Indices) {
			return nil, fmt.Errorf("serve: op %d has %d weights for %d indices",
				i, len(op.Weights), len(op.Indices))
		}
	}
	r := &request{ctx: ctx, sample: sample, enq: time.Now(), done: make(chan outcome, 1)}

	// The read lock spans the enqueue so Close (write lock) cannot close
	// s.in while an admission send is in flight.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	switch s.opts.Policy {
	case Shed:
		select {
		case s.in <- r:
		default:
			s.mu.RUnlock()
			s.metrics.Shed.Add(1)
			return nil, ErrOverloaded
		}
	default: // Block
		select {
		case s.in <- r:
		case <-ctx.Done():
			s.mu.RUnlock()
			s.metrics.Canceled.Add(1)
			return nil, ctx.Err()
		}
	}
	s.mu.RUnlock()
	s.metrics.Admitted.Add(1)

	select {
	case o := <-r.done:
		return o.res, o.err
	case <-ctx.Done():
		// Still queued (will be dropped at dequeue) or already running
		// (result discarded; the buffered done channel frees the worker).
		return nil, ctx.Err()
	}
}

// Close gracefully drains the server: admission stops with ErrClosed,
// every already-admitted request is batched and answered, and all
// goroutines exit before Close returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	close(s.in)        // dispatcher drains the queue, flushes, exits
	<-s.dispatcherDone // all batches handed to workers
	for _, rep := range s.replicas {
		close(rep.work)
	}
	s.workers.Wait()
	return nil
}
