package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/embedding"
	"recross/internal/trace"
)

// namedFake wraps fakeSys with a distinguishable name, so an applied
// update is observable through the health report's system name.
type namedFake struct {
	fakeSys
	name string
}

func (n *namedFake) Name() string { return n.name }

func TestStageUpdateAppliesAtBatchBoundary(t *testing.T) {
	old := []*namedFake{{name: "v1-a"}, {name: "v1-b"}}
	s := newTestServer(t, Options{
		Systems: []arch.System{old[0], old[1]}, MaxBatch: 1, MaxDelay: time.Microsecond,
	})
	defer s.Close()

	samples := testSamples(t, 8)
	if _, err := s.Lookup(context.Background(), samples[0]); err != nil {
		t.Fatal(err)
	}

	// The replacement systems share a gate: the first post-update batch
	// parks inside v2.Run, holding that replica's outstanding count up so
	// least-outstanding dispatch provably routes the next single to the
	// OTHER replica — both replicas cross a batch boundary, determinism
	// without a timing loop.
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	var applied atomic.Int64
	n := s.StageUpdate(func(id int, sys arch.System) (arch.System, error) {
		applied.Add(1)
		return &namedFake{fakeSys: fakeSys{gate: gate, started: started}, name: "v2"}, nil
	})
	if n != 2 {
		t.Fatalf("staged on %d replicas, want 2", n)
	}
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(sample trace.Sample) {
			_, err := s.Lookup(context.Background(), sample)
			errc <- err
		}(samples[i])
		<-started // the replica applied the update and is parked in v2.Run
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if applied.Load() != 2 {
		t.Fatalf("update applied on %d replicas, want 2", applied.Load())
	}
	m := s.Metrics()
	if m.UpdatesStaged.Load() != 2 || m.UpdatesApplied.Load() != 2 || m.UpdateFailures.Load() != 0 {
		t.Fatalf("update counters staged=%d applied=%d failed=%d",
			m.UpdatesStaged.Load(), m.UpdatesApplied.Load(), m.UpdateFailures.Load())
	}
	// The swap must be visible in the health report's system names.
	seen := 0
	for _, r := range s.Health().Replicas {
		if r.System == "v2" {
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("%d replicas report the new system name, want 2", seen)
	}
}

func TestStageUpdateFailureKeepsOldSystem(t *testing.T) {
	s := newTestServer(t, Options{
		Systems: []arch.System{&namedFake{name: "v1"}}, MaxBatch: 1, MaxDelay: time.Microsecond,
	})
	defer s.Close()
	s.StageUpdate(func(id int, sys arch.System) (arch.System, error) {
		return nil, errors.New("synthetic update failure")
	})
	samples := testSamples(t, 4)
	for i := 0; i < 3; i++ {
		if _, err := s.Lookup(context.Background(), samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().UpdateFailures.Load(); got != 1 {
		t.Fatalf("UpdateFailures = %d, want 1", got)
	}
	if got := s.Metrics().UpdatesApplied.Load(); got != 0 {
		t.Fatalf("UpdatesApplied = %d, want 0", got)
	}
	for _, r := range s.Health().Replicas {
		if r.System != "v1" {
			t.Fatalf("failed update replaced the system: %q", r.System)
		}
	}
	// The replica must still serve.
	if _, err := s.Lookup(context.Background(), samples[3]); err != nil {
		t.Fatalf("replica broken after failed update: %v", err)
	}
}

func TestStageUpdateLatestWins(t *testing.T) {
	gate := make(chan struct{})
	fs := &fakeSys{gate: gate, started: make(chan struct{}, 8)}
	s := newTestServer(t, Options{Systems: []arch.System{fs}, MaxBatch: 1, MaxDelay: time.Microsecond})
	defer s.Close()

	// Park the worker inside a batch so staged updates pile up.
	samples := testSamples(t, 3)
	res1 := make(chan error, 1)
	go func() {
		_, err := s.Lookup(context.Background(), samples[0])
		res1 <- err
	}()
	<-fs.started // worker is inside Run now

	var got atomic.Int64
	s.StageUpdate(func(id int, sys arch.System) (arch.System, error) {
		got.Store(1)
		return sys, nil
	})
	s.StageUpdate(func(id int, sys arch.System) (arch.System, error) {
		got.Store(2)
		return sys, nil
	})
	close(gate)
	if err := <-res1; err != nil {
		t.Fatal(err)
	}
	// Next batch applies exactly the latest staged update.
	if _, err := s.Lookup(context.Background(), samples[1]); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 2 {
		t.Fatalf("applied update %d, want the latest (2)", got.Load())
	}
	if applied := s.Metrics().UpdatesApplied.Load(); applied != 1 {
		t.Fatalf("UpdatesApplied = %d, want 1 (latest wins, earlier replaced)", applied)
	}
}

func TestObserverSeesAdmittedSamples(t *testing.T) {
	var observed atomic.Int64
	s := newTestServer(t, Options{
		Systems: []arch.System{&fakeSys{}},
		Observer: func(sample trace.Sample) {
			observed.Add(int64(len(sample)))
		},
	})
	defer s.Close()
	samples := testSamples(t, 5)
	var wantOps int64
	for _, sample := range samples {
		if _, err := s.Lookup(context.Background(), sample); err != nil {
			t.Fatal(err)
		}
		wantOps += int64(len(sample))
	}
	if observed.Load() != wantOps {
		t.Fatalf("observer saw %d ops, want %d", observed.Load(), wantOps)
	}
}

func TestRegisterExpoAppendsToMetrics(t *testing.T) {
	s := newTestServer(t, Options{Systems: []arch.System{&fakeSys{}}})
	defer s.Close()
	s.RegisterExpo(func() string { return "# TYPE custom_series gauge\ncustom_series 7\n" })
	s.RegisterExpo(nil) // must be ignored
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "custom_series 7") {
		t.Fatalf("registered exposition missing from /metrics:\n%s", body)
	}
	if !strings.Contains(string(body), "recross_updates_applied_total") {
		t.Fatalf("update counters missing from /metrics:\n%s", body)
	}
}

// TestLoadgenShiftsHotSet: the shift mode must change which rows the
// clients draw without disturbing the request flow.
func TestLoadgenShiftsHotSet(t *testing.T) {
	spec := trace.ModelSpec{Name: "shift-loadgen", Tables: []trace.TableSpec{
		{Name: "shift-t0", Rows: 2000, VecLen: 8, Pooling: 2, Prob: 1, Skew: 1.3},
	}}
	layer, err := embedding.NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{
		Systems: []arch.System{&fakeSys{}, &fakeSys{}},
		Layer:   layer,
	})
	defer s.Close()
	rep, err := Loadgen(s, LoadgenOptions{
		Spec:      spec,
		Clients:   2,
		Duration:  300 * time.Millisecond,
		ShiftAt:   150 * time.Millisecond,
		ShiftSalt: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen with shift completed no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen with shift saw %d errors", rep.Errors)
	}
}
