// The coldtier example demonstrates the flash-backed cold tier end to end
// on a table set ~4x larger than the DRAM it is allowed to occupy:
//
//  1. The partitioner places the tables across FOUR levels — the R/G/B
//     DRAM regions clamped to a residency budget, plus the flash-backed
//     cold region priced by the device timing model — where the
//     DRAM-only configuration cannot fit at all.
//  2. A skewed trace serves from the store: hot rows from DRAM, the cold
//     tail through the page-granular backing file behind the host page
//     cache (watch the recross_coldstore_* counters).
//  3. A hot-set permutation makes yesterday's DRAM rows cold and flash
//     rows hot; the adaptive controller's gate adopts a repartition that
//     promotes newly-hot rows out of flash and demotes cooled ones in,
//     and the store repacks its pages from the sketch counts.
//  4. Answers stay bit-identical to an all-DRAM functional reference
//     throughout — the tiers move rows, never values.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"recross"
)

const budgetBytes = 5 << 20

func main() {
	spec := recross.ModelSpec{Name: "coldtier-demo", Tables: []recross.TableSpec{
		{Name: "big-a", Rows: 60000, VecLen: 64, Pooling: 48, Prob: 1, Skew: 1.3},
		{Name: "big-b", Rows: 30000, VecLen: 64, Pooling: 32, Prob: 1, Skew: 1.2},
	}}
	var totalBytes int64
	for _, t := range spec.Tables {
		totalBytes += t.Rows * int64(t.VecLen) * 4
	}
	cfg := recross.Config{Spec: spec, ProfileSamples: 1500, Batch: 32, Cold: &recross.ColdTierConfig{
		CapBytes:            64 << 20,
		ResidentBudgetBytes: budgetBytes,
		InStorageReduce:     true,
	}}

	fmt.Printf("table set: %.1f MB; DRAM residency budget: %.1f MB (%.1fx oversubscribed)\n",
		float64(totalBytes)/(1<<20), float64(budgetBytes)/(1<<20), float64(totalBytes)/float64(budgetBytes))

	// Phase 1: placement across the four levels.
	sys, err := recross.NewSystem(recross.ReCross, cfg)
	check(err)
	rc := sys.(*recross.ReCrossSystem)
	pl := rc.Placement()
	used := pl.UsedSlots()
	fmt.Println("\nphase 1: tier occupancy")
	for j, r := range pl.Regions() {
		bytes := used[j] * pl.VecBytes()
		fmt.Printf("  region %-2s %-5s %8.2f MB used / %8.2f MB cap  (bw %6.1f B/cyc)\n",
			r.Name, r.Level, float64(bytes)/(1<<20), float64(r.CapBytes)/(1<<20), r.BW)
	}

	fmt.Println("\nbuilding a 2-replica adaptive pool with the cold tier attached...")
	srv, ctrl, err := recross.NewAdaptiveServer(recross.ReCross, cfg, 2, recross.ServeOptions{
		MaxBatch: 32,
		MaxDelay: 200 * time.Microsecond,
	}, recross.AdaptOptions{
		Threshold:       0.12,
		Windows:         2,
		Cooldown:        time.Millisecond, // demo: adopt as soon as the gate clears
		MinGain:         0.02,
		AmortizeBatches: 1_000_000,
		MinSamples:      400,
	})
	check(err)
	defer srv.Close()

	ref, err := recross.NewLayer(spec) // all-DRAM functional reference
	check(err)
	gen, err := recross.NewGenerator(spec, 42)
	check(err)

	// Phase 2: stationary skewed traffic through the cold-backed data
	// plane.
	fmt.Println("\nphase 2: stationary traffic (hot rows DRAM, cold tail flash)")
	for w := 0; w < 3; w++ {
		serveWindow(srv, gen, 400)
		if res := ctrl.Step(); res.Adopted {
			fmt.Println("  unexpected adoption on stationary traffic")
			os.Exit(1)
		}
	}
	printColdstore(srv, "  ")

	// Phase 3: permute the hot set — flash rows heat up, DRAM rows cool.
	fmt.Println("\nphase 3: hot-set permutation; waiting for the gate to adopt")
	check(gen.ShiftHotSet(424242))
	adopted := false
	for w := 0; w < 10 && !adopted; w++ {
		serveWindow(srv, gen, 400)
		res := ctrl.Step()
		fmt.Printf("  window %d: drift score %.3f", w, res.Drift.Score)
		switch {
		case res.Adopted:
			fmt.Printf("  -> adopted (%.2fx predicted)\n", res.Plan.Speedup)
			adopted = true
		case res.Replanned && res.Plan != nil:
			fmt.Printf("  -> replanned, gate held (%.2fx)\n", res.Plan.Speedup)
		default:
			fmt.Println()
		}
	}
	if !adopted {
		fmt.Println("no adoption; try more windows or a lower MinGain")
		os.Exit(1)
	}
	m := ctrl.Metrics()
	fmt.Printf("  boundary crossings: %d rows promoted flash->DRAM, %d rows demoted DRAM->flash\n",
		m.ColdPromotedRows, m.ColdDemotedRows)

	// Phase 4: tiering must be invisible to correctness.
	fmt.Println("\nphase 4: verifying answers against the all-DRAM reference")
	for i := 0; i < 50; i++ {
		sample := gen.Sample()
		res, err := srv.Lookup(context.Background(), sample)
		check(err)
		want, err := ref.ReduceSample(sample)
		check(err)
		for k := range want {
			if !recross.AlmostEqual(res.Vectors[k], want[k], 0) {
				fmt.Println("MISMATCH against the all-DRAM reference")
				os.Exit(1)
			}
		}
	}
	fmt.Println("  50/50 samples bit-identical")
	printColdstore(srv, "  ")
}

// serveWindow pushes n samples through the server; the admission path
// feeds the controller's frequency sketches via the Observer tap.
func serveWindow(srv *recross.Server, gen *recross.Generator, n int) {
	for i := 0; i < n; i++ {
		if _, err := srv.Lookup(context.Background(), gen.Sample()); err != nil {
			check(err)
		}
	}
}

// printColdstore scrapes the server's /metrics endpoint — the cold tier's
// real observable surface — and prints the recross_coldstore_* counters.
func printColdstore(srv *recross.Server, indent string) {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	check(err)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	check(err)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "recross_coldstore_") {
			fmt.Println(indent + line)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "coldtier:", err)
		os.Exit(1)
	}
}
