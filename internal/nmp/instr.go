// Package nmp implements ReCross's near-memory-processing machinery: the
// compressed 82-bit NMP instruction of §4.2 (bit-exact encoder/decoder),
// the processing elements of §4.1 (rank-, bank-group- and bank-level PEs
// built around the weighted-sum computation unit of Fig. 7(f)), and the
// rank summarizer of Fig. 7(b).
//
// Functional behaviour lives here; timing is modelled by internal/dram and
// internal/memctrl, which the architecture layers (internal/baseline,
// internal/core) combine with this package.
package nmp

import (
	"fmt"
	"math"
)

// Opcode selects the reduction operation (3-bit field).
type Opcode uint8

const (
	// OpSum is plain element-wise summation.
	OpSum Opcode = iota
	// OpWeightedSum multiplies each gathered vector by its FP32 weight
	// before accumulation (the paper's default, as in RecNMP/TRiM).
	OpWeightedSum
	// OpMax is element-wise max pooling.
	OpMax
)

// DDRCmd is the DRAM command an instruction carries (3-bit field).
type DDRCmd uint8

const (
	CmdACT DDRCmd = iota
	CmdRD
	CmdPRE
)

// Instr is the decoded form of one 82-bit NMP instruction (§4.2). Field
// widths: opcode 3, DDR cmd 3, addr 34, vsize 3, weight 32, batchTag 1,
// lastTag 1, BGTag 1, bankTag 1 (79 bits), plus 3 reserved bits of padding
// to the 82-bit figure the paper quotes.
type Instr struct {
	Opcode Opcode
	Cmd    DDRCmd
	// Addr is the 34-bit physical address of the target embedding vector.
	Addr uint64
	// VSizeLog2 encodes the number of DRAM reads per embedding vector as a
	// power of two (0 => 1 burst ... 7 => 128 bursts).
	VSizeLog2 uint8
	// Weight is the FP32 coefficient for weighted summation.
	Weight float32
	// BatchTag identifies the embedding operation within the in-flight
	// window; instructions of one operation carry the same tag.
	BatchTag bool
	// LastTag marks the final instruction of a batch: the PEs may flush
	// their reduced results to the host.
	LastTag bool
	// BGTag is set when the vector lives outside the R-region, i.e. the
	// instruction must be forwarded below the rank-level PE.
	BGTag bool
	// BankTag is set (only with BGTag) when the vector belongs to a
	// bank-level PE rather than the bank-group PE.
	BankTag bool
}

// Bursts returns the number of DRAM read bursts per vector.
func (in Instr) Bursts() int { return 1 << in.VSizeLog2 }

// Level returns the NMP level the instruction is processed at, following
// the tag semantics of §4.1: BGTag clear => rank PE; BGTag set and bankTag
// clear => bank-group PE; both set => bank PE.
func (in Instr) Level() Level {
	switch {
	case !in.BGTag:
		return LevelRank
	case !in.BankTag:
		return LevelBankGroup
	default:
		return LevelBank
	}
}

// Field widths of the packed instruction.
const (
	opcodeBits = 3
	cmdBits    = 3
	addrBits   = 34
	vsizeBits  = 3
	weightBits = 32
	tagBits    = 4 // batch, last, BG, bank
	padBits    = 3

	// InstrBits is the total packed width (82, matching §4.2).
	InstrBits = opcodeBits + cmdBits + addrBits + vsizeBits + weightBits + tagBits + padBits
)

// Packed is the wire form of an instruction: 82 bits little-endian in the
// low bits of [lo, hi].
type Packed struct {
	Lo uint64
	Hi uint64 // bits 64..81 in the low 18 bits
}

// Encode packs the instruction. It returns an error if any field exceeds
// its width.
func Encode(in Instr) (Packed, error) {
	if in.Opcode >= 1<<opcodeBits {
		return Packed{}, fmt.Errorf("nmp: opcode %d exceeds %d bits", in.Opcode, opcodeBits)
	}
	if in.Cmd >= 1<<cmdBits {
		return Packed{}, fmt.Errorf("nmp: DDR cmd %d exceeds %d bits", in.Cmd, cmdBits)
	}
	if in.Addr >= 1<<addrBits {
		return Packed{}, fmt.Errorf("nmp: addr %#x exceeds %d bits", in.Addr, addrBits)
	}
	if in.VSizeLog2 >= 1<<vsizeBits {
		return Packed{}, fmt.Errorf("nmp: vsize %d exceeds %d bits", in.VSizeLog2, vsizeBits)
	}
	if in.BankTag && !in.BGTag {
		return Packed{}, fmt.Errorf("nmp: bankTag requires BGTag (§4.2)")
	}

	var bits uint128
	pos := 0
	put := func(v uint64, w int) {
		bits.or(v, pos)
		pos += w
	}
	put(uint64(in.Opcode), opcodeBits)
	put(uint64(in.Cmd), cmdBits)
	put(in.Addr, addrBits)
	put(uint64(in.VSizeLog2), vsizeBits)
	put(uint64(math.Float32bits(in.Weight)), weightBits)
	put(b2u(in.BatchTag), 1)
	put(b2u(in.LastTag), 1)
	put(b2u(in.BGTag), 1)
	put(b2u(in.BankTag), 1)
	put(0, padBits)
	return Packed{Lo: bits.lo, Hi: bits.hi}, nil
}

// Decode unpacks a wire instruction. It returns an error if the padding or
// the unused high bits are nonzero (corrupt instruction).
func Decode(p Packed) (Instr, error) {
	if p.Hi>>(InstrBits-64) != 0 {
		return Instr{}, fmt.Errorf("nmp: bits beyond %d set", InstrBits)
	}
	bits := uint128{lo: p.Lo, hi: p.Hi}
	pos := 0
	get := func(w int) uint64 {
		v := bits.extract(pos, w)
		pos += w
		return v
	}
	var in Instr
	in.Opcode = Opcode(get(opcodeBits))
	in.Cmd = DDRCmd(get(cmdBits))
	in.Addr = get(addrBits)
	in.VSizeLog2 = uint8(get(vsizeBits))
	in.Weight = math.Float32frombits(uint32(get(weightBits)))
	in.BatchTag = get(1) != 0
	in.LastTag = get(1) != 0
	in.BGTag = get(1) != 0
	in.BankTag = get(1) != 0
	if get(padBits) != 0 {
		return Instr{}, fmt.Errorf("nmp: nonzero padding")
	}
	if in.BankTag && !in.BGTag {
		return Instr{}, fmt.Errorf("nmp: bankTag without BGTag")
	}
	return in, nil
}

// uint128 is a minimal 128-bit accumulator for the packed layout.
type uint128 struct{ lo, hi uint64 }

func (u *uint128) or(v uint64, pos int) {
	if pos < 64 {
		u.lo |= v << pos
		if pos > 0 && 64-pos < 64 {
			u.hi |= v >> (64 - pos)
		}
	} else {
		u.hi |= v << (pos - 64)
	}
}

func (u *uint128) extract(pos, w int) uint64 {
	var v uint64
	if pos < 64 {
		v = u.lo >> pos
		if pos+w > 64 {
			v |= u.hi << (64 - pos)
		}
	} else {
		v = u.hi >> (pos - 64)
	}
	if w < 64 {
		v &= (1 << w) - 1
	}
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
