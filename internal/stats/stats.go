// Package stats provides the statistical utilities shared by the workload
// characterisation and the experiment harness: frequency histograms,
// cumulative-access curves (paper Fig. 3), load-imbalance ratios (paper
// Figs. 4 and 13), and small numeric helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of integer keys (e.g. embedding row indices,
// or bank IDs). The zero value is ready to use.
type Histogram struct {
	counts map[int64]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int64)}
}

// Add increments the count of key by one.
func (h *Histogram) Add(key int64) { h.AddN(key, 1) }

// AddN increments the count of key by n.
func (h *Histogram) AddN(key int64, n int64) {
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	h.counts[key] += n
	h.total += n
}

// Total returns the sum of all counts.
func (h *Histogram) Total() int64 { return h.total }

// Distinct returns the number of distinct keys observed.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Count returns the count recorded for key.
func (h *Histogram) Count(key int64) int64 { return h.counts[key] }

// SortedCounts returns all counts in descending order.
func (h *Histogram) SortedCounts() []int64 {
	out := make([]int64, 0, len(h.counts))
	for _, c := range h.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// HotKeys returns the n most frequent keys in descending count order.
// Ties are broken by ascending key for determinism.
func (h *Histogram) HotKeys(n int) []int64 {
	type kv struct {
		k int64
		c int64
	}
	all := make([]kv, 0, len(h.counts))
	for k, c := range h.counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = all[i].k
	}
	return keys
}

// CDF is a cumulative-access curve: CDF.At(p) is the fraction of all
// accesses absorbed by the hottest p fraction of distinct keys. This is the
// curve the paper plots in Fig. 3 and the access-distribution function f_i
// used by the bandwidth-aware partitioner (§4.3).
type CDF struct {
	// cum[i] is the fraction of observed accesses covered by the i+1
	// hottest keys.
	cum []float64
	// universe is the number of keys the curve is normalised over (the
	// table's row count, which may exceed the number of keys actually
	// observed in the trace).
	universe int
	// obsMass is the probability mass credited to the observed keys; the
	// remaining 1-obsMass (the Good-Turing unseen-mass estimate) ramps
	// linearly across the unobserved tail. 1 for unsmoothed curves.
	obsMass float64
	// tailExp, when positive, shapes the unobserved tail as a power law
	// with this exponent instead of a uniform ramp: unseen mass density
	// at rank r falls as r^-tailExp. A bounded top-k sketch truncates a
	// Zipf stream right where its mid-ranks still hold real mass — a
	// uniform ramp there starves the warm segments and the partitioner
	// parks them in the slow region. 0 keeps the linear ramp.
	tailExp float64
}

// AccessCDF builds the cumulative-access curve of h over a universe of
// `universe` distinct keys. universe must be >= h.Distinct(); keys never
// observed contribute zero accesses (the long tail).
func AccessCDF(h *Histogram, universe int) (*CDF, error) {
	if universe < h.Distinct() {
		return nil, fmt.Errorf("stats: universe %d smaller than %d observed keys", universe, h.Distinct())
	}
	if universe == 0 {
		return nil, fmt.Errorf("stats: empty universe")
	}
	counts := h.SortedCounts()
	cum := make([]float64, len(counts))
	var run float64
	total := float64(h.Total())
	for i, c := range counts {
		run += float64(c)
		if total > 0 {
			cum[i] = run / total
		}
	}
	return &CDF{cum: cum, universe: universe, obsMass: 1}, nil
}

// AccessCDFSmoothed builds the cumulative-access curve with Good-Turing
// missing-mass smoothing: a finite profiling trace systematically misses
// tail keys that a longer run WILL draw, so the raw empirical curve
// overstates head concentration. The unseen mass is estimated as
// (singleton count)/(total draws) and spread uniformly over the unobserved
// keys; the observed curve is scaled down accordingly. This is what the
// bandwidth-aware partitioner consumes — without it the cold region's load
// is underestimated and the LP balance fails in live runs.
func AccessCDFSmoothed(h *Histogram, universe int) (*CDF, error) {
	c, err := AccessCDF(h, universe)
	if err != nil {
		return nil, err
	}
	if h.Total() == 0 || h.Distinct() >= universe {
		return c, nil
	}
	singles := int64(0)
	for _, n := range h.counts {
		if n == 1 {
			singles++
		}
	}
	unseen := float64(singles) / float64(h.Total())
	if unseen > 0.95 {
		unseen = 0.95
	}
	c.obsMass = 1 - unseen
	return c, nil
}

// CDFFromCounts builds a cumulative-access curve directly from a
// descending-sorted count slice, crediting the observed keys with obsMass
// of the total probability (the remaining 1-obsMass ramps linearly over
// the unobserved tail). This is the constructor for sketch-derived curves:
// a streaming top-k tracker knows the counts of the keys it retained and,
// separately, the exact total access count, so the observed mass is the
// retained share rather than a Good-Turing estimate. counts must be
// non-increasing and non-negative; obsMass is clamped to [0,1].
func CDFFromCounts(counts []int64, universe int, obsMass float64) (*CDF, error) {
	if universe <= 0 {
		return nil, fmt.Errorf("stats: empty universe")
	}
	if len(counts) > universe {
		return nil, fmt.Errorf("stats: universe %d smaller than %d counts", universe, len(counts))
	}
	var total int64
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("stats: negative count %d at rank %d", c, i)
		}
		if i > 0 && c > counts[i-1] {
			return nil, fmt.Errorf("stats: counts not sorted descending at rank %d", i)
		}
		total += c
	}
	if obsMass < 0 {
		obsMass = 0
	}
	if obsMass > 1 {
		obsMass = 1
	}
	cum := make([]float64, len(counts))
	var run float64
	for i, c := range counts {
		run += float64(c)
		if total > 0 {
			cum[i] = run / float64(total)
		}
	}
	return &CDF{cum: cum, universe: universe, obsMass: obsMass}, nil
}

// CDFFromCountsTail is CDFFromCounts with a power-law unobserved tail:
// the unseen 1-obsMass is distributed with density proportional to
// r^-tailExp over the unobserved ranks instead of uniformly. tailExp is
// typically fitted from the observed counts themselves (see FitZipf);
// tailExp <= 0 falls back to the uniform ramp.
func CDFFromCountsTail(counts []int64, universe int, obsMass, tailExp float64) (*CDF, error) {
	c, err := CDFFromCounts(counts, universe, obsMass)
	if err != nil {
		return nil, err
	}
	if tailExp > 0 {
		c.tailExp = tailExp
	}
	return c, nil
}

// FitZipf estimates a power-law exponent from a descending count slice
// by least squares on (log rank, log count). Only ranks strictly above
// the minimum count are fitted: in a Space-Saving sketch the bottom of
// the slice is a churn plateau of entries pinned at the eviction floor,
// whose flat log-log run would drag the slope toward zero (and in an
// exact histogram the floor is just the quantisation limit). Returns 0
// (meaning: no usable fit, callers should fall back to a uniform tail)
// when fewer than 8 usable points remain; otherwise the result is
// clamped to [0.05, 4].
func FitZipf(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	floor := counts[len(counts)-1]
	var n float64
	var sx, sy, sxx, sxy float64
	for i := 0; i < len(counts); i++ {
		if counts[i] <= 0 || counts[i] <= floor {
			break
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(counts[i]))
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if n < 8 {
		return 0
	}
	den := n*sxx - sx*sx
	if den <= 0 {
		return 0
	}
	s := -(n*sxy - sx*sy) / den
	if s < 0.05 {
		s = 0.05
	}
	if s > 4 {
		s = 4
	}
	return s
}

// At returns the fraction of accesses covered by the hottest p (in [0,1])
// fraction of the universe, interpolating linearly between ranks.
func (c *CDF) At(p float64) float64 {
	if p <= 0 || len(c.cum) == 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	rank := p * float64(c.universe) // number of hottest keys included
	if rank >= float64(len(c.cum)) {
		// Past the observed keys: the unseen mass covers the unobserved
		// tail — linearly by default, as a power law when tailExp is set.
		if float64(c.universe) <= float64(len(c.cum)) {
			return 1
		}
		if c.tailExp > 0 {
			return c.obsMass + (1-c.obsMass)*c.tailCoverage(rank)
		}
		tail := float64(c.universe - len(c.cum))
		return c.obsMass + (1-c.obsMass)*(rank-float64(len(c.cum)))/tail
	}
	i := int(rank)
	frac := rank - float64(i)
	lo := 0.0
	if i > 0 {
		lo = c.cum[i-1]
	}
	hi := c.cum[i]
	return (lo + frac*(hi-lo)) * c.obsMass
}

// tailCoverage returns the fraction of the unseen tail mass covered by
// ranks (len(cum), rank], under density proportional to r^-tailExp over
// r in (k, universe]. Closed form via the power-law integral; the
// near-1 exponent uses the logarithmic limit.
func (c *CDF) tailCoverage(rank float64) float64 {
	k := float64(len(c.cum))
	if k < 1 {
		k = 1
	}
	u := float64(c.universe)
	r := rank
	if r < k {
		r = k
	}
	if r > u {
		r = u
	}
	s := c.tailExp
	if math.Abs(s-1) < 1e-3 {
		den := math.Log(u) - math.Log(k)
		if den <= 0 {
			return 1
		}
		return (math.Log(r) - math.Log(k)) / den
	}
	e := 1 - s
	den := math.Pow(u, e) - math.Pow(k, e)
	if den == 0 {
		return 1
	}
	return (math.Pow(r, e) - math.Pow(k, e)) / den
}

// Universe returns the key universe size the curve is normalised over.
func (c *CDF) Universe() int { return c.universe }

// Coverage returns, for each fraction in ps, the covered access share.
func (c *CDF) Coverage(ps []float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = c.At(p)
	}
	return out
}

// ImbalanceRatio measures load imbalance across memory nodes as the paper
// defines it (§3.1): the largest per-node load divided by the load of an
// ideally even distribution. A perfectly balanced load returns 1. An empty
// or zero load returns 1 (nothing to imbalance).
func ImbalanceRatio(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var max, sum int64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	ideal := float64(sum) / float64(len(loads))
	return float64(max) / ideal
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all must be positive), or 0 for
// an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	i := int(rank)
	frac := rank - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// MaxI64 returns the maximum of xs, or 0 for an empty slice.
func MaxI64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// SumI64 returns the sum of xs.
func SumI64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
