//go:build race

package cluster

const raceEnabled = true
