package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustProblem(t *testing.T, n int) *Problem {
	t.Helper()
	p, err := NewProblem(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTextbookMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman):
	// optimum x=2, y=6, objective 36. As minimization of the negation.
	p := mustProblem(t, 2)
	p.SetObjective([]float64{-3, -5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective+36) > 1e-6 {
		t.Fatalf("objective = %g, want -36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want [2 6]", s.X)
	}
}

func TestGEConstraintsNeedPhase1(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 3: optimum x=10? No: cost of x is
	// cheaper, so x=10, y=0, objective 20... but x >= 3 already satisfied.
	p := mustProblem(t, 2)
	p.SetObjective([]float64{2, 3})
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 3)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Fatalf("objective = %g, want 20", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y == 5, y >= 1: x=4, y=1, objective 6.
	p := mustProblem(t, 2)
	p.SetObjective([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{0, 1}, GE, 1)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-6) > 1e-6 {
		t.Fatalf("objective = %g, want 6", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := mustProblem(t, 1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	if s := Solve(p); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := mustProblem(t, 2)
	p.SetObjective([]float64{-1, 0})
	p.AddConstraint([]float64{0, 1}, LE, 5)
	if s := Solve(p); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestUnconstrained(t *testing.T) {
	p := mustProblem(t, 3)
	p.SetObjective([]float64{1, 0, 2})
	s := Solve(p)
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("unconstrained with c>=0: %v obj %g", s.Status, s.Objective)
	}
	p2 := mustProblem(t, 1)
	p2.SetObjective([]float64{-1})
	if s := Solve(p2); s.Status != Unbounded {
		t.Fatalf("unconstrained with c<0 should be unbounded, got %v", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3  <=>  x >= 3; min x => 3.
	p := mustProblem(t, 1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{-1}, LE, -3)
	s := Solve(p)
	if s.Status != Optimal || math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("got %v x=%v, want x=3", s.Status, s.X)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (with Dantzig rule, no
	// anti-cycling). Our Bland fallback must terminate at optimum -0.05.
	p := mustProblem(t, 4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective+0.05) > 1e-6 {
		t.Fatalf("objective = %g, want -0.05", s.Objective)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewProblem(0); err == nil {
		t.Error("zero variables should error")
	}
	p := mustProblem(t, 2)
	if err := p.SetObjective([]float64{1}); err == nil {
		t.Error("wrong objective length should error")
	}
	if err := p.AddConstraint([]float64{1}, LE, 0); err == nil {
		t.Error("wrong constraint length should error")
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterationLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

// feasible checks x against all of p's constraints.
func feasible(p *Problem, x []float64, tol float64) bool {
	for _, xi := range x {
		if xi < -tol {
			return false
		}
	}
	for i, row := range p.rows {
		dot := 0.0
		for j := range row {
			dot += row[j] * x[j]
		}
		switch p.rel[i] {
		case LE:
			if dot > p.rhs[i]+tol {
				return false
			}
		case GE:
			if dot < p.rhs[i]-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-p.rhs[i]) > tol {
				return false
			}
		}
	}
	return true
}

// Property: for lower-bound problems min sum(x) s.t. x_i >= b_i the optimum
// is exactly sum(b_i), and the returned point is feasible.
func TestLowerBoundProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		n := len(raw)
		p, err := NewProblem(n)
		if err != nil {
			return false
		}
		c := make([]float64, n)
		want := 0.0
		for i := range c {
			c[i] = 1
		}
		p.SetObjective(c)
		for i, b := range raw {
			row := make([]float64, n)
			row[i] = 1
			p.AddConstraint(row, GE, float64(b))
			want += float64(b)
		}
		s := Solve(p)
		return s.Status == Optimal &&
			math.Abs(s.Objective-want) < 1e-6 &&
			feasible(p, s.X, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: on random feasible LE problems (rhs >= 0) with nonnegative
// objective, the solver returns a feasible point with objective <= that of
// the origin-adjacent heuristic point, and never worse than 0 from below.
func TestRandomLEProblemsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		m := rng.Intn(6) + 1
		p, err := NewProblem(n)
		if err != nil {
			return false
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
		}
		p.SetObjective(c)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() // nonnegative => bounded below by 0 rows? no
			}
			p.AddConstraint(row, LE, rng.Float64()*10)
		}
		// Bound the polytope so the problem is never unbounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddConstraint(row, LE, 100)
		}
		s := Solve(p)
		if s.Status != Optimal {
			return false
		}
		if !feasible(p, s.X, 1e-6) {
			return false
		}
		// Optimal must be <= objective at the origin (origin is feasible).
		return s.Objective <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMinimaxStructure exercises the exact structure the partitioner
// builds: minimize t subject to per-region load/bandwidth <= t and
// assignment rows summing to 1.
func TestMinimaxStructure(t *testing.T) {
	// Two items, two regions. Item loads: item0 = 6, item1 = 2.
	// Region bandwidths: 1 and 1. Optimal split equalizes: t = 4.
	// Vars: x00 x01 x10 x11 t  (xij = fraction of item i in region j).
	p := mustProblem(t, 5)
	p.SetObjective([]float64{0, 0, 0, 0, 1})
	p.AddConstraint([]float64{1, 1, 0, 0, 0}, EQ, 1)
	p.AddConstraint([]float64{0, 0, 1, 1, 0}, EQ, 1)
	// Region 0 load: 6*x00 + 2*x10 <= t.
	p.AddConstraint([]float64{6, 0, 2, 0, -1}, LE, 0)
	p.AddConstraint([]float64{0, 6, 0, 2, -1}, LE, 0)
	s := Solve(p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-4) > 1e-6 {
		t.Fatalf("minimax objective = %g, want 4", s.Objective)
	}
}

func BenchmarkSolvePartitionSized(b *testing.B) {
	// A problem shaped like the real partitioning LP: 26 tables x 8
	// segments x 3 regions + t.
	const tables, segs, regs = 26, 8, 3
	n := tables*segs*regs + 1
	rng := rand.New(rand.NewSource(1))
	build := func() *Problem {
		p, _ := NewProblem(n)
		obj := make([]float64, n)
		obj[n-1] = 1
		p.SetObjective(obj)
		xvar := func(t, s, r int) int { return (t*segs+s)*regs + r }
		for ti := 0; ti < tables; ti++ {
			for s := 0; s < segs; s++ {
				row := make([]float64, n)
				for r := 0; r < regs; r++ {
					row[xvar(ti, s, r)] = 1
				}
				p.AddConstraint(row, EQ, 1)
			}
		}
		for r := 0; r < regs; r++ {
			load := make([]float64, n)
			capRow := make([]float64, n)
			for ti := 0; ti < tables; ti++ {
				for s := 0; s < segs; s++ {
					load[xvar(ti, s, r)] = rng.Float64() * 10
					capRow[xvar(ti, s, r)] = rng.Float64()
				}
			}
			load[n-1] = -1
			p.AddConstraint(load, LE, 0)
			p.AddConstraint(capRow, LE, float64(tables*segs)*0.6)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Solve(build()); s.Status != Optimal {
			b.Fatalf("status = %v", s.Status)
		}
	}
}
