package nmp

import (
	"math"
	"testing"
)

// FuzzDecode feeds arbitrary 128-bit patterns to the instruction decoder:
// it must either reject them or produce an instruction that re-encodes to
// the identical wire form (no mutation can silently alias two programs).
func FuzzDecode(f *testing.F) {
	valid, _ := Encode(Instr{
		Opcode: OpWeightedSum, Cmd: CmdRD, Addr: 0x123456789,
		VSizeLog2: 2, Weight: 1.5, BatchTag: true, BGTag: true, BankTag: true,
	})
	f.Add(valid.Lo, valid.Hi)
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, lo, hi uint64) {
		in, err := Decode(Packed{Lo: lo, Hi: hi})
		if err != nil {
			return // rejection is fine
		}
		p2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded instruction does not re-encode: %+v: %v", in, err)
		}
		if p2.Lo != lo || p2.Hi != hi {
			t.Fatalf("round trip changed bits: %x/%x -> %x/%x", lo, hi, p2.Lo, p2.Hi)
		}
	})
}

// FuzzEncode checks that every in-range instruction encodes and decodes
// back to itself bit-exactly.
func FuzzEncode(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint64(42), uint8(3), float32(2.5), true, false, true, false)
	f.Fuzz(func(t *testing.T, op, cmd uint8, addr uint64, vs uint8, w float32, batch, last, bg, bank bool) {
		in := Instr{
			Opcode:    Opcode(op % 8),
			Cmd:       DDRCmd(cmd % 8),
			Addr:      addr & ((1 << 34) - 1),
			VSizeLog2: vs % 8,
			Weight:    w,
			BatchTag:  batch,
			LastTag:   last,
			BGTag:     bg || bank,
			BankTag:   bank,
		}
		p, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Addr != in.Addr || out.Opcode != in.Opcode ||
			math.Float32bits(out.Weight) != math.Float32bits(in.Weight) {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
}
