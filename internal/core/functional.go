package core

import (
	"fmt"

	"recross/internal/arch"
	"recross/internal/embedding"
	"recross/internal/nmp"
	"recross/internal/trace"
)

// ReduceBatch executes a batch functionally through the cross-level PE
// hierarchy: each gathered vector is weighted and accumulated in the PE of
// the memory node its row is placed on (bank PE, bank-group PE or rank PE),
// partial sums are folded up the tree, and the rank summarizer emits one
// result vector per op — the execution flow of §4.4. The returned slices
// are indexed [sample][op].
//
// This is the correctness path; Run is the timing path. Integration tests
// check ReduceBatch against the flat embedding.Layer reference.
func (r *ReCross) ReduceBatch(layer *embedding.Layer, b trace.Batch) ([][][]float32, error) {
	if layer == nil {
		return nil, fmt.Errorf("core: nil layer")
	}
	out := make([][][]float32, len(b))
	row := make([]float32, r.vecLen)
	for si, s := range b {
		out[si] = make([][]float32, len(s))
		for oi, op := range s {
			res, err := r.reduceOp(layer, op, row)
			if err != nil {
				return nil, err
			}
			out[si][oi] = res
		}
	}
	return out, nil
}

// reduceOp routes one embedding operation through the PE tree.
func (r *ReCross) reduceOp(layer *embedding.Layer, op trace.Op, row []float32) ([]float32, error) {
	if op.Table < 0 || op.Table >= layer.Tables() {
		return nil, fmt.Errorf("core: table %d out of range", op.Table)
	}
	tab := layer.Table(op.Table)
	if tab.VecLen() != r.vecLen {
		return nil, fmt.Errorf("core: layer vector length %d != %d", tab.VecLen(), r.vecLen)
	}

	// Lazily created PEs per (region, node) touched by this op.
	type nodeKey struct {
		region int
		node   int
	}
	units := make(map[nodeKey]*nmp.ComputeUnit)
	unitFor := func(k nodeKey) (*nmp.ComputeUnit, error) {
		if u, ok := units[k]; ok {
			return u, nil
		}
		u, err := nmp.NewComputeUnit(r.vecLen)
		if err != nil {
			return nil, err
		}
		units[k] = u
		return u, nil
	}

	opc := nmp.OpWeightedSum
	switch op.Kind {
	case trace.Sum:
		opc = nmp.OpSum
	case trace.Max:
		opc = nmp.OpMax
	}

	geo := r.geo
	for k, idx := range op.Indices {
		if idx < 0 || idx >= tab.Rows() {
			return nil, fmt.Errorf("core: index %d out of [0,%d)", idx, tab.Rows())
		}
		region, slot := r.pl.Locate(op.Table, idx)
		var key nodeKey
		if region == RegionCold {
			// Flash rows accumulate in the device's (or host's, without
			// in-storage reduction) single accumulator; its partial sum
			// merges at the summarizer like another rank's.
			key = nodeKey{RegionCold, 0}
		} else {
			loc, err := arch.Stripe(geo, r.regionBanks[region], slot, r.bursts)
			if err != nil {
				return nil, err
			}
			switch region {
			case RegionR:
				key = nodeKey{RegionR, loc.Rank}
			case RegionG:
				key = nodeKey{RegionG, geo.FlatBG(loc)}
			default:
				key = nodeKey{RegionB, geo.FlatBank(loc)}
			}
		}
		u, err := unitFor(key)
		if err != nil {
			return nil, err
		}
		// Gather through the layer so an attached hot-row cache serves the
		// materialization (bit-identical: a cached row is a copy of the
		// same generated values).
		layer.MaterializeRow(op.Table, idx, row)
		var w float32 = 1
		if opc == nmp.OpWeightedSum {
			w = op.Weights[k]
		}
		if err := u.Accumulate(opc, row, w); err != nil {
			return nil, err
		}
	}

	// Fold bank PEs into their bank group's PE, bank groups into their
	// rank's PE, and ranks into the DIMM buffer's rank summarizer.
	rankUnits := make(map[int]*nmp.ComputeUnit)
	getRank := func(rank int) (*nmp.ComputeUnit, error) {
		if u, ok := rankUnits[rank]; ok {
			return u, nil
		}
		u, err := nmp.NewComputeUnit(r.vecLen)
		if err != nil {
			return nil, err
		}
		rankUnits[rank] = u
		return u, nil
	}
	bgUnits := make(map[int]*nmp.ComputeUnit)
	for k, u := range units {
		if k.region != RegionB {
			continue
		}
		bg := k.node / geo.Banks // flat bank -> flat bank group
		dst, ok := bgUnits[bg]
		if !ok {
			var err error
			dst, err = nmp.NewComputeUnit(r.vecLen)
			if err != nil {
				return nil, err
			}
			bgUnits[bg] = dst
		}
		if err := dst.FoldUnit(opc, u); err != nil {
			return nil, err
		}
	}
	for k, u := range units {
		if k.region != RegionG {
			continue
		}
		dst, ok := bgUnits[k.node]
		if !ok {
			bgUnits[k.node] = u
			continue
		}
		if err := dst.FoldUnit(opc, u); err != nil {
			return nil, err
		}
	}
	for bg, u := range bgUnits {
		rank := bg / geo.BankGroups
		dst, err := getRank(rank)
		if err != nil {
			return nil, err
		}
		if err := dst.FoldUnit(opc, u); err != nil {
			return nil, err
		}
	}
	for k, u := range units {
		if k.region != RegionR {
			continue
		}
		dst, err := getRank(k.node)
		if err != nil {
			return nil, err
		}
		if err := dst.FoldUnit(opc, u); err != nil {
			return nil, err
		}
	}

	summ, err := nmp.NewRankSummarizer(r.vecLen)
	if err != nil {
		return nil, err
	}
	for _, u := range rankUnits {
		if err := summ.FoldUnit(opc, u); err != nil {
			return nil, err
		}
	}
	// The cold tier's partial sum crosses the flash link and merges last.
	for k, u := range units {
		if k.region != RegionCold {
			continue
		}
		if err := summ.FoldUnit(opc, u); err != nil {
			return nil, err
		}
	}
	return summ.Result(), nil
}
