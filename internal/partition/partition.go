// Package partition implements ReCross's software half (§4.3): statistical
// profiling of embedding tables, the bandwidth-aware partitioning (BWP)
// formulated as a linear program over piecewise-linearised access
// distributions, a crude capacity-driven partitioner used as the ablation
// baseline (Fig. 12), and the row-to-region placement with its index
// mapping table (§5.6).
package partition

import (
	"fmt"

	"recross/internal/lp"
	"recross/internal/nmp"
	"recross/internal/stats"
	"recross/internal/trace"
)

// Region describes one NMP memory region: the R-, G- or B-region of §4.1.
type Region struct {
	Name  string
	Level nmp.Level
	// CapBytes is the region's storage capacity.
	CapBytes int64
	// BW is the region's effective internal bandwidth in bytes per DRAM
	// cycle, estimated by the architecture layer from its node count and
	// per-node read cadence.
	BW float64
	// FixedCycles is per-batch bus time the region pays regardless of the
	// gather load it receives — chiefly partial-sum collection from
	// lower-level PEs sharing the region's data path (§3.3). The LP's
	// latency bound becomes load/BW + FixedCycles <= t.
	FixedCycles float64
	// Compression is the region's storage-precision ratio: fp32 row bytes
	// divided by encoded row bytes for rows resident in this region (e.g.
	// ~3.5 for int8 with its per-row header, 2 for fp16). It acts as a
	// capacity multiplier — the region holds Compression× more logical
	// fp32 bytes — and a bandwidth divisor on gathered load, because the
	// encoded bytes are what cross the region's data path. Zero means
	// uncompressed (fp32, ratio 1).
	Compression float64
}

// compression returns the effective precision ratio (zero ⇒ 1).
func (r Region) compression() float64 {
	if r.Compression <= 0 {
		return 1
	}
	return r.Compression
}

// Validate reports the first problem with the region.
func (r Region) Validate() error {
	if r.CapBytes < 0 {
		return fmt.Errorf("partition: region %q has negative capacity", r.Name)
	}
	if r.BW < 0 {
		return fmt.Errorf("partition: region %q has negative bandwidth", r.Name)
	}
	if r.FixedCycles < 0 {
		return fmt.Errorf("partition: region %q has negative fixed cycles", r.Name)
	}
	if r.Compression < 0 {
		return fmt.Errorf("partition: region %q has negative compression ratio", r.Name)
	}
	return nil
}

// Profile is the outcome of the offline training-phase statistics pass:
// per-table access histograms and cumulative-access curves.
type Profile struct {
	Spec  trace.ModelSpec
	Hists []*stats.Histogram
	CDFs  []*stats.CDF
}

// NewProfile runs a profiling pass of nSamples synthetic samples using a
// dedicated generator (seeded independently of the measured run, as the
// paper profiles on training data). The partitioner's curves use
// Good-Turing smoothing so the finite profile does not overstate head
// concentration (see stats.AccessCDFSmoothed).
func NewProfile(spec trace.ModelSpec, seed int64, nSamples int) (*Profile, error) {
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		return nil, err
	}
	if _, err := g.Profile(nSamples); err != nil {
		return nil, err
	}
	hists := g.Histograms()
	cdfs := make([]*stats.CDF, len(spec.Tables))
	for i, t := range spec.Tables {
		c, err := stats.AccessCDFSmoothed(hists[i], int(t.Rows))
		if err != nil {
			return nil, fmt.Errorf("partition: table %q: %w", t.Name, err)
		}
		cdfs[i] = c
	}
	return &Profile{Spec: spec, Hists: hists, CDFs: cdfs}, nil
}

// segBounds are the row-fraction boundaries of the piecewise linearisation
// of each table's access CDF. The head is resolved geometrically because
// that is where the skew lives (Fig. 3).
var segBounds = []float64{0, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}

// Segments returns len(segBounds)-1, the per-table segment count.
func Segments() int { return len(segBounds) - 1 }

// SegBounds returns a copy of the row-fraction boundaries of the
// piecewise linearisation. The online drift detector compares live and
// baseline access curves at exactly these points, because they are the
// coordinates the LP saw — drift that does not move the curve at any
// boundary cannot change the solve.
func SegBounds() []float64 {
	out := make([]float64, len(segBounds))
	copy(out, segBounds)
	return out
}

// Estimate evaluates an existing decision's segment assignment under a
// (possibly different) profile: the per-region gathered bytes per batch
// and the resulting latency bound max_j load/BW + fixed. This is how the
// adaptive replanner prices the *current* placement under *live* traffic
// — the decision was solved for an old profile, the load it would carry
// now is a property of the new one. d is not modified.
func Estimate(p *Profile, d *Decision, batch int) (loads []float64, t float64, err error) {
	if err := validateInput(p, d.Regions, batch); err != nil {
		return nil, 0, err
	}
	if len(d.SegFrac) != len(p.Spec.Tables) {
		return nil, 0, fmt.Errorf("partition: decision covers %d tables, profile has %d",
			len(d.SegFrac), len(p.Spec.Tables))
	}
	loads = make([]float64, len(d.Regions))
	for i := range p.Spec.Tables {
		vol := p.tableAccessBytes(i, batch)
		segs := p.segmentsOf(i)
		if len(segs) != len(d.SegFrac[i]) {
			return nil, 0, fmt.Errorf("partition: table %d has %d segments, decision has %d",
				i, len(segs), len(d.SegFrac[i]))
		}
		for s, seg := range segs {
			for j := range d.Regions {
				loads[j] += seg.accessShare * vol * d.SegFrac[i][s][j] / d.Regions[j].compression()
			}
		}
	}
	for j, l := range loads {
		if d.Regions[j].BW <= 0 {
			continue
		}
		if tj := l/d.Regions[j].BW + d.Regions[j].FixedCycles; tj > t {
			t = tj
		}
	}
	return loads, t, nil
}

// EstimateShares prices a decision's segment assignment under externally
// measured per-segment access shares instead of a profile's CDF. vols[i]
// is table i's gathered bytes per batch; shares[i][s] is the fraction of
// table i's accesses landing in its segment s — measured, crucially,
// under the *ranking the decision was built for*. A shape-based Estimate
// cannot see a hot-set permutation (the CDF is invariant under relabeling
// rows); per-segment live shares can, because after a permutation the
// mass drains out of the head segments the decision pinned to the fast
// region. This is how the adaptive replanner prices the stale incumbent.
func EstimateShares(d *Decision, vols []float64, shares [][]float64) (loads []float64, t float64, err error) {
	if len(vols) != len(d.SegFrac) || len(shares) != len(d.SegFrac) {
		return nil, 0, fmt.Errorf("partition: %d vols / %d share rows for %d tables",
			len(vols), len(shares), len(d.SegFrac))
	}
	loads = make([]float64, len(d.Regions))
	for i := range d.SegFrac {
		if len(shares[i]) != len(d.SegFrac[i]) {
			return nil, 0, fmt.Errorf("partition: table %d has %d shares, decision has %d segments",
				i, len(shares[i]), len(d.SegFrac[i]))
		}
		for s := range d.SegFrac[i] {
			for j := range d.Regions {
				loads[j] += shares[i][s] * vols[i] * d.SegFrac[i][s][j] / d.Regions[j].compression()
			}
		}
	}
	for j, l := range loads {
		if d.Regions[j].BW <= 0 {
			continue
		}
		if tj := l/d.Regions[j].BW + d.Regions[j].FixedCycles; tj > t {
			t = tj
		}
	}
	return loads, t, nil
}

// AccessVolumes returns each table's expected gathered bytes per batch —
// the vols input of EstimateShares.
func AccessVolumes(spec trace.ModelSpec, batch int) []float64 {
	out := make([]float64, len(spec.Tables))
	for i, t := range spec.Tables {
		out[i] = t.Prob * float64(batch) * float64(t.Pooling) * float64(t.VecLen) * 4
	}
	return out
}

// segment describes one frequency-ranked slice of a table.
type segment struct {
	loFrac, hiFrac float64 // row-fraction boundaries (hottest first)
	accessShare    float64 // fraction of the table's accesses
	bytes          float64 // storage footprint
	rows           float64
}

// segmentsOf linearises table ti of the profile.
func (p *Profile) segmentsOf(ti int) []segment {
	t := p.Spec.Tables[ti]
	c := p.CDFs[ti]
	segs := make([]segment, 0, Segments())
	for s := 0; s < Segments(); s++ {
		lo, hi := segBounds[s], segBounds[s+1]
		rows := (hi - lo) * float64(t.Rows)
		if rows <= 0 {
			continue
		}
		segs = append(segs, segment{
			loFrac:      lo,
			hiFrac:      hi,
			accessShare: c.At(hi) - c.At(lo),
			bytes:       rows * float64(t.VecLen) * 4,
			rows:        rows,
		})
	}
	return segs
}

// tableAccessBytes returns the expected bytes gathered from table ti per
// batch of the given size: prob * batch * pooling * vector bytes.
func (p *Profile) tableAccessBytes(ti, batch int) float64 {
	t := p.Spec.Tables[ti]
	return t.Prob * float64(batch) * float64(t.Pooling) * float64(t.VecLen) * 4
}

// Decision is a partitioning of every table across the regions.
type Decision struct {
	Regions []Region
	// RowFrac[i][j] is the fraction of table i's rows in region j,
	// hottest-first: region assignment follows frequency rank order.
	// Within a table the regions are filled in the order of SegFrac.
	RowFrac [][]float64
	// SegFrac[i][s][j] is the fraction of segment s of table i assigned
	// to region j (sums to 1 over j).
	SegFrac [][][]float64
	// Load[j] is the estimated bytes gathered from region j per batch, in
	// the region's storage precision (logical fp32 bytes divided by the
	// region's compression ratio — encoded bytes are what move).
	Load []float64
	// T is the estimated batch latency bound max_j Load[j]/BW[j], the LP
	// objective of §4.3.
	T float64
}

// estimate fills Load and T from SegFrac.
func (d *Decision) estimate(p *Profile, batch int) {
	d.Load = make([]float64, len(d.Regions))
	for i := range p.Spec.Tables {
		vol := p.tableAccessBytes(i, batch)
		for s, seg := range p.segmentsOf(i) {
			for j := range d.Regions {
				d.Load[j] += seg.accessShare * vol * d.SegFrac[i][s][j] / d.Regions[j].compression()
			}
		}
	}
	d.T = 0
	for j, l := range d.Load {
		if d.Regions[j].BW <= 0 {
			continue
		}
		if t := l/d.Regions[j].BW + d.Regions[j].FixedCycles; t > d.T {
			d.T = t
		}
	}
}

// fillRowFrac derives per-table row fractions from segment assignments.
func (d *Decision) fillRowFrac(p *Profile) {
	d.RowFrac = make([][]float64, len(p.Spec.Tables))
	for i := range p.Spec.Tables {
		d.RowFrac[i] = make([]float64, len(d.Regions))
		for s, seg := range p.segmentsOf(i) {
			segRowFrac := seg.hiFrac - seg.loFrac
			for j := range d.Regions {
				d.RowFrac[i][j] += segRowFrac * d.SegFrac[i][s][j]
			}
		}
	}
}

// SolveLP computes the bandwidth-aware partitioning: minimize the bound t
// on per-region access time subject to region capacities (Equ. 1-3 and the
// minimax objective of §4.3). It returns an error if the model does not fit
// in the combined capacity or the LP fails.
func SolveLP(p *Profile, regions []Region, batch int) (*Decision, error) {
	if err := validateInput(p, regions, batch); err != nil {
		return nil, err
	}
	nT := len(p.Spec.Tables)
	nR := len(regions)
	segs := make([][]segment, nT)
	nVars := 1 // t is variable 0
	idx := make([][]int, nT)
	for i := 0; i < nT; i++ {
		segs[i] = p.segmentsOf(i)
		idx[i] = make([]int, len(segs[i]))
		for s := range segs[i] {
			idx[i][s] = nVars
			nVars += nR
		}
	}
	prob, err := lp.NewProblem(nVars)
	if err != nil {
		return nil, err
	}
	obj := make([]float64, nVars)
	obj[0] = 1
	// Tie-break: among equal-t optima, prefer pushing access-heavy
	// segments toward the finer (higher-index) DRAM regions, where
	// row-buffer reuse and subarray parallelism pay off. Cold (flash)
	// regions are excluded from that preference and instead carry a tiny
	// per-byte cost, so the LP fills DRAM first and overflows to the cold
	// tier only when DRAM capacity binds. Both perturbations are scaled
	// well below the t term so they never trade real balance away.
	minBW := 0.0
	for _, r := range regions {
		if r.BW > 0 && (minBW == 0 || r.BW < minBW) {
			minBW = r.BW
		}
	}
	cold := make([]bool, nR)
	nDRAM := 0
	for j, r := range regions {
		cold[j] = r.Level == nmp.LevelCold
		if !cold[j] {
			nDRAM++
		}
	}
	if minBW > 0 {
		var totalVol float64
		for i := 0; i < nT; i++ {
			totalVol += p.tableAccessBytes(i, batch)
		}
		eps := 1e-6 * totalVol / minBW / float64(nT)
		totalBytes := float64(p.Spec.TotalBytes())
		for i := 0; i < nT; i++ {
			for s, sg := range segs[i] {
				rank := 0
				for j := 0; j < nR; j++ {
					if cold[j] {
						// Worse than any DRAM region for accessed mass,
						// and costs a sliver per byte so idle mass also
						// prefers DRAM while it fits.
						obj[idx[i][s]+j] += eps * (float64(nR)*sg.accessShare + sg.bytes/totalBytes)
						continue
					}
					obj[idx[i][s]+j] += eps * sg.accessShare * float64(nDRAM-1-rank)
					rank++
				}
			}
		}
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, err
	}

	// Assignment: each segment fully placed (Equ. 2).
	for i := 0; i < nT; i++ {
		for s := range segs[i] {
			row := make([]float64, nVars)
			for j := 0; j < nR; j++ {
				row[idx[i][s]+j] = 1
			}
			if err := prob.AddConstraint(row, lp.EQ, 1); err != nil {
				return nil, err
			}
		}
	}
	// Upper bounds x <= 1 are implied by the assignment equalities and
	// x >= 0 (Equ. 1).

	// Load and capacity per region (the minimax rows and Equ. 3).
	for j := 0; j < nR; j++ {
		load := make([]float64, nVars)
		capRow := make([]float64, nVars)
		for i := 0; i < nT; i++ {
			vol := p.tableAccessBytes(i, batch)
			for s, sg := range segs[i] {
				// Encoded bytes cross the region's path and occupy its
				// capacity: the precision ratio scales both down.
				load[idx[i][s]+j] = sg.accessShare * vol / regions[j].compression()
				capRow[idx[i][s]+j] = sg.bytes / regions[j].compression()
			}
		}
		if regions[j].BW > 0 {
			for k := range load {
				load[k] /= regions[j].BW
			}
			load[0] = -1
			if err := prob.AddConstraint(load, lp.LE, -regions[j].FixedCycles); err != nil {
				return nil, err
			}
		} else {
			// A region with no bandwidth cannot receive accessed data;
			// forbid placing anything with nonzero access share there.
			load[0] = 0
			if err := prob.AddConstraint(load, lp.LE, 0); err != nil {
				return nil, err
			}
		}
		if err := prob.AddConstraint(capRow, lp.LE, float64(regions[j].CapBytes)); err != nil {
			return nil, err
		}
	}

	sol := lp.Solve(prob)
	switch sol.Status {
	case lp.Optimal:
	case lp.Infeasible:
		return nil, fmt.Errorf("partition: model does not fit the regions (total %d bytes)", p.Spec.TotalBytes())
	default:
		return nil, fmt.Errorf("partition: LP solve failed: %v", sol.Status)
	}

	d := &Decision{Regions: regions, SegFrac: make([][][]float64, nT)}
	for i := 0; i < nT; i++ {
		d.SegFrac[i] = make([][]float64, len(segs[i]))
		for s := range segs[i] {
			d.SegFrac[i][s] = make([]float64, nR)
			for j := 0; j < nR; j++ {
				f := sol.X[idx[i][s]+j]
				if f < 0 {
					f = 0
				}
				if f > 1 {
					f = 1
				}
				d.SegFrac[i][s][j] = f
			}
		}
	}
	d.fillRowFrac(p)
	d.estimate(p, batch)
	return d, nil
}

// Greedy is the crude partitioner of the Fig. 12 ablation (ReCross-Base):
// it pours data hottest-first into the lowest (highest-parallelism) region
// until each region's capacity is exhausted, ignoring bandwidth balance.
// DRAM regions must be ordered R, G, B; filling proceeds B, G, R. Cold
// (flash) regions, wherever they appear, fill only after every DRAM
// region is exhausted — the crude partitioner still knows flash is slow.
func Greedy(p *Profile, regions []Region, batch int) (*Decision, error) {
	if err := validateInput(p, regions, batch); err != nil {
		return nil, err
	}
	nT := len(p.Spec.Tables)
	nR := len(regions)
	free := make([]float64, nR)
	for j, r := range regions {
		// Capacities in logical fp32 bytes: a compressed region holds
		// Compression× more of the model.
		free[j] = float64(r.CapBytes) * r.compression()
	}
	// Fill order: DRAM regions from the last backwards, then cold regions.
	order := make([]int, 0, nR)
	for j := nR - 1; j >= 0; j-- {
		if regions[j].Level != nmp.LevelCold {
			order = append(order, j)
		}
	}
	for j := 0; j < nR; j++ {
		if regions[j].Level == nmp.LevelCold {
			order = append(order, j)
		}
	}
	d := &Decision{Regions: regions, SegFrac: make([][][]float64, nT)}
	for i := 0; i < nT; i++ {
		segs := p.segmentsOf(i)
		d.SegFrac[i] = make([][]float64, len(segs))
		for s, sg := range segs {
			d.SegFrac[i][s] = make([]float64, nR)
			remaining := sg.bytes
			for _, j := range order {
				if remaining <= 1e-9 {
					break
				}
				take := remaining
				if take > free[j] {
					take = free[j]
				}
				if take <= 0 {
					continue
				}
				d.SegFrac[i][s][j] = take / sg.bytes
				free[j] -= take
				remaining -= take
			}
			if remaining > 1e-6 {
				return nil, fmt.Errorf("partition: greedy ran out of capacity for table %d", i)
			}
		}
	}
	d.fillRowFrac(p)
	d.estimate(p, batch)
	return d, nil
}

// SingleRegion places everything in region j of the given list — the
// symmetric layout of the baseline architectures.
func SingleRegion(p *Profile, regions []Region, j, batch int) (*Decision, error) {
	if err := validateInput(p, regions, batch); err != nil {
		return nil, err
	}
	if j < 0 || j >= len(regions) {
		return nil, fmt.Errorf("partition: region %d out of range", j)
	}
	if float64(regions[j].CapBytes)*regions[j].compression() < float64(p.Spec.TotalBytes()) {
		return nil, fmt.Errorf("partition: model (%d bytes) exceeds region capacity (%d)",
			p.Spec.TotalBytes(), regions[j].CapBytes)
	}
	nT := len(p.Spec.Tables)
	d := &Decision{Regions: regions, SegFrac: make([][][]float64, nT)}
	for i := 0; i < nT; i++ {
		segs := p.segmentsOf(i)
		d.SegFrac[i] = make([][]float64, len(segs))
		for s := range segs {
			d.SegFrac[i][s] = make([]float64, len(regions))
			d.SegFrac[i][s][j] = 1
		}
	}
	d.fillRowFrac(p)
	d.estimate(p, batch)
	return d, nil
}

func validateInput(p *Profile, regions []Region, batch int) error {
	if p == nil || len(p.Spec.Tables) == 0 {
		return fmt.Errorf("partition: empty profile")
	}
	if len(regions) == 0 {
		return fmt.Errorf("partition: no regions")
	}
	if batch <= 0 {
		return fmt.Errorf("partition: batch must be positive, got %d", batch)
	}
	var totalCap float64
	for _, r := range regions {
		if err := r.Validate(); err != nil {
			return err
		}
		totalCap += float64(r.CapBytes) * r.compression()
	}
	if totalCap < float64(p.Spec.TotalBytes()) {
		return fmt.Errorf("partition: model (%d bytes) exceeds total region capacity (%.0f)",
			p.Spec.TotalBytes(), totalCap)
	}
	return nil
}
