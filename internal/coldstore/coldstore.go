// Package coldstore implements the flash-backed cold tier: a fourth
// placement level below ReCross's R-, G- and B-regions for embedding mass
// that cannot (or should not) live in DRAM. It combines the two storage-side
// ideas of the related work:
//
//   - RecSSD-style in-storage reduction: the device can return pre-reduced
//     partial sums instead of raw rows, shrinking the host link transfer to
//     one vector per op (a timing-model property; the functional result is
//     bit-identical either way because the reduction order is preserved);
//   - RecFlash-style frequency-based data mapping: rows are packed into
//     pages hottest-first using sketch-derived access counts, so the pages
//     that do get read carry as many of the warm rows as possible and the
//     page cache's working set stays small.
//
// The store is file-backed (pread or mmap) with page-granular layout and
// lazy page population: pages are generated from the procedural source
// tables on first access and written back, so the file always holds the
// exact bytes of the reference rows — any read path (page cache, file,
// regeneration) returns identical bits. A small CLOCK page cache and an
// asynchronous prefetch queue sit in front of the device.
//
// Concurrency: the functional read path (ReadRow, ReduceInto, Prefetch) is
// safe for arbitrary concurrent use — it is part of the serving data plane.
// The timing model (Sim) follows the simulator's single-goroutine contract:
// one Sim per replica, owned by its worker.
package coldstore

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/kernels"
)

// RowSource supplies reference rows for lazy page population. It matches
// embedding.Table, but is declared here so the package has no dependency
// on the embedding layer (embedding depends on coldstore's consumers, not
// the other way around).
type RowSource interface {
	Rows() int64
	VecLen() int
	Row(i int64, dst []float32) []float32
}

// RowCount is one row's sketch-derived access count, the input of the
// frequency-based page mapping.
type RowCount struct {
	Row   int64
	Count int64
}

// Config configures Open.
type Config struct {
	// Dir is the directory holding the backing file (required; a temp dir
	// in tests). The file is created (or truncated) by Open and removed by
	// Close.
	Dir string
	// PageBytes is the device page size (default 16 KiB). Must hold at
	// least one vector; rows never straddle pages.
	PageBytes int
	// Precision is the on-device row format (default kernels.FP32). With
	// FP16 or INT8, pages hold kernels.EncodeRow images — smaller rows, so
	// more rows per page and fewer device reads per gather — and every
	// read serves the canonical dequantized value. Block checksums cover
	// the encoded bytes; quantized pages are verified whole at device-read
	// time (the first-serve re-encode check is only exact for fp32).
	Precision kernels.Precision
	// CacheBytes is the host-side page-cache budget (default 64 pages).
	CacheBytes int64
	// Prefetch is the async prefetch queue depth (default 64; 0 disables
	// the prefetcher).
	Prefetch int
	// Mmap maps the backing file instead of using pread. Population still
	// goes through pwrite; reads come from the mapping.
	Mmap bool
	// DisableChecksum turns off per-page CRC32C verification and repair —
	// the checksum-off benchmark baseline. Keep it on in production.
	DisableChecksum bool
	// Retries is how many times a failed device page read is retried
	// (with backoff) before the read counts as a failure (default 2;
	// negative disables retries).
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 100µs).
	RetryBackoff time.Duration
	// ReadDeadline bounds one device page read: past it the read is
	// abandoned (the device goroutine finishes into its own buffer and is
	// drained by Close) and counted as a failure. 0 disables (default) —
	// the in-process devices cannot hang, and the deadline path costs a
	// goroutine per device read.
	ReadDeadline time.Duration
	// BreakerThreshold consecutive failed device reads open the circuit
	// breaker (default 4). While open, cold reads fail fast and the
	// caller falls back to direct RowSource materialization.
	BreakerThreshold int
	// BreakerCooldown is the open->half-open delay (default 50ms).
	BreakerCooldown time.Duration
	// BreakerProbes consecutive successful half-open reads close the
	// circuit again (default 2).
	BreakerProbes int
	// ScrubInterval is the background scrubber's cadence: every interval
	// one resident page is read back from the device and verified against
	// its checksum, repairing on mismatch. 0 disables the scrubber
	// (default).
	ScrubInterval time.Duration
	// WrapDevice, when set, interposes on the store's page I/O — the
	// fault-injection seam (chaos.FaultyColdStore wraps here).
	WrapDevice func(Device) Device
}

func (c Config) withDefaults() Config {
	if c.PageBytes == 0 {
		c.PageBytes = 16 << 10
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 * int64(c.PageBytes)
	}
	if c.Prefetch == 0 {
		c.Prefetch = 64
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Microsecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 50 * time.Millisecond
	}
	if c.BreakerProbes == 0 {
		c.BreakerProbes = 2
	}
	return c
}

// page population states.
const (
	pageEmpty uint32 = iota
	pageReady
)

// tableMap is one table's frequency-based row->device-slot mapping.
// Counted rows occupy slots [0, hot) in descending count order; the
// uncounted tail follows in index order. Both directions are O(log hot):
// row->slot via the hash map or a rank among non-hot indices, slot->row via
// the hotRows array or a binary search for the k-th non-hot index.
type tableMap struct {
	rows    int64
	hotSlot map[int64]int64 // row -> slot, counted rows only
	hotRows []int64         // slot -> row, counted rows only
	sorted  []int64         // counted rows ascending, for rank queries
}

// slotOf maps a row index to its device slot.
func (m *tableMap) slotOf(row int64) int64 {
	if s, ok := m.hotSlot[row]; ok {
		return s
	}
	return int64(len(m.hotRows)) + row - m.hotBelow(row)
}

// rowOf inverts slotOf: the row occupying a device slot.
func (m *tableMap) rowOf(slot int64) int64 {
	if slot < int64(len(m.hotRows)) {
		return m.hotRows[slot]
	}
	// The k-th non-hot row index: the smallest r with k+1 non-hot indices
	// in [0, r]. If that r were hot the count could not have just risen,
	// so the result is always a tail row.
	k := slot - int64(len(m.hotRows))
	return int64(sort.Search(int(m.rows), func(i int) bool {
		r := int64(i)
		return r+1-m.hotBelow(r+1) >= k+1
	}))
}

// hotBelow counts counted rows with index < row.
func (m *tableMap) hotBelow(row int64) int64 {
	return int64(sort.Search(len(m.sorted), func(i int) bool { return m.sorted[i] >= row }))
}

// newTableMap builds a table's mapping from access counts (nil or empty
// counts yield the identity layout: every row in index order).
func newTableMap(rows int64, counts []RowCount) *tableMap {
	m := &tableMap{rows: rows, hotSlot: map[int64]int64{}}
	if len(counts) == 0 {
		return m
	}
	cs := make([]RowCount, 0, len(counts))
	seen := map[int64]bool{}
	for _, c := range counts {
		if c.Row < 0 || c.Row >= rows || c.Count <= 0 || seen[c.Row] {
			continue
		}
		seen[c.Row] = true
		cs = append(cs, c)
	}
	// Descending count; ties broken by row index for determinism.
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count > cs[j].Count
		}
		return cs[i].Row < cs[j].Row
	})
	m.hotRows = make([]int64, len(cs))
	m.sorted = make([]int64, len(cs))
	for slot, c := range cs {
		m.hotRows[slot] = c.Row
		m.hotSlot[c.Row] = int64(slot)
		m.sorted[slot] = c.Row
	}
	sort.Slice(m.sorted, func(i, j int) bool { return m.sorted[i] < m.sorted[j] })
	return m
}

// Stats is the store's counter snapshot.
type Stats struct {
	// RowReads counts functional row reads served by the store.
	RowReads int64
	// PageHits and PageMisses count host page-cache probes.
	PageHits, PageMisses int64
	// PageReads counts device page reads (cache misses and prefetches).
	PageReads int64
	// Populated counts pages generated and written on first access.
	Populated int64
	// Evictions counts page-cache CLOCK evictions.
	Evictions int64
	// Prefetches and PrefetchDrops count async prefetch requests issued
	// and dropped on a full queue.
	Prefetches, PrefetchDrops int64
	// Reduces counts in-storage ReduceInto operations.
	Reduces int64
	// Remaps counts frequency-mapping rebuilds.
	Remaps int64
	// ChecksumFailures counts page reads whose CRC32C did not match the
	// stored sum; each triggers a repair.
	ChecksumFailures int64
	// Repairs counts pages regenerated bit-exactly from the RowSource
	// after a checksum mismatch.
	Repairs int64
	// ScrubPages counts pages the background scrubber has verified.
	ScrubPages int64
	// Retries counts device read retry attempts.
	Retries int64
	// ReadFailures counts device reads that failed after all retries.
	ReadFailures int64
	// WriteFailures counts failed device write-backs.
	WriteFailures int64
	// ReadTimeouts counts device reads abandoned past ReadDeadline.
	ReadTimeouts int64
	// BreakerRejects counts reads failed fast by the open circuit.
	BreakerRejects int64
	// BreakerState is the circuit state (0 closed, 1 half-open, 2 open);
	// BreakerOpens/HalfOpens/Closes count cumulative transitions.
	BreakerState                                  int64
	BreakerOpens, BreakerHalfOpens, BreakerCloses int64
	// Degraded mirrors Store.Degraded: the breaker is not closed.
	Degraded bool
	// Pages and PageBytes describe the layout.
	Pages     int64
	PageBytes int64
	// CachePages is the host page-cache capacity in pages.
	CachePages int64
}

// HitRate returns the host page-cache hit fraction.
func (s Stats) HitRate() float64 {
	if s.PageHits+s.PageMisses == 0 {
		return 0
	}
	return float64(s.PageHits) / float64(s.PageHits+s.PageMisses)
}

// Store is the flash-backed cold tier. Create with Open.
type Store struct {
	cfg       Config
	tables    []RowSource
	vecLen    int
	prec      kernels.Precision
	rowBytes  int // encoded row size at prec
	rpp       int // rows per page
	blockRows int // rows per checksum block (~4 KiB of row bytes)
	bpp       int // checksum blocks per page
	pageBase  []int64
	nPages    int64

	file *os.File
	mm   []byte // non-nil when mmapped
	dev  Device // page I/O seam (file, mmap, or a fault wrapper)

	// mu guards the frequency mapping and the page-population states
	// against Remap and Close; the read path holds it shared.
	mu    sync.RWMutex
	maps  []*tableMap
	state []atomic.Uint32 // per-page population state
	// sums holds one CRC32C per ~4 KiB checksum block (bpp per page,
	// indexed page*bpp+block), valid while the page's state is ready.
	// Block granularity keeps verification off the fill path's critical
	// ns: a fill checks only the block it serves and the rest verify on
	// first serve from the cache or under the scrubber.
	sums []atomic.Uint32
	// popMu stripes page population so one goroutine generates a page.
	popMu [64]sync.Mutex

	cache *pageCache

	breaker *breaker

	// closed flips once in Close; readers check it under mu and bail.
	// ioWG tracks abandoned deadline reads so Close can drain them
	// before unmapping.
	closed atomic.Bool
	ioWG   sync.WaitGroup

	prefetchCh   chan int64
	prefetchStop chan struct{}
	prefetchDone chan struct{}

	scrubStop chan struct{}
	scrubDone chan struct{}

	bufs sync.Pool // page-sized []byte scratch

	rowReads, populated         atomic.Int64
	prefetches, prefetchDrops   atomic.Int64
	reduces, remaps             atomic.Int64
	checksumFailures, repairs   atomic.Int64
	scrubPages, retries         atomic.Int64
	readFailures, writeFailures atomic.Int64
	timeouts, breakerRejects    atomic.Int64
}

// Open creates the backing file and store for the given source tables. All
// tables must share one vector length. The initial mapping is the identity
// (index order); call Remap with sketch counts for frequency packing.
func Open(cfg Config, tables []RowSource) (*Store, error) {
	cfg = cfg.withDefaults()
	if len(tables) == 0 {
		return nil, fmt.Errorf("coldstore: no tables")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("coldstore: backing directory required")
	}
	vecLen := tables[0].VecLen()
	for i, t := range tables {
		if t.VecLen() != vecLen {
			return nil, fmt.Errorf("coldstore: table %d vecLen %d != %d", i, t.VecLen(), vecLen)
		}
		if t.Rows() <= 0 {
			return nil, fmt.Errorf("coldstore: table %d has no rows", i)
		}
	}
	rowBytes := cfg.Precision.RowBytes(vecLen)
	if cfg.PageBytes < rowBytes {
		return nil, fmt.Errorf("coldstore: page %d B below %v row %d B", cfg.PageBytes, cfg.Precision, rowBytes)
	}
	s := &Store{
		cfg:      cfg,
		tables:   tables,
		vecLen:   vecLen,
		prec:     cfg.Precision,
		rowBytes: rowBytes,
		rpp:      cfg.PageBytes / rowBytes,
		pageBase: make([]int64, len(tables)),
		maps:     make([]*tableMap, len(tables)),
	}
	// Checksum blocks target ~4 KiB of row bytes: small enough that the
	// verify on the fill path is a fraction of the device read, large
	// enough for the hardware CRC's multi-stream kernel. Small pages
	// collapse to one block covering the whole page.
	s.blockRows = blockTargetBytes / rowBytes
	if s.blockRows < 1 {
		s.blockRows = 1
	}
	if s.blockRows > s.rpp {
		s.blockRows = s.rpp
	}
	s.bpp = (s.rpp + s.blockRows - 1) / s.blockRows
	for i, t := range tables {
		s.pageBase[i] = s.nPages
		s.nPages += (t.Rows() + int64(s.rpp) - 1) / int64(s.rpp)
		s.maps[i] = newTableMap(t.Rows(), nil)
	}
	s.state = make([]atomic.Uint32, s.nPages)
	s.sums = make([]atomic.Uint32, s.nPages*int64(s.bpp))
	s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerProbes, cfg.BreakerCooldown)
	cachePages := int(cfg.CacheBytes / int64(cfg.PageBytes))
	if cachePages < 1 {
		cachePages = 1
	}
	// The first-serve cache hook re-encodes cached floats to device bytes,
	// which is only exact for the bijective fp32 format; quantized pages
	// are instead verified whole at device-read time and enter the cache
	// fully verified.
	verify := s.verifyCachedBlock
	if cfg.DisableChecksum || cfg.Precision != kernels.FP32 {
		verify = nil
	}
	s.cache = newPageCache(cachePages, s.rpp*vecLen, s.bpp, s.blockRows*vecLen, verify)
	s.bufs.New = func() any { b := make([]byte, cfg.PageBytes); return &b }

	f, err := os.CreateTemp(cfg.Dir, "coldstore-*.dat")
	if err != nil {
		return nil, fmt.Errorf("coldstore: backing file: %w", err)
	}
	if err := f.Truncate(s.nPages * int64(cfg.PageBytes)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("coldstore: truncate: %w", err)
	}
	s.file = f
	s.dev = &fileDevice{f: f, pageBytes: int64(cfg.PageBytes)}
	if cfg.Mmap {
		if err := s.mapFile(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
		s.dev = &mmapDevice{mm: s.mm, f: f, pageBytes: int64(cfg.PageBytes)}
	}
	if cfg.WrapDevice != nil {
		s.dev = cfg.WrapDevice(s.dev)
	}
	if cfg.Prefetch > 0 {
		s.prefetchCh = make(chan int64, cfg.Prefetch)
		s.prefetchStop = make(chan struct{})
		s.prefetchDone = make(chan struct{})
		go s.prefetcher()
	}
	if cfg.ScrubInterval > 0 {
		s.scrubStop = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go s.scrubber()
	}
	return s, nil
}

// Path returns the backing file's path.
func (s *Store) Path() string { return s.file.Name() }

// VecLen returns the uniform vector length.
func (s *Store) VecLen() int { return s.vecLen }

// RowsPerPage returns the page layout's row capacity.
func (s *Store) RowsPerPage() int { return s.rpp }

// Pages returns the total device page count.
func (s *Store) Pages() int64 { return s.nPages }

// Close stops the scrubber and prefetcher, drains in-flight readers and
// abandoned deadline reads, then unmaps, closes and removes the backing
// file. Idempotent and safe to call concurrently with reads: the first
// call does the work (later calls return nil immediately), new readers
// observe the closed flag and bail, and the unmap happens only after every
// goroutine that could still touch the device has finished.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.scrubStop != nil {
		close(s.scrubStop)
		<-s.scrubDone
	}
	if s.prefetchStop != nil {
		close(s.prefetchStop)
		<-s.prefetchDone
	}
	// Exclusive lock drains in-flight readers (they hold mu shared for
	// the whole read); the wait drains deadline reads they abandoned.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ioWG.Wait()
	var err error
	if s.mm != nil {
		err = s.unmapFile()
		s.mm = nil
	}
	name := s.file.Name()
	if e := s.file.Close(); err == nil {
		err = e
	}
	if e := os.Remove(name); err == nil && !os.IsNotExist(e) {
		err = e
	}
	return err
}

// Degraded reports whether the cold tier is serving degraded: the circuit
// breaker is not closed, so cold reads fail fast and callers fall back to
// direct RowSource materialization.
func (s *Store) Degraded() bool { return s.breaker.current() != BreakerClosed }

// BreakerState returns the circuit state (BreakerClosed, BreakerHalfOpen
// or BreakerOpen).
func (s *Store) BreakerState() int32 { return s.breaker.current() }

// ReadRow writes row idx of table into dst (len == VecLen) and reports
// whether the store served that row: false for out-of-range input, for a
// closed store, and for a device too broken to answer (breaker open or a
// read that failed after retries) — the caller then falls back to direct
// materialization, which stays bit-identical. When the store does answer,
// the bits are identical to RowSource.Row: pages are populated from it,
// every row is CRC32C-verified (its checksum block checks on the device
// read that fills the cache or on its first serve from the cache), and a
// mismatching page is repaired from the source before anything is served.
func (s *Store) ReadRow(table int, idx int64, dst []float32) bool {
	if table < 0 || table >= len(s.tables) {
		return false
	}
	if idx < 0 || idx >= s.tables[table].Rows() {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return false
	}
	slot := s.maps[table].slotOf(idx)
	page := s.pageBase[table] + slot/int64(s.rpp)
	rowIn := int(slot % int64(s.rpp))
	off := rowIn * s.vecLen
	blk := rowIn / s.blockRows
	switch s.cache.get(page, off, dst, blk) {
	case cacheHit:
		s.rowReads.Add(1)
		return true
	case cacheCorrupt:
		// The row's block sat unverified in the frame and failed its
		// first-serve check: regenerate the reference page, persist it
		// and serve the repaired bits.
		s.checksumFailures.Add(1)
		vals := s.repair(page)
		s.cache.put(page, vals, putAllVerified)
		copy(dst, vals[off:off+s.vecLen])
		s.rowReads.Add(1)
		return true
	}
	if !s.breaker.allow() {
		s.breakerRejects.Add(1)
		return false
	}
	if s.prec != kernels.FP32 {
		blk = verifyAll
	}
	vals, vblk, ok := s.readPage(page, blk)
	if !ok {
		return false
	}
	copy(dst, vals[off:off+s.vecLen])
	s.cache.put(page, vals, vblk)
	s.rowReads.Add(1)
	return true
}

// ReduceInto performs a device-side ("in-storage") reduction: gather the
// given rows of one table and pool them in index order into dst, exactly
// as the host kernels would — the partial sum that crosses the link is
// bit-identical to host-side reduction. kind follows trace.ReduceKind
// numbering (0 weighted-sum, 1 sum, 2 max); weights may be nil for kinds
// that ignore them.
func (s *Store) ReduceInto(dst []float32, table int, indices []int64, weights []float32, kind uint8) error {
	if len(dst) != s.vecLen {
		return fmt.Errorf("coldstore: dst length %d != %d", len(dst), s.vecLen)
	}
	if kind == 0 && len(weights) != len(indices) {
		return fmt.Errorf("coldstore: %d weights for %d indices", len(weights), len(indices))
	}
	for i := range dst {
		dst[i] = 0
	}
	row := make([]float32, s.vecLen)
	for k, idx := range indices {
		if !s.ReadRow(table, idx, row) {
			return fmt.Errorf("coldstore: row %d of table %d unavailable (out of range, closed, or device degraded)", idx, table)
		}
		switch kind {
		case 1: // sum
			for i := range dst {
				dst[i] += row[i]
			}
		case 2: // max
			if k == 0 {
				copy(dst, row)
			} else {
				for i := range dst {
					if row[i] > dst[i] {
						dst[i] = row[i]
					}
				}
			}
		default: // weighted sum
			w := weights[k]
			for i := range dst {
				dst[i] += w * row[i]
			}
		}
	}
	s.reduces.Add(1)
	return nil
}

// Prefetch hints that a row will be read soon: its page is queued for the
// async reader (dropped when the queue is full — a hint, not a promise).
func (s *Store) Prefetch(table int, idx int64) {
	if s.prefetchCh == nil || table < 0 || table >= len(s.tables) {
		return
	}
	if idx < 0 || idx >= s.tables[table].Rows() {
		return
	}
	s.mu.RLock()
	page := s.pageBase[table] + s.maps[table].slotOf(idx)/int64(s.rpp)
	s.mu.RUnlock()
	select {
	case s.prefetchCh <- page:
		s.prefetches.Add(1)
	default:
		s.prefetchDrops.Add(1)
	}
}

// prefetcher is the async read goroutine: it pulls page hints and warms
// the page cache in the background.
func (s *Store) prefetcher() {
	defer close(s.prefetchDone)
	for {
		select {
		case <-s.prefetchStop:
			return
		case page := <-s.prefetchCh:
			s.mu.RLock()
			if !s.closed.Load() && !s.cache.contains(page) && s.breaker.allow() {
				// Off the serving path: verify the whole page here so
				// later hits skip even the first-serve block check.
				if vals, vblk, ok := s.readPage(page, verifyAll); ok {
					s.cache.put(page, vals, vblk)
				}
			}
			s.mu.RUnlock()
		}
	}
}

// Remap rebuilds the frequency-based page mapping from fresh access
// counts (one slice per table; nil keeps that table's current mapping).
// The page cache and population states are invalidated: the file is
// repacked lazily as pages are next touched. Serving may continue
// concurrently — a reader either sees the old mapping or the new one, and
// both return reference bits.
func (s *Store) Remap(counts [][]RowCount) error {
	if len(counts) != len(s.tables) {
		return fmt.Errorf("coldstore: %d count sets for %d tables", len(counts), len(s.tables))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	for i, cs := range counts {
		if cs == nil {
			continue
		}
		s.maps[i] = newTableMap(s.tables[i].Rows(), cs)
	}
	for i := range s.state {
		s.state[i].Store(pageEmpty)
	}
	s.cache.reset()
	s.remaps.Add(1)
	return nil
}

// HotRows returns table ti's counted-row count — how many rows the current
// mapping packs into the hot head of its pages.
func (s *Store) HotRows(ti int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.maps[ti].hotRows)
}

// verifyAll asks readPage to verify every checksum block of the page —
// the prefetcher's and scrubber's off-critical-path mode.
const verifyAll = -1

// readPage returns page's float32 contents, populating the file on first
// access. It reports false only when the device failed past all retries —
// the caller falls back to direct materialization. Served contents are
// always the reference bits: block (verifyAll for all of them) is
// checksum-verified against the stored sums and a mismatching page is
// repaired from the RowSource before serving. The returned block value is
// what the caller may mark verified in the cache (putAllVerified when the
// whole page is known good). Caller holds s.mu shared.
func (s *Store) readPage(page int64, block int) ([]float32, int, bool) {
	if s.state[page].Load() != pageReady {
		if vals, persisted := s.populate(page); !persisted {
			// The write-back failed but the generated bits are correct:
			// serve them and leave persistence for the next access.
			return vals, putAllVerified, vals != nil
		}
	}
	bp := s.bufs.Get().(*[]byte)
	buf := *bp
	for attempt := 0; ; attempt++ {
		err := s.devRead(page, buf)
		if err == nil {
			break
		}
		if attempt >= s.cfg.Retries {
			s.bufs.Put(bp)
			s.readFailures.Add(1)
			s.breaker.onFailure()
			return nil, 0, false
		}
		s.retries.Add(1)
		time.Sleep(s.cfg.RetryBackoff << attempt)
	}
	if !s.cfg.DisableChecksum && !s.verifyBuf(page, buf, block) {
		// Flipped bits or a torn write-back: regenerate the reference
		// bytes, persist them, and serve the repaired page.
		s.checksumFailures.Add(1)
		vals := s.repair(page)
		s.bufs.Put(bp)
		s.breaker.onSuccess()
		s.cache.pageReads.Add(1)
		return vals, putAllVerified, true
	}
	vals := s.decodePage(buf)
	s.bufs.Put(bp)
	s.breaker.onSuccess()
	s.cache.pageReads.Add(1)
	if s.cfg.DisableChecksum || block == verifyAll {
		block = putAllVerified
	}
	return vals, block, true
}

// devRead performs one device page read, bounded by Config.ReadDeadline
// when set: a read past the deadline is abandoned to finish into its own
// pooled buffer (tracked by ioWG so Close can drain it before unmapping)
// and reported as a failure.
func (s *Store) devRead(page int64, dst []byte) error {
	if s.cfg.ReadDeadline <= 0 {
		return s.dev.ReadPage(page, dst)
	}
	type result struct {
		bp  *[]byte
		err error
	}
	ch := make(chan result, 1)
	bp := s.bufs.Get().(*[]byte)
	s.ioWG.Add(1)
	go func() {
		defer s.ioWG.Done()
		err := s.dev.ReadPage(page, *bp)
		ch <- result{bp, err}
	}()
	t := time.NewTimer(s.cfg.ReadDeadline)
	defer t.Stop()
	select {
	case r := <-ch:
		if r.err == nil {
			copy(dst, *r.bp)
		}
		s.bufs.Put(r.bp)
		return r.err
	case <-t.C:
		s.timeouts.Add(1)
		go func() { // reclaim the buffer when the straggler lands
			r := <-ch
			s.bufs.Put(r.bp)
		}()
		return errReadTimeout
	}
}

// fillPage generates page's reference bytes into buf under the current
// mapping. Caller holds s.mu shared and the page's popMu stripe.
func (s *Store) fillPage(page int64, buf []byte) {
	ti := s.tableOfPage(page)
	m := s.maps[ti]
	local := page - s.pageBase[ti]
	for i := range buf {
		buf[i] = 0
	}
	row := make([]float32, s.vecLen)
	first := local * int64(s.rpp)
	for k := 0; k < s.rpp; k++ {
		slot := first + int64(k)
		if slot >= m.rows {
			break
		}
		s.tables[ti].Row(m.rowOf(slot), row)
		kernels.EncodeRow(s.prec, buf[k*s.rowBytes:], row)
	}
}

// populate generates page's rows from the source table and writes them
// back, recording the block checksums. Striped locking serializes
// population of one page; the state check inside the lock makes it
// exactly-once per mapping generation. On a failed write-back it returns
// the generated (correct) values with persisted=false and leaves the page
// unpopulated so the next access retries; vals is nil when persisted.
func (s *Store) populate(page int64) (vals []float32, persisted bool) {
	mu := &s.popMu[page%int64(len(s.popMu))]
	mu.Lock()
	defer mu.Unlock()
	if s.state[page].Load() == pageReady {
		return nil, true
	}
	bp := s.bufs.Get().(*[]byte)
	buf := *bp
	s.fillPage(page, buf)
	if err := s.dev.WritePage(page, buf); err != nil {
		s.writeFailures.Add(1)
		s.breaker.onFailure()
		vals = s.decodePage(buf)
		s.bufs.Put(bp)
		return vals, false
	}
	s.storeSums(page, buf)
	s.bufs.Put(bp)
	s.populated.Add(1)
	s.state[page].Store(pageReady)
	return nil, true
}

// repair regenerates page bit-exactly from the source tables after a
// checksum mismatch, writes it back and refreshes the stored block sums.
// Regeneration cannot fail (the tables are procedural), so the returned
// values are always the reference bits; if only the write-back fails the
// page is demoted to unpopulated so the next access retries persistence.
// Caller holds s.mu shared.
func (s *Store) repair(page int64) []float32 {
	mu := &s.popMu[page%int64(len(s.popMu))]
	mu.Lock()
	defer mu.Unlock()
	bp := s.bufs.Get().(*[]byte)
	buf := *bp
	s.fillPage(page, buf)
	if err := s.dev.WritePage(page, buf); err != nil {
		s.writeFailures.Add(1)
		s.state[page].Store(pageEmpty)
	} else {
		s.storeSums(page, buf)
		s.state[page].Store(pageReady)
	}
	vals := s.decodePage(buf)
	s.bufs.Put(bp)
	s.repairs.Add(1)
	return vals
}

// decodePage converts a page's encoded rows to rpp*vecLen float32 values
// — for fp32 the raw little-endian bits, for fp16/int8 the canonical
// dequantized value of each row (unoccupied row slots decode to zeros).
func (s *Store) decodePage(buf []byte) []float32 {
	vals := make([]float32, s.rpp*s.vecLen)
	for k := 0; k < s.rpp; k++ {
		kernels.DecodeRow(s.prec, vals[k*s.vecLen:(k+1)*s.vecLen], buf[k*s.rowBytes:])
	}
	return vals
}

// tableOfPage finds the table owning a global page id.
func (s *Store) tableOfPage(page int64) int {
	i := sort.Search(len(s.pageBase), func(i int) bool { return s.pageBase[i] > page })
	return i - 1
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	cs := s.cache.stats()
	state := s.breaker.current()
	return Stats{
		RowReads:         s.rowReads.Load(),
		PageHits:         cs.hits,
		PageMisses:       cs.misses,
		PageReads:        cs.reads,
		Populated:        s.populated.Load(),
		Evictions:        cs.evictions,
		Prefetches:       s.prefetches.Load(),
		PrefetchDrops:    s.prefetchDrops.Load(),
		Reduces:          s.reduces.Load(),
		Remaps:           s.remaps.Load(),
		ChecksumFailures: s.checksumFailures.Load(),
		Repairs:          s.repairs.Load(),
		ScrubPages:       s.scrubPages.Load(),
		Retries:          s.retries.Load(),
		ReadFailures:     s.readFailures.Load(),
		WriteFailures:    s.writeFailures.Load(),
		ReadTimeouts:     s.timeouts.Load(),
		BreakerRejects:   s.breakerRejects.Load(),
		BreakerState:     int64(state),
		BreakerOpens:     s.breaker.opens.Load(),
		BreakerHalfOpens: s.breaker.halfOpens.Load(),
		BreakerCloses:    s.breaker.closes.Load(),
		Degraded:         state != BreakerClosed,
		Pages:            s.nPages,
		PageBytes:        int64(s.cfg.PageBytes),
		CachePages:       int64(s.cache.cap()),
	}
}

// Expo renders the recross_coldstore_* series in Prometheus text
// exposition format; the serving layer appends it to /metrics via
// serve.Server.RegisterExpo.
func (s *Store) Expo() string {
	st := s.Stats()
	var b []byte
	counter := func(name string, v int64) {
		b = append(b, fmt.Sprintf("# TYPE %s counter\n%s %d\n", name, name, v)...)
	}
	gauge := func(name string, v float64) {
		b = append(b, fmt.Sprintf("# TYPE %s gauge\n%s %g\n", name, name, v)...)
	}
	counter("recross_coldstore_row_reads_total", st.RowReads)
	counter("recross_coldstore_page_hits_total", st.PageHits)
	counter("recross_coldstore_page_misses_total", st.PageMisses)
	counter("recross_coldstore_page_reads_total", st.PageReads)
	counter("recross_coldstore_pages_populated_total", st.Populated)
	counter("recross_coldstore_evictions_total", st.Evictions)
	counter("recross_coldstore_prefetches_total", st.Prefetches)
	counter("recross_coldstore_prefetch_drops_total", st.PrefetchDrops)
	counter("recross_coldstore_reduces_total", st.Reduces)
	counter("recross_coldstore_remaps_total", st.Remaps)
	counter("recross_coldstore_checksum_failures_total", st.ChecksumFailures)
	counter("recross_coldstore_repairs_total", st.Repairs)
	counter("recross_coldstore_scrub_pages_total", st.ScrubPages)
	counter("recross_coldstore_retries_total", st.Retries)
	counter("recross_coldstore_read_failures_total", st.ReadFailures)
	counter("recross_coldstore_write_failures_total", st.WriteFailures)
	counter("recross_coldstore_read_timeouts_total", st.ReadTimeouts)
	counter("recross_coldstore_breaker_rejects_total", st.BreakerRejects)
	counter("recross_coldstore_breaker_opens_total", st.BreakerOpens)
	counter("recross_coldstore_breaker_half_opens_total", st.BreakerHalfOpens)
	counter("recross_coldstore_breaker_closes_total", st.BreakerCloses)
	gauge("recross_coldstore_breaker_state", float64(st.BreakerState))
	gauge("recross_coldstore_pages", float64(st.Pages))
	gauge("recross_coldstore_page_bytes", float64(st.PageBytes))
	gauge("recross_coldstore_cache_pages", float64(st.CachePages))
	gauge("recross_coldstore_page_hit_rate", st.HitRate())
	return string(b)
}
