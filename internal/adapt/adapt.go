// Package adapt closes the partitioning loop online. The paper's
// bandwidth-aware partitioner (§4.3) is a one-shot offline pass: profile a
// training trace, solve the LP, freeze the R/G/B placement. Production
// recommendation traffic is not stationary — item popularity churns hourly
// while the distribution's *shape* barely moves — and a frequency-driven
// placement is only as good as its freshness (the premise behind RecNMP's
// hot-entry caching and the paper's own §4.5 dynamic embedding scheduling).
//
// The subsystem has four parts, composed by the Controller:
//
//   - a streaming frequency Tracker: per-table Space-Saving top-k sketches
//     observing the live serving path with bounded memory, striped per-table
//     locks (the hot path touches one table at a time, never a global
//     lock), exact per-table access totals, and periodic count halving so
//     stale hot sets fade within a couple of control windows;
//   - a drift Detector comparing the live access curve against the
//     partition.Profile the current placement was solved for, evaluated at
//     the LP's own segment boundaries (partition.SegBounds) and — crucially
//     — under the *baseline ranking*: the cumulative curve itself is
//     permutation-invariant, so a hot-set churn that devastates the
//     placement would be invisible to a shape-only comparison; measuring
//     how much live mass still lands on rows the old profile ranked hot
//     catches identity drift and shape drift with one number;
//   - a replanner: rebuild a partition.Profile from the sketches, re-run
//     partition.SolveLP, and price the change — bytes moved between
//     regions, migration cost in bandwidth-cycles, and the predicted
//     per-batch gain from partition.Estimate of the old decision under the
//     live profile;
//   - a hysteresis gate: a new Decision is adopted only when the drift has
//     persisted for Windows consecutive checks, the predicted speedup
//     clears MinGain, the amortized gain exceeds the migration cost, and
//     the Cooldown since the last adoption has elapsed. Oscillating
//     placements cost migrations on every swing; the gate makes the loop
//     monotone under noise.
//
// Adoption is staged, never blocking: the serving layer applies the new
// mapping at replica batch boundaries (serve.Server.StageUpdate), so the
// single-goroutine System contract holds and no request waits on a swap.
package adapt

import (
	"recross/internal/partition"
)

// Rebalancer is the capability a replica System needs for online
// adoption: swap to a pre-solved placement. core.ReCross implements it;
// architectures without a partitioner simply don't, and the staged update
// leaves them untouched.
type Rebalancer interface {
	Adopt(prof *partition.Profile, dec *partition.Decision) error
}
