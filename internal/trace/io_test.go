package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBatchRoundTrip(t *testing.T) {
	spec := Uniform(3, 1000, 16, 4)
	g, err := NewGenerator(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(4)
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(b) {
		t.Fatalf("samples = %d, want %d", len(got), len(b))
	}
	for si := range b {
		if len(got[si]) != len(b[si]) {
			t.Fatalf("sample %d ops = %d, want %d", si, len(got[si]), len(b[si]))
		}
		for oi := range b[si] {
			w, h := b[si][oi], got[si][oi]
			if w.Table != h.Table || len(w.Indices) != len(h.Indices) {
				t.Fatalf("op mismatch at %d/%d", si, oi)
			}
			for k := range w.Indices {
				if w.Indices[k] != h.Indices[k] || w.Weights[k] != h.Weights[k] {
					t.Fatalf("lookup mismatch at %d/%d/%d", si, oi, k)
				}
			}
		}
	}
	if err := ValidateBatch(got, spec); err != nil {
		t.Fatal(err)
	}
}

// Property: any generated batch survives a round trip bit-exactly.
func TestBatchRoundTripProperty(t *testing.T) {
	spec := Uniform(2, 500, 8, 3)
	f := func(seed int64, n uint8) bool {
		g, err := NewGenerator(spec, seed)
		if err != nil {
			return false
		}
		b := g.Batch(int(n%5) + 1)
		var buf bytes.Buffer
		if WriteBatch(&buf, b) != nil {
			return false
		}
		got, err := ReadBatch(&buf)
		if err != nil || len(got) != len(b) {
			return false
		}
		for si := range b {
			for oi := range b[si] {
				for k := range b[si][oi].Indices {
					if got[si][oi].Indices[k] != b[si][oi].Indices[k] ||
						got[si][oi].Weights[k] != b[si][oi].Weights[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBatchErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "not-a-trace\nS\n",
		"op before sample": "recross-trace v1\nO 0\n",
		"lookup before op": "recross-trace v1\nS\n3 1.5\n",
		"bad table":        "recross-trace v1\nS\nO x\n",
		"bad index":        "recross-trace v1\nS\nO 0\nxyz 1.0\n",
		"bad weight":       "recross-trace v1\nS\nO 0\n3 abc\n",
		"short line":       "recross-trace v1\nS\nO 0\n3\n",
	}
	for name, in := range cases {
		if _, err := ReadBatch(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadBatchSkipsCommentsAndBlanks(t *testing.T) {
	in := "recross-trace v1\n# a comment\n\nS\nO 1\n# inline\n42 0.5\n"
	b, err := ReadBatch(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || len(b[0]) != 1 || b[0][0].Indices[0] != 42 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestValidateBatch(t *testing.T) {
	spec := Uniform(1, 10, 8, 2)
	good := Batch{{{Table: 0, Indices: []int64{3}, Weights: []float32{1}}}}
	if err := ValidateBatch(good, spec); err != nil {
		t.Fatal(err)
	}
	bad := []Batch{
		{{{Table: 5, Indices: []int64{1}, Weights: []float32{1}}}},
		{{{Table: 0, Indices: []int64{99}, Weights: []float32{1}}}},
		{{{Table: 0, Indices: []int64{1, 2}, Weights: []float32{1}}}},
	}
	for i, b := range bad {
		if err := ValidateBatch(b, spec); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
