// Quickstart: build every architecture over a Criteo-Kaggle workload, run
// the same batch of embedding operations through each, and compare latency,
// row-buffer behaviour and energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"recross"
)

func main() {
	// The paper's workload: 26 Criteo tables, 64-element vectors, 80
	// gathers per operation. A smaller pooling keeps this demo snappy.
	spec := recross.CriteoKaggle(64, 16)
	fmt.Printf("workload: %s, %d tables, %.1f GB of embeddings\n",
		spec.Name, len(spec.Tables), float64(spec.TotalBytes())/(1<<30))

	// One profile shared by the architectures that need offline stats.
	profile, err := recross.NewProfile(spec, 12345, 500)
	if err != nil {
		log.Fatal(err)
	}
	cfg := recross.Config{Spec: spec, Profile: profile, ProfileSamples: 500}

	// The measured trace: a batch of 8 inference samples.
	gen, err := recross.NewGenerator(spec, 777)
	if err != nil {
		log.Fatal(err)
	}
	batch := gen.Batch(8)
	fmt.Printf("batch: %d samples, %d embedding lookups\n\n", len(batch), batch.Lookups())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "architecture\tcycles\tspeedup\trow hits\tenergy (mJ)")
	var cpuCycles float64
	for _, a := range recross.Arches() {
		sys, err := recross.NewSystem(a, cfg)
		if err != nil {
			log.Fatalf("%s: %v", a, err)
		}
		stats, err := sys.Run(batch)
		if err != nil {
			log.Fatalf("%s: %v", a, err)
		}
		if a == recross.CPU {
			cpuCycles = float64(stats.Cycles)
		}
		hitRate := float64(stats.RowHits) / float64(stats.RowHits+stats.RowMisses)
		fmt.Fprintf(w, "%s\t%d\t%.2fx\t%.0f%%\t%.4f\n",
			sys.Name(), stats.Cycles, cpuCycles/float64(stats.Cycles),
			100*hitRate, stats.Energy.Total()*1e3)
	}
	w.Flush()
}
