package kernels

// Dispatch layer for the quantized kernels. Each exported kernel routes
// to a hand-vectorized implementation when the CPU supports it (AVX2 for
// the int8 family, AVX+F16C for the fp16 family — see quant_amd64.s) and
// to the portable 8-wide Go loops in quant.go otherwise.
//
// The vector paths preserve the package's bit-identity contract: no FMA
// contraction, multiplies and adds in the exact per-lane order of the
// generic code, and max with ordered-greater-than compare-and-blend
// (VMAXPS alone would flip NaN and signed-zero ties). Every dispatched
// kernel is therefore bit-identical to its generic twin on all inputs —
// TestKernelDispatchMatchesGeneric enforces it.

// useAVX2 and useF16C are set at init on amd64 when the OS and CPU
// support the respective vector paths (quant_dispatch_amd64.go).

// DecodeF16 decodes q elementwise into dst (len(q) >= len(dst)).
func DecodeF16(dst []float32, q []uint16) {
	if useF16C {
		decodeF16AVX(dst, q)
		return
	}
	decodeF16Generic(dst, q)
}

// AddF16 accumulates a binary16 row into dst: dst[i] += decode(q[i]).
// Bit-identical to DecodeF16 followed by Add.
func AddF16(dst []float32, q []uint16) {
	if useF16C {
		addF16AVX(dst, q)
		return
	}
	addF16Generic(dst, q)
}

// AxpyF16 accumulates a scaled binary16 row: dst[i] += w*decode(q[i]).
// The decode result is a float32 value, so multiply-then-add matches
// Axpy on the decoded row exactly.
func AxpyF16(dst []float32, q []uint16, w float32) {
	if useF16C {
		axpyF16AVX(dst, q, w)
		return
	}
	axpyF16Generic(dst, q, w)
}

// MaxF16 folds a binary16 row into dst under max, with the scalar
// reference's comparison semantics on the decoded values.
func MaxF16(dst []float32, q []uint16) {
	if useF16C {
		maxF16AVX(dst, q)
		return
	}
	maxF16Generic(dst, q)
}

// DecodeI8 dequantizes q into dst (len(q) >= len(dst)):
// dst[i] = float32(int32(q[i])-zero) * scale. The int-to-float conversion
// is exact (|q-zero| <= 510 < 2^24), so the only rounding is the final
// product — the same single-rounded expression every fused kernel uses.
func DecodeI8(dst []float32, q []uint8, scale float32, zero int32) {
	if useAVX2 {
		decodeI8AVX2(dst, q, scale, zero)
		return
	}
	decodeI8Generic(dst, q, scale, zero)
}

// AddI8 accumulates a quantized row into dst: dst[i] += dequant(q[i]).
// Bit-identical to DecodeI8 followed by Add.
func AddI8(dst []float32, q []uint8, scale float32, zero int32) {
	if useAVX2 {
		addI8AVX2(dst, q, scale, zero)
		return
	}
	addI8Generic(dst, q, scale, zero)
}

// AxpyI8 accumulates a scaled quantized row: dst[i] += w*dequant(q[i]).
// The dequantized lane is rounded to float32 before the weight multiply
// (v := dequant; dst += w*v), matching Axpy on the decoded row exactly —
// w is never folded into scale.
func AxpyI8(dst []float32, q []uint8, w, scale float32, zero int32) {
	if useAVX2 {
		axpyI8AVX2(dst, q, w, scale, zero)
		return
	}
	axpyI8Generic(dst, q, w, scale, zero)
}

// MaxI8 folds a quantized row into dst under max on the dequantized
// values, with the scalar reference's comparison semantics.
func MaxI8(dst []float32, q []uint8, scale float32, zero int32) {
	if useAVX2 {
		maxI8AVX2(dst, q, scale, zero)
		return
	}
	maxI8Generic(dst, q, scale, zero)
}
