package adapt

import (
	"math"
	"sync"
	"testing"

	"recross/internal/nmp"
	"recross/internal/partition"
	"recross/internal/trace"
)

func testSpec() trace.ModelSpec {
	return trace.ModelSpec{Name: "adapt-test", Tables: []trace.TableSpec{
		{Name: "adapt-hot", Rows: 50000, VecLen: 16, Pooling: 8, Prob: 1, Skew: 1.2},
		{Name: "adapt-mild", Rows: 20000, VecLen: 16, Pooling: 8, Prob: 1, Skew: 0.9},
	}}
}

func testRegions(total int64) []partition.Region {
	scaled := total * 3 / 2
	return []partition.Region{
		{Name: "R", Level: nmp.LevelRank, CapBytes: scaled * 16 / 32, BW: 8},
		{Name: "G", Level: nmp.LevelBankGroup, CapBytes: scaled * 12 / 32, BW: 40},
		{Name: "B", Level: nmp.LevelBank, CapBytes: scaled * 4 / 32, BW: 120},
	}
}

func feed(tr *Tracker, g *trace.Generator, samples int) {
	for i := 0; i < samples; i++ {
		tr.Observe(g.Sample())
	}
}

func TestSketchRetainsHeavyHitters(t *testing.T) {
	spec := testSpec()
	tr, err := NewTracker(spec, TrackerOptions{TopK: 512})
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	feed(tr, g, 1500)
	snaps := tr.Snapshot()
	for ti, hist := range g.Histograms() {
		retained := make(map[int64]int64, len(snaps[ti].Keys))
		for k, key := range snaps[ti].Keys {
			retained[key] = snaps[ti].Counts[k]
		}
		// Every one of the true top-20 keys must be in the sketch, and its
		// estimate must not undercount (Space-Saving never underestimates).
		for _, key := range hist.HotKeys(20) {
			est, ok := retained[key]
			if !ok {
				t.Fatalf("table %d: true heavy hitter %d evicted from sketch", ti, key)
			}
			if est < hist.Count(key) {
				t.Fatalf("table %d key %d: estimate %d < true count %d", ti, key, est, hist.Count(key))
			}
		}
	}
}

func TestSketchSnapshotDescendingAndTotalExact(t *testing.T) {
	spec := testSpec()
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 64})
	g, _ := trace.NewGenerator(spec, 7)
	feed(tr, g, 400)
	for ti, sn := range tr.Snapshot() {
		if want := g.Histograms()[ti].Total(); sn.Total != want {
			t.Fatalf("table %d: sketch total %d != true total %d", ti, sn.Total, want)
		}
		for k := 1; k < len(sn.Counts); k++ {
			if sn.Counts[k] > sn.Counts[k-1] {
				t.Fatalf("table %d: snapshot counts not descending at %d", ti, k)
			}
		}
		if len(sn.Keys) > 64 {
			t.Fatalf("table %d: sketch holds %d keys, cap 64", ti, len(sn.Keys))
		}
	}
}

func TestSketchDecayHalves(t *testing.T) {
	spec := testSpec()
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 128})
	g, _ := trace.NewGenerator(spec, 11)
	feed(tr, g, 200)
	before := tr.Snapshot()
	samplesBefore := tr.Samples()
	tr.Decay()
	after := tr.Snapshot()
	for ti := range before {
		if after[ti].Total != before[ti].Total/2 {
			t.Fatalf("table %d: total %d after decay, want %d", ti, after[ti].Total, before[ti].Total/2)
		}
	}
	if tr.Samples() != samplesBefore/2 {
		t.Fatalf("samples %d after decay, want %d", tr.Samples(), samplesBefore/2)
	}
	// Repeated decay with no traffic must drain the sketch to empty.
	for i := 0; i < 40; i++ {
		tr.Decay()
	}
	for ti, sn := range tr.Snapshot() {
		if len(sn.Keys) != 0 || sn.Total != 0 {
			t.Fatalf("table %d: sketch not drained after decay: %d keys, total %d", ti, len(sn.Keys), sn.Total)
		}
	}
}

func TestTrackerThinning(t *testing.T) {
	spec := testSpec()
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 64, SampleEvery: 4})
	g, _ := trace.NewGenerator(spec, 3)
	feed(tr, g, 100)
	if got := tr.Samples(); got != 25 {
		t.Fatalf("observed %d samples with 1-in-4 thinning of 100, want 25", got)
	}
}

func TestTrackerProfileFeedsSolverAndBuild(t *testing.T) {
	spec := testSpec()
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 512})
	g, _ := trace.NewGenerator(spec, 21)
	feed(tr, g, 1200)
	prof, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	// The sketch profile must capture the head concentration: the skewed
	// table's hottest 1% should cover far more than 1% of accesses.
	if cov := prof.CDFs[0].At(0.01); cov < 0.2 {
		t.Fatalf("sketch CDF head coverage %.3f, want > 0.2 for skew 1.2", cov)
	}
	regions := testRegions(spec.TotalBytes())
	dec, err := partition.SolveLP(prof, regions, 32)
	if err != nil {
		t.Fatalf("sketch profile rejected by solver: %v", err)
	}
	for i := range spec.Tables {
		var sum float64
		for j := range regions {
			sum += dec.RowFrac[i][j]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("table %d row fractions sum to %g", i, sum)
		}
	}
	if _, err := partition.Build(prof, dec); err != nil {
		t.Fatalf("sketch profile rejected by placement build: %v", err)
	}
}

func TestTrackerConcurrentObserve(t *testing.T) {
	spec := testSpec()
	tr, _ := NewTracker(spec, TrackerOptions{TopK: 256})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			g, err := trace.NewGenerator(spec, seed)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				tr.Observe(g.Sample())
			}
		}(int64(100 + w))
	}
	wg.Wait()
	if got := tr.Samples(); got != 800 {
		t.Fatalf("observed %d samples from 4x200 goroutines, want 800", got)
	}
	for ti, sn := range tr.Snapshot() {
		var want int64 = 800 * int64(spec.Tables[ti].Pooling)
		if sn.Total != want {
			t.Fatalf("table %d: total %d, want %d", ti, sn.Total, want)
		}
	}
}

func TestTrackerHot(t *testing.T) {
	spec := testSpec()
	tr, err := NewTracker(spec, TrackerOptions{TopK: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Cold start: no evidence yet, everything is admitted.
	if !tr.Hot(0, 123) {
		t.Fatal("empty sketch should admit everything (cold start)")
	}
	// Out-of-range tables are never hot.
	if tr.Hot(-1, 0) || tr.Hot(len(spec.Tables), 0) {
		t.Fatal("out-of-range table reported hot")
	}

	// A stream dominated by one key: that key is hot, strangers are not.
	s := trace.Sample{{Table: 0, Kind: trace.Sum,
		Indices: make([]int64, 8), Weights: make([]float32, 8)}}
	for i := 0; i < 100; i++ {
		tr.Observe(s) // 800 accesses to row 0 of table 0
	}
	if !tr.Hot(0, 0) {
		t.Fatal("dominant key should be hot")
	}
	if tr.Hot(0, 999) {
		t.Fatal("never-seen key reported hot")
	}
	// Table 1 saw nothing: still cold-start-admitting.
	if !tr.Hot(1, 7) {
		t.Fatal("untouched table should still admit (its sketch is empty)")
	}

	// A key observed once against an 800-strong total is retained (the
	// sketch has spare capacity) but far below the total/k threshold.
	one := trace.Sample{{Table: 0, Kind: trace.Sum,
		Indices: []int64{42}, Weights: []float32{1}}}
	tr.Observe(one)
	if tr.Hot(0, 42) {
		t.Fatal("1-of-801 key should be below the total/k admission bar")
	}
}
