package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"recross/internal/serve"
	"recross/internal/sim"
	"recross/internal/trace"
)

// maxLookupBody mirrors the single-node server's request bound.
const maxLookupBody = 1 << 20

// Handler returns the router's HTTP front-end, wire-compatible with a
// single node's so clients (and upstream routers) need not care which
// they talk to:
//
//	POST /v1/lookup  — scatter-gather one sample (JSON in/out; the
//	                   response is a serve.LookupResponse with
//	                   Replica=-1 and ServiceCycles set to the
//	                   cluster critical path)
//	GET  /metrics    — recross_cluster_* Prometheus text exposition
//	GET  /healthz    — aggregated cluster health JSON; 200 while
//	                   serving ("ok" or "degraded"), 503 once draining
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lookup", r.handleLookup)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, r.Expo())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := r.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	return mux
}

func (r *Router) handleLookup(w http.ResponseWriter, req *http.Request) {
	var lr serve.LookupRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxLookupBody))
	if err := dec.Decode(&lr); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	sample, err := serve.ParseSample(r.opts.Layer, lr)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := r.Lookup(req.Context(), sample)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrRouterClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			code = 499
		}
		httpErr(w, code, err)
		return
	}
	serve.WriteJSON(w, 0, serve.LookupResponse{
		Vectors:       res.Vectors,
		BatchSize:     len(sample),
		ServiceCycles: int64(res.ServiceCycles),
		Replica:       -1,
		Retries:       res.Retries,
		Degraded:      res.Degraded,
		TotalMicros:   float64(res.Total.Nanoseconds()) / 1e3,
	})
}

func httpErr(w http.ResponseWriter, code int, err error) {
	serve.WriteJSON(w, code, map[string]string{"error": err.Error()})
}

// HTTPNode is the real-network transport driver: a cluster.Node backed
// by a TCP/HTTP peer speaking the /v1/lookup wire format — any plain
// `recross-serve -addr` process is a valid peer with no node-side
// changes. JSON encodes float32s exactly (shortest round-trip form),
// so results through an HTTPNode remain bit-identical to in-process
// ones.
type HTTPNode struct {
	id     string
	base   string
	client *http.Client

	lookups  atomic.Int64
	failures atomic.Int64
	cycles   atomic.Int64
}

// defaultHTTPClient is HTTPNode's keep-alive-tuned default: a hot
// cluster pushes hundreds of concurrent sub-requests per peer, and
// http.DefaultTransport's 2-conns-per-host idle cap would discard —
// and redial — most of them. Per-call deadlines still come from the
// router's contexts, so no Client.Timeout.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	},
}

// NewHTTPNode builds a node for the peer at base (e.g.
// "http://10.0.0.7:8080"). client may be nil for a shared
// keep-alive-tuned default; per-call deadlines come from the router's
// contexts either way.
func NewHTTPNode(id, base string, client *http.Client) *HTTPNode {
	if client == nil {
		client = defaultHTTPClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &HTTPNode{id: id, base: base, client: client}
}

// ID names the node.
func (n *HTTPNode) ID() string { return n.id }

// Lookup POSTs the sample to the peer's /v1/lookup.
func (n *HTTPNode) Lookup(ctx context.Context, sample trace.Sample) (*serve.Result, error) {
	body, err := json.Marshal(serve.WireRequest(sample))
	if err != nil {
		n.failures.Add(1)
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/v1/lookup", bytes.NewReader(body))
	if err != nil {
		n.failures.Add(1)
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		n.failures.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrNodeDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.failures.Add(1)
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e)
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if e.Error == "" {
			e.Error = resp.Status
		}
		return nil, fmt.Errorf("cluster: node %s: %s", n.id, e.Error)
	}
	var lr serve.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		n.failures.Add(1)
		return nil, fmt.Errorf("cluster: node %s: %w", n.id, err)
	}
	// Drain the trailing newline the decoder leaves behind — an
	// un-drained body forfeits keep-alive reuse and forces a fresh dial
	// on the next sub-request.
	_, _ = io.Copy(io.Discard, resp.Body)
	n.lookups.Add(1)
	n.cycles.Add(lr.ServiceCycles)
	return &serve.Result{
		Vectors:       lr.Vectors,
		BatchSize:     lr.BatchSize,
		ServiceCycles: sim.Cycle(lr.ServiceCycles),
		Replica:       lr.Replica,
		Retries:       lr.Retries,
		Degraded:      lr.Degraded,
		ColdDegraded:  lr.ColdDegraded,
		QueueWait:     time.Duration(lr.QueueMicros * 1e3),
		Total:         time.Duration(lr.TotalMicros * 1e3),
	}, nil
}

// Health GETs the peer's /healthz. A 503 body still decodes (the peer
// reports "draining"); transport failures surface as errors.
func (n *HTTPNode) Health(ctx context.Context) (serve.HealthReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+"/healthz", nil)
	if err != nil {
		return serve.HealthReport{}, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return serve.HealthReport{}, fmt.Errorf("%w: %v", ErrNodeDown, err)
	}
	defer resp.Body.Close()
	var h serve.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return serve.HealthReport{}, fmt.Errorf("cluster: node %s healthz: %w", n.id, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return h, nil
}

// Stats reports cumulative client-side counters.
func (n *HTTPNode) Stats() NodeStats {
	return NodeStats{
		Lookups:  n.lookups.Load(),
		Failures: n.failures.Load(),
		Cycles:   n.cycles.Load(),
	}
}

// Close is a no-op: the peer's lifecycle is not ours.
func (n *HTTPNode) Close() error { return nil }
