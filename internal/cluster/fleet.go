package cluster

import (
	"errors"
	"fmt"
	"sync"

	"recross/internal/serve"
)

// Fleet is the goroutine-fleet transport driver: N serve.Servers in
// one binary, each wrapped as a LocalNode. It owns the servers'
// lifecycles — Kill(i) drains node i (the node keeps answering
// ErrNodeDown), Restart(i) rebuilds it from the stored factory and
// swaps it back in, so routers holding the Node handles see a real
// node loss and re-admission without reconfiguration.
type Fleet struct {
	build func(i int) (*serve.Server, error)
	nodes []*LocalNode

	mu     sync.Mutex // serializes Kill/Restart/Close per fleet
	closed bool
}

// NewFleet builds n servers with the factory and wraps them as nodes
// named "node0".."node<n-1>". On a build failure the already-built
// servers are closed.
func NewFleet(n int, build func(i int) (*serve.Server, error)) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: fleet of %d nodes", n)
	}
	if build == nil {
		return nil, errors.New("cluster: fleet needs a node factory")
	}
	f := &Fleet{build: build}
	for i := 0; i < n; i++ {
		srv, err := build(i)
		if err != nil {
			for _, nd := range f.nodes {
				_ = nd.Close()
			}
			return nil, fmt.Errorf("cluster: build node %d: %w", i, err)
		}
		f.nodes = append(f.nodes, NewLocalNode(fmt.Sprintf("node%d", i), srv))
	}
	return f, nil
}

// Len reports the fleet size.
func (f *Fleet) Len() int { return len(f.nodes) }

// Nodes returns the fleet members as transport-driver handles, indexed
// stably (the slice is fresh; the nodes are shared).
func (f *Fleet) Nodes() []Node {
	out := make([]Node, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n
	}
	return out
}

// Node returns member i as its concrete LocalNode.
func (f *Fleet) Node(i int) *LocalNode { return f.nodes[i] }

// Kill drains and closes node i's server; the node answers ErrNodeDown
// until Restart.
func (f *Fleet) Kill(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(i); err != nil {
		return err
	}
	srv := f.nodes[i].Swap(nil)
	if srv == nil {
		return nil // already down
	}
	return srv.Close()
}

// Restart rebuilds node i with the factory and swaps it in. A node
// that was never killed is replaced (the old server is drained).
func (f *Fleet) Restart(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.check(i); err != nil {
		return err
	}
	srv, err := f.build(i)
	if err != nil {
		return fmt.Errorf("cluster: rebuild node %d: %w", i, err)
	}
	if old := f.nodes[i].Swap(srv); old != nil {
		return old.Close()
	}
	return nil
}

func (f *Fleet) check(i int) error {
	if f.closed {
		return errors.New("cluster: fleet closed")
	}
	if i < 0 || i >= len(f.nodes) {
		return fmt.Errorf("cluster: node %d out of [0,%d)", i, len(f.nodes))
	}
	return nil
}

// Close drains every node; the first error wins but all are closed.
func (f *Fleet) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	var first error
	for _, n := range f.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
