// recross-serve runs the embedding-inference serving layer: a pool of
// simulated NMP replicas behind a dynamic batcher with admission control,
// fronted by HTTP.
//
// Serve mode (default):
//
//	recross-serve -arch recross -replicas 2 -addr :8080
//	curl -s localhost:8080/v1/lookup -d '{"ops":[{"table":0,"indices":[1,2,3]}]}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: admission stops, every admitted
// request is answered, then the process exits.
//
// Load-generator mode runs a closed-loop benchmark in-process (no HTTP)
// and prints a throughput/latency report:
//
//	recross-serve -loadgen -clients 16 -duration 10s -replicas 4
//
// Knobs: -maxbatch/-maxdelay trade latency for throughput; -queue and
// -policy (block|shed) set the admission behaviour; -arch picks any of
// the simulated architectures (cpu, tensordimm, recnmp, trim-g, trim-b,
// recross, ...). -request-timeout is the server-side default deadline
// applied to requests that arrive without one, so Block-policy admission
// can never hold a connection forever (0 disables it). -row-cache-mb
// sizes the data plane's hot-row cache of materialized embedding rows
// (0 disables; watch recross_dataplane_row_cache_* on /metrics) and
// -reduce-workers sets the embedding-reduction worker pool size.
//
// Chaos mode wraps every replica with the fault-injection harness for
// soak runs against the self-healing pool — the server must keep
// answering (normally or degraded, never with a replica error) while
// replicas panic, wedge, stall and corrupt results:
//
//	recross-serve -loadgen -replicas 4 -duration 30s \
//	  -chaos-panic 0.01 -chaos-wedge 0.005 -chaos-latency 0.05 \
//	  -chaos-corrupt 0.01 -chaos-seed 7
//
// Watch /metrics (serve mode) for recross_replica_state,
// recross_replica_restarts_total and recross_requests_degraded_total.
//
// Adaptive mode (-adapt, arch recross only) runs the online workload
// profiler + repartitioner: admitted traffic feeds per-table frequency
// sketches, a drift detector compares the live distribution against the
// profile the deployed placement was solved for, and confirmed drift
// re-runs the partitioner and hot-swaps replicas at batch boundaries.
// Pair with the loadgen hot-set shift to watch it recover:
//
//	recross-serve -loadgen -replicas 4 -duration 30s \
//	  -adapt -adapt-interval 1s -shift-at 10s
//
// Watch /metrics for recross_adapt_drift_score,
// recross_adapt_repartitions_total and recross_adapt_realized_gain.
//
// Quantized storage (-precision fp16|int8) stores the embedding tables in
// an encoded row format that the reduce path dequantizes inline; the
// hot-row cache keeps fp32 rows, so /metrics reports the resident-vs-
// logical compression on recross_dataplane_row_compression_ratio.
// -cold-precision applies the same choice to the cold tier's pages
// independently (more rows per device read).
//
// Cold-tier mode (-cold, arch recross only) adds the flash-backed fourth
// placement level: -cold-budget-mb clamps DRAM residency so the cold tail
// of the tables spills to a file-backed store with frequency-based page
// mapping, and -cold-isr enables RecSSD-style in-storage reduction in the
// timing model. Pair with -tail-mass to aim load at the cold rows:
//
//	recross-serve -loadgen -replicas 2 -duration 30s \
//	  -cold -cold-budget-mb 8 -cold-isr -tail-mass 0.2
//
// Watch /metrics for the recross_coldstore_* series and, with -adapt,
// recross_adapt_cold_promoted_rows_total / _demoted_rows_total.
//
// Storage chaos (-chaos-cold-*, needs -cold) injects device faults under
// the cold store — transient read errors, stalls, corrupt page payloads
// and torn writes — to soak the storage fault-tolerance path: CRC32C
// page verification repairs corruption bit-exactly, bounded retries and
// the circuit breaker absorb device failures, and sustained outages flip
// the route to direct materialization (cold-degraded mode, still
// bit-exact). Pair with -cold-scrub so the background scrubber verifies
// pages and re-closes the breaker after an outage:
//
//	recross-serve -loadgen -replicas 2 -duration 30s \
//	  -cold -cold-budget-mb 8 -tail-mass 0.2 -cold-scrub 50ms \
//	  -chaos-cold-read-err 0.02 -chaos-cold-corrupt 0.01 -chaos-cold-stall-p 0.05
//
// Watch /metrics for recross_coldstore_checksum_failures_total,
// _repairs_total, _breaker_state and recross_requests_cold_degraded_total.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (-pprof-addr)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"recross"
	"recross/internal/serve"
)

func main() {
	archFlag := flag.String("arch", "recross", "architecture to replicate")
	veclen := flag.Int("veclen", 64, "embedding vector length (FP32 elements)")
	pooling := flag.Int("pooling", 80, "gathers per embedding operation")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	channels := flag.Int("channels", 1, "memory channels per replica")
	terabyte := flag.Bool("terabyte", false, "use the Criteo-Terabyte-scale spec")
	profSamples := flag.Int("profile", 2000, "offline profiling samples")

	replicas := flag.Int("replicas", 2, "replica systems in the worker pool")
	maxBatch := flag.Int("maxbatch", 32, "dynamic batcher: flush at this many samples")
	maxDelay := flag.Duration("maxdelay", 2*time.Millisecond, "dynamic batcher: flush after this long")
	queueDepth := flag.Int("queue", 256, "admission queue depth (requests)")
	policy := flag.String("policy", "block", "overload policy: block or shed")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second,
		"server-side default deadline for requests arriving without one, so block-policy admission cannot hold a connection forever (0 = none)")
	quorum := flag.Int("quorum", 1, "minimum available replicas before degraded mode (functional-layer answers)")
	maxRetries := flag.Int("max-retries", 2, "per-request retry budget after a replica failure")
	wedgeTimeout := flag.Duration("wedge-timeout", 5*time.Second, "declare a replica wedged after one batch runs this long (keep well above the worst-case batch wall time, or slow legitimate batches are treated as wedges and the pool thrashes)")
	rowCacheMB := flag.Int64("row-cache-mb", 64, "hot-row cache budget in MiB for materialized embedding rows (0 disables); watch recross_dataplane_row_cache_* on /metrics")
	precision := flag.String("precision", "fp32", "DRAM-tier embedding row storage format: fp32, fp16 or int8; watch recross_dataplane_row_bytes_* on /metrics")
	coldPrecision := flag.String("cold-precision", "fp32", "cold-tier page row format: fp32, fp16 or int8 (needs -cold)")
	reduceWorkers := flag.Int("reduce-workers", 0, "embedding-reduction worker goroutines (0 = min(4, GOMAXPROCS))")

	chaosPanic := flag.Float64("chaos-panic", 0, "chaos: per-batch replica panic probability")
	chaosWedge := flag.Float64("chaos-wedge", 0, "chaos: per-batch wedged (never-returning) batch probability")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "chaos: per-batch corrupted-result probability")
	chaosLatency := flag.Float64("chaos-latency", 0, "chaos: per-batch injected-stall probability")
	chaosStall := flag.Duration("chaos-stall", 500*time.Microsecond, "chaos: injected stall duration")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: injection RNG seed (replica i draws from seed+i)")

	adaptOn := flag.Bool("adapt", false, "run the online workload profiler + adaptive repartitioner (arch recross only)")
	adaptInterval := flag.Duration("adapt-interval", 2*time.Second, "adapt: control-window length")
	adaptThreshold := flag.Float64("adapt-threshold", 0.12, "adapt: drift score that counts a window as drifted")
	adaptTopK := flag.Int("adapt-topk", 512, "adapt: Space-Saving sketch capacity per table")
	adaptWindows := flag.Int("adapt-windows", 2, "adapt: consecutive drifted windows before replanning")
	adaptCooldown := flag.Duration("adapt-cooldown", 30*time.Second, "adapt: minimum time between adopted repartitions")
	adaptMinGain := flag.Float64("adapt-min-gain", 0.05, "adapt: minimum predicted speedup a plan must clear")

	coldOn := flag.Bool("cold", false, "enable the flash-backed cold tier (arch recross only); watch recross_coldstore_* on /metrics")
	coldCapMB := flag.Int64("cold-cap-mb", 1024, "cold: tier capacity in MiB offered to the partitioner")
	coldBudgetMB := flag.Int64("cold-budget-mb", 0, "cold: DRAM residency budget in MiB (0 = geometric capacity); table mass beyond it spills to flash")
	coldPageKB := flag.Int("cold-page-kb", 16, "cold: device page size in KiB")
	coldISR := flag.Bool("cold-isr", false, "cold: in-storage reduction (one partial sum per op crosses the link)")
	coldCacheMB := flag.Int64("cold-cache-mb", 1, "cold: host page-cache budget in MiB")
	coldMmap := flag.Bool("cold-mmap", false, "cold: mmap the backing file instead of pread")
	coldDir := flag.String("cold-dir", "", "cold: backing-file directory (default: system temp dir)")
	coldNoChecksum := flag.Bool("cold-no-checksum", false, "cold: disable per-page CRC32C verification (benchmarking only)")
	coldRetries := flag.Int("cold-retries", 2, "cold: device-read retries before the page read fails (-1 disables)")
	coldDeadline := flag.Duration("cold-read-deadline", 0, "cold: per-page-read deadline; slower reads are abandoned and fail (0 = none)")
	coldScrub := flag.Duration("cold-scrub", 0, "cold: background scrubber page-verify interval (0 disables); also the breaker's recovery probe")
	coldBrkThreshold := flag.Int("cold-breaker-threshold", 4, "cold: consecutive device failures that open the circuit breaker")
	coldBrkCooldown := flag.Duration("cold-breaker-cooldown", 50*time.Millisecond, "cold: breaker open->half-open cooldown")
	coldBrkProbes := flag.Int("cold-breaker-probes", 2, "cold: successful half-open probes that re-close the breaker")

	chaosColdReadErr := flag.Float64("chaos-cold-read-err", 0, "chaos: per-page-read transient device error probability (needs -cold)")
	chaosColdStallP := flag.Float64("chaos-cold-stall-p", 0, "chaos: per-page-read injected stall probability (needs -cold)")
	chaosColdCorrupt := flag.Float64("chaos-cold-corrupt", 0, "chaos: per-page-read corrupted payload probability (needs -cold)")
	chaosColdTorn := flag.Float64("chaos-cold-torn", 0, "chaos: per-page-write torn (half-persisted) write probability (needs -cold)")
	chaosColdStall := flag.Duration("chaos-cold-stall", 2*time.Millisecond, "chaos: injected cold device stall duration")

	clusterN := flag.Int("cluster", 0, "cluster mode: front an in-process fleet of this many nodes with a scatter-gather router (0 = single-node mode)")
	clusterPeers := flag.String("cluster-peers", "", "cluster mode: comma-separated peer addresses fronted instead of an in-process fleet; http://host:port peers speak JSON over HTTP (plain `recross-serve -addr` processes), bin://host:port or bare host:port peers speak the binary wire (`recross-serve -bin-addr` listeners)")
	wireMode := flag.String("wire", "auto", "cluster: peer transport: auto (by address scheme), json, or binary")
	wireConns := flag.Int("wire-conns", 2, "cluster: binary-transport connection pool size per peer")
	wirePrecision := flag.String("wire-precision", "fp32", "cluster: binary-wire response vector encoding: fp32 (bit-identical), fp16 or int8 (storage-codec rounding, opt-in)")
	binAddr := flag.String("bin-addr", "", "binary wire-protocol listen address (e.g. :9090); serves lookups beside the HTTP front-end in both single-node and cluster-router modes (empty disables)")
	clusterReplication := flag.Int("cluster-replication", 2, "cluster: replica count for hot tables")
	clusterPlacementMode := flag.String("cluster-placement", "ring", "cluster: placement mode: ring (consistent hashing) or cost (LPT over access volumes, LP-priced)")
	clusterHotK := flag.Int("cluster-hot-k", 0, "cluster: replicate the k largest-volume tables (0 = tables/4, negative = none)")
	clusterVNodes := flag.Int("cluster-vnodes", 64, "cluster: ring virtual nodes per unit node weight")
	clusterHedge := flag.Duration("cluster-hedge", 0, "cluster: hedge delay for replicated tables (0 = derived from each node's p99, negative = no hedging)")
	clusterNodeTimeout := flag.Duration("cluster-node-timeout", 2*time.Second, "cluster: per-node sub-request deadline")
	clusterProbe := flag.Duration("cluster-probe", 250*time.Millisecond, "cluster: prober interval (hedge-delay refresh + dead-node re-admission; negative disables)")
	clusterRebalance := flag.Duration("cluster-rebalance", 0, "cluster: sketch-driven placement refresh interval (0 disables)")

	chaosNodeKill := flag.Float64("chaos-node-kill", 0, "chaos: per-lookup node kill probability (cluster mode; sticky until the prober re-admits)")
	chaosNodePartition := flag.Float64("chaos-node-partition", 0, "chaos: per-lookup node partition probability (cluster mode)")
	chaosNodeSlow := flag.Float64("chaos-node-slow", 0, "chaos: per-lookup node slow-call probability (cluster mode)")
	chaosNodeStall := flag.Duration("chaos-node-stall", 2*time.Millisecond, "chaos: node slow-call stall duration")
	chaosNodeDowntime := flag.Duration("chaos-node-downtime", 2*time.Second, "chaos: auto-revive a killed node after this long (0 = down until the process exits)")
	chaosConnTorn := flag.Float64("chaos-conn-torn", 0, "chaos: per-frame-write torn-frame probability on binary-wire conns (cluster mode, binary peers)")
	chaosConnReset := flag.Float64("chaos-conn-reset", 0, "chaos: per-frame-write conn-reset probability on binary-wire conns (cluster mode, binary peers)")
	chaosConnStallP := flag.Float64("chaos-conn-stall", 0, "chaos: per-frame-write slow-writer stall probability on binary-wire conns (cluster mode, binary peers)")
	chaosConnStall := flag.Duration("chaos-conn-stall-dur", time.Millisecond, "chaos: injected conn write-stall duration")

	addr := flag.String("addr", ":8080", "HTTP listen address")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	loadgen := flag.Bool("loadgen", false, "run the closed-loop load generator instead of serving HTTP")
	clients := flag.Int("clients", 8, "loadgen: concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "loadgen: run length")
	seed := flag.Int64("seed", 1, "loadgen: client trace seed base")
	timeout := flag.Duration("timeout", 0, "loadgen: per-request deadline (0 = none)")
	shiftAt := flag.Duration("shift-at", 0, "loadgen: permute the Zipf hot set after this much of the run (0 = never)")
	shiftSalt := flag.Int64("shift-salt", 1, "loadgen: hot-set permutation salt")
	tailMass := flag.Float64("tail-mass", 0, "loadgen: fraction of index draws redirected to the cold half of the rank space (0 = pure Zipf)")
	flag.Parse()

	if *pprofAddr != "" {
		// The profiler gets its own listener so profiling traffic never
		// competes with (or is admission-controlled like) serving traffic.
		go func() {
			fmt.Fprintf(os.Stderr, "recross-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "recross-serve: pprof server: %v\n", err)
			}
		}()
	}

	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	spec := recross.CriteoKaggle(*veclen, *pooling)
	if *terabyte {
		spec = recross.CriteoTerabyte(*veclen, *pooling)
	}
	prec, err := recross.ParsePrecision(*precision)
	if err != nil {
		fail(err)
	}
	coldPrec, err := recross.ParsePrecision(*coldPrecision)
	if err != nil {
		fail(err)
	}
	cfg := recross.Config{
		Spec: spec, Ranks: *ranks, Channels: *channels,
		Batch: *maxBatch, ProfileSamples: *profSamples,
		Precision: prec,
	}
	coldChaosOn := *chaosColdReadErr > 0 || *chaosColdStallP > 0 || *chaosColdCorrupt > 0 || *chaosColdTorn > 0
	var coldDev *recross.FaultyColdDevice
	if *coldOn {
		cfg.Cold = &recross.ColdTierConfig{
			CapBytes:            *coldCapMB << 20,
			ResidentBudgetBytes: *coldBudgetMB << 20,
			PageBytes:           *coldPageKB << 10,
			InStorageReduce:     *coldISR,
			CacheBytes:          *coldCacheMB << 20,
			Mmap:                *coldMmap,
			Dir:                 *coldDir,
			DisableChecksum:     *coldNoChecksum,
			Retries:             *coldRetries,
			ReadDeadline:        *coldDeadline,
			ScrubInterval:       *coldScrub,
			BreakerThreshold:    *coldBrkThreshold,
			BreakerCooldown:     *coldBrkCooldown,
			BreakerProbes:       *coldBrkProbes,
			Precision:           coldPrec,
		}
		if coldChaosOn {
			cfc := recross.ColdFaultConfig{
				Rates: recross.ColdFaultRates{
					ReadErr:     *chaosColdReadErr,
					Stall:       *chaosColdStallP,
					CorruptPage: *chaosColdCorrupt,
					TornWrite:   *chaosColdTorn,
				},
				Stall: *chaosColdStall,
				Seed:  *chaosSeed,
			}
			cfg.Cold.WrapDevice = func(d recross.ColdDevice) recross.ColdDevice {
				coldDev = recross.WrapColdDevice(d, cfc, nil)
				return coldDev
			}
		}
	} else if coldChaosOn {
		fail(errors.New("-chaos-cold-* flags require -cold"))
	}

	if *clusterN == 0 && *clusterPeers == "" {
		fmt.Fprintf(os.Stderr, "recross-serve: building %d %s replica(s) over %s (%d tables)...\n",
			*replicas, *archFlag, spec.Name, len(spec.Tables))
	}
	t0 := time.Now()
	sopts := recross.ServeOptions{
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		QueueDepth:     *queueDepth,
		Policy:         pol,
		DefaultTimeout: *reqTimeout,
		Quorum:         *quorum,
		MaxRetries:     *maxRetries,
		WedgeTimeout:   *wedgeTimeout,
		RowCacheBytes:  *rowCacheMB << 20,
		ReduceWorkers:  *reduceWorkers,
	}
	fc := recross.FaultConfig{
		Rates: recross.FaultRates{
			Panic:   *chaosPanic,
			Wedge:   *chaosWedge,
			Corrupt: *chaosCorrupt,
			Latency: *chaosLatency,
		},
		Stall: *chaosStall,
		Seed:  *chaosSeed,
	}
	chaosOn := *chaosPanic > 0 || *chaosWedge > 0 || *chaosCorrupt > 0 || *chaosLatency > 0

	// Cluster mode: N nodes behind the scatter-gather router, each a full
	// serving stack. Node-level chaos has its own -chaos-node-* knobs;
	// the per-replica and adaptive machinery stays single-node.
	if *clusterN > 0 || *clusterPeers != "" {
		if *adaptOn {
			fail(errors.New("-adapt is per-node; cluster mode rebalances with -cluster-rebalance instead"))
		}
		if chaosOn {
			fail(errors.New("replica-level -chaos-* flags are per-node; use -chaos-node-* in cluster mode"))
		}
		cc := recross.ClusterConfig{
			Nodes:           *clusterN,
			ReplicasPerNode: *replicas,
			Wire:            *wireMode,
			WireConns:       *wireConns,
			WirePrecision:   *wirePrecision,
			Placement:       *clusterPlacementMode,
			Replication:     *clusterReplication,
			HotTopK:         *clusterHotK,
			VNodes:          *clusterVNodes,
			NodeTimeout:     *clusterNodeTimeout,
			HedgeDelay:      *clusterHedge,
			ProbeInterval:   *clusterProbe,
			RebalanceEvery:  *clusterRebalance,
			Serve:           sopts,
		}
		if *clusterPeers != "" {
			cc.Peers = strings.Split(*clusterPeers, ",")
		}
		var nodeInj *recross.FaultInjector
		connChaosOn := *chaosConnTorn > 0 || *chaosConnReset > 0 || *chaosConnStallP > 0
		if *chaosNodeKill > 0 || *chaosNodePartition > 0 || *chaosNodeSlow > 0 || connChaosOn {
			nodeInj = recross.NewFaultInjector()
			nfc := recross.NodeFaultConfig{
				Rates: recross.NodeFaultRates{
					Kill:      *chaosNodeKill,
					Partition: *chaosNodePartition,
					Slow:      *chaosNodeSlow,
				},
				Conn: recross.ConnFaultRates{
					Torn:  *chaosConnTorn,
					Reset: *chaosConnReset,
					Stall: *chaosConnStallP,
				},
				Stall:      *chaosNodeStall,
				WriteStall: *chaosConnStall,
				Downtime:   *chaosNodeDowntime,
				Seed:       *chaosSeed,
			}
			cc.WrapNode = func(i int, n recross.ClusterNode) recross.ClusterNode {
				return recross.WrapFaultyNode(n, nfc, i, nodeInj)
			}
			if connChaosOn {
				cc.WrapDial = func(i int, d recross.BinDial) recross.BinDial {
					return recross.WrapFaultyBinDial(d, nfc, i, nodeInj)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "recross-serve: building cluster (nodes %d, peers %d, placement %s, replication %d, hedge %v)...\n",
			cc.Nodes, len(cc.Peers), cc.Placement, cc.Replication, *clusterHedge)
		cs, err := recross.NewClusterServer(recross.Arch(*archFlag), cfg, cc)
		if err != nil {
			fail(err)
		}
		if nodeInj != nil {
			fmt.Fprintf(os.Stderr, "recross-serve: CHAOS NODE ON (kill %.3g, partition %.3g, slow %.3g, stall %v, seed %d)\n",
				*chaosNodeKill, *chaosNodePartition, *chaosNodeSlow, *chaosNodeStall, *chaosSeed)
		}
		pl := cs.Router.Placement()
		fmt.Fprintf(os.Stderr, "recross-serve: cluster ready in %v (%d tables, %d replicated, mode %s)\n",
			time.Since(t0).Round(time.Millisecond), pl.Tables(), pl.Replicated(), pl.Mode)
		if *loadgen {
			runClusterLoadgen(cs, spec, *clients, *duration, *seed, *timeout, *shiftAt, *shiftSalt, *tailMass)
			return
		}
		serveClusterHTTP(cs, *addr, *binAddr)
		return
	}

	var srv *recross.Server
	var ctrl *recross.AdaptController
	var inj *recross.FaultInjector
	var err2 error
	switch {
	case *adaptOn && chaosOn:
		fail(errors.New("-adapt and -chaos-* are mutually exclusive"))
	case *adaptOn:
		srv, ctrl, err2 = recross.NewAdaptiveServer(recross.Arch(*archFlag), cfg, *replicas, sopts, recross.AdaptOptions{
			TopK:      *adaptTopK,
			Interval:  *adaptInterval,
			Threshold: *adaptThreshold,
			Windows:   *adaptWindows,
			Cooldown:  *adaptCooldown,
			MinGain:   *adaptMinGain,
		})
	case chaosOn:
		srv, inj, err2 = recross.NewChaosServer(recross.Arch(*archFlag), cfg, *replicas, sopts, fc)
	default:
		srv, err2 = recross.NewServer(recross.Arch(*archFlag), cfg, *replicas, sopts)
	}
	if err2 != nil {
		fail(err2)
	}
	if ctrl != nil {
		ctrl.Start()
		defer ctrl.Stop()
		fmt.Fprintf(os.Stderr, "recross-serve: ADAPT ON (interval %v, threshold %.3g, topk %d, windows %d, cooldown %v, min-gain %.3g)\n",
			*adaptInterval, *adaptThreshold, *adaptTopK, *adaptWindows, *adaptCooldown, *adaptMinGain)
	}
	if cfg.Cold != nil {
		fmt.Fprintf(os.Stderr, "recross-serve: COLD TIER ON (cap %d MiB, DRAM budget %d MiB, page %d KiB, isr %v, mmap %v, checksum %v, scrub %v)\n",
			*coldCapMB, *coldBudgetMB, *coldPageKB, *coldISR, *coldMmap, !*coldNoChecksum, *coldScrub)
	}
	if coldDev != nil {
		fmt.Fprintf(os.Stderr, "recross-serve: CHAOS COLD ON (read-err %.3g, stall-p %.3g, corrupt %.3g, torn %.3g, stall %v, seed %d)\n",
			*chaosColdReadErr, *chaosColdStallP, *chaosColdCorrupt, *chaosColdTorn, *chaosColdStall, *chaosSeed)
	}
	if inj != nil {
		// Wedged batches block their abandoned goroutines until released;
		// do so at exit so a soak run terminates cleanly.
		defer inj.ReleaseWedges()
		fmt.Fprintf(os.Stderr, "recross-serve: CHAOS ON (panic %.3g, wedge %.3g, corrupt %.3g, latency %.3g, stall %v, seed %d)\n",
			*chaosPanic, *chaosWedge, *chaosCorrupt, *chaosLatency, *chaosStall, *chaosSeed)
	}
	fmt.Fprintf(os.Stderr, "recross-serve: pool ready in %v (maxbatch %d, maxdelay %v, queue %d, policy %s, request-timeout %v, quorum %d)\n",
		time.Since(t0).Round(time.Millisecond), *maxBatch, *maxDelay, *queueDepth, pol, *reqTimeout, *quorum)

	if *loadgen {
		runLoadgen(srv, ctrl, spec, *clients, *duration, *seed, *timeout, *shiftAt, *shiftSalt, *tailMass)
		return
	}
	serveHTTP(srv, *addr, *binAddr)
}

// startBinServer opens the binary wire-protocol listener beside the
// HTTP front-end. Returns nil when binAddr is empty.
func startBinServer(bs *recross.BinServer, binAddr string) *recross.BinServer {
	lis, err := net.Listen("tcp", binAddr)
	if err != nil {
		fail(err)
	}
	go func() {
		fmt.Fprintf(os.Stderr, "recross-serve: binary wire listening on %s\n", lis.Addr())
		if err := bs.Serve(lis); err != nil {
			fmt.Fprintln(os.Stderr, "recross-serve: bin server:", err)
		}
	}()
	return bs
}

func runLoadgen(srv *recross.Server, ctrl *recross.AdaptController, spec recross.ModelSpec,
	clients int, duration time.Duration, seed int64, timeout, shiftAt time.Duration, shiftSalt int64, tailMass float64) {
	fmt.Fprintf(os.Stderr, "recross-serve: loadgen %d clients for %v...\n", clients, duration)
	if shiftAt > 0 {
		fmt.Fprintf(os.Stderr, "recross-serve: hot-set shift at %v (salt %d)\n", shiftAt, shiftSalt)
	}
	if tailMass > 0 {
		fmt.Fprintf(os.Stderr, "recross-serve: tail mass %.3g (cold-half index draws)\n", tailMass)
	}
	rep, err := recross.Loadgen(srv, recross.LoadgenOptions{
		Spec:      spec,
		Clients:   clients,
		Duration:  duration,
		Seed:      seed,
		Timeout:   timeout,
		ShiftAt:   shiftAt,
		ShiftSalt: shiftSalt,
		TailMass:  tailMass,
	})
	if err != nil {
		fail(err)
	}
	if ctrl != nil {
		ctrl.Stop()
	}
	if err := srv.Close(); err != nil {
		fail(err)
	}
	fmt.Print(rep.String())
	snap := srv.Metrics().Snapshot()
	faults := snap.FaultPanics + snap.FaultWedges + snap.FaultCorrupt + snap.FaultErrors
	if faults > 0 || snap.Retries > 0 || snap.Restarts > 0 || snap.Degraded > 0 {
		fmt.Printf("  healing    %d faults (panic %d, wedge %d, corrupt %d, error %d), %d retries, %d restarts, %d degraded answers\n",
			faults, snap.FaultPanics, snap.FaultWedges, snap.FaultCorrupt, snap.FaultErrors,
			snap.Retries, snap.Restarts, snap.Degraded)
	}
	if snap.DegradedCold > 0 {
		fmt.Printf("  storage    %d answers completed in cold-degraded mode (direct materialization fallback)\n",
			snap.DegradedCold)
	}
	if ctrl != nil {
		am := ctrl.Metrics()
		fmt.Printf("  adapt      %d windows, %d drift triggers, %d replans, %d repartitions (%d rejected, %d skipped)\n",
			am.Windows, am.Triggers, am.Replans, am.Adoptions, am.Rejected, am.Skipped)
		if am.Adoptions > 0 {
			fmt.Printf("             migrated %d rows (%d bytes); estimated gain %.3fx, realized gain %.3fx\n",
				am.RowsMigrated, am.BytesMigrated, am.EstimatedGain, am.RealizedGain)
		}
	}
}

func runClusterLoadgen(cs *recross.ClusterServer, spec recross.ModelSpec,
	clients int, duration time.Duration, seed int64, timeout, shiftAt time.Duration, shiftSalt int64, tailMass float64) {
	fmt.Fprintf(os.Stderr, "recross-serve: cluster loadgen %d clients for %v...\n", clients, duration)
	if shiftAt > 0 {
		fmt.Fprintf(os.Stderr, "recross-serve: hot-set shift at %v (salt %d)\n", shiftAt, shiftSalt)
	}
	rep, err := recross.ClusterLoadgen(cs.Router, recross.LoadgenOptions{
		Spec:      spec,
		Clients:   clients,
		Duration:  duration,
		Seed:      seed,
		Timeout:   timeout,
		ShiftAt:   shiftAt,
		ShiftSalt: shiftSalt,
		TailMass:  tailMass,
	})
	if err != nil {
		fail(err)
	}
	if cerr := cs.Close(); cerr != nil {
		fail(cerr)
	}
	fmt.Print(rep.String())
	h := cs.Router.Health()
	fmt.Printf("  cluster    %d/%d nodes available, %d hedges fired (%d won), %d revivals\n",
		h.Available, h.Nodes, rep.Stats.HedgesFired, rep.Stats.HedgesWon, rep.Stats.Revivals)
}

func serveClusterHTTP(cs *recross.ClusterServer, addr, binAddr string) {
	var bs *recross.BinServer
	if binAddr != "" {
		nbs, err := recross.NewClusterBinServer(cs.Router)
		if err != nil {
			fail(err)
		}
		bs = startBinServer(nbs, binAddr)
	}
	hs := &http.Server{Addr: addr, Handler: cs.Router.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "recross-serve: cluster router listening on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "recross-serve: draining cluster...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "recross-serve: shutdown:", err)
	}
	if bs != nil {
		_ = bs.Close()
	}
	st := cs.Router.Stats()
	if err := cs.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "recross-serve: drained; routed %d requests (%d sub-requests, %d degraded)\n",
		st.Requests, st.Subrequests, st.Degraded)
}

func serveHTTP(srv *recross.Server, addr, binAddr string) {
	var bs *recross.BinServer
	if binAddr != "" {
		nbs, err := recross.NewBinServer(srv)
		if err != nil {
			fail(err)
		}
		bs = startBinServer(nbs, binAddr)
		srv.RegisterExpo(bs.Expo)
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "recross-serve: listening on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop taking TCP connections, answer in-flight HTTP
	// requests, then drain the serving queue.
	fmt.Fprintln(os.Stderr, "recross-serve: draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "recross-serve: shutdown:", err)
	}
	if bs != nil {
		_ = bs.Close()
	}
	if err := srv.Close(); err != nil {
		fail(err)
	}
	snap := srv.Metrics().Snapshot()
	fmt.Fprintf(os.Stderr, "recross-serve: drained; served %d requests in %d batches (mean %.1f samples/batch)\n",
		snap.Completed, snap.Batches, snap.MeanBatch())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "recross-serve:", err)
	os.Exit(1)
}
