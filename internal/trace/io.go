package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Batch serialization: a line-oriented text format so real traces (e.g.
// preprocessed Criteo logs) can be fed to the simulator and synthetic ones
// inspected with standard tools.
//
//	recross-trace v1
//	S                      # start of a sample
//	O <table>              # start of an op on <table>
//	<index> <weight>       # one gathered row
//
// Blank lines and lines starting with '#' are ignored.

const traceHeader = "recross-trace v1"

// WriteBatch serializes b to w.
func WriteBatch(w io.Writer, b Batch) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for _, s := range b {
		fmt.Fprintln(bw, "S")
		for _, op := range s {
			fmt.Fprintf(bw, "O %d\n", op.Table)
			for k, idx := range op.Indices {
				fmt.Fprintf(bw, "%d %g\n", idx, op.Weights[k])
			}
		}
	}
	return bw.Flush()
}

// ReadBatch parses a batch written by WriteBatch (or produced externally in
// the same format).
func ReadBatch(r io.Reader) (Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	if strings.TrimSpace(sc.Text()) != traceHeader {
		return nil, fmt.Errorf("trace: bad header %q, want %q", sc.Text(), traceHeader)
	}
	var b Batch
	var curSample *Sample
	var curOp *Op
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case line == "S":
			b = append(b, Sample{})
			curSample = &b[len(b)-1]
			curOp = nil
		case strings.HasPrefix(line, "O "):
			if curSample == nil {
				return nil, fmt.Errorf("trace: line %d: op before any sample", lineNo)
			}
			table, err := strconv.Atoi(strings.TrimSpace(line[2:]))
			if err != nil || table < 0 {
				return nil, fmt.Errorf("trace: line %d: bad table %q", lineNo, line[2:])
			}
			*curSample = append(*curSample, Op{Table: table})
			curOp = &(*curSample)[len(*curSample)-1]
		default:
			if curOp == nil {
				return nil, fmt.Errorf("trace: line %d: lookup before any op", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want \"<index> <weight>\", got %q", lineNo, line)
			}
			idx, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("trace: line %d: bad index %q", lineNo, fields[0])
			}
			w, err := strconv.ParseFloat(fields[1], 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad weight %q", lineNo, fields[1])
			}
			curOp.Indices = append(curOp.Indices, idx)
			curOp.Weights = append(curOp.Weights, float32(w))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// ValidateBatch checks b against spec: table indices in range, indices
// within their table's rows, and matching index/weight lengths.
func ValidateBatch(b Batch, spec ModelSpec) error {
	for si, s := range b {
		for oi, op := range s {
			if op.Table < 0 || op.Table >= len(spec.Tables) {
				return fmt.Errorf("trace: sample %d op %d: table %d out of range", si, oi, op.Table)
			}
			if len(op.Indices) != len(op.Weights) {
				return fmt.Errorf("trace: sample %d op %d: %d indices, %d weights",
					si, oi, len(op.Indices), len(op.Weights))
			}
			rows := spec.Tables[op.Table].Rows
			for _, idx := range op.Indices {
				if idx < 0 || idx >= rows {
					return fmt.Errorf("trace: sample %d op %d: index %d out of [0,%d)",
						si, oi, idx, rows)
				}
			}
		}
	}
	return nil
}
