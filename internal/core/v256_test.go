package core

import (
	"testing"

	"recross/internal/trace"
)

func TestVeclen256Fits(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	spec := trace.CriteoKaggle(256, 8)
	cfg := DefaultConfig(spec)
	cfg.Batch = 2
	cfg.ProfileSamples = 200
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(spec, 3)
	if _, err := r.Run(g.Batch(2)); err != nil {
		t.Fatal(err)
	}
}
