package dlrm

import (
	"math"
	"testing"

	"recross/internal/trace"
)

func trainSpec() trace.ModelSpec {
	return trace.Uniform(3, 200, 8, 2)
}

func TestNewTrainableUsesDenseTables(t *testing.T) {
	m, err := NewTrainable(trainSpec(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(trainSpec(), 2)
	s := g.Sample()
	dense := []float32{0.1, 0.2, 0.3, 0.4}
	p, err := m.Predict(dense, s)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Fatalf("CTR %g outside (0,1)", p)
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	m, err := NewTrainable(trainSpec(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(trainSpec(), 3)
	s := g.Sample()
	dense := []float32{0.5, -0.2, 0.8, 0.1}

	first, _, err := m.TrainStep(dense, s, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		last, _, err = m.TrainStep(dense, s, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
	// Fitting one sample hard should drive its CTR toward the label.
	p, err := m.Predict(dense, s)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.8 {
		t.Fatalf("after overfitting, CTR = %.3f, want > 0.8", p)
	}
}

func TestTrainStepSeparatesTwoSamples(t *testing.T) {
	m, err := NewTrainable(trainSpec(), 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(trainSpec(), 5)
	pos := g.Sample()
	neg := g.Sample()
	dPos := []float32{1, 0, 0, 0}
	dNeg := []float32{0, 1, 0, 0}
	for i := 0; i < 200; i++ {
		if _, _, err := m.TrainStep(dPos, pos, 1, 0.03); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.TrainStep(dNeg, neg, 0, 0.03); err != nil {
			t.Fatal(err)
		}
	}
	pPos, _ := m.Predict(dPos, pos)
	pNeg, _ := m.Predict(dNeg, neg)
	if pPos < 0.7 || pNeg > 0.3 {
		t.Fatalf("failed to separate: P(pos)=%.3f P(neg)=%.3f", pPos, pNeg)
	}
}

func TestTrainStepTouchedRowsMatchSample(t *testing.T) {
	m, err := NewTrainable(trainSpec(), 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(trainSpec(), 9)
	s := g.Sample()
	_, touched, err := m.TrainStep(make([]float32, 4), s, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(touched) != len(s) {
		t.Fatalf("touched %d ops, want %d", len(touched), len(s))
	}
	for oi := range s {
		if touched[oi].Table != s[oi].Table {
			t.Fatal("touched set does not mirror the sample")
		}
	}
}

func TestTrainStepValidation(t *testing.T) {
	m, err := NewTrainable(trainSpec(), 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(trainSpec(), 1)
	s := g.Sample()
	if _, _, err := m.TrainStep(make([]float32, 4), s, 0.5, 0.01); err == nil {
		t.Error("non-binary label should error")
	}
	if _, _, err := m.TrainStep(make([]float32, 4), s[:1], 1, 0.01); err == nil {
		t.Error("partial sample should error")
	}
	// Procedural (read-only) tables must be rejected.
	ro, err := New(trainSpec(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ro.TrainStep(make([]float32, 4), s, 1, 0.01); err == nil {
		t.Error("training procedural tables should error")
	}
}

func TestTrainingUpdatesEmbeddingRows(t *testing.T) {
	m, err := NewTrainable(trainSpec(), 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(trainSpec(), 21)
	s := g.Sample()
	before := make([]float32, 8)
	m.Embedding.Table(s[0].Table).Row(s[0].Indices[0], before)
	if _, _, err := m.TrainStep(make([]float32, 4), s, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	after := make([]float32, 8)
	m.Embedding.Table(s[0].Table).Row(s[0].Indices[0], after)
	same := true
	for i := range before {
		if math.Abs(float64(before[i]-after[i])) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("training did not update the gathered embedding row")
	}
}
