package recross

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// adaptiveSpec is sized so per-batch gather load dominates the regions'
// fixed psum cost — the regime where placement matters and a hot-set
// shift degrades the deployed placement measurably.
func adaptiveSpec() ModelSpec {
	return ModelSpec{Name: "adaptive-e2e", Tables: []TableSpec{
		{Name: "hot-a", Rows: 60000, VecLen: 64, Pooling: 48, Prob: 1, Skew: 1.3},
		{Name: "hot-b", Rows: 30000, VecLen: 64, Pooling: 32, Prob: 1, Skew: 1.2},
	}}
}

// serveWindow pushes waves×batch samples through the server, each wave
// submitted concurrently so the batcher flushes exactly at MaxBatch —
// every executed batch is a full one, making the simulated service
// cycles comparable across phases. Returns cycles per sample over the
// window (differenced from the cumulative service-cycle histogram).
func serveWindow(t *testing.T, srv *Server, gen *Generator, waves, batch int) float64 {
	t.Helper()
	pre := srv.Metrics().ServiceCycles.Snapshot()
	preSum := pre.Mean * float64(pre.Count)

	errs := make(chan error, batch)
	for w := 0; w < waves; w++ {
		samples := make([]Sample, batch)
		for i := range samples {
			samples[i] = gen.Sample()
		}
		var wg sync.WaitGroup
		for _, s := range samples {
			wg.Add(1)
			go func(s Sample) {
				defer wg.Done()
				if _, err := srv.Lookup(context.Background(), s); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}(s)
		}
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}

	post := srv.Metrics().ServiceCycles.Snapshot()
	dSum := post.Mean*float64(post.Count) - preSum
	return dSum / float64(waves*batch)
}

// TestAdaptiveE2E is the acceptance run for the adaptive repartitioning
// subsystem: a 4-replica pool under skewed traffic whose hot set is
// permuted mid-run. The controller must adopt exactly one repartition,
// served cycles per sample must recover to near the pre-shift level,
// answers must stay bit-identical to the functional layer throughout,
// and every adapt series must appear on /metrics.
func TestAdaptiveE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second acceptance run")
	}
	spec := adaptiveSpec()
	cfg := Config{Spec: spec, ProfileSamples: 1500, Batch: 32}
	srv, ctrl, err := NewAdaptiveServer(ReCross, cfg, 4, ServeOptions{
		MaxBatch: 32,
		// Long relative to a wave's concurrent submission: batches flush at
		// MaxBatch, not the timer, so every batch is a full one.
		MaxDelay: 50 * time.Millisecond,
	}, AdaptOptions{
		Threshold: 0.12,
		Windows:   2,
		// Cooldown left at the 30s default: it is part of the hysteresis
		// gate, and together with the re-baselined detector and MinGain it
		// must hold adoption to exactly one for this run.
		MinGain:         0.05,
		AmortizeBatches: 1_000_000,
		MinSamples:      400,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	layer, err := NewLayer(spec)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	const waves, batch = 14, 32 // 448 samples per control window

	// Phase 1: stationary traffic — no adoption, low drift, and a
	// baseline for served cycles per sample.
	var baseline float64
	for w := 0; w < 4; w++ {
		cps := serveWindow(t, srv, gen, waves, batch)
		res := ctrl.Step()
		if res.Adopted {
			t.Fatalf("window %d: adopted a repartition on stationary traffic", w)
		}
		baseline = cps // last stationary window
	}

	// Phase 2: permute the hot set. Exactly one repartition must be
	// adopted within a bounded number of control windows.
	if err := gen.ShiftHotSet(424242); err != nil {
		t.Fatal(err)
	}
	var drifted float64
	adoptedAt := -1
	for w := 0; w < 10; w++ {
		cps := serveWindow(t, srv, gen, waves, batch)
		res := ctrl.Step()
		if res.Err != nil {
			t.Fatalf("window %d: %v", w, res.Err)
		}
		if res.Adopted {
			adoptedAt = w
			break
		}
		drifted = cps // last pre-adoption drifted window
	}
	if adoptedAt < 0 {
		t.Fatalf("no repartition adopted within 10 post-shift windows (metrics %+v)", ctrl.Metrics())
	}
	if drifted <= baseline*1.05 {
		t.Fatalf("shift did not degrade service: baseline %.0f, drifted %.0f cycles/sample", baseline, drifted)
	}

	// Phase 3: settle. No second adoption (the detector re-baselines on
	// the adopted profile), and served cycles recover to within 25% of
	// the stationary baseline.
	var recovered float64
	for w := 0; w < 4; w++ {
		recovered = serveWindow(t, srv, gen, waves, batch)
		if res := ctrl.Step(); res.Adopted {
			t.Fatalf("settle window %d: second adoption", w)
		}
	}
	m := ctrl.Metrics()
	if m.Adoptions != 1 {
		t.Fatalf("adoptions = %d, want exactly 1", m.Adoptions)
	}
	if recovered > baseline*1.25 {
		t.Fatalf("service did not recover: baseline %.0f, drifted %.0f, settled %.0f cycles/sample",
			baseline, drifted, recovered)
	}
	if recovered >= drifted {
		t.Fatalf("settled %.0f cycles/sample not better than drifted %.0f", recovered, drifted)
	}
	if m.RowsMigrated <= 0 || m.BytesMigrated <= 0 {
		t.Fatalf("migration volume not recorded: %+v", m)
	}
	if m.EstimatedGain < 1+0.05 {
		t.Fatalf("estimated gain %.3f below the gate's minimum", m.EstimatedGain)
	}

	// Phase 4: repartitioning moves rows, never values — post-adoption
	// answers are bit-identical to the functional embedding layer.
	for i := 0; i < 40; i++ {
		sample := gen.Sample()
		res, err := srv.Lookup(context.Background(), sample)
		if err != nil {
			t.Fatal(err)
		}
		want, err := layer.ReduceSample(sample)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !AlmostEqual(res.Vectors[k], want[k], 0) {
				t.Fatalf("sample %d op %d: served vector differs from functional layer after repartition", i, k)
			}
		}
	}

	// Phase 5: every adapt series is exported on /metrics.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"recross_adapt_windows_total",
		"recross_adapt_triggers_total",
		"recross_adapt_replans_total",
		"recross_adapt_repartitions_total 1",
		"recross_adapt_rejected_total",
		"recross_adapt_skipped_total",
		"recross_adapt_errors_total",
		"recross_adapt_rows_migrated_total",
		"recross_adapt_bytes_migrated_total",
		"recross_adapt_drift_score",
		"recross_adapt_drift_ks",
		"recross_adapt_last_speedup",
		"recross_adapt_estimated_gain",
		"recross_adapt_realized_gain",
		"recross_adapt_samples_observed",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
}

// BenchmarkServeObserver measures the serving hot path with and without
// the adaptive observer tap, so the sketch overhead is directly
// comparable (the acceptance bar is <= 5% throughput).
func BenchmarkServeObserver(b *testing.B) {
	spec := ModelSpec{Name: "bench-observe", Tables: []TableSpec{
		{Name: "t0", Rows: 50000, VecLen: 16, Pooling: 16, Prob: 1, Skew: 1.1},
	}}
	for _, mode := range []string{"off", "on"} {
		b.Run("observer="+mode, func(b *testing.B) {
			cfg := Config{Spec: spec, ProfileSamples: 500, Batch: 16}
			var srv *Server
			var err error
			if mode == "on" {
				var ctrl *AdaptController
				srv, ctrl, err = NewAdaptiveServer(ReCross, cfg, 1, ServeOptions{MaxBatch: 16}, AdaptOptions{})
				_ = ctrl // observe-only: never stepped
			} else {
				srv, err = NewServer(ReCross, cfg, 1, ServeOptions{MaxBatch: 16})
			}
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			gen, err := NewGenerator(spec, 3)
			if err != nil {
				b.Fatal(err)
			}
			sample := gen.Sample()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Lookup(context.Background(), sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
