package dlrm

import (
	"math"
	"testing"
	"testing/quick"

	"recross/internal/trace"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP([]int{4}, 1); err == nil {
		t.Error("single layer should error")
	}
	if _, err := NewMLP([]int{4, 0, 2}, 1); err == nil {
		t.Error("zero layer size should error")
	}
}

func TestMLPForwardShapeAndDeterminism(t *testing.T) {
	m, err := NewMLP([]int{4, 8, 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputSize() != 4 || m.OutputSize() != 2 {
		t.Fatal("sizes wrong")
	}
	x := []float32{1, -1, 0.5, 2}
	a, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Forward(x)
	if len(a) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatal("forward not deterministic or wrong shape")
	}
	if _, err := m.Forward([]float32{1}); err == nil {
		t.Fatal("wrong input width should error")
	}
}

func TestMLPReLUOnHiddenOnly(t *testing.T) {
	// With a single (output) layer, negative outputs must pass through.
	m, _ := NewMLP([]int{2, 1}, 3)
	neg := false
	for s := int64(0); s < 20 && !neg; s++ {
		m2, _ := NewMLP([]int{2, 1}, s)
		out, _ := m2.Forward([]float32{1, 1})
		if out[0] < 0 {
			neg = true
		}
	}
	_ = m
	if !neg {
		t.Fatal("output layer appears to clamp negatives (ReLU leak)")
	}
}

func testSpec() trace.ModelSpec {
	return trace.Uniform(4, 500, 16, 3)
}

func TestModelPredictInUnitInterval(t *testing.T) {
	m, err := New(testSpec(), 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(testSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	dense := make([]float32, 8)
	for i := range dense {
		dense[i] = float32(i) / 8
	}
	for n := 0; n < 10; n++ {
		s := g.Sample()
		p, err := m.Predict(dense, s)
		if err != nil {
			t.Fatal(err)
		}
		if p <= 0 || p >= 1 {
			t.Fatalf("CTR %g outside (0,1)", p)
		}
	}
}

func TestPredictPooledMatchesPredict(t *testing.T) {
	spec := testSpec()
	m, err := New(spec, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(spec, 9)
	s := g.Sample()
	dense := make([]float32, 8)
	direct, err := m.Predict(dense, s)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := m.Embedding.ReduceSample(s)
	if err != nil {
		t.Fatal(err)
	}
	viaPooled, err := m.PredictPooled(dense, pooled, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-viaPooled) > 1e-9 {
		t.Fatalf("pooled path %g != direct %g", viaPooled, direct)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := New(testSpec(), 0, 1); err == nil {
		t.Error("zero dense features should error")
	}
	mixed := testSpec()
	mixed.Tables[1].VecLen = 32
	if _, err := New(mixed, 4, 1); err == nil {
		t.Error("mixed embedding dims should error")
	}
	m, _ := New(testSpec(), 8, 1)
	g, _ := trace.NewGenerator(testSpec(), 1)
	s := g.Sample()
	if _, err := m.PredictPooled(make([]float32, 8), nil, s); err == nil {
		t.Error("pooled count mismatch should error")
	}
}

// Property: CTR stays in (0,1) for arbitrary dense inputs.
func TestPredictBoundedProperty(t *testing.T) {
	spec := testSpec()
	m, err := New(spec, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := trace.NewGenerator(spec, 2)
	s := g.Sample()
	f := func(a, b, c, d float32) bool {
		clamp := func(v float32) float32 {
			if v != v || v > 1e6 || v < -1e6 {
				return 0
			}
			return v
		}
		p, err := m.Predict([]float32{clamp(a), clamp(b), clamp(c), clamp(d)}, s)
		return err == nil && p > 0 && p < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredict(b *testing.B) {
	spec := testSpec()
	m, _ := New(spec, 8, 42)
	g, _ := trace.NewGenerator(spec, 5)
	s := g.Sample()
	dense := make([]float32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(dense, s); err != nil {
			b.Fatal(err)
		}
	}
}
