package baseline

import (
	"testing"

	"recross/internal/arch"
	"recross/internal/dram"
	"recross/internal/partition"
	"recross/internal/trace"
)

// miniSpec is a small skewed workload that drains in milliseconds.
func miniSpec() trace.ModelSpec {
	spec := trace.ModelSpec{Name: "mini"}
	for i := 0; i < 4; i++ {
		spec.Tables = append(spec.Tables, trace.TableSpec{
			Name: spec.Name + string(rune('a'+i)), Rows: 100000, VecLen: 64,
			Pooling: 8, Prob: 1, Skew: 1.0 + 0.1*float64(i),
		})
	}
	return spec
}

func miniBatch(t *testing.T, n int) trace.Batch {
	t.Helper()
	g, err := trace.NewGenerator(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return g.Batch(n)
}

func allSystems(t *testing.T) map[string]arch.System {
	t.Helper()
	cfg := Config{Spec: miniSpec(), Ranks: 2}
	prof, err := partition.NewProfile(miniSpec(), 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]arch.System{}
	if s, err := NewCPU(cfg); err != nil {
		t.Fatal(err)
	} else {
		out[s.Name()] = s
	}
	if s, err := NewTensorDIMM(cfg); err != nil {
		t.Fatal(err)
	} else {
		out[s.Name()] = s
	}
	if s, err := NewRecNMP(cfg); err != nil {
		t.Fatal(err)
	} else {
		out[s.Name()] = s
	}
	if s, err := NewRankNMP(cfg); err != nil {
		t.Fatal(err)
	} else {
		out[s.Name()] = s
	}
	if s, err := NewTRiMG(cfg); err != nil {
		t.Fatal(err)
	} else {
		out[s.Name()] = s
	}
	if s, err := NewTRiMB(cfg, prof.Hists); err != nil {
		t.Fatal(err)
	} else {
		out[s.Name()] = s
	}
	return out
}

func TestAllBaselinesRunAndAccount(t *testing.T) {
	b := miniBatch(t, 4)
	lookups, _ := arch.CountBatch(b)
	for name, sys := range allSystems(t) {
		rs, err := sys.Run(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rs.Cycles <= 0 {
			t.Errorf("%s: nonpositive cycles", name)
		}
		if rs.Lookups > lookups {
			t.Errorf("%s: lookups %d exceed batch %d", name, rs.Lookups, lookups)
		}
		if rs.Lookups <= 0 {
			t.Errorf("%s: no lookups", name)
		}
		if rs.Imbalance < 1 {
			t.Errorf("%s: imbalance %f < 1", name, rs.Imbalance)
		}
		if rs.Energy.Total() <= 0 {
			t.Errorf("%s: nonpositive energy", name)
		}
		// Dedup means row hits + misses is bounded by the raw lookups —
		// times the rank count for TensorDIMM, whose vertical
		// partitioning issues one request per rank per lookup.
		bound := rs.Lookups + rs.CacheHits
		if name == "tensordimm" {
			bound *= 2
		}
		if rs.RowHits+rs.RowMisses > bound {
			t.Errorf("%s: request accounting inconsistent: %d+%d vs bound %d",
				name, rs.RowHits, rs.RowMisses, bound)
		}
	}
}

func TestLayoutCapacityCheck(t *testing.T) {
	huge := trace.ModelSpec{Name: "huge", Tables: []trace.TableSpec{
		{Name: "x", Rows: 1 << 31, VecLen: 256, Pooling: 1, Prob: 1, Skew: 0},
	}}
	if _, err := NewCPU(Config{Spec: huge, Ranks: 2}); err == nil {
		t.Fatal("over-capacity model should be rejected")
	}
	mixed := miniSpec()
	mixed.Tables[0].VecLen = 32
	if _, err := NewCPU(Config{Spec: mixed, Ranks: 2}); err == nil {
		t.Fatal("mixed vector lengths should be rejected")
	}
}

func TestCPUCacheFiltersHotLookups(t *testing.T) {
	cpu, err := NewCPU(Config{Spec: miniSpec(), Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cpu.Run(miniBatch(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits == 0 {
		t.Fatal("LLC absorbed nothing on a skewed workload")
	}
	// LLC hits do not reach DRAM.
	if rs.DRAM.RDs >= rs.Lookups*4 {
		t.Fatal("every lookup reached DRAM despite the LLC")
	}
	// CPU reads are host-consumed.
	if rs.DRAM.BurstsToHost == 0 || rs.DRAM.BurstsToRank != 0 {
		t.Fatalf("CPU consumer accounting wrong: %+v", rs.DRAM)
	}
}

func TestTensorDIMMActivatesEveryRank(t *testing.T) {
	td, err := NewTensorDIMM(Config{Spec: miniSpec(), Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := td.Run(miniBatch(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Vertical partitioning: both ranks see every lookup, so per-rank RD
	// counts are equal and nonzero.
	if rs.DRAM.PerRankRDs[0] == 0 || rs.DRAM.PerRankRDs[0] != rs.DRAM.PerRankRDs[1] {
		t.Fatalf("vertical partitioning should balance ranks exactly: %v", rs.DRAM.PerRankRDs)
	}
	if rs.Imbalance != 1 {
		t.Fatalf("TensorDIMM imbalance = %f, want exactly 1", rs.Imbalance)
	}
}

func TestRecNMPCacheReducesTraffic(t *testing.T) {
	cfg := Config{Spec: miniSpec(), Ranks: 2}
	withCache, err := NewRecNMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noCache, err := NewRankNMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := miniBatch(t, 8)
	rc, err := withCache.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := noCache.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rc.CacheHits == 0 {
		t.Fatal("RecNMP cache absorbed nothing on a skewed workload")
	}
	if rc.DRAM.RDs >= rn.DRAM.RDs {
		t.Fatal("cache did not reduce DRAM reads")
	}
	if rc.Cycles >= rn.Cycles {
		t.Fatal("RecNMP with cache not faster than plain rank NMP")
	}
	if withCache.Name() != "recnmp" || noCache.Name() != "rank-nmp" {
		t.Fatal("names wrong")
	}
}

func TestTRiMConsumerLevels(t *testing.T) {
	cfg := Config{Spec: miniSpec(), Ranks: 2}
	tg, err := NewTRiMG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTRiMB(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := miniBatch(t, 2)
	rg, err := tg.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := tb.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rg.DRAM.BurstsToBG == 0 || rg.DRAM.BurstsToBank != 0 {
		t.Fatalf("TRiM-G consumer accounting wrong: %+v", rg.DRAM)
	}
	if rb.DRAM.BurstsToBank == 0 || rb.DRAM.BurstsToBG != 0 {
		t.Fatalf("TRiM-B consumer accounting wrong: %+v", rb.DRAM)
	}
}

func TestTRiMBReplicationBalancesHotRows(t *testing.T) {
	// A single ultra-hot table: without replication the hot rows pin a few
	// banks; with replication the per-bank imbalance must drop.
	spec := trace.ModelSpec{Name: "hot", Tables: []trace.TableSpec{
		{Name: "h", Rows: 200000, VecLen: 64, Pooling: 16, Prob: 1, Skew: 1.4},
	}}
	g, err := trace.NewGenerator(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := partition.NewProfile(spec, 9, 500)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(16)
	cfg := Config{Spec: spec, Ranks: 2}
	plain, err := NewTRiMB(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := NewTRiMB(cfg, prof.Hists)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := replicated.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Imbalance >= rp.Imbalance {
		t.Fatalf("replication did not reduce imbalance: %.2f -> %.2f",
			rp.Imbalance, rr.Imbalance)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Spec: miniSpec()}.withDefaults()
	if c.Ranks != 2 {
		t.Fatalf("default ranks = %d, want 2", c.Ranks)
	}
	if c.Tm != dram.DDR5Timing() {
		t.Fatal("default timing not DDR5")
	}
	if err := c.Energy.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTRiMBRun(b *testing.B) {
	cfg := Config{Spec: miniSpec(), Ranks: 2}
	sys, err := NewTRiMB(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := trace.NewGenerator(miniSpec(), 42)
	batch := g.Batch(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFAFNIRTreeReducesResultTraffic(t *testing.T) {
	cfg := Config{Spec: miniSpec(), Ranks: 8}
	plain, err := NewRankNMP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faf, err := NewFAFNIR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faf.Name() != "fafnir" {
		t.Fatal("name wrong")
	}
	b := miniBatch(t, 8)
	rp, err := plain.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := faf.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if rf.DRAM.HostResultTx >= rp.DRAM.HostResultTx {
		t.Fatalf("tree did not reduce result traffic: %d vs %d",
			rf.DRAM.HostResultTx, rp.DRAM.HostResultTx)
	}
	if rf.Cycles > rp.Cycles {
		t.Fatalf("FAFNIR (%d) slower than plain rank NMP (%d)", rf.Cycles, rp.Cycles)
	}
}
