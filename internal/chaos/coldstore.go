package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"recross/internal/coldstore"
)

// ErrDeviceFailed is returned by every I/O of a sticky-failed device
// (FailDevice) until RestoreDevice.
var ErrDeviceFailed = fmt.Errorf("chaos: cold device failed")

// errInjectedRead is the injected transient read error.
var errInjectedRead = fmt.Errorf("chaos: injected device read error")

// ColdRates are per-operation injection probabilities in [0,1] for the
// storage-tier faults, checked in the order ReadErr, Stall, CorruptPage on
// reads and TornWrite on writes (at most one fault per operation).
type ColdRates struct {
	ReadErr, Stall, CorruptPage, TornWrite float64
}

func (r ColdRates) readZero() bool  { return r.ReadErr == 0 && r.Stall == 0 && r.CorruptPage == 0 }
func (r ColdRates) writeZero() bool { return r.TornWrite == 0 }

// ColdRule scripts one exact storage fault: the Op'th read (for read
// kinds) or write (TornWrite) injects Kind, 1-based. Like serve-layer
// Rules, scheduled faults fire regardless of rates and of the injector's
// enabled switch.
type ColdRule struct {
	Op   int64
	Kind Kind
}

// ColdConfig configures a FaultyColdStore.
type ColdConfig struct {
	// Rates are the per-operation fault probabilities.
	Rates ColdRates
	// Stall is the injected device stall (default 2ms). Stalls are
	// bounded sleeps, never unbounded wedges, so a store Close (which
	// drains in-flight device I/O before unmapping) always terminates.
	Stall time.Duration
	// Schedule scripts exact faults on top of Rates.
	Schedule []ColdRule
	// Seed seeds the device RNG (default 1).
	Seed int64
}

func (c ColdConfig) withDefaults() ColdConfig {
	if c.Stall == 0 {
		c.Stall = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FaultyColdStore wraps a coldstore.Device with deterministic fault
// injection: transient read errors, latency stalls, corrupt page payloads,
// torn writes, and sticky whole-device failure (FailDevice/RestoreDevice).
// It shares the fleet Injector's counters and enabled switch, so one
// campaign spans compute and storage faults. Unlike FaultySystem (single
// goroutine by the System contract), the store's read path is concurrent,
// so the RNG and operation counters are mutex-guarded; a run is
// deterministic per (seed, operation sequence) when the store is driven
// from one goroutine, and per-kind counts remain exact under concurrency.
//
// Install via coldstore.Config.WrapDevice:
//
//	cfg.WrapDevice = func(d coldstore.Device) coldstore.Device {
//		return chaos.WrapColdDevice(d, coldCfg, inj)
//	}
type FaultyColdStore struct {
	inner coldstore.Device
	cfg   ColdConfig
	inj   *Injector

	failed atomic.Bool

	mu         sync.Mutex
	rng        *rand.Rand
	reads      int64
	writes     int64
	readRules  map[int64]Kind
	writeRules map[int64]Kind
}

// WrapColdDevice builds the fault-injecting device wrapper. inj may be
// shared with a FaultySystem fleet; if nil a fresh one is made.
func WrapColdDevice(inner coldstore.Device, cfg ColdConfig, inj *Injector) *FaultyColdStore {
	cfg = cfg.withDefaults()
	if inj == nil {
		inj = NewInjector()
	}
	d := &FaultyColdStore{
		inner:      inner,
		cfg:        cfg,
		inj:        inj,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		readRules:  make(map[int64]Kind),
		writeRules: make(map[int64]Kind),
	}
	for _, r := range cfg.Schedule {
		switch r.Kind {
		case ReadErr, Stall, CorruptPage:
			d.readRules[r.Op] = r.Kind
		case TornWrite:
			d.writeRules[r.Op] = r.Kind
		}
	}
	return d
}

// Inner returns the wrapped device.
func (d *FaultyColdStore) Inner() coldstore.Device { return d.inner }

// FailDevice makes every subsequent I/O fail until RestoreDevice — a
// sticky whole-device outage (controller death, pulled cable). The store's
// breaker should open; after RestoreDevice its scrubber probes should
// close it again.
func (d *FaultyColdStore) FailDevice() { d.failed.Store(true) }

// RestoreDevice ends a FailDevice outage.
func (d *FaultyColdStore) RestoreDevice() { d.failed.Store(false) }

// Failed reports whether the device is in a sticky outage.
func (d *FaultyColdStore) Failed() bool { return d.failed.Load() }

// pickRead decides the fault for one read op. The RNG advances exactly
// once per op with probabilistic rates configured, so the fault sequence
// depends only on the operation sequence, not on the enabled switch.
func (d *FaultyColdStore) pickRead() (Kind, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	var u float64
	if !d.cfg.Rates.readZero() {
		u = d.rng.Float64()
	}
	if k, ok := d.readRules[d.reads]; ok {
		return k, true
	}
	if !d.inj.Enabled() || d.cfg.Rates.readZero() {
		return 0, false
	}
	r := d.cfg.Rates
	switch {
	case u < r.ReadErr:
		return ReadErr, true
	case u < r.ReadErr+r.Stall:
		return Stall, true
	case u < r.ReadErr+r.Stall+r.CorruptPage:
		return CorruptPage, true
	default:
		return 0, false
	}
}

// pickWrite decides the fault for one write op.
func (d *FaultyColdStore) pickWrite() (Kind, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	var u float64
	if !d.cfg.Rates.writeZero() {
		u = d.rng.Float64()
	}
	if k, ok := d.writeRules[d.writes]; ok {
		return k, true
	}
	if !d.inj.Enabled() || d.cfg.Rates.writeZero() {
		return 0, false
	}
	if u < d.cfg.Rates.TornWrite {
		return TornWrite, true
	}
	return 0, false
}

// ReadPage reads a page through the fault filter.
func (d *FaultyColdStore) ReadPage(page int64, dst []byte) error {
	if d.failed.Load() {
		d.inj.counts[ReadErr].Add(1)
		return ErrDeviceFailed
	}
	k, inject := d.pickRead()
	if !inject {
		return d.inner.ReadPage(page, dst)
	}
	d.inj.counts[k].Add(1)
	switch k {
	case ReadErr:
		return errInjectedRead
	case Stall:
		time.Sleep(d.cfg.Stall)
		return d.inner.ReadPage(page, dst)
	case CorruptPage:
		err := d.inner.ReadPage(page, dst)
		if err == nil && len(dst) > 0 {
			// Deterministic damage: flip bits at a page-dependent offset.
			i := int(page) % len(dst)
			dst[i] ^= 0xff
			dst[len(dst)/2] ^= 0x55
		}
		return err
	}
	return d.inner.ReadPage(page, dst)
}

// WritePage writes a page through the fault filter.
func (d *FaultyColdStore) WritePage(page int64, src []byte) error {
	if d.failed.Load() {
		d.inj.counts[ReadErr].Add(1)
		return ErrDeviceFailed
	}
	k, inject := d.pickWrite()
	if !inject {
		return d.inner.WritePage(page, src)
	}
	d.inj.counts[k].Add(1)
	// TornWrite: persist only the first half and report success — the
	// silent partial persist checksummed reads exist to catch.
	if err := d.inner.WritePage(page, src[:len(src)/2]); err != nil {
		return err
	}
	return nil
}
