package baseline

import (
	"recross/internal/arch"
	"recross/internal/dram"
	"recross/internal/memctrl"
	"recross/internal/sim"
	"recross/internal/stats"
	"recross/internal/trace"
)

// TRiMG is the bank-group-level NMP of Park et al. (MICRO'21): one PE per
// bank group inside the DRAM chip. Vectors interleave across all bank
// groups; within a group the banks share the local I/O gating (tCCD_L).
type TRiMG struct {
	cfg   Config
	geo   dram.Geometry
	lay   *layout
	alloc []int
}

// NewTRiMG builds the architecture.
func NewTRiMG(cfg Config) (*TRiMG, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	return &TRiMG{cfg: cfg, geo: geo, lay: lay, alloc: allBanks(geo)}, nil
}

// Name implements arch.System.
func (t *TRiMG) Name() string { return "trim-g" }

// Run implements arch.System.
func (t *TRiMG) Run(b trace.Batch) (*arch.RunStats, error) {
	var reqs []memctrl.Request
	var lookups, ops, bgPsums int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.NMPTwoStage, t.lay.bursts)
	touched := make([]bool, t.geo.Ranks*t.geo.BankGroups)
	dqBusy := make([]int64, t.geo.Ranks) // psum bursts crossing each chip DQ
	for _, s := range b {
		for _, op := range s {
			op = arch.DedupOp(op)
			for i := range touched {
				touched[i] = false
			}
			for _, idx := range op.Indices {
				lookups++
				loc, err := arch.Stripe(t.geo, t.alloc, t.lay.slot(op.Table, idx), t.lay.bursts)
				if err != nil {
					return nil, err
				}
				touched[t.geo.FlatBG(loc)] = true
				reqs = append(reqs, memctrl.Request{
					Loc: loc, Cols: t.lay.bursts,
					Consumer: dram.ToBankGroupPE,
					Arrival:  sim.Cycle(seq) * instr, Op: opID,
				})
				seq++
			}
			for fbg, v := range touched {
				if v {
					bgPsums++
					dqBusy[fbg/t.geo.BankGroups] += int64(t.lay.bursts)
				}
			}
			ops++
			opID++
		}
	}
	spec := arch.ChannelSpec{Geo: t.geo, Tm: t.cfg.Tm, Mode: dram.NMPTwoStage, Policy: memctrl.FRFCFS, OpWindow: arch.NMPOpWindow}
	finish, st, res, err := arch.RunChannel(spec, reqs, int(ops)*t.lay.bursts)
	if err != nil {
		return nil, err
	}
	// Per-op partial sums drain from the bank-group PEs over the chip DQ,
	// pipelined with the gathers (which bypass the chip DQ entirely).
	finish = arch.PsumFloor(t.cfg.Tm, finish, nil, dqBusy)
	return finishRun(t.cfg, t.geo, finish, st, res, lookups, 0, bgPsums,
		t.lay.vecLen, append([]int64(nil), st.PerBGRDs...), 0), nil
}

// TRiMB is the bank-level NMP variant of TRiM: one PE per bank, plus the
// paper's hot-entry replication — the hottest HotReplicaFraction of each
// table's rows (0.05 %, §5.1) are copied into ReplicaDegree banks, and
// successive accesses to a replicated row round-robin across its copies.
// (ReCross §3.1 notes that the scheme's effectiveness hinges on the number
// of replicas and the replicated share, and that steering adds control
// overhead.)
type TRiMB struct {
	cfg   Config
	geo   dram.Geometry
	lay   *layout
	alloc []int
	// hot[table] is the replicated row set, built from a profiling pass.
	hot []map[int64]bool
	// replicaSlot[table][row] is the per-bank slot of a replica.
	replicaSlot []map[int64]int64
	replicaRows int64
	// rr[table][row] is the round-robin pointer over a row's replicas.
	rr []map[int64]int
}

// HotReplicaFraction is TRiM's replicated share of each table.
const HotReplicaFraction = 0.0005

// ReplicaDegree is the number of banks each hot entry is copied into.
const ReplicaDegree = 8

// NewTRiMB builds the architecture. prof supplies the access histograms the
// hot-entry selection needs (TRiM profiles hot entries offline, like
// ReCross profiles distributions).
func NewTRiMB(cfg Config, hists []*stats.Histogram) (*TRiMB, error) {
	cfg = cfg.withDefaults()
	geo := cfg.geometry()
	lay, err := newLayout(cfg.Spec, geo)
	if err != nil {
		return nil, err
	}
	t := &TRiMB{cfg: cfg, geo: geo, lay: lay, alloc: allBanks(geo)}
	t.hot = make([]map[int64]bool, len(cfg.Spec.Tables))
	t.replicaSlot = make([]map[int64]int64, len(cfg.Spec.Tables))
	t.rr = make([]map[int64]int, len(cfg.Spec.Tables))
	for i, tab := range cfg.Spec.Tables {
		t.hot[i] = make(map[int64]bool)
		t.replicaSlot[i] = make(map[int64]int64)
		t.rr[i] = make(map[int64]int)
		if hists == nil || i >= len(hists) {
			continue
		}
		n := int(float64(tab.Rows) * HotReplicaFraction)
		if n < 1 {
			n = 1
		}
		for _, row := range hists[i].HotKeys(n) {
			t.hot[i][row] = true
			t.replicaSlot[i][row] = t.replicaRows
			t.replicaRows++
		}
	}
	return t, nil
}

// Name implements arch.System.
func (t *TRiMB) Name() string { return "trim-b" }

// Run implements arch.System.
func (t *TRiMB) Run(b trace.Batch) (*arch.RunStats, error) {
	geo := t.geo
	nBanks := geo.TotalBanks()
	vecPerRow := geo.ColumnsPerRow() / t.lay.bursts
	// Replicas live in reserved rows of every bank; the regular layout is
	// shifted below them.
	replicaRowsPerBank := int(t.replicaRows)/vecPerRow + 1

	var reqs []memctrl.Request
	var lookups, ops, replicated, bankPsums, bgPsums int64
	var opID int32
	var seq int64
	instr := arch.InstrCycles(dram.NMPTwoStage, t.lay.bursts)
	touchedBank := make([]bool, nBanks)
	touchedBG := make([]bool, t.geo.Ranks*t.geo.BankGroups)
	gatingBusy := make([]int64, t.geo.Ranks*t.geo.BankGroups)
	dqBusy := make([]int64, t.geo.Ranks)
	for _, s := range b {
		for _, op := range s {
			op = arch.DedupOp(op)
			for i := range touchedBank {
				touchedBank[i] = false
			}
			for i := range touchedBG {
				touchedBG[i] = false
			}
			for _, idx := range op.Indices {
				lookups++
				var loc dram.Loc
				if rslot, hot := t.replicaSlot[op.Table][idx]; hot {
					// Round-robin across the row's ReplicaDegree copies,
					// which are spread through the bank space at a
					// deterministic stride.
					k := t.rr[op.Table][idx]
					t.rr[op.Table][idx] = (k + 1) % ReplicaDegree
					home := int(rslot) % nBanks
					fb := (home + k*(nBanks/ReplicaDegree)) % nBanks
					r, bg, bk := geo.BankLoc(fb)
					row := int(rslot) / vecPerRow
					loc = dram.Loc{
						Rank: r, BG: bg, Bank: bk,
						Row: (row%geo.Subarrays)*geo.RowsPerSubarray + row/geo.Subarrays,
						Col: (int(rslot) % vecPerRow) * t.lay.bursts,
					}
					replicated++
				} else {
					var err error
					loc, err = arch.Stripe(geo, t.alloc, t.lay.slot(op.Table, idx), t.lay.bursts)
					if err != nil {
						return nil, err
					}
					loc.Row += replicaRowsPerBank * geo.RowsPerSubarray % geo.RowsPerBank()
					if loc.Row >= geo.RowsPerBank() {
						loc.Row -= geo.RowsPerBank() // wrap below replicas
					}
				}
				touchedBank[geo.FlatBank(loc)] = true
				touchedBG[geo.FlatBG(loc)] = true
				reqs = append(reqs, memctrl.Request{
					Loc: loc, Cols: t.lay.bursts,
					Consumer: dram.ToBankPE,
					Arrival:  sim.Cycle(seq) * instr, Op: opID,
				})
				seq++
			}
			for fb, v := range touchedBank {
				if v {
					bankPsums++
					gatingBusy[fb/geo.Banks] += int64(t.lay.bursts)
				}
			}
			for fbg, v := range touchedBG {
				if v {
					bgPsums++
					dqBusy[fbg/geo.BankGroups] += int64(t.lay.bursts)
				}
			}
			ops++
			opID++
		}
	}
	spec := arch.ChannelSpec{Geo: geo, Tm: t.cfg.Tm, Mode: dram.NMPTwoStage, Policy: memctrl.FRFCFS, OpWindow: arch.NMPOpWindow}
	finish, st, res, err := arch.RunChannel(spec, reqs, int(ops)*t.lay.bursts)
	if err != nil {
		return nil, err
	}
	// Per-op partial sums drain bank PE -> bank-group gating -> chip DQ:
	// with a PE in every bank, nearly every bank contributes a psum to
	// every operation — the §3.3 cost of flat fine-grained NMP. The
	// collection pipelines with gathers, which use neither bus here.
	finish = arch.PsumFloor(t.cfg.Tm, finish, gatingBusy, dqBusy)
	rs := finishRun(t.cfg, geo, finish, st, res, lookups, 0, bankPsums+bgPsums,
		t.lay.vecLen, append([]int64(nil), st.PerBankRDs...), 0)
	return rs, nil
}
