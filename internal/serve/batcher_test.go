package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recross/internal/arch"
	"recross/internal/trace"
)

// TestCanceledRequestNeverOpensBatch: a request that is already dead at
// dequeue must be dropped before it opens a batch or arms the MaxDelay
// timer — no empty flush, no batch, just the Canceled count.
func TestCanceledRequestNeverOpensBatch(t *testing.T) {
	fake := &fakeSys{}
	const delay = 20 * time.Millisecond
	s := newTestServer(t, Options{
		Systems:  []arch.System{fake},
		MaxBatch: 8,
		MaxDelay: delay,
		Policy:   Shed, // empty queue: enqueue succeeds even with a dead ctx
	})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Lookup(ctx, testSamples(t, 1)[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitUntil(t, func() bool { return s.Metrics().Canceled.Load() == 1 })

	// Outwait the flush deadline: had the dead request opened a batch, the
	// timer would fire an (empty) flush in delay.
	time.Sleep(3 * delay)
	snap := s.Metrics().Snapshot()
	if snap.Batches != 0 || snap.BatchForm.Count != 0 {
		t.Errorf("dead request produced batches=%d formations=%d, want 0/0",
			snap.Batches, snap.BatchForm.Count)
	}
	if sizes := fake.batchSizes(); len(sizes) != 0 {
		t.Errorf("replica ran batches %v for a canceled request", sizes)
	}

	// The batcher must still be live for real work.
	if _, err := s.Lookup(context.Background(), testSamples(t, 1)[0]); err != nil {
		t.Fatalf("lookup after dropped request: %v", err)
	}
}

// TestDeadlineFlushRacesAdmissions hammers a tiny MaxDelay with
// concurrent admissions so deadline flushes race size flushes and the
// timer is constantly re-armed, stopped and drained. Run with -race; the
// assertions are just that nothing is lost.
func TestDeadlineFlushRacesAdmissions(t *testing.T) {
	s := newTestServer(t, Options{
		Systems:  []arch.System{&fakeSys{}},
		MaxBatch: 64,
		MaxDelay: 100 * time.Microsecond,
	})
	defer s.Close()

	const clients, perClient = 8, 40
	var completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g, err := trace.NewGenerator(testSpec(), int64(100+c))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perClient; i++ {
				if _, err := s.Lookup(context.Background(), g.Sample()); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				completed.Add(1)
			}
		}(c)
	}
	wg.Wait()

	if got := completed.Load(); got != clients*perClient {
		t.Fatalf("completed %d of %d", got, clients*perClient)
	}
	snap := s.Metrics().Snapshot()
	if snap.Batches == 0 || snap.BatchForm.Count != snap.Batches {
		t.Errorf("batches=%d formations=%d: flush accounting drifted",
			snap.Batches, snap.BatchForm.Count)
	}
}

// TestFlushRacesClose races graceful drain against in-flight admissions
// and half-formed batches: every Lookup must resolve — a normal result,
// a degraded result, or ErrClosed — and Close must not strand anything.
// Run with -race.
func TestFlushRacesClose(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		s := newTestServer(t, Options{
			Systems:  []arch.System{&fakeSys{}, &fakeSys{}},
			MaxBatch: 4,
			MaxDelay: 50 * time.Microsecond,
		})
		samples := testSamples(t, 16)
		var answered, closed atomic.Int64
		var wg sync.WaitGroup
		for i := range samples {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := s.Lookup(context.Background(), samples[i])
				switch {
				case err == nil && res != nil:
					answered.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				default:
					t.Errorf("iter %d: lookup err = %v", iter, err)
				}
			}(i)
		}
		s.Close()
		wg.Wait()
		if got := answered.Load() + closed.Load(); got != int64(len(samples)) {
			t.Fatalf("iter %d: %d answered + %d rejected != %d issued",
				iter, answered.Load(), closed.Load(), len(samples))
		}
		// Drain contract: everyone the server admitted, it answered.
		snap := s.Metrics().Snapshot()
		if snap.Completed+snap.Failed != snap.Admitted {
			t.Fatalf("iter %d: admitted %d but completed %d + failed %d",
				iter, snap.Admitted, snap.Completed, snap.Failed)
		}
	}
}

// TestTimerReuseAfterStop interleaves size-triggered flushes (which stop
// a live timer) with deadline-triggered flushes (which re-arm it): the
// timer must stay reusable across Stop/Reset cycles.
func TestTimerReuseAfterStop(t *testing.T) {
	fake := &fakeSys{}
	const delay = 100 * time.Millisecond
	s := newTestServer(t, Options{
		Systems:  []arch.System{fake},
		MaxBatch: 2,
		MaxDelay: delay,
	})
	defer s.Close()

	pair := func() {
		samples := testSamples(t, 2)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := s.Lookup(context.Background(), samples[i]); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
	}

	pair() // size flush: arms the timer on the first request, stops it on the second
	start := time.Now()
	res, err := s.Lookup(context.Background(), testSamples(t, 1)[0]) // deadline flush: timer reused
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 || time.Since(start) < delay {
		t.Errorf("lone request: batch size %d after %v, want a deadline flush after %v",
			res.BatchSize, time.Since(start), delay)
	}
	pair() // and the timer must re-arm cleanly again

	if snap := s.Metrics().Snapshot(); snap.Batches != 3 {
		t.Errorf("batches = %d, want 3 (size, deadline, size)", snap.Batches)
	}
}
