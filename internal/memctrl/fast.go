package memctrl

import (
	"fmt"

	"recross/internal/dram"
	"recross/internal/sim"
)

// This file is the fast arbiter behind Controller.Drain. It reproduces the
// Reference scheduler's command stream bit-for-bit while replacing the
// O(banks) per-command scan with:
//
//   - Two lazy min-heaps (reads+activations, writes) of per-bank candidate
//     entries keyed (earliest issue time, class, arrival, bank, kind) —
//     exactly the reference scan's comparison order. Keys are lower
//     bounds: timing state only advances, so an untouched bank's earliest
//     issue time never decreases. A popped entry is accepted immediately
//     when the dram timing epochs of its scopes are unchanged and time has
//     not passed it (the key is then provably exact); otherwise one
//     Earliest* query re-keys it and the heap re-orders.
//   - Column-burst coalescing: a row-hit request streaming Cols bursts is
//     issued as one uninterruptible run for as long as its exact
//     next-column time beats every other candidate's lower bound (and the
//     bank's own SALP lookahead ACT, computed exactly), skipping
//     arbitration entirely for the common streaming case.
//   - Doubly-linked per-bank queues with pooled nodes, reused heaps and op
//     maps: a steady-state Drain allocates only the returned Result.
//
// Per-command cost: O(log banks) amortized (one heap pop + push, a
// constant number of Earliest* queries) versus the reference's
// O(banks) Earliest* queries; coalesced columns cost O(1).

// fnode is the in-flight form of a Request: a node of its bank's
// doubly-linked queue, pooled on the Controller.
type fnode struct {
	req      *Request
	idx      int // index in the input slice
	nextCol  int // next column to issue (0-based offset from Loc.Col)
	acted    bool
	admitted sim.Cycle // when the request got its controller queue slot

	prev, next *fnode
}

// fastBank is one bank's pending queue plus its cached scheduling choice
// (the same choice Reference.choose computes). stamp versions the queue:
// heap entries carry the stamp they were computed under and are discarded
// when it no longer matches, which is how completions, admissions and
// same-bank issues invalidate cached candidates.
type fastBank struct {
	head, tail *fnode
	n          int
	fb         int32
	stamp      uint32
	dirty      bool
	salp       bool

	cand      *fnode // primary candidate
	candRD    bool
	candClass int32
	cand2     *fnode // SALP idle-subarray lookahead ACT, nil if none
}

// entry is a heap candidate: a lower bound on the earliest issue time of
// one bank's cached choice, plus everything the reference comparator
// breaks ties on. ep is the dram timing-edge stamp the bound was computed
// under; while it is unchanged (and time has not advanced past the bound)
// the bound is exact.
type entry struct {
	time    sim.Cycle
	arrival sim.Cycle
	class   int32
	fb      int32
	kind    int32 // 0 primary, 1 lookahead ACT
	stamp   uint32
	ep      dram.EpochStamp
}

// entryLess orders entries exactly as the reference scan resolves ties:
// earliest issue time, then priority class, then request arrival, then
// bank scan order, then primary-before-lookahead.
func entryLess(a, b *entry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.class != b.class {
		return a.class < b.class
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	if a.fb != b.fb {
		return a.fb < b.fb
	}
	return a.kind < b.kind
}

// entryHeap is a plain binary min-heap of entries (no container/heap to
// keep pushes and pops allocation- and interface-free).
type entryHeap struct{ es []entry }

func (h *entryHeap) top() *entry {
	if len(h.es) == 0 {
		return nil
	}
	return &h.es[0]
}

func (h *entryHeap) push(e entry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(&h.es[i], &h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *entryHeap) pop() {
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es = h.es[:n]
	if n > 0 {
		h.siftDown(0)
	}
}

// fixTop restores heap order after the root entry was re-keyed in place.
func (h *entryHeap) fixTop() { h.siftDown(0) }

func (h *entryHeap) siftDown(i int) {
	n := len(h.es)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && entryLess(&h.es[r], &h.es[l]) {
			m = r
		}
		if !entryLess(&h.es[m], &h.es[i]) {
			return
		}
		h.es[i], h.es[m] = h.es[m], h.es[i]
		i = m
	}
}

// fastState is the per-drain loop state, grouped so the helper methods
// stay allocation-free.
type fastState struct {
	reqs      []Request
	res       *Result
	limit     int
	inflight  int
	pendWR    int
	next      int // next unadmitted request
	remaining int
	watermark int32
	now       sim.Cycle
	hi, lo    int
	draining  bool
}

// fastDrain is the fast-arbiter implementation of Controller.Drain.
func (c *Controller) fastDrain(reqs []Request) (Result, error) {
	geo := c.ch.Geo
	res := Result{Done: make([]sim.Cycle, len(reqs))}
	if len(reqs) == 0 {
		return res, nil
	}
	if err := c.validate(reqs); err != nil {
		return res, err
	}

	if c.opStartM == nil {
		c.opStartM = make(map[int32]sim.Cycle)
		c.opEndM = make(map[int32]sim.Cycle)
		c.opLeftM = make(map[int32]int)
	}
	clear(c.opStartM)
	clear(c.opEndM)
	clear(c.opLeftM)
	c.opOrder = c.opOrder[:0]
	for i := range reqs {
		r := &reqs[i]
		if at, ok := c.opStartM[r.Op]; !ok || r.Arrival < at {
			if !ok {
				c.opOrder = append(c.opOrder, r.Op)
			}
			c.opStartM[r.Op] = r.Arrival
		}
	}

	nb := geo.TotalBanks()
	if cap(c.fbanks) < nb {
		c.fbanks = make([]fastBank, nb)
	}
	c.fbanks = c.fbanks[:nb]
	for i := range c.fbanks {
		bq := &c.fbanks[i]
		for nd := bq.head; nd != nil; { // reclaim nodes of an aborted drain
			nx := nd.next
			c.freeNode(nd)
			nd = nx
		}
		stamp := bq.stamp
		*bq = fastBank{fb: int32(i), stamp: stamp + 1, salp: c.ch.IsSALP(i)}
	}
	c.rheap.es = c.rheap.es[:0]
	c.wheap.es = c.wheap.es[:0]
	c.dirty = c.dirty[:0]

	limit := c.InflightLimit
	if limit <= 0 {
		limit = DefaultInflight
	}
	if c.OpWindowLimit > 0 {
		for i := range reqs {
			if i > 0 && reqs[i].Op < reqs[i-1].Op {
				return res, fmt.Errorf("memctrl: requests not in op order with an op window")
			}
			c.opLeftM[reqs[i].Op]++
		}
	}

	st := fastState{reqs: reqs, res: &res, limit: limit, remaining: len(reqs)}
	if c.OpWindowLimit > 0 {
		st.watermark = reqs[0].Op
	}
	for st.next < len(reqs) && st.next < limit && c.opEligible(&st, st.next) {
		c.fastAdmit(&st, st.next, 0)
		st.inflight++
		if reqs[st.next].Write {
			st.pendWR++
		}
		st.next++
	}

	st.hi = c.WriteHighWatermark
	if st.hi <= 0 {
		st.hi = 16
	}
	st.lo = c.WriteLowWatermark
	if st.lo <= 0 {
		st.lo = 2
	}

	for st.remaining > 0 {
		if st.pendWR >= st.hi {
			st.draining = true
		} else if st.pendWR <= st.lo {
			st.draining = false
		}
		c.flushDirty(st.now)
		bq, nd, isRD, earliest, ok := c.popBest(st.now, st.draining)
		if !ok {
			return res, fmt.Errorf("memctrl: no candidate with %d requests remaining", st.remaining)
		}
		loc := nd.req.Loc
		loc.Col += nd.nextCol
		if isRD {
			var done sim.Cycle
			if nd.req.Write {
				_, done = c.ch.IssueWR(loc, earliest)
			} else {
				_, done = c.ch.IssueRD(loc, nd.req.Consumer, earliest)
			}
			nd.nextCol++
			if earliest > st.now {
				st.now = earliest
			}
			switch {
			case nd.nextCol == nd.req.Cols:
				c.fastComplete(&st, bq, nd, done)
			case st.draining || !nd.req.Write:
				c.streamRun(&st, bq, nd)
			}
		} else {
			c.ch.IssueACT(loc, earliest)
			nd.acted = true
			if earliest > st.now {
				st.now = earliest
			}
		}
		c.markDirty(bq)
	}
	for _, op := range c.opOrder {
		res.OpLatency = append(res.OpLatency, c.opEndM[op]-c.opStartM[op])
	}
	return res, nil
}

// opEligible mirrors the reference op-window admission gate.
func (c *Controller) opEligible(st *fastState, i int) bool {
	return c.OpWindowLimit <= 0 ||
		int(st.reqs[i].Op-st.watermark) < c.OpWindowLimit
}

// fastAdmit places request i at the tail of its bank queue, no earlier
// than `at` (the time its controller queue slot freed).
func (c *Controller) fastAdmit(st *fastState, i int, at sim.Cycle) {
	r := &st.reqs[i]
	nd := c.newNode()
	nd.req = r
	nd.idx = i
	nd.admitted = at
	bq := &c.fbanks[c.ch.Geo.FlatBank(r.Loc)]
	nd.prev = bq.tail
	if bq.tail != nil {
		bq.tail.next = nd
	} else {
		bq.head = nd
	}
	bq.tail = nd
	bq.n++
	c.markDirty(bq)
}

// fastComplete records a finished request, frees its node and queue slot,
// advances the op-window watermark, and admits the next eligible requests.
func (c *Controller) fastComplete(st *fastState, bq *fastBank, nd *fnode, done sim.Cycle) {
	res := st.res
	res.Done[nd.idx] = done
	if done > res.Finish {
		res.Finish = done
	}
	op := nd.req.Op
	if done > c.opEndM[op] {
		c.opEndM[op] = done
	}
	if nd.acted {
		res.RowMisses++
	} else {
		res.RowHits++
	}
	wasWrite := nd.req.Write
	c.unlink(bq, nd)
	c.freeNode(nd)
	st.remaining--
	st.inflight--
	if wasWrite {
		st.pendWR--
	}
	if c.OpWindowLimit > 0 {
		c.opLeftM[op]--
		last := st.reqs[len(st.reqs)-1].Op
		for c.opLeftM[st.watermark] == 0 && int(st.watermark) < int(last)+1 {
			delete(c.opLeftM, st.watermark)
			st.watermark++
		}
	}
	// Queue slots free when data is delivered; admit the next requests
	// (in arrival order) that fit both the slot budget and the op window.
	for st.inflight < st.limit && st.next < len(st.reqs) && c.opEligible(st, st.next) {
		c.fastAdmit(st, st.next, done)
		if st.reqs[st.next].Write {
			st.pendWR++
		}
		st.next++
		st.inflight++
	}
	c.markDirty(bq)
}

// markDirty queues the bank for re-choosing before the next arbitration.
func (c *Controller) markDirty(bq *fastBank) {
	if !bq.dirty {
		bq.dirty = true
		c.dirty = append(c.dirty, bq.fb)
	}
}

// flushDirty re-chooses every dirty bank's candidates and pushes fresh
// heap entries; the stamp bump retires the bank's stale entries in place.
func (c *Controller) flushDirty(now sim.Cycle) {
	for _, fb := range c.dirty {
		bq := &c.fbanks[fb]
		bq.dirty = false
		bq.stamp++
		bq.cand, bq.cand2 = nil, nil
		if bq.n == 0 {
			continue
		}
		c.fastChoose(bq)
		c.pushEntries(bq, now)
	}
	c.dirty = c.dirty[:0]
}

// fastChoose mirrors Reference.choose on the linked queue: the oldest
// row-hit within the window if any, otherwise the queue head's activation;
// for SALP banks additionally the oldest windowed idle-subarray lookahead
// activation (never the head).
func (c *Controller) fastChoose(bq *fastBank) {
	bq.cand2 = nil
	limit := bq.n
	if limit > c.window {
		limit = c.window
	}
	var hit *fnode
	pos := 0
	for nd := bq.head; nd != nil && pos < limit; nd, pos = nd.next, pos+1 {
		loc := nd.req.Loc
		loc.Col += nd.nextCol
		if c.ch.RowOpen(loc) {
			if hit == nil {
				hit = nd
			}
			continue
		}
		if bq.cand2 == nil && pos > 0 && !nd.acted && bq.salp {
			if _, open := c.ch.OpenRowAt(loc); !open {
				bq.cand2 = nd // idle-subarray lookahead activation
			}
		}
	}
	if hit != nil {
		bq.cand, bq.candRD, bq.candClass = hit, true, 0
		return
	}
	head := bq.head
	loc := head.req.Loc
	loc.Col += head.nextCol
	class := int32(1)
	if _, open := c.ch.OpenRowAt(loc); open {
		class = 2 // needs a (local) precharge first
	}
	if c.policy == FRFCFS {
		// Plain FR-FCFS does not distinguish idle activations from
		// conflicts (paper §4.1).
		class = 1
	}
	bq.cand, bq.candRD, bq.candClass = head, false, class
}

// candTime computes the exact earliest issue time of a candidate at `now`
// — the same query the reference eval makes.
func (c *Controller) candTime(nd *fnode, isRD bool, now sim.Cycle) sim.Cycle {
	loc := nd.req.Loc
	loc.Col += nd.nextCol
	at := now
	if nd.req.Arrival > at {
		at = nd.req.Arrival
	}
	if nd.admitted > at {
		at = nd.admitted
	}
	switch {
	case isRD && nd.req.Write:
		return c.ch.EarliestWR(loc, at)
	case isRD:
		return c.ch.EarliestRD(loc, nd.req.Consumer, at)
	default:
		return c.ch.EarliestACT(loc, at)
	}
}

// pushEntries inserts the bank's current candidates into the heaps: write
// commands into the write heap (invisible unless draining), everything
// else into the read heap.
func (c *Controller) pushEntries(bq *fastBank, now sim.Cycle) {
	if nd := bq.cand; nd != nil {
		e := entry{
			time:    c.candTime(nd, bq.candRD, now),
			arrival: nd.req.Arrival,
			class:   bq.candClass,
			fb:      bq.fb,
			kind:    0,
			stamp:   bq.stamp,
			ep:      c.ch.EpochOf(nd.req.Loc),
		}
		if nd.req.Write {
			c.wheap.push(e)
		} else {
			c.rheap.push(e)
		}
	}
	if nd := bq.cand2; nd != nil {
		e := entry{
			time:    c.candTime(nd, false, now),
			arrival: nd.req.Arrival,
			class:   1,
			fb:      bq.fb,
			kind:    1,
			stamp:   bq.stamp,
			ep:      c.ch.EpochOf(nd.req.Loc),
		}
		if nd.req.Write {
			c.wheap.push(e)
		} else {
			c.rheap.push(e)
		}
	}
}

// popBest returns the command that can issue first across all banks —
// the same answer as the reference scan. Stale-stamp entries are
// discarded; an entry whose timing epochs are unchanged (and whose bound
// time has not been overtaken by `now`) is exact and wins immediately;
// otherwise one Earliest* query re-keys it and the heaps re-order. When no
// read command exists at all, writes compete for this pick only (the
// deferred-write fallback).
func (c *Controller) popBest(now sim.Cycle, draining bool) (bq *fastBank, nd *fnode, isRD bool, t sim.Cycle, ok bool) {
	for {
		var h *entryHeap
		rt := c.rheap.top()
		var wt *entry
		if draining {
			wt = c.wheap.top()
		}
		switch {
		case rt == nil && wt == nil:
			if !draining && len(c.wheap.es) > 0 {
				// No read can issue: let the writes through after all.
				draining = true
				continue
			}
			return nil, nil, false, 0, false
		case rt == nil:
			h = &c.wheap
		case wt == nil:
			h = &c.rheap
		case entryLess(wt, rt):
			h = &c.wheap
		default:
			h = &c.rheap
		}
		e := &h.es[0]
		bank := &c.fbanks[e.fb]
		if e.stamp != bank.stamp {
			h.pop()
			continue
		}
		var cnd *fnode
		var rd bool
		if e.kind == 0 {
			cnd, rd = bank.cand, bank.candRD
		} else {
			cnd, rd = bank.cand2, false
		}
		// Cheap staleness re-check: unchanged epochs + unovertaken bound
		// => the key is provably exact (Earliest* is monotone in both
		// its time argument and the channel state).
		if e.time >= now && c.ch.EpochOf(cnd.req.Loc) == e.ep {
			tt := e.time
			h.pop()
			return bank, cnd, rd, tt, true
		}
		tt := c.candTime(cnd, rd, now)
		if tt > e.time {
			e.time = tt
			e.ep = c.ch.EpochOf(cnd.req.Loc)
			h.fixTop()
			continue
		}
		h.pop()
		return bank, cnd, rd, tt, true
	}
}

// streamRun issues the remaining columns of nd's row-hit stream as one
// uninterruptible run: each next column is issued without re-arbitrating
// while its exact time beats (under the reference comparator) the bank's
// own SALP lookahead ACT (computed exactly) and the best lower bound in
// the heaps. Heap keys only under-estimate, so a stale key can end the run
// early — never extend it past a command the reference would have
// interleaved.
func (c *Controller) streamRun(st *fastState, bq *fastBank, nd *fnode) {
	for nd.nextCol < nd.req.Cols {
		t := c.candTime(nd, true, st.now)
		run := entry{time: t, arrival: nd.req.Arrival, class: 0, fb: bq.fb, kind: 0}
		if la := bq.cand2; la != nil && (st.draining || !la.req.Write) {
			t2 := c.candTime(la, false, st.now)
			lae := entry{time: t2, arrival: la.req.Arrival, class: 1, fb: bq.fb, kind: 1}
			if entryLess(&lae, &run) {
				return // the lookahead ACT preempts the stream
			}
		}
		if top := c.bestTop(st.draining); top != nil && !entryLess(&run, top) {
			return // another bank may win this pick
		}
		loc := nd.req.Loc
		loc.Col += nd.nextCol
		var done sim.Cycle
		if nd.req.Write {
			_, done = c.ch.IssueWR(loc, t)
		} else {
			_, done = c.ch.IssueRD(loc, nd.req.Consumer, t)
		}
		nd.nextCol++
		if t > st.now {
			st.now = t
		}
		if nd.nextCol == nd.req.Cols {
			c.fastComplete(st, bq, nd, done)
			return
		}
	}
}

// bestTop returns the least lower-bound entry across the heaps eligible
// under the current draining mode, discarding stale-stamp tops.
func (c *Controller) bestTop(draining bool) *entry {
	rt := c.cleanTop(&c.rheap)
	if !draining {
		return rt
	}
	wt := c.cleanTop(&c.wheap)
	switch {
	case rt == nil:
		return wt
	case wt == nil:
		return rt
	case entryLess(wt, rt):
		return wt
	default:
		return rt
	}
}

func (c *Controller) cleanTop(h *entryHeap) *entry {
	for {
		t := h.top()
		if t == nil {
			return nil
		}
		if t.stamp == c.fbanks[t.fb].stamp {
			return t
		}
		h.pop()
	}
}

func (c *Controller) unlink(bq *fastBank, nd *fnode) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		bq.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		bq.tail = nd.prev
	}
	bq.n--
}

// newNode takes a pooled node (allocating a fresh chunk only when the pool
// is dry); freeNode returns one. The pool lives on the Controller under
// the single-goroutine contract.
func (c *Controller) newNode() *fnode {
	if c.free == nil {
		chunk := make([]fnode, 64)
		for i := range chunk {
			chunk[i].next = c.free
			c.free = &chunk[i]
		}
	}
	nd := c.free
	c.free = nd.next
	*nd = fnode{}
	return nd
}

func (c *Controller) freeNode(nd *fnode) {
	*nd = fnode{next: c.free}
	c.free = nd
}
