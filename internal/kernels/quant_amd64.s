//go:build amd64

#include "textflag.h"

// Vectorized quantized kernels (AVX2 int8, AVX+F16C fp16), 8 lanes per
// iteration with a scalar tail. Bit-identity discipline:
//
//   - no FMA: dequantize-multiply and accumulate-add are separate
//     instructions, each rounding once, in the generic code's per-lane
//     order ((q-zero)*scale, then *w, then +dst);
//   - VPSUBD/VCVTDQ2PS are exact for |q-zero| <= 510, identical to the
//     generic int32 subtract + float32 conversion;
//   - max uses VCMPPS(GT_OQ)+VBLENDVPS, keeping the generic "replace only
//     when strictly greater" semantics for NaN and signed-zero ties
//     (VMAXPS would differ on both);
//   - scalar tails run the same single-rounded expressions with legacy
//     SSE after VZEROUPPER.

// func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// ---- int8 family ----
// Y2 = zero (int32 lanes), Y3 = scale, Y4 = w. Per 8 lanes:
// VPMOVZXBD -> VPSUBD -> VCVTDQ2PS -> VMULPS(scale) [-> VMULPS(w)].

// func decodeI8AVX2(dst []float32, q []uint8, scale float32, zero int32)
TEXT ·decodeI8AVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         q_base+24(FP), SI
	VBROADCASTSS scale+48(FP), Y3
	MOVL         zero+52(FP), R8
	VMOVD        R8, X2
	VPBROADCASTD X2, Y2

i8dec8:
	CMPQ      CX, $8
	JL        i8dectail
	VPMOVZXBD (SI), Y0
	VPSUBD    Y2, Y0, Y0
	VCVTDQ2PS Y0, Y0
	VMULPS    Y3, Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       i8dec8

i8dectail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    i8decdone

i8dec1:
	MOVBLZX  (SI), AX
	SUBL     R8, AX
	CVTSL2SS AX, X0
	MULSS    X3, X0
	MOVSS    X0, (DI)
	ADDQ     $1, SI
	ADDQ     $4, DI
	SUBQ     $1, CX
	JNZ      i8dec1

i8decdone:
	RET

// func addI8AVX2(dst []float32, q []uint8, scale float32, zero int32)
TEXT ·addI8AVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         q_base+24(FP), SI
	VBROADCASTSS scale+48(FP), Y3
	MOVL         zero+52(FP), R8
	VMOVD        R8, X2
	VPBROADCASTD X2, Y2

i8add8:
	CMPQ      CX, $8
	JL        i8addtail
	VPMOVZXBD (SI), Y0
	VPSUBD    Y2, Y0, Y0
	VCVTDQ2PS Y0, Y0
	VMULPS    Y3, Y0, Y0
	VADDPS    (DI), Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       i8add8

i8addtail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    i8adddone

i8add1:
	MOVBLZX  (SI), AX
	SUBL     R8, AX
	CVTSL2SS AX, X0
	MULSS    X3, X0
	MOVSS    (DI), X1
	ADDSS    X1, X0
	MOVSS    X0, (DI)
	ADDQ     $1, SI
	ADDQ     $4, DI
	SUBQ     $1, CX
	JNZ      i8add1

i8adddone:
	RET

// func axpyI8AVX2(dst []float32, q []uint8, w, scale float32, zero int32)
TEXT ·axpyI8AVX2(SB), NOSPLIT, $0-60
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         q_base+24(FP), SI
	VBROADCASTSS w+48(FP), Y4
	VBROADCASTSS scale+52(FP), Y3
	MOVL         zero+56(FP), R8
	VMOVD        R8, X2
	VPBROADCASTD X2, Y2

i8axpy8:
	CMPQ      CX, $8
	JL        i8axpytail
	VPMOVZXBD (SI), Y0
	VPSUBD    Y2, Y0, Y0
	VCVTDQ2PS Y0, Y0
	VMULPS    Y3, Y0, Y0
	VMULPS    Y4, Y0, Y0
	VADDPS    (DI), Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       i8axpy8

i8axpytail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    i8axpydone

i8axpy1:
	MOVBLZX  (SI), AX
	SUBL     R8, AX
	CVTSL2SS AX, X0
	MULSS    X3, X0
	MULSS    X4, X0
	MOVSS    (DI), X1
	ADDSS    X1, X0
	MOVSS    X0, (DI)
	ADDQ     $1, SI
	ADDQ     $4, DI
	SUBQ     $1, CX
	JNZ      i8axpy1

i8axpydone:
	RET

// func maxI8AVX2(dst []float32, q []uint8, scale float32, zero int32)
TEXT ·maxI8AVX2(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         q_base+24(FP), SI
	VBROADCASTSS scale+48(FP), Y3
	MOVL         zero+52(FP), R8
	VMOVD        R8, X2
	VPBROADCASTD X2, Y2

i8max8:
	CMPQ      CX, $8
	JL        i8maxtail
	VPMOVZXBD (SI), Y0
	VPSUBD    Y2, Y0, Y0
	VCVTDQ2PS Y0, Y0
	VMULPS    Y3, Y0, Y0
	VMOVUPS   (DI), Y1
	VCMPPS    $0x1e, Y1, Y0, Y5
	VBLENDVPS Y5, Y0, Y1, Y1
	VMOVUPS   Y1, (DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       i8max8

i8maxtail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    i8maxdone

i8max1:
	MOVBLZX  (SI), AX
	SUBL     R8, AX
	CVTSL2SS AX, X0
	MULSS    X3, X0
	UCOMISS  (DI), X0
	JBE      i8maxskip
	MOVSS    X0, (DI)

i8maxskip:
	ADDQ $1, SI
	ADDQ $4, DI
	SUBQ $1, CX
	JNZ  i8max1

i8maxdone:
	RET

// ---- fp16 family ----
// VCVTPH2PS is the exact IEEE binary16 -> binary32 conversion, identical
// to the generic F16ToF32 on every one of the 65536 inputs.

// func decodeF16AVX(dst []float32, q []uint16)
TEXT ·decodeF16AVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ q_base+24(FP), SI

f16dec8:
	CMPQ      CX, $8
	JL        f16dectail
	VCVTPH2PS (SI), Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       f16dec8

f16dectail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    f16decdone

f16dec1:
	MOVWLZX   (SI), AX
	MOVQ      AX, X0
	VCVTPH2PS X0, X0
	MOVSS     X0, (DI)
	ADDQ      $2, SI
	ADDQ      $4, DI
	SUBQ      $1, CX
	JNZ       f16dec1

f16decdone:
	RET

// func addF16AVX(dst []float32, q []uint16)
TEXT ·addF16AVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ q_base+24(FP), SI

f16add8:
	CMPQ      CX, $8
	JL        f16addtail
	VCVTPH2PS (SI), Y0
	VADDPS    (DI), Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       f16add8

f16addtail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    f16adddone

f16add1:
	MOVWLZX   (SI), AX
	MOVQ      AX, X0
	VCVTPH2PS X0, X0
	MOVSS     (DI), X1
	ADDSS     X1, X0
	MOVSS     X0, (DI)
	ADDQ      $2, SI
	ADDQ      $4, DI
	SUBQ      $1, CX
	JNZ       f16add1

f16adddone:
	RET

// func axpyF16AVX(dst []float32, q []uint16, w float32)
TEXT ·axpyF16AVX(SB), NOSPLIT, $0-52
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         q_base+24(FP), SI
	VBROADCASTSS w+48(FP), Y4

f16axpy8:
	CMPQ      CX, $8
	JL        f16axpytail
	VCVTPH2PS (SI), Y0
	VMULPS    Y4, Y0, Y0
	VADDPS    (DI), Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       f16axpy8

f16axpytail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    f16axpydone

f16axpy1:
	MOVWLZX   (SI), AX
	MOVQ      AX, X0
	VCVTPH2PS X0, X0
	MULSS     X4, X0
	MOVSS     (DI), X1
	ADDSS     X1, X0
	MOVSS     X0, (DI)
	ADDQ      $2, SI
	ADDQ      $4, DI
	SUBQ      $1, CX
	JNZ       f16axpy1

f16axpydone:
	RET

// func maxF16AVX(dst []float32, q []uint16)
TEXT ·maxF16AVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ q_base+24(FP), SI

f16max8:
	CMPQ      CX, $8
	JL        f16maxtail
	VCVTPH2PS (SI), Y0
	VMOVUPS   (DI), Y1
	VCMPPS    $0x1e, Y1, Y0, Y5
	VBLENDVPS Y5, Y0, Y1, Y1
	VMOVUPS   Y1, (DI)
	ADDQ      $16, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JMP       f16max8

f16maxtail:
	VZEROUPPER
	TESTQ CX, CX
	JZ    f16maxdone

f16max1:
	MOVWLZX   (SI), AX
	MOVQ      AX, X0
	VCVTPH2PS X0, X0
	UCOMISS   (DI), X0
	JBE       f16maxskip
	MOVSS     X0, (DI)

f16maxskip:
	ADDQ $2, SI
	ADDQ $4, DI
	SUBQ $1, CX
	JNZ  f16max1

f16maxdone:
	RET
